// Full-stack integration tests: PELS sources/sinks + priority AQM + MKC over
// the bar-bell topology, validating the paper's §6 claims end to end.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "analysis/stability.h"
#include "cc/aimd.h"
#include "cc/tfrc_lite.h"
#include "pels/metrics.h"
#include "pels/scenario.h"
#include "util/stats.h"

namespace pels {
namespace {

ScenarioConfig base_config(int flows) {
  ScenarioConfig cfg;
  cfg.pels_flows = flows;
  cfg.tcp_flows = 1;
  cfg.seed = 7;
  return cfg;
}

// ------------------------------------------------------ MKC convergence

TEST(IntegrationMkc, SingleFlowConvergesToPelsCapacity) {
  ScenarioConfig cfg = base_config(1);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  // r* = C + alpha/beta = 2 mb/s + 40 kb/s.
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 1, cfg.mkc);
  EXPECT_NEAR(s.source(0).rate_bps(), r_star, r_star * 0.05);
}

TEST(IntegrationMkc, TwoFlowsConvergeToFairShare) {
  // Fig. 9 (right): two flows at ~1 mb/s each (C/N + alpha/beta = 1.04 mb/s).
  ScenarioConfig cfg = base_config(2);
  cfg.start_times = {0, 10 * kSecond};
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_NEAR(s.source(0).rate_bps(), r_star, r_star * 0.08);
  EXPECT_NEAR(s.source(1).rate_bps(), r_star, r_star * 0.08);
  const double shares[] = {s.source(0).rate_bps(), s.source(1).rate_bps()};
  EXPECT_GT(jain_fairness_index(shares), 0.999);
}

TEST(IntegrationMkc, FirstFlowYieldsWhenSecondJoins) {
  ScenarioConfig cfg = base_config(2);
  cfg.start_times = {0, 10 * kSecond};
  DumbbellScenario s(cfg);
  s.run_until(9 * kSecond);
  const double solo = s.source(0).rate_bps();
  s.run_until(40 * kSecond);
  const double shared = s.source(0).rate_bps();
  EXPECT_GT(solo, 1.8e6);   // had (almost) the whole PELS share
  EXPECT_LT(shared, 1.2e6); // yielded roughly half after the join
}

TEST(IntegrationMkc, SteadyStateHasNoOscillation) {
  // MKC's single stationary point (Lemma 6): the rate trace stays flat in
  // steady state up to per-epoch measurement quantization (~15 packets per
  // 30 ms interval), with no AIMD-style sawtooth. The deterministic-map
  // no-oscillation property is verified exactly in analysis_test; here we
  // bound the worst instantaneous deviation and pin the mean.
  ScenarioConfig cfg = base_config(2);
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  const double mean = s.source(0).rate_series().mean_in(20 * kSecond, 40 * kSecond);
  EXPECT_NEAR(mean, r_star, r_star * 0.03);
  const double osc = s.source(0).rate_series().oscillation_in(20 * kSecond, 40 * kSecond);
  EXPECT_LT(osc / r_star, 0.12);
}

TEST(IntegrationMkc, EpochFilteringConsumesEachEpochOnce) {
  // The source receives ~1 ACK per data packet but must apply at most one
  // rate update per router epoch (§5.2).
  ScenarioConfig cfg = base_config(1);
  DumbbellScenario s(cfg);
  s.run_until(10 * kSecond);
  auto& mkc = dynamic_cast<MkcController&>(s.source(0).controller());
  const auto epochs = s.pels_queue()->epoch();
  EXPECT_LE(mkc.updates(), epochs);
  EXPECT_GT(mkc.updates(), epochs / 2);  // and it does consume most of them
}

// ------------------------------------------------------- gamma behaviour

TEST(IntegrationGamma, ConvergesNearStationaryPoint) {
  // Fig. 7 (left): with 4 flows the FGS loss is ~7.5%, so gamma settles near
  // p*/p_thr ~ 0.1. (FGS loss is slightly above the aggregate p* because the
  // protected green share is excluded from the denominator.)
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(120 * kSecond);
  const double p_star =
      mkc_stationary_loss(s.video_capacity_bps(), 4, cfg.mkc.alpha_bps, cfg.mkc.beta);
  const double gamma_star = p_star / cfg.source.gamma.p_thr;
  const double gamma_avg =
      s.source(0).gamma_series().mean_in(60 * kSecond, 120 * kSecond);
  EXPECT_NEAR(gamma_avg, gamma_star, gamma_star * 0.5);
  EXPECT_GT(gamma_avg, 0.05);  // well off the probing floor
}

TEST(IntegrationGamma, RedLossConvergesToThreshold) {
  // Fig. 7 (right): red packet loss pins near p_thr regardless of p. With
  // lightly-loaded cross traffic WRR lends the PELS class spare capacity and
  // red loss dips below target, so keep the Internet queue backlogged.
  for (int flows : {4, 8}) {
    ScenarioConfig cfg = base_config(flows);
    cfg.tcp_flows = 3;
    cfg.source.gamma.p_thr = 0.75;
    DumbbellScenario s(cfg);
    s.run_until(120 * kSecond);
    const double red_loss =
        s.loss_series(Color::kRed).mean_in(60 * kSecond, 120 * kSecond);
    EXPECT_NEAR(red_loss, 0.75, 0.13) << "flows=" << flows;
  }
}

TEST(IntegrationGamma, YellowAndGreenProtected) {
  // Red absorbs all congestion: once gamma settles (the startup ramp spills
  // until the first loss estimate arrives, as in the paper's Fig. 7), the
  // yellow and green queues see (near) zero steady-state loss.
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(60 * kSecond);
  const auto& c = s.pels_queue()->counters();
  ASSERT_GT(c.arrivals[static_cast<std::size_t>(Color::kYellow)], 1000u);
  EXPECT_LT(s.loss_series(Color::kYellow).mean_in(10 * kSecond, 60 * kSecond), 0.01);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(10 * kSecond, 60 * kSecond), 1e-6);
}

TEST(IntegrationGamma, HigherLossRaisesGamma) {
  ScenarioConfig cfg4 = base_config(4);
  DumbbellScenario s4(cfg4);
  s4.run_until(90 * kSecond);
  ScenarioConfig cfg8 = base_config(8);
  DumbbellScenario s8(cfg8);
  s8.run_until(90 * kSecond);
  const double g4 = s4.source(0).gamma_series().mean_in(60 * kSecond, 90 * kSecond);
  const double g8 = s8.source(0).gamma_series().mean_in(60 * kSecond, 90 * kSecond);
  EXPECT_GT(g8, g4 * 1.4);  // roughly doubles with doubled loss
}

// ---------------------------------------------------------------- delays

TEST(IntegrationDelay, PriorityOrderingGreenYellowRed) {
  // Fig. 8/9: green < yellow << red one-way delays.
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(60 * kSecond);
  const double green = s.sink(0).delay_samples(Color::kGreen).mean();
  const double yellow = s.sink(0).delay_samples(Color::kYellow).mean();
  const double red = s.sink(0).delay_samples(Color::kRed).mean();
  EXPECT_LT(green, yellow);
  EXPECT_LT(yellow * 2.0, red);
  // Green rides an almost-empty strict-priority band: near propagation-only.
  EXPECT_LT(green, 0.030);
  EXPECT_GT(red, 0.050);
}

TEST(IntegrationDelay, RedDelayDominatesAtEveryLoad) {
  // Fig. 9 (left): red delays sit orders of magnitude above yellow/green at
  // every load level, because red is only served from the leftover after
  // the higher bands. (At *equilibrium* our red delay shrinks as flows join
  // — red service scales with the MKC overshoot, which grows with N — so the
  // paper's monotone-growth reading of Fig. 9 appears here only in the join
  // transients; see EXPERIMENTS.md.)
  ScenarioConfig cfg = base_config(8);
  cfg.start_times = staircase_starts(8, 2, 30 * kSecond);
  DumbbellScenario s(cfg);
  s.run_until(120 * kSecond);
  const auto& red = s.sink(0).delay_series(Color::kRed);
  const auto& yellow = s.sink(0).delay_series(Color::kYellow);
  for (SimTime t0 : {10 * kSecond, 40 * kSecond, 70 * kSecond, 100 * kSecond}) {
    const double red_mean = red.mean_in(t0, t0 + 20 * kSecond);
    const double yellow_mean = yellow.mean_in(t0, t0 + 20 * kSecond);
    EXPECT_GT(red_mean, 3.0 * yellow_mean) << "window at " << to_seconds(t0) << "s";
    EXPECT_GT(red_mean, 0.050) << "window at " << to_seconds(t0) << "s";
  }
}

// ----------------------------------------------------------- video quality

TEST(IntegrationQuality, PelsUtilityNearOne) {
  // §3.2/§4.3: with red absorbing loss, nearly every received FGS byte is a
  // consecutive-prefix byte.
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  s.finish();
  EXPECT_GT(s.sink(0).mean_utility(), 0.95);
}

TEST(IntegrationQuality, BestEffortUtilityFarBelowPels) {
  // Random loss shreds the FGS prefix. At 4 flows each frame carries ~10
  // FGS packets and the loss is ~10%, so eq. (3) predicts a best-effort
  // utility around (1-(1-p)^H)/(Hp) ~ 0.65 — far below PELS's ~0.98, and
  // collapsing further as frames grow (paper Fig. 2).
  ScenarioConfig cfg = base_config(4);
  cfg.bottleneck = BottleneckKind::kBestEffort;
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  s.finish();
  const double be_utility = s.sink(0).mean_utility();
  EXPECT_LT(be_utility, 0.8);
  ScenarioConfig pcfg = base_config(4);
  DumbbellScenario sp(pcfg);
  sp.run_until(40 * kSecond);
  sp.finish();
  EXPECT_GT(sp.sink(0).mean_utility(), be_utility + 0.15);
}

TEST(IntegrationQuality, PelsPsnrBeatsBestEffort) {
  // Fig. 10's setting: one high-rate video flow under ~10% FGS loss (alpha
  // scaled up so the MKC equilibrium overshoot produces that loss level,
  // mirroring the paper's fixed network loss). PELS must deliver clearly
  // higher PSNR than the best-effort comparator on the same workload.
  auto run = [](BottleneckKind kind) {
    ScenarioConfig cfg = base_config(1);
    cfg.bottleneck = kind;
    cfg.mkc.alpha_bps = 125e3;  // alpha/beta = 250k -> p* ~ 10% of r* ~ 2.45m
    DumbbellScenario s(cfg);
    s.run_until(42 * kSecond);
    s.finish();
    RunningStats psnr;
    // Skip the startup transient: frames 50..350.
    for (const auto& q : s.sink(0).quality_for_frames(50, 350)) psnr.add(q.psnr_db);
    return psnr.mean();
  };
  const double pels_psnr = run(BottleneckKind::kPels);
  const double be_psnr = run(BottleneckKind::kBestEffort);
  EXPECT_GT(pels_psnr, be_psnr + 1.5);
}

TEST(IntegrationQuality, NoBaseLayerLossUnderPels) {
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  s.finish();
  for (const auto& q : s.sink(0).quality_for_frames(5, 350)) {
    EXPECT_TRUE(q.base_ok) << "frame " << q.frame_id;
  }
}

// ----------------------------------------------------- traffic isolation

TEST(IntegrationIsolation, TcpKeepsItsWrrShare) {
  // §6.1: the Internet queue gets 50% of the bottleneck no matter how hard
  // the PELS flows push.
  ScenarioConfig cfg = base_config(8);
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  const double tcp_goodput = s.tcp_source(0).goodput_bps(s.sim().now());
  EXPECT_GT(tcp_goodput, 0.4 * 2e6);  // >= 80% of its 2 mb/s share
}

TEST(IntegrationIsolation, PelsUnaffectedByTcpCount) {
  ScenarioConfig cfg1 = base_config(2);
  cfg1.tcp_flows = 1;
  DumbbellScenario s1(cfg1);
  s1.run_until(30 * kSecond);
  ScenarioConfig cfg4 = base_config(2);
  cfg4.tcp_flows = 4;
  DumbbellScenario s4(cfg4);
  s4.run_until(30 * kSecond);
  // PELS rates identical (to within noise) whether 1 or 4 TCP flows compete;
  // compare steady-state means, not instantaneous samples.
  const double r1 = s1.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  const double r4 = s4.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  EXPECT_NEAR(r1, r4, r1 * 0.05);
}

// ------------------------------------------------------- CC independence

TEST(IntegrationCc, PelsWorksWithAimd) {
  ScenarioConfig cfg = base_config(2);
  cfg.make_controller = [](int) {
    AimdConfig acfg;
    acfg.initial_rate_bps = 128e3;
    return std::make_unique<AimdController>(acfg);
  };
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  s.finish();
  // AIMD oscillates, but PELS still protects the prefix: utility stays high.
  EXPECT_GT(s.sink(0).mean_utility(), 0.9);
  EXPECT_GT(s.source(0).rate_bps(), 200e3);  // actually using the link
}

TEST(IntegrationCc, PelsWorksWithTfrc) {
  ScenarioConfig cfg = base_config(2);
  cfg.make_controller = [](int) {
    return std::make_unique<TfrcLiteController>(TfrcLiteConfig{});
  };
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  s.finish();
  EXPECT_GT(s.sink(0).mean_utility(), 0.9);
  EXPECT_GT(s.source(0).rate_bps(), 200e3);
}

// -------------------------------------------------------- metrics export

TEST(IntegrationMetrics, CsvExportContainsAllMetrics) {
  ScenarioConfig cfg = base_config(2);
  DumbbellScenario s(cfg);
  s.run_until(10 * kSecond);
  const std::string path = ::testing::TempDir() + "/pels_metrics.csv";
  ASSERT_TRUE(write_metrics_csv(s, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t_seconds,metric,index,value");
  std::map<std::string, int> metric_counts;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find(',');
    const auto second = line.find(',', first + 1);
    ASSERT_NE(second, std::string::npos) << line;
    ++metric_counts[line.substr(first + 1, second - first - 1)];
  }
  for (const char* metric :
       {"rate_bps", "gamma", "measured_fgs_loss", "queue_loss_red", "queue_fgs_loss",
        "delay_green_ms", "delay_yellow_ms"}) {
    EXPECT_GT(metric_counts[metric], 0) << metric;
  }
  // Two flows: per-flow series are roughly twice the per-queue ones.
  EXPECT_GT(metric_counts["rate_bps"], metric_counts["queue_loss_red"]);
}

// ----------------------------------------------------------- determinism

TEST(IntegrationDeterminism, SameSeedSameTrajectory) {
  auto run = [] {
    ScenarioConfig cfg = base_config(4);
    cfg.seed = 123;
    DumbbellScenario s(cfg);
    s.run_until(20 * kSecond);
    return std::tuple{s.source(0).rate_bps(), s.source(0).gamma(),
                      s.pels_queue()->counters().total_drops()};
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationDeterminism, DifferentSeedDifferentDrops) {
  auto drops = [](std::uint64_t seed) {
    ScenarioConfig cfg = base_config(4);
    cfg.bottleneck = BottleneckKind::kBestEffort;
    cfg.seed = seed;
    DumbbellScenario s(cfg);
    s.run_until(10 * kSecond);
    return s.best_effort_queue()->counters().total_drops();
  };
  EXPECT_NE(drops(1), drops(2));
}

}  // namespace
}  // namespace pels
