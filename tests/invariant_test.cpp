// InvariantMonitor tests: the runtime invariant catalog (DESIGN.md §9).
//
// Covers the three check flavours (predicate, monotone, progress watchdog),
// record-vs-abort reporting, the wall-clock budget, violation JSON, and the
// scenario integration: a monitored dumbbell run — fault-free and heavily
// faulted — must complete with zero violations, and the deliberately-broken
// cases must produce structured records carrying the fault-plan position.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/chaos.h"
#include "pels/scenario.h"
#include "sim/invariants.h"
#include "sim/simulation.h"

namespace pels {
namespace {

InvariantConfig test_config() {
  InvariantConfig cfg;
  cfg.enabled = true;
  cfg.period = from_millis(10);
  return cfg;
}

// ------------------------------------------------------------ config

TEST(InvariantConfigTest, ValidationRejectsNonsenseOnlyWhenEnabled) {
  InvariantConfig cfg;
  cfg.period = 0;
  EXPECT_NO_THROW(cfg.validate());  // disabled configs are inert
  cfg.enabled = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.period = from_millis(10);
  EXPECT_NO_THROW(cfg.validate());
  cfg.max_records = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.max_records = 1;
  cfg.wall_clock_budget_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ check flavours

TEST(InvariantMonitorTest, PassingChecksRecordNothing) {
  Simulation sim(1);
  InvariantMonitor monitor(sim.scheduler(), test_config());
  monitor.add_check("always.true", [](std::string&) { return true; });
  monitor.start();
  sim.run_until(from_millis(100));
  EXPECT_GE(monitor.ticks(), 9u);
  EXPECT_EQ(monitor.violation_count(), 0u);
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(InvariantMonitorTest, FailingCheckRecordsStructuredViolationWithContext) {
  Simulation sim(1);
  InvariantConfig cfg = test_config();
  cfg.max_records = 2;  // cap below the violation count
  InvariantMonitor monitor(sim.scheduler(), cfg);
  monitor.set_context([&sim] { return "ctx@" + std::to_string(sim.now()); });
  monitor.add_check("always.false", [](std::string& detail) {
    detail = "it broke";
    return false;
  });
  monitor.start();
  sim.run_until(from_millis(55));  // 5 ticks -> 5 violations, 2 recorded

  EXPECT_EQ(monitor.violation_count(), 5u);
  ASSERT_EQ(monitor.violations().size(), 2u);
  const InvariantViolation& v = monitor.violations().front();
  EXPECT_EQ(v.invariant, "always.false");
  EXPECT_EQ(v.at, from_millis(10));
  EXPECT_EQ(v.tick, 0u);
  EXPECT_EQ(v.detail, "it broke");
  EXPECT_EQ(v.context, "ctx@" + std::to_string(from_millis(10)));
}

TEST(InvariantMonitorTest, AbortOnViolationThrowsFromTheFailingTick) {
  Simulation sim(1);
  InvariantConfig cfg = test_config();
  cfg.abort_on_violation = true;
  InvariantMonitor monitor(sim.scheduler(), cfg);
  monitor.add_check("always.false", [](std::string& detail) {
    detail = "boom";
    return false;
  });
  monitor.start();
  try {
    sim.run_until(from_millis(100));
    FAIL() << "expected InvariantViolationError";
  } catch (const InvariantViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "always.false");
    EXPECT_EQ(e.violation().at, from_millis(10));  // the *first* failing tick
    EXPECT_NE(std::string(e.what()).find("always.false"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(InvariantMonitorTest, MonotoneCheckFlagsAnyDecrease) {
  Simulation sim(1);
  InvariantMonitor monitor(sim.scheduler(), test_config());
  double value = 0.0;
  monitor.add_monotone_check("probe", [&value] { return value; });
  monitor.start();
  sim.at(from_millis(5), [&value] { value = 10.0; });
  sim.at(from_millis(35), [&value] { value = 3.0; });  // backwards
  sim.run_until(from_millis(45));  // one tick past the decrease
  ASSERT_EQ(monitor.violation_count(), 1u);
  EXPECT_EQ(monitor.violations().front().invariant, "probe");
  EXPECT_EQ(monitor.violations().front().at, from_millis(40));
  // The high-water mark persists: recovering to the previous maximum is not
  // a fresh violation, but staying below it keeps reporting.
  sim.at(from_millis(47), [&value] { value = 10.0; });
  sim.run_until(from_millis(65));
  EXPECT_EQ(monitor.violation_count(), 1u);
}

TEST(InvariantMonitorTest, ProgressWatchdogTripsOnStallAndRearms) {
  Simulation sim(1);
  InvariantMonitor monitor(sim.scheduler(), test_config());
  double value = 1.0;
  monitor.add_progress_check("liveness", [&value] { return value; }, 3);
  monitor.start();
  // Value never moves after the first observation (tick @10ms). With the
  // re-arm, a stall reports once per stall_ticks window, not once per tick:
  // reports land at 40, 70, and 100 ms.
  sim.run_until(from_millis(125));  // ticks at 10..120 ms
  EXPECT_EQ(monitor.violation_count(), 3u);

  // Progress resets the stall counter: the 130 ms tick observes the new
  // value, so ticks 140/150 only reach stall count 2 of 3.
  const std::uint64_t before = monitor.violation_count();
  sim.at(from_millis(127), [&value] { value = 2.0; });
  sim.run_until(from_millis(155));
  EXPECT_EQ(monitor.violation_count(), before);
  EXPECT_THROW(monitor.add_progress_check("bad", [] { return 0.0; }, 0),
               std::invalid_argument);
}

TEST(InvariantMonitorTest, WallClockBudgetThrowsEvenInRecordMode) {
  Simulation sim(1);
  InvariantConfig cfg = test_config();
  cfg.abort_on_violation = false;  // record mode — the budget must still throw
  cfg.wall_clock_budget_s = 1e-9;
  InvariantMonitor monitor(sim.scheduler(), cfg);
  monitor.start();
  try {
    sim.run_until(from_millis(20));
    FAIL() << "expected InvariantViolationError";
  } catch (const InvariantViolationError& e) {
    EXPECT_EQ(e.violation().invariant, "monitor.wall_clock_budget");
  }
}

TEST(InvariantMonitorTest, ViolationJsonIsStructuredAndDeterministic) {
  const auto render = [] {
    Simulation sim(1);
    InvariantMonitor monitor(sim.scheduler(), test_config());
    monitor.set_context([] { return "fixed-context"; });
    monitor.add_check("json.check", [](std::string& detail) {
      detail = "needs \"escaping\"\n";
      return false;
    });
    monitor.start();
    sim.run_until(from_millis(25));
    std::ostringstream os;
    monitor.write_json(os);
    return os.str();
  };
  const std::string a = render();
  EXPECT_EQ(a, render());  // deterministic across runs
  // Parses back with the project JSON parser; fields survive escaping.
  const JsonValue doc = JsonValue::parse(a);
  ASSERT_EQ(doc.kind(), JsonValue::Kind::kArray);
  ASSERT_EQ(doc.items().size(), 2u);  // ticks at 10 and 20 ms
  EXPECT_EQ(doc.items()[0].at("invariant").as_string(), "json.check");
  EXPECT_EQ(doc.items()[0].at("detail").as_string(), "needs \"escaping\"\n");
  EXPECT_EQ(doc.items()[0].at("context").as_string(), "fixed-context");
}

// ------------------------------------------------------------ scenario wiring

ScenarioConfig monitored_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 1;
  cfg.seed = seed;
  cfg.invariants.enabled = true;
  return cfg;
}

TEST(ScenarioInvariantTest, CleanRunHoldsEveryInvariant) {
  ScenarioConfig cfg = monitored_config(7);
  cfg.invariants.progress_stall_ticks = 200;
  DumbbellScenario s(cfg);
  ASSERT_NE(s.invariant_monitor(), nullptr);
  EXPECT_GE(s.invariant_monitor()->check_count(), 3u);  // conservation/bands/γ
  s.run_until(from_seconds(3));
  s.invariant_monitor()->check_now();
  s.finish();
  EXPECT_GT(s.invariant_monitor()->ticks(), 0u);
  EXPECT_EQ(s.invariant_monitor()->violation_count(), 0u)
      << (s.invariant_monitor()->violations().empty()
              ? ""
              : s.invariant_monitor()->violations().front().detail);
}

TEST(ScenarioInvariantTest, FaultedRunHoldsEveryInvariantAndCarriesPlanContext) {
  ScenarioConfig cfg = monitored_config(11);
  cfg.faults.link_flaps.push_back({from_millis(500), from_millis(900)});
  cfg.faults.brownouts.push_back({from_millis(1200), from_millis(1600), 0.4});
  cfg.faults.ack_blackouts.push_back({from_millis(1800), from_millis(2100)});
  cfg.faults.router_restarts.push_back({from_millis(2300)});
  DumbbellScenario s(cfg);
  s.run_until(from_seconds(3));
  s.invariant_monitor()->check_now();
  s.finish();
  EXPECT_EQ(s.invariant_monitor()->violation_count(), 0u)
      << (s.invariant_monitor()->violations().empty()
              ? ""
              : s.invariant_monitor()->violations().front().detail);
}

TEST(ScenarioInvariantTest, InjectedFailureIsCaughtWithFaultPlanPosition) {
  ScenarioConfig cfg = monitored_config(13);
  cfg.faults.link_flaps.push_back({from_millis(500), from_millis(900)});
  DumbbellScenario s(cfg);
  // Deliberately-false check: the bottleneck link is down inside the flap.
  Link& bottleneck = s.topology().link(0);
  s.invariant_monitor()->add_check("selftest.link_up", [&bottleneck](std::string& detail) {
    if (!bottleneck.is_up()) {
      detail = "down";
      return false;
    }
    return true;
  });
  s.run_until(from_seconds(2));
  ASSERT_GT(s.invariant_monitor()->violation_count(), 0u);
  const InvariantViolation& v = s.invariant_monitor()->violations().front();
  EXPECT_EQ(v.invariant, "selftest.link_up");
  EXPECT_GE(v.at, from_millis(500));
  EXPECT_LT(v.at, from_millis(900));
  // The context callback reports the fault-plan position at the violation.
  EXPECT_NE(v.context.find("flap[past=0,active=1,ahead=0]"), std::string::npos) << v.context;
}

TEST(ScenarioInvariantTest, MonitorProbesJoinTheTelemetryRegistry) {
  ScenarioConfig cfg = monitored_config(17);
  cfg.telemetry.enabled = true;
  cfg.telemetry.period = from_millis(100);
  cfg.telemetry.max_samples = 64;
  DumbbellScenario s(cfg);
  s.run_until(from_seconds(2));
  s.finish();
  ASSERT_NE(s.metrics(), nullptr);
  ASSERT_NE(s.telemetry_sampler(), nullptr);
  EXPECT_GT(s.telemetry_sampler()->sample_count(), 0u);
  EXPECT_EQ(s.invariant_monitor()->violation_count(), 0u);
  // The sampler itself is under a monotone invariant; a full run with both
  // subsystems on and zero violations is the integration witness.
}

TEST(ScenarioInvariantTest, ConfigValidationCoversInvariantBlock) {
  ScenarioConfig cfg = monitored_config(1);
  cfg.invariants.period = -1;
  EXPECT_THROW(DumbbellScenario{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace pels
