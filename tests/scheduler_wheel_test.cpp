// Two-tier scheduler determinism tests (see DESIGN.md "Event model"): the
// timing wheel must be an invisible optimization — execution order, cancel
// semantics, and whole-scenario metrics are byte-identical to the heap-only
// scheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "pels/scenario.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace pels {
namespace {

TEST(SchedulerWheelTest, TieOrderIsInsertionOrderAcrossTiers) {
  // Three events at the same timestamp, alternating tiers: A lands in the
  // wheel, B (wheel disabled) on the heap, C back in the wheel. The global
  // (t, seq) merge must run them in insertion order regardless of tier.
  Scheduler sched;
  std::vector<int> order;
  const SimTime t = from_millis(1);
  sched.schedule_at(t, [&order] { order.push_back(0); });
  sched.set_wheel_enabled(false);
  sched.schedule_at(t, [&order] { order.push_back(1); });
  sched.set_wheel_enabled(true);
  sched.schedule_at(t, [&order] { order.push_back(2); });

  const Scheduler::Stats before = sched.stats();
  EXPECT_EQ(before.wheel_entries, 2u);
  EXPECT_EQ(before.heap_size, 1u);

  sched.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerWheelTest, InterleavedTiersDrainInGlobalTimeOrder) {
  // Deterministic pseudo-random horizons spanning every tier: sub-millisecond
  // (level 0), seconds (level 1), minutes (level 2), and hours (heap).
  // Execution must be sorted by time with FIFO among equal times.
  Scheduler sched;
  std::vector<std::pair<SimTime, int>> executed;
  std::uint64_t lcg = 12345;
  std::vector<SimTime> times;
  for (int i = 0; i < 5000; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t r = lcg >> 33;
    SimTime t;
    switch (i & 3) {
      case 0: t = static_cast<SimTime>(r % (30 * kMillisecond)); break;
      case 1: t = static_cast<SimTime>(r % (8 * kSecond)); break;
      case 2: t = static_cast<SimTime>(r % (30 * 60 * kSecond)); break;
      default: t = static_cast<SimTime>(r % (2 * 3600 * kSecond)); break;
    }
    times.push_back(t);
    sched.schedule_at(t, [&executed, &sched, t, i] { executed.push_back({t, i}); });
    // Redundant with the callback's own check, but catches a now() that
    // regresses between events too.
    (void)sched;
  }

  sched.run();
  ASSERT_EQ(executed.size(), times.size());
  for (std::size_t i = 1; i < executed.size(); ++i) {
    ASSERT_LE(executed[i - 1].first, executed[i].first) << "at " << i;
    if (executed[i - 1].first == executed[i].first) {
      ASSERT_LT(executed[i - 1].second, executed[i].second)
          << "tie at t=" << executed[i].first << " broke FIFO";
    }
  }
  const Scheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.executed, times.size());
  EXPECT_GT(stats.bucket_loads, 0u);
  EXPECT_GT(stats.cascades, 0u);
}

TEST(SchedulerWheelTest, CancelAndRescheduleAcrossTierBoundaries) {
  Scheduler sched;
  int fired = 0;

  // Wheel resident cancelled before its bucket drains.
  const EventId near = sched.schedule_at(from_millis(5), [&fired] { ++fired; });
  // Heap resident (beyond the wheel horizon) cancelled as well.
  const EventId far = sched.schedule_at(2 * 3600 * kSecond, [&fired] { ++fired; });
  EXPECT_TRUE(sched.cancel(near));
  EXPECT_TRUE(sched.cancel(far));
  EXPECT_FALSE(sched.cancel(near)) << "double cancel must be a no-op";

  // The classic timer pattern: cancel-and-re-arm hopping between tiers.
  // Each re-arm lands in a different tier than the last.
  EventId timer = sched.schedule_at(from_millis(1), [&fired] { ++fired; });
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(sched.cancel(timer));
    const SimTime t = (i % 2 == 0) ? (3 * 3600 * kSecond + i)  // heap tier
                                   : from_millis(1 + i);       // wheel tier
    timer = sched.schedule_at(t, [&fired] { ++fired; });
  }

  sched.run();
  // Only the last re-arm survives.
  EXPECT_EQ(fired, 1);
  const Scheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.cancelled, 52u);
  EXPECT_EQ(stats.wheel_entries, 0u);
}

TEST(SchedulerWheelTest, OverflowCascadesPreserveOrder) {
  // One event per tier, in reverse scheduling order; later the level-2 and
  // level-1 residents must cascade down as the frontier reaches them, and
  // everything still runs in time order.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(20 * 60 * kSecond, [&order] { order.push_back(3); });  // level 2
  sched.schedule_at(4 * kSecond, [&order] { order.push_back(2); });        // level 1
  sched.schedule_at(from_millis(10), [&order] { order.push_back(1); });    // level 0
  sched.schedule_at(from_micros(50), [&order] { order.push_back(0); });    // level 0
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  const Scheduler::Stats stats = sched.stats();
  EXPECT_GE(stats.cascades, 2u) << "level-1 and level-2 residents must cascade";
  EXPECT_EQ(stats.executed, 4u);
}

TEST(SchedulerWheelTest, PeekNextTimeMergesBothTiers) {
  Scheduler sched;
  const EventId near = sched.schedule_at(from_millis(2), [] {});
  sched.schedule_at(2 * 3600 * kSecond, [] {});
  EXPECT_EQ(sched.peek_next_time(), from_millis(2));
  EXPECT_TRUE(sched.cancel(near));
  EXPECT_EQ(sched.peek_next_time(), 2 * 3600 * kSecond);
}

TEST(SchedulerWheelTest, RunUntilStopsBetweenBuckets) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(from_millis(1), [&fired] { ++fired; });
  sched.schedule_at(from_millis(50), [&fired] { ++fired; });
  sched.run_until(from_millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), from_millis(10));
  sched.run_until(from_millis(60));
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerWheelTest, ConcentratedPacingHorizonDoesNotGrowWheelAfterReserve) {
  // The even-spread bucket reserve is wrong on purpose for this workload: a
  // pacing gap wider than a level's bucket width concentrates the whole
  // population into the sliding insertion bucket (here 1000 synchronized
  // 50 ms timers, landing one level up), so steady state leans on the spare
  // pool — takeover on fill, park on drain/cascade. After reserve(), the
  // total wheel capacity (buckets + pool; swaps conserve it) must not move,
  // even across level-1/level-2 period boundaries (8.6 s), and nothing may
  // leak into unbounded ratchet growth over many wraps.
  Scheduler sched;
  sched.reserve(4096);
  struct Rearm {
    Scheduler* sched;
    void operator()() const {
      Scheduler* s = sched;
      s->schedule_in(from_millis(50), Rearm{s});
    }
  };
  for (int i = 0; i < 1000; ++i) sched.schedule_in(from_millis(50), Rearm{&sched});
  sched.run_until(from_seconds(2));  // settle: pool buffers find their buckets
  const Scheduler::Stats settled = sched.stats();
  sched.run_until(from_seconds(30));  // 3+ level-1 wraps
  const Scheduler::Stats after = sched.stats();
  EXPECT_EQ(after.wheel_capacity, settled.wheel_capacity);
  EXPECT_EQ(after.heap_capacity, settled.heap_capacity);
  EXPECT_EQ(after.run_capacity, settled.run_capacity);
  EXPECT_EQ(after.slot_capacity, settled.slot_capacity);
}

// The regression the ISSUE gates on: a full dumbbell scenario (the machinery
// under every paper figure) must produce byte-identical trajectories with
// the wheel enabled and disabled. Any divergence — one tie broken
// differently, one event reordered — shows up in the chaotic convergence
// dynamics within a few control intervals.
TEST(SchedulerWheelTest, ScenarioMetricsAreByteIdenticalWheelVsHeap) {
  const auto run = [](bool wheel) {
    ScenarioConfig cfg;
    cfg.pels_flows = 3;
    cfg.tcp_flows = 1;
    cfg.seed = 42;
    cfg.scheduler_wheel = wheel;
    auto s = std::make_unique<DumbbellScenario>(cfg);
    s->run_until(10 * kSecond);
    return s;
  };
  auto with_wheel = run(true);
  auto heap_only = run(false);

  EXPECT_GT(with_wheel->sim().scheduler().stats().bucket_loads, 0u)
      << "wheel run never touched the wheel; the comparison is vacuous";
  EXPECT_EQ(heap_only->sim().scheduler().stats().bucket_loads, 0u);

  for (int f = 0; f < with_wheel->pels_flow_count(); ++f) {
    const auto series = [](DumbbellScenario& s, int flow) {
      return std::vector<const TimeSeries*>{&s.source(flow).rate_series(),
                                            &s.source(flow).gamma_series(),
                                            &s.source(flow).loss_series()};
    };
    const auto a = series(*with_wheel, f);
    const auto b = series(*heap_only, f);
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k]->size(), b[k]->size()) << "flow " << f << " series " << k;
      for (std::size_t i = 0; i < a[k]->size(); ++i) {
        ASSERT_EQ((*a[k])[i].t, (*b[k])[i].t) << "flow " << f << " series " << k;
        // Bitwise, not approximate: the wheel must not perturb one ULP.
        ASSERT_EQ((*a[k])[i].value, (*b[k])[i].value)
            << "flow " << f << " series " << k << " point " << i;
      }
    }
    EXPECT_EQ(with_wheel->source(f).fgs_bytes_sent(), heap_only->source(f).fgs_bytes_sent());
    for (const Color c : {Color::kGreen, Color::kYellow, Color::kRed}) {
      EXPECT_EQ(with_wheel->sink(f).packets_received(c), heap_only->sink(f).packets_received(c));
    }
  }
  const auto& qa = with_wheel->pels_queue()->pels_group_counters();
  const auto& qb = heap_only->pels_queue()->pels_group_counters();
  for (std::size_t c = 0; c < kNumColors; ++c) {
    EXPECT_EQ(qa.arrivals[c], qb.arrivals[c]);
    EXPECT_EQ(qa.drops[c], qb.drops[c]);
  }
}

}  // namespace
}  // namespace pels
