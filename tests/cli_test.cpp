// Tests for the command-line flag parser used by examples and benches.
#include <gtest/gtest.h>

#include "util/cli.h"

namespace pels {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgsTest, EqualsForm) {
  const CliArgs args = parse({"--flows=4", "--seconds=12.5", "--name=test"});
  EXPECT_EQ(args.get_int("flows", 0), 4);
  EXPECT_DOUBLE_EQ(args.get_double("seconds", 0.0), 12.5);
  EXPECT_EQ(args.get_string("name", ""), "test");
}

TEST(CliArgsTest, SpaceForm) {
  const CliArgs args = parse({"--flows", "8", "--csv", "out.csv"});
  EXPECT_EQ(args.get_int("flows", 0), 8);
  EXPECT_EQ(args.get_string("csv", ""), "out.csv");
}

TEST(CliArgsTest, SwitchesAndDefaults) {
  const CliArgs args = parse({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
}

TEST(CliArgsTest, BooleanValues) {
  const CliArgs args = parse({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(CliArgsTest, SwitchFollowedByFlagIsNotAValue) {
  const CliArgs args = parse({"--verbose", "--flows=2"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("flows", 0), 2);
}

TEST(CliArgsTest, PositionalArgumentsPreserved) {
  const CliArgs args = parse({"input.txt", "--flows=1", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(CliArgsTest, MalformedNumbersFallBackAndReport) {
  const CliArgs args = parse({"--flows=abc", "--rate=1.2.3"});
  EXPECT_EQ(args.get_int("flows", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 9.0), 9.0);
  EXPECT_EQ(args.parse_errors().size(), 2u);
}

TEST(CliArgsTest, NegativeNumbersParse) {
  const CliArgs args = parse({"--offset=-5", "--gain=-0.5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
  EXPECT_DOUBLE_EQ(args.get_double("gain", 0.0), -0.5);
}

TEST(CliArgsTest, FlagNamesEnumerated) {
  const CliArgs args = parse({"--b=1", "--a=2"});
  const auto names = args.flag_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order: sorted
  EXPECT_EQ(names[1], "b");
}

TEST(CliArgsTest, LastOccurrenceWins) {
  const CliArgs args = parse({"--flows=1", "--flows=9"});
  EXPECT_EQ(args.get_int("flows", 0), 9);
}

}  // namespace
}  // namespace pels
