// Tests for src/net: packet/feedback-label semantics, link timing (serialization
// + propagation), host/agent dispatch, router forwarding, topology routing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cc/mkc.h"
#include "net/host.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/router.h"
#include "net/tcm.h"
#include "net/topology.h"
#include "queue/drop_tail.h"
#include "sim/simulation.h"

namespace pels {
namespace {

Packet make_packet(std::int32_t size, Color color = Color::kGreen) {
  Packet p;
  p.size_bytes = size;
  p.color = color;
  return p;
}

// --------------------------------------------------------------- Packet

TEST(PacketTest, ColorPredicates) {
  EXPECT_TRUE(is_pels_color(Color::kGreen));
  EXPECT_TRUE(is_pels_color(Color::kYellow));
  EXPECT_TRUE(is_pels_color(Color::kRed));
  EXPECT_FALSE(is_pels_color(Color::kInternet));
  EXPECT_FALSE(is_pels_color(Color::kAck));
}

TEST(PacketTest, ColorNames) {
  EXPECT_STREQ(color_name(Color::kGreen), "green");
  EXPECT_STREQ(color_name(Color::kYellow), "yellow");
  EXPECT_STREQ(color_name(Color::kRed), "red");
  EXPECT_STREQ(color_name(Color::kInternet), "internet");
  EXPECT_STREQ(color_name(Color::kAck), "ack");
}

TEST(FeedbackLabelTest, FirstStampAlwaysApplies) {
  FeedbackLabel label;
  EXPECT_FALSE(label.valid);
  label.maybe_override(3, 7, -0.5, -0.5);
  EXPECT_TRUE(label.valid);
  EXPECT_EQ(label.router_id, 3);
  EXPECT_EQ(label.epoch, 7u);
  EXPECT_DOUBLE_EQ(label.loss, -0.5);
}

TEST(FeedbackLabelTest, OverridesOnlyWithLargerLoss) {
  // Max-min rule: the most congested router's label wins (paper §5.2).
  FeedbackLabel label;
  label.maybe_override(1, 5, 0.10, 0.12);
  label.maybe_override(2, 9, 0.05, 0.06);  // less congested: ignored
  EXPECT_EQ(label.router_id, 1);
  EXPECT_EQ(label.epoch, 5u);
  label.maybe_override(2, 10, 0.20, 0.25);  // more congested: wins
  EXPECT_EQ(label.router_id, 2);
  EXPECT_DOUBLE_EQ(label.loss, 0.20);
}

TEST(FeedbackLabelTest, SameRouterRefreshesDownward) {
  // Regression: a router must be able to revise its *own* label downward
  // when its congestion clears. The old code applied the max-min `p > loss`
  // rule to the stamping router itself, latching the highest loss it ever
  // reported.
  FeedbackLabel label;
  label.maybe_override(1, 5, 0.50, 0.60);
  label.maybe_override(1, 6, -0.30, -0.25);  // bottleneck cleared
  EXPECT_EQ(label.router_id, 1);
  EXPECT_EQ(label.epoch, 6u);
  EXPECT_DOUBLE_EQ(label.loss, -0.30);
  EXPECT_DOUBLE_EQ(label.fgs_loss, -0.25);
}

TEST(FeedbackLabelTest, EpochFreshnessHelper) {
  EXPECT_TRUE(epoch_is_fresh(5, 6));       // normal advance
  EXPECT_FALSE(epoch_is_fresh(5, 5));      // repeat
  EXPECT_FALSE(epoch_is_fresh(8, 6));      // small backward jump: reordering
  EXPECT_FALSE(epoch_is_fresh(130, 2));    // jump of exactly the gap: stale
  EXPECT_TRUE(epoch_is_fresh(131, 2));     // beyond the gap: router restart
  EXPECT_TRUE(epoch_is_fresh(700, 1));     // restart from scratch
}

TEST(FeedbackLabelTest, SameRouterAcceptsEpochAfterRestart) {
  // A backward jump larger than kEpochRestartGap can only mean the router
  // restarted and is counting epochs from 1 again. Without this rule the
  // label (and every consumer keyed on it) would stay pinned to the
  // pre-restart epoch until the reborn router counts past it — minutes of
  // deafness at T = 30 ms.
  FeedbackLabel label;
  label.maybe_override(1, 700, 0.10, 0.12);
  label.maybe_override(1, 2, -0.40, -0.35);  // restarted router, fresh report
  EXPECT_EQ(label.router_id, 1);
  EXPECT_EQ(label.epoch, 2u);
  EXPECT_DOUBLE_EQ(label.loss, -0.40);
}

TEST(FeedbackLabelTest, SameRouterStillIgnoresSmallBackwardJump) {
  // Backward jumps within the gap are reordered stale labels, not restarts
  // (red-band queueing delays labels by at most ~100 epochs by design).
  FeedbackLabel label;
  label.maybe_override(1, 700, 0.10, 0.12);
  label.maybe_override(1, 640, 0.90, 0.95);  // stale, within the gap
  EXPECT_EQ(label.epoch, 700u);
  EXPECT_DOUBLE_EQ(label.loss, 0.10);
}

TEST(FeedbackLabelTest, SameRouterIgnoresStaleEpoch) {
  // A reordered packet may carry an older same-router report; it must not
  // roll the label back in time.
  FeedbackLabel label;
  label.maybe_override(1, 8, 0.10, 0.12);
  label.maybe_override(1, 6, 0.90, 0.95);  // stale epoch: ignored
  EXPECT_EQ(label.epoch, 8u);
  EXPECT_DOUBLE_EQ(label.loss, 0.10);
  label.maybe_override(1, 8, 0.30, 0.35);  // same epoch: refresh is fine
  EXPECT_DOUBLE_EQ(label.loss, 0.30);
}

TEST(FeedbackLabelTest, CrossRouterMaxMinUnaffectedByRefreshRule) {
  // The same-router refresh must not weaken max-min semantics across
  // routers: a *different* router still needs strictly larger loss to win.
  FeedbackLabel label;
  label.maybe_override(1, 5, 0.40, 0.45);
  label.maybe_override(2, 50, 0.40, 0.45);  // equal loss: stored label kept
  EXPECT_EQ(label.router_id, 1);
  label.maybe_override(2, 51, 0.10, 0.15);  // smaller: kept
  EXPECT_EQ(label.router_id, 1);
  // Router 1 revises down, and now router 2's report can take over.
  label.maybe_override(1, 6, 0.05, 0.06);
  label.maybe_override(2, 52, 0.10, 0.15);
  EXPECT_EQ(label.router_id, 2);
  EXPECT_DOUBLE_EQ(label.loss, 0.10);
}

TEST(FeedbackLabelTest, SenderRateRecoversAfterBottleneckClears) {
  // End-to-end regression for the stale-label bug: drive an MKC controller
  // from one persistent label. While the router reports congestion the rate
  // collapses; once the same router reports a cleared bottleneck (negative
  // loss in fresh epochs) the rate must ramp back up. With the latched
  // label the controller kept seeing p = 0.5 forever and stayed pinned.
  MkcController mkc(MkcConfig{});
  FeedbackLabel label;
  std::uint64_t z = 1;
  for (int i = 0; i < 50; ++i) {
    label.maybe_override(7, z++, 0.5, 0.5);
    mkc.on_router_feedback(label.loss, 0);
  }
  const double congested_rate = mkc.rate_bps();
  EXPECT_LT(congested_rate, mkc.config().initial_rate_bps);
  for (int i = 0; i < 50; ++i) {
    label.maybe_override(7, z++, -0.5, -0.5);
    mkc.on_router_feedback(label.loss, 0);
  }
  EXPECT_DOUBLE_EQ(label.loss, -0.5);
  EXPECT_GT(mkc.rate_bps(), 10.0 * congested_rate);
}

// ------------------------------------------------------------------ Link

/// Test node that records deliveries with timestamps.
class RecordingNode : public Node {
 public:
  RecordingNode(NodeId id, Simulation& sim) : Node(id, "rec"), sim_(sim) {}
  void receive(Packet pkt) override {
    arrivals.emplace_back(sim_.now(), std::move(pkt));
  }
  std::vector<std::pair<SimTime, Packet>> arrivals;

 private:
  Simulation& sim_;
};

TEST(LinkTest, SingleDeliveryTiming) {
  Simulation sim;
  RecordingNode dst(0, sim);
  // 500 bytes at 4 mb/s = 1 ms serialization; 10 ms propagation.
  Link link(sim, dst, 4e6, from_millis(10), std::make_unique<DropTailQueue>(16));
  EXPECT_TRUE(link.send(make_packet(500)));
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(11));
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(500));
  link.send(make_packet(500));
  link.send(make_packet(500));
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 3u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(1));
  EXPECT_EQ(dst.arrivals[1].first, from_millis(2));
  EXPECT_EQ(dst.arrivals[2].first, from_millis(3));
}

TEST(LinkTest, PropagationIsPipelined) {
  // With a long propagation delay, packet 2 must not wait for packet 1 to
  // arrive — only for the wire to be free.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, from_millis(100), std::make_unique<DropTailQueue>(16));
  link.send(make_packet(500));
  link.send(make_packet(500));
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 2u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(101));
  EXPECT_EQ(dst.arrivals[1].first, from_millis(102));  // not 202
}

TEST(LinkTest, QueueOverflowDrops) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(2));
  // First send starts transmitting immediately (dequeued), so the queue
  // holds the next two; the fourth is dropped.
  EXPECT_TRUE(link.send(make_packet(500)));
  EXPECT_TRUE(link.send(make_packet(500)));
  EXPECT_TRUE(link.send(make_packet(500)));
  EXPECT_FALSE(link.send(make_packet(500)));
  sim.run();
  EXPECT_EQ(dst.arrivals.size(), 3u);
  EXPECT_EQ(link.queue().counters().total_drops(), 1u);
}

TEST(LinkTest, DeliveryCountersAdvance) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 1e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(100));
  link.send(make_packet(200));
  sim.run();
  EXPECT_EQ(link.packets_delivered(), 2u);
  EXPECT_EQ(link.bytes_delivered(), 300u);
}

TEST(LinkTest, UtilizationReflectsBusyFraction) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(500));  // 1 ms busy
  sim.run();                    // sim ends at 1 ms
  EXPECT_NEAR(link.utilization(), 1.0, 1e-9);
  sim.run_until(from_millis(2));
  EXPECT_NEAR(link.utilization(), 0.5, 1e-9);
}

TEST(LinkTest, IdleLinkRestartsOnNewArrival) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(500));
  sim.run();
  EXPECT_EQ(dst.arrivals.size(), 1u);
  sim.at(from_millis(10), [&] { link.send(make_packet(500)); });
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 2u);
  EXPECT_EQ(dst.arrivals[1].first, from_millis(11));
}

// --------------------------------------------------------- Host dispatch

class CountingAgent : public Agent {
 public:
  void on_packet(const Packet& pkt) override {
    ++count;
    last = pkt;
  }
  int count = 0;
  Packet last;
};

TEST(HostTest, DispatchesByFlowId) {
  Host host(0, "h");
  CountingAgent a1, a2;
  host.register_agent(1, &a1);
  host.register_agent(2, &a2);
  Packet p = make_packet(100);
  p.flow = 2;
  host.receive(std::move(p));
  EXPECT_EQ(a1.count, 0);
  EXPECT_EQ(a2.count, 1);
  EXPECT_EQ(host.packets_received(), 1u);
}

TEST(HostTest, UnknownFlowIsCountedNotCrashed) {
  Host host(0, "h");
  Packet p = make_packet(100);
  p.flow = 42;
  host.receive(std::move(p));
  EXPECT_EQ(host.packets_undeliverable(), 1u);
}

TEST(HostTest, UnregisterStopsDispatch) {
  Host host(0, "h");
  CountingAgent a;
  host.register_agent(1, &a);
  host.unregister_agent(1);
  Packet p = make_packet(100);
  p.flow = 1;
  host.receive(std::move(p));
  EXPECT_EQ(a.count, 0);
}

TEST(HostTest, SendWithoutRouteFails) {
  Host host(0, "h");
  Packet p = make_packet(100);
  p.dst = 5;
  EXPECT_FALSE(host.send(std::move(p)));
  EXPECT_EQ(host.packets_undeliverable(), 1u);
}

// ---------------------------------------------------------------- Router

TEST(RouterTest, ForwardsAlongTable) {
  Simulation sim;
  RecordingNode dst(7, sim);
  Link link(sim, dst, 1e6, 0, std::make_unique<DropTailQueue>(16));
  Router router(1, "r");
  router.routing().set_route(7, &link);
  Packet p = make_packet(100);
  p.dst = 7;
  router.receive(std::move(p));
  sim.run();
  EXPECT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(router.packets_forwarded(), 1u);
}

TEST(RouterTest, UnroutableIsCounted) {
  Router router(1, "r");
  Packet p = make_packet(100);
  p.dst = 9;
  router.receive(std::move(p));
  EXPECT_EQ(router.packets_unroutable(), 1u);
}

// -------------------------------------------------------------- Topology

QueueFactory small_fifo() {
  return [](double) { return std::make_unique<DropTailQueue>(64); };
}

TEST(TopologyTest, ComputesRoutesAcrossChain) {
  // h1 - r1 - r2 - h2: h1's packet must traverse both routers.
  Simulation sim;
  Topology topo(sim);
  Host& h1 = topo.add_host("h1");
  Router& r1 = topo.add_router("r1");
  Router& r2 = topo.add_router("r2");
  Host& h2 = topo.add_host("h2");
  topo.connect(h1, r1, 1e6, from_millis(1), small_fifo());
  topo.connect(r1, r2, 1e6, from_millis(1), small_fifo());
  topo.connect(r2, h2, 1e6, from_millis(1), small_fifo());
  topo.compute_routes();

  CountingAgent sink;
  h2.register_agent(1, &sink);
  Packet p = make_packet(125);  // 1 ms at 1 mb/s
  p.flow = 1;
  p.dst = h2.id();
  EXPECT_TRUE(h1.send(std::move(p)));
  sim.run();
  EXPECT_EQ(sink.count, 1);
  // 3 hops x (1 ms serialization + 1 ms propagation) = 6 ms.
  EXPECT_EQ(sim.now(), from_millis(6));
}

TEST(TopologyTest, ReverseRouteWorks) {
  Simulation sim;
  Topology topo(sim);
  Host& h1 = topo.add_host("h1");
  Router& r1 = topo.add_router("r1");
  Host& h2 = topo.add_host("h2");
  topo.connect(h1, r1, 1e6, 0, small_fifo());
  topo.connect(r1, h2, 1e6, 0, small_fifo());
  topo.compute_routes();

  CountingAgent sink1;
  h1.register_agent(1, &sink1);
  Packet p = make_packet(100);
  p.flow = 1;
  p.dst = h1.id();
  EXPECT_TRUE(h2.send(std::move(p)));
  sim.run();
  EXPECT_EQ(sink1.count, 1);
}

TEST(TopologyTest, DumbbellAllPairsReachable) {
  Simulation sim;
  Topology topo(sim);
  Router& r1 = topo.add_router("r1");
  Router& r2 = topo.add_router("r2");
  topo.connect(r1, r2, 1e6, 0, small_fifo());
  std::vector<Host*> left, right;
  for (int i = 0; i < 3; ++i) {
    Host& l = topo.add_host("l");
    Host& r = topo.add_host("r");
    topo.connect(l, r1, 1e6, 0, small_fifo());
    topo.connect(r2, r, 1e6, 0, small_fifo());
    left.push_back(&l);
    right.push_back(&r);
  }
  topo.compute_routes();

  std::vector<CountingAgent> sinks(3);
  for (int i = 0; i < 3; ++i) {
    right[static_cast<std::size_t>(i)]->register_agent(i, &sinks[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 3; ++i) {
    Packet p = make_packet(100);
    p.flow = i;
    p.dst = right[static_cast<std::size_t>(i)]->id();
    EXPECT_TRUE(left[static_cast<std::size_t>(i)]->send(std::move(p)));
  }
  sim.run();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(sinks[static_cast<std::size_t>(i)].count, 1);
  EXPECT_EQ(topo.node_count(), 8u);
  EXPECT_EQ(topo.link_count(), 14u);
}

TEST(TopologyTest, RecomputeAfterAddingLink) {
  Simulation sim;
  Topology topo(sim);
  Host& h1 = topo.add_host("h1");
  Host& h2 = topo.add_host("h2");
  topo.compute_routes();
  {
    Packet p = make_packet(100);
    p.dst = h2.id();
    EXPECT_FALSE(h1.send(std::move(p)));  // no path yet
  }
  topo.connect(h1, h2, 1e6, 0, small_fifo());
  topo.compute_routes();
  CountingAgent sink;
  h2.register_agent(0, &sink);
  Packet p = make_packet(100);
  p.flow = 0;
  p.dst = h2.id();
  EXPECT_TRUE(h1.send(std::move(p)));
  sim.run();
  EXPECT_EQ(sink.count, 1);
}

// ------------------------------------------------------------------ srTCM

TEST(SrTcmTest, ConformingTrafficStaysGreen) {
  // 1 mb/s CIR, packets offered at exactly 1 mb/s: all green.
  SrTcmMarker m(TcmConfig{1e6, 8000, 8000});
  SimTime t = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(m.mark(500, t), Color::kGreen) << "packet " << i;
    t += from_millis(4);  // 500 B at 1 mb/s
  }
}

TEST(SrTcmTest, BurstBeyondCbsGoesYellowThenRed) {
  // All packets at t=0: CBS covers the first 16, EBS the next 16, rest red.
  SrTcmMarker m(TcmConfig{1e6, 8000, 8000});
  int green = 0;
  int yellow = 0;
  int red = 0;
  for (int i = 0; i < 48; ++i) {
    switch (m.mark(500, 0)) {
      case Color::kGreen: ++green; break;
      case Color::kYellow: ++yellow; break;
      default: ++red; break;
    }
  }
  EXPECT_EQ(green, 16);
  EXPECT_EQ(yellow, 16);
  EXPECT_EQ(red, 16);
}

TEST(SrTcmTest, SustainedOverrateSplitsAtCir) {
  // Offer 2 mb/s against a 1 mb/s CIR for a long window: ~half green, the
  // excess bucket refills only from committed overflow (rarely), so the
  // rest is almost all red.
  SrTcmMarker m(TcmConfig{1e6, 4000, 4000});
  int green = 0;
  SimTime t = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (m.mark(500, t) == Color::kGreen) ++green;
    t += from_millis(2);  // 500 B at 2 mb/s
  }
  EXPECT_NEAR(static_cast<double>(green) / n, 0.5, 0.02);
}

TEST(SrTcmTest, BucketsRecoverWhenIdle) {
  SrTcmMarker m(TcmConfig{1e6, 8000, 8000});
  for (int i = 0; i < 48; ++i) m.mark(500, 0);  // drain both buckets
  EXPECT_EQ(m.mark(500, 0), Color::kRed);
  // 128 ms at 1 mb/s refills 16 kB: committed fills to 8 kB first, the
  // overflow fills excess to its 8 kB cap; the green mark spends committed.
  EXPECT_EQ(m.mark(500, from_millis(128)), Color::kGreen);
  EXPECT_NEAR(m.excess_tokens(), 8000.0, 1.0);
  EXPECT_NEAR(m.committed_tokens(), 7500.0, 1.0);
}

TEST(SrTcmTest, SetCirChangesRefillRate) {
  SrTcmMarker m(TcmConfig{1e6, 8000, 8000});
  for (int i = 0; i < 48; ++i) m.mark(500, 0);
  m.set_cir(8e6);
  // 8 ms at 8 mb/s refills 8 kB into the committed bucket.
  EXPECT_EQ(m.mark(500, from_millis(8)), Color::kGreen);
}

}  // namespace
}  // namespace pels
