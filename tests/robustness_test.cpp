// Failure-injection and robustness tests: link degradation, lossy ACK paths,
// flow churn. The paper's framework must keep its invariants (green
// protection, red-absorbs-loss, convergence to the new equilibrium) when the
// environment changes under it.
#include <gtest/gtest.h>

#include "analysis/stability.h"
#include "cc/mkc.h"
#include "pels/scenario.h"
#include "util/stats.h"

namespace pels {
namespace {

ScenarioConfig base_config(int flows) {
  ScenarioConfig cfg;
  cfg.pels_flows = flows;
  cfg.tcp_flows = 3;
  cfg.seed = 17;
  return cfg;
}

// ----------------------------------------------------- capacity changes

TEST(RobustnessTest, CapacityDegradationReconverges) {
  // Halve the bottleneck at t = 20 s: flows must settle at the new
  // stationary rate C'/N + alpha/beta without losing green packets.
  ScenarioConfig cfg = base_config(2);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  const double before = s.source(0).rate_series().mean_in(15 * kSecond, 20 * kSecond);
  s.set_bottleneck_bandwidth(2e6);  // PELS share drops 2 mb/s -> 1 mb/s
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(40 * kSecond, 50 * kSecond);
  const double r_star_new = MkcController::stationary_rate(1e6, 2, cfg.mkc);
  EXPECT_NEAR(after, r_star_new, r_star_new * 0.08);
  EXPECT_LT(after, before * 0.65);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(30 * kSecond, 50 * kSecond), 1e-6);
}

TEST(RobustnessTest, CapacityUpgradeIsClaimed) {
  ScenarioConfig cfg = base_config(2);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  s.set_bottleneck_bandwidth(8e6);  // PELS share 2 mb/s -> 4 mb/s
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(40 * kSecond, 50 * kSecond);
  const double r_star_new = MkcController::stationary_rate(4e6, 2, cfg.mkc);
  EXPECT_NEAR(after, r_star_new, r_star_new * 0.08);
}

TEST(RobustnessTest, GammaTracksLossAcrossCapacityDrop) {
  // After the drop the relative overshoot doubles; gamma must rise with it
  // and red keeps absorbing the loss (yellow stays protected).
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  const double gamma_before = s.source(0).gamma_series().mean_in(20 * kSecond, 30 * kSecond);
  s.set_bottleneck_bandwidth(2.4e6);
  s.run_until(70 * kSecond);
  const double gamma_after = s.source(0).gamma_series().mean_in(55 * kSecond, 70 * kSecond);
  EXPECT_GT(gamma_after, gamma_before * 1.5);
  EXPECT_LT(s.loss_series(Color::kYellow).mean_in(45 * kSecond, 70 * kSecond), 0.02);
}

// ------------------------------------------------------- lossy ACK path

TEST(RobustnessTest, SurvivesAckLoss) {
  // 20% of ACKs vanish: feedback arrives via the surviving ACKs (every data
  // packet is acknowledged, and epochs are consumed at most once anyway), so
  // the equilibrium must be unchanged.
  ScenarioConfig clean_cfg = base_config(2);
  DumbbellScenario clean(clean_cfg);
  clean.run_until(30 * kSecond);
  ScenarioConfig lossy_cfg = base_config(2);
  lossy_cfg.ack_loss = 0.2;
  DumbbellScenario lossy(lossy_cfg);
  lossy.run_until(30 * kSecond);

  const double clean_rate = clean.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  const double lossy_rate = lossy.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  EXPECT_NEAR(lossy_rate, clean_rate, clean_rate * 0.05);
  lossy.finish();
  EXPECT_GT(lossy.sink(0).mean_utility(), 0.95);
}

TEST(RobustnessTest, HeavyAckLossDegradesGracefully) {
  // Even at 60% ACK loss the control loop keeps functioning (rates bounded,
  // green never dropped); loss measurement gets noisier, nothing diverges.
  ScenarioConfig cfg = base_config(2);
  cfg.ack_loss = 0.6;
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  const double rate = s.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_GT(rate, r_star * 0.7);
  EXPECT_LT(rate, r_star * 1.3);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(10 * kSecond, 30 * kSecond), 1e-6);
}

// -------------------------------------------------- non-congestive loss

TEST(RobustnessTest, WirelessLossDoesNotConfuseMkc) {
  // Corruption happens after the queue; MKC's demand-based feedback cannot
  // see it, so the sending rate must be unchanged (unlike loss-based CC).
  ScenarioConfig clean_cfg = base_config(2);
  DumbbellScenario clean(clean_cfg);
  clean.run_until(30 * kSecond);
  ScenarioConfig lossy_cfg = base_config(2);
  lossy_cfg.wireless_loss = 0.05;
  DumbbellScenario lossy(lossy_cfg);
  lossy.run_until(30 * kSecond);
  const double r_clean = clean.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  const double r_lossy = lossy.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  EXPECT_NEAR(r_lossy, r_clean, r_clean * 0.03);
}

TEST(RobustnessTest, WirelessLossDegradesUtilityAsBestEffort) {
  // Post-queue corruption is uniform random loss on the decodable classes:
  // utility falls toward the best-effort analysis at the corruption rate.
  ScenarioConfig cfg = base_config(2);
  cfg.wireless_loss = 0.05;
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  s.finish();
  const double u = s.sink(0).mean_utility();
  EXPECT_LT(u, 0.85);
  EXPECT_GT(u, 0.3);
}

// ------------------------------------------------------------ flow churn

TEST(RobustnessTest, DepartingFlowReleasesBandwidth) {
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  const double shared = s.source(0).rate_series().mean_in(15 * kSecond, 20 * kSecond);
  // Flows 2 and 3 leave.
  s.source(2).stop();
  s.source(3).stop();
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(40 * kSecond, 50 * kSecond);
  const double r_star_2 = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_GT(after, shared * 1.5);
  EXPECT_NEAR(after, r_star_2, r_star_2 * 0.08);
}

TEST(RobustnessTest, RepeatedChurnKeepsUtilityHigh) {
  ScenarioConfig cfg = base_config(6);
  cfg.start_times = staircase_starts(6, 2, 8 * kSecond);
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  s.source(4).stop();
  s.source(5).stop();
  s.run_until(45 * kSecond);
  s.finish();
  EXPECT_GT(s.sink(0).mean_utility(), 0.9);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(5 * kSecond, 45 * kSecond), 1e-6);
}

}  // namespace
}  // namespace pels
