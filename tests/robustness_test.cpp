// Failure-injection and robustness tests: link degradation, lossy ACK paths,
// flow churn. The paper's framework must keep its invariants (green
// protection, red-absorbs-loss, convergence to the new equilibrium) when the
// environment changes under it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/stability.h"
#include "cc/mkc.h"
#include "exp/sweep.h"
#include "pels/metrics.h"
#include "pels/scenario.h"
#include "util/stats.h"

namespace pels {
namespace {

ScenarioConfig base_config(int flows) {
  ScenarioConfig cfg;
  cfg.pels_flows = flows;
  cfg.tcp_flows = 3;
  cfg.seed = 17;
  return cfg;
}

// ----------------------------------------------------- capacity changes

TEST(RobustnessTest, CapacityDegradationReconverges) {
  // Halve the bottleneck at t = 20 s: flows must settle at the new
  // stationary rate C'/N + alpha/beta without losing green packets.
  ScenarioConfig cfg = base_config(2);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  const double before = s.source(0).rate_series().mean_in(15 * kSecond, 20 * kSecond);
  s.set_bottleneck_bandwidth(2e6);  // PELS share drops 2 mb/s -> 1 mb/s
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(40 * kSecond, 50 * kSecond);
  const double r_star_new = MkcController::stationary_rate(1e6, 2, cfg.mkc);
  EXPECT_NEAR(after, r_star_new, r_star_new * 0.08);
  EXPECT_LT(after, before * 0.65);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(30 * kSecond, 50 * kSecond), 1e-6);
}

TEST(RobustnessTest, CapacityUpgradeIsClaimed) {
  ScenarioConfig cfg = base_config(2);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  s.set_bottleneck_bandwidth(8e6);  // PELS share 2 mb/s -> 4 mb/s
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(40 * kSecond, 50 * kSecond);
  const double r_star_new = MkcController::stationary_rate(4e6, 2, cfg.mkc);
  EXPECT_NEAR(after, r_star_new, r_star_new * 0.08);
}

TEST(RobustnessTest, GammaTracksLossAcrossCapacityDrop) {
  // After the drop the relative overshoot doubles; gamma must rise with it
  // and red keeps absorbing the loss (yellow stays protected).
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  const double gamma_before = s.source(0).gamma_series().mean_in(20 * kSecond, 30 * kSecond);
  s.set_bottleneck_bandwidth(2.4e6);
  s.run_until(70 * kSecond);
  const double gamma_after = s.source(0).gamma_series().mean_in(55 * kSecond, 70 * kSecond);
  EXPECT_GT(gamma_after, gamma_before * 1.5);
  EXPECT_LT(s.loss_series(Color::kYellow).mean_in(45 * kSecond, 70 * kSecond), 0.02);
}

// ------------------------------------------------------- lossy ACK path

TEST(RobustnessTest, SurvivesAckLoss) {
  // 20% of ACKs vanish: feedback arrives via the surviving ACKs (every data
  // packet is acknowledged, and epochs are consumed at most once anyway), so
  // the equilibrium must be unchanged.
  // The clean and lossy runs are independent simulations — run the pair
  // through the sweep engine (exercises the share-nothing task model).
  struct Run {
    double rate;
    double utility;
  };
  std::vector<std::function<Run()>> tasks;
  for (double ack_loss : {0.0, 0.2}) {
    tasks.push_back([ack_loss] {
      ScenarioConfig cfg = base_config(2);
      cfg.ack_loss = ack_loss;
      DumbbellScenario s(cfg);
      s.run_until(30 * kSecond);
      const double rate = s.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
      s.finish();
      return Run{rate, s.sink(0).mean_utility()};
    });
  }
  SweepRunner runner;
  const auto outcomes = runner.run(std::move(tasks));
  ASSERT_TRUE(outcomes[0].ok() && outcomes[1].ok());
  const double clean_rate = outcomes[0].value->rate;
  const double lossy_rate = outcomes[1].value->rate;
  EXPECT_NEAR(lossy_rate, clean_rate, clean_rate * 0.05);
  EXPECT_GT(outcomes[1].value->utility, 0.95);
}

TEST(RobustnessTest, HeavyAckLossDegradesGracefully) {
  // Even at 60% ACK loss the control loop keeps functioning (rates bounded,
  // green never dropped); loss measurement gets noisier, nothing diverges.
  ScenarioConfig cfg = base_config(2);
  cfg.ack_loss = 0.6;
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  const double rate = s.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_GT(rate, r_star * 0.7);
  EXPECT_LT(rate, r_star * 1.3);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(10 * kSecond, 30 * kSecond), 1e-6);
}

// -------------------------------------------------- non-congestive loss

TEST(RobustnessTest, WirelessLossDoesNotConfuseMkc) {
  // Corruption happens after the queue; MKC's demand-based feedback cannot
  // see it, so the sending rate must be unchanged (unlike loss-based CC).
  std::vector<std::function<double()>> tasks;
  for (double wireless_loss : {0.0, 0.05}) {
    tasks.push_back([wireless_loss] {
      ScenarioConfig cfg = base_config(2);
      cfg.wireless_loss = wireless_loss;
      DumbbellScenario s(cfg);
      s.run_until(30 * kSecond);
      return s.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
    });
  }
  SweepRunner runner;
  const auto outcomes = runner.run(std::move(tasks));
  ASSERT_TRUE(outcomes[0].ok() && outcomes[1].ok());
  const double r_clean = *outcomes[0].value;
  const double r_lossy = *outcomes[1].value;
  EXPECT_NEAR(r_lossy, r_clean, r_clean * 0.03);
}

TEST(RobustnessTest, WirelessLossDegradesUtilityAsBestEffort) {
  // Post-queue corruption is uniform random loss on the decodable classes:
  // utility falls toward the best-effort analysis at the corruption rate.
  ScenarioConfig cfg = base_config(2);
  cfg.wireless_loss = 0.05;
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  s.finish();
  const double u = s.sink(0).mean_utility();
  EXPECT_LT(u, 0.85);
  EXPECT_GT(u, 0.3);
}

// ------------------------------------------------------------ flow churn

TEST(RobustnessTest, DepartingFlowReleasesBandwidth) {
  ScenarioConfig cfg = base_config(4);
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  const double shared = s.source(0).rate_series().mean_in(15 * kSecond, 20 * kSecond);
  // Flows 2 and 3 leave.
  s.source(2).stop();
  s.source(3).stop();
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(40 * kSecond, 50 * kSecond);
  const double r_star_2 = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_GT(after, shared * 1.5);
  EXPECT_NEAR(after, r_star_2, r_star_2 * 0.08);
}

TEST(RobustnessTest, RepeatedChurnKeepsUtilityHigh) {
  ScenarioConfig cfg = base_config(6);
  cfg.start_times = staircase_starts(6, 2, 8 * kSecond);
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  s.source(4).stop();
  s.source(5).stop();
  s.run_until(45 * kSecond);
  s.finish();
  EXPECT_GT(s.sink(0).mean_utility(), 0.9);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(5 * kSecond, 45 * kSecond), 1e-6);
}

// --------------------------------------------------- scripted fault plans

TEST(RobustnessTest, AckBlackoutDecaysAndRecovers) {
  // 5 s total feedback blackout: every ACK on the reverse bottleneck wire is
  // lost in [20, 25) s. The watchdog must decay the rate (holding it would
  // mean driving an open loop; the seed froze at the pre-blackout value),
  // green must stay protected throughout, and the flows must re-converge to
  // the stationary rate within 10 s of feedback resuming.
  ScenarioConfig cfg = base_config(2);
  cfg.faults.ack_blackouts.push_back({20 * kSecond, 25 * kSecond});
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  const double before = s.source(0).rate_series().mean_in(15 * kSecond, 20 * kSecond);
  s.run_until(from_seconds(24.9));
  EXPECT_TRUE(s.source(0).feedback_silent());
  EXPECT_GT(s.source(0).silent_intervals(), 10u);
  const double during = s.source(0).rate_bps();
  EXPECT_LT(during, 0.5 * before);           // decayed, not frozen-high
  EXPECT_GE(during, cfg.mkc.min_rate_bps);   // and not collapsed to zero
  s.run_until(35 * kSecond);
  EXPECT_FALSE(s.source(0).feedback_silent());
  const double after = s.source(0).rate_series().mean_in(31 * kSecond, 35 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_NEAR(after, r_star, r_star * 0.08);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(10 * kSecond, 35 * kSecond), 1e-6);
}

TEST(RobustnessTest, RouterRestartDoesNotDeafenSenders) {
  // Restart the bottleneck's control plane at t = 20 s: the feedback meter
  // resumes stamping at epoch 1, a backward jump of ~600 epochs. The
  // watchdog is disabled here to isolate the epoch-restart rule — on the
  // seed's strict `z > seen` filter the senders would ignore every label for
  // another ~20 s until the reborn router counted past the old epoch.
  ScenarioConfig cfg = base_config(2);
  cfg.source.feedback_timeout = 0;
  cfg.faults.router_restarts.push_back({20 * kSecond});
  DumbbellScenario s(cfg);
  s.run_until(21 * kSecond);
  const std::int32_t router = s.source(0).governing_router();
  const std::uint64_t consumed_at_21 = s.source(0).feedback_consumed(router);
  EXPECT_GT(consumed_at_21, 0u);
  s.run_until(23 * kSecond);
  // Labels keep being consumed right through the restart (~33 epochs/s).
  EXPECT_GT(s.source(0).feedback_consumed(router), consumed_at_21 + 30);
  // And the loop is demonstrably closed: a capacity drop after the restart
  // still reconverges to the new stationary rate.
  s.set_bottleneck_bandwidth(2e6);
  s.run_until(40 * kSecond);
  const double after = s.source(0).rate_series().mean_in(34 * kSecond, 40 * kSecond);
  const double r_star_new = MkcController::stationary_rate(1e6, 2, cfg.mkc);
  EXPECT_NEAR(after, r_star_new, r_star_new * 0.08);
}

TEST(RobustnessTest, ForwardLinkFlapRecovers) {
  // Hard carrier loss on the bottleneck wire for 2 s: no data reaches the
  // sinks, so no ACKs flow and the watchdog decays the rate; on recovery the
  // flows re-probe back to the stationary point.
  ScenarioConfig cfg = base_config(2);
  cfg.faults.link_flaps.push_back({20 * kSecond, 22 * kSecond});
  DumbbellScenario s(cfg);
  s.run_until(20 * kSecond);
  const double before = s.source(0).rate_series().mean_in(15 * kSecond, 20 * kSecond);
  s.run_until(from_seconds(21.9));
  EXPECT_TRUE(s.source(0).feedback_silent());
  EXPECT_LT(s.source(0).rate_bps(), 0.7 * before);
  s.run_until(35 * kSecond);
  const double after = s.source(0).rate_series().mean_in(30 * kSecond, 35 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  EXPECT_NEAR(after, r_star, r_star * 0.08);
}

TEST(RobustnessTest, BrownoutTracksDegradedCapacityAndRestores) {
  // 50% bandwidth brown-out for 15 s: the AQM's capacity share follows the
  // wire, so the flows settle at the degraded stationary rate, then return.
  ScenarioConfig cfg = base_config(2);
  cfg.faults.brownouts.push_back({20 * kSecond, 35 * kSecond, 0.5});
  DumbbellScenario s(cfg);
  s.run_until(35 * kSecond);
  const double during = s.source(0).rate_series().mean_in(30 * kSecond, 35 * kSecond);
  const double r_low = MkcController::stationary_rate(1e6, 2, cfg.mkc);
  EXPECT_NEAR(during, r_low, r_low * 0.10);
  s.run_until(50 * kSecond);
  const double after = s.source(0).rate_series().mean_in(45 * kSecond, 50 * kSecond);
  const double r_full = MkcController::stationary_rate(2e6, 2, cfg.mkc);
  EXPECT_NEAR(after, r_full, r_full * 0.08);
  EXPECT_LT(s.loss_series(Color::kGreen).mean_in(30 * kSecond, 50 * kSecond), 1e-6);
}

TEST(RobustnessTest, BurstCorruptionDoesNotConfuseMkc) {
  // Gilbert–Elliott corruption is post-queue, non-congestive loss: MKC's
  // demand-based feedback cannot see it, so the sending rate must match the
  // clean run even though utility takes the hit.
  ScenarioConfig clean_cfg = base_config(2);
  DumbbellScenario clean(clean_cfg);
  clean.run_until(30 * kSecond);
  ScenarioConfig burst_cfg = base_config(2);
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.01;
  ge.p_bad_to_good = 0.20;
  ge.loss_bad = 0.5;  // ~2.4% stationary loss, in ~5-packet bursts
  burst_cfg.faults.burst_corruption = ge;
  DumbbellScenario bursty(burst_cfg);
  bursty.run_until(30 * kSecond);
  const double r_clean = clean.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  const double r_burst = bursty.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  EXPECT_NEAR(r_burst, r_clean, r_clean * 0.03);
  bursty.finish();
  const double u = bursty.sink(0).mean_utility();
  EXPECT_LT(u, 0.95);  // prefix holes punched by the bursts
  EXPECT_GT(u, 0.3);
}

// ------------------------------------------------------ deterministic replay

ScenarioConfig faulted_config() {
  ScenarioConfig cfg = base_config(2);
  cfg.faults.ack_blackouts.push_back({8 * kSecond, 10 * kSecond});
  cfg.faults.link_flaps.push_back({14 * kSecond, 15 * kSecond});
  cfg.faults.brownouts.push_back({18 * kSecond, 20 * kSecond, 0.5});
  cfg.faults.router_restarts.push_back({22 * kSecond});
  cfg.faults.burst_corruption = GilbertElliottConfig{};
  return cfg;
}

std::string run_faulted_and_dump(const std::string& path) {
  DumbbellScenario s(faulted_config());
  s.run_until(30 * kSecond);
  s.finish();
  EXPECT_TRUE(write_metrics_csv(s, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(RobustnessTest, FaultScheduleReplaysBitForBit) {
  // The full fault vocabulary active at once: identical seed + plan must
  // reproduce every exported trajectory byte-for-byte, or no failure run
  // could ever be debugged by re-running it.
  const std::string a = run_faulted_and_dump(testing::TempDir() + "fault_replay_a.csv");
  const std::string b = run_faulted_and_dump(testing::TempDir() + "fault_replay_b.csv");
  ASSERT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------- config validation

TEST(RobustnessTest, ScenarioConfigValidationFailsFast) {
  {
    ScenarioConfig cfg = base_config(2);
    cfg.pels_flows = 0;
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = base_config(2);
    cfg.ack_loss = 1.0;
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = base_config(2);
    cfg.bottleneck_bps = 0.0;
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = base_config(2);
    cfg.mkc.beta = 2.0;  // outside MKC's stability region
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = base_config(2);
    cfg.source.gamma.sigma = 2.0;  // outside eq. (4)'s stability region
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = base_config(2);
    cfg.bottleneck = BottleneckKind::kBestEffort;
    cfg.faults.router_restarts.push_back({10 * kSecond});
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = base_config(2);
    cfg.faults.brownouts.push_back({10 * kSecond, 5 * kSecond, 0.5});
    EXPECT_THROW(DumbbellScenario s(cfg), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pels
