// SweepRunner tests: the determinism contract (threads=N produces
// byte-identical CSV to threads=1, with and without fault injection), per-task
// error capture, and the submission-order output buffering that makes going
// parallel invisible in a bench's stdout.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep.h"
#include "pels/scenario.h"
#include "util/table.h"

namespace pels {
namespace {

// ------------------------------------------------------------ pool basics

TEST(SweepRunnerTest, ExplicitThreadCountIsClampedToHardware) {
  SweepRunner one(1);
  EXPECT_EQ(one.thread_count(), 1u);
  EXPECT_EQ(one.requested_threads(), 1u);
  // Oversubscribing a DES sweep only adds scheduling noise (this is what
  // produced the phantom "scaling regression" on small CI boxes), so the
  // worker count is clamped to the hardware while the request is preserved
  // for reporting.
  SweepRunner four(4);
  EXPECT_EQ(four.requested_threads(), 4u);
  EXPECT_EQ(four.thread_count(), std::min(4u, SweepRunner::hardware_threads()));
  EXPECT_GE(SweepRunner::hardware_threads(), 1u);
  EXPECT_GE(SweepRunner::default_threads(), 1u);
  EXPECT_LE(SweepRunner::default_threads(), SweepRunner::hardware_threads());
}

TEST(SweepRunnerTest, StatsCountBatchesAndJobs) {
  SweepRunner runner(2);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back([i] { return i; });
  (void)runner.run(std::move(tasks));
  runner.run_indexed(3, [](std::size_t) {});
  const SweepRunner::Stats st = runner.stats();
  EXPECT_EQ(st.requested_threads, 2u);
  EXPECT_EQ(st.effective_threads, runner.thread_count());
  EXPECT_EQ(st.batches, 2u);
  EXPECT_EQ(st.jobs, 8u);
}

TEST(SweepRunnerTest, RunIndexedExecutesEveryIndexExactlyOnce) {
  // Task count >> workers and >> the claim chunk, so the ticket counter has
  // to hand out many disjoint ranges; each index must be claimed once.
  SweepRunner runner(8);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  runner.run_indexed(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunnerTest, WorkerScratchResetsBetweenTasks) {
  SweepRunner runner(2);
  std::atomic<bool> dirty{false};
  runner.run_indexed(64, [&dirty](std::size_t i) {
    ScratchArena& arena = SweepRunner::worker_scratch();
    // The arena is rewound after every task, so used bytes start at zero
    // even though a previous task on this worker allocated.
    if (arena.bytes_used() != 0) dirty = true;
    int* block = arena.alloc_array<int>(256);
    block[0] = static_cast<int>(i);
    if (arena.bytes_used() < 256 * sizeof(int)) dirty = true;
  });
  EXPECT_FALSE(dirty.load());
}

TEST(SweepRunnerTest, ResultsArriveInSubmissionOrder) {
  SweepRunner runner(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([i] {
      // Earlier tasks sleep longer, so completion order inverts submission
      // order — the result slots must not care.
      std::this_thread::sleep_for(std::chrono::microseconds(50 * (32 - i)));
      return i * i;
    });
  }
  const auto outcomes = runner.run(std::move(tasks));
  ASSERT_EQ(outcomes.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(*outcomes[i].value, i * i);
  }
}

TEST(SweepRunnerTest, PoolIsReusableAcrossBatches) {
  SweepRunner runner(2);
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back([batch, i] { return batch * 100 + i; });
    const auto outcomes = runner.run(std::move(tasks));
    for (int i = 0; i < 8; ++i) EXPECT_EQ(*outcomes[i].value, batch * 100 + i);
  }
}

// ----------------------------------------------------- per-task error capture

TEST(SweepRunnerTest, ThrowingTaskIsReportedPerTaskNotProcessFatal) {
  SweepRunner runner(4);
  std::atomic<int> completed{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i, &completed]() -> int {
      if (i == 3) throw std::invalid_argument("p_thr out of range");
      ++completed;
      return i;
    });
  }
  const auto outcomes = runner.run(std::move(tasks));
  EXPECT_EQ(completed.load(), 7);
  for (int i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].error, "p_thr out of range");
    } else {
      ASSERT_TRUE(outcomes[i].ok());
      EXPECT_EQ(*outcomes[i].value, i);
    }
  }
}

TEST(SweepRunnerTest, RunToTableNamesFailedPoints) {
  SweepRunner runner(2);
  TablePrinter table({"x"});
  std::vector<std::function<SweepOutput()>> tasks;
  tasks.push_back([] { return SweepOutput{{{"ok"}}, ""}; });
  tasks.push_back([]() -> SweepOutput {
    throw std::invalid_argument("bad config point");
  });
  try {
    run_to_table(runner, std::move(tasks), table);
    FAIL() << "run_to_table must throw when a task failed";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad config point"), std::string::npos);
    EXPECT_NE(what.find("1"), std::string::npos);  // the failed task's index
  }
}

TEST(SweepRunnerTest, RunToTableLeavesTableUntouchedOnFailure) {
  // Rows are staged and committed only when the whole sweep succeeded; a
  // failed point must not leave a half-filled table behind (a retry at the
  // caller would otherwise emit the successful points twice).
  SweepRunner runner(2);
  TablePrinter table({"x"});
  std::vector<std::function<SweepOutput()>> tasks;
  tasks.push_back([] { return SweepOutput{{{"ok0"}}, "stdout of the ok task\n"}; });
  tasks.push_back([]() -> SweepOutput { throw std::runtime_error("boom"); });
  tasks.push_back([] { return SweepOutput{{{"ok2"}}, ""}; });
  EXPECT_THROW(run_to_table(runner, std::move(tasks), table), std::runtime_error);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_EQ(csv.str(), "x\n") << "failed sweep committed rows";
}

TEST(SweepRunnerTest, LabeledSweepNamesScenarioRowIndexLabelAndCause) {
  // The labeled staged-commit path: a mid-batch throwing task must identify
  // *which* scenario point failed — index, its parameter label, and the
  // underlying error — while leaving the table untouched.
  SweepRunner runner(2);
  TablePrinter table({"x"});
  std::vector<std::function<SweepOutput()>> tasks;
  tasks.push_back([] { return SweepOutput{{{"ok0"}}, ""}; });
  tasks.push_back([]() -> SweepOutput {
    throw std::invalid_argument("gamma out of range");
  });
  tasks.push_back([] { return SweepOutput{{{"ok2"}}, ""}; });
  SweepOptions options;
  options.labels = {"rate=1M", "rate=2M,gamma=1.2", "rate=4M"};
  try {
    run_sweep_to_table(runner, std::move(tasks), table, options);
    FAIL() << "a failed point must abort the staged commit";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task 1"), std::string::npos) << what;
    EXPECT_NE(what.find("rate=2M,gamma=1.2"), std::string::npos) << what;
    EXPECT_NE(what.find("gamma out of range"), std::string::npos) << what;
  }
  EXPECT_EQ(table.rows(), 0u) << "mid-batch failure committed the survivors";
}

// ------------------------------------------------ submission-order buffering

TEST(SweepRunnerTest, RowsAndTextEmitInSubmissionOrder) {
  SweepRunner runner(4);
  std::vector<std::function<SweepOutput()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i] {
      // Invert completion order relative to submission order.
      std::this_thread::sleep_for(std::chrono::microseconds(100 * (8 - i)));
      SweepOutput out;
      out.rows.push_back({"row" + std::to_string(i)});
      out.text = "text" + std::to_string(i) + "\n";
      return out;
    });
  }
  TablePrinter table({"cell"});
  const std::string text = run_to_table(runner, std::move(tasks), table);
  std::ostringstream csv;
  table.print_csv(csv);
  std::string expected_csv = "cell\n";
  std::string expected_text;
  for (int i = 0; i < 8; ++i) {
    expected_csv += "row" + std::to_string(i) + "\n";
    expected_text += "text" + std::to_string(i) + "\n";
  }
  EXPECT_EQ(csv.str(), expected_csv);
  EXPECT_EQ(text, expected_text);
}

// --------------------------------------------------- determinism contract
//
// The real guarantee the engine sells: a scenario sweep run on 8 threads
// produces byte-identical CSV to the same sweep run serially, because every
// task owns its Simulation/Rng and results land in submission-order slots.

std::string clean_sweep_csv(unsigned threads) {
  SweepRunner runner(threads);
  std::vector<std::function<SweepOutput()>> tasks;
  for (int flows : {1, 2}) {
    for (std::uint64_t seed : {5u, 6u}) {
      tasks.push_back([flows, seed] {
        ScenarioConfig cfg;
        cfg.pels_flows = flows;
        cfg.tcp_flows = 2;
        cfg.seed = seed;
        DumbbellScenario s(cfg);
        s.run_until(6 * kSecond);
        s.finish();
        SweepOutput out;
        out.rows.push_back(
            {TablePrinter::fmt_int(flows), TablePrinter::fmt_int(static_cast<long long>(seed)),
             TablePrinter::fmt(s.source(0).rate_series().mean_in(3 * kSecond, 6 * kSecond), 1),
             TablePrinter::fmt(s.sink(0).mean_utility(), 6)});
        return out;
      });
    }
  }
  TablePrinter table({"flows", "seed", "rate", "utility"});
  run_to_table(runner, std::move(tasks), table);
  std::ostringstream csv;
  table.print_csv(csv);
  return csv.str();
}

TEST(SweepRunnerTest, EightThreadsReproduceSerialCsvBytes) {
  const std::string serial = clean_sweep_csv(1);
  const std::string parallel = clean_sweep_csv(8);
  EXPECT_EQ(parallel, serial);
  // Sanity: the sweep actually produced data rows.
  EXPECT_GT(serial.size(), std::string("flows,seed,rate,utility\n").size());
}

std::string fault_sweep_csv(unsigned threads) {
  SweepRunner runner(threads);
  std::vector<std::function<SweepOutput()>> tasks;
  for (int kind = 0; kind < 4; ++kind) {
    tasks.push_back([kind] {
      ScenarioConfig cfg;
      cfg.pels_flows = 2;
      cfg.tcp_flows = 2;
      cfg.seed = 29;
      FaultPlan plan;
      if (kind == 1) plan.link_flaps.push_back({3 * kSecond, 4 * kSecond});
      if (kind == 2) plan.ack_blackouts.push_back({3 * kSecond, 5 * kSecond});
      if (kind == 3) {
        // Flap + Gilbert-Elliott burst corruption together: carrier-lost
        // entries and lazily-evaluated corruption share the coalesced
        // delivery ring, the hardest case for the single-event link
        // pipeline to replay identically across thread counts.
        plan.link_flaps.push_back({3 * kSecond, 3 * kSecond + 500 * kMillisecond});
        GilbertElliottConfig ge;
        ge.p_good_to_bad = 0.01;
        ge.p_bad_to_good = 0.25;
        ge.loss_bad = 0.8;
        plan.burst_corruption = ge;
      }
      cfg.faults = plan;
      DumbbellScenario s(cfg);
      s.run_until(8 * kSecond);
      s.finish();
      SweepOutput out;
      out.rows.push_back(
          {TablePrinter::fmt_int(kind),
           TablePrinter::fmt(s.source(0).rate_series().mean_in(6 * kSecond, 8 * kSecond), 1),
           TablePrinter::fmt(s.sink(0).mean_utility(), 6),
           TablePrinter::fmt_int(static_cast<long long>(s.source(0).silent_intervals()))});
      return out;
    });
  }
  TablePrinter table({"fault", "rate", "utility", "silent"});
  run_to_table(runner, std::move(tasks), table);
  std::ostringstream csv;
  table.print_csv(csv);
  return csv.str();
}

TEST(SweepRunnerTest, FaultPlanSweepIsDeterministicAcrossThreadCounts) {
  const std::string serial = fault_sweep_csv(1);
  EXPECT_EQ(fault_sweep_csv(8), serial);
}

// ------------------------------------------------------- concurrency stress
//
// TSan target (ctest -L concurrency): hammer the epoch-tagged ticket
// dispatcher from several submitting threads at once, with task counts far
// above the worker count so every batch forces many chunked claims and the
// done-counter release chain is exercised under contention. Any missed
// synchronization between a worker finishing batch N and a submitter
// starting batch N+1 shows up here as a data race or a wrong sum.

TEST(SweepRunnerTest, ConcurrentSubmittersStress) {
  SweepRunner runner(4);
  constexpr int kSubmitters = 4;
  constexpr int kBatchesPerSubmitter = 12;
  constexpr std::size_t kJobsPerBatch = 512;  // >> workers and >> chunk size
  std::vector<std::thread> submitters;
  std::vector<std::string> failures(kSubmitters);
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&runner, &failures, s] {
      for (int b = 0; b < kBatchesPerSubmitter; ++b) {
        // Plain (unpadded, non-atomic) result slots: the pool's join must
        // publish every worker's writes to the submitter, and TSan checks
        // exactly that release chain.
        std::vector<std::uint64_t> results(kJobsPerBatch, 0);
        std::vector<std::function<void()>> jobs;
        jobs.reserve(kJobsPerBatch);
        for (std::size_t i = 0; i < kJobsPerBatch; ++i) {
          jobs.push_back([&results, s, b, i] {
            // Touch the worker arena too: per-worker scratch must not be
            // shared across concurrently-running batches.
            auto* scratch = SweepRunner::worker_scratch().alloc_array<std::uint64_t>(16);
            scratch[0] = static_cast<std::uint64_t>(s * 1'000'000 + b * 1'000) + i;
            results[i] = scratch[0];
          });
        }
        runner.run_jobs(std::move(jobs));
        for (std::size_t i = 0; i < kJobsPerBatch; ++i) {
          if (results[i] != static_cast<std::uint64_t>(s * 1'000'000 + b * 1'000) + i) {
            failures[s] = "submitter " + std::to_string(s) + " batch " + std::to_string(b) +
                          " job " + std::to_string(i) + " lost or corrupted";
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const std::string& f : failures) EXPECT_EQ(f, "");
}

TEST(SweepRunnerTest, ConcurrentRunIndexedStress) {
  // run_indexed from competing threads: batches must serialize without
  // interleaving their ticket spaces (the epoch tag is what prevents a
  // straggler from one batch claiming indices of the next).
  SweepRunner runner(4);
  constexpr std::size_t kN = 2'048;
  std::vector<std::atomic<int>> hits(kN);
  std::vector<std::thread> submitters;
  for (int s = 0; s < 3; ++s) {
    submitters.emplace_back([&runner, &hits] {
      for (int round = 0; round < 8; ++round) {
        runner.run_indexed(kN, [&hits](std::size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 3 * 8) << "index " << i;
  }
}

}  // namespace
}  // namespace pels
