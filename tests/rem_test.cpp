// Tests for the REM marking AQM and the REM-responsive controller (paper
// §2.2 ref [20]), including the full-stack marking-based streaming path.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/rem_controller.h"
#include "pels/scenario.h"
#include "queue/rem.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace pels {
namespace {

Packet make_packet(std::int32_t size, Color color) {
  Packet p;
  p.size_bytes = size;
  p.color = color;
  return p;
}

RemQueueConfig queue_config() {
  RemQueueConfig cfg;
  cfg.link_bandwidth_bps = 4e6;  // video share 2 mb/s
  cfg.price_interval = from_millis(30);
  return cfg;
}

// --------------------------------------------------------------- RemQueue

TEST(RemQueueTest, PriceStartsAtZeroAndNothingMarked) {
  Simulation sim;
  RemQueue q(sim.scheduler(), sim.make_rng(1), queue_config());
  EXPECT_DOUBLE_EQ(q.price(), 0.0);
  EXPECT_DOUBLE_EQ(q.mark_probability(), 0.0);
  q.enqueue(make_packet(500, Color::kYellow));
  auto pkt = q.dequeue();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_FALSE(pkt->ecn_marked);
}

TEST(RemQueueTest, PriceRisesUnderOverload) {
  Simulation sim;
  RemQueue q(sim.scheduler(), sim.make_rng(2), queue_config());
  // Offer 2x the video capacity each interval without draining.
  for (int interval = 0; interval < 5; ++interval) {
    for (int i = 0; i < 30; ++i) q.enqueue(make_packet(500, Color::kYellow));
    sim.run_until((interval + 1) * from_millis(30) + from_millis(1));
  }
  EXPECT_GT(q.price(), 0.0);
  EXPECT_GT(q.mark_probability(), 0.0);
}

TEST(RemQueueTest, PriceDecaysWhenIdle) {
  Simulation sim;
  RemQueue q(sim.scheduler(), sim.make_rng(3), queue_config());
  for (int i = 0; i < 200; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(95));
  while (q.dequeue().has_value()) {
  }
  const double loaded = q.price();
  ASSERT_GT(loaded, 0.0);
  sim.run_until(kSecond);  // idle intervals: negative excess drives price down
  EXPECT_LT(q.price(), loaded * 0.1);
}

TEST(RemQueueTest, MarkProbabilityFollowsPhiLaw) {
  Simulation sim;
  RemQueueConfig cfg = queue_config();
  RemQueue q(sim.scheduler(), sim.make_rng(4), cfg);
  for (int i = 0; i < 400; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(151));
  EXPECT_NEAR(q.mark_probability(), 1.0 - std::pow(cfg.phi, -q.price()), 1e-12);
}

TEST(RemQueueTest, MarkRateMatchesProbability) {
  Simulation sim;
  RemQueueConfig cfg = queue_config();
  RemQueue q(sim.scheduler(), sim.make_rng(5), cfg);
  // Prime a stable price, then measure empirical mark fraction.
  for (int i = 0; i < 400; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(151));
  const double p_mark = q.mark_probability();
  ASSERT_GT(p_mark, 0.05);
  const std::uint64_t before = q.packets_marked();
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    q.enqueue(make_packet(500, Color::kYellow));
    q.dequeue();
  }
  const double observed = static_cast<double>(q.packets_marked() - before) / n;
  // The price drifts during the burst; allow a loose band.
  EXPECT_GT(observed, 0.5 * p_mark);
}

TEST(RemQueueTest, InternetTrafficNeverMarked) {
  Simulation sim;
  RemQueue q(sim.scheduler(), sim.make_rng(6), queue_config());
  for (int i = 0; i < 400; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(151));
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_packet(1000, Color::kInternet));
  }
  std::uint64_t internet_marked = 0;
  while (auto pkt = q.dequeue()) {
    if (pkt->color == Color::kInternet && pkt->ecn_marked) ++internet_marked;
  }
  EXPECT_EQ(internet_marked, 0u);
}

// --------------------------------------------------------- RemController

TEST(RemControllerTest, FixedPointIsWillingnessOverPrice) {
  RemControllerConfig cfg;
  cfg.willingness = 100e3;
  cfg.phi = 1.2;
  RemController ctl(cfg);
  // Mark fraction corresponding to price 0.1: f = 1 - phi^-0.1.
  const double price = 0.1;
  const double f = 1.0 - std::pow(cfg.phi, -price);
  for (int i = 0; i < 500; ++i) ctl.on_mark_fraction(f, 0);
  EXPECT_NEAR(ctl.estimated_price(), price, 1e-9);
  EXPECT_NEAR(ctl.rate_bps(), cfg.willingness / price, cfg.willingness / price * 0.01);
}

TEST(RemControllerTest, NoMarksMeansGrowth) {
  RemController ctl(RemControllerConfig{});
  const double before = ctl.rate_bps();
  ctl.on_mark_fraction(0.0, 0);
  EXPECT_GT(ctl.rate_bps(), before);
}

TEST(RemControllerTest, IgnoresLossFeedback) {
  RemController ctl(RemControllerConfig{});
  const double before = ctl.rate_bps();
  ctl.on_router_feedback(0.5, 0);
  EXPECT_DOUBLE_EQ(ctl.rate_bps(), before);
}

TEST(RemControllerTest, HigherWillingnessGetsMoreRate) {
  RemControllerConfig a_cfg, b_cfg;
  a_cfg.willingness = 50e3;
  b_cfg.willingness = 150e3;
  RemController a(a_cfg), b(b_cfg);
  const double f = 1.0 - std::pow(1.2, -0.1);
  for (int i = 0; i < 500; ++i) {
    a.on_mark_fraction(f, 0);
    b.on_mark_fraction(f, 0);
  }
  // Weighted proportional fairness: rates scale with w.
  EXPECT_NEAR(b.rate_bps() / a.rate_bps(), 3.0, 0.05);
}

// ------------------------------------------------------------ full stack

TEST(RemIntegration, MarkingKeepsVideoLossFree) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 3;
  cfg.seed = 9;
  cfg.bottleneck = BottleneckKind::kRem;
  DumbbellScenario s(cfg);
  s.run_until(40 * kSecond);
  s.finish();
  // Congestion is signalled, not enforced: (almost) no video drops, so the
  // FGS prefix survives and utility stays ~1 even without priorities.
  const auto& c = s.bottleneck_queue().counters();
  const auto yellow = static_cast<std::size_t>(Color::kYellow);
  ASSERT_GT(c.arrivals[yellow], 10'000u);
  EXPECT_LT(static_cast<double>(c.drops[yellow]) /
                static_cast<double>(c.arrivals[yellow]),
            0.01);
  EXPECT_GT(s.sink(0).mean_utility(), 0.98);
  EXPECT_GT(s.rem_queue()->packets_marked(), 100u);
}

TEST(RemIntegration, RatesConvergeAndShareFairly) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 3;
  cfg.seed = 9;
  cfg.bottleneck = BottleneckKind::kRem;
  DumbbellScenario s(cfg);
  const SimTime duration = 60 * kSecond;
  s.run_until(duration);
  const double r0 = s.source(0).rate_series().mean_in(40 * kSecond, duration);
  const double r1 = s.source(1).rate_series().mean_in(40 * kSecond, duration);
  const double shares[] = {r0, r1};
  EXPECT_GT(jain_fairness_index(shares), 0.99);
  // Equal willingness: equal shares, and the aggregate tracks the video
  // capacity (REM equalizes demand to capacity through the price).
  EXPECT_NEAR(r0 + r1, s.video_capacity_bps(), s.video_capacity_bps() * 0.15);
}

}  // namespace
}  // namespace pels
