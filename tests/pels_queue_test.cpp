// Tests for the PELS composite router queue, the feedback meter (eq. (11)),
// and the best-effort comparator queue.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "queue/best_effort.h"
#include "queue/feedback_meter.h"
#include "queue/pels_queue.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace pels {
namespace {

Packet make_packet(std::int32_t size, Color color, std::uint64_t seq = 0) {
  Packet p;
  p.size_bytes = size;
  p.color = color;
  p.seq = seq;
  return p;
}

PelsQueueConfig test_config() {
  PelsQueueConfig cfg;
  cfg.router_id = 1;
  cfg.link_bandwidth_bps = 4e6;
  cfg.pels_weight = 0.5;
  cfg.internet_weight = 0.5;
  cfg.feedback_interval = from_millis(30);
  return cfg;
}

// ---------------------------------------------------------- FeedbackMeter

TEST(FeedbackMeterTest, ComputesLossFromOverload) {
  FeedbackMeter m(1, 2e6, from_millis(100));
  // 30,000 bytes in 100 ms = 2.4 mb/s against 2 mb/s: p = 0.4/2.4 = 1/6.
  m.add_bytes(30'000, true);
  m.close_interval();
  EXPECT_NEAR(m.loss(), (2.4e6 - 2e6) / 2.4e6, 1e-9);
  EXPECT_EQ(m.epoch(), 1u);
}

TEST(FeedbackMeterTest, NegativeLossWhenUnderutilized) {
  FeedbackMeter m(1, 2e6, from_millis(100));
  // 12,500 bytes in 100 ms = 1 mb/s against 2 mb/s: p = -1.
  m.add_bytes(12'500, true);
  m.close_interval();
  EXPECT_NEAR(m.loss(), -1.0, 1e-9);
}

TEST(FeedbackMeterTest, FloorsAtConfiguredBoundWhenIdle) {
  FeedbackMeter m(1, 2e6, from_millis(100), -20.0);
  m.close_interval();
  EXPECT_DOUBLE_EQ(m.loss(), -20.0);
}

TEST(FeedbackMeterTest, IntervalBytesResetEachEpoch) {
  FeedbackMeter m(1, 2e6, from_millis(100));
  m.add_bytes(50'000, true);
  m.close_interval();
  const double first = m.loss();
  m.close_interval();  // no bytes this interval
  EXPECT_LT(m.loss(), first);
  EXPECT_EQ(m.epoch(), 2u);
}

TEST(FeedbackMeterTest, StampOnlyAfterFirstInterval) {
  FeedbackMeter m(7, 2e6, from_millis(100));
  Packet p = make_packet(500, Color::kYellow);
  m.stamp(p);
  EXPECT_FALSE(p.feedback.valid);
  m.add_bytes(30'000, true);
  m.close_interval();
  m.stamp(p);
  EXPECT_TRUE(p.feedback.valid);
  EXPECT_EQ(p.feedback.router_id, 7);
  EXPECT_EQ(p.feedback.epoch, 1u);
}

TEST(FeedbackMeterTest, StampRespectsMaxMinOverride) {
  FeedbackMeter m(7, 2e6, from_millis(100));
  m.add_bytes(30'000, true);  // p = 1/6
  m.close_interval();
  Packet p = make_packet(500, Color::kYellow);
  p.feedback.maybe_override(3, 99, 0.5, 0.6);  // more congested upstream router
  m.stamp(p);
  EXPECT_EQ(p.feedback.router_id, 3);  // keeps the larger loss
  p.feedback = {};
  p.feedback.maybe_override(3, 99, 0.01, 0.02);  // less congested upstream
  m.stamp(p);
  EXPECT_EQ(p.feedback.router_id, 7);  // this router's label wins
}

TEST(FeedbackMeterTest, InjectedFgsLossRevertsToEstimateAtNextClose) {
  // Ordering contract of set_fgs_loss: a non-sticky injection (the default)
  // drives the stamped labels for the epoch it was reported in and reverts
  // to the overshoot estimate at the next close_interval().
  FeedbackMeter m(1, 2e6, from_millis(100));
  m.add_bytes(30'000, true);
  m.close_interval();
  m.set_fgs_loss(0.42);
  EXPECT_FALSE(m.fgs_loss_is_sticky());
  EXPECT_DOUBLE_EQ(m.fgs_loss(), 0.42);
  Packet p = make_packet(500, Color::kYellow);
  m.stamp(p);
  EXPECT_DOUBLE_EQ(p.feedback.fgs_loss, 0.42);
  m.add_bytes(30'000, true);
  m.close_interval();
  EXPECT_DOUBLE_EQ(m.fgs_loss(), m.fgs_loss_estimate());
  EXPECT_NEAR(m.fgs_loss(), (2.4e6 - 2e6) / 2.4e6, 1e-9);  // not 0.42
}

TEST(FeedbackMeterTest, StickyInjectedFgsLossSurvivesCloses) {
  FeedbackMeter m(1, 2e6, from_millis(100));
  m.add_bytes(30'000, true);
  m.close_interval();
  m.set_fgs_loss(0.42, /*sticky=*/true);
  EXPECT_TRUE(m.fgs_loss_is_sticky());
  for (int i = 0; i < 3; ++i) {
    m.add_bytes(30'000, true);
    m.close_interval();
    EXPECT_DOUBLE_EQ(m.fgs_loss(), 0.42);
  }
  // The estimate keeps tracking the rates underneath the sticky value.
  EXPECT_NEAR(m.fgs_loss_estimate(), (2.4e6 - 2e6) / 2.4e6, 1e-9);
  // The next injection replaces the value and resets the sticky mode.
  m.set_fgs_loss(0.10);
  EXPECT_DOUBLE_EQ(m.fgs_loss(), 0.10);
  EXPECT_FALSE(m.fgs_loss_is_sticky());
  m.add_bytes(30'000, true);
  m.close_interval();
  EXPECT_DOUBLE_EQ(m.fgs_loss(), m.fgs_loss_estimate());
}

// -------------------------------------------------------------- PelsQueue

TEST(PelsQueueTest, CapacityShareFollowsWeights) {
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  PelsQueue q(sim.scheduler(), cfg);
  EXPECT_DOUBLE_EQ(q.pels_capacity_bps(), 2e6);
  cfg.pels_weight = 3.0;
  cfg.internet_weight = 1.0;
  PelsQueue q2(sim.scheduler(), cfg);
  EXPECT_DOUBLE_EQ(q2.pels_capacity_bps(), 3e6);
}

TEST(PelsQueueTest, StrictPriorityAcrossColors) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  q.enqueue(make_packet(500, Color::kRed, 1));
  q.enqueue(make_packet(500, Color::kYellow, 2));
  q.enqueue(make_packet(500, Color::kGreen, 3));
  EXPECT_EQ(q.dequeue()->color, Color::kGreen);
  EXPECT_EQ(q.dequeue()->color, Color::kYellow);
  EXPECT_EQ(q.dequeue()->color, Color::kRed);
}

TEST(PelsQueueTest, InternetTrafficSeparatedFromPels) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  for (int i = 0; i < 10; ++i) q.enqueue(make_packet(500, Color::kGreen));
  for (int i = 0; i < 10; ++i) q.enqueue(make_packet(500, Color::kInternet));
  // Equal WRR weights: service alternates between the classes in byte terms.
  int green = 0;
  int internet = 0;
  for (int i = 0; i < 10; ++i) {
    const auto c = q.dequeue()->color;
    green += c == Color::kGreen;
    internet += c == Color::kInternet;
  }
  EXPECT_NEAR(green, 5, 2);
  EXPECT_NEAR(internet, 5, 2);
}

TEST(PelsQueueTest, RedBandOverflowsFirst) {
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  cfg.green_limit = 10;
  cfg.yellow_limit = 10;
  cfg.red_limit = 2;
  PelsQueue q(sim.scheduler(), cfg);
  for (int i = 0; i < 5; ++i) {
    q.enqueue(make_packet(500, Color::kGreen));
    q.enqueue(make_packet(500, Color::kYellow));
    q.enqueue(make_packet(500, Color::kRed));
  }
  const auto& c = q.counters();
  EXPECT_EQ(c.drops[static_cast<std::size_t>(Color::kRed)], 3u);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(Color::kYellow)], 0u);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(Color::kGreen)], 0u);
}

TEST(PelsQueueTest, FeedbackEpochAdvancesWithTimer) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  EXPECT_EQ(q.epoch(), 0u);
  sim.run_until(from_millis(95));
  EXPECT_EQ(q.epoch(), 3u);  // intervals close at 30, 60, 90 ms
}

TEST(PelsQueueTest, ConfigValidationRejectsNonsense) {
  auto expect_throws = [](PelsQueueConfig cfg) {
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    Simulation sim;
    EXPECT_THROW(PelsQueue(sim.scheduler(), cfg), std::invalid_argument);
  };
  {
    PelsQueueConfig cfg = test_config();
    cfg.link_bandwidth_bps = 0.0;
    expect_throws(cfg);
  }
  {
    PelsQueueConfig cfg = test_config();
    cfg.pels_weight = -1.0;
    expect_throws(cfg);
  }
  {
    PelsQueueConfig cfg = test_config();
    cfg.feedback_interval = 0;
    expect_throws(cfg);
  }
  {
    PelsQueueConfig cfg = test_config();
    cfg.loss_ceiling = 1.5;
    expect_throws(cfg);
  }
  {
    PelsQueueConfig cfg = test_config();
    cfg.loss_floor = cfg.loss_ceiling;  // floor must stay below ceiling
    expect_throws(cfg);
  }
  EXPECT_NO_THROW(test_config().validate());
}

TEST(PelsQueueTest, RestartResetsEpochButKeepsQueuedPackets) {
  // Router restart: the control plane (meter epoch, counters, rate
  // estimates) reboots, but queued packets survive — interface buffers
  // outlive a routing-daemon restart. Stamping resumes at epoch 1, the
  // backward jump consumers must tolerate.
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  sim.run_until(from_millis(1));
  for (int i = 0; i < 36; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(95));
  EXPECT_EQ(q.epoch(), 3u);
  const std::size_t backlog = q.packet_count();
  ASSERT_GT(backlog, 0u);
  q.restart();
  EXPECT_EQ(q.epoch(), 0u);
  EXPECT_EQ(q.packet_count(), backlog);  // data plane untouched
  // No stamping until the first post-restart interval closes...
  auto pkt = q.dequeue();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_FALSE(pkt->feedback.valid);
  // ...then labels resume from epoch 1.
  sim.run_until(from_millis(125));
  EXPECT_EQ(q.epoch(), 1u);
  pkt = q.dequeue();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->feedback.valid);
  EXPECT_EQ(pkt->feedback.epoch, 1u);
}

TEST(PelsQueueTest, DepartingPelsPacketsAreStamped) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  // Offer 2.4x the PELS capacity for one interval: 2 mb/s * 30 ms = 7500 B.
  sim.run_until(from_millis(1));
  for (int i = 0; i < 36; ++i) q.enqueue(make_packet(500, Color::kYellow));  // 18,000 B
  sim.run_until(from_millis(31));  // first interval closed
  auto pkt = q.dequeue();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->feedback.valid);
  EXPECT_EQ(pkt->feedback.router_id, 1);
  EXPECT_EQ(pkt->feedback.epoch, 1u);
  // R = 18000 B / 30 ms = 4.8 mb/s, C = 2 mb/s: p = 2.8/4.8.
  EXPECT_NEAR(pkt->feedback.loss, 2.8 / 4.8, 1e-9);
}

TEST(PelsQueueTest, InternetPacketsNotStamped) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  q.enqueue(make_packet(500, Color::kInternet));
  sim.run_until(from_millis(31));
  auto pkt = q.dequeue();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_FALSE(pkt->feedback.valid);
}

TEST(PelsQueueTest, AcksTravelInGreenBand) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  q.enqueue(make_packet(500, Color::kYellow));
  q.enqueue(make_packet(40, Color::kAck));
  EXPECT_EQ(q.dequeue()->color, Color::kAck);
}

TEST(PelsQueueTest, BandOccupancyAccessors) {
  Simulation sim;
  PelsQueue q(sim.scheduler(), test_config());
  q.enqueue(make_packet(500, Color::kGreen));
  q.enqueue(make_packet(500, Color::kYellow));
  q.enqueue(make_packet(500, Color::kYellow));
  q.enqueue(make_packet(500, Color::kRed));
  EXPECT_EQ(q.band_packet_count(0), 1u);
  EXPECT_EQ(q.band_packet_count(1), 2u);
  EXPECT_EQ(q.band_packet_count(2), 1u);
  EXPECT_EQ(q.packet_count(), 4u);
}

TEST(PelsQueueTest, DemandMeteringIncludesDroppedPackets) {
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  cfg.red_limit = 1;
  PelsQueue q(sim.scheduler(), cfg);
  // 100 red packets offered in one interval; most are dropped but all must
  // count as demand (eq. (11) measures arrivals, not admissions).
  for (int i = 0; i < 100; ++i) q.enqueue(make_packet(500, Color::kRed));
  sim.run_until(from_millis(31));
  // R = 50,000 B / 30 ms = 13.33 mb/s, C = 2 mb/s: p = (13.33-2)/13.33.
  const double r = 50'000.0 * 8.0 / 0.030;
  EXPECT_NEAR(q.current_loss(), (r - 2e6) / r, 1e-9);
}

TEST(PelsQueueTest, TwoPriorityModeMergesFgsBands) {
  // QBSS-like mode: yellow and red share one FIFO band in arrival order.
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  cfg.merge_fgs_bands = true;
  PelsQueue q(sim.scheduler(), cfg);
  q.enqueue(make_packet(500, Color::kRed, 1));
  q.enqueue(make_packet(500, Color::kYellow, 2));
  q.enqueue(make_packet(500, Color::kGreen, 3));
  EXPECT_EQ(q.dequeue()->color, Color::kGreen);  // green still wins
  EXPECT_EQ(q.dequeue()->seq, 1u);               // then FIFO: red before yellow
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_EQ(q.band_packet_count(2), 0u);  // red band unused
}

TEST(PelsQueueTest, TwoPriorityModeDropsHitBothColors) {
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  cfg.merge_fgs_bands = true;
  cfg.yellow_limit = 2;
  cfg.red_limit = 2;  // merged band capacity = 4
  PelsQueue q(sim.scheduler(), cfg);
  for (int i = 0; i < 4; ++i) {
    q.enqueue(make_packet(500, Color::kYellow));
    q.enqueue(make_packet(500, Color::kRed));
  }
  const auto& c = q.counters();
  // 8 offered into a 4-deep band: 4 dropped, split across both colours by
  // arrival order — the failure mode the third priority exists to prevent.
  EXPECT_EQ(c.total_drops(), 4u);
  EXPECT_GT(c.drops[static_cast<std::size_t>(Color::kYellow)], 0u);
  EXPECT_GT(c.drops[static_cast<std::size_t>(Color::kRed)], 0u);
}

TEST(PelsQueueTest, StickyFgsLossHoldsBetweenWindowRefreshes) {
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  cfg.red_limit = 2;
  cfg.fgs_loss_window_intervals = 4;
  cfg.sticky_fgs_loss = true;
  PelsQueue q(sim.scheduler(), cfg);
  // 10 red offered, 8 dropped (red_limit = 2): drop-count p_fgs = 0.8,
  // injected when the 4-interval window closes at t = 120 ms.
  for (int i = 0; i < 10; ++i) q.enqueue(make_packet(500, Color::kRed));
  sim.run_until(from_millis(125));
  EXPECT_NEAR(q.current_fgs_loss(), 0.8, 1e-9);
  // Two more idle intervals close without an injection; sticky mode keeps
  // gamma's input pinned at the drop-count value.
  sim.run_until(from_millis(185));
  EXPECT_NEAR(q.current_fgs_loss(), 0.8, 1e-9);
}

TEST(PelsQueueTest, DefaultFgsLossRevertsToEstimateBetweenRefreshes) {
  // Same scenario without sticky_fgs_loss: the injected 0.8 drives labels
  // for the epoch it was reported in, then the responsive overshoot
  // estimate resumes (deeply negative here, since the queue went idle).
  Simulation sim;
  PelsQueueConfig cfg = test_config();
  cfg.red_limit = 2;
  cfg.fgs_loss_window_intervals = 4;
  PelsQueue q(sim.scheduler(), cfg);
  for (int i = 0; i < 10; ++i) q.enqueue(make_packet(500, Color::kRed));
  sim.run_until(from_millis(125));
  EXPECT_NEAR(q.current_fgs_loss(), 0.8, 1e-9);
  sim.run_until(from_millis(185));
  EXPECT_LT(q.current_fgs_loss(), 0.0);
}

// -------------------------------------------------------- BestEffortQueue

BestEffortQueueConfig be_config() {
  BestEffortQueueConfig cfg;
  cfg.router_id = 1;
  cfg.link_bandwidth_bps = 4e6;
  cfg.feedback_interval = from_millis(30);
  return cfg;
}

TEST(BestEffortQueueTest, NoColorPriority) {
  Simulation sim;
  BestEffortQueue q(sim.scheduler(), Rng(1), be_config());
  q.enqueue(make_packet(500, Color::kRed, 1));
  q.enqueue(make_packet(500, Color::kGreen, 2));
  // FIFO: red (arrived first) leaves first, unlike the PELS queue.
  EXPECT_EQ(q.dequeue()->seq, 1u);
}

TEST(BestEffortQueueTest, RandomDropsTrackOverloadProbability) {
  Simulation sim;
  BestEffortQueueConfig cfg = be_config();
  cfg.video_limit = 1u << 20;  // only random drops, no tail drops
  BestEffortQueue q(sim.scheduler(), Rng(2), cfg);
  // Prime the meter with one interval at 2.5x capacity: p = 0.6.
  const int per_interval = 38;  // 19,000 B / 30 ms = 5.07 mb/s vs 2 mb/s
  for (int i = 0; i < per_interval; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(31));
  const double p = q.current_loss();
  ASSERT_GT(p, 0.5);
  std::uint64_t before = q.counters().drops[static_cast<std::size_t>(Color::kYellow)];
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    q.enqueue(make_packet(500, Color::kYellow));
    q.dequeue();
  }
  const double observed =
      static_cast<double>(q.counters().drops[static_cast<std::size_t>(Color::kYellow)] -
                          before) /
      n;
  EXPECT_NEAR(observed, p, 0.05);
}

TEST(BestEffortQueueTest, BaseLayerMagicallyProtected) {
  Simulation sim;
  BestEffortQueueConfig cfg = be_config();
  cfg.video_limit = 1u << 20;
  BestEffortQueue q(sim.scheduler(), Rng(3), cfg);
  for (int i = 0; i < 100; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(31));
  ASSERT_GT(q.current_loss(), 0.5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(500, Color::kGreen)));
    q.dequeue();
  }
  EXPECT_EQ(q.counters().drops[static_cast<std::size_t>(Color::kGreen)], 0u);
}

TEST(BestEffortQueueTest, ProtectionCanBeDisabled) {
  Simulation sim;
  BestEffortQueueConfig cfg = be_config();
  cfg.video_limit = 1u << 20;
  cfg.protect_base_layer = false;
  BestEffortQueue q(sim.scheduler(), Rng(4), cfg);
  for (int i = 0; i < 100; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(31));
  int dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!q.enqueue(make_packet(500, Color::kGreen))) ++dropped;
    q.dequeue();
  }
  EXPECT_GT(dropped, 0);
}

TEST(BestEffortQueueTest, StampsFeedbackLikePels) {
  Simulation sim;
  BestEffortQueue q(sim.scheduler(), Rng(5), be_config());
  for (int i = 0; i < 38; ++i) q.enqueue(make_packet(500, Color::kYellow));
  sim.run_until(from_millis(31));
  auto pkt = q.dequeue();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->feedback.valid);
  EXPECT_GT(pkt->feedback.loss, 0.0);
}

}  // namespace
}  // namespace pels
