// DomainRunner tests: conservative intra-scenario parallel DES.
//
// The contract under test (DESIGN.md "Parallel experiments"): partitioning
// a topology into link-delay-separated domains changes *nothing* observable
// — packet arrival timestamps equal the monolithic single-scheduler run —
// and the partitioned run is byte-identical at any thread count, because
// window boundaries derive from simulation state only and barrier
// injections happen in fixed boundary-link order.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/domain_runner.h"
#include "net/topology.h"
#include "queue/drop_tail.h"
#include "sim/timer.h"

namespace pels {
namespace {

const QueueFactory kDropTail = [](double) { return std::make_unique<DropTailQueue>(64); };

/// Logs every arrival as (local sim time, uid); the serialized log is the
/// byte-identity witness.
struct RecordingAgent : public Agent {
  explicit RecordingAgent(Simulation& sim) : sim_(sim) {}
  void on_packet(const Packet& pkt) override { log_.emplace_back(sim_.now(), pkt.uid); }

  std::string serialize() const {
    std::ostringstream out;
    for (const auto& [t, uid] : log_) out << t << ':' << uid << ';';
    return out.str();
  }
  std::size_t arrivals() const { return log_.size(); }

 private:
  Simulation& sim_;
  std::vector<std::pair<SimTime, std::uint64_t>> log_;
};

/// Paced packet injector: `rate_pps` packets/s of `bytes`-sized packets from
/// `src` to `dst` under `flow`, driven by the scheduler of `src`'s domain.
class PacedFlow {
 public:
  PacedFlow(Scheduler& sched, Host& src, NodeId dst, FlowId flow, double rate_pps,
            std::int32_t bytes)
      : sched_(sched),
        src_(src),
        dst_(dst),
        flow_(flow),
        bytes_(bytes),
        timer_(sched, from_seconds(1.0 / rate_pps), [this] {
          Packet pkt;
          pkt.uid = (static_cast<std::uint64_t>(flow_) << 32) | ++seq_;
          pkt.flow = flow_;
          pkt.seq = seq_;
          pkt.size_bytes = bytes_;
          pkt.src = src_.id();
          pkt.dst = dst_;
          pkt.created_at = sched_.now();
          src_.send(std::move(pkt));
        }) {
    timer_.start();
  }

  void stop() { timer_.stop(); }

 private:
  Scheduler& sched_;
  Host& src_;
  NodeId dst_;
  FlowId flow_;
  std::int32_t bytes_;
  std::uint32_t seq_ = 0;
  PeriodicTimer timer_;
};

/// A 4-node chain host_a - r1 ===boundary=== r2 - host_b with bidirectional
/// traffic (two paced flows), optionally split into two domains at the
/// r1<->r2 links. Owns everything needed to run and serialize the result.
struct ChainScenario {
  static constexpr SimTime kBoundaryDelay = 25 * kMillisecond;

  explicit ChainScenario(bool partitioned, bool corrupt_boundary = false) {
    sims.push_back(std::make_unique<Simulation>(7));
    topo = std::make_unique<Topology>(*sims[0]);
    int far = 0;
    if (partitioned) {
      sims.push_back(std::make_unique<Simulation>(7));
      far = topo->add_domain(*sims[1]);
    }
    Host& a = topo->add_host("a");
    Router& r1 = topo->add_router("r1");
    Router& r2 = topo->add_router("r2", far);
    Host& b = topo->add_host("b", far);
    topo->connect(a, r1, 10e6, kMillisecond, kDropTail);
    auto [ab, ba] = topo->connect(r1, r2, 8e6, kBoundaryDelay, kDropTail);
    boundary_ab = ab;
    topo->connect(r2, b, 10e6, kMillisecond, kDropTail);
    if (corrupt_boundary) {
      ab->set_corruption(0.05, sims[0]->make_rng(99));
      ba->set_corruption(0.05, sims.back()->make_rng(99));
    }
    topo->compute_routes();
    topo->reserve_runtime(2);
    sink_b = std::make_unique<RecordingAgent>(*sims[far == 0 ? 0 : 1]);
    sink_a = std::make_unique<RecordingAgent>(*sims[0]);
    b.register_agent(1, sink_b.get());
    a.register_agent(2, sink_a.get());
    forward = std::make_unique<PacedFlow>(sims[0]->scheduler(), a, b.id(), 1, 900.0, 1000);
    reverse = std::make_unique<PacedFlow>(sims[far == 0 ? 0 : 1]->scheduler(), b, a.id(), 2,
                                          400.0, 400);
  }

  std::string trace() const { return sink_b->serialize() + "|" + sink_a->serialize(); }

  std::vector<std::unique_ptr<Simulation>> sims;
  std::unique_ptr<Topology> topo;
  Link* boundary_ab = nullptr;
  std::unique_ptr<RecordingAgent> sink_a;
  std::unique_ptr<RecordingAgent> sink_b;
  std::unique_ptr<PacedFlow> forward;
  std::unique_ptr<PacedFlow> reverse;
};

// --------------------------------------------------- timing equivalence

TEST(DomainRunnerTest, PartitionedRunMatchesMonolithicTimings) {
  ChainScenario mono(/*partitioned=*/false);
  mono.sims[0]->run_until(2 * kSecond);

  ChainScenario part(/*partitioned=*/true);
  DomainRunner runner(*part.topo, 2);
  runner.run_until(2 * kSecond);

  EXPECT_GT(part.sink_b->arrivals(), 1000u);
  EXPECT_GT(part.sink_a->arrivals(), 400u);
  // Every arrival timestamp identical: the handoff re-schedules at exactly
  // tx_end + prop_delay, which is when local propagation would deliver.
  EXPECT_EQ(part.trace(), mono.trace());
}

TEST(DomainRunnerTest, ByteIdenticalAtAnyThreadCount) {
  std::string serial;
  for (unsigned threads : {1u, 2u, 8u}) {
    ChainScenario s(/*partitioned=*/true);
    DomainRunner runner(*s.topo, threads);
    runner.run_until(3 * kSecond);
    const std::string trace = s.trace();
    if (threads == 1) {
      serial = trace;
      ASSERT_FALSE(serial.empty());
    } else {
      EXPECT_EQ(trace, serial) << "threads=" << threads << " diverged from threads=1";
    }
  }
}

TEST(DomainRunnerTest, CorruptedBoundaryStaysDeterministic) {
  // Corruption is evaluated at wire exit in the source domain; the RNG
  // chain must replay identically regardless of thread count.
  std::string serial;
  std::uint64_t corrupted = 0;
  for (unsigned threads : {1u, 2u}) {
    ChainScenario s(/*partitioned=*/true, /*corrupt_boundary=*/true);
    DomainRunner runner(*s.topo, threads);
    runner.run_until(3 * kSecond);
    if (threads == 1) {
      serial = s.trace();
      corrupted = s.boundary_ab->packets_corrupted();
      EXPECT_GT(corrupted, 0u);  // 5% of ~2700 packets: losing none is broken
    } else {
      EXPECT_EQ(s.trace(), serial);
      EXPECT_EQ(s.boundary_ab->packets_corrupted(), corrupted);
    }
  }
}

// --------------------------------------------------------- window engine

TEST(DomainRunnerTest, LookaheadIsMinBoundaryDelayAndStatsFill) {
  ChainScenario s(/*partitioned=*/true);
  DomainRunner runner(*s.topo, 2);
  runner.run_until(kSecond);
  const DomainRunner::Stats st = runner.stats();
  EXPECT_EQ(st.lookahead, ChainScenario::kBoundaryDelay);
  EXPECT_EQ(s.topo->min_boundary_delay(), ChainScenario::kBoundaryDelay);
  EXPECT_EQ(st.requested_threads, 2u);
  EXPECT_GE(st.effective_threads, 1u);
  EXPECT_LE(st.effective_threads, 2u);
  EXPECT_GT(st.windows, 0u);
  EXPECT_GT(st.handoffs, 0u);
  // Both sims reached the target in lockstep.
  EXPECT_EQ(s.sims[0]->now(), kSecond);
  EXPECT_EQ(s.sims[1]->now(), kSecond);
}

TEST(DomainRunnerTest, IdleStretchesAreSkippedNotBarrierStepped) {
  ChainScenario s(/*partitioned=*/true);
  // Stop both flows early; after the pipes drain the schedulers go empty.
  s.sims[0]->at(200 * kMillisecond, [&s] { s.forward->stop(); });
  s.sims[1]->at(200 * kMillisecond, [&s] { s.reverse->stop(); });
  DomainRunner runner(*s.topo, 2);
  runner.run_until(60 * kSecond);
  // Naive fixed-grid windows would need 60 s / 25 ms = 2400 barriers; the
  // adaptive window jumps the idle 59.8 s in one hop.
  EXPECT_LT(runner.stats().windows, 200u);
  EXPECT_EQ(s.sims[0]->now(), 60 * kSecond);
  EXPECT_EQ(s.sims[1]->now(), 60 * kSecond);
}

TEST(DomainRunnerTest, RepeatedRunUntilContinuesCleanly) {
  ChainScenario whole(/*partitioned=*/true);
  DomainRunner wr(*whole.topo, 2);
  wr.run_until(2 * kSecond);

  ChainScenario phased(/*partitioned=*/true);
  DomainRunner pr(*phased.topo, 2);
  pr.run_until(500 * kMillisecond);  // warm-up phase
  pr.run_until(2 * kSecond);         // measurement phase
  EXPECT_EQ(phased.trace(), whole.trace());
}

TEST(DomainRunnerTest, SingleDomainTopologyFallsBackToSequentialRun) {
  ChainScenario s(/*partitioned=*/false);
  DomainRunner runner(*s.topo, 4);
  runner.run_until(kSecond);
  EXPECT_EQ(s.sims[0]->now(), kSecond);
  EXPECT_EQ(runner.stats().windows, 1u);
  EXPECT_EQ(runner.stats().handoffs, 0u);
  EXPECT_GT(s.sink_b->arrivals(), 0u);
}

// ------------------------------------------------------------ validation

TEST(DomainRunnerTest, ZeroDelayBoundaryLinkIsRejected) {
  Simulation sim_a(1);
  Simulation sim_b(1);
  Topology topo(sim_a);
  const int far = topo.add_domain(sim_b);
  Host& a = topo.add_host("a");
  Host& b = topo.add_host("b", far);
  EXPECT_THROW(topo.add_link(a, b, 1e6, 0, kDropTail), std::invalid_argument);
  // Same-domain zero-delay links stay legal.
  Host& a2 = topo.add_host("a2");
  EXPECT_NO_THROW(topo.add_link(a, a2, 1e6, 0, kDropTail));
}

TEST(DomainRunnerTest, UnknownDomainIsRejected) {
  Simulation sim(1);
  Topology topo(sim);
  EXPECT_THROW(topo.add_host("x", 1), std::invalid_argument);
  EXPECT_THROW(topo.add_router("y", -1), std::invalid_argument);
}

// ----------------------------------------------------- error propagation

TEST(DomainRunnerTest, WorkerExceptionSurfacesWithDomainAndWindowContext) {
  ChainScenario s(/*partitioned=*/true);
  // A scenario callback blowing up inside the far domain's worker must not
  // terminate the pool; it surfaces after the join naming the domain.
  s.sims[1]->at(500 * kMillisecond,
                [] { throw std::runtime_error("injected scenario fault"); });
  DomainRunner runner(*s.topo, 2);
  try {
    runner.run_until(2 * kSecond);
    FAIL() << "expected the captured worker exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DomainRunner: domain 1 failed in window"), std::string::npos)
        << what;
    EXPECT_NE(what.find("injected scenario fault"), std::string::npos) << what;
  }
  // The runner object stays usable for inspection after the failure.
  EXPECT_GT(runner.stats().windows, 0u);
}

TEST(DomainRunnerTest, SingleDomainExceptionIsWrappedWithDomainZero) {
  ChainScenario s(/*partitioned=*/false);
  s.sims[0]->at(100 * kMillisecond, [] { throw std::runtime_error("boom"); });
  DomainRunner runner(*s.topo, 1);
  try {
    runner.run_until(kSecond);
    FAIL() << "expected the wrapped exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DomainRunner: domain 0 failed:"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
}

TEST(DomainRunnerTest, StallWatchdogNamesEveryDomainState) {
  ChainScenario s(/*partitioned=*/true);
  DomainRunner runner(*s.topo, 2);
  // A live chain needs thousands of windows for 2 s; a budget of 1 trips
  // the watchdog immediately and the diagnostic must carry per-domain state.
  runner.set_max_windows_for_test(1);
  try {
    runner.run_until(2 * kSecond);
    FAIL() << "expected the stall watchdog";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stall watchdog tripped"), std::string::npos) << what;
    EXPECT_NE(what.find("[domain 0:"), std::string::npos) << what;
    EXPECT_NE(what.find("[domain 1:"), std::string::npos) << what;
  }
  // Restoring the computed budget lets the same runner finish the run.
  runner.set_max_windows_for_test(0);
  runner.run_until(2 * kSecond);
  EXPECT_EQ(s.sims[0]->now(), 2 * kSecond);
  EXPECT_EQ(s.sims[1]->now(), 2 * kSecond);
}

}  // namespace
}  // namespace pels
