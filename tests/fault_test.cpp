// Tests for src/fault: loss-process statistics and determinism, fault-plan
// validation, and the injector's link-level effects (flaps, brown-outs,
// blackouts). Scenario-level degradation behavior lives in robustness_test.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/loss_process.h"
#include "net/link.h"
#include "net/node.h"
#include "pels/pels_sink.h"
#include "queue/drop_tail.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "video/rd_model.h"

namespace pels {
namespace {

// ------------------------------------------------------- Gilbert–Elliott

TEST(GilbertElliottTest, ValidateRejectsBadParameters) {
  GilbertElliottConfig ok;
  EXPECT_NO_THROW(ok.validate());

  GilbertElliottConfig c = ok;
  c.p_good_to_bad = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ok;
  c.p_bad_to_good = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ok;
  c.loss_bad = 1.2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ok;
  c.loss_good = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(GilbertElliottTest, StationaryLossMatchesTheory) {
  // pi_bad = 0.01 / 0.21, loss_bad = 1: long-run loss ~ 4.76%.
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.20;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliottLoss ge(cfg, Rng(42, 7));
  const int n = 200'000;
  int lost = 0;
  for (int i = 0; i < n; ++i) lost += ge.lost(i) ? 1 : 0;
  const double empirical = static_cast<double>(lost) / n;
  EXPECT_NEAR(empirical, cfg.stationary_loss(), cfg.stationary_loss() * 0.1);
}

TEST(GilbertElliottTest, MeanBurstLengthMatchesTheory) {
  // With loss_bad = 1 and loss_good = 0, loss runs ARE bad-state sojourns:
  // geometric with mean 1 / p_bad_to_good = 5 packets.
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.20;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliottLoss ge(cfg, Rng(42, 8));
  int bursts = 0;
  std::int64_t lost = 0;
  bool in_burst = false;
  for (int i = 0; i < 500'000; ++i) {
    const bool l = ge.lost(i);
    if (l) {
      ++lost;
      if (!in_burst) ++bursts;
    }
    in_burst = l;
  }
  ASSERT_GT(bursts, 100);
  const double mean_burst = static_cast<double>(lost) / bursts;
  EXPECT_NEAR(mean_burst, 1.0 / cfg.p_bad_to_good, 0.15 * (1.0 / cfg.p_bad_to_good));
}

TEST(GilbertElliottTest, BurstsAreBurstierThanBernoulli) {
  // Same long-run loss rate, very different clustering: the GE chain's
  // lost packets must neighbor other lost packets far more often than an
  // i.i.d. process at the same rate.
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.20;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliottLoss ge(cfg, Rng(9, 1));
  BernoulliLoss iid(cfg.stationary_loss(), Rng(9, 2));
  const int n = 200'000;
  auto adjacency = [n](auto& process) {
    int pairs = 0;
    bool prev = false;
    for (int i = 0; i < n; ++i) {
      const bool l = process.lost(i);
      if (l && prev) ++pairs;
      prev = l;
    }
    return pairs;
  };
  EXPECT_GT(adjacency(ge), 5 * adjacency(iid));
}

TEST(GilbertElliottTest, DeterministicGivenSeed) {
  GilbertElliottConfig cfg;
  GilbertElliottLoss a(cfg, Rng(123, 5));
  GilbertElliottLoss b(cfg, Rng(123, 5));
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.lost(i), b.lost(i)) << "diverged at draw " << i;
  }
}

// --------------------------------------------------------------- Blackout

TEST(BlackoutLossTest, WindowMembershipIsHalfOpen) {
  BlackoutLoss loss({{10 * kSecond, 20 * kSecond}, {30 * kSecond, 31 * kSecond}});
  EXPECT_FALSE(loss.lost(9 * kSecond));
  EXPECT_TRUE(loss.lost(10 * kSecond));
  EXPECT_TRUE(loss.lost(15 * kSecond));
  EXPECT_FALSE(loss.lost(20 * kSecond));
  EXPECT_TRUE(loss.lost(30 * kSecond + kSecond / 2));
  EXPECT_FALSE(loss.lost(31 * kSecond));
}

// -------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, EmptyPlanIsEmptyAndValid) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate());
  plan.burst_corruption = GilbertElliottConfig{};
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, ValidateRejectsNonsense) {
  {
    FaultPlan p;
    p.link_flaps.push_back({5 * kSecond, 5 * kSecond});  // empty window
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.brownouts.push_back({1 * kSecond, 2 * kSecond, 0.0});  // dead link != brown-out
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.brownouts.push_back({1 * kSecond, 2 * kSecond, 1.5});  // not a degradation
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.router_restarts.push_back({-1});
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.ack_blackouts.push_back({3 * kSecond, 2 * kSecond});  // until < at
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    FaultPlan p;
    GilbertElliottConfig ge;
    ge.p_bad_to_good = 0.0;
    p.burst_corruption = ge;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

// ------------------------------------------------------- link-level faults

class RecordingNode : public Node {
 public:
  RecordingNode(NodeId id, Simulation& sim) : Node(id, "rec"), sim_(sim) {}
  void receive(Packet pkt) override { arrivals.emplace_back(sim_.now(), std::move(pkt)); }
  std::vector<std::pair<SimTime, Packet>> arrivals;

 private:
  Simulation& sim_;
};

Packet make_packet(std::int32_t size) {
  Packet p;
  p.size_bytes = size;
  p.color = Color::kGreen;
  return p;
}

TEST(LinkFaultTest, FlapLosesWirePacketAndResumesOnRecovery) {
  Simulation sim;
  RecordingNode dst(0, sim);
  // 500 bytes at 4 mb/s = 1 ms serialization, no propagation delay.
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  FaultInjector injector(sim);
  // Down mid-serialization of the first packet; up again at 10 ms.
  injector.inject_flap(link, {from_micros(500), from_millis(10)});
  sim.at(0, [&] { link.send(make_packet(500)); });       // on the wire at down-time
  sim.at(from_millis(2), [&] { link.send(make_packet(500)); });  // queued while down
  sim.run_until(from_millis(9));
  EXPECT_FALSE(link.is_up());
  EXPECT_TRUE(dst.arrivals.empty());  // carrier loss killed packet 1
  EXPECT_EQ(link.packets_corrupted(), 1u);
  sim.run_until(from_millis(20));
  EXPECT_TRUE(link.is_up());
  ASSERT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(11));  // restarted at 10, 1 ms wire
}

TEST(LinkFaultTest, BrownoutScalesBandwidthAndRestores) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  FaultInjector injector(sim);
  std::vector<double> hook_rates;
  injector.inject_brownout(link, {from_millis(1), from_millis(10), 0.25},
                           [&](double bw) { hook_rates.push_back(bw); });
  sim.run_until(from_millis(5));
  EXPECT_DOUBLE_EQ(link.bandwidth_bps(), 1e6);
  sim.run_until(from_millis(11));
  EXPECT_DOUBLE_EQ(link.bandwidth_bps(), 4e6);
  ASSERT_EQ(hook_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(hook_rates[0], 1e6);
  EXPECT_DOUBLE_EQ(hook_rates[1], 4e6);
}

TEST(LinkFaultTest, BlackoutWindowDropsEveryWirePacket) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(64));
  FaultInjector injector(sim);
  injector.inject_blackouts(link, {{from_millis(10), from_millis(20)}});
  // One packet per 2 ms for 30 ms: those whose serialization *ends* inside
  // [10, 20) ms are corrupted on the wire.
  for (int i = 0; i < 15; ++i) {
    sim.at(from_millis(2 * i), [&] { link.send(make_packet(500)); });
  }
  sim.run();
  EXPECT_EQ(link.packets_corrupted(), 5u);   // ends at 11, 13, 15, 17, 19 ms
  EXPECT_EQ(dst.arrivals.size(), 10u);
}

TEST(LinkFaultTest, CorruptionProcessesComposeWithoutShortCircuit) {
  // Both processes must see every packet: a blackout covering the whole run
  // may not starve the GE chain of draws, or replays that add/remove one
  // process would perturb the other's state sequence.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(64));
  int ge_draws = 0;
  link.add_corruption([&](SimTime) { ++ge_draws; return false; });
  link.add_corruption(BlackoutLoss({{0, kSecond}}));
  for (int i = 0; i < 10; ++i) {
    sim.at(from_millis(2 * i), [&] { link.send(make_packet(500)); });
  }
  sim.run();
  EXPECT_EQ(ge_draws, 10);
  EXPECT_EQ(dst.arrivals.size(), 0u);
  EXPECT_EQ(link.packets_corrupted(), 10u);
}

// ------------------------------------------------- sink duplicate tolerance

TEST(SinkFaultTest, DuplicateDataPacketsAreCountedOnce) {
  Simulation sim;
  Host host(1, "sink-host");
  VideoConfig video;
  RdModel rd{RdModelConfig{}};
  PelsSink sink(sim, host, /*flow=*/0, /*src_node=*/2, video, rd);

  Packet base;
  base.flow = 0;
  base.seq = 1;
  base.uid = 101;
  base.size_bytes = 500;
  base.color = Color::kGreen;
  base.frame_id = 0;
  base.frame_offset = -500;  // base-layer bytes
  sink.on_packet(base);
  sink.on_packet(base);  // duplicated in flight

  Packet fgs;
  fgs.flow = 0;
  fgs.seq = 2;
  fgs.uid = 102;
  fgs.size_bytes = 500;
  fgs.color = Color::kYellow;
  fgs.frame_id = 0;
  fgs.frame_offset = 0;
  sink.on_packet(fgs);
  sink.on_packet(fgs);
  sink.on_packet(fgs);

  EXPECT_EQ(sink.packets_received(Color::kGreen), 1u);
  EXPECT_EQ(sink.packets_received(Color::kYellow), 1u);
  EXPECT_EQ(sink.fgs_bytes_received(), 500u);
  EXPECT_EQ(sink.duplicates_ignored(), 3u);

  sink.finalize_all();
  ASSERT_EQ(sink.frame_qualities().size(), 1u);
  EXPECT_EQ(sink.frame_qualities()[0].received_fgs_bytes, 500);
}

TEST(SinkFaultTest, ReorderedPacketsOfOpenFramesStillAssemble) {
  // Interleave two frames' packets out of order; both must assemble with
  // their own bytes, and a duplicate arriving after the reorder still only
  // counts once.
  Simulation sim;
  Host host(1, "sink-host");
  VideoConfig video;
  RdModel rd{RdModelConfig{}};
  PelsSink sink(sim, host, 0, 2, video, rd);

  auto pkt = [&video](std::uint64_t uid, std::int64_t frame, std::int64_t offset,
                      Color color) {
    Packet p;
    p.flow = 0;
    p.uid = uid;
    // A full base layer in one packet, so base_ok is decided by delivery
    // alone; FGS chunks stay packet-sized.
    p.size_bytes = offset < 0 ? static_cast<std::int32_t>(video.base_layer_bytes) : 500;
    p.color = color;
    p.frame_id = frame;
    p.frame_offset = static_cast<std::int32_t>(offset);
    return p;
  };
  sink.on_packet(pkt(1, 0, -500, Color::kGreen));
  sink.on_packet(pkt(4, 1, 0, Color::kYellow));    // frame 1 before frame 0 done
  sink.on_packet(pkt(2, 0, 0, Color::kYellow));
  sink.on_packet(pkt(3, 1, -500, Color::kGreen));  // frame 1 base after its FGS
  sink.on_packet(pkt(2, 0, 0, Color::kYellow));    // late duplicate

  EXPECT_EQ(sink.duplicates_ignored(), 1u);
  sink.finalize_all();
  ASSERT_EQ(sink.frame_qualities().size(), 2u);
  for (const auto& q : sink.frame_qualities()) {
    EXPECT_TRUE(q.base_ok);
    EXPECT_EQ(q.received_fgs_bytes, 500);
  }
}

}  // namespace
}  // namespace pels
