// Tests for src/video: frame planning, packetization, the gamma controller
// (eq. (4)), the synthetic R-D model, and the consecutive-prefix decoder.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"
#include "video/decoder.h"
#include "video/fgs.h"
#include "video/gamma_controller.h"
#include "video/rd_model.h"

namespace pels {
namespace {

VideoConfig test_video() {
  VideoConfig v;
  v.fps = 10.0;
  v.packet_size_bytes = 500;
  v.max_frame_bytes = 63'000;
  v.base_layer_bytes = 1'600;
  v.total_frames = 400;
  return v;
}

// ------------------------------------------------------------ VideoConfig

TEST(VideoConfigTest, DerivedQuantities) {
  const VideoConfig v = test_video();
  EXPECT_EQ(v.frame_period(), from_millis(100));
  EXPECT_EQ(v.max_fgs_bytes(), 61'400);
  EXPECT_DOUBLE_EQ(v.base_layer_rate_bps(), 128e3);
}

// ------------------------------------------------------------- plan_frame

TEST(PlanFrameTest, BudgetSplitsAcrossLayers) {
  const VideoConfig v = test_video();
  // 1 mb/s at 10 fps = 12,500 B per frame; 1,600 base + 10,900 FGS.
  const FramePlan plan = plan_frame(v, 3, 1e6, 0.3);
  EXPECT_EQ(plan.frame_id, 3);
  EXPECT_EQ(plan.base_bytes, 1'600);
  EXPECT_EQ(plan.fgs_bytes(), 10'900);
  EXPECT_EQ(plan.red_bytes, std::llround(0.3 * 10'900));
  EXPECT_EQ(plan.yellow_bytes + plan.red_bytes, 10'900);
  EXPECT_EQ(plan.total_bytes(), 12'500);
}

TEST(PlanFrameTest, BaseLayerAlwaysIncluded) {
  const VideoConfig v = test_video();
  // Rate below the base-layer rate: FGS gets nothing, base stays whole.
  const FramePlan plan = plan_frame(v, 0, 64e3, 0.5);
  EXPECT_EQ(plan.base_bytes, 1'600);
  EXPECT_EQ(plan.fgs_bytes(), 0);
}

TEST(PlanFrameTest, FgsCappedAtCodedSize) {
  const VideoConfig v = test_video();
  const FramePlan plan = plan_frame(v, 0, 100e6, 0.5);  // absurdly high rate
  EXPECT_EQ(plan.fgs_bytes(), v.max_fgs_bytes());
}

TEST(PlanFrameTest, GammaExtremes) {
  const VideoConfig v = test_video();
  const FramePlan all_yellow = plan_frame(v, 0, 1e6, 0.0);
  EXPECT_EQ(all_yellow.red_bytes, 0);
  EXPECT_GT(all_yellow.yellow_bytes, 0);
  const FramePlan all_red = plan_frame(v, 0, 1e6, 1.0);
  EXPECT_EQ(all_red.yellow_bytes, 0);
  EXPECT_GT(all_red.red_bytes, 0);
}

TEST(PlanFrameTest, UnpartitionedSendsAllYellow) {
  const VideoConfig v = test_video();
  const FramePlan plan = plan_frame(v, 0, 1e6, 0.7, /*partition=*/false);
  EXPECT_EQ(plan.red_bytes, 0);
  EXPECT_EQ(plan.yellow_bytes, 10'900);
}

// -------------------------------------------------------------- packetize

TEST(PacketizeTest, SegmentsAndOffsets) {
  const VideoConfig v = test_video();
  FramePlan plan;
  plan.frame_id = 5;
  plan.base_bytes = 1'600;
  plan.yellow_bytes = 1'200;
  plan.red_bytes = 700;
  const auto pkts = packetize(v, plan);
  // base: 500+500+500+100; yellow: 500+500+200; red: 500+200.
  ASSERT_EQ(pkts.size(), 9u);
  std::int64_t base = 0, yellow = 0, red = 0;
  for (const auto& p : pkts) {
    EXPECT_EQ(p.frame_id, 5);
    EXPECT_LE(p.size_bytes, 500);
    EXPECT_GT(p.size_bytes, 0);
    switch (p.color) {
      case Color::kGreen:
        base += p.size_bytes;
        EXPECT_EQ(p.frame_offset, -1);
        break;
      case Color::kYellow:
        EXPECT_EQ(p.frame_offset, yellow);
        yellow += p.size_bytes;
        break;
      case Color::kRed:
        EXPECT_EQ(p.frame_offset, plan.yellow_bytes + red);
        red += p.size_bytes;
        break;
      default:
        FAIL() << "unexpected colour";
    }
  }
  EXPECT_EQ(base, plan.base_bytes);
  EXPECT_EQ(yellow, plan.yellow_bytes);
  EXPECT_EQ(red, plan.red_bytes);
}

TEST(PacketizeTest, RedContinuesYellowOffsets) {
  // The red segment's first byte offset equals yellow_bytes: together they
  // tile the FGS prefix with no gap and no overlap.
  const VideoConfig v = test_video();
  const FramePlan plan = plan_frame(v, 0, 2e6, 0.4);
  const auto pkts = packetize(v, plan);
  std::vector<std::pair<std::int32_t, std::int32_t>> chunks;
  for (const auto& p : pkts)
    if (p.color != Color::kGreen) chunks.emplace_back(p.frame_offset, p.size_bytes);
  EXPECT_EQ(FgsDecoder::useful_prefix(chunks), plan.fgs_bytes());
}

TEST(PacketizeTest, EmptyFgsProducesOnlyBasePackets) {
  const VideoConfig v = test_video();
  const FramePlan plan = plan_frame(v, 0, 100e3, 0.5);
  const auto pkts = packetize(v, plan);
  ASSERT_EQ(pkts.size(), 4u);  // 1600 B = 3x500 + 100
  for (const auto& p : pkts) EXPECT_EQ(p.color, Color::kGreen);
}

// -------------------------------------------------------- GammaController

TEST(GammaControllerTest, ConvergesToFixedPoint) {
  GammaConfig cfg;
  cfg.sigma = 0.5;
  cfg.p_thr = 0.75;
  GammaController g(cfg);
  for (int i = 0; i < 100; ++i) g.update(0.15);
  EXPECT_NEAR(g.gamma(), 0.15 / 0.75, 1e-6);
}

TEST(GammaControllerTest, FixedPointMakesRedLossEqualThreshold) {
  // At gamma* = p/p_thr, red loss p/gamma* = p_thr (Lemma 4).
  GammaConfig cfg;
  GammaController g(cfg);
  const double p = 0.3;
  for (int i = 0; i < 200; ++i) g.update(p);
  EXPECT_NEAR(p / g.gamma(), cfg.p_thr, 1e-6);
}

TEST(GammaControllerTest, DropsToFloorWithoutLoss) {
  GammaConfig cfg;
  cfg.gamma_low = 0.05;
  GammaController g(cfg);
  for (int i = 0; i < 100; ++i) g.update(0.0);
  EXPECT_DOUBLE_EQ(g.gamma(), 0.05);
}

TEST(GammaControllerTest, ClampsAtCeiling) {
  GammaConfig cfg;
  cfg.gamma_high = 0.95;
  GammaController g(cfg);
  for (int i = 0; i < 100; ++i) g.update(1.0);  // p/p_thr = 1.33 > ceiling
  EXPECT_DOUBLE_EQ(g.gamma(), 0.95);
}

TEST(GammaControllerTest, TracksLossChanges) {
  GammaController g(GammaConfig{});
  for (int i = 0; i < 100; ++i) g.update(0.07);
  const double low = g.gamma();
  for (int i = 0; i < 100; ++i) g.update(0.14);
  EXPECT_NEAR(g.gamma(), 2.0 * low, 1e-3);
}

TEST(GammaControllerTest, StabilityPredicate) {
  EXPECT_FALSE(GammaController::is_stable_gain(0.0));
  EXPECT_TRUE(GammaController::is_stable_gain(0.5));
  EXPECT_TRUE(GammaController::is_stable_gain(1.99));
  EXPECT_FALSE(GammaController::is_stable_gain(2.0));
  EXPECT_FALSE(GammaController::is_stable_gain(3.0));
  EXPECT_FALSE(GammaController::is_stable_gain(-0.5));
}

TEST(GammaControllerTest, PureIterateMatchesLemma) {
  // One step of eq. (4) by hand.
  EXPECT_DOUBLE_EQ(gamma_iterate(0.5, 0.15, 0.5, 0.75), 0.5 + 0.5 * (0.2 - 0.5));
}

TEST(GammaControllerTest, StationaryGammaClamped) {
  GammaConfig cfg;
  cfg.gamma_low = 0.05;
  cfg.gamma_high = 0.95;
  GammaController g(cfg);
  EXPECT_DOUBLE_EQ(g.stationary_gamma(0.0), 0.05);
  EXPECT_NEAR(g.stationary_gamma(0.15), 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(g.stationary_gamma(0.9), 0.95);
}

// ---------------------------------------------------------------- RdModel

TEST(RdModelTest, PsnrMonotoneInUsefulBytes) {
  RdModel rd;
  double prev = -1e9;
  for (std::int64_t bytes : {0L, 1000L, 5000L, 20000L, 61400L}) {
    const double q = rd.psnr(10, bytes);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(RdModelTest, ZeroBytesEqualsBasePsnr) {
  RdModel rd;
  for (std::int64_t f : {0L, 50L, 399L}) EXPECT_DOUBLE_EQ(rd.psnr(f, 0), rd.base_psnr(f));
}

TEST(RdModelTest, FullEnhancementGainNearConfigured) {
  RdModelConfig cfg;
  RdModel rd(cfg);
  RunningStats gain;
  for (std::int64_t f = 0; f < cfg.total_frames; ++f)
    gain.add(rd.psnr(f, cfg.max_fgs_bytes) - rd.base_psnr(f));
  EXPECT_NEAR(gain.mean(), cfg.max_gain_db, cfg.max_gain_db * 0.2);
}

TEST(RdModelTest, GainIsConcave) {
  // The first half of the bytes must buy more dB than the second half.
  RdModel rd;
  const std::int64_t half = 61'400 / 2;
  const double first_half = rd.psnr(0, half) - rd.psnr(0, 0);
  const double second_half = rd.psnr(0, 61'400) - rd.psnr(0, half);
  EXPECT_GT(first_half, 2.0 * second_half);
}

TEST(RdModelTest, DeterministicAcrossInstances) {
  RdModel a, b;
  for (std::int64_t f = 0; f < 400; f += 37) {
    EXPECT_DOUBLE_EQ(a.base_psnr(f), b.base_psnr(f));
    EXPECT_DOUBLE_EQ(a.psnr(f, 10'000), b.psnr(f, 10'000));
  }
}

TEST(RdModelTest, BasePsnrStaysInPlausibleRange) {
  RdModel rd;
  for (std::int64_t f = 0; f < 400; ++f) {
    const double q = rd.base_psnr(f);
    EXPECT_GT(q, 20.0);
    EXPECT_LT(q, 40.0);
  }
}

TEST(RdModelTest, ConcealmentWellBelowBase) {
  RdModel rd;
  for (std::int64_t f = 0; f < 400; f += 50)
    EXPECT_LT(rd.concealment_psnr() + 5.0, rd.base_psnr(f));
}

// ------------------------------------------------------------- FgsDecoder

TEST(UsefulPrefixTest, FullCoverage) {
  EXPECT_EQ(FgsDecoder::useful_prefix({{0, 500}, {500, 500}, {1000, 500}}), 1500);
}

TEST(UsefulPrefixTest, GapEndsPrefix) {
  EXPECT_EQ(FgsDecoder::useful_prefix({{0, 500}, {1000, 500}}), 500);
}

TEST(UsefulPrefixTest, MissingFirstChunkMeansNothingUseful) {
  EXPECT_EQ(FgsDecoder::useful_prefix({{500, 500}, {1000, 500}}), 0);
}

TEST(UsefulPrefixTest, UnorderedChunksAreSorted) {
  EXPECT_EQ(FgsDecoder::useful_prefix({{1000, 500}, {0, 500}, {500, 500}}), 1500);
}

TEST(UsefulPrefixTest, OverlapsTolerated) {
  EXPECT_EQ(FgsDecoder::useful_prefix({{0, 600}, {500, 500}}), 1000);
}

TEST(UsefulPrefixTest, EmptyIsZero) { EXPECT_EQ(FgsDecoder::useful_prefix({}), 0); }

TEST(FgsDecoderTest, IntactFrameScoresFullPsnr) {
  RdModel rd;
  FgsDecoder dec(rd);
  FrameReception rx;
  rx.frame_id = 7;
  rx.base_bytes_expected = 1600;
  rx.base_bytes_received = 1600;
  rx.fgs_chunks = {{0, 500}, {500, 500}};
  const FrameQuality q = dec.decode(rx);
  EXPECT_TRUE(q.base_ok);
  EXPECT_EQ(q.useful_fgs_bytes, 1000);
  EXPECT_EQ(q.received_fgs_bytes, 1000);
  EXPECT_DOUBLE_EQ(q.utility, 1.0);
  EXPECT_DOUBLE_EQ(q.psnr_db, rd.psnr(7, 1000));
}

TEST(FgsDecoderTest, GapWastesTailBytes) {
  RdModel rd;
  FgsDecoder dec(rd);
  FrameReception rx;
  rx.frame_id = 7;
  rx.base_bytes_expected = 1600;
  rx.base_bytes_received = 1600;
  rx.fgs_chunks = {{0, 500}, {1000, 500}, {1500, 500}};  // gap at 500
  const FrameQuality q = dec.decode(rx);
  EXPECT_EQ(q.useful_fgs_bytes, 500);
  EXPECT_EQ(q.received_fgs_bytes, 1500);
  EXPECT_NEAR(q.utility, 1.0 / 3.0, 1e-9);
}

TEST(FgsDecoderTest, LostBaseLayerCollapsesToConcealment) {
  RdModel rd;
  FgsDecoder dec(rd);
  FrameReception rx;
  rx.frame_id = 7;
  rx.base_bytes_expected = 1600;
  rx.base_bytes_received = 1100;  // one base packet lost
  rx.fgs_chunks = {{0, 500}};
  const FrameQuality q = dec.decode(rx);
  EXPECT_FALSE(q.base_ok);
  EXPECT_DOUBLE_EQ(q.psnr_db, rd.concealment_psnr());
}

TEST(FgsDecoderTest, NoFgsDataIsVacuouslyUseful) {
  RdModel rd;
  FgsDecoder dec(rd);
  FrameReception rx;
  rx.frame_id = 0;
  rx.base_bytes_expected = 1600;
  rx.base_bytes_received = 1600;
  const FrameQuality q = dec.decode(rx);
  EXPECT_DOUBLE_EQ(q.utility, 1.0);
  EXPECT_DOUBLE_EQ(q.psnr_db, rd.base_psnr(0));
}

// -------------------------- property sweep: utility under random loss ----

class UtilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilitySweep, DecoderMatchesClosedFormUtility) {
  // Drop packets of an H-packet frame i.i.d. with probability p; decoded
  // utility must match eq. (3) in expectation.
  const double p = GetParam();
  const std::int64_t H = 100;
  const std::int32_t pkt = 500;
  Rng rng(1234);
  RdModel rd;
  FgsDecoder dec(rd);
  RunningStats useful;
  for (int trial = 0; trial < 4000; ++trial) {
    FrameReception rx;
    rx.frame_id = 0;
    rx.base_bytes_expected = 0;
    for (std::int64_t i = 0; i < H; ++i)
      if (!rng.bernoulli(p))
        rx.fgs_chunks.emplace_back(static_cast<std::int32_t>(i) * pkt, pkt);
    useful.add(static_cast<double>(dec.decode(rx).useful_fgs_bytes) / pkt);
  }
  const double expected = (1.0 - p) / p * (1.0 - std::pow(1.0 - p, H));
  EXPECT_NEAR(useful.mean(), expected, std::max(0.05 * expected, 0.5));
}

INSTANTIATE_TEST_SUITE_P(LossGrid, UtilitySweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.5));

}  // namespace
}  // namespace pels
