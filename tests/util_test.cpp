// Tests for src/util: time conversion, RNG determinism and distribution
// sanity, statistics accumulators, table rendering, fixed-capacity callables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/inplace_function.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time.h"

namespace pels {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTimeTest, SecondConversionRoundTrips) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.5), kSecond / 2);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(3.25)), 3.25);
}

TEST(SimTimeTest, MillisAndMicrosScale) {
  EXPECT_EQ(from_millis(1.0), kMillisecond);
  EXPECT_EQ(from_micros(1.0), kMicrosecond);
  EXPECT_EQ(from_millis(30.0), 30 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_millis(from_millis(16.5)), 16.5);
}

TEST(SimTimeTest, ConversionRoundsToNearestNanosecond) {
  EXPECT_EQ(from_seconds(1e-9), 1);
  EXPECT_EQ(from_seconds(1.4e-9), 1);
  EXPECT_EQ(from_seconds(1.6e-9), 2);
}

TEST(SimTimeTest, TransmissionTimeMatchesBandwidth) {
  // 500 bytes at 4 mb/s = 1 ms.
  EXPECT_EQ(transmission_time(500, 4e6), kMillisecond);
  // 1500 bytes at 10 mb/s = 1.2 ms.
  EXPECT_EQ(transmission_time(1500, 10e6), from_micros(1200));
  EXPECT_EQ(transmission_time(0, 1e6), 0);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitIsDeterministicAndOrderIndependent) {
  Rng parent1(7);
  Rng parent2(7);
  parent2.next_u64();  // advancing the parent must not change children
  Rng c1 = parent1.split(5);
  Rng c2 = parent2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(2);
  const double p = 0.1;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.005);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_GT(s.min(), 0.0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(6);
  const double p = 0.25;
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(static_cast<double>(rng.geometric(p)));
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(RngTest, ParetoRespectsScaleFloor) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
}

// ---------------------------------------------------------- RunningStats

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// -------------------------------------------------------------- SampleSet

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSetTest, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

// -------------------------------------------------------------- TimeSeries

TEST(TimeSeriesTest, MeanInWindow) {
  TimeSeries ts;
  ts.add(0, 1.0);
  ts.add(kSecond, 2.0);
  ts.add(2 * kSecond, 3.0);
  ts.add(3 * kSecond, 100.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(0, 2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(3 * kSecond, 3 * kSecond), 100.0);
}

TEST(TimeSeriesTest, OscillationMeasuresWorstDeviation) {
  TimeSeries ts;
  ts.add(0, 10.0);
  ts.add(1, 12.0);
  ts.add(2, 8.0);
  EXPECT_DOUBLE_EQ(ts.oscillation_in(0, 2), 2.0);
}

TEST(TimeSeriesTest, ValueAtReturnsLastAtOrBefore) {
  TimeSeries ts;
  ts.add(10, 1.0);
  ts.add(20, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(10), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(15), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(25), 2.0);
}

// ------------------------------------------------------------- Jain index

TEST(JainIndexTest, PerfectFairnessIsOne) {
  const double xs[] = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(xs), 1.0);
}

TEST(JainIndexTest, SingleHogApproachesOneOverN) {
  const double xs[] = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(xs), 0.25);
}

TEST(JainIndexTest, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  const double xs[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(xs), 1.0);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // underflow
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(5.0);   // bin 2
  h.add(9.99);  // bin 4
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

// ------------------------------------------------------- InplaceFunction

TEST(InplaceFunctionTest, EmptyAndNullptrAreFalsy) {
  InplaceFunction<int(), 32> fn;
  EXPECT_FALSE(fn);
  fn = [] { return 42; };
  EXPECT_TRUE(fn);
  EXPECT_EQ(fn(), 42);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(InplaceFunctionTest, CarriesMoveOnlyCaptures) {
  auto box = std::make_unique<int>(7);
  InplaceFunction<int(), 32> fn = [b = std::move(box)] { return *b; };
  EXPECT_EQ(fn(), 7);
  EXPECT_EQ(fn(), 7);  // capture survives repeated invocation
}

TEST(InplaceFunctionTest, MoveTransfersAndEmptiesSource) {
  InplaceFunction<int(int), 32> a = [](int x) { return x + 1; };
  InplaceFunction<int(int), 32> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): emptiness is specified
  ASSERT_TRUE(b);
  EXPECT_EQ(b(4), 5);
}

TEST(InplaceFunctionTest, RelocatesInsideGrowingVector) {
  // The scheduler's slot pool relocates callbacks on vector growth; the
  // capture (including destructors) must survive the moves.
  auto live = std::make_shared<int>(0);
  std::vector<InplaceFunction<int(), 48>> pool;
  for (int i = 0; i < 64; ++i) {
    pool.emplace_back([live, i] {
      ++*live;
      return i;
    });
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(pool[static_cast<std::size_t>(i)](), i);
  EXPECT_EQ(*live, 64);
  pool.clear();
  EXPECT_EQ(live.use_count(), 1);  // every relocated capture was destroyed
}

TEST(InplaceFunctionTest, CapacityIsCompileTimeConstant) {
  static_assert(InplaceFunction<void(), 64>::capacity() == 64);
  SUCCEED();
}

// ----------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignedOutputContainsCells) {
  TablePrinter t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter t({"x"});
  t.add_row({"a,b"});
  t.add_row({"he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(1.0, 0), "1");
  EXPECT_EQ(TablePrinter::fmt_int(42), "42");
}

// ------------------------------------------------------------ ScratchArena

TEST(ScratchArenaTest, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena;
  char* a = arena.alloc_array<char>(3);
  double* d = arena.alloc_array<double>(4);
  auto* u = static_cast<std::uint8_t*>(arena.allocate(16, 64));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) % 64, 0u);
  // Writes to one allocation must not alias another.
  a[0] = 'x';
  d[0] = 1.0;
  u[0] = 7;
  EXPECT_EQ(a[0], 'x');
  EXPECT_EQ(d[0], 1.0);
  EXPECT_EQ(arena.bytes_used(), 3u + 4 * sizeof(double) + 16u);
}

TEST(ScratchArenaTest, GrowsPastInitialBlockAndSurvivesLargeRequests) {
  ScratchArena arena;
  // Far beyond the initial 4 KiB block: forces chained growth.
  for (int i = 0; i < 64; ++i) {
    auto* p = arena.alloc_array<std::uint64_t>(512);  // 4 KiB each
    p[0] = static_cast<std::uint64_t>(i);
    p[511] = static_cast<std::uint64_t>(i);
  }
  EXPECT_GE(arena.capacity(), 64u * 4096u);
  // A single request larger than any block so far must also succeed.
  auto* big = arena.alloc_array<std::uint64_t>(1u << 18);
  big[0] = 1;
  big[(1u << 18) - 1] = 2;
  EXPECT_EQ(big[0], 1u);
}

TEST(ScratchArenaTest, ResetRetainsCapacityAndReusesMemory) {
  ScratchArena arena;
  for (int i = 0; i < 8; ++i) arena.alloc_array<std::uint64_t>(1024);
  const std::size_t grown = arena.capacity();
  ASSERT_GT(grown, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The largest block is retained, so the steady-state footprint survives.
  EXPECT_GT(arena.capacity(), 0u);
  EXPECT_LE(arena.capacity(), grown);
  const std::size_t after_reset = arena.capacity();
  // A same-shaped allocation cycle must fit in the retained block without
  // growing again (this is the "steady state touches the heap zero times"
  // promise: the retained block is as large as everything before it
  // combined, because growth doubles).
  arena.alloc_array<std::uint64_t>(1024);
  arena.reset();
  EXPECT_EQ(arena.capacity(), after_reset);
}

}  // namespace
}  // namespace pels
