// SinkTable + Host default-agent tests (cc/sink_table.h): the receiver-side
// memory diet for population-scale drivers.
#include <gtest/gtest.h>

#include "cc/sink_table.h"
#include "net/host.h"

namespace pels {
namespace {

Packet make_packet(FlowId flow, std::int32_t bytes) {
  Packet pkt;
  pkt.flow = flow;
  pkt.size_bytes = bytes;
  return pkt;
}

TEST(SinkTableTest, RecordsPerFlowPacketsAndBytes) {
  SinkTable table;
  table.resize(4);
  table.record(1, 100);
  table.record(1, 250);
  table.record(3, 40);
  EXPECT_EQ(table.packets(0), 0u);
  EXPECT_EQ(table.packets(1), 2u);
  EXPECT_EQ(table.bytes(1), 350u);
  EXPECT_EQ(table.packets(3), 1u);
  EXPECT_EQ(table.bytes(3), 40u);
  const SinkTable::Totals t = table.totals();
  EXPECT_EQ(t.packets, 3u);
  EXPECT_EQ(t.bytes, 390u);
}

TEST(SinkTableTest, ResizePreservesCountersAndReportsFootprint) {
  SinkTable table;
  table.resize(2);
  table.record(0, 10);
  table.resize(8);
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.packets(0), 1u);
  EXPECT_EQ(table.packets(7), 0u);
  // Two u64 columns: 16 bytes per flow of committed capacity, minimum.
  EXPECT_GE(table.memory_bytes(), 8u * 16u);
}

TEST(SinkTableTest, AgentRoutesDeliveriesIntoFlowCells) {
  SinkTable table;
  table.resize(3);
  SinkTableAgent agent(table);
  agent.on_packet(make_packet(2, 500));
  agent.on_packet(make_packet(0, 125));
  agent.on_packet(make_packet(2, 500));
  EXPECT_EQ(table.packets(2), 2u);
  EXPECT_EQ(table.bytes(2), 1000u);
  EXPECT_EQ(table.packets(0), 1u);
  EXPECT_EQ(table.bytes(0), 125u);
}

TEST(HostDefaultAgentTest, FallsBackWhenNoPerFlowRegistration) {
  Host host(0, "h");
  SinkTable table;
  table.resize(2);
  SinkTableAgent agent(table);

  // No agent at all: the packet is undeliverable.
  host.receive(make_packet(0, 100));
  EXPECT_EQ(host.packets_undeliverable(), 1u);

  host.set_default_agent(&agent);
  host.receive(make_packet(0, 100));
  host.receive(make_packet(1, 200));
  EXPECT_EQ(host.packets_undeliverable(), 1u);
  EXPECT_EQ(table.packets(0), 1u);
  EXPECT_EQ(table.bytes(1), 200u);
  EXPECT_EQ(host.packets_received(), 3u);

  host.set_default_agent(nullptr);
  host.receive(make_packet(0, 100));
  EXPECT_EQ(host.packets_undeliverable(), 2u);
}

TEST(HostDefaultAgentTest, PerFlowRegistrationWinsOverDefault) {
  class Counter : public Agent {
   public:
    void on_packet(const Packet&) override { ++count; }
    int count = 0;
  };
  Host host(0, "h");
  SinkTable table;
  table.resize(2);
  SinkTableAgent fallback(table);
  Counter dedicated;
  host.set_default_agent(&fallback);
  host.register_agent(0, &dedicated);

  host.receive(make_packet(0, 100));  // flow 0 -> dedicated agent
  host.receive(make_packet(1, 100));  // flow 1 -> default agent
  EXPECT_EQ(dedicated.count, 1);
  EXPECT_EQ(table.packets(0), 0u);
  EXPECT_EQ(table.packets(1), 1u);

  host.unregister_agent(0);
  host.receive(make_packet(0, 100));  // now falls through to the default
  EXPECT_EQ(table.packets(0), 1u);
}

}  // namespace
}  // namespace pels
