// Tests for the Link transmit pipeline (src/net/link.cpp): exact
// serialization/propagation timing under deep pipelining, the single-pending-
// event invariant of the coalesced event model, utilization pro-rating,
// carrier loss mid-flight, brown-outs, composed corruption processes, and
// steady-state zero-growth of the scheduler pool (see DESIGN.md "Event
// model").
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "fault/loss_process.h"
#include "net/host.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/router.h"
#include "net/topology.h"
#include "queue/drop_tail.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "util/time.h"

namespace pels {
namespace {

Packet make_packet(std::int32_t size, std::uint64_t seq = 0) {
  Packet p;
  p.size_bytes = size;
  p.seq = seq;
  p.color = Color::kGreen;
  return p;
}

/// Test node that records deliveries with timestamps.
class RecordingNode : public Node {
 public:
  RecordingNode(NodeId id, Simulation& sim) : Node(id, "rec"), sim_(sim) {}
  void receive(Packet pkt) override {
    arrivals.emplace_back(sim_.now(), std::move(pkt));
  }
  std::vector<std::pair<SimTime, Packet>> arrivals;

 private:
  Simulation& sim_;
};

// ------------------------------------------------- pipelined timing

TEST(LinkPipelineTest, BackToBackArrivalsSpacedByExactSerializationTime) {
  // 500 bytes at 4 mb/s = 1 ms serialization; 5 ms propagation. The first
  // packet arrives at tx + prop; each subsequent one exactly one
  // serialization time later, regardless of propagation depth.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, from_millis(5), std::make_unique<DropTailQueue>(64));
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(link.send(make_packet(500, static_cast<std::uint64_t>(i))));
  }
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(dst.arrivals[static_cast<std::size_t>(i)].first,
              from_millis(i + 1 + 5))
        << "packet " << i;
    EXPECT_EQ(dst.arrivals[static_cast<std::size_t>(i)].second.seq,
              static_cast<std::uint64_t>(i));
  }
}

TEST(LinkPipelineTest, OnePendingEventNoMatterHowManyPacketsInFlight) {
  // A long-propagation link with the whole burst on the wire must hold ONE
  // scheduler event (the ring head's arrival), not one per packet.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, from_millis(100), std::make_unique<DropTailQueue>(64));
  const int n = 8;
  for (int i = 0; i < n; ++i) link.send(make_packet(500));
  // At 8.5 ms every packet has been serialized (the last finishes at 8 ms)
  // and none has arrived (first arrival at 101 ms): the pipeline is at its
  // deepest. The probe itself is already executing, so the only pending
  // event left is the link's.
  bool probed = false;
  sim.at(from_millis(8.5), [&] {
    probed = true;
    EXPECT_EQ(link.packets_in_flight(), static_cast<std::size_t>(n));
    EXPECT_EQ(sim.scheduler().pending(), 1u);
  });
  sim.run();
  EXPECT_TRUE(probed);
  EXPECT_EQ(dst.arrivals.size(), static_cast<std::size_t>(n));
}

TEST(LinkPipelineTest, AtMostOneEventPerPacketPlusPipelineFill) {
  // The coalesced model costs at most one event per packet in steady state;
  // the only extra events are the pipeline-fill transient (one pull per
  // serialization slot before the first arrival coalesces with it).
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, from_millis(5), std::make_unique<DropTailQueue>(64));
  const int n = 50;
  for (int i = 0; i < n; ++i) link.send(make_packet(500));
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), static_cast<std::size_t>(n));
  EXPECT_LE(link.pipeline_events(), static_cast<std::uint64_t>(n) + 6);
}

// ------------------------------------------------------ utilization

TEST(LinkUtilizationTest, ProRatesTheSerializationInProgress) {
  // Regression: utilization() used to charge the full serialization time the
  // moment a packet hit the wire, reporting 200% mid-packet. 1000 bytes at
  // 4 mb/s = 2 ms of wire time starting at t = 0.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(1000));
  double mid = -1.0, after = -1.0;
  sim.at(from_millis(1), [&] { mid = link.utilization(); });    // half-way
  sim.at(from_millis(4), [&] { after = link.utilization(); });  // 2 ms idle
  sim.run();
  EXPECT_DOUBLE_EQ(mid, 1.0);  // busy for all of the elapsed 1 ms, not 200%
  EXPECT_DOUBLE_EQ(after, 0.5);
}

TEST(LinkUtilizationTest, AccumulatesAcrossFinishedPackets) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(1000));  // wire busy 0-2 ms
  link.send(make_packet(1000));  // wire busy 2-4 ms
  double mid = -1.0, end = -1.0;
  sim.at(from_millis(3), [&] { mid = link.utilization(); });
  sim.at(from_millis(8), [&] { end = link.utilization(); });
  sim.run();
  EXPECT_DOUBLE_EQ(mid, 1.0);  // 2 ms finished + 1 ms of the second packet
  EXPECT_DOUBLE_EQ(end, 0.5);  // 4 ms of wire time over 8 ms elapsed
}

// ------------------------------------------------------- fault modes

TEST(LinkFaultTest, DownMidFlightLosesOnlyTheWirePacket) {
  // Three packets, 1 ms serialization each, 10 ms propagation. The link goes
  // down at 1.5 ms: packet 0 is already propagating (arrives on schedule at
  // 11 ms), packet 1 is on the wire (carrier loss), packet 2 waits in the
  // queue. The link comes back at 5 ms: packet 2 serializes 5-6 ms and
  // arrives at 16 ms, order preserved.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, from_millis(10), std::make_unique<DropTailQueue>(16));
  // A counting corruption process doubles as a probe that carrier-lost
  // packets never reach the corruption stage.
  auto seen = std::make_shared<std::vector<SimTime>>();
  link.add_corruption([seen](SimTime now) {
    seen->push_back(now);
    return false;
  });
  for (int i = 0; i < 3; ++i) link.send(make_packet(500, static_cast<std::uint64_t>(i)));
  sim.at(from_millis(1.5), [&] { link.set_up(false); });
  sim.at(from_millis(5), [&] { link.set_up(true); });
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 2u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(11));
  EXPECT_EQ(dst.arrivals[0].second.seq, 0u);
  EXPECT_EQ(dst.arrivals[1].first, from_millis(16));
  EXPECT_EQ(dst.arrivals[1].second.seq, 2u);
  EXPECT_EQ(link.packets_corrupted(), 1u);
  // The corruption process saw the delivered packets (at their recorded
  // serialization-end times) and not the carrier-lost one.
  ASSERT_EQ(seen->size(), 2u);
  EXPECT_EQ((*seen)[0], from_millis(1));
  EXPECT_EQ((*seen)[1], from_millis(6));
}

TEST(LinkFaultTest, QueueKeepsAcceptingWhileDown) {
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.set_up(false);
  EXPECT_TRUE(link.send(make_packet(500, 7)));
  EXPECT_EQ(link.queue().packet_count(), 1u);
  sim.at(from_millis(3), [&] { link.set_up(true); });
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 1u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(4));
  EXPECT_EQ(dst.arrivals[0].second.seq, 7u);
}

TEST(LinkFaultTest, BrownoutAppliesAtNextSerializationStart) {
  // The packet on the wire finishes at the rate it started with; the next
  // one serializes at the degraded rate.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  link.send(make_packet(500));  // 1 ms at 4 mb/s
  link.send(make_packet(500));  // 2 ms at 2 mb/s
  sim.at(from_micros(500), [&] { link.set_bandwidth_bps(2e6); });
  sim.run();
  ASSERT_EQ(dst.arrivals.size(), 2u);
  EXPECT_EQ(dst.arrivals[0].first, from_millis(1));
  EXPECT_EQ(dst.arrivals[1].first, from_millis(3));
}

TEST(LinkFaultTest, ComposedCorruptionProcessesAllSeeEveryPacket) {
  // Two stacked processes: the first loses exactly the first packet, the
  // second only counts. Both must be consulted for every serialized packet
  // (no short-circuit) so stateful chains evolve deterministically, and each
  // sees the packet's serialization-end time.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(16));
  auto first_seen = std::make_shared<std::vector<SimTime>>();
  auto second_seen = std::make_shared<std::vector<SimTime>>();
  link.add_corruption([first_seen](SimTime now) {
    first_seen->push_back(now);
    return first_seen->size() == 1;  // lose only the first packet
  });
  link.add_corruption([second_seen](SimTime now) {
    second_seen->push_back(now);
    return false;
  });
  for (int i = 0; i < 3; ++i) link.send(make_packet(500, static_cast<std::uint64_t>(i)));
  sim.run();
  const std::vector<SimTime> expected = {from_millis(1), from_millis(2),
                                         from_millis(3)};
  EXPECT_EQ(*first_seen, expected);
  EXPECT_EQ(*second_seen, expected);
  EXPECT_EQ(link.packets_corrupted(), 1u);
  ASSERT_EQ(dst.arrivals.size(), 2u);
  EXPECT_EQ(dst.arrivals[0].second.seq, 1u);
  EXPECT_EQ(dst.arrivals[1].second.seq, 2u);
}

TEST(LinkFaultTest, GilbertElliottChainComposesWithBernoulli) {
  // A stateful Gilbert-Elliott chain stacked under a Bernoulli process must
  // still be consulted once per serialized packet: total consultations equal
  // packets serialized, and corruption stays within sane bounds.
  Simulation sim;
  RecordingNode dst(0, sim);
  Link link(sim, dst, 4e6, 0, std::make_unique<DropTailQueue>(600));
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.20;
  ge.loss_bad = 1.0;
  auto calls = std::make_shared<std::uint64_t>(0);
  GilbertElliottLoss chain(ge, sim.make_rng(0x6E11));
  link.add_corruption([calls, chain](SimTime now) mutable {
    ++*calls;
    return chain(now);
  });
  link.add_corruption(BernoulliLoss(0.01, sim.make_rng(0xBEE)));
  const int n = 500;
  for (int i = 0; i < n; ++i) link.send(make_packet(500));
  sim.run();
  EXPECT_EQ(*calls, static_cast<std::uint64_t>(n));
  EXPECT_EQ(dst.arrivals.size() + link.packets_corrupted(),
            static_cast<std::size_t>(n));
  EXPECT_GT(link.packets_corrupted(), 0u);
  EXPECT_LT(link.packets_corrupted(), static_cast<std::uint64_t>(n) / 2);
}

// ------------------------------------------- steady-state allocation

TEST(LinkSteadyStateTest, SchedulerPoolDoesNotGrowAfterReserveRuntime) {
  // A saturated host -> router -> host chain, pre-sized with
  // Topology::reserve_runtime: after warm-up, sustained traffic must not
  // grow the scheduler's heap or slot pool (Scheduler::Stats growth probes).
  Simulation sim;
  Topology topo(sim);
  Host& src = topo.add_host("src");
  Router& r = topo.add_router("r");
  Host& dst = topo.add_host("dst");
  const double bps = 10e6;
  const QueueFactory q = [](double) {
    return std::make_unique<DropTailQueue>(256);
  };
  topo.connect(src, r, bps, from_millis(2), q);
  topo.connect(r, dst, bps, from_millis(2), q);
  topo.compute_routes();
  topo.reserve_runtime(1);

  // Pace at exactly the line rate so both links stay busy without queueing.
  const SimTime spacing = transmission_time(1000, bps);
  PeriodicTimer pacer(sim.scheduler(), spacing, [&] {
    Packet p = make_packet(1000);
    p.flow = 7;
    p.src = src.id();
    p.dst = dst.id();
    src.send(std::move(p));
  });
  pacer.start();

  sim.run_until(from_millis(200));  // warm-up: fill both pipelines
  const Scheduler::Stats warm = sim.scheduler().stats();
  sim.run_until(from_millis(1200));
  const Scheduler::Stats done = sim.scheduler().stats();
  pacer.stop();

  EXPECT_GT(done.executed, warm.executed + 1000);  // traffic actually flowed
  EXPECT_EQ(done.heap_capacity, warm.heap_capacity);
  EXPECT_EQ(done.slot_capacity, warm.slot_capacity);
  EXPECT_EQ(done.slots, warm.slots);
}

}  // namespace
}  // namespace pels
