// Tests for src/sim: scheduler ordering/cancellation semantics, run_until
// boundaries, periodic timers, and the Simulation context.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/scheduler.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "util/rng.h"

namespace pels {
namespace {

TEST(SchedulerTest, StartsEmptyAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, NowAdvancesToEventTime) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(123, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 123);
}

TEST(SchedulerTest, ScheduleInIsRelative) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, CancelReturnsFalseForExecutedOrUnknown) {
  Scheduler s;
  const EventId id = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));      // already executed
  EXPECT_FALSE(s.cancel(0));       // never valid
  EXPECT_FALSE(s.cancel(999999));  // never issued
}

TEST(SchedulerTest, DoubleCancelIsIdempotent) {
  Scheduler s;
  const EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, CancelDoesNotDisturbOtherEvents) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(1); });
  const EventId id = s.schedule_at(20, [&] { order.push_back(2); });
  s.schedule_at(30, [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SchedulerTest, PendingCountTracksLiveEvents) {
  Scheduler s;
  const EventId a = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.step();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  s.run_until(30);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(100);
  EXPECT_EQ(fired.back(), 40);
  // With the queue drained, now() still advances to the requested boundary.
  EXPECT_EQ(s.now(), 100);
}

TEST(SchedulerTest, RunUntilWithOnlyCancelledEventsAdvancesTime) {
  Scheduler s;
  const EventId id = s.schedule_at(10, [] {});
  s.cancel(id);
  s.run_until(50);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(SchedulerTest, EventsScheduledDuringExecutionRun) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(10, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 40);
  EXPECT_EQ(s.executed(), 5u);
}

TEST(SchedulerTest, ManyEventsStressOrdering) {
  Scheduler s;
  Rng rng(11);
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    s.schedule_at(rng.uniform_int(0, 1000), [&] {
      if (s.now() < last) monotone = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed(), 10000u);
}

TEST(SchedulerTest, StaleIdCannotCancelEventReusingSlot) {
  // After an event is cancelled or executed, its slot is recycled for the
  // next schedule_at. The old EventId must not cancel the new occupant.
  Scheduler s;
  const EventId a = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(a));
  bool ran = false;
  const EventId b = s.schedule_at(20, [&] { ran = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.cancel(a));  // stale id, even though the slot was reused
  s.run();
  EXPECT_TRUE(ran);

  // Same for an *executed* event's id.
  EXPECT_FALSE(s.cancel(b));
  bool ran2 = false;
  const EventId c = s.schedule_at(30, [&] { ran2 = true; });
  EXPECT_FALSE(s.cancel(b));
  s.run();
  EXPECT_TRUE(ran2);
  EXPECT_TRUE(s.cancel(c) == false);  // c already executed
}

TEST(SchedulerTest, CancelSameTimeEventFromCallback) {
  // An event may cancel a later event scheduled at the very same time; the
  // victim must not fire even though it is already near the heap top.
  Scheduler s;
  std::vector<int> order;
  EventId victim = 0;
  s.schedule_at(10, [&] {
    order.push_back(1);
    EXPECT_TRUE(s.cancel(victim));
  });
  victim = s.schedule_at(10, [&] { order.push_back(2); });
  s.schedule_at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SchedulerTest, FifoTiesSurviveInterleavedCancels) {
  // Cancel every other event at one time; survivors keep insertion order.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(s.schedule_at(5, [&order, i] { order.push_back(i); }));
  for (std::size_t i = 0; i < ids.size(); i += 2) EXPECT_TRUE(s.cancel(ids[i]));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(SchedulerTest, StatsCountersTrackLifecycle) {
  // Near events (t=10..30 from now=0) land in the wheel's calendar tier; a
  // far event beyond the wheel horizon lands on the heap. Cancelling a
  // wheel resident drops it from wheel_entries immediately (live count),
  // but the dead entry is only purged — and counted stale — at drain.
  Scheduler s;
  const EventId a = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  s.schedule_at(30, [] {});
  const EventId far = s.schedule_at(from_seconds(3600.0), [] {});
  s.cancel(a);
  auto st = s.stats();
  EXPECT_EQ(st.scheduled, 4u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.executed, 0u);
  EXPECT_EQ(st.pending, 3u);
  EXPECT_EQ(st.wheel_entries, 2u);  // live near events; cancelled one left
  EXPECT_EQ(st.heap_size, 1u);      // the far event overflowed to the heap
  s.cancel(far);
  s.run();
  st = s.stats();
  EXPECT_EQ(st.executed, 2u);
  EXPECT_EQ(st.stale_skipped, 2u);  // one purged at drain, one at the heap top
  EXPECT_EQ(st.pending, 0u);
  EXPECT_EQ(st.wheel_entries, 0u);
  EXPECT_EQ(st.run_entries, 0u);
  EXPECT_EQ(st.heap_size, 0u);
  EXPECT_EQ(st.bucket_loads, 1u);  // t=10..30 share one 131 us bucket
}

TEST(SchedulerTest, HeapOnlyModeBypassesWheel) {
  Scheduler s;
  s.set_wheel_enabled(false);
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  auto st = s.stats();
  EXPECT_EQ(st.heap_size, 2u);
  EXPECT_EQ(st.wheel_entries, 0u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, RunUntilExecutesEventScheduledAtBoundaryFromCallback) {
  // A callback firing exactly at t_end schedules another event at t_end;
  // run_until must execute it too (events at exactly t_end are inclusive).
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] {
    order.push_back(1);
    s.schedule_at(30, [&] { order.push_back(2); });
    s.schedule_at(31, [&] { order.push_back(3); });
  });
  s.run_until(30);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 30);
  EXPECT_EQ(s.pending(), 1u);  // the t=31 event remains
}

TEST(SchedulerTest, SlotPoolRecyclesUnderChurn) {
  // A rolling window of cancel+reschedule must not grow the slot pool
  // beyond the window size (plus slack), proving slots are recycled.
  Scheduler s;
  std::vector<EventId> window;
  for (int i = 0; i < 64; ++i) window.push_back(s.schedule_at(i + 1000, [] {}));
  for (int round = 0; round < 1000; ++round) {
    const std::size_t k = static_cast<std::size_t>(round) % window.size();
    EXPECT_TRUE(s.cancel(window[k]));
    window[k] = s.schedule_at(2000 + round, [] {});
  }
  EXPECT_LE(s.stats().slots, 2 * window.size());
  s.run();
  EXPECT_EQ(s.stats().executed, 64u);
}

// ---------------------------------------------------------- PeriodicTimer

TEST(PeriodicTimerTest, FiresAtPeriodMultiples) {
  Scheduler s;
  std::vector<SimTime> fires;
  PeriodicTimer timer(s, 100, [&] { fires.push_back(s.now()); });
  timer.start();
  s.run_until(350);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_TRUE(timer.running());
}

TEST(PeriodicTimerTest, StartAfterControlsFirstFire) {
  Scheduler s;
  std::vector<SimTime> fires;
  PeriodicTimer timer(s, 100, [&] { fires.push_back(s.now()); });
  timer.start_after(10);
  s.run_until(250);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 110, 210}));
}

TEST(PeriodicTimerTest, StopHaltsFiring) {
  Scheduler s;
  int count = 0;
  PeriodicTimer timer(s, 100, [&] { ++count; });
  timer.start();
  s.run_until(250);
  timer.stop();
  EXPECT_FALSE(timer.running());
  s.run_until(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimerTest, StopFromInsideCallback) {
  Scheduler s;
  int count = 0;
  PeriodicTimer* self = nullptr;
  PeriodicTimer timer(s, 100, [&] {
    if (++count == 3) self->stop();
  });
  self = &timer;
  timer.start();
  s.run_until(10000);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, DoubleStartIsNoOp) {
  Scheduler s;
  int count = 0;
  PeriodicTimer timer(s, 100, [&] { ++count; });
  timer.start();
  timer.start();
  s.run_until(100);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTimerTest, SetPeriodTakesEffectAtNextRescheduling) {
  // The fire at t=100 already rescheduled t=200 with the old period; the new
  // 50-unit period applies from the t=200 rescheduling onward.
  Scheduler s;
  std::vector<SimTime> fires;
  PeriodicTimer timer(s, 100, [&] { fires.push_back(s.now()); });
  timer.start();
  s.run_until(100);
  timer.set_period(50);
  s.run_until(320);
  EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 250, 300}));
}

TEST(PeriodicTimerTest, RestartAfterStop) {
  Scheduler s;
  int count = 0;
  PeriodicTimer timer(s, 100, [&] { ++count; });
  timer.start();
  s.run_until(150);
  timer.stop();
  s.run_until(400);
  timer.start();
  s.run_until(500);
  EXPECT_EQ(count, 2);  // one at 100, one at 500
}

// ------------------------------------------------------------- Simulation

TEST(SimulationTest, RngStreamsAreDeterministic) {
  Simulation sim1(99);
  Simulation sim2(99);
  Rng a = sim1.make_rng(5);
  Rng b = sim2.make_rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = sim1.make_rng(6);
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(SimulationTest, AfterAndAtSchedule) {
  Simulation sim;
  std::vector<int> order;
  sim.at(20, [&] { order.push_back(2); });
  sim.after(10, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 20);
}

}  // namespace
}  // namespace pels
