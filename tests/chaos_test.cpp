// Chaos harness tests: seeded plan generation, severity bounds, the
// delta-debugging shrinker, JSON round-trips, FaultPlan validation edge
// cases, and byte-identity of the generate→violate→shrink pipeline across
// SweepRunner thread counts {1, 2, 8}.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "util/json.h"
#include "util/rng.h"

namespace pels {
namespace {

ChaosLimits test_limits() {
  ChaosLimits limits;
  limits.horizon = from_seconds(10);
  return limits;
}

// ------------------------------------------------------------ generator

TEST(ChaosGeneratorTest, SameSeedSameStreamOfPlans) {
  ChaosPlanGenerator a(test_limits(), Rng(42, 7));
  ChaosPlanGenerator b(test_limits(), Rng(42, 7));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(fault_plan_to_json(a.next()), fault_plan_to_json(b.next())) << "plan " << i;
  }
  EXPECT_EQ(a.generated(), 32u);
  ChaosPlanGenerator c(test_limits(), Rng(43, 7));
  ChaosPlanGenerator d(test_limits(), Rng(42, 7));
  bool any_differ = false;
  for (int i = 0; i < 32; ++i) {
    if (fault_plan_to_json(c.next()) != fault_plan_to_json(d.next())) any_differ = true;
  }
  EXPECT_TRUE(any_differ);  // different seeds explore different schedules
}

TEST(ChaosGeneratorTest, EveryPlanIsValidAndWithinSeverityBounds) {
  const ChaosLimits limits = test_limits();
  ChaosPlanGenerator gen(limits, Rng(1234, 0));
  std::size_t nonempty = 0;
  std::size_t with_ge = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultPlan plan = gen.next();
    ASSERT_NO_THROW(plan.validate()) << "plan " << i;
    EXPECT_LE(plan.link_flaps.size(), static_cast<std::size_t>(limits.max_flaps));
    EXPECT_LE(plan.brownouts.size(), static_cast<std::size_t>(limits.max_brownouts));
    EXPECT_LE(plan.router_restarts.size(), static_cast<std::size_t>(limits.max_restarts));
    EXPECT_LE(plan.ack_blackouts.size(), static_cast<std::size_t>(limits.max_blackouts));
    for (const FaultPlan::LinkFlap& f : plan.link_flaps) {
      EXPECT_GE(f.down_at, limits.min_start);
      EXPECT_LE(f.up_at, limits.horizon);
      EXPECT_GE(f.up_at - f.down_at, limits.min_window);
      EXPECT_LE(f.up_at - f.down_at, limits.max_window);
    }
    for (const FaultPlan::Brownout& b : plan.brownouts) {
      EXPECT_GE(b.at, limits.min_start);
      EXPECT_LE(b.until, limits.horizon);
      EXPECT_GE(b.factor, limits.min_brownout_factor);
      EXPECT_LE(b.factor, 1.0);
    }
    for (const FaultPlan::RouterRestart& r : plan.router_restarts) {
      EXPECT_GE(r.at, limits.min_start);
      EXPECT_LT(r.at, limits.horizon);
    }
    if (plan.burst_corruption) {
      ++with_ge;
      EXPECT_LE(plan.burst_corruption->loss_bad, limits.max_ge_loss_bad);
      EXPECT_LE(plan.burst_corruption->p_good_to_bad, limits.max_ge_p_good_to_bad);
    }
    if (!plan.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 150u);  // the sampler is not degenerate
  EXPECT_GT(with_ge, 0u);     // ge_probability=0.25 over 200 draws
}

TEST(ChaosLimitsTest, ValidationRejectsNonsense) {
  ChaosLimits limits = test_limits();
  EXPECT_NO_THROW(limits.validate());
  limits.min_window = limits.max_window + 1;
  EXPECT_THROW(limits.validate(), std::invalid_argument);
  limits = test_limits();
  limits.ge_probability = 1.5;
  EXPECT_THROW(limits.validate(), std::invalid_argument);
  limits = test_limits();
  limits.max_flaps = 0;
  limits.max_brownouts = 0;
  limits.max_restarts = 0;
  limits.max_blackouts = 0;
  limits.ge_probability = 0.0;
  EXPECT_THROW(limits.validate(), std::invalid_argument);  // empty fault budget
}

// ------------------------------------------------------------ validation edges

TEST(FaultPlanValidationTest, ZeroLengthWindowsAreRejected) {
  FaultPlan plan;
  plan.link_flaps.push_back({from_millis(100), from_millis(100)});
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  FaultPlan brown;
  brown.brownouts.push_back({from_millis(100), from_millis(100), 0.5});
  EXPECT_THROW(brown.validate(), std::invalid_argument);

  FaultPlan black;
  black.ack_blackouts.push_back({from_millis(200), from_millis(150)});
  EXPECT_THROW(black.validate(), std::invalid_argument);
}

TEST(FaultPlanValidationTest, OverlappingSameKindWindowsAreRejected) {
  FaultPlan plan;
  plan.link_flaps.push_back({from_millis(100), from_millis(300)});
  plan.link_flaps.push_back({from_millis(200), from_millis(400)});
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  FaultPlan brown;
  brown.brownouts.push_back({from_millis(100), from_millis(300), 0.5});
  brown.brownouts.push_back({from_millis(250), from_millis(500), 0.75});
  EXPECT_THROW(brown.validate(), std::invalid_argument);
}

TEST(FaultPlanValidationTest, TouchingWindowsAndCrossKindOverlapAreFine) {
  FaultPlan plan;
  plan.link_flaps.push_back({from_millis(100), from_millis(300)});
  plan.link_flaps.push_back({from_millis(300), from_millis(400)});  // touching
  // A brown-out overlapping a flap is fine: different resources.
  plan.brownouts.push_back({from_millis(150), from_millis(350), 0.5});
  EXPECT_NO_THROW(plan.validate());
}

// ------------------------------------------------------------ shrinker

// Synthetic predicate: the "violation" needs a flap covering t=1s AND a
// brown-out factor <= 0.5. Everything else in the plan is noise the shrinker
// should strip.
bool synthetic_violation(const FaultPlan& plan) {
  bool flap_covers = false;
  for (const FaultPlan::LinkFlap& f : plan.link_flaps) {
    if (f.down_at <= from_seconds(1) && from_seconds(1) < f.up_at) flap_covers = true;
  }
  bool deep_brownout = false;
  for (const FaultPlan::Brownout& b : plan.brownouts) {
    if (b.factor <= 0.5) deep_brownout = true;
  }
  return flap_covers && deep_brownout;
}

FaultPlan noisy_plan() {
  FaultPlan plan;
  plan.link_flaps.push_back({from_millis(900), from_millis(1500)});  // needed
  plan.link_flaps.push_back({from_millis(3000), from_millis(3500)});  // noise
  plan.brownouts.push_back({from_millis(2000), from_millis(2500), 0.3});  // needed
  plan.brownouts.push_back({from_millis(4000), from_millis(4500), 0.9});  // noise
  plan.router_restarts.push_back({from_millis(5000)});  // noise
  plan.ack_blackouts.push_back({from_millis(6000), from_millis(6500)});  // noise
  return plan;
}

TEST(ShrinkerTest, StripsNoiseEventsAndKeepsTheViolation) {
  const FaultPlan plan = noisy_plan();
  ASSERT_TRUE(synthetic_violation(plan));
  ASSERT_EQ(fault_plan_event_count(plan), 6u);

  ShrinkStats stats;
  const FaultPlan shrunk = shrink_fault_plan(plan, synthetic_violation, &stats);

  EXPECT_TRUE(synthetic_violation(shrunk));  // guaranteed by contract
  EXPECT_NO_THROW(shrunk.validate());
  EXPECT_EQ(fault_plan_event_count(shrunk), 2u);  // exactly the needed pair
  ASSERT_EQ(shrunk.link_flaps.size(), 1u);
  EXPECT_LE(shrunk.link_flaps[0].down_at, from_seconds(1));
  EXPECT_GT(shrunk.link_flaps[0].up_at, from_seconds(1));
  ASSERT_EQ(shrunk.brownouts.size(), 1u);
  EXPECT_LE(shrunk.brownouts[0].factor, 0.5);
  EXPECT_TRUE(shrunk.router_restarts.empty());
  EXPECT_TRUE(shrunk.ack_blackouts.empty());
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GE(stats.rounds, 2u);  // at least one productive round + the fixpoint
  EXPECT_GE(stats.probes, stats.accepted);
}

TEST(ShrinkerTest, ShrinkIsDeterministic) {
  ShrinkStats s1, s2;
  const FaultPlan a = shrink_fault_plan(noisy_plan(), synthetic_violation, &s1);
  const FaultPlan b = shrink_fault_plan(noisy_plan(), synthetic_violation, &s2);
  EXPECT_EQ(fault_plan_to_json(a), fault_plan_to_json(b));
  EXPECT_EQ(s1.probes, s2.probes);
  EXPECT_EQ(s1.accepted, s2.accepted);
  EXPECT_EQ(s1.rounds, s2.rounds);
}

TEST(ShrinkerTest, ProbeBudgetIsHonoured) {
  ShrinkStats stats;
  const FaultPlan shrunk =
      shrink_fault_plan(noisy_plan(), synthetic_violation, &stats, /*max_probes=*/3);
  EXPECT_LE(stats.probes, 3u);
  EXPECT_TRUE(synthetic_violation(shrunk));  // still violating even when cut short
}

// ------------------------------------------------------------ JSON round-trip

TEST(ChaosJsonTest, FaultPlanRoundTripsExactly) {
  ChaosPlanGenerator gen(test_limits(), Rng(77, 3));
  for (int i = 0; i < 50; ++i) {
    const FaultPlan plan = gen.next();
    const std::string text = fault_plan_to_json(plan);
    const FaultPlan back = fault_plan_from_json(text);
    EXPECT_EQ(fault_plan_to_json(back), text) << "plan " << i;
  }
}

TEST(ChaosJsonTest, ReproArtifactIsParsableAndDeterministic) {
  InvariantViolation v;
  v.invariant = "selftest.link_up";
  v.at = from_millis(700);
  v.tick = 69;
  v.detail = "down";
  v.context = "flap[past=0,active=1,ahead=0]";
  FaultPlan plan;
  plan.link_flaps.push_back({from_millis(500), from_millis(900)});
  ShrinkStats stats;
  stats.probes = 13;
  stats.accepted = 8;
  stats.rounds = 4;

  const auto render = [&] {
    std::ostringstream os;
    write_chaos_repro_json(os, /*seed=*/0xC0FFEE, v, plan, stats, /*original_events=*/6);
    return os.str();
  };
  const std::string text = render();
  EXPECT_EQ(text, render());

  const JsonValue doc = JsonValue::parse(text);
  EXPECT_EQ(doc.at("schema_version").as_int64(), 1);
  EXPECT_EQ(doc.at("kind").as_string(), "chaos-repro");
  EXPECT_EQ(doc.at("seed").as_int64(), 0xC0FFEE);
  EXPECT_EQ(doc.at("invariant").as_string(), "selftest.link_up");
  EXPECT_EQ(doc.at("context").as_string(), "flap[past=0,active=1,ahead=0]");
  EXPECT_EQ(doc.at("shrink").at("original_events").as_int64(), 6);
  EXPECT_EQ(doc.at("shrink").at("shrunk_events").as_int64(), 1);
  const FaultPlan replay = fault_plan_from_json(doc.at("fault_plan"));
  EXPECT_EQ(fault_plan_to_json(replay), fault_plan_to_json(plan));
}

// ------------------------------------------------------------ position string

TEST(ChaosContextTest, DescribeFaultPositionCountsWindows) {
  FaultPlan plan;
  plan.link_flaps.push_back({from_millis(100), from_millis(200)});
  plan.link_flaps.push_back({from_millis(500), from_millis(800)});
  plan.ack_blackouts.push_back({from_millis(900), from_millis(950)});
  const std::string s = describe_fault_position(plan, from_millis(600));
  EXPECT_NE(s.find("flap[past=1,active=1,ahead=0]"), std::string::npos) << s;
  EXPECT_NE(s.find("blackout[past=0,active=0,ahead=1]"), std::string::npos) << s;
  EXPECT_NE(s.find("ge=off"), std::string::npos) << s;
}

// ------------------------------------------------------------ thread identity

// The full pipeline — generate schedule i, evaluate the synthetic predicate,
// shrink when it fires — must be byte-identical no matter how many workers
// execute it. Each task regenerates its own plan from (seed, index), exactly
// as the campaign driver replays schedules.
// Fires often enough on sampled plans that a small campaign exercises both
// branches: any flap combined with any reasonably deep brown-out.
bool pipeline_violation(const FaultPlan& plan) {
  bool deep_brownout = false;
  for (const FaultPlan::Brownout& b : plan.brownouts) {
    if (b.factor <= 0.75) deep_brownout = true;
  }
  return !plan.link_flaps.empty() && deep_brownout;
}

std::string pipeline_result(std::uint64_t seed, int index) {
  ChaosPlanGenerator gen(test_limits(), Rng(seed, 0xC0));
  FaultPlan plan;
  for (int k = 0; k <= index; ++k) plan = gen.next();
  if (!pipeline_violation(plan)) return "clean:" + fault_plan_to_json(plan);
  ShrinkStats stats;
  const FaultPlan shrunk = shrink_fault_plan(plan, pipeline_violation, &stats);
  return "shrunk[" + std::to_string(stats.probes) + "," + std::to_string(stats.accepted) +
         "]:" + fault_plan_to_json(shrunk);
}

TEST(ChaosThreadIdentityTest, PipelineIsByteIdenticalAcrossThreadCounts) {
  constexpr std::uint64_t kSeed = 2026;
  constexpr int kSchedules = 24;
  std::vector<std::string> reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SweepRunner runner(threads);
    std::vector<std::function<std::string()>> tasks;
    for (int i = 0; i < kSchedules; ++i) {
      tasks.push_back([i] { return pipeline_result(kSeed, i); });
    }
    std::vector<TaskOutcome<std::string>> out = runner.run<std::string>(std::move(tasks));
    ASSERT_EQ(out.size(), static_cast<std::size_t>(kSchedules));
    std::vector<std::string> results;
    for (const TaskOutcome<std::string>& o : out) {
      ASSERT_TRUE(o.ok()) << o.error;
      results.push_back(*o.value);
    }
    if (reference.empty()) {
      reference = results;
      // Sanity: the seed exercises both branches of the pipeline.
      std::size_t shrunk = 0;
      for (const std::string& r : results) shrunk += r.rfind("shrunk", 0) == 0;
      EXPECT_GT(shrunk, 0u);
      EXPECT_LT(shrunk, results.size());
    } else {
      EXPECT_EQ(results, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace pels
