// Tests for the tracing subsystem (PacketTracer, TracingQueue), the
// burst-length analyzer, and the playout-deadline evaluator.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/burstiness.h"
#include "net/trace.h"
#include "queue/best_effort.h"
#include "queue/drop_tail.h"
#include "queue/tracing_queue.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "video/playout.h"

namespace pels {
namespace {

Packet make_packet(std::uint64_t uid, FlowId flow, Color color, std::int32_t size = 500) {
  Packet p;
  p.uid = uid;
  p.flow = flow;
  p.color = color;
  p.size_bytes = size;
  return p;
}

// ----------------------------------------------------------- PacketTracer

// Table test pinning the full TraceEvent -> code mapping (the contract the
// trace.h comment documents). A new enumerator without a code would fall
// through to '?' and fail here.
TEST(PacketTracerTest, EventCodeCoversEveryTraceEvent) {
  struct Case {
    TraceEvent event;
    char code;
  };
  constexpr Case kCases[] = {
      {TraceEvent::kEnqueue, '+'},
      {TraceEvent::kDequeue, '-'},
      {TraceEvent::kDrop, 'd'},
      {TraceEvent::kDeliver, 'r'},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(trace_event_code(c.event), c.code)
        << "event " << static_cast<int>(c.event);
  }
  // All four codes are distinct — a text trace is unambiguous.
  for (const Case& a : kCases) {
    for (const Case& b : kCases) {
      if (a.event != b.event) EXPECT_NE(a.code, b.code);
    }
  }
}

TEST(PacketTracerTest, RecordsEventsWithMetadata) {
  PacketTracer tracer;
  tracer.record(kSecond, TraceEvent::kEnqueue, "q0", make_packet(7, 3, Color::kYellow));
  ASSERT_EQ(tracer.records().size(), 1u);
  const TraceRecord& rec = tracer.records()[0];
  EXPECT_EQ(rec.t, kSecond);
  EXPECT_EQ(rec.event, TraceEvent::kEnqueue);
  EXPECT_EQ(rec.location, "q0");
  EXPECT_EQ(rec.uid, 7u);
  EXPECT_EQ(rec.flow, 3);
  EXPECT_EQ(rec.color, Color::kYellow);
}

TEST(PacketTracerTest, FlowFilterDropsOtherFlows) {
  PacketTracer tracer;
  tracer.set_flow_filter(5);
  tracer.record(0, TraceEvent::kEnqueue, "q", make_packet(1, 5, Color::kRed));
  tracer.record(0, TraceEvent::kEnqueue, "q", make_packet(2, 6, Color::kRed));
  EXPECT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].flow, 5);
}

TEST(PacketTracerTest, ColorFilterDropsOtherColors) {
  PacketTracer tracer;
  tracer.set_color_filter(Color::kRed);
  tracer.record(0, TraceEvent::kDrop, "q", make_packet(1, 1, Color::kRed));
  tracer.record(0, TraceEvent::kDrop, "q", make_packet(2, 1, Color::kYellow));
  EXPECT_EQ(tracer.records().size(), 1u);
}

TEST(PacketTracerTest, EventToggleSuppressesKind) {
  PacketTracer tracer;
  tracer.set_event_enabled(TraceEvent::kEnqueue, false);
  tracer.record(0, TraceEvent::kEnqueue, "q", make_packet(1, 1, Color::kRed));
  tracer.record(0, TraceEvent::kDrop, "q", make_packet(2, 1, Color::kRed));
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].event, TraceEvent::kDrop);
}

TEST(PacketTracerTest, MaxRecordsCapsStorageNotCounts) {
  PacketTracer tracer;
  tracer.set_max_records(2);
  for (int i = 0; i < 5; ++i)
    tracer.record(0, TraceEvent::kEnqueue, "q", make_packet(i, 1, Color::kGreen));
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.total_seen(), 5u);
  EXPECT_EQ(tracer.dropped_records(), 3u);
  EXPECT_EQ(tracer.count(TraceEvent::kEnqueue, Color::kGreen), 5u);
}

TEST(PacketTracerTest, TextFormatIsNs2Like) {
  TraceRecord rec;
  rec.t = from_millis(1234);
  rec.event = TraceEvent::kDrop;
  rec.location = "bottleneck";
  rec.flow = 3;
  rec.seq = 42;
  rec.color = Color::kRed;
  rec.size_bytes = 500;
  rec.frame_id = 17;
  const std::string line = format_trace_record(rec);
  EXPECT_NE(line.find("d 1.234"), std::string::npos);
  EXPECT_NE(line.find("bottleneck"), std::string::npos);
  EXPECT_NE(line.find("flow 3"), std::string::npos);
  EXPECT_NE(line.find("red"), std::string::npos);
  EXPECT_NE(line.find("frame 17"), std::string::npos);
}

TEST(PacketTracerTest, WriteTextEmitsOneLinePerRecord) {
  PacketTracer tracer;
  for (int i = 0; i < 3; ++i)
    tracer.record(i, TraceEvent::kEnqueue, "q", make_packet(i, 1, Color::kGreen));
  std::ostringstream os;
  tracer.write_text(os);
  int lines = 0;
  for (char ch : os.str()) lines += ch == '\n';
  EXPECT_EQ(lines, 3);
}

TEST(PacketTracerTest, ClearResetsEverything) {
  PacketTracer tracer;
  tracer.record(0, TraceEvent::kEnqueue, "q", make_packet(1, 1, Color::kGreen));
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.total_seen(), 0u);
  EXPECT_EQ(tracer.count(TraceEvent::kEnqueue, Color::kGreen), 0u);
}

// ----------------------------------------------------------- TracingQueue

TEST(TracingQueueTest, RecordsEnqueueDequeueDrop) {
  Simulation sim;
  PacketTracer tracer;
  TracingQueue q(std::make_unique<DropTailQueue>(1), "bq", sim.scheduler(), tracer);
  EXPECT_TRUE(q.enqueue(make_packet(1, 1, Color::kGreen)));
  EXPECT_FALSE(q.enqueue(make_packet(2, 1, Color::kGreen)));  // tail drop
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_EQ(tracer.count(TraceEvent::kEnqueue, Color::kGreen), 2u);
  EXPECT_EQ(tracer.count(TraceEvent::kDrop, Color::kGreen), 1u);
  EXPECT_EQ(tracer.count(TraceEvent::kDequeue, Color::kGreen), 1u);
}

TEST(TracingQueueTest, TransparentToInnerBehaviour) {
  Simulation sim;
  PacketTracer tracer;
  TracingQueue q(std::make_unique<DropTailQueue>(8), "bq", sim.scheduler(), tracer);
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(make_packet(i, 1, Color::kGreen));
  EXPECT_EQ(q.packet_count(), 4u);
  EXPECT_EQ(q.byte_count(), 2000);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(q.dequeue()->uid, i);
}

TEST(TracingQueueTest, DropsCountInOwnCounters) {
  Simulation sim;
  PacketTracer tracer;
  TracingQueue q(std::make_unique<DropTailQueue>(1), "bq", sim.scheduler(), tracer);
  q.enqueue(make_packet(1, 1, Color::kRed));
  q.enqueue(make_packet(2, 1, Color::kRed));
  EXPECT_EQ(q.counters().drops[static_cast<std::size_t>(Color::kRed)], 1u);
}

// ---------------------------------------------------------- BurstAnalyzer

TEST(BurstAnalyzerTest, CountsBursts) {
  BurstAnalyzer b;
  for (bool lost : {false, true, true, false, true, false, false, true}) b.add(lost);
  b.finish();
  ASSERT_EQ(b.burst_count(), 3u);
  EXPECT_EQ(b.burst_lengths()[0], 2);
  EXPECT_EQ(b.burst_lengths()[1], 1);
  EXPECT_EQ(b.burst_lengths()[2], 1);
  EXPECT_EQ(b.packets_seen(), 8);
  EXPECT_EQ(b.packets_lost(), 4);
  EXPECT_DOUBLE_EQ(b.loss_rate(), 0.5);
  EXPECT_DOUBLE_EQ(b.mean_burst_length(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(b.max_burst_length(), 2.0);
}

TEST(BurstAnalyzerTest, FinishClosesTrailingBurst) {
  BurstAnalyzer b;
  b.add(true);
  b.add(true);
  EXPECT_EQ(b.burst_count(), 0u);  // still open
  b.finish();
  ASSERT_EQ(b.burst_count(), 1u);
  EXPECT_EQ(b.burst_lengths()[0], 2);
}

TEST(BurstAnalyzerTest, BernoulliLossHasGeometricBursts) {
  // i.i.d. loss at p: mean burst = 1/(1-p) and CCDF ratio ~ p (the paper's
  // "exponential tail" premise).
  Rng rng(3);
  const double p = 0.3;
  BurstAnalyzer b;
  for (int i = 0; i < 2'000'000; ++i) b.add(rng.bernoulli(p));
  b.finish();
  EXPECT_NEAR(b.mean_burst_length(), BurstAnalyzer::geometric_mean_burst(p), 0.02);
  EXPECT_NEAR(b.ccdf(1), p, 0.01);
  EXPECT_NEAR(b.ccdf(2) / b.ccdf(1), p, 0.02);
}

TEST(BurstAnalyzerTest, EmptyIsZero) {
  BurstAnalyzer b;
  b.finish();
  EXPECT_DOUBLE_EQ(b.mean_burst_length(), 0.0);
  EXPECT_DOUBLE_EQ(b.ccdf(0), 0.0);
  EXPECT_DOUBLE_EQ(b.loss_rate(), 0.0);
}

TEST(BurstAnalyzerTest, TraceReconstructionMatchesQueueBehaviour) {
  // Push yellow packets through a traced best-effort queue with a primed
  // drop probability; the reconstructed outcome stream must show geometric
  // bursts at the queue's drop rate.
  Simulation sim;
  PacketTracer tracer;
  BestEffortQueueConfig cfg;
  cfg.video_limit = 1u << 20;
  auto inner = std::make_unique<BestEffortQueue>(sim.scheduler(), sim.make_rng(9), cfg);
  BestEffortQueue* be = inner.get();
  TracingQueue q(std::move(inner), "bq", sim.scheduler(), tracer);
  // Prime the meter: one interval at ~2.5x the video capacity.
  for (std::uint64_t i = 0; i < 40; ++i) q.enqueue(make_packet(i, 1, Color::kYellow));
  sim.run_until(from_millis(31));
  const double p_drop = std::max(be->current_fgs_loss(), 0.0);
  ASSERT_GT(p_drop, 0.3);
  tracer.clear();
  for (std::uint64_t i = 100; i < 40'100; ++i) {
    q.enqueue(make_packet(i, 1, Color::kYellow));
    q.dequeue();
  }
  const auto outcomes = loss_outcomes_from_trace(tracer, 1, Color::kYellow);
  ASSERT_EQ(outcomes.size(), 40'000u);
  BurstAnalyzer b;
  for (bool lost : outcomes) b.add(lost);
  b.finish();
  EXPECT_NEAR(b.loss_rate(), p_drop, 0.02);
  EXPECT_NEAR(b.mean_burst_length(), BurstAnalyzer::geometric_mean_burst(b.loss_rate()),
              0.1);
}

// -------------------------------------------------------- evaluate_playout

std::vector<FrameArrival> regular_arrivals(std::int64_t n, SimTime period, SimTime jitter = 0) {
  // Jitter hits frames 1, 4, 7, ... — never frame 0, which anchors the
  // playback clock.
  std::vector<FrameArrival> arrivals;
  for (std::int64_t f = 0; f < n; ++f)
    arrivals.push_back({f, kSecond + f * period + (f % 3 == 1 ? jitter : 0), true});
  return arrivals;
}

TEST(PlayoutTest, PunctualStreamAllOnTime) {
  const auto arrivals = regular_arrivals(100, from_millis(100));
  const PlayoutReport report = evaluate_playout(arrivals, from_millis(100), 0);
  EXPECT_EQ(report.frames_total, 100);
  EXPECT_EQ(report.frames_on_time, 100);
  EXPECT_EQ(report.frames_late, 0);
  EXPECT_EQ(report.required_startup, 0);
}

TEST(PlayoutTest, JitterRequiresStartupDelay) {
  const SimTime jitter = from_millis(40);
  const auto arrivals = regular_arrivals(100, from_millis(100), jitter);
  const PlayoutReport no_buffer = evaluate_playout(arrivals, from_millis(100), 0);
  EXPECT_GT(no_buffer.frames_late, 0);
  EXPECT_EQ(no_buffer.max_lateness, jitter);
  EXPECT_EQ(no_buffer.required_startup, jitter);
  const PlayoutReport buffered = evaluate_playout(arrivals, from_millis(100), jitter);
  EXPECT_EQ(buffered.frames_late, 0);
}

TEST(PlayoutTest, UndecodableFramesAreAlwaysLate) {
  auto arrivals = regular_arrivals(10, from_millis(100));
  arrivals[4].decodable = false;
  const PlayoutReport report = evaluate_playout(arrivals, from_millis(100), kSecond);
  EXPECT_EQ(report.frames_late, 1);
  EXPECT_EQ(report.frames_on_time, 9);
}

TEST(PlayoutTest, PlaybackClockStartsAtFirstDecodable) {
  // First two frames undecodable: frame 2 anchors the schedule.
  std::vector<FrameArrival> arrivals = {{0, kSecond, false},
                                        {1, 2 * kSecond, false},
                                        {2, 3 * kSecond, true},
                                        {3, 3 * kSecond + from_millis(90), true}};
  const PlayoutReport report = evaluate_playout(arrivals, from_millis(100), 0);
  EXPECT_EQ(report.frames_late, 2);   // the undecodable ones
  EXPECT_EQ(report.frames_on_time, 2);
}

TEST(PlayoutTest, EmptyAndAllUndecodable) {
  EXPECT_EQ(evaluate_playout({}, from_millis(100), 0).frames_total, 0);
  std::vector<FrameArrival> bad = {{0, kSecond, false}, {1, 2 * kSecond, false}};
  const PlayoutReport report = evaluate_playout(bad, from_millis(100), 0);
  EXPECT_EQ(report.frames_total, 2);
  EXPECT_EQ(report.frames_late, 2);
}

}  // namespace
}  // namespace pels
