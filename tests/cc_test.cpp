// Tests for src/cc: MKC, continuous Kelly, AIMD, TFRC-lite, and the TCP-like
// cross-traffic agents.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cc/aimd.h"
#include "cc/kelly_continuous.h"
#include "cc/mkc.h"
#include "cc/tcp_like.h"
#include "cc/tfrc_lite.h"
#include "net/topology.h"
#include "queue/drop_tail.h"
#include "sim/simulation.h"
#include "util/stats.h"

namespace pels {
namespace {

// -------------------------------------------------------------------- MKC

TEST(MkcTest, PositiveLossDecreasesRate) {
  MkcConfig cfg;
  cfg.initial_rate_bps = 1e6;
  cfg.alpha_bps = 20e3;
  cfg.beta = 0.5;
  MkcController mkc(cfg);
  mkc.on_router_feedback(0.2, 0);
  // r' = r + alpha - beta * r * p = 1e6 + 2e4 - 0.5 * 1e6 * 0.2 = 920 kb/s.
  EXPECT_NEAR(mkc.rate_bps(), 920e3, 1.0);
}

TEST(MkcTest, NegativeLossRampsExponentially) {
  // A heavily underutilized link (deeply negative p) grows the rate by the
  // capped factor per epoch: 128 kb/s reaches 2 mb/s within four updates.
  MkcConfig cfg;
  cfg.initial_rate_bps = 128e3;
  MkcController mkc(cfg);
  for (int i = 0; i < 4; ++i) mkc.on_router_feedback(-10.0, 0);
  EXPECT_NEAR(mkc.rate_bps(), 128e3 * 16.0, 1.0);
}

TEST(MkcTest, GrowthCapBoundsSingleUpdate) {
  MkcConfig cfg;
  cfg.initial_rate_bps = 128e3;
  cfg.max_growth_factor = 2.0;
  MkcController mkc(cfg);
  mkc.on_router_feedback(-100.0, 0);
  EXPECT_DOUBLE_EQ(mkc.rate_bps(), 256e3);
}

TEST(MkcTest, FixedPointIsStationary) {
  // At p* with r* = C/N + a/b, the update must return exactly r*.
  MkcConfig cfg;
  const double capacity = 2e6;
  const int flows = 4;
  const double r_star = MkcController::stationary_rate(capacity, flows, cfg);
  const double total = r_star * flows;
  const double p_star = (total - capacity) / total;
  cfg.initial_rate_bps = r_star;
  MkcController mkc(cfg);
  mkc.on_router_feedback(p_star, 0);
  EXPECT_NEAR(mkc.rate_bps(), r_star, r_star * 1e-9);
}

TEST(MkcTest, ConvergesToStationaryRateSingleFlow) {
  // Closed loop against the eq. (9) feedback law, one flow.
  MkcConfig cfg;
  cfg.initial_rate_bps = 128e3;
  MkcController mkc(cfg);
  const double capacity = 2e6;
  for (int k = 0; k < 200; ++k) {
    const double total = mkc.rate_bps();
    mkc.on_router_feedback((total - capacity) / total, 0);
  }
  EXPECT_NEAR(mkc.rate_bps(), MkcController::stationary_rate(capacity, 1, cfg),
              1e3);
}

TEST(MkcTest, RateClampedToBounds) {
  MkcConfig cfg;
  cfg.initial_rate_bps = 128e3;
  cfg.min_rate_bps = 64e3;
  cfg.max_rate_bps = 1e6;
  MkcController mkc(cfg);
  mkc.on_router_feedback(0.999, 0);  // huge loss
  for (int i = 0; i < 50; ++i) mkc.on_router_feedback(0.999, 0);
  EXPECT_GE(mkc.rate_bps(), cfg.min_rate_bps);
  for (int i = 0; i < 200; ++i) mkc.on_router_feedback(-20.0, 0);
  EXPECT_LE(mkc.rate_bps(), cfg.max_rate_bps);
}

TEST(MkcTest, UpdateCounterAdvances) {
  MkcController mkc(MkcConfig{});
  EXPECT_EQ(mkc.updates(), 0u);
  mkc.on_router_feedback(0.0, 0);
  mkc.on_router_feedback(0.1, 0);
  EXPECT_EQ(mkc.updates(), 2u);
}

TEST(MkcTest, StationaryRateFormula) {
  MkcConfig cfg;
  cfg.alpha_bps = 20e3;
  cfg.beta = 0.5;
  // C/N + a/b = 2e6/2 + 4e4 = 1.04 mb/s (paper Fig. 9: ~1 mb/s per flow).
  EXPECT_DOUBLE_EQ(MkcController::stationary_rate(2e6, 2, cfg), 1.04e6);
}

// ------------------------------------------------------- continuous Kelly

TEST(KellyContinuousTest, EquilibriumUnderConstantLoss) {
  KellyContinuousController k(20e3, 0.5, 128e3);
  const double p = 0.1;
  for (int i = 0; i < 200000; ++i) k.step(p, 0.001);
  EXPECT_NEAR(k.rate(), k.equilibrium(p), k.equilibrium(p) * 0.01);
  EXPECT_NEAR(k.equilibrium(p), 20e3 / (0.5 * 0.1), 1e-9);
}

TEST(KellyContinuousTest, RateGrowsWithoutLoss) {
  KellyContinuousController k(20e3, 0.5, 128e3);
  const double before = k.rate();
  for (int i = 0; i < 100; ++i) k.step(0.0, 0.01);
  EXPECT_NEAR(k.rate(), before + 20e3 * 1.0, 1.0);  // dr/dt = alpha
}

// ------------------------------------------------------------------- AIMD

TEST(AimdTest, AdditiveIncreaseWithoutCongestion) {
  AimdConfig cfg;
  cfg.initial_rate_bps = 500e3;
  cfg.increase_bps = 20e3;
  AimdController aimd(cfg);
  aimd.on_router_feedback(-1.0, 0);
  aimd.on_router_feedback(0.0, kMillisecond);
  EXPECT_DOUBLE_EQ(aimd.rate_bps(), 540e3);
}

TEST(AimdTest, MultiplicativeDecreaseOnCongestion) {
  AimdConfig cfg;
  cfg.initial_rate_bps = 1e6;
  cfg.decrease_factor = 0.5;
  AimdController aimd(cfg);
  aimd.on_router_feedback(0.1, kSecond);
  EXPECT_DOUBLE_EQ(aimd.rate_bps(), 500e3);
  EXPECT_EQ(aimd.decreases(), 1u);
}

TEST(AimdTest, BackoffGuardLimitsDecreaseFrequency) {
  AimdConfig cfg;
  cfg.initial_rate_bps = 1e6;
  cfg.backoff_guard = from_millis(100);
  AimdController aimd(cfg);
  aimd.on_router_feedback(0.1, kSecond);
  aimd.on_router_feedback(0.1, kSecond + from_millis(10));  // same episode
  EXPECT_EQ(aimd.decreases(), 1u);
  EXPECT_DOUBLE_EQ(aimd.rate_bps(), 500e3);
  aimd.on_router_feedback(0.1, kSecond + from_millis(200));  // new episode
  EXPECT_EQ(aimd.decreases(), 2u);
}

TEST(AimdTest, OscillatesInSteadyStateUnlikeMkc) {
  // Drive AIMD and MKC against the same feedback law; AIMD's steady-state
  // rate oscillation must be much larger (the paper's §5 motivation).
  const double capacity = 2e6;
  AimdConfig acfg;
  acfg.initial_rate_bps = 128e3;
  acfg.backoff_guard = 0;
  AimdController aimd(acfg);
  MkcConfig mcfg;
  mcfg.initial_rate_bps = 128e3;
  MkcController mkc(mcfg);

  double aimd_min = 1e18, aimd_max = 0, mkc_min = 1e18, mkc_max = 0;
  for (int k = 0; k < 400; ++k) {
    const SimTime now = k * from_millis(30);
    const double pa = (aimd.rate_bps() - capacity) / aimd.rate_bps();
    aimd.on_router_feedback(pa, now);
    const double pm = (mkc.rate_bps() - capacity) / mkc.rate_bps();
    mkc.on_router_feedback(pm, now);
    if (k > 200) {  // steady state
      aimd_min = std::min(aimd_min, aimd.rate_bps());
      aimd_max = std::max(aimd_max, aimd.rate_bps());
      mkc_min = std::min(mkc_min, mkc.rate_bps());
      mkc_max = std::max(mkc_max, mkc.rate_bps());
    }
  }
  const double aimd_swing = (aimd_max - aimd_min) / capacity;
  const double mkc_swing = (mkc_max - mkc_min) / capacity;
  EXPECT_LT(mkc_swing, 0.01);
  EXPECT_GT(aimd_swing, 10 * mkc_swing);
}

// -------------------------------------------------------------- TFRC-lite

TEST(TfrcLiteTest, SlowStartBeforeFirstLoss) {
  TfrcLiteConfig cfg;
  cfg.initial_rate_bps = 128e3;
  TfrcLiteController tfrc(cfg);
  tfrc.on_router_feedback(-1.0, 0);
  EXPECT_GT(tfrc.rate_bps(), 128e3);
}

TEST(TfrcLiteTest, ResponseFunctionAfterLoss) {
  TfrcLiteConfig cfg;
  cfg.packet_size_bytes = 500;
  cfg.initial_rtt = from_millis(100);
  TfrcLiteController tfrc(cfg);
  // Saturate the loss EWMA at p = 0.04.
  for (int i = 0; i < 100; ++i) tfrc.on_loss_interval(0.04, 0);
  EXPECT_NEAR(tfrc.smoothed_loss(), 0.04, 1e-6);
  const double expected = 500 * 8 * std::sqrt(1.5) / (0.1 * std::sqrt(0.04));
  EXPECT_NEAR(tfrc.rate_bps(), expected, expected * 0.01);
}

TEST(TfrcLiteTest, HigherLossLowersRate) {
  TfrcLiteController a{TfrcLiteConfig{}};
  TfrcLiteController b{TfrcLiteConfig{}};
  for (int i = 0; i < 100; ++i) {
    a.on_loss_interval(0.01, 0);
    b.on_loss_interval(0.09, 0);
  }
  // sqrt(p) law: 3x loss ratio in rate.
  EXPECT_NEAR(a.rate_bps() / b.rate_bps(), 3.0, 0.1);
}

TEST(TfrcLiteTest, LongerRttLowersRate) {
  TfrcLiteConfig cfg;
  TfrcLiteController a(cfg), b(cfg);
  a.set_rtt(from_millis(50));
  b.set_rtt(from_millis(200));
  for (int i = 0; i < 100; ++i) {
    a.on_loss_interval(0.04, 0);
    b.on_loss_interval(0.04, 0);
  }
  EXPECT_NEAR(a.rate_bps() / b.rate_bps(), 4.0, 0.1);
}

TEST(TfrcLiteTest, NoSlowStartAfterLossSeen) {
  TfrcLiteController tfrc{TfrcLiteConfig{}};
  tfrc.on_loss_interval(0.05, 0);
  const double r = tfrc.rate_bps();
  tfrc.on_router_feedback(-5.0, 0);  // spare capacity reported
  EXPECT_DOUBLE_EQ(tfrc.rate_bps(), r);  // but no multiplicative probe
}

// ---------------------------------------------------------------- TCP-like

struct TcpHarness {
  TcpHarness(double bottleneck_bps = 4e6, std::size_t queue_limit = 50)
      : sim(1), topo(sim) {
    Host& src = topo.add_host("src");
    Router& r1 = topo.add_router("r1");
    Host& dst = topo.add_host("dst");
    const QueueFactory fifo = [queue_limit](double) {
      return std::make_unique<DropTailQueue>(queue_limit);
    };
    topo.connect(src, r1, 10e6, from_millis(2), fifo);
    topo.connect(r1, dst, bottleneck_bps, from_millis(10), fifo);
    topo.compute_routes();
    source = std::make_unique<TcpLikeSource>(sim, src, 1, dst.id());
    sink = std::make_unique<TcpSink>(dst, 1, src.id());
  }
  Simulation sim;
  Topology topo;
  std::unique_ptr<TcpLikeSource> source;
  std::unique_ptr<TcpSink> sink;
};

TEST(TcpLikeTest, DeliversDataInOrder) {
  TcpHarness h;
  h.source->start(0);
  h.sim.run_until(2 * kSecond);
  EXPECT_GT(h.sink->cumulative_ack(), 100u);
  // ACKs still in flight at cut-off: the source can lag, never lead.
  EXPECT_LE(h.source->highest_acked(), h.sink->cumulative_ack());
  EXPECT_GT(h.source->highest_acked(), h.sink->cumulative_ack() - 50);
}

TEST(TcpLikeTest, SaturatesBottleneck) {
  TcpHarness h(4e6);
  h.source->start(0);
  h.sim.run_until(10 * kSecond);
  // Goodput should be near 4 mb/s (allowing slow-start warmup + header waste).
  EXPECT_GT(h.source->goodput_bps(h.sim.now()), 3.2e6);
  EXPECT_LT(h.source->goodput_bps(h.sim.now()), 4.1e6);
}

TEST(TcpLikeTest, LossTriggersFastRetransmit) {
  TcpHarness h(1e6, 10);  // tight queue forces drops
  h.source->start(0);
  h.sim.run_until(10 * kSecond);
  EXPECT_GT(h.source->retransmits(), 0u);
  // Despite drops, the stream keeps making progress.
  EXPECT_GT(h.sink->cumulative_ack(), 500u);
}

TEST(TcpLikeTest, CwndBoundedByQueueCapacity) {
  TcpHarness h(1e6, 10);
  h.source->start(0);
  h.sim.run_until(20 * kSecond);
  // With BDP + queue ~ 15 packets, cwnd cannot sit in the hundreds.
  EXPECT_LT(h.source->cwnd(), 100.0);
}

TEST(TcpLikeTest, TwoFlowsShareRoughlyFairly) {
  // Dumbbell: both flows cross the same r1 -> r2 bottleneck.
  Simulation sim(7);
  Topology topo(sim);
  Host& s1 = topo.add_host("s1");
  Host& s2 = topo.add_host("s2");
  Router& r1 = topo.add_router("r1");
  Router& r2 = topo.add_router("r2");
  Host& d1 = topo.add_host("d1");
  Host& d2 = topo.add_host("d2");
  const QueueFactory fifo = [](double) { return std::make_unique<DropTailQueue>(50); };
  topo.connect(s1, r1, 10e6, from_millis(2), fifo);
  topo.connect(s2, r1, 10e6, from_millis(2), fifo);
  topo.connect(r1, r2, 4e6, from_millis(10), fifo);
  topo.connect(r2, d1, 10e6, from_millis(2), fifo);
  topo.connect(r2, d2, 10e6, from_millis(2), fifo);
  topo.compute_routes();
  TcpLikeSource f1(sim, s1, 1, d1.id());
  TcpSink k1(d1, 1, s1.id());
  TcpLikeSource f2(sim, s2, 2, d2.id());
  TcpSink k2(d2, 2, s2.id());
  f1.start(0);
  f2.start(0);
  sim.run_until(30 * kSecond);
  const double g1 = f1.goodput_bps(sim.now());
  const double g2 = f2.goodput_bps(sim.now());
  const double share[] = {g1, g2};
  EXPECT_GT(jain_fairness_index(share), 0.7);
  EXPECT_NEAR(g1 + g2, 4e6, 1.2e6);
}

}  // namespace
}  // namespace pels
