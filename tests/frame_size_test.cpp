// Tests for src/video/frame_size: VBR frame-size models, the packet-count
// PMF bridge to eq. (1), and VBR-aware frame planning.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/best_effort_model.h"
#include "util/stats.h"
#include "video/fgs.h"
#include "video/frame_size.h"

namespace pels {
namespace {

// ------------------------------------------------------------- constant

TEST(ConstantFrameSizeTest, AlwaysSameValue) {
  ConstantFrameSize m(50'000);
  for (std::int64_t f = 0; f < 100; ++f) EXPECT_EQ(m.fgs_frame_bytes(f), 50'000);
  EXPECT_STREQ(m.name(), "constant");
}

// ------------------------------------------------------------ lognormal

TEST(LognormalFrameSizeTest, DeterministicPerFrame) {
  LognormalFrameSize a(40'000, 0.4, 1'000, 200'000, 7);
  LognormalFrameSize b(40'000, 0.4, 1'000, 200'000, 7);
  for (std::int64_t f = 0; f < 200; ++f)
    EXPECT_EQ(a.fgs_frame_bytes(f), b.fgs_frame_bytes(f));
}

TEST(LognormalFrameSizeTest, DifferentSeedsDiffer) {
  LognormalFrameSize a(40'000, 0.4, 1'000, 200'000, 7);
  LognormalFrameSize b(40'000, 0.4, 1'000, 200'000, 8);
  int equal = 0;
  for (std::int64_t f = 0; f < 100; ++f)
    equal += a.fgs_frame_bytes(f) == b.fgs_frame_bytes(f);
  EXPECT_LT(equal, 5);
}

TEST(LognormalFrameSizeTest, MeanMatchesTarget) {
  LognormalFrameSize m(40'000, 0.3, 0, 10'000'000, 3);
  RunningStats s;
  for (std::int64_t f = 0; f < 50'000; ++f)
    s.add(static_cast<double>(m.fgs_frame_bytes(f)));
  EXPECT_NEAR(s.mean(), 40'000.0, 1'000.0);
}

TEST(LognormalFrameSizeTest, ClampsToBounds) {
  LognormalFrameSize m(40'000, 1.5, 20'000, 60'000, 3);  // heavy tails, tight clamp
  for (std::int64_t f = 0; f < 5'000; ++f) {
    const auto v = m.fgs_frame_bytes(f);
    EXPECT_GE(v, 20'000);
    EXPECT_LE(v, 60'000);
  }
}

TEST(LognormalFrameSizeTest, ZeroSigmaIsConstant) {
  LognormalFrameSize m(40'000, 0.0, 0, 10'000'000, 3);
  for (std::int64_t f = 0; f < 100; ++f) EXPECT_EQ(m.fgs_frame_bytes(f), 40'000);
}

// ------------------------------------------------------------------ GOP

TEST(GopFrameSizeTest, IFramesLarger) {
  GopFrameSize m(60'000, 20'000, 12, 5, 0.0);  // no jitter
  for (std::int64_t f = 0; f < 48; ++f) {
    if (f % 12 == 0) {
      EXPECT_EQ(m.fgs_frame_bytes(f), 60'000);
    } else {
      EXPECT_EQ(m.fgs_frame_bytes(f), 20'000);
    }
  }
}

TEST(GopFrameSizeTest, JitterBounded) {
  GopFrameSize m(60'000, 20'000, 12, 5, 0.1);
  for (std::int64_t f = 0; f < 240; ++f) {
    const auto v = static_cast<double>(m.fgs_frame_bytes(f));
    const double base = f % 12 == 0 ? 60'000.0 : 20'000.0;
    EXPECT_GE(v, base * 0.9 - 1);
    EXPECT_LE(v, base * 1.1 + 1);
  }
}

// ------------------------------------------------------------------ PMF

TEST(FrameSizePmfTest, ConstantModelIsPointMass) {
  ConstantFrameSize m(5'000);  // 10 packets of 500 B
  const auto pmf = frame_size_pmf_packets(m, 100, 500);
  ASSERT_EQ(pmf.size(), 10u);
  for (std::size_t k = 0; k < 9; ++k) EXPECT_DOUBLE_EQ(pmf[k], 0.0);
  EXPECT_DOUBLE_EQ(pmf[9], 1.0);
}

TEST(FrameSizePmfTest, PartialPacketsRoundUp) {
  ConstantFrameSize m(5'001);  // 11 packets: 10 full + 1-byte tail
  const auto pmf = frame_size_pmf_packets(m, 10, 500);
  ASSERT_EQ(pmf.size(), 11u);
  EXPECT_DOUBLE_EQ(pmf[10], 1.0);
}

TEST(FrameSizePmfTest, SumsToAtMostOne) {
  LognormalFrameSize m(10'000, 0.5, 0, 50'000, 11);
  const auto pmf = frame_size_pmf_packets(m, 1'000, 500);
  double total = 0.0;
  for (double w : pmf) total += w;
  EXPECT_LE(total, 1.0 + 1e-12);
  EXPECT_GT(total, 0.99);  // zero-byte frames are rare at this clamp
}

TEST(FrameSizePmfTest, GopModelHasTwoModes) {
  GopFrameSize m(30'000, 10'000, 10, 5, 0.0);
  const auto pmf = frame_size_pmf_packets(m, 1'000, 500);
  ASSERT_EQ(pmf.size(), 60u);
  EXPECT_NEAR(pmf[19], 0.9, 1e-9);  // P frames: 20 packets
  EXPECT_NEAR(pmf[59], 0.1, 1e-9);  // I frames: 60 packets
}

// --------------------------- eq. (1) bridge: PMF-weighted useful packets

TEST(FrameSizePmfTest, EquationOneMatchesDirectAverage) {
  // E[Y] computed through eq. (1) with the empirical PMF must equal the
  // frame-by-frame average of eq. (2) over the same frames.
  LognormalFrameSize m(8'000, 0.6, 500, 40'000, 13);
  const std::int64_t frames = 2'000;
  const auto pmf = frame_size_pmf_packets(m, frames, 500);
  const double p = 0.1;
  const double via_pmf = expected_useful_packets_pmf(p, pmf);
  RunningStats direct;
  for (std::int64_t f = 0; f < frames; ++f) {
    const std::int64_t packets = (m.fgs_frame_bytes(f) + 499) / 500;
    if (packets > 0) direct.add(expected_useful_packets(p, packets));
  }
  EXPECT_NEAR(via_pmf, direct.mean(), 1e-9);
}

// ------------------------------------------------- VBR-aware frame plans

TEST(PlanFrameVbrTest, CapFollowsModel) {
  VideoConfig v;
  v.base_layer_bytes = 1'600;
  GopFrameSize m(30'000, 10'000, 10, 5, 0.0);
  // Rate budget far above either coded size: plan is capped by the model.
  for (std::int64_t f = 0; f < 20; ++f) {
    const FramePlan plan =
        plan_frame(v, f, 100e6, 0.3, true, m.fgs_frame_bytes(f));
    EXPECT_EQ(plan.fgs_bytes(), m.fgs_frame_bytes(f));
  }
}

TEST(PlanFrameVbrTest, NegativeCapMeansConfigDefault) {
  VideoConfig v;
  const FramePlan plan = plan_frame(v, 0, 100e6, 0.3, true, -1);
  EXPECT_EQ(plan.fgs_bytes(), v.max_fgs_bytes());
}

TEST(PlanFrameVbrTest, ZeroCapSendsBaseOnly) {
  VideoConfig v;
  const FramePlan plan = plan_frame(v, 0, 2e6, 0.3, true, 0);
  EXPECT_EQ(plan.fgs_bytes(), 0);
  EXPECT_EQ(plan.base_bytes, v.base_layer_bytes);
}

}  // namespace
}  // namespace pels
