// Tests for src/analysis: closed-form best-effort/PELS models (eq. (1)-(3),
// (6)) against Monte-Carlo simulation, the stability lemmas (2, 3, 5, 6) as
// numeric properties, and convergence metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/best_effort_model.h"
#include "analysis/convergence.h"
#include "analysis/stability.h"
#include "util/rng.h"

namespace pels {
namespace {

// ------------------------------------------------ best-effort closed forms

TEST(BestEffortModelTest, PaperTable1Values) {
  // Table 1: H = 100, model column.
  EXPECT_NEAR(expected_useful_packets(0.0001, 100), 99.49, 0.01);
  EXPECT_NEAR(expected_useful_packets(0.01, 100), 62.76, 0.01);
  EXPECT_NEAR(expected_useful_packets(0.1, 100), 8.99, 0.01);
}

TEST(BestEffortModelTest, LimitsAtExtremes) {
  EXPECT_DOUBLE_EQ(expected_useful_packets(0.0, 100), 100.0);
  EXPECT_DOUBLE_EQ(expected_useful_packets(1.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(best_effort_utility(0.0, 100), 1.0);
}

TEST(BestEffortModelTest, SaturatesAtOneMinusPOverP) {
  // As H grows, E[Y] -> (1-p)/p (paper Fig. 2 left, p = 0.1 -> 9).
  const double p = 0.1;
  EXPECT_NEAR(expected_useful_packets(p, 10'000), useful_packets_limit(p), 1e-6);
  EXPECT_DOUBLE_EQ(useful_packets_limit(0.1), 9.0);
}

TEST(BestEffortModelTest, UtilityDecaysAsOneOverH) {
  // U ~ 1/(Hp) for large H: doubling H halves utility.
  const double p = 0.1;
  const double u1 = best_effort_utility(p, 1000);
  const double u2 = best_effort_utility(p, 2000);
  EXPECT_NEAR(u1 / u2, 2.0, 0.01);
}

TEST(BestEffortModelTest, UtilityExampleFromPaper) {
  // §3.1: p = 0.1, H = 100 -> U ≈ 0.1.
  EXPECT_NEAR(best_effort_utility(0.1, 100), 0.1, 0.001);
}

TEST(BestEffortModelTest, PmfReducesToConstantCase) {
  // A point-mass PMF at H = 100 must reproduce eq. (2).
  std::vector<double> pmf(100, 0.0);
  pmf[99] = 1.0;
  EXPECT_NEAR(expected_useful_packets_pmf(0.05, pmf),
              expected_useful_packets(0.05, 100), 1e-12);
}

TEST(BestEffortModelTest, PmfMixtureIsConvexCombination) {
  // Mixture of two frame sizes = weighted sum of the constant-size results
  // (eq. (1) is linear in the PMF).
  std::vector<double> pmf(200, 0.0);
  pmf[49] = 0.3;   // H = 50
  pmf[199] = 0.7;  // H = 200
  const double expected = 0.3 * expected_useful_packets(0.1, 50) +
                          0.7 * expected_useful_packets(0.1, 200);
  EXPECT_NEAR(expected_useful_packets_pmf(0.1, pmf), expected, 1e-12);
}

TEST(BestEffortModelTest, PmfUnnormalizedWeightsAccepted) {
  std::vector<double> pmf(100, 0.0);
  pmf[99] = 2.5;  // weight, not probability
  EXPECT_NEAR(expected_useful_packets_pmf(0.05, pmf),
              expected_useful_packets(0.05, 100), 1e-12);
}

TEST(BestEffortModelTest, OptimalKeepsAllReceivedPackets) {
  EXPECT_DOUBLE_EQ(optimal_useful_packets(0.1, 100), 90.0);
  EXPECT_DOUBLE_EQ(optimal_useful_packets(0.0, 100), 100.0);
}

TEST(BestEffortModelTest, PelsUtilityBoundFromPaper) {
  // §4.3: U >= 0.96 for p = 0.1, p_thr = 0.75; >= 0.996 for p = 0.01.
  EXPECT_GT(pels_utility_bound(0.1, 0.75), 0.96);
  EXPECT_GT(pels_utility_bound(0.01, 0.75), 0.996);
  EXPECT_DOUBLE_EQ(pels_utility_bound(0.0, 0.75), 1.0);
}

class MonteCarloAgreement : public ::testing::TestWithParam<double> {};

TEST_P(MonteCarloAgreement, SimulationMatchesModel) {
  // Reproduces Table 1's two columns agreeing for any p.
  const double p = GetParam();
  Rng rng(42);
  const double sim = simulate_useful_packets(rng, p, 100, 200'000);
  const double model = expected_useful_packets(p, 100);
  EXPECT_NEAR(sim, model, std::max(0.01 * model, 0.05));
}

INSTANTIATE_TEST_SUITE_P(LossGrid, MonteCarloAgreement,
                         ::testing::Values(0.0001, 0.001, 0.01, 0.05, 0.1, 0.3, 0.5));

// ------------------------------------------------------- gamma stability

TEST(GammaStabilityTest, StableGainConvergesToFixedPoint) {
  // Lemma 2 + the Fig. 5 setting: p = 0.5, p_thr = 0.75 -> gamma* = 2/3.
  EXPECT_TRUE(gamma_converges(0.1, 0.5, 0.5, 0.75, 200));
  const auto g = gamma_trajectory(0.1, 0.5, 0.5, 0.75, 200);
  EXPECT_NEAR(g.back(), 0.5 / 0.75, 1e-6);
}

TEST(GammaStabilityTest, UnstableGainDiverges) {
  // sigma = 3 as in Fig. 5: the iterate oscillates with growing amplitude.
  const auto g = gamma_trajectory(0.1, 0.5, 3.0, 0.75, 60);
  EXPECT_GT(std::abs(g.back() - 0.5 / 0.75), 10.0);
  EXPECT_FALSE(gamma_converges(0.1, 0.5, 3.0, 0.75, 60));
}

TEST(GammaStabilityTest, CriticalGainOscillatesForever) {
  // sigma = 2 is marginal: the error alternates sign with constant magnitude.
  const auto g = gamma_trajectory(0.2, 0.5, 2.0, 0.75, 100);
  const double fp = 0.5 / 0.75;
  EXPECT_NEAR(std::abs(g[50] - fp), std::abs(g[51] - fp), 1e-9);
  EXPECT_GT(std::abs(g.back() - fp), 0.1);
}

class GammaGainSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaGainSweep, LemmaTwoBoundary) {
  // Convergence iff 0 < sigma < 2, for delay 1 and for larger delays
  // (Lemma 3: delay does not change the condition).
  const double sigma = GetParam();
  for (int delay : {1, 2, 5}) {
    const bool converged = gamma_converges(0.1, 0.3, sigma, 0.75, 4000, delay, 1e-3);
    EXPECT_EQ(converged, gamma_stable_gain(sigma))
        << "sigma=" << sigma << " delay=" << delay;
  }
}

INSTANTIATE_TEST_SUITE_P(GainGrid, GammaGainSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 1.5, 1.9, 2.1, 2.5, 3.0));

TEST(GammaStabilityTest, DelayedConvergenceReachesSameFixedPoint) {
  for (int delay : {1, 2, 4, 8}) {
    const auto g = gamma_trajectory(0.9, 0.15, 0.5, 0.75, 2000, delay);
    EXPECT_NEAR(g.back(), 0.2, 1e-6) << "delay=" << delay;
  }
}

// --------------------------------------------------------- MKC stability

TEST(MkcStabilityTest, StationaryRateAndLossFormulas) {
  // Lemma 6 and the derived equilibrium loss used to size Fig. 7 workloads.
  EXPECT_DOUBLE_EQ(mkc_stationary_rate(2e6, 2, 20e3, 0.5), 1.04e6);
  // p* = N(a/b) / (C + N(a/b)): 4 flows -> 160k/2160k.
  EXPECT_NEAR(mkc_stationary_loss(2e6, 4, 20e3, 0.5), 160.0 / 2160.0, 1e-9);
  EXPECT_NEAR(mkc_stationary_loss(2e6, 8, 20e3, 0.5), 320.0 / 2320.0, 1e-9);
}

TEST(MkcStabilityTest, FlowsForLossTargets) {
  // The paper's Fig. 7 loss levels (~7% and ~14%) need 4 and 8 flows.
  EXPECT_EQ(mkc_flows_for_loss(2e6, 20e3, 0.5, 0.07), 4);
  EXPECT_EQ(mkc_flows_for_loss(2e6, 20e3, 0.5, 0.135), 8);
}

TEST(MkcStabilityTest, TrajectoryConvergesToEquilibrium) {
  const auto traj = mkc_trajectory({128e3, 128e3}, 2e6, 20e3, 0.5, 500);
  const double r_star = mkc_stationary_rate(2e6, 2, 20e3, 0.5);
  EXPECT_NEAR(traj.rates[0].back(), r_star, 1e3);
  EXPECT_NEAR(traj.rates[1].back(), r_star, 1e3);
  // Loss converges to p*.
  EXPECT_NEAR(traj.loss.back(), mkc_stationary_loss(2e6, 2, 20e3, 0.5), 1e-4);
}

TEST(MkcStabilityTest, UnequalStartsConvergeToFairness) {
  const auto traj = mkc_trajectory({128e3, 1.8e6}, 2e6, 20e3, 0.5, 2000);
  EXPECT_NEAR(traj.rates[0].back(), traj.rates[1].back(),
              traj.rates[0].back() * 0.01);
}

TEST(MkcStabilityTest, NoSteadyStateOscillation) {
  const auto traj = mkc_trajectory({128e3}, 2e6, 20e3, 0.5, 1000);
  const double r_star = mkc_stationary_rate(2e6, 1, 20e3, 0.5);
  EXPECT_LT(tail_oscillation(traj.rates[0], r_star, 0.2), 1.0);
}

class MkcGainSweep : public ::testing::TestWithParam<double> {};

TEST_P(MkcGainSweep, LemmaFiveBoundary) {
  // Stable iff 0 < beta < 2, including with feedback delay.
  const double beta = GetParam();
  for (int delay : {1, 2, 4}) {
    const auto traj = mkc_trajectory({300e3, 700e3}, 2e6, 20e3, beta, 6000, delay);
    const double r_star = mkc_stationary_rate(2e6, 2, 20e3, beta);
    bool finite = true;
    for (double r : traj.rates[0])
      if (!std::isfinite(r) || r > 1e12) finite = false;
    const bool converged =
        finite && std::abs(traj.rates[0].back() - r_star) < r_star * 0.02 &&
        std::abs(traj.rates[1].back() - r_star) < r_star * 0.02;
    EXPECT_EQ(converged, mkc_stable_gain(beta)) << "beta=" << beta << " delay=" << delay;
  }
}

INSTANTIATE_TEST_SUITE_P(GainGrid, MkcGainSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5, 2.2, 3.0));

TEST(MkcStabilityTest, RttIndependenceOfEquilibrium) {
  // Lemma 6: flows with different delays reach the same stationary rate.
  const auto fast = mkc_trajectory({128e3}, 2e6, 20e3, 0.5, 3000, 1);
  const auto slow = mkc_trajectory({128e3}, 2e6, 20e3, 0.5, 3000, 10);
  EXPECT_NEAR(fast.rates[0].back(), slow.rates[0].back(), 1e3);
}

// ---------------------------------------------------- convergence metrics

TEST(ConvergenceTest, SettlingIndexFindsStablePoint) {
  const std::vector<double> v = {0.0, 5.0, 9.0, 10.5, 9.8, 10.1, 10.0};
  EXPECT_EQ(settling_index(v, 10.0, 0.6), 3u);
  EXPECT_EQ(settling_index(v, 10.0, 0.05), 6u);
  EXPECT_EQ(settling_index(v, 42.0, 0.1), v.size());
}

TEST(ConvergenceTest, SettlingTimeOnSeries) {
  TimeSeries ts;
  ts.add(kSecond, 1.0);
  ts.add(2 * kSecond, 9.5);
  ts.add(3 * kSecond, 10.0);
  ts.add(4 * kSecond, 10.1);
  EXPECT_EQ(settling_time(ts, 10.0, 0.2), 3 * kSecond);
  EXPECT_EQ(settling_time(ts, 10.0, 0.6), 2 * kSecond);
  EXPECT_EQ(settling_time(ts, 99.0, 0.1), kTimeNever);
}

TEST(ConvergenceTest, TailOscillation) {
  std::vector<double> v(100, 10.0);
  v[95] = 12.0;
  v[10] = 50.0;  // outside the tail window
  EXPECT_DOUBLE_EQ(tail_oscillation(v, 10.0, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(tail_oscillation(v, 10.0, 1.0), 40.0);
}

}  // namespace
}  // namespace pels
