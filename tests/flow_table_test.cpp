// FlowTable unit tests: slot lifecycle and the bit-for-bit equivalence of
// table-backed control against the per-object controllers (the determinism
// contract stated in cc/flow_table.h).
#include <gtest/gtest.h>

#include <vector>

#include "cc/flow_table.h"
#include "cc/mkc.h"
#include "util/rng.h"
#include "video/gamma_controller.h"

namespace pels {
namespace {

MkcConfig mkc_config() {
  MkcConfig cfg;  // defaults match the paper's operating point
  return cfg;
}

GammaConfig gamma_config() {
  GammaConfig cfg;
  return cfg;
}

TEST(FlowTableTest, SlotsAllocateDenselyAndReuseLifo) {
  FlowTable table(mkc_config(), gamma_config());
  const FlowSlot a = table.add_flow();
  const FlowSlot b = table.add_flow();
  const FlowSlot c = table.add_flow();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.capacity(), 3u);

  table.remove_flow(b);
  EXPECT_FALSE(table.is_live(b));
  EXPECT_EQ(table.size(), 2u);

  // Freed slots come back LIFO; the columns never grow for reuse.
  const FlowSlot d = table.add_flow();
  EXPECT_EQ(d, b);
  EXPECT_TRUE(table.is_live(d));
  EXPECT_EQ(table.capacity(), 3u);

  // A reused slot starts from the configured initial state, not the
  // previous occupant's.
  EXPECT_DOUBLE_EQ(table.rate_bps(d), mkc_config().initial_rate_bps);
  EXPECT_DOUBLE_EQ(table.gamma(d), gamma_config().initial_gamma);
  EXPECT_EQ(table.mkc_updates(d), 0u);
  EXPECT_FALSE(table.in_silence(d));
}

TEST(FlowTableTest, ExplicitInitialStateOverload) {
  FlowTable table(mkc_config(), gamma_config());
  const FlowSlot s = table.add_flow(512e3, 0.25);
  EXPECT_DOUBLE_EQ(table.rate_bps(s), 512e3);
  EXPECT_DOUBLE_EQ(table.gamma(s), 0.25);
}

TEST(FlowTableTest, ReserveKeepsColumnsStable) {
  FlowTable table(mkc_config(), gamma_config());
  table.reserve(64);
  const FlowSlot first = table.add_flow();
  const double* cell = &table.paced_rate_ref(first);
  for (int i = 1; i < 64; ++i) table.add_flow();
  // No column reallocated within the reserved population, so the reference
  // taken before the adds is still the live cell.
  EXPECT_EQ(cell, &table.paced_rate_ref(first));
}

// The core contract: any interleaving of feedback / silence / gamma inputs
// produces exactly the same doubles through (a) the standalone controllers,
// (b) the table's single-flow operations, and (c) the staged batch path.
TEST(FlowTableTest, SingleFlowOpsMatchControllersBitForBit) {
  const MkcConfig mkc = mkc_config();
  const GammaConfig gc = gamma_config();
  MkcController ctrl(mkc);
  GammaController gamma(gc);
  FlowTable table(mkc, gc);
  const FlowSlot slot = table.add_flow();

  Rng rng(7, 0xF10);
  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 2));
    if (op == 0) {
      const double p = rng.uniform(-2.0, 0.9);
      ctrl.on_router_feedback(p, 0);
      table.apply_feedback(slot, p);
    } else if (op == 1) {
      ctrl.on_feedback_silence(0);
      table.apply_silence(slot);
    } else {
      const double p_fgs = rng.uniform(-0.2, 1.2);
      gamma.update(p_fgs);
      table.apply_gamma(slot, p_fgs);
    }
    ASSERT_EQ(ctrl.rate_bps(), table.rate_bps(slot)) << "step " << step;
    ASSERT_EQ(ctrl.in_silence(), table.in_silence(slot)) << "step " << step;
    ASSERT_EQ(gamma.gamma(), table.gamma(slot)) << "step " << step;
  }
  EXPECT_EQ(ctrl.updates(), table.mkc_updates(slot));
  EXPECT_EQ(ctrl.silence_ticks(), table.silence_ticks(slot));
  EXPECT_EQ(gamma.updates(), table.gamma_updates(slot));
}

TEST(FlowTableTest, BatchTickMatchesPerObjectBitForBit) {
  const MkcConfig mkc = mkc_config();
  const GammaConfig gc = gamma_config();
  constexpr int kFlows = 17;

  std::vector<MkcController> ctrls;
  std::vector<GammaController> gammas;
  FlowTable table(mkc, gc);
  for (int i = 0; i < kFlows; ++i) {
    ctrls.emplace_back(mkc);
    gammas.emplace_back(gc);
    table.add_flow();
  }

  Rng rng(11, 0xBA7C);
  for (int tick = 0; tick < 400; ++tick) {
    std::size_t feedbacks = 0;
    std::size_t silences = 0;
    std::size_t gamma_updates = 0;
    for (int i = 0; i < kFlows; ++i) {
      const auto slot = static_cast<FlowSlot>(i);
      const int op = static_cast<int>(rng.uniform_int(0, 3));  // 3 = idle
      if (op == 0) {
        const double p = rng.uniform(-2.0, 0.9);
        ctrls[static_cast<std::size_t>(i)].on_router_feedback(p, 0);
        table.stage_feedback(slot, p);
        ++feedbacks;
      } else if (op == 1) {
        ctrls[static_cast<std::size_t>(i)].on_feedback_silence(0);
        table.stage_silence(slot);
        ++silences;
      }
      if (op != 3 && rng.bernoulli(0.5)) {
        const double p_fgs = rng.uniform(0.0, 1.0);
        gammas[static_cast<std::size_t>(i)].update(p_fgs);
        table.stage_gamma(slot, p_fgs);
        ++gamma_updates;
      }
    }
    const FlowTable::BatchStats stats = table.batch_control_tick();
    ASSERT_EQ(stats.feedback_applied, feedbacks);
    ASSERT_EQ(stats.silences, silences);
    ASSERT_EQ(stats.gamma_updates, gamma_updates);
    for (int i = 0; i < kFlows; ++i) {
      const auto slot = static_cast<FlowSlot>(i);
      ASSERT_EQ(ctrls[static_cast<std::size_t>(i)].rate_bps(), table.rate_bps(slot))
          << "tick " << tick << " flow " << i;
      ASSERT_EQ(gammas[static_cast<std::size_t>(i)].gamma(), table.gamma(slot))
          << "tick " << tick << " flow " << i;
    }
  }
}

TEST(FlowTableTest, StagedFeedbackSupersedesSilenceEitherOrder) {
  const MkcConfig mkc = mkc_config();
  FlowTable table(mkc, gamma_config());
  const FlowSlot a = table.add_flow();
  const FlowSlot b = table.add_flow();

  // Reference: a flow that receives only the feedback.
  MkcController ref(mkc);
  ref.on_router_feedback(0.1, 0);

  table.stage_silence(a);
  table.stage_feedback(a, 0.1);  // fresh label ends the silence episode
  table.stage_feedback(b, 0.1);
  table.stage_silence(b);  // stale watchdog racing a fresh label: ignored
  const FlowTable::BatchStats stats = table.batch_control_tick();
  EXPECT_EQ(stats.feedback_applied, 2u);
  EXPECT_EQ(stats.silences, 0u);
  EXPECT_EQ(table.rate_bps(a), ref.rate_bps());
  EXPECT_EQ(table.rate_bps(b), ref.rate_bps());
  EXPECT_EQ(table.silence_ticks(a), 0u);
  EXPECT_EQ(table.silence_ticks(b), 0u);
}

TEST(FlowTableTest, StagedInputLatestWinsWithinTick) {
  FlowTable table(mkc_config(), gamma_config());
  const FlowSlot s = table.add_flow();
  MkcController ref(mkc_config());

  table.stage_feedback(s, 0.5);
  table.stage_feedback(s, 0.1);  // supersedes within the tick
  table.batch_control_tick();
  ref.on_router_feedback(0.1, 0);
  EXPECT_EQ(table.rate_bps(s), ref.rate_bps());
  EXPECT_EQ(table.mkc_updates(s), 1u);
}

TEST(FlowTableTest, RemovedFlowDropsItsStagedInput) {
  FlowTable table(mkc_config(), gamma_config());
  const FlowSlot keep = table.add_flow();
  const FlowSlot gone = table.add_flow();
  table.stage_feedback(keep, 0.1);
  table.stage_feedback(gone, 0.1);
  table.remove_flow(gone);
  const FlowTable::BatchStats stats = table.batch_control_tick();
  EXPECT_EQ(stats.feedback_applied, 1u);
  EXPECT_EQ(table.mkc_updates(keep), 1u);
}

TEST(FlowTableTest, TableBackedControllerRoutesThroughTable) {
  const MkcConfig mkc = mkc_config();
  FlowTable table(mkc, gamma_config());
  const FlowSlot slot = table.add_flow();
  MkcController routed(table, slot);
  MkcController standalone(mkc);

  routed.on_router_feedback(0.2, 0);
  standalone.on_router_feedback(0.2, 0);
  EXPECT_EQ(routed.rate_bps(), standalone.rate_bps());
  EXPECT_EQ(routed.rate_bps(), table.rate_bps(slot));
  EXPECT_EQ(routed.updates(), 1u);

  routed.on_feedback_silence(0);
  standalone.on_feedback_silence(0);
  EXPECT_EQ(routed.rate_bps(), standalone.rate_bps());
  EXPECT_TRUE(routed.in_silence());
  EXPECT_TRUE(table.in_silence(slot));
  EXPECT_EQ(routed.silence_ticks(), 1u);
}

}  // namespace
}  // namespace pels
