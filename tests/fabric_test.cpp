// Fabric generator + mixed-traffic + population-scale driver tests
// (src/exp/fabric.h).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "exp/domain_runner.h"
#include "exp/fabric.h"
#include "util/time.h"

namespace pels {
namespace {

FabricConfig parking_lot(int hops) {
  FabricConfig cfg;
  cfg.kind = FabricConfig::Kind::kParkingLot;
  cfg.hops = hops;
  cfg.core_bandwidth_bps = 4e6;
  return cfg;
}

FabricConfig fat_tree(int pods, int racks, int hosts, bool domain_per_pod = false) {
  FabricConfig cfg;
  cfg.kind = FabricConfig::Kind::kFatTree;
  cfg.pods = pods;
  cfg.racks_per_pod = racks;
  cfg.hosts_per_rack = hosts;
  cfg.domain_per_pod = domain_per_pod;
  return cfg;
}

TEST(FabricTest, ParkingLotGeometry) {
  Fabric f(parking_lot(3));
  EXPECT_EQ(f.hosts().size(), 4u);
  EXPECT_EQ(f.core_queue_count(), 3u);
  EXPECT_EQ(f.domain_count(), 1);
  // Every bottleneck meter stamps its own router id, in creation order.
  std::set<std::int32_t> ids;
  for (std::size_t i = 0; i < f.core_queue_count(); ++i) {
    ids.insert(f.core_queue(i).config().router_id);
  }
  EXPECT_EQ(ids.size(), 3u);
}

TEST(FabricTest, ParkingLotRoutesEndToEnd) {
  Fabric f(parking_lot(2));
  // A packet from H0 to the far end crosses every chain link and arrives.
  Packet pkt;
  pkt.flow = 7;
  pkt.size_bytes = 500;
  pkt.color = Color::kGreen;
  pkt.src = f.hosts().front()->id();
  pkt.dst = f.hosts().back()->id();
  ASSERT_TRUE(f.hosts().front()->send(pkt));
  f.sim().run_until(kSecond);
  EXPECT_EQ(f.hosts().back()->packets_received(), 1u);
  EXPECT_EQ(f.core_links()[0]->packets_delivered(), 1u);
  EXPECT_EQ(f.core_links()[1]->packets_delivered(), 1u);
}

TEST(FabricTest, FatTreeGeometry) {
  Fabric f(fat_tree(2, 2, 3));
  EXPECT_EQ(f.hosts().size(), 12u);
  // Bottlenecks: one pod uplink per pod plus one rack uplink per rack.
  EXPECT_EQ(f.core_queue_count(), 2u + 4u);
  EXPECT_EQ(f.domain_count(), 1);

  // Cross-pod delivery works (host in pod 0 to host in pod 1).
  Packet pkt;
  pkt.flow = 1;
  pkt.size_bytes = 500;
  pkt.color = Color::kGreen;
  pkt.src = f.hosts().front()->id();
  pkt.dst = f.hosts().back()->id();
  ASSERT_TRUE(f.hosts().front()->send(pkt));
  f.sim().run_until(kSecond);
  EXPECT_EQ(f.hosts().back()->packets_received(), 1u);
}

TEST(FabricTest, FatTreeDomainPerPodMapsOntoDomains) {
  Fabric f(fat_tree(3, 1, 2, /*domain_per_pod=*/true));
  EXPECT_EQ(f.domain_count(), 4);  // core + one per pod
  // Hosts land in their pod's domain (domains 1..pods), never the core's.
  for (std::size_t h = 0; h < f.hosts().size(); ++h) {
    EXPECT_GE(f.host_domain(h), 1);
    EXPECT_LE(f.host_domain(h), 3);
  }
  // The pod uplink delay is the conservative lookahead.
  EXPECT_EQ(f.topology().min_boundary_delay(), f.config().core_delay);

  // Structurally runnable under DomainRunner: cross-pod traffic crosses the
  // boundary mailboxes and still arrives.
  DomainRunner runner(f.topology());
  Packet pkt;
  pkt.flow = 1;
  pkt.size_bytes = 500;
  pkt.color = Color::kGreen;
  pkt.src = f.hosts().front()->id();
  pkt.dst = f.hosts().back()->id();
  ASSERT_TRUE(f.hosts().front()->send(pkt));
  runner.run_until(kSecond);
  EXPECT_EQ(f.hosts().back()->packets_received(), 1u);
  EXPECT_GT(runner.stats().handoffs, 0u);
}

TEST(FabricTest, MixedTrafficIsDeterministicAndWellFormed) {
  Fabric f(parking_lot(3));
  MixedTrafficConfig cfg;
  cfg.video_flows = 20;
  cfg.mice_flows = 15;
  cfg.elephant_flows = 3;
  cfg.seed = 99;
  const auto a = gen_mixed_traffic(f, cfg);
  const auto b = gen_mixed_traffic(f, cfg);
  ASSERT_EQ(a.size(), 38u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_EQ(a[i].src_host, b[i].src_host);
    EXPECT_EQ(a[i].dst_host, b[i].dst_host);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);
    EXPECT_NE(a[i].src_host, a[i].dst_host);
    EXPECT_GE(a[i].src_host, 0);
    EXPECT_LT(a[i].src_host, 4);
    if (i > 0) {
      EXPECT_LE(a[i - 1].start, a[i].start);
    }
    if (a[i].cls == TrafficClass::kMice) {
      EXPECT_GE(a[i].total_bytes, a[i].packet_bytes);
    } else {
      EXPECT_EQ(a[i].total_bytes, 0);
    }
  }
  // A different seed reshuffles the mix.
  MixedTrafficConfig other = cfg;
  other.seed = 100;
  const auto c = gen_mixed_traffic(f, other);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || c[i].src_host != a[i].src_host || c[i].start != a[i].start;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FabricTest, ManyFlowDriverRunsMixToCompletion) {
  Fabric f(parking_lot(2));
  MixedTrafficConfig mix;
  mix.video_flows = 8;
  mix.mice_flows = 6;
  mix.elephant_flows = 1;
  mix.start_window = from_seconds(0.5);
  ManyFlowDriverConfig cfg;
  ManyFlowDriver driver(f, gen_mixed_traffic(f, mix), cfg);
  f.reserve_runtime(driver.flow_count());
  driver.start();
  driver.run_until(8 * kSecond);

  EXPECT_EQ(driver.flow_count(), 15u);
  EXPECT_GT(driver.packets_sent(), 1000u);
  EXPECT_GT(driver.packets_received(), 0u);
  EXPECT_GT(driver.control_ticks(), 30u);

  // Mice complete and free their slots; video and elephants keep running.
  std::size_t mice_done = 0;
  for (std::size_t i = 0; i < driver.flow_count(); ++i) {
    if (driver.flow_done(i)) ++mice_done;
  }
  EXPECT_GT(mice_done, 0u);
  EXPECT_EQ(driver.live_flows(), driver.flow_count() - mice_done);

  // Feedback reached the population: rates moved off the initial point but
  // stayed within the controller's clamp and the driver's cap.
  bool any_rate_moved = false;
  for (std::size_t i = 0; i < driver.flow_count(); ++i) {
    if (driver.flow_done(i)) continue;
    const double r = driver.flow_rate_bps(i);
    EXPECT_GE(r, cfg.mkc.min_rate_bps);
    EXPECT_LE(r, cfg.mkc.max_rate_bps);
    any_rate_moved = any_rate_moved || r != cfg.mkc.initial_rate_bps;
  }
  EXPECT_TRUE(any_rate_moved);
}

TEST(FabricTest, ManyFlowDriverIsDeterministic) {
  const auto run = [] {
    Fabric f(parking_lot(2));
    MixedTrafficConfig mix;
    mix.video_flows = 6;
    mix.mice_flows = 4;
    ManyFlowDriver driver(f, gen_mixed_traffic(f, mix), ManyFlowDriverConfig{});
    driver.start();
    driver.run_until(4 * kSecond);
    std::vector<double> rates;
    for (std::size_t i = 0; i < driver.flow_count(); ++i) {
      rates.push_back(driver.flow_done(i) ? -1.0 : driver.flow_rate_bps(i));
    }
    return std::tuple{driver.packets_sent(), driver.packets_received(), rates};
  };
  EXPECT_EQ(run(), run());
}

TEST(FabricTest, ManyFlowDriverSlotReuseKeepsLiveFlowsCorrect) {
  // Two waves of bounded mice around one unbounded video flow: the second
  // wave must reuse the first wave's freed slots (no column growth), and
  // live_flows() must settle back to just the video flow.
  Fabric f(parking_lot(1));
  std::vector<FlowSpec> specs;
  FlowSpec video;
  video.cls = TrafficClass::kVideo;
  video.src_host = 0;
  video.dst_host = 1;
  video.rate_bps = 128e3;
  specs.push_back(video);
  for (int wave = 0; wave < 2; ++wave) {
    for (int i = 0; i < 4; ++i) {
      FlowSpec mouse;
      mouse.cls = TrafficClass::kMice;
      mouse.src_host = 0;
      mouse.dst_host = 1;
      mouse.start = wave * kSecond;
      mouse.rate_bps = 400e3;
      mouse.total_bytes = 3000;  // 3 packets, done in ~60 ms
      specs.push_back(mouse);
    }
  }
  ManyFlowDriver driver(f, std::move(specs), ManyFlowDriverConfig{});
  f.reserve_runtime(driver.flow_count());
  driver.start();
  driver.run_until(3 * kSecond);

  std::size_t done = 0;
  for (std::size_t i = 0; i < driver.flow_count(); ++i) {
    if (driver.flow_done(i)) ++done;
  }
  EXPECT_EQ(done, 8u);  // every mouse reached flow_done
  EXPECT_EQ(driver.live_flows(), 1u);
  // High-water concurrency was wave 1 (video + 4 mice); wave 2 reused the
  // freed slots instead of growing the columns.
  EXPECT_LE(driver.flow_table().capacity(), 5u);
}

TEST(FabricTest, ManyFlowDriverRunUntilRejectsMultiDomainFabrics) {
  // Multi-domain fabrics are accepted (that is the point of sharding) but
  // must be driven through a DomainRunner, not the in-place run_until.
  Fabric f(fat_tree(2, 1, 1, /*domain_per_pod=*/true));
  ManyFlowDriver driver(f, {}, ManyFlowDriverConfig{});
  driver.start();
  EXPECT_THROW(driver.run_until(kSecond), std::logic_error);
}

TEST(FabricTest, ManyFlowDriverShardsPartitionBySourceDomain) {
  Fabric f(fat_tree(2, 2, 2, /*domain_per_pod=*/true));
  MixedTrafficConfig mix;
  mix.video_flows = 10;
  mix.mice_flows = 5;
  mix.seed = 11;
  ManyFlowDriver driver(f, gen_mixed_traffic(f, mix), ManyFlowDriverConfig{});
  ASSERT_EQ(driver.shard_count(), 3u);  // core + 2 pods
  // The core domain owns no hosts, so its shard owns no flows; the pod
  // shards' tables grow to their own populations once everything activates.
  driver.start();
  DomainRunner runner(f.topology(), 1);
  runner.run_until(2 * kSecond);
  EXPECT_EQ(driver.flow_table(0).capacity(), 0u);
  EXPECT_GT(driver.flow_table(1).capacity(), 0u);
  EXPECT_GT(driver.flow_table(2).capacity(), 0u);
}

TEST(FabricTest, ManyFlowDriverShardedFatTreeByteIdenticalAcrossThreads) {
  // The tentpole pin: one driver shard per pod under DomainRunner, and the
  // end state (per-flow sends, rate/gamma bit patterns, deliveries) is
  // byte-identical whatever the thread count. Threads beyond the hardware
  // (8 on CI boxes) exercise oversubscription clamping too.
  const auto run = [](std::size_t threads) {
    Fabric f(fat_tree(2, 2, 2, /*domain_per_pod=*/true));
    MixedTrafficConfig mix;
    mix.video_flows = 12;
    mix.mice_flows = 8;
    mix.elephant_flows = 2;
    mix.seed = 7;
    ManyFlowDriverConfig cfg;
    ManyFlowDriver driver(f, gen_mixed_traffic(f, mix), cfg);
    f.reserve_runtime(driver.flow_count());
    driver.start();
    DomainRunner runner(f.topology(), threads);
    runner.run_until(4 * kSecond);
    EXPECT_GT(runner.stats().handoffs, 0u);  // cross-pod feedback flowed
    return std::tuple{driver.fingerprint(), driver.packets_sent(),
                      driver.packets_received(), driver.bytes_received()};
  };
  const auto serial = run(1);
  EXPECT_GT(std::get<1>(serial), 1000u);
  EXPECT_GT(std::get<2>(serial), 0u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(FabricTest, ManyFlowDriverClassCountsSplitTheMix) {
  Fabric f(parking_lot(2));
  MixedTrafficConfig mix;
  mix.video_flows = 6;
  mix.mice_flows = 4;
  mix.elephant_flows = 2;
  ManyFlowDriver driver(f, gen_mixed_traffic(f, mix), ManyFlowDriverConfig{});
  f.reserve_runtime(driver.flow_count());
  driver.start();
  driver.run_until(4 * kSecond);

  const auto video = driver.class_counts(TrafficClass::kVideo);
  const auto mice = driver.class_counts(TrafficClass::kMice);
  const auto elephants = driver.class_counts(TrafficClass::kElephant);
  EXPECT_EQ(video.flows, 6u);
  EXPECT_EQ(mice.flows, 4u);
  EXPECT_EQ(elephants.flows, 2u);
  EXPECT_GT(video.packets_delivered, 0u);
  EXPECT_GT(video.bytes_delivered, video.packets_delivered);  // >1 B packets
  EXPECT_EQ(video.packets_sent + mice.packets_sent + elephants.packets_sent,
            driver.packets_sent());
  EXPECT_EQ(video.packets_delivered + mice.packets_delivered + elephants.packets_delivered,
            driver.packets_received());
  EXPECT_EQ(video.bytes_delivered + mice.bytes_delivered + elephants.bytes_delivered,
            driver.bytes_received());
}

}  // namespace
}  // namespace pels
