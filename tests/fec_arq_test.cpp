// Tests for the FEC comparator model and the ARQ (retransmission) agents —
// the two repair strategies the paper's §1 argues against.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cc/tcp_like.h"
#include "net/topology.h"
#include "pels/arq.h"
#include "queue/bernoulli.h"
#include "queue/drop_tail.h"
#include "util/rng.h"
#include "video/fec.h"

namespace pels {
namespace {

// ------------------------------------------------------------------- FEC

TEST(FecModelTest, NoLossAlwaysRecovers) {
  FecConfig cfg;
  EXPECT_DOUBLE_EQ(fec_block_recovery_probability(cfg, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fec_expected_prefix_blocks(cfg, 0.0, 7), 7.0);
}

TEST(FecModelTest, TotalLossRecoversNothing) {
  FecConfig cfg;
  EXPECT_DOUBLE_EQ(fec_block_recovery_probability(cfg, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fec_expected_prefix_blocks(cfg, 1.0, 7), 0.0);
}

TEST(FecModelTest, NoParityMatchesPlainBernoulli) {
  // m = 0: a block survives iff all k packets survive.
  FecConfig cfg;
  cfg.data_packets = 10;
  cfg.parity_packets = 0;
  const double p = 0.07;
  EXPECT_NEAR(fec_block_recovery_probability(cfg, p), std::pow(1.0 - p, 10), 1e-12);
}

TEST(FecModelTest, SinglePacketBlockWithOneParity) {
  // k = 1, m = 1: recovered unless both copies die: 1 - p^2.
  FecConfig cfg;
  cfg.data_packets = 1;
  cfg.parity_packets = 1;
  EXPECT_NEAR(fec_block_recovery_probability(cfg, 0.3), 1.0 - 0.09, 1e-12);
}

TEST(FecModelTest, MoreParityHelpsUntilOverheadDominates) {
  const double p = 0.10;
  double prev = 0.0;
  for (int m : {0, 1, 2, 4}) {
    FecConfig cfg;
    cfg.parity_packets = m;
    const double q = fec_block_recovery_probability(cfg, p);
    EXPECT_GT(q, prev);
    prev = q;
  }
  // ... but goodput efficiency is capped at 1 - overhead even at p = 0.
  FecConfig heavy;
  heavy.parity_packets = 4;
  EXPECT_NEAR(fec_goodput_efficiency(heavy, 0.0, 5), 1.0 - heavy.overhead(), 1e-12);
}

TEST(FecModelTest, MonteCarloMatchesClosedForm) {
  Rng rng(5);
  FecConfig cfg;
  cfg.data_packets = 10;
  cfg.parity_packets = 2;
  for (double p : {0.02, 0.1, 0.25}) {
    const double model = fec_expected_prefix_blocks(cfg, p, 6);
    const double sim = fec_simulate_prefix_blocks(cfg, p, 6, 100'000, rng);
    EXPECT_NEAR(sim, model, std::max(0.02 * model, 0.01)) << "p=" << p;
  }
}

TEST(FecModelTest, OverheadFormula) {
  FecConfig cfg;
  cfg.data_packets = 10;
  cfg.parity_packets = 2;
  EXPECT_NEAR(cfg.overhead(), 2.0 / 12.0, 1e-12);
  EXPECT_EQ(cfg.block_packets(), 12);
}

// ------------------------------------------------------------------- ARQ

struct ArqHarness {
  explicit ArqHarness(double loss, SimTime extra_delay = 0, ArqConfig config = {})
      : sim(3), topo(sim), cfg(config) {
    Host& vsrc = topo.add_host("vsrc");
    Router& r1 = topo.add_router("r1");
    Host& vdst = topo.add_host("vdst");
    const QueueFactory edge = [](double) { return std::make_unique<DropTailQueue>(2000); };
    const QueueFactory lossy = [this, loss](double) {
      return std::make_unique<BernoulliDropQueue>(sim.make_rng(4), loss, 2000);
    };
    topo.connect(vsrc, r1, 10e6, from_millis(2), edge);
    topo.add_link(r1, vdst, 2e6, from_millis(10) + extra_delay, lossy);
    topo.add_link(vdst, r1, 2e6, from_millis(10) + extra_delay, edge);
    topo.compute_routes();
    source = std::make_unique<ArqSource>(sim, vsrc, 1, vdst.id(), cfg);
    sink = std::make_unique<ArqSink>(sim, vdst, 1, vsrc.id(), cfg);
    source->start(0);
  }
  void run(SimTime t) {
    sim.run_until(t);
    source->stop();
    sim.run_until(t + 2 * kSecond);
    sink->finalize(sim.now());
  }
  Simulation sim;
  Topology topo;
  ArqConfig cfg;
  std::unique_ptr<ArqSource> source;
  std::unique_ptr<ArqSink> sink;
};

TEST(ArqTest, LosslessPathNeedsNoRepair) {
  ArqHarness h(0.0);
  h.run(10 * kSecond);
  EXPECT_EQ(h.source->retransmissions(), 0u);
  EXPECT_EQ(h.sink->nacks_sent(), 0u);
  EXPECT_NEAR(h.sink->mean_prefix_fraction(), 1.0, 1e-9);
}

TEST(ArqTest, RepairsRandomLossWithinDeadline) {
  // 5% random loss, short RTT (~24 ms), 400 ms deadline: nearly everything
  // is repaired in time.
  ArqHarness h(0.05);
  h.run(20 * kSecond);
  EXPECT_GT(h.source->retransmissions(), 0u);
  EXPECT_GT(h.sink->mean_prefix_fraction(), 0.97);
}

TEST(ArqTest, LongRttDefeatsRepair) {
  // Same loss, but one-way propagation pushed past the deadline: repair
  // cannot arrive in time (the §1 argument in its purest form).
  ArqConfig cfg;
  cfg.deadline = from_millis(400);
  ArqHarness h(0.05, from_millis(500), cfg);
  h.run(20 * kSecond);
  // Originals arrive late too (510 ms one-way > deadline measured from send).
  EXPECT_LT(h.sink->mean_prefix_fraction(), 0.05);
}

TEST(ArqTest, RetransmissionBudgetIsRespected) {
  // Heavy loss: per-packet retransmissions must never exceed the budget.
  ArqConfig cfg;
  cfg.max_retransmissions = 2;
  ArqHarness h(0.5, 0, cfg);
  h.run(10 * kSecond);
  EXPECT_LE(h.source->retransmissions(),
            h.source->packets_sent());  // bounded: <= budget share of originals
  // With <=2 retx each packet lands w.p. ~1-0.5^3 = 0.875; the 25-packet
  // prefix rule then gives E[prefix]/25 ~ 0.26. Repair lands, but partially.
  EXPECT_GT(h.sink->mean_prefix_fraction(), 0.15);
  EXPECT_LT(h.sink->mean_prefix_fraction(), 0.40);
}

TEST(ArqTest, ScoresEveryFrame) {
  ArqHarness h(0.1);
  h.run(10 * kSecond);
  // 10 s at 10 fps = 100 frames (+/- the final partial one).
  EXPECT_GE(h.sink->prefix_fraction().size(), 99u);
  EXPECT_LE(h.sink->prefix_fraction().size(), 101u);
}

TEST(ArqTest, PacketsPerFrameDerivation) {
  ArqConfig cfg;
  cfg.rate_bps = 1e6;
  cfg.fps = 10.0;
  cfg.packet_size_bytes = 500;
  EXPECT_EQ(cfg.packets_per_frame(), 25);
}

}  // namespace
}  // namespace pels
