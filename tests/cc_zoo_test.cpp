// Tests for the congestion-controller zoo (cc/cubic, cc/dcqcn, cc/swift,
// cc/scream_lite): per-kernel dynamics, the ECN-mark reactions the fairness
// matrix depends on, and the FlowTable determinism contract — per-object
// controllers, table-backed controllers (single-flow apply path), and the
// staged batch path must produce bit-for-bit identical state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cc/aimd.h"
#include "cc/cubic.h"
#include "cc/dcqcn.h"
#include "cc/flow_table.h"
#include "cc/scream_lite.h"
#include "cc/swift.h"
#include "cc/tfrc_lite.h"

namespace pels {
namespace {

// ------------------------------------------------------------------ CUBIC

TEST(CubicTest, SlowStartRampBeforeFirstEvent) {
  CubicConfig cfg;
  CubicController cubic(cfg);
  cubic.set_rtt(from_millis(100));
  cubic.on_control_tick(0);
  EXPECT_DOUBLE_EQ(cubic.cwnd_pkts(), cfg.initial_cwnd_pkts * cfg.slow_start_growth);
  cubic.on_control_tick(from_millis(200));
  EXPECT_DOUBLE_EQ(cubic.cwnd_pkts(),
                   cfg.initial_cwnd_pkts * cfg.slow_start_growth * cfg.slow_start_growth);
}

TEST(CubicTest, LossEventCutsWindowAndRemembersPlateau) {
  CubicConfig cfg;
  CubicController cubic(cfg);
  cubic.set_rtt(from_millis(100));
  const double before = cubic.cwnd_pkts();
  cubic.on_loss_interval(0.1, from_millis(500));
  EXPECT_DOUBLE_EQ(cubic.w_max(), before);
  EXPECT_DOUBLE_EQ(cubic.cwnd_pkts(), before * cfg.beta);
  EXPECT_DOUBLE_EQ(cubic.rate_bps(),
                   cubic_rate_from_cwnd(cfg, before * cfg.beta, from_millis(100)));
}

TEST(CubicTest, EcnMarkBacksOffGentlerThanLoss) {
  CubicConfig cfg;
  CubicController lossy(cfg);
  CubicController marked(cfg);
  lossy.set_rtt(from_millis(100));
  marked.set_rtt(from_millis(100));
  lossy.on_loss_interval(0.1, 0);
  marked.on_mark_fraction(0.1, 0);
  EXPECT_DOUBLE_EQ(lossy.cwnd_pkts(), cfg.initial_cwnd_pkts * cfg.beta);
  EXPECT_DOUBLE_EQ(marked.cwnd_pkts(), cfg.initial_cwnd_pkts * cfg.ecn_beta);
  EXPECT_GT(marked.cwnd_pkts(), lossy.cwnd_pkts());
}

TEST(CubicTest, ConcaveThenConvexGrowthAroundPlateau) {
  // After an event the window follows W(t) = C (t-K)^3 + W_max: per-tick
  // increments shrink approaching the plateau (concave region) and grow
  // beyond it (convex probing). A long RTT keeps the Reno-friendly floor
  // negligible so the pure cubic curve is observable.
  CubicConfig cfg;
  cfg.initial_cwnd_pkts = 100.0;
  CubicController cubic(cfg);
  cubic.set_rtt(from_millis(500));
  cubic.on_loss_interval(0.1, 0);
  const double k_sec = std::cbrt(cfg.initial_cwnd_pkts * (1.0 - cfg.beta) / cfg.c);

  std::vector<double> t_sec;
  std::vector<double> cwnd;
  for (int i = 1; i <= 34; ++i) {
    const SimTime now = i * from_millis(250);
    cubic.on_control_tick(now);
    t_sec.push_back(to_seconds(now));
    cwnd.push_back(cubic.cwnd_pkts());
  }
  int concave_pairs = 0;
  int convex_pairs = 0;
  for (std::size_t i = 2; i < cwnd.size(); ++i) {
    const double prev_delta = cwnd[i - 1] - cwnd[i - 2];
    const double delta = cwnd[i] - cwnd[i - 1];
    if (t_sec[i] < k_sec - 0.5) {
      EXPECT_LT(delta, prev_delta) << "not concave at t=" << t_sec[i];
      ++concave_pairs;
    } else if (t_sec[i - 2] > k_sec + 0.5) {
      EXPECT_GT(delta, prev_delta) << "not convex at t=" << t_sec[i];
      ++convex_pairs;
    }
    EXPECT_GE(delta, 0.0) << "window shrank without an event at t=" << t_sec[i];
  }
  EXPECT_GE(concave_pairs, 5);
  EXPECT_GE(convex_pairs, 5);
  EXPECT_GT(cwnd.back(), cfg.initial_cwnd_pkts);  // probing passed the plateau
}

TEST(CubicTest, TcpFriendlyRegionFloorsTheWindow) {
  // With a short RTT the Reno-equivalent estimate grows faster than the
  // early cubic curve and must floor the window (RFC 9438 §4.3).
  CubicConfig cfg;
  cfg.initial_cwnd_pkts = 100.0;
  CubicController cubic(cfg);
  const SimTime rtt = from_millis(50);
  cubic.set_rtt(rtt);
  cubic.on_loss_interval(0.1, 0);
  const SimTime now = 3 * kSecond;  // past the w_est/target crossover
  cubic.on_control_tick(now);

  const double t = to_seconds(now);
  const double k = std::cbrt(cfg.initial_cwnd_pkts * (1.0 - cfg.beta) / cfg.c);
  const double target =
      cfg.initial_cwnd_pkts + cfg.c * (t - k) * (t - k) * (t - k);
  const double w_est = cfg.initial_cwnd_pkts * cfg.beta +
                       3.0 * (1.0 - cfg.beta) / (1.0 + cfg.beta) * (t / to_seconds(rtt));
  ASSERT_GT(w_est, target);  // precondition: the friendly region governs here
  EXPECT_DOUBLE_EQ(cubic.cwnd_pkts(), w_est);
}

// ------------------------------------------------------------------ DCQCN

TEST(DcqcnTest, MarkedIntervalCutsRateByHalfAlpha) {
  DcqcnConfig cfg;
  DcqcnController dcqcn(cfg);
  dcqcn.on_mark_fraction(0.3, 0);
  // initial_alpha = 1: the first cut halves RC and remembers it as RT.
  EXPECT_DOUBLE_EQ(dcqcn.rate_bps(), cfg.initial_rate_bps * 0.5);
  EXPECT_DOUBLE_EQ(dcqcn.target_rate_bps(), cfg.initial_rate_bps);
  EXPECT_EQ(dcqcn.recovery_stage(), 0);
}

TEST(DcqcnTest, AlphaDecaysOnCleanIntervals) {
  DcqcnConfig cfg;
  DcqcnController dcqcn(cfg);
  dcqcn.on_mark_fraction(0.3, 0);
  const double alpha_after_mark = dcqcn.alpha();
  for (int i = 0; i < 3; ++i) dcqcn.on_mark_fraction(0.0, 0);
  EXPECT_DOUBLE_EQ(dcqcn.alpha(),
                   alpha_after_mark * std::pow(1.0 - cfg.alpha_g, 3.0));
}

TEST(DcqcnTest, FastRecoveryHalvesGapThenActiveIncreaseRaisesTarget) {
  DcqcnConfig cfg;
  DcqcnController dcqcn(cfg);
  dcqcn.on_mark_fraction(0.3, 0);  // RC = 64k, RT = 128k
  double expected_rate = cfg.initial_rate_bps * 0.5;
  for (int stage = 1; stage <= cfg.fast_recovery_stages; ++stage) {
    dcqcn.on_mark_fraction(0.0, 0);
    expected_rate = 0.5 * (cfg.initial_rate_bps + expected_rate);
    EXPECT_DOUBLE_EQ(dcqcn.rate_bps(), expected_rate) << "stage " << stage;
    EXPECT_DOUBLE_EQ(dcqcn.target_rate_bps(), cfg.initial_rate_bps)
        << "target must not move during fast recovery";
  }
  dcqcn.on_mark_fraction(0.0, 0);  // first active-increase stage
  EXPECT_DOUBLE_EQ(dcqcn.target_rate_bps(), cfg.initial_rate_bps + cfg.rate_ai_bps);
  EXPECT_GT(dcqcn.rate_bps(), expected_rate);
}

TEST(DcqcnTest, LossActsLikeMarkedInterval) {
  DcqcnConfig cfg;
  DcqcnController marked(cfg);
  DcqcnController lossy(cfg);
  marked.on_mark_fraction(0.3, 0);
  lossy.on_loss_interval(0.3, 0);
  EXPECT_DOUBLE_EQ(lossy.rate_bps(), marked.rate_bps());
  EXPECT_DOUBLE_EQ(lossy.alpha(), marked.alpha());
}

// ------------------------------------------------------------------ Swift

TEST(SwiftTest, BelowQLowAlwaysIncreases) {
  SwiftConfig cfg;
  SimTime prev = 0, min_rtt = 0;
  double rate = cfg.initial_rate_bps;
  swift_tick_step(cfg, from_millis(40), prev, min_rtt, rate);  // primes memories
  EXPECT_DOUBLE_EQ(rate, cfg.initial_rate_bps);
  // qdelay = 2 ms < q_low even though the RTT is rising: additive increase.
  swift_tick_step(cfg, from_millis(42), prev, min_rtt, rate);
  EXPECT_DOUBLE_EQ(rate, cfg.initial_rate_bps + cfg.ai_bps);
}

TEST(SwiftTest, AboveQHighCutsProportionallyToOvershoot) {
  SwiftConfig cfg;
  SimTime prev = 0, min_rtt = 0;
  double rate = cfg.initial_rate_bps;
  swift_tick_step(cfg, from_millis(40), prev, min_rtt, rate);
  swift_tick_step(cfg, from_millis(140), prev, min_rtt, rate);  // qdelay 100 ms
  const double over = 1.0 - to_seconds(cfg.q_high) / to_seconds(from_millis(100));
  EXPECT_DOUBLE_EQ(rate, cfg.initial_rate_bps * (1.0 - cfg.md_gain * over));
}

TEST(SwiftTest, GradientSignDecidesInsideTheBand) {
  SwiftConfig cfg;
  // Rising RTT with qdelay inside (q_low, q_high): multiplicative decrease
  // proportional to the normalized gradient.
  {
    SimTime prev = 0, min_rtt = 0;
    double rate = cfg.initial_rate_bps;
    swift_tick_step(cfg, from_millis(40), prev, min_rtt, rate);
    swift_tick_step(cfg, from_millis(50), prev, min_rtt, rate);  // qdelay 10 ms, rising
    const double grad = to_seconds(from_millis(10)) / to_seconds(cfg.gradient_scale);
    EXPECT_DOUBLE_EQ(rate, cfg.initial_rate_bps * (1.0 - cfg.md_gain * grad));
  }
  // Falling RTT at the same qdelay: additive increase.
  {
    SimTime prev = 0, min_rtt = 0;
    double rate = cfg.initial_rate_bps;
    swift_tick_step(cfg, from_millis(40), prev, min_rtt, rate);
    swift_tick_step(cfg, from_millis(60), prev, min_rtt, rate);
    const double after_rise = rate;
    swift_tick_step(cfg, from_millis(55), prev, min_rtt, rate);  // qdelay 15 ms, falling
    EXPECT_DOUBLE_EQ(rate, after_rise + cfg.ai_bps);
  }
}

// ------------------------------------------------------------- SCReAM-lite

TEST(ScreamTest, RampScalesWithHeadroom) {
  ScreamLiteConfig cfg;
  ScreamLiteController scream(cfg);
  scream.set_rtt(from_millis(40));  // primes min_rtt: qdelay 0, full headroom
  scream.on_control_tick(0);
  EXPECT_DOUBLE_EQ(scream.rate_bps(), cfg.initial_rate_bps + cfg.increase_bps);
  // Half the target qdelay leaves half the headroom.
  ScreamLiteController half(cfg);
  half.set_rtt(from_millis(40));
  half.set_rtt(from_millis(40) + cfg.qdelay_target / 2);
  half.on_control_tick(0);
  EXPECT_DOUBLE_EQ(half.rate_bps(), cfg.initial_rate_bps + cfg.increase_bps * 0.5);
}

TEST(ScreamTest, ShrinkProportionalToOvershoot) {
  ScreamLiteConfig cfg;
  ScreamLiteController scream(cfg);
  scream.set_rtt(from_millis(40));
  scream.set_rtt(from_millis(40) + 2 * cfg.qdelay_target);  // overshoot = 1 (capped)
  scream.on_control_tick(0);
  EXPECT_DOUBLE_EQ(scream.rate_bps(),
                   cfg.initial_rate_bps * (1.0 - cfg.decrease_gain));
}

TEST(ScreamTest, LossAndMarkBackoffsFloorAtBeta) {
  ScreamLiteConfig cfg;
  ScreamLiteController scream(cfg);
  scream.on_loss_interval(0.5, 0);  // 1 - p = 0.5 < loss_beta: floored
  EXPECT_DOUBLE_EQ(scream.rate_bps(), cfg.initial_rate_bps * cfg.loss_beta);
  ScreamLiteController gentle(cfg);
  gentle.on_mark_fraction(0.02, 0);  // 1 - f = 0.98 > mark_beta: proportional
  EXPECT_DOUBLE_EQ(gentle.rate_bps(), cfg.initial_rate_bps * 0.98);
  ScreamLiteController floored(cfg);
  floored.on_mark_fraction(0.5, 0);
  EXPECT_DOUBLE_EQ(floored.rate_bps(), cfg.initial_rate_bps * cfg.mark_beta);
}

// -------------------------------------------- ECN regressions (TFRC, AIMD)

TEST(TfrcEcnTest, MarkedNotDroppedIntervalReducesRate) {
  // Satellite regression: a clean-delivery interval whose packets carried CE
  // marks must reduce the rate exactly like a lossy one (RFC 8087 §4.1).
  TfrcLiteConfig cfg;
  TfrcLiteController tfrc(cfg);
  TfrcLiteController lossy(cfg);
  // Ramp both to a high operating point first (idle-link feedback doubles
  // the rate while no loss event has been seen).
  for (int i = 0; i < 5; ++i) {
    tfrc.on_router_feedback(-1.0, i * kSecond);
    lossy.on_router_feedback(-1.0, i * kSecond);
  }
  const double before = tfrc.rate_bps();
  tfrc.on_mark_fraction(0.2, 5 * kSecond);
  EXPECT_LT(tfrc.rate_bps(), before);
  EXPECT_GT(tfrc.smoothed_loss(), 0.0);

  lossy.on_loss_interval(0.2, 5 * kSecond);
  EXPECT_DOUBLE_EQ(tfrc.rate_bps(), lossy.rate_bps());
}

TEST(TfrcEcnTest, MarkFreeIntervalDoesNotDoubleDecay) {
  // The mark path folds into the loss-event EWMA only when f > 0; a clean
  // interval must not decay the estimate a second time (the loss path
  // already saw its own interval sample).
  TfrcLiteConfig cfg;
  TfrcLiteController tfrc(cfg);
  tfrc.on_mark_fraction(0.2, 0);
  const double smoothed = tfrc.smoothed_loss();
  const double rate = tfrc.rate_bps();
  tfrc.on_mark_fraction(0.0, kSecond);
  EXPECT_DOUBLE_EQ(tfrc.smoothed_loss(), smoothed);
  EXPECT_DOUBLE_EQ(tfrc.rate_bps(), rate);
}

TEST(AimdEcnTest, MarkBacksOffUnderSharedGuard) {
  AimdConfig cfg;
  AimdController aimd(cfg);
  aimd.on_mark_fraction(0.1, kSecond);
  EXPECT_DOUBLE_EQ(aimd.rate_bps(), cfg.initial_rate_bps * cfg.decrease_factor);
  EXPECT_EQ(aimd.decreases(), 1u);
  // A positive router label inside the guard window is the same congestion
  // episode: no second cut (the additive term is also skipped on decrease).
  aimd.on_router_feedback(0.5, kSecond + cfg.backoff_guard / 2);
  EXPECT_EQ(aimd.decreases(), 1u);
  // Past the guard, a new marked interval backs off again.
  aimd.on_mark_fraction(0.1, kSecond + 2 * cfg.backoff_guard);
  EXPECT_EQ(aimd.decreases(), 2u);
  EXPECT_DOUBLE_EQ(aimd.rate_bps(),
                   cfg.initial_rate_bps * cfg.decrease_factor * cfg.decrease_factor);
}

// ------------------------------------------- FlowTable determinism contract

// Deterministic xorshift input schedule shared by every path.
struct ZooDriveInputs {
  SimTime now;
  SimTime rtt;        // 0 = no sample this tick
  double loss;        // <= 0 = no loss interval this tick
  double mark;        // < 0 = no mark delivery; 0 = clean marked interval
};

std::vector<ZooDriveInputs> make_drive(int ticks) {
  std::vector<ZooDriveInputs> out;
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  const auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int i = 0; i < ticks; ++i) {
    ZooDriveInputs in;
    in.now = (i + 1) * from_millis(200);
    in.rtt = (next() % 4 != 0) ? from_millis(20 + static_cast<int>(next() % 120)) : 0;
    in.loss = (next() % 11 == 0) ? 0.01 * static_cast<double>(1 + next() % 20) : 0.0;
    // Marks are delivered every tick (the source reports the interval's mark
    // fraction whenever packets arrived), mostly 0.
    in.mark = (next() % 7 == 0) ? 0.05 * static_cast<double>(1 + next() % 10) : 0.0;
    out.push_back(in);
  }
  return out;
}

// Drives a per-object controller with the PelsSource control-clock order:
// rtt, loss interval, mark fraction, control tick.
void drive_object(CongestionController& cc, const std::vector<ZooDriveInputs>& drive) {
  for (const auto& in : drive) {
    if (in.rtt > 0) cc.set_rtt(in.rtt);
    if (in.loss > 0.0) cc.on_loss_interval(in.loss, in.now);
    cc.on_mark_fraction(in.mark, in.now);
    cc.on_control_tick(in.now);
  }
}

// Same schedule through the staged batch path.
void drive_batch(FlowTable& table, FlowSlot slot,
                 const std::vector<ZooDriveInputs>& drive) {
  for (const auto& in : drive) {
    if (in.rtt > 0) table.stage_rtt(slot, in.rtt);
    if (in.loss > 0.0) table.stage_loss_interval(slot, in.loss);
    table.stage_mark_fraction(slot, in.mark);
    table.stage_control_tick(slot);
    table.batch_control_tick(in.now);
  }
}

class ZooParityTest : public ::testing::TestWithParam<CcKind> {};

TEST_P(ZooParityTest, ObjectTableAndBatchPathsAreBitIdentical) {
  const CcKind kind = GetParam();
  const CcZooConfig zoo;
  const auto drive = make_drive(200);

  // Path 1: plain per-object controller.
  std::unique_ptr<CongestionController> object;
  switch (kind) {
    case CcKind::kCubic: object = std::make_unique<CubicController>(zoo.cubic); break;
    case CcKind::kDcqcn: object = std::make_unique<DcqcnController>(zoo.dcqcn); break;
    case CcKind::kSwift: object = std::make_unique<SwiftController>(zoo.swift); break;
    case CcKind::kScream:
      object = std::make_unique<ScreamLiteController>(zoo.scream);
      break;
    case CcKind::kMkc: FAIL() << "zoo parity covers the non-MKC kinds"; return;
  }
  drive_object(*object, drive);

  // Path 2: table-backed controller (single-flow apply_* calls).
  FlowTable applied(MkcConfig{}, GammaConfig{}, zoo);
  const FlowSlot applied_slot = applied.add_flow(kind);
  std::unique_ptr<CongestionController> backed;
  switch (kind) {
    case CcKind::kCubic:
      backed = std::make_unique<CubicController>(applied, applied_slot);
      break;
    case CcKind::kDcqcn:
      backed = std::make_unique<DcqcnController>(applied, applied_slot);
      break;
    case CcKind::kSwift:
      backed = std::make_unique<SwiftController>(applied, applied_slot);
      break;
    case CcKind::kScream:
      backed = std::make_unique<ScreamLiteController>(applied, applied_slot);
      break;
    case CcKind::kMkc: return;
  }
  drive_object(*backed, drive);

  // Path 3: staged batch updates.
  FlowTable batched(MkcConfig{}, GammaConfig{}, zoo);
  const FlowSlot batch_slot = batched.add_flow(kind);
  drive_batch(batched, batch_slot, drive);

  EXPECT_EQ(object->rate_bps(), backed->rate_bps());
  EXPECT_EQ(object->rate_bps(), batched.rate_bps(batch_slot));
  // DCQCN never consumes RTT (no set_rtt override), so its applied-path
  // table legitimately has no sRTT column updates; compare for the rest.
  if (kind != CcKind::kDcqcn) {
    EXPECT_EQ(applied.srtt(applied_slot), batched.srtt(batch_slot));
  }
  switch (kind) {
    case CcKind::kCubic: {
      auto& cubic = static_cast<CubicController&>(*object);
      EXPECT_EQ(cubic.cwnd_pkts(), batched.cubic_cwnd(batch_slot));
      EXPECT_EQ(cubic.w_max(), batched.cubic_wmax(batch_slot));
      EXPECT_EQ(applied.cubic_cwnd(applied_slot), batched.cubic_cwnd(batch_slot));
      break;
    }
    case CcKind::kDcqcn: {
      auto& dcqcn = static_cast<DcqcnController&>(*object);
      EXPECT_EQ(dcqcn.alpha(), batched.dcqcn_alpha(batch_slot));
      EXPECT_EQ(dcqcn.target_rate_bps(), batched.dcqcn_target(batch_slot));
      EXPECT_EQ(dcqcn.recovery_stage(), batched.dcqcn_stage(batch_slot));
      break;
    }
    case CcKind::kSwift: {
      EXPECT_EQ(applied.swift_prev_rtt(applied_slot), batched.swift_prev_rtt(batch_slot));
      EXPECT_EQ(applied.min_rtt(applied_slot), batched.min_rtt(batch_slot));
      break;
    }
    case CcKind::kScream: {
      EXPECT_EQ(applied.min_rtt(applied_slot), batched.min_rtt(batch_slot));
      break;
    }
    case CcKind::kMkc: break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooKinds, ZooParityTest,
                         ::testing::Values(CcKind::kCubic, CcKind::kDcqcn,
                                           CcKind::kSwift, CcKind::kScream),
                         [](const ::testing::TestParamInfo<CcKind>& info) {
                           // cc_kind_name() is for humans ("SCReAM-lite");
                           // gtest names must stay alphanumeric.
                           switch (info.param) {
                             case CcKind::kCubic: return std::string("Cubic");
                             case CcKind::kDcqcn: return std::string("Dcqcn");
                             case CcKind::kSwift: return std::string("Swift");
                             case CcKind::kScream: return std::string("Scream");
                             case CcKind::kMkc: break;
                           }
                           return std::string("Mkc");
                         });

TEST(FlowTableZooTest, ZooColumnsAreLazy) {
  FlowTable table(MkcConfig{}, GammaConfig{});
  table.reserve(64);
  for (int i = 0; i < 64; ++i) table.add_flow();
  EXPECT_FALSE(table.zoo_enabled());
  const std::size_t mkc_only = table.memory_bytes();
  const FlowSlot zoo_slot = table.add_flow(CcKind::kCubic);
  EXPECT_TRUE(table.zoo_enabled());
  EXPECT_EQ(table.kind(zoo_slot), CcKind::kCubic);
  EXPECT_GT(table.memory_bytes(), mkc_only);
}

}  // namespace
}  // namespace pels
