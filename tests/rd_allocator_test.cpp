// Tests for the R-D-aware constant-quality allocator (the paper's [5]
// extension) and its integration into the PELS source.
#include <gtest/gtest.h>

#include <numeric>

#include "pels/scenario.h"
#include "util/stats.h"
#include "video/rd_allocator.h"
#include "video/rd_model.h"

namespace pels {
namespace {

TEST(RdAllocatorTest, SpendsExactlyTheBudget) {
  RdModel rd;
  RdAllocator alloc(rd);
  const std::int64_t budget = 80'000;
  const auto xs = alloc.allocate(0, 8, budget, 61'400);
  ASSERT_EQ(xs.size(), 8u);
  EXPECT_EQ(std::accumulate(xs.begin(), xs.end(), std::int64_t{0}), budget);
  for (auto x : xs) {
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 61'400);
  }
}

TEST(RdAllocatorTest, BudgetBeyondCapsIsClipped) {
  RdModel rd;
  RdAllocator alloc(rd);
  const auto xs = alloc.allocate(0, 4, 10'000'000, 61'400);
  for (auto x : xs) EXPECT_EQ(x, 61'400);
}

TEST(RdAllocatorTest, ZeroBudgetGivesZeros) {
  RdModel rd;
  RdAllocator alloc(rd);
  for (auto x : alloc.allocate(0, 4, 0, 61'400)) EXPECT_EQ(x, 0);
}

TEST(RdAllocatorTest, EqualizesPsnrAcrossFrames) {
  // Pick a window spanning the high-motion pan (frames 300+) and quiet start:
  // per-frame complexity differs, so constant-byte allocation has a PSNR
  // spread; max-min allocation must flatten it.
  RdModel rd;
  RdAllocator alloc(rd);
  const std::int64_t first = 280;
  const int frames = 12;
  const std::int64_t budget = 12 * 15'000;

  const auto xs = alloc.allocate(first, frames, budget, 61'400);
  const auto levels = alloc.psnr_under(first, xs);
  RunningStats rd_aware;
  for (double v : levels) rd_aware.add(v);

  std::vector<std::int64_t> flat(static_cast<std::size_t>(frames), budget / frames);
  const auto flat_levels = alloc.psnr_under(first, flat);
  RunningStats constant;
  for (double v : flat_levels) constant.add(v);

  EXPECT_LT(rd_aware.max() - rd_aware.min(), 0.5 * (constant.max() - constant.min()));
  // Equal budgets: mean quality must not collapse to buy the flatness.
  EXPECT_GT(rd_aware.mean(), constant.mean() - 0.5);
}

TEST(RdAllocatorTest, HarderFramesGetMoreBytes) {
  RdModel rd;
  RdAllocator alloc(rd);
  // Frame 380 is deep in the pan (high complexity, low base PSNR); frame 20
  // is the quiet opening. A window containing both must favour the former.
  const auto xs = alloc.allocate(375, 10, 10 * 12'000, 61'400);
  const auto levels = alloc.psnr_under(375, xs);
  // All unpinned frames sit at (nearly) the same level.
  RunningStats s;
  for (std::size_t i = 0; i < levels.size(); ++i)
    if (xs[i] > 0 && xs[i] < 61'400) s.add(levels[i]);
  if (s.count() >= 2) EXPECT_LT(s.max() - s.min(), 0.25);
}

TEST(RdAllocatorTest, SingleFrameWindowTakesWholeBudget) {
  RdModel rd;
  RdAllocator alloc(rd);
  const auto xs = alloc.allocate(5, 1, 9'999, 61'400);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0], 9'999);
}

// ------------------------------------------------------- full-stack effect

TEST(RdAllocatorIntegration, SmoothsPsnrWithoutCostingMeanQuality) {
  auto run = [](bool rd_aware) {
    ScenarioConfig cfg;
    cfg.pels_flows = 2;
    cfg.tcp_flows = 3;
    cfg.seed = 7;
    cfg.rd_aware_scaling = rd_aware;
    DumbbellScenario s(cfg);
    s.run_until(42 * kSecond);
    s.finish();
    SampleSet psnr;
    for (const auto& q : s.sink(0).quality_for_frames(50, 400)) psnr.add(q.psnr_db);
    return psnr;
  };
  const SampleSet constant = run(false);
  const SampleSet rd_aware = run(true);
  const double constant_spread = constant.quantile(0.95) - constant.quantile(0.05);
  const double rd_spread = rd_aware.quantile(0.95) - rd_aware.quantile(0.05);
  EXPECT_LT(rd_spread, constant_spread * 0.8);
  EXPECT_GT(rd_aware.mean(), constant.mean() - 0.5);
}

}  // namespace
}  // namespace pels
