// Tests for src/queue: DropTail, Bernoulli random-drop, RED, strict
// priority, and weighted round-robin disciplines.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "queue/bernoulli.h"
#include "queue/drop_tail.h"
#include "queue/priority.h"
#include "queue/red.h"
#include "queue/wrr.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace pels {
namespace {

Packet make_packet(std::int32_t size, Color color = Color::kGreen,
                   std::uint64_t seq = 0) {
  Packet p;
  p.size_bytes = size;
  p.color = color;
  p.seq = seq;
  return p;
}

// --------------------------------------------------------------- DropTail

TEST(DropTailTest, FifoOrderPreserved) {
  DropTailQueue q(10);
  for (std::uint64_t i = 0; i < 5; ++i) q.enqueue(make_packet(100, Color::kGreen, i));
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailTest, PacketLimitEnforced) {
  DropTailQueue q(3);
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_FALSE(q.enqueue(make_packet(100)));
  EXPECT_EQ(q.packet_count(), 3u);
  EXPECT_EQ(q.counters().total_drops(), 1u);
  EXPECT_EQ(q.counters().total_arrivals(), 4u);
}

TEST(DropTailTest, ByteLimitEnforced) {
  DropTailQueue q(100, 250);
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_FALSE(q.enqueue(make_packet(100)));  // would reach 300 > 250
  EXPECT_EQ(q.byte_count(), 200);
}

TEST(DropTailTest, ByteCountTracksDequeues) {
  DropTailQueue q(10);
  q.enqueue(make_packet(100));
  q.enqueue(make_packet(200));
  EXPECT_EQ(q.byte_count(), 300);
  q.dequeue();
  EXPECT_EQ(q.byte_count(), 200);
}

TEST(DropTailTest, PeekShowsHeadWithoutRemoving) {
  DropTailQueue q(10);
  q.enqueue(make_packet(100, Color::kGreen, 7));
  const Packet* head = q.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->seq, 7u);
  EXPECT_EQ(q.packet_count(), 1u);
  EXPECT_EQ(q.peek(), head);
}

TEST(DropTailTest, DropHandlerInvoked) {
  DropTailQueue q(1);
  std::vector<std::uint64_t> dropped;
  q.set_drop_handler([&](const Packet& p) { dropped.push_back(p.seq); });
  q.enqueue(make_packet(100, Color::kGreen, 1));
  q.enqueue(make_packet(100, Color::kGreen, 2));
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 2u);
}

TEST(DropTailTest, PerColorCounters) {
  DropTailQueue q(2);
  q.enqueue(make_packet(100, Color::kGreen));
  q.enqueue(make_packet(100, Color::kRed));
  q.enqueue(make_packet(100, Color::kRed));  // dropped
  const auto& c = q.counters();
  EXPECT_EQ(c.arrivals[static_cast<std::size_t>(Color::kGreen)], 1u);
  EXPECT_EQ(c.arrivals[static_cast<std::size_t>(Color::kRed)], 2u);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(Color::kRed)], 1u);
  EXPECT_EQ(c.drops[static_cast<std::size_t>(Color::kGreen)], 0u);
  q.dequeue();
  EXPECT_EQ(c.departures[static_cast<std::size_t>(Color::kGreen)], 1u);
}

// -------------------------------------------------------------- Bernoulli

TEST(BernoulliTest, ZeroProbabilityDropsNothing) {
  BernoulliDropQueue q(Rng(1), 0.0, 1000);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_EQ(q.counters().total_drops(), 0u);
}

TEST(BernoulliTest, UnitProbabilityDropsEverything) {
  BernoulliDropQueue q(Rng(1), 1.0, 1000);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(q.enqueue(make_packet(100)));
  EXPECT_EQ(q.counters().total_drops(), 100u);
  EXPECT_EQ(q.packet_count(), 0u);
}

TEST(BernoulliTest, DropRateMatchesProbability) {
  BernoulliDropQueue q(Rng(2), 0.1, 1u << 20);
  const int n = 100000;
  for (int i = 0; i < n; ++i) q.enqueue(make_packet(100));
  const double rate = static_cast<double>(q.counters().total_drops()) / n;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(BernoulliTest, ExemptColorNeverRandomDropped) {
  BernoulliDropQueue q(Rng(3), 1.0, 1u << 20);
  q.set_exempt(Color::kGreen, true);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.enqueue(make_packet(100, Color::kGreen)));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(q.enqueue(make_packet(100, Color::kYellow)));
  EXPECT_EQ(q.packet_count(), 100u);
}

TEST(BernoulliTest, CapacityStillBounds) {
  BernoulliDropQueue q(Rng(4), 0.0, 5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(make_packet(100)));
  EXPECT_FALSE(q.enqueue(make_packet(100)));
}

TEST(BernoulliTest, SurvivorsKeepFifoOrder) {
  BernoulliDropQueue q(Rng(5), 0.5, 1000);
  for (std::uint64_t i = 0; i < 1000; ++i) q.enqueue(make_packet(100, Color::kGreen, i));
  std::uint64_t last = 0;
  bool first = true;
  while (auto p = q.dequeue()) {
    if (!first) {
      EXPECT_GT(p->seq, last);
    }
    last = p->seq;
    first = false;
  }
}

// -------------------------------------------------------------------- RED

RedConfig small_red() {
  RedConfig cfg;
  cfg.min_th = 2.0;
  cfg.max_th = 6.0;
  cfg.max_p = 0.5;
  cfg.weight = 0.5;  // fast-moving average for compact tests
  cfg.limit_packets = 12;
  cfg.mean_tx_time = from_millis(1);
  return cfg;
}

TEST(RedTest, NoDropsBelowMinThreshold) {
  Scheduler sched;
  RedQueue q(sched, Rng(1), small_red());
  // Keep instantaneous queue at 1: avg stays below min_th.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(100)));
    q.dequeue();
  }
  EXPECT_EQ(q.counters().total_drops(), 0u);
}

TEST(RedTest, DropsAppearUnderSustainedLoad) {
  Scheduler sched;
  RedQueue q(sched, Rng(2), small_red());
  int drops = 0;
  for (int i = 0; i < 200; ++i) {
    if (!q.enqueue(make_packet(100))) ++drops;
    if (i % 3 == 0) q.dequeue();  // drain slower than arrivals
  }
  EXPECT_GT(drops, 0);
  // RED must start dropping before the hard limit is the binding constraint.
  EXPECT_GT(q.average_queue(), small_red().min_th);
}

TEST(RedTest, ForcedDropAboveGentleCeiling) {
  Scheduler sched;
  RedConfig cfg = small_red();
  cfg.gentle = true;
  RedQueue q(sched, Rng(3), cfg);
  // Fill without draining: avg climbs past 2*max_th -> every arrival drops.
  int consecutive_drops = 0;
  for (int i = 0; i < 100; ++i) {
    if (!q.enqueue(make_packet(100))) {
      ++consecutive_drops;
    } else {
      consecutive_drops = 0;
    }
  }
  EXPECT_GT(consecutive_drops, 5);
}

TEST(RedTest, AverageDecaysWhileIdle) {
  Scheduler sched;
  RedConfig cfg = small_red();
  RedQueue q(sched, Rng(4), cfg);
  for (int i = 0; i < 8; ++i) q.enqueue(make_packet(100));
  while (q.dequeue().has_value()) {
  }
  const double avg_before = q.average_queue();
  ASSERT_GT(avg_before, 0.0);
  // Let the queue sit idle for many mean-tx-times, then touch it.
  sched.schedule_at(from_millis(100), [] {});
  sched.run();
  q.enqueue(make_packet(100));
  EXPECT_LT(q.average_queue(), avg_before * 0.1);
}

TEST(RedTest, HardLimitNeverExceeded) {
  Scheduler sched;
  RedQueue q(sched, Rng(5), small_red());
  for (int i = 0; i < 500; ++i) q.enqueue(make_packet(100));
  EXPECT_LE(q.packet_count(), small_red().limit_packets);
}

// -------------------------------------------------------- StrictPriority

StrictPriorityQueue make_priority(std::vector<std::size_t> limits = {4, 4, 4}) {
  return StrictPriorityQueue(std::move(limits), &StrictPriorityQueue::classify_by_color);
}

TEST(PriorityTest, HigherBandAlwaysServedFirst) {
  auto q = make_priority();
  q.enqueue(make_packet(100, Color::kRed, 1));
  q.enqueue(make_packet(100, Color::kYellow, 2));
  q.enqueue(make_packet(100, Color::kGreen, 3));
  EXPECT_EQ(q.dequeue()->color, Color::kGreen);
  EXPECT_EQ(q.dequeue()->color, Color::kYellow);
  EXPECT_EQ(q.dequeue()->color, Color::kRed);
}

TEST(PriorityTest, RedStarvedWhileGreenBacklogged) {
  auto q = make_priority({4, 4, 4});
  q.enqueue(make_packet(100, Color::kRed));
  for (int i = 0; i < 3; ++i) q.enqueue(make_packet(100, Color::kGreen));
  // Interleave new green arrivals with service: red never gets out.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.dequeue()->color, Color::kGreen);
    q.enqueue(make_packet(100, Color::kGreen));
  }
  EXPECT_EQ(q.band_packet_count(2), 1u);
}

TEST(PriorityTest, PerBandLimits) {
  auto q = make_priority({1, 1, 2});
  EXPECT_TRUE(q.enqueue(make_packet(100, Color::kGreen)));
  EXPECT_FALSE(q.enqueue(make_packet(100, Color::kGreen)));  // green band full
  EXPECT_TRUE(q.enqueue(make_packet(100, Color::kRed)));
  EXPECT_TRUE(q.enqueue(make_packet(100, Color::kRed)));
  EXPECT_FALSE(q.enqueue(make_packet(100, Color::kRed)));  // red band full
  EXPECT_EQ(q.counters().drops[static_cast<std::size_t>(Color::kGreen)], 1u);
  EXPECT_EQ(q.counters().drops[static_cast<std::size_t>(Color::kRed)], 1u);
}

TEST(PriorityTest, FifoWithinBand) {
  auto q = make_priority();
  q.enqueue(make_packet(100, Color::kYellow, 1));
  q.enqueue(make_packet(100, Color::kYellow, 2));
  q.enqueue(make_packet(100, Color::kYellow, 3));
  EXPECT_EQ(q.dequeue()->seq, 1u);
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_EQ(q.dequeue()->seq, 3u);
}

TEST(PriorityTest, AcksShareGreenBand) {
  auto q = make_priority();
  q.enqueue(make_packet(100, Color::kRed));
  q.enqueue(make_packet(40, Color::kAck));
  EXPECT_EQ(q.dequeue()->color, Color::kAck);
}

TEST(PriorityTest, PeekMatchesDequeue) {
  auto q = make_priority();
  q.enqueue(make_packet(100, Color::kRed, 5));
  q.enqueue(make_packet(100, Color::kGreen, 6));
  const Packet* head = q.peek();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->seq, 6u);
  EXPECT_EQ(q.dequeue()->seq, 6u);
}

TEST(PriorityTest, CountsAggregateAcrossBands) {
  auto q = make_priority();
  q.enqueue(make_packet(100, Color::kGreen));
  q.enqueue(make_packet(200, Color::kRed));
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.byte_count(), 300);
  q.dequeue();
  EXPECT_EQ(q.packet_count(), 1u);
  EXPECT_EQ(q.byte_count(), 200);
}

// -------------------------------------------------------------------- WRR

/// Builds a two-child WRR: child 0 = green traffic, child 1 = internet.
std::unique_ptr<WrrQueue> make_wrr(double w0, double w1) {
  std::vector<WrrQueue::Child> children;
  children.push_back({std::make_unique<DropTailQueue>(1000), w0});
  children.push_back({std::make_unique<DropTailQueue>(1000), w1});
  return std::make_unique<WrrQueue>(
      std::move(children),
      [](const Packet& p) { return p.color == Color::kInternet ? std::size_t{1} : 0; },
      1000);
}

TEST(WrrTest, EqualWeightsAlternateService) {
  auto q = make_wrr(1.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    q->enqueue(make_packet(500, Color::kGreen));
    q->enqueue(make_packet(500, Color::kInternet));
  }
  std::map<Color, int> served;
  for (int i = 0; i < 100; ++i) ++served[q->dequeue()->color];
  EXPECT_EQ(served[Color::kGreen], 50);
  EXPECT_EQ(served[Color::kInternet], 50);
}

TEST(WrrTest, WeightsControlByteShares) {
  auto q = make_wrr(3.0, 1.0);
  for (int i = 0; i < 400; ++i) {
    q->enqueue(make_packet(500, Color::kGreen));
    q->enqueue(make_packet(500, Color::kInternet));
  }
  std::map<Color, int> served;
  for (int i = 0; i < 200; ++i) ++served[q->dequeue()->color];
  EXPECT_NEAR(static_cast<double>(served[Color::kGreen]) / served[Color::kInternet], 3.0,
              0.3);
}

TEST(WrrTest, ByteBasedFairnessWithMixedPacketSizes) {
  // Child 0 sends 250-byte packets, child 1 sends 1000-byte packets; equal
  // weights must equalize *bytes*, so child 0 gets ~4x the packets.
  std::vector<WrrQueue::Child> children;
  children.push_back({std::make_unique<DropTailQueue>(4000), 1.0});
  children.push_back({std::make_unique<DropTailQueue>(4000), 1.0});
  WrrQueue q(std::move(children),
             [](const Packet& p) { return p.color == Color::kInternet ? std::size_t{1} : 0; },
             1000);
  for (int i = 0; i < 2000; ++i) {
    q.enqueue(make_packet(250, Color::kGreen));
    q.enqueue(make_packet(1000, Color::kInternet));
  }
  std::int64_t bytes[2] = {0, 0};
  for (int i = 0; i < 1000; ++i) {
    auto p = q.dequeue();
    bytes[p->color == Color::kInternet ? 1 : 0] += p->size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]), 1.0, 0.1);
}

TEST(WrrTest, IdleChildForfeitsBandwidth) {
  // With the internet child empty, the video child gets everything.
  auto q = make_wrr(1.0, 1.0);
  for (int i = 0; i < 50; ++i) q->enqueue(make_packet(500, Color::kGreen));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(q->dequeue()->color, Color::kGreen);
}

TEST(WrrTest, IdleChildCreditDoesNotAccumulate) {
  // DRR rule: an empty child's deficit resets, so a long-idle child cannot
  // burst far beyond its share when it wakes up.
  auto q = make_wrr(1.0, 1.0);
  for (int i = 0; i < 100; ++i) q->enqueue(make_packet(500, Color::kGreen));
  for (int i = 0; i < 100; ++i) q->dequeue();  // internet idle all along
  for (int i = 0; i < 20; ++i) {
    q->enqueue(make_packet(500, Color::kGreen));
    q->enqueue(make_packet(500, Color::kInternet));
  }
  std::map<Color, int> served;
  for (int i = 0; i < 20; ++i) ++served[q->dequeue()->color];
  EXPECT_NEAR(served[Color::kGreen], 10, 2);
}

TEST(WrrTest, DropsSurfaceThroughParentHandler) {
  std::vector<WrrQueue::Child> children;
  children.push_back({std::make_unique<DropTailQueue>(1), 1.0});
  children.push_back({std::make_unique<DropTailQueue>(1), 1.0});
  WrrQueue q(std::move(children),
             [](const Packet& p) { return p.color == Color::kInternet ? std::size_t{1} : 0; });
  int drops = 0;
  q.set_drop_handler([&](const Packet&) { ++drops; });
  q.enqueue(make_packet(100, Color::kGreen));
  EXPECT_FALSE(q.enqueue(make_packet(100, Color::kGreen)));
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(q.counters().total_drops(), 1u);
}

TEST(WrrTest, PeekIsSideEffectFreeAndConsistent) {
  auto q = make_wrr(1.0, 1.0);
  q->enqueue(make_packet(500, Color::kGreen, 1));
  q->enqueue(make_packet(500, Color::kInternet, 2));
  const Packet* h1 = q->peek();
  const Packet* h2 = q->peek();
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1, h2);  // repeated peeks agree
  EXPECT_EQ(q->dequeue()->seq, h1->seq);  // dequeue serves the peeked packet
}

TEST(WrrTest, EmptyQueueReturnsNothing) {
  auto q = make_wrr(1.0, 1.0);
  EXPECT_FALSE(q->dequeue().has_value());
  EXPECT_EQ(q->peek(), nullptr);
  EXPECT_EQ(q->packet_count(), 0u);
  EXPECT_EQ(q->byte_count(), 0);
}

TEST(WrrTest, FractionalWeightChildIsNotStarved) {
  // Regression: with quantum 5 and weight 0.1 the per-round credit
  // quantum * weight = 0.5 truncated to int64 is 0, so the child never
  // accumulated enough deficit to send and drr_select spun forever. The
  // credit is now rounded up and floored at 1 byte per round.
  std::vector<WrrQueue::Child> children;
  children.push_back({std::make_unique<DropTailQueue>(100), 1.0});
  children.push_back({std::make_unique<DropTailQueue>(100), 0.1});
  WrrQueue q(std::move(children),
             [](const Packet& p) { return p.color == Color::kInternet ? std::size_t{1} : 0; },
             5);
  for (int i = 0; i < 10; ++i) {
    q.enqueue(make_packet(4, Color::kGreen));
    q.enqueue(make_packet(4, Color::kInternet));
  }
  int internet_served = 0;
  for (int i = 0; i < 20; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());  // would hang/starve before the fix
    if (p->color == Color::kInternet) ++internet_served;
  }
  EXPECT_EQ(internet_served, 10);
}

TEST(WrrTest, PeekMatchesDequeueAcrossInterleavedEnqueues) {
  // The memoized selection must be invalidated by every enqueue: a new
  // arrival can change which child drr_select picks (e.g. wake an empty
  // child whose turn it is).
  auto q = make_wrr(1.0, 1.0);
  std::uint64_t seq = 0;
  q->enqueue(make_packet(500, Color::kGreen, seq++));
  for (int i = 0; i < 50; ++i) {
    const Packet* head = q->peek();
    ASSERT_NE(head, nullptr);
    q->enqueue(make_packet(500, i % 2 ? Color::kGreen : Color::kInternet, seq++));
    // The enqueue may have changed the selection; peek must agree with the
    // dequeue that follows it, not with the pre-enqueue snapshot.
    const Packet* fresh = q->peek();
    ASSERT_NE(fresh, nullptr);
    const std::uint64_t expect = fresh->seq;
    EXPECT_EQ(q->dequeue()->seq, expect);
  }
}

TEST(WrrTest, PeekTracksPriorityChildHeadChange) {
  // A StrictPriorityQueue child's head can change on enqueue (a green
  // arrival preempts a queued red packet). The cached head pointer must not
  // survive that.
  std::vector<WrrQueue::Child> children;
  children.push_back({std::make_unique<StrictPriorityQueue>(
                          std::vector<std::size_t>{10, 10, 10},
                          &StrictPriorityQueue::classify_by_color),
                      1.0});
  children.push_back({std::make_unique<DropTailQueue>(10), 1.0});
  WrrQueue q(std::move(children),
             [](const Packet& p) { return p.color == Color::kInternet ? std::size_t{1} : 0; },
             1000);
  q.enqueue(make_packet(500, Color::kRed, 1));
  const Packet* before = q.peek();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->seq, 1u);
  q.enqueue(make_packet(500, Color::kGreen, 2));  // jumps ahead of red
  const Packet* after = q.peek();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->seq, 2u);
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_EQ(q.dequeue()->seq, 1u);
}

TEST(WrrTest, ChildAccessors) {
  auto q = make_wrr(2.0, 1.0);
  EXPECT_EQ(q->child_count(), 2u);
  EXPECT_DOUBLE_EQ(q->weight(0), 2.0);
  EXPECT_DOUBLE_EQ(q->weight(1), 1.0);
  q->enqueue(make_packet(100, Color::kInternet));
  EXPECT_EQ(q->child(1).packet_count(), 1u);
  EXPECT_EQ(q->child(0).packet_count(), 0u);
}

}  // namespace
}  // namespace pels
