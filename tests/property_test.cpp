// Parameterized property sweeps across the queueing and control substrates:
// invariants that must hold for *every* configuration in a grid, not just
// the defaults the other suites exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "analysis/stability.h"
#include "cc/mkc.h"
#include "pels/scenario.h"
#include "queue/drop_tail.h"
#include "queue/priority.h"
#include "queue/red.h"
#include "queue/wrr.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace pels {
namespace {

Packet make_packet(std::int32_t size, Color color, std::uint64_t seq = 0) {
  Packet p;
  p.size_bytes = size;
  p.color = color;
  p.seq = seq;
  return p;
}

// ------------------------------------------- WRR weight-share property

class WrrWeightSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WrrWeightSweep, ServiceTracksWeightRatio) {
  const auto [w0, w1] = GetParam();
  std::vector<WrrQueue::Child> children;
  children.push_back({std::make_unique<DropTailQueue>(100'000), w0});
  children.push_back({std::make_unique<DropTailQueue>(100'000), w1});
  WrrQueue q(std::move(children),
             [](const Packet& p) { return p.color == Color::kInternet ? std::size_t{1} : 0; },
             1500);
  for (int i = 0; i < 60'000; ++i) {
    q.enqueue(make_packet(500, Color::kGreen));
    q.enqueue(make_packet(500, Color::kInternet));
  }
  std::int64_t bytes[2] = {0, 0};
  for (int i = 0; i < 30'000; ++i) {
    auto p = q.dequeue();
    bytes[p->color == Color::kInternet ? 1 : 0] += p->size_bytes;
  }
  const double expected = w0 / w1;
  const double observed = static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]);
  EXPECT_NEAR(observed / expected, 1.0, 0.05) << "w0=" << w0 << " w1=" << w1;
}

INSTANTIATE_TEST_SUITE_P(WeightGrid, WrrWeightSweep,
                         ::testing::Values(std::tuple{1.0, 1.0}, std::tuple{2.0, 1.0},
                                           std::tuple{1.0, 3.0}, std::tuple{5.0, 1.0},
                                           std::tuple{0.3, 0.7}, std::tuple{7.0, 3.0}));

// ----------------------------------- strict priority invariant property

class PriorityTrafficSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PriorityTrafficSweep, NeverServesLowerBandWhileHigherOccupied) {
  // Random interleaved enqueue/dequeue traffic: at every dequeue, the packet
  // must come from the highest-priority non-empty band.
  Rng rng(GetParam());
  StrictPriorityQueue q({64, 64, 64}, &StrictPriorityQueue::classify_by_color);
  const Color colors[] = {Color::kGreen, Color::kYellow, Color::kRed};
  std::size_t occupancy[3] = {0, 0, 0};
  for (int step = 0; step < 20'000; ++step) {
    if (rng.bernoulli(0.55)) {
      const auto c = colors[rng.uniform_int(0, 2)];
      const std::size_t band = StrictPriorityQueue::classify_by_color(make_packet(1, c));
      if (occupancy[band] < 64 && q.enqueue(make_packet(100, c))) ++occupancy[band];
    } else if (auto p = q.dequeue()) {
      const std::size_t band = StrictPriorityQueue::classify_by_color(*p);
      for (std::size_t higher = 0; higher < band; ++higher) {
        ASSERT_EQ(occupancy[higher], 0u) << "served band " << band
                                         << " while band " << higher << " occupied";
      }
      --occupancy[band];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityTrafficSweep, ::testing::Values(1u, 2u, 3u, 4u));

// ----------------------------------------------- RED configuration sweep

class RedConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(RedConfigSweep, DropRateIncreasesWithLoadAndStaysBounded) {
  const auto [min_th, max_th, max_p] = GetParam();
  RedConfig cfg;
  cfg.min_th = min_th;
  cfg.max_th = max_th;
  cfg.max_p = max_p;
  cfg.weight = 0.02;
  cfg.limit_packets = static_cast<std::size_t>(4 * max_th);

  auto run_load = [&](int drain_every) {
    Scheduler sched;
    RedQueue q(sched, Rng(11), cfg);
    int drops = 0;
    for (int i = 0; i < 20'000; ++i) {
      if (!q.enqueue(make_packet(500, Color::kInternet))) ++drops;
      if (i % drain_every == 0) q.dequeue();
      if (i % 2 == 0) q.dequeue();
    }
    return static_cast<double>(drops) / 20'000.0;
  };
  const double light = run_load(2);   // drain ~1.5 per arrival: queue stays low
  const double heavy = run_load(50);  // drain ~0.52 per arrival: overload
  EXPECT_LE(light, heavy);
  EXPECT_GT(heavy, 0.0);
  EXPECT_LT(light, 0.05) << "min=" << min_th << " max=" << max_th << " p=" << max_p;
}

INSTANTIATE_TEST_SUITE_P(Configs, RedConfigSweep,
                         ::testing::Values(std::tuple{5.0, 15.0, 0.1},
                                           std::tuple{10.0, 30.0, 0.05},
                                           std::tuple{20.0, 60.0, 0.2},
                                           std::tuple{2.0, 8.0, 0.5}));

// -------------------------------------------- MKC gain grid, full stack

class MkcGainGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MkcGainGrid, FullStackConvergesToStationaryRate) {
  const auto [alpha, beta] = GetParam();
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 3;
  cfg.seed = 3;
  cfg.mkc.alpha_bps = alpha;
  cfg.mkc.beta = beta;
  DumbbellScenario s(cfg);
  s.run_until(30 * kSecond);
  const double r_star = MkcController::stationary_rate(s.video_capacity_bps(), 2, cfg.mkc);
  const double mean = s.source(0).rate_series().mean_in(20 * kSecond, 30 * kSecond);
  // Per-epoch measurement noise biases the packetized loop as beta grows
  // (the deterministic map converges exactly for all beta < 2 —
  // analysis_test covers that). In the practical regime the full stack
  // tracks r* tightly. Beyond it the loop settles into a large limit cycle
  // (rates swing over ~2 decades around r*), so a window mean is dominated
  // by where the peaks land and is sensitive to same-timestamp event
  // ordering (DESIGN.md "Event model"); there we only require bounded
  // tracking — the cycle stays centred within a factor of two of r*.
  if (beta <= 0.5) {
    EXPECT_NEAR(mean, r_star, r_star * 0.06) << "alpha=" << alpha << " beta=" << beta;
  } else {
    EXPECT_GE(mean, r_star * 0.5) << "alpha=" << alpha << " beta=" << beta;
    EXPECT_LE(mean, r_star * 2.0) << "alpha=" << alpha << " beta=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(Gains, MkcGainGrid,
                         ::testing::Values(std::tuple{10e3, 0.25}, std::tuple{20e3, 0.5},
                                           std::tuple{40e3, 0.5}, std::tuple{20e3, 1.0},
                                           std::tuple{50e3, 1.5}));

// ------------------------------------- gamma target grid, full stack

class GammaTargetGrid : public ::testing::TestWithParam<double> {};

TEST_P(GammaTargetGrid, RedLossTracksConfiguredThreshold) {
  const double p_thr = GetParam();
  ScenarioConfig cfg;
  cfg.pels_flows = 4;
  cfg.tcp_flows = 3;
  cfg.seed = 3;
  cfg.source.gamma.p_thr = p_thr;
  DumbbellScenario s(cfg);
  s.run_until(60 * kSecond);
  const double red_loss = s.loss_series(Color::kRed).mean_in(30 * kSecond, 60 * kSecond);
  EXPECT_NEAR(red_loss, p_thr, 0.14) << "p_thr=" << p_thr;
  EXPECT_LT(s.loss_series(Color::kYellow).mean_in(30 * kSecond, 60 * kSecond), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Targets, GammaTargetGrid, ::testing::Values(0.6, 0.75, 0.9));

// ------------------------------- packetize/decode round-trip property

class PacketizeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketizeRoundTrip, LosslessDeliveryDecodesWholePlan) {
  // For random rates/gammas: packetizing a plan and delivering every FGS
  // packet must always reconstruct exactly the planned FGS byte count as a
  // gap-free prefix.
  Rng rng(GetParam());
  VideoConfig video;
  for (int trial = 0; trial < 300; ++trial) {
    const double rate = rng.uniform(50e3, 6e6);
    const double gamma = rng.uniform(0.0, 1.0);
    const FramePlan plan = plan_frame(video, trial, rate, gamma);
    const auto pkts = packetize(video, plan);
    std::vector<std::pair<std::int32_t, std::int32_t>> chunks;
    std::int64_t base = 0;
    for (const auto& p : pkts) {
      if (p.color == Color::kGreen) {
        base += p.size_bytes;
      } else {
        chunks.emplace_back(p.frame_offset, p.size_bytes);
      }
    }
    ASSERT_EQ(base, plan.base_bytes);
    ASSERT_EQ(FgsDecoder::useful_prefix(chunks), plan.fgs_bytes())
        << "rate=" << rate << " gamma=" << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketizeRoundTrip, ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace pels
