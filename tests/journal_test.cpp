// SweepJournal + run_sweep_to_table tests: crash-safe resume semantics.
//
// Covers the durability contract (append+flush per task, torn-tail
// detection, last-line-wins), the resume path (journaled indices skipped,
// byte-identical committed table), label-mismatch protection, and the
// degraded-batch knobs (report_and_continue, retry_failed_serially).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/journal.h"
#include "exp/sweep.h"
#include "util/table.h"

namespace pels {
namespace {

/// Self-deleting journal path under the test's working directory.
class TempPath {
 public:
  explicit TempPath(std::string name) : path_(std::move(name)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

SweepOutput make_output(int i) {
  SweepOutput out;
  out.rows.push_back({std::to_string(i), "value-" + std::to_string(i * i)});
  out.text = "task " + std::to_string(i) + " done\n";
  return out;
}

std::vector<std::function<SweepOutput()>> make_tasks(int n) {
  std::vector<std::function<SweepOutput()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([i] { return make_output(i); });
  }
  return tasks;
}

std::vector<std::string> make_labels(int n) {
  std::vector<std::string> labels;
  for (int i = 0; i < n; ++i) labels.push_back("seed=" + std::to_string(i));
  return labels;
}

std::string csv_of(TablePrinter& table) {
  std::ostringstream os;
  table.print_csv(os);
  return os.str();
}

// ------------------------------------------------------------ journal core

TEST(SweepJournalTest, RecordThenReloadRoundTrips) {
  TempPath path("journal_roundtrip.tmp.jsonl");
  {
    SweepJournal journal(path.str());
    EXPECT_EQ(journal.loaded(), 0u);
    journal.record(0, "seed=0", make_output(0));
    journal.record(3, "seed=3", make_output(3));
  }
  SweepJournal reloaded(path.str());
  EXPECT_EQ(reloaded.loaded(), 2u);
  EXPECT_FALSE(reloaded.tail_torn());
  EXPECT_TRUE(reloaded.has(0));
  EXPECT_FALSE(reloaded.has(1));
  ASSERT_NE(reloaded.get(3), nullptr);
  EXPECT_EQ(reloaded.get(3)->rows, make_output(3).rows);
  EXPECT_EQ(reloaded.get(3)->text, make_output(3).text);
  ASSERT_NE(reloaded.label(3), nullptr);
  EXPECT_EQ(*reloaded.label(3), "seed=3");
  EXPECT_EQ(reloaded.get(1), nullptr);
  EXPECT_EQ(reloaded.label(1), nullptr);
}

TEST(SweepJournalTest, TornTailLosesOnlyTheInFlightTask) {
  TempPath path("journal_torn.tmp.jsonl");
  {
    SweepJournal journal(path.str());
    for (int i = 0; i < 4; ++i) journal.record(static_cast<std::size_t>(i), "", make_output(i));
  }
  // Simulate a crash mid-append: a truncated JSON line at the tail.
  {
    std::ofstream f(path.str(), std::ios::app);
    f << "{\"index\":4,\"la";
  }
  SweepJournal journal(path.str());
  EXPECT_TRUE(journal.tail_torn());
  EXPECT_EQ(journal.loaded(), 4u);
  EXPECT_FALSE(journal.has(4));
}

TEST(SweepJournalTest, LastLineWinsOnRerecordedIndex) {
  TempPath path("journal_lastwins.tmp.jsonl");
  {
    SweepJournal journal(path.str());
    journal.record(0, "seed=0", make_output(0));
    journal.record(0, "seed=0", make_output(99));  // re-recorded
  }
  SweepJournal reloaded(path.str());
  EXPECT_EQ(reloaded.size(), 1u);
  ASSERT_NE(reloaded.get(0), nullptr);
  EXPECT_EQ(reloaded.get(0)->rows, make_output(99).rows);
}

// ------------------------------------------------------------ resume

TEST(SweepResumeTest, ResumedSweepCommitsByteIdenticalTable) {
  constexpr int kTasks = 8;
  SweepRunner runner(2);

  // Reference: uninterrupted, journal-free run.
  TablePrinter reference({"i", "value"});
  run_sweep_to_table(runner, make_tasks(kTasks), reference);
  const std::string reference_csv = csv_of(reference);

  // "Interrupted" run: journal holds a prefix of the tasks only.
  TempPath path("journal_resume.tmp.jsonl");
  {
    SweepJournal journal(path.str());
    SweepOptions options;
    options.labels = make_labels(kTasks);
    options.journal = &journal;
    TablePrinter full({"i", "value"});
    const SweepReport report = run_sweep_to_table(runner, make_tasks(kTasks), full, options);
    EXPECT_EQ(report.reused, 0u);
    EXPECT_EQ(report.executed, static_cast<std::size_t>(kTasks));
    EXPECT_EQ(csv_of(full), reference_csv);
  }
  // Keep 5 complete lines, then a torn tail — the crash scenario.
  std::vector<std::string> lines;
  {
    std::ifstream f(path.str());
    std::string line;
    while (std::getline(f, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kTasks));
  {
    std::ofstream f(path.str(), std::ios::trunc);
    for (int i = 0; i < 5; ++i) f << lines[static_cast<std::size_t>(i)] << "\n";
    f << "{\"index\":7,\"la";
  }

  SweepJournal journal(path.str());
  EXPECT_TRUE(journal.tail_torn());
  EXPECT_EQ(journal.loaded(), 5u);
  SweepOptions options;
  options.labels = make_labels(kTasks);
  options.journal = &journal;
  TablePrinter resumed({"i", "value"});
  const SweepReport report = run_sweep_to_table(runner, make_tasks(kTasks), resumed, options);
  EXPECT_EQ(report.reused, 5u);
  EXPECT_EQ(report.executed, 3u);
  EXPECT_EQ(csv_of(resumed), reference_csv);
  // Text also merges in submission order, as an uninterrupted run would.
  std::string expected_text;
  for (int i = 0; i < kTasks; ++i) expected_text += make_output(i).text;
  EXPECT_EQ(report.text, expected_text);
}

TEST(SweepResumeTest, LabelMismatchThrowsInsteadOfStitching) {
  constexpr int kTasks = 4;
  SweepRunner runner(1);
  TempPath path("journal_mismatch.tmp.jsonl");
  {
    SweepJournal journal(path.str());
    SweepOptions options;
    options.labels = make_labels(kTasks);
    options.journal = &journal;
    TablePrinter table({"i", "value"});
    run_sweep_to_table(runner, make_tasks(kTasks), table, options);
  }
  SweepJournal journal(path.str());
  SweepOptions options;
  options.labels = make_labels(kTasks);
  options.labels[2] = "seed=999";  // a different experiment at index 2
  options.journal = &journal;
  TablePrinter table({"i", "value"});
  EXPECT_THROW(run_sweep_to_table(runner, make_tasks(kTasks), table, options),
               std::runtime_error);
  EXPECT_EQ(table.rows(), 0u);  // nothing committed
}

// ------------------------------------------------------------ failure knobs

std::vector<std::function<SweepOutput()>> tasks_with_failure(int n, int bad_index) {
  std::vector<std::function<SweepOutput()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([i, bad_index]() -> SweepOutput {
      if (i == bad_index) throw std::runtime_error("scenario diverged");
      return make_output(i);
    });
  }
  return tasks;
}

TEST(SweepFailureTest, ReportAndContinueCommitsTheSurvivors) {
  SweepRunner runner(2);
  SweepOptions options;
  options.labels = make_labels(6);
  options.report_and_continue = true;
  TablePrinter table({"i", "value"});
  const SweepReport report = run_sweep_to_table(runner, tasks_with_failure(6, 2), table, options);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].index, 2u);
  EXPECT_EQ(report.errors[0].label, "seed=2");
  EXPECT_NE(report.errors[0].message.find("scenario diverged"), std::string::npos);
  EXPECT_EQ(table.rows(), 5u);  // the five survivors, in submission order
}

TEST(SweepFailureTest, RetryFailedSeriallyRescuesFlakyTasks) {
  SweepRunner runner(2);
  // Fails the first time it runs, succeeds on the serial retry.
  auto flaky_state = std::make_shared<std::atomic<int>>(0);
  std::vector<std::function<SweepOutput()>> tasks = make_tasks(3);
  tasks.push_back([flaky_state]() -> SweepOutput {
    if (flaky_state->fetch_add(1) == 0) throw std::runtime_error("transient");
    return make_output(3);
  });
  SweepOptions options;
  options.retry_failed_serially = true;
  TablePrinter table({"i", "value"});
  const SweepReport report = run_sweep_to_table(runner, std::move(tasks), table, options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(table.rows(), 4u);
}

TEST(SweepFailureTest, JournaledFailureRunSkipsCompletedTasksOnRetry) {
  // A mid-batch throwing task must not cost the finished tasks: with a
  // journal attached, the successes are persisted even though the sweep
  // throws, and the fixed re-run only executes what is missing.
  constexpr int kTasks = 6;
  SweepRunner runner(2);
  TempPath path("journal_failrun.tmp.jsonl");
  {
    SweepJournal journal(path.str());
    SweepOptions options;
    options.labels = make_labels(kTasks);
    options.journal = &journal;
    TablePrinter table({"i", "value"});
    try {
      run_sweep_to_table(runner, tasks_with_failure(kTasks, 4), table, options);
      FAIL() << "expected the staged-commit throw";
    } catch (const std::runtime_error& e) {
      // The error names the failing row by index, label, and cause.
      const std::string what = e.what();
      EXPECT_NE(what.find("task 4"), std::string::npos) << what;
      EXPECT_NE(what.find("seed=4"), std::string::npos) << what;
      EXPECT_NE(what.find("scenario diverged"), std::string::npos) << what;
    }
    EXPECT_EQ(table.rows(), 0u);  // staged commit: all or nothing
  }
  SweepJournal journal(path.str());
  EXPECT_EQ(journal.loaded(), static_cast<std::size_t>(kTasks - 1));
  SweepOptions options;
  options.labels = make_labels(kTasks);
  options.journal = &journal;
  TablePrinter table({"i", "value"});
  const SweepReport report = run_sweep_to_table(runner, make_tasks(kTasks), table, options);
  EXPECT_EQ(report.reused, static_cast<std::size_t>(kTasks - 1));
  EXPECT_EQ(report.executed, 1u);
  TablePrinter reference({"i", "value"});
  run_sweep_to_table(runner, make_tasks(kTasks), reference);
  EXPECT_EQ(csv_of(table), csv_of(reference));
}

}  // namespace
}  // namespace pels
