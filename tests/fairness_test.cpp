// Scenario-level tests for the fairness-matrix experiment (exp/fairness) and
// the ECN signal path it depends on: PELS AQM threshold marking, the TCP
// ECE reaction, and base-layer protection under aggressive cross traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "exp/fairness.h"
#include "pels/scenario.h"

namespace pels {
namespace {

// The paper's core promise, restated for the mixed-ecosystem PR: whatever
// congestion controller the competing class runs, the PELS AQM keeps every
// flow's base layer intact. CUBIC is the aggressive newcomer in the matrix
// (it takes ~90% of the video share), so it is the stress case.
TEST(FairnessCellTest, BaseLayerProtectedUnderCubicCrossTraffic) {
  FairnessCellConfig cfg;
  cfg.label = "test_mkc_vs_cubic";
  cfg.class_a = CcKind::kMkc;
  cfg.class_b = CcKind::kCubic;
  cfg.duration = 16 * kSecond;
  cfg.warmup = 6 * kSecond;
  const FairnessCellResult r = run_fairness_cell(cfg);

  EXPECT_GE(r.base_protection, 0.9)
      << "CUBIC cross traffic must not starve the base layer";
  EXPECT_GE(r.jain_video, 0.0);
  EXPECT_LE(r.jain_video, 1.0);
  EXPECT_NEAR(r.share_a + r.share_b + r.share_tcp, 1.0, 1e-9);
  EXPECT_EQ(r.share_tcp, 0.0);
  ASSERT_EQ(r.video_goodputs_bps.size(), 4u);
  for (const double g : r.video_goodputs_bps) EXPECT_GT(g, 0.0);
  // Both delay percentiles populated and ordered.
  EXPECT_GT(r.delay_p50_ms, 0.0);
  EXPECT_LE(r.delay_p50_ms, r.delay_p95_ms);
  EXPECT_LE(r.delay_p95_ms, r.delay_p99_ms);
  // The default cell marks at the AQM; mark-driven members depend on it.
  EXPECT_GT(r.ecn_marks, 0u);
}

TEST(FairnessCellTest, RejectsNonsenseConfigs) {
  FairnessCellConfig cfg;
  cfg.flows_a = 0;
  EXPECT_THROW(run_fairness_cell(cfg), std::invalid_argument);
  cfg = {};
  cfg.warmup = cfg.duration;
  EXPECT_THROW(run_fairness_cell(cfg), std::invalid_argument);
}

TEST(FairnessCellTest, MatrixEnumerationsAreLabelledAndValid) {
  const auto full = default_fairness_matrix(false);
  const auto smoke = default_fairness_matrix(true);
  EXPECT_EQ(full.size(), 12u);
  EXPECT_EQ(smoke.size(), 3u);
  for (const auto& cell : full) {
    EXPECT_FALSE(cell.label.empty());
    EXPECT_LT(cell.warmup, cell.duration);
  }
  for (const auto& cell : smoke) EXPECT_LT(cell.duration, 20 * kSecond);
}

// Satellite regression: marked-not-dropped packets must reduce the sender's
// rate. With the Internet FIFO deep enough that nothing drops, a greedy TCP
// flow only backs off if the ECE echo path works end to end: AQM threshold
// mark -> sink echo -> sender window cut (once per window of data).
TEST(TcpEcnScenarioTest, MarkedNotDroppedPacketsReduceCwnd) {
  const auto run = [](std::size_t mark_threshold) {
    ScenarioConfig cfg;
    cfg.pels_flows = 1;
    cfg.tcp_flows = 1;
    cfg.pels_queue.ecn_mark_threshold_pkts = mark_threshold;
    // Deep FIFO: the run must stay drop-free so the only congestion signal
    // available to TCP is the CE mark.
    cfg.pels_queue.internet_limit = 20000;
    cfg.edge_queue_limit = 20000;
    DumbbellScenario scn(cfg);
    scn.source(0).start(0);
    scn.tcp_source(0).start(0);
    scn.run_until(20 * kSecond);
    return std::tuple{scn.tcp_source(0).cwnd(), scn.tcp_source(0).ecn_backoffs(),
                      scn.tcp_source(0).retransmits(),
                      scn.pels_queue()->ecn_marks()};
  };

  const auto [cwnd_ecn, backoffs_ecn, retx_ecn, marks_ecn] = run(4);
  const auto [cwnd_off, backoffs_off, retx_off, marks_off] = run(0);

  EXPECT_GT(marks_ecn, 0u);
  EXPECT_EQ(marks_off, 0u);
  EXPECT_GT(backoffs_ecn, 0u) << "sink echo or sender ECE reaction is dead";
  EXPECT_EQ(backoffs_off, 0u);
  // Drop-free on both sides: the window cut cannot be loss-driven.
  EXPECT_EQ(retx_ecn, 0u);
  EXPECT_EQ(retx_off, 0u);
  // Without any congestion signal the window grows without bound; with
  // marking it stays bounded by the repeated ECE halvings.
  EXPECT_LT(cwnd_ecn, cwnd_off / 2.0);
}

}  // namespace
}  // namespace pels
