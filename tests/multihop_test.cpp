// Multi-bottleneck (parking-lot) integration tests: the max-min
// most-congested-router feedback semantics of paper §5.2.
#include <gtest/gtest.h>

#include "analysis/stability.h"
#include "pels/multihop.h"
#include "util/stats.h"

namespace pels {
namespace {

ParkingLotConfig base_config() {
  ParkingLotConfig cfg;
  cfg.long_flows = 1;
  cfg.cross_flows_hop1 = 1;
  cfg.cross_flows_hop2 = 3;
  cfg.seed = 11;
  return cfg;
}

TEST(ParkingLotTest, LongFlowBindsToMostCongestedRouter) {
  // Hop 2 carries the long flow plus three cross flows; hop 1 only one cross
  // flow. Hop 2 is therefore the tighter resource, and the label the long
  // flow consumes must come from router 2.
  ParkingLotScenario s(base_config());
  s.run_until(30 * kSecond);
  EXPECT_EQ(s.long_flow(0).governing_router(), ParkingLotScenario::kRouter2);
}

TEST(ParkingLotTest, MaxMinAllocationAcrossHops) {
  // The long flow gets the same share as its hop-2 peers (4 flows on the
  // 2 mb/s PELS class: r* ~ 540 kb/s), while the hop-1 cross flow soaks up
  // hop 1's leftover (~1.5 mb/s +): max-min, not proportional fairness.
  ParkingLotConfig cfg = base_config();
  ParkingLotScenario s(cfg);
  const SimTime duration = 40 * kSecond;
  s.run_until(duration);

  const double r_long = s.long_flow(0).rate_series().mean_in(20 * kSecond, duration);
  const double r_hop2 = s.cross_flow_hop2(0).rate_series().mean_in(20 * kSecond, duration);
  const double r_hop1 = s.cross_flow_hop1(0).rate_series().mean_in(20 * kSecond, duration);
  const double r_star_hop2 =
      mkc_stationary_rate(s.bottleneck2().pels_capacity_bps(), 4, cfg.mkc.alpha_bps,
                          cfg.mkc.beta);
  EXPECT_NEAR(r_long, r_star_hop2, r_star_hop2 * 0.10);
  EXPECT_NEAR(r_hop2, r_star_hop2, r_star_hop2 * 0.10);
  // Hop 1's cross flow takes the slack the long flow leaves on hop 1.
  EXPECT_GT(r_hop1, 2.0 * r_long);
}

TEST(ParkingLotTest, BothHopsStayFullyUtilized) {
  ParkingLotConfig cfg = base_config();
  ParkingLotScenario s(cfg);
  const SimTime duration = 40 * kSecond;
  s.run_until(duration);
  const double r_long = s.long_flow(0).rate_series().mean_in(20 * kSecond, duration);
  const double r_hop1 = s.cross_flow_hop1(0).rate_series().mean_in(20 * kSecond, duration);
  double hop2_sum = r_long;
  for (int i = 0; i < 3; ++i)
    hop2_sum += s.cross_flow_hop2(i).rate_series().mean_in(20 * kSecond, duration);
  // Demand slightly exceeds capacity at equilibrium (the alpha/beta
  // overshoot); both PELS classes are saturated.
  EXPECT_GT(r_long + r_hop1, s.bottleneck1().pels_capacity_bps());
  EXPECT_GT(hop2_sum, s.bottleneck2().pels_capacity_bps());
}

TEST(ParkingLotTest, BottleneckShiftIsTracked) {
  // Start with hop 2 congested; make hop 1 the tight link by shrinking its
  // capacity mid-run (modelled as a fresh scenario with reversed cross
  // loads). The long flow's governing router must follow.
  ParkingLotConfig cfg = base_config();
  cfg.cross_flows_hop1 = 3;
  cfg.cross_flows_hop2 = 1;
  ParkingLotScenario s(cfg);
  s.run_until(30 * kSecond);
  EXPECT_EQ(s.long_flow(0).governing_router(), ParkingLotScenario::kRouter1);
}

TEST(ParkingLotTest, UnequalCapacitiesBindTighterLink) {
  ParkingLotConfig cfg = base_config();
  cfg.cross_flows_hop1 = 2;
  cfg.cross_flows_hop2 = 2;
  cfg.bottleneck1_bps = 2e6;  // PELS share 1 mb/s
  cfg.bottleneck2_bps = 6e6;  // PELS share 3 mb/s
  ParkingLotScenario s(cfg);
  const SimTime duration = 40 * kSecond;
  s.run_until(duration);
  EXPECT_EQ(s.long_flow(0).governing_router(), ParkingLotScenario::kRouter1);
  const double r_long = s.long_flow(0).rate_series().mean_in(20 * kSecond, duration);
  const double r_star_hop1 =
      mkc_stationary_rate(s.bottleneck1().pels_capacity_bps(), 3, cfg.mkc.alpha_bps,
                          cfg.mkc.beta);
  EXPECT_NEAR(r_long, r_star_hop1, r_star_hop1 * 0.12);
}

TEST(ParkingLotTest, GammaProtectsYellowOnBothHops) {
  ParkingLotScenario s(base_config());
  s.run_until(60 * kSecond);
  for (PelsQueue* q : {&s.bottleneck1(), &s.bottleneck2()}) {
    const auto& c = q->counters();
    const auto y = static_cast<std::size_t>(Color::kYellow);
    if (c.arrivals[y] == 0) continue;
    const double yellow_loss =
        static_cast<double>(c.drops[y]) / static_cast<double>(c.arrivals[y]);
    EXPECT_LT(yellow_loss, 0.03);
    EXPECT_EQ(c.drops[static_cast<std::size_t>(Color::kGreen)], 0u);
  }
}

TEST(ParkingLotTest, LongFlowUtilityStaysHigh) {
  // Crossing two priority AQMs must not break the consecutive-prefix
  // property: drops still concentrate in red at whichever hop is tight.
  ParkingLotScenario s(base_config());
  s.run_until(40 * kSecond);
  s.finish();
  EXPECT_GT(s.long_sink(0).mean_utility(), 0.9);
}

TEST(ParkingLotTest, Deterministic) {
  auto run = [] {
    ParkingLotScenario s(base_config());
    s.run_until(10 * kSecond);
    return std::pair{s.long_flow(0).rate_bps(),
                     s.bottleneck2().counters().total_drops()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pels
