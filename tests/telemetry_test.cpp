// Tests for the telemetry subsystem (src/telemetry): registry semantics,
// sampler determinism, the zero-allocation-per-sample contract, and
// byte-identical snapshot export across SweepRunner thread counts.
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/sweep.h"
#include "pels/scenario.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"

// ---------------------------------------------------------------------------
// Heap interposition (this test binary only): replacing operator new in one
// TU rebinds it for the whole binary, so steady-state windows can assert the
// sampler's 0-allocs-per-snapshot contract directly (same idiom as
// bench/micro_pipeline.cpp).
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) { return counted_alloc(size, align); }
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pels {
namespace {

TEST(MetricsRegistry, RegistersAndReadsAllThreeKinds) {
  MetricsRegistry reg;
  Counter& c = reg.counter("pkts");
  Gauge& g = reg.gauge("loss");
  double probe_state = 1.5;
  reg.add_probe("depth", [&probe_state] { return probe_state; });

  ASSERT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.name(0), "pkts");
  EXPECT_EQ(reg.name(1), "loss");
  EXPECT_EQ(reg.name(2), "depth");

  c.inc();
  c.inc(41);
  g.set(0.25);
  EXPECT_DOUBLE_EQ(reg.read(0), 42.0);
  EXPECT_DOUBLE_EQ(reg.read(1), 0.25);
  EXPECT_DOUBLE_EQ(reg.read(2), 1.5);
  probe_state = -3.0;
  EXPECT_DOUBLE_EQ(reg.read(2), -3.0);

  EXPECT_EQ(reg.index_of("loss"), 1);
  EXPECT_EQ(reg.index_of("missing"), -1);
}

TEST(MetricsRegistry, SlotAddressesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter* first = &reg.counter("c0");
  Gauge* g0 = &reg.gauge("g0");
  // Enough registrations to force any vector-backed storage to reallocate.
  for (int i = 1; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
    reg.gauge("g" + std::to_string(i));
  }
  first->inc(7);
  g0->set(2.5);
  EXPECT_DOUBLE_EQ(reg.read(0), 7.0);
  EXPECT_DOUBLE_EQ(reg.read(static_cast<std::size_t>(reg.index_of("g0"))), 2.5);
}

TEST(MetricsRegistry, RejectsDuplicateAndEmptyNames) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.counter("x"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.add_probe("x", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
}

TEST(TelemetryConfig, ValidatesOnlyWhenEnabled) {
  TelemetryConfig cfg;
  cfg.period = 0;
  EXPECT_NO_THROW(cfg.validate());  // disabled: not checked
  cfg.enabled = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.period = from_millis(100);
  cfg.max_samples = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.max_samples = 16;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(TimeSeriesSampler, SamplesOnThePeriodAndStopsAtCapacity) {
  Simulation sim(1);
  MetricsRegistry reg;
  Counter& ticks = reg.counter("ticks");
  // Start the producing timer first: at shared timestamps the sampler's tick
  // then executes after it (insertion order), observing post-update state.
  PeriodicTimer source(sim.scheduler(), from_millis(100), [&ticks] { ticks.inc(); });
  source.start();
  TimeSeriesSampler sampler(sim.scheduler(), reg, from_millis(100));
  sampler.reserve_runtime(8);
  sampler.start();

  sim.run_until(kSecond + from_millis(1));
  // 10 periodic instants, capacity 8: the overflow is counted, not stored.
  EXPECT_EQ(sampler.sample_count(), 8u);
  EXPECT_EQ(sampler.samples_dropped(), 2u);
  EXPECT_EQ(sampler.time_at(0), from_millis(100));
  EXPECT_EQ(sampler.time_at(7), from_millis(800));
  // The counter's timer started before the sampler, so at each shared
  // timestamp the snapshot sees the post-increment value: k at t = k*period.
  for (std::size_t k = 0; k < sampler.sample_count(); ++k) {
    EXPECT_DOUBLE_EQ(sampler.value_at(0, k), static_cast<double>(k + 1));
  }
}

TEST(TimeSeriesSampler, SeriesByNameMatchesByIndex) {
  Simulation sim(1);
  MetricsRegistry reg;
  Gauge& g = reg.gauge("a");
  reg.add_probe("b", [&sim] { return to_seconds(sim.now()); });
  TimeSeriesSampler sampler(sim.scheduler(), reg, from_millis(250));
  sampler.reserve_runtime(16);
  sampler.start();
  g.set(5.0);
  sim.run_until(kSecond);

  const TimeSeries by_name = sampler.series("b");
  const TimeSeries by_index = sampler.series(1);
  ASSERT_EQ(by_name.size(), by_index.size());
  for (std::size_t i = 0; i < by_name.size(); ++i) {
    EXPECT_EQ(by_name[i].t, by_index[i].t);
    EXPECT_DOUBLE_EQ(by_name[i].value, by_index[i].value);
  }
  EXPECT_THROW(sampler.series("nope"), std::invalid_argument);
}

TEST(TimeSeriesSampler, ZeroHeapAllocationsPerSampleAfterReserve) {
  Simulation sim(1);
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  double depth = 0.0;
  reg.add_probe("p", [&depth] { return depth; });
  TimeSeriesSampler sampler(sim.scheduler(), reg, from_millis(10));
  sampler.reserve_runtime(4096);

  c.inc(3);
  g.set(1.0);
  depth = 2.0;
  sampler.sample_now();  // warm-up: first snapshot of frozen storage

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    c.inc();
    g.set(static_cast<double>(i));
    depth = static_cast<double>(-i);
    sampler.sample_now();
  }
  const std::uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u) << "snapshots must not allocate after reserve_runtime";
  EXPECT_EQ(sampler.sample_count(), 1001u);
}

TEST(TimeSeriesSampler, OverflowPathIsAllocationFreeToo) {
  Simulation sim(1);
  MetricsRegistry reg;
  reg.add_probe("p", [] { return 1.0; });
  TimeSeriesSampler sampler(sim.scheduler(), reg, from_millis(10));
  sampler.reserve_runtime(2);
  sampler.sample_now();
  sampler.sample_now();

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) sampler.sample_now();
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed) - before, 0u);
  EXPECT_EQ(sampler.sample_count(), 2u);
  EXPECT_EQ(sampler.samples_dropped(), 100u);
}

// Full-stack steady state: the scenario's sampler must also take snapshots
// without heap traffic (probes read plain members; push slots are plain
// stores). This is the overhead guard behind the <= 2% pkts/s budget.
TEST(TimeSeriesSampler, ScenarioSnapshotsAreAllocationFree) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 1;
  cfg.seed = 3;
  cfg.telemetry.enabled = true;
  cfg.telemetry.max_samples = 64;  // deliberately small: exercises overflow
  DumbbellScenario s(cfg);
  s.run_until(2 * kSecond);
  TimeSeriesSampler& sampler = *s.telemetry_sampler();

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 200; ++i) sampler.sample_now();
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed) - before, 0u)
      << "a scenario probe allocated during a snapshot";
}

TEST(DumbbellScenario, TelemetryOffByDefaultAndNullViews) {
  ScenarioConfig cfg;
  cfg.pels_flows = 1;
  DumbbellScenario s(cfg);
  EXPECT_EQ(s.metrics(), nullptr);
  EXPECT_EQ(s.telemetry_sampler(), nullptr);
}

TEST(DumbbellScenario, PushGaugesTrackTheFeedbackMeter) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 1;
  cfg.seed = 5;
  cfg.telemetry.enabled = true;
  DumbbellScenario s(cfg);
  s.run_until(5 * kSecond);

  MetricsRegistry& reg = *s.metrics();
  const auto idx = [&reg](const char* name) {
    const std::ptrdiff_t i = reg.index_of(name);
    EXPECT_GE(i, 0) << name;
    return static_cast<std::size_t>(i);
  };
  EXPECT_DOUBLE_EQ(reg.read(idx("bottleneck.p")), s.pels_queue()->current_loss());
  EXPECT_DOUBLE_EQ(reg.read(idx("bottleneck.p_fgs")), s.pels_queue()->current_fgs_loss());
  EXPECT_DOUBLE_EQ(reg.read(idx("bottleneck.feedback_epochs")),
                   static_cast<double>(s.pels_queue()->epoch()));
  // Source-side probes agree with the sources' own observable state.
  EXPECT_DOUBLE_EQ(reg.read(idx("flow0.rate_bps")), s.source(0).rate_bps());
  EXPECT_DOUBLE_EQ(reg.read(idx("flow0.gamma")), s.source(0).gamma());
  EXPECT_DOUBLE_EQ(reg.read(idx("sink0.fgs_bytes")),
                   static_cast<double>(s.sink(0).fgs_bytes_received()));
}

// The sampler's γ column must agree with the source's own control-tick
// series at shared instants — the determinism contract fig7 relies on.
TEST(DumbbellScenario, SamplerGammaMatchesSourceSeries) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 1;
  cfg.seed = 7;
  cfg.telemetry.enabled = true;
  cfg.telemetry.period = from_millis(100);
  cfg.telemetry.max_samples = 256;
  DumbbellScenario s(cfg);
  s.run_until(10 * kSecond);
  const TimeSeries tel = s.telemetry_sampler()->series("flow0.gamma");
  const TimeSeries& src = s.source(0).gamma_series();
  for (SimTime t = kSecond; t <= 10 * kSecond; t += kSecond) {
    EXPECT_EQ(tel.value_at(t), src.value_at(t)) << "at t = " << to_seconds(t) << " s";
  }
}

std::string telemetry_json_for(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.pels_flows = 2;
  cfg.tcp_flows = 1;
  cfg.seed = seed;
  cfg.telemetry.enabled = true;
  cfg.telemetry.period = from_millis(200);
  cfg.telemetry.max_samples = 64;
  DumbbellScenario s(cfg);
  s.run_until(3 * kSecond);
  std::ostringstream os;
  s.telemetry_sampler()->write_json(os);
  return os.str();
}

// The sweep-engine determinism contract extends to telemetry: snapshots
// exported from tasks run at 8 threads are byte-identical to the serial run.
TEST(SweepRunner, TelemetrySnapshotsByteIdenticalAcrossThreadCounts) {
  const auto make_tasks = [] {
    std::vector<std::function<std::string()>> tasks;
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
      tasks.push_back([seed] { return telemetry_json_for(seed); });
    }
    return tasks;
  };
  SweepRunner serial(1);
  SweepRunner wide(8);
  const auto a = serial.run(make_tasks());
  const auto b = wide.run(make_tasks());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << a[i].error;
    ASSERT_TRUE(b[i].ok()) << b[i].error;
    EXPECT_EQ(*a[i].value, *b[i].value) << "task " << i;
    EXPECT_FALSE(a[i].value->empty());
  }
}

TEST(TimeSeriesSampler, CsvAndJsonExportsAreStable) {
  Simulation sim(1);
  MetricsRegistry reg;
  Gauge& g = reg.gauge("x");
  TimeSeriesSampler sampler(sim.scheduler(), reg, from_millis(500));
  sampler.reserve_runtime(8);
  sampler.start();
  g.set(0.125);
  sim.run_until(kSecond);

  std::ostringstream csv1, csv2, json1, json2;
  sampler.write_csv(csv1);
  sampler.write_csv(csv2);
  sampler.write_json(json1);
  sampler.write_json(json2);
  EXPECT_EQ(csv1.str(), csv2.str());
  EXPECT_EQ(json1.str(), json2.str());
  EXPECT_NE(csv1.str().find("t_seconds,x"), std::string::npos);
  EXPECT_NE(csv1.str().find("0.125"), std::string::npos);
  EXPECT_NE(json1.str().find("\"samples\": 2"), std::string::npos);
}

}  // namespace
}  // namespace pels
