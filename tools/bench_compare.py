#!/usr/bin/env python3
"""Bench regression gate: compare a fresh micro_pipeline JSON against the
committed baseline (BENCH_pipeline.json, schema v1).

Checks, in order:
  1. schema: both files carry schema_version 1 and the micro_pipeline layout;
  2. throughput: current pipeline.data_pkts_per_sec must not fall more than
     --tolerance (default 25%) below the baseline — CI machines are noisy, so
     the band is wide; a real hot-path regression blows straight through it;
  3. current-run invariants, independent of the baseline:
       - alloc_probe.allocs_per_packet <= 0.01 (the steady state is
         allocation-free by design),
       - every sweep_scaling entry is identical_to_serial (determinism),
       - telemetry.overhead_frac <= --telemetry-budget (default 5%; the
         recorded target is 2%, the gate adds noise margin);
  4. scaling: on a box with hardware_threads >= 2, every sweep_scaling entry
     actually running >= 2 effective (non-oversubscribed) workers must reach
     at least --min-speedup (default 0.8x) over serial — parallelism that
     makes the sweep *slower* is a dispatch-contention regression, the exact
     failure mode the single-mutex pool had. Oversubscribed entries
     (requested > hardware, annotated by the bench) are exempt: the clamp
     makes them duplicates of the at-hardware point. On a single-core box
     the whole check is skipped with a notice — there is nothing to scale.

Determinism notes (data_packets vs baseline) are warnings only: simulated
delivery counts shift whenever scenario behaviour legitimately changes, and
the per-run telemetry-vs-plain equality is already enforced by the bench
binary itself.

The many-flows harness (--manyflows-current, BENCH_manyflows.json from
bench/many_flows) is gated on current-run invariants — the bench carries its
own acceptance bars, so no baseline file is needed:
  - many_flows.large.flows >= 100000 and many_flows.huge.flows >= 1000000
    (the scale claims must actually be run);
  - many_flows.cost_ratio <= --cost-ratio-max (default 1.5): per-packet cost
    at 100k flows must stay within 1.5x of 1k flows — flat-cost scaling;
  - many_flows.huge_cost_ratio <= --huge-cost-ratio-max (default 2.0): the
    10^6-flow population may pay at most 2x the 1k per-packet cost;
  - bytes_per_flow <= bytes_per_flow_budget (stated in the artifact) at
    every population size: the driver's per-flow footprint stays on its
    memory diet;
  - scheduler_tiers speedup at the largest pending population >=
    --min-tier-speedup (default 3.0): the two-tier queue must beat the
    heap-only baseline by 3x at 10^6 pending timers. Smoke runs (single-rep
    medians) relax this floor by 0.6x with a notice — wall-clock noise on CI
    runners swings the heap baseline, and the committed full-run artifact is
    the reference measurement;
  - wheel throughput at every pending >= 100000 must reach --min-wheel-eps
    events/s (default 2e6), an absolute backstop so a "wins the ratio by
    being uniformly slow" regression cannot pass;
  - allocs_per_packet <= 0.01 and every scheduler_*_capacity_growth == 0 at
    EVERY population size (wheel included): the steady state neither
    allocates nor grows a pre-sized pool (the bench exits non-zero on these
    too; the gate re-checks the artifact so CI fails loudly even if the
    bench's own exit status is swallowed);
  - sharded.byte_identical: the domain-sharded driver's end state must be
    byte-identical across DomainRunner thread counts;
  - sharded runs with >= 2 effective, non-hw-clamped workers must reach
    --min-shard-speedup (default 0.8x) over serial — same contract as the
    sweep gate: parallelism that makes the run slower is a dispatch
    regression. Per-worker speedup is recorded as an annotation, and
    hw-clamped entries are exempt (the clamp makes them duplicates of the
    at-hardware point). On a single-core box the check is skipped with a
    notice — there is nothing to scale.

The chaos harness (--chaos-current, BENCH_chaos.json from bench/chaos_sweep)
is gated on current-run invariants only — there is no meaningful baseline for
"zero violations":
  - campaign.violations == 0 and campaign.task_errors == 0;
  - shrink_selftest.shrunk_still_violates (the minimized repro must replay)
    and shrunk_events <= original_events;
  - parallel_chaos.identical_across_workers (determinism survives faults);
  - resume.identical_to_uninterrupted and resume.torn_tail_detected;
  - monitor_overhead.overhead_frac <= --monitor-budget (default 6%; the
    recorded target is 3%, the gate adds noise margin).

The fairness matrix (--fairness-current, BENCH_fairness.json from
bench/fairness_matrix) is gated on current-run invariants — the matrix is a
measurement, so the gate checks well-formedness and the paper's promise, not
specific share splits:
  - every expected cell label is present (the full set, or the smoke subset
    when the artifact says smoke: true) — a silently skipped scenario must
    not pass as "measured";
  - every cell's Jain index is finite and in [0, 1];
  - every cell's class shares sum to 1 (+/- 1e-6);
  - every cell's base_protection >= --min-base-protection (default 0.9):
    the base layer survives no matter which controllers share the link;
  - every cell's green delay percentiles are positive and monotone
    (p50 <= p95 <= p99);
  - the summary block agrees with the per-cell minima it claims.

Exit status: 0 = pass, 1 = regression/invariant failure, 2 = bad input.

Usage:
  tools/bench_compare.py --baseline BENCH_pipeline.json --current build/BENCH_pipeline.json
  tools/bench_compare.py --chaos-current build/BENCH_chaos.json
  tools/bench_compare.py --selftest        # prove the gate trips on a regression
"""

from __future__ import annotations

import argparse
import copy
import json
import sys


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}")
        sys.exit(2)


def check_schema(doc: dict, label: str) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"{label}: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "micro_pipeline":
        errors.append(f"{label}: bench must be 'micro_pipeline', got {doc.get('bench')!r}")
    for section, keys in {
        "pipeline": ["median_wall_ms", "data_packets", "data_pkts_per_sec"],
        "telemetry": ["data_pkts_per_sec", "overhead_frac"],
        "alloc_probe": ["allocs_per_packet", "steady_allocs"],
    }.items():
        sub = doc.get(section)
        if not isinstance(sub, dict):
            errors.append(f"{label}: missing section '{section}'")
            continue
        for k in keys:
            if k not in sub:
                errors.append(f"{label}: missing {section}.{k}")
    if not isinstance(doc.get("sweep_scaling"), list) or not doc["sweep_scaling"]:
        errors.append(f"{label}: sweep_scaling must be a non-empty list")
    return errors


def check_scaling(current: dict, min_speedup: float) -> int:
    """Gate the sweep's parallel speedup; returns the number of failures.

    Skips cleanly (with a notice) when the box cannot scale: either
    hardware_threads < 2, or no entry ran >= 2 effective workers without
    oversubscription. Entries missing the per-entry thread fields (a JSON
    from an older binary) fall back to treating requested == effective.
    """
    hw = int(current.get("hardware_threads", 0))
    if hw < 2:
        print(
            f"scaling gate: SKIPPED (hardware_threads = {hw}; a single-core "
            "box has nothing to scale)"
        )
        return 0
    failures = 0
    gated = 0
    for entry in current["sweep_scaling"]:
        requested = int(entry.get("threads", 1))
        effective = int(entry.get("effective_threads", requested))
        oversub = bool(entry.get("oversubscribed", requested > hw))
        speedup = float(entry.get("speedup", 0.0))
        if effective < 2:
            continue
        if oversub:
            print(
                f"scaling gate: threads={requested} oversubscribed "
                f"(effective {effective} of {hw} hw) — annotated, not gated"
            )
            continue
        gated += 1
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"scaling gate: threads={requested} (effective {effective}) "
            f"speedup {speedup:.2f}x (floor {min_speedup:.2f}x) {verdict}"
        )
        if speedup < min_speedup:
            fail(
                f"sweep_scaling threads={requested} speedup {speedup:.2f}x "
                f"< {min_speedup:.2f}x: parallel dispatch is eating its own gains"
            )
            failures += 1
    if gated == 0 and failures == 0:
        print(
            "scaling gate: SKIPPED (no entry with >= 2 effective, "
            "non-oversubscribed workers)"
        )
    return failures


def compare(baseline: dict, current: dict, tolerance: float, telemetry_budget: float,
            min_speedup: float = 0.8) -> int:
    errors = check_schema(baseline, "baseline") + check_schema(current, "current")
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0

    base_pps = float(baseline["pipeline"]["data_pkts_per_sec"])
    cur_pps = float(current["pipeline"]["data_pkts_per_sec"])
    floor = (1.0 - tolerance) * base_pps
    ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
    print(
        f"throughput: baseline {base_pps:,.0f} pkts/s, current {cur_pps:,.0f} pkts/s "
        f"({100.0 * (ratio - 1.0):+.1f}%, floor {floor:,.0f})"
    )
    if cur_pps < floor:
        fail(
            f"pipeline.data_pkts_per_sec regressed beyond {100 * tolerance:.0f}% "
            f"tolerance ({cur_pps:,.0f} < {floor:,.0f})"
        )
        failures += 1

    app = float(current["alloc_probe"]["allocs_per_packet"])
    print(f"alloc probe: {app:.4f} allocs/packet (limit 0.01)")
    if app > 0.01:
        fail(f"alloc_probe.allocs_per_packet = {app} > 0.01: hot path allocates again")
        failures += 1

    non_identical = [
        s for s in current["sweep_scaling"] if not s.get("identical_to_serial", False)
    ]
    print(
        f"sweep determinism: {len(current['sweep_scaling'])} thread counts, "
        f"{len(non_identical)} non-identical"
    )
    if non_identical:
        threads = ", ".join(str(s.get("threads")) for s in non_identical)
        fail(f"sweep output not byte-identical to serial at threads: {threads}")
        failures += 1

    failures += check_scaling(current, min_speedup)

    overhead = float(current["telemetry"]["overhead_frac"])
    noise = current["telemetry"].get("noise_floor_frac")
    noise_note = f", noise floor {100 * float(noise):.2f}%" if noise is not None else ""
    print(
        f"telemetry overhead: {100 * overhead:.2f}% "
        f"(gate {100 * telemetry_budget:.0f}%, recorded target 2%{noise_note})"
    )
    if overhead > telemetry_budget:
        fail(
            f"telemetry.overhead_frac = {overhead:.4f} > {telemetry_budget}: "
            "sampling slows the pipeline too much"
        )
        failures += 1

    base_pkts = baseline["pipeline"]["data_packets"]
    cur_pkts = current["pipeline"]["data_packets"]
    if base_pkts != cur_pkts and not current.get("smoke", False):
        print(
            f"bench_compare: note: simulated data_packets changed "
            f"({base_pkts} -> {cur_pkts}); expected only when scenario "
            "behaviour intentionally changed"
        )

    if failures == 0:
        print("bench_compare: PASS")
        return 0
    print(f"bench_compare: {failures} check(s) failed")
    return 1


def check_manyflows_schema(doc: dict) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(
            f"manyflows: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "many_flows":
        errors.append(f"manyflows: bench must be 'many_flows', got {doc.get('bench')!r}")
    tiers = doc.get("scheduler_tiers")
    if not isinstance(tiers, list) or not tiers:
        errors.append("manyflows: scheduler_tiers must be a non-empty list")
    else:
        for i, t in enumerate(tiers):
            for k in ("pending", "heap_ev_per_sec", "wheel_ev_per_sec", "speedup"):
                if k not in t:
                    errors.append(f"manyflows: missing scheduler_tiers[{i}].{k}")
    mf = doc.get("many_flows")
    if not isinstance(mf, dict):
        errors.append("manyflows: missing section 'many_flows'")
        return errors
    for k in ("cost_ratio", "huge_cost_ratio", "bytes_per_flow_budget"):
        if k not in mf:
            errors.append(f"manyflows: missing many_flows.{k}")
    for side in ("small", "large", "huge"):
        sub = mf.get(side)
        if not isinstance(sub, dict):
            errors.append(f"manyflows: missing many_flows.{side}")
            continue
        for k in (
            "flows", "packets", "ns_per_packet", "allocs_per_packet",
            "scheduler_heap_capacity_growth", "scheduler_slot_capacity_growth",
            "scheduler_wheel_capacity_growth", "scheduler_run_capacity_growth",
            "bytes_per_flow",
        ):
            if k not in sub:
                errors.append(f"manyflows: missing many_flows.{side}.{k}")
    sharded = doc.get("sharded")
    if not isinstance(sharded, dict):
        errors.append("manyflows: missing section 'sharded'")
        return errors
    for k in ("hardware_concurrency", "byte_identical"):
        if k not in sharded:
            errors.append(f"manyflows: missing sharded.{k}")
    runs = sharded.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("manyflows: sharded.runs must be a non-empty list")
    else:
        for i, r in enumerate(runs):
            for k in ("requested_threads", "effective_threads", "wall_ms",
                      "speedup_vs_serial", "per_worker_speedup"):
                if k not in r:
                    errors.append(f"manyflows: missing sharded.runs[{i}].{k}")
    return errors


def check_shard_scaling(sharded: dict, min_speedup: float) -> int:
    """Gate the sharded driver's DomainRunner scaling; returns failure count.

    Mirrors check_scaling's contract: the floor is speedup over serial (a
    parallel run materially slower than serial is a dispatch regression),
    per-worker speedup is printed as an annotation only, hw-clamped entries
    (effective < requested) are exempt, and a single-core box skips with a
    notice.
    """
    failures = 0
    hw = int(sharded.get("hardware_concurrency", 0))
    if hw < 2:
        print(
            f"shard scaling gate: SKIPPED (hardware_concurrency = {hw}; a "
            "single-core box has nothing to scale)"
        )
        return 0
    gated = 0
    for r in sharded["runs"]:
        requested = int(r["requested_threads"])
        effective = int(r["effective_threads"])
        speedup = float(r["speedup_vs_serial"])
        per_worker = float(r["per_worker_speedup"])
        if effective < 2:
            continue
        if effective < requested:
            print(
                f"shard scaling gate: threads={requested} hw-clamped to "
                f"{effective} workers — annotated, not gated"
            )
            continue
        gated += 1
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"shard scaling gate: {effective} workers, speedup "
            f"{speedup:.2f}x over serial ({per_worker:.2f}x/worker; floor "
            f"{min_speedup:.2f}x) {verdict}"
        )
        if speedup < min_speedup:
            fail(
                f"sharded run at {effective} workers is {speedup:.2f}x serial "
                f"< {min_speedup:.2f}x: domain parallelism is eating its own gains"
            )
            failures += 1
    if gated == 0 and failures == 0:
        print(
            "shard scaling gate: SKIPPED (no entry with >= 2 effective, "
            "non-clamped workers)"
        )
    return failures


def check_manyflows(doc: dict, cost_ratio_max: float, min_tier_speedup: float,
                    min_wheel_eps: float, huge_ratio_max: float = 2.0,
                    min_shard_speedup: float = 0.8) -> int:
    """Gate the many-flows JSON on its own acceptance bars; returns exit code."""
    errors = check_manyflows_schema(doc)
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0
    mf = doc["many_flows"]
    large = mf["large"]
    huge = mf["huge"]

    flows = int(large["flows"])
    print(f"many-flows scale: {flows} simultaneous sources "
          f"({large['packets']} packets measured)")
    if flows < 100000:
        fail(f"many_flows.large.flows = {flows} < 100000: the scale claim was not run")
        failures += 1
    huge_flows = int(huge["flows"])
    print(f"many-flows scale: {huge_flows} simultaneous sources "
          f"({huge['packets']} packets measured)")
    if huge_flows < 1000000:
        fail(f"many_flows.huge.flows = {huge_flows} < 1000000: the 10^6 claim "
             "was not run")
        failures += 1

    ratio = float(mf["cost_ratio"])
    print(
        f"flat-cost: {float(mf['small']['ns_per_packet']):.0f} ns/packet at "
        f"{mf['small']['flows']} flows vs {float(large['ns_per_packet']):.0f} at "
        f"{flows} -> ratio {ratio:.3f} (max {cost_ratio_max:.2f})"
    )
    if ratio > cost_ratio_max:
        fail(
            f"many_flows.cost_ratio = {ratio:.3f} > {cost_ratio_max}: per-packet "
            "cost is no longer flat in the flow population"
        )
        failures += 1

    huge_ratio = float(mf["huge_cost_ratio"])
    print(
        f"flat-cost: {float(huge['ns_per_packet']):.0f} ns/packet at "
        f"{huge_flows} -> ratio {huge_ratio:.3f} (max {huge_ratio_max:.2f})"
    )
    if huge_ratio > huge_ratio_max:
        fail(
            f"many_flows.huge_cost_ratio = {huge_ratio:.3f} > {huge_ratio_max}: "
            "the 10^6-flow population pays more than the budgeted per-packet cost"
        )
        failures += 1

    budget = float(mf["bytes_per_flow_budget"])
    for side in ("small", "large", "huge"):
        bpf = float(mf[side]["bytes_per_flow"])
        verdict = "ok" if bpf <= budget else "FAIL"
        print(f"driver footprint at {mf[side]['flows']} flows: {bpf:.1f} "
              f"bytes/flow (budget {budget:.0f}) {verdict}")
        if bpf > budget:
            fail(f"many_flows.{side}.bytes_per_flow = {bpf:.1f} > {budget:.0f}: "
                 "the per-flow memory diet regressed")
            failures += 1

    tiers = sorted(doc["scheduler_tiers"], key=lambda t: int(t["pending"]))
    top = tiers[-1]
    floor = min_tier_speedup
    if doc.get("smoke", False):
        floor *= 0.6
        print(
            f"tier gate: smoke run — speedup floor relaxed to {floor:.2f}x "
            "(single-rep medians; the committed full-run artifact is the "
            "reference measurement)"
        )
    speedup = float(top["speedup"])
    print(
        f"tier speedup at {top['pending']} pending: wheel "
        f"{float(top['wheel_ev_per_sec']) / 1e6:.2f} Mev/s vs heap "
        f"{float(top['heap_ev_per_sec']) / 1e6:.2f} -> {speedup:.2f}x "
        f"(floor {floor:.2f}x)"
    )
    if speedup < floor:
        fail(
            f"scheduler_tiers speedup at {top['pending']} pending = "
            f"{speedup:.2f}x < {floor:.2f}x: the calendar tier lost its edge "
            "over the heap at population scale"
        )
        failures += 1

    for t in tiers:
        if int(t["pending"]) < 100000:
            continue
        eps = float(t["wheel_ev_per_sec"])
        verdict = "ok" if eps >= min_wheel_eps else "FAIL"
        print(
            f"tier throughput at {t['pending']} pending: "
            f"{eps / 1e6:.2f} Mev/s (floor {min_wheel_eps / 1e6:.1f}) {verdict}"
        )
        if eps < min_wheel_eps:
            fail(
                f"wheel throughput at {t['pending']} pending = {eps:,.0f} ev/s "
                f"< {min_wheel_eps:,.0f}: absolute event-rate backstop"
            )
            failures += 1

    for side in ("small", "large", "huge"):
        sub = mf[side]
        app = float(sub["allocs_per_packet"])
        print(f"alloc probe at {sub['flows']} flows: {app:.4f} allocs/packet "
              "(limit 0.01)")
        if app > 0.01:
            fail(f"many_flows.{side}.allocs_per_packet = {app} > 0.01: "
                 "the steady state allocates again")
            failures += 1

        growths = {
            k: int(sub[k])
            for k in (
                "scheduler_heap_capacity_growth", "scheduler_slot_capacity_growth",
                "scheduler_wheel_capacity_growth", "scheduler_run_capacity_growth",
            )
        }
        grew = {k: v for k, v in growths.items() if v != 0}
        print(f"pool growth at {sub['flows']} flows: "
              + ", ".join(f"{k.split('_')[1]} +{v}" for k, v in growths.items()))
        if grew:
            for k, v in grew.items():
                fail(f"many_flows.{side}.{k} = {v} != 0: a pre-sized scheduler "
                     "pool grew mid-window (reserve_runtime under-sizes)")
            failures += 1

    sharded = doc["sharded"]
    identical = bool(sharded["byte_identical"])
    print(f"sharded determinism: {len(sharded['runs'])} thread counts, "
          f"byte-identical = {identical}")
    if not identical:
        fail("sharded.byte_identical is false: the domain-sharded driver's end "
             "state diverged across DomainRunner thread counts")
        failures += 1
    failures += check_shard_scaling(sharded, min_shard_speedup)

    if failures == 0:
        print("bench_compare: many-flows PASS")
        return 0
    print(f"bench_compare: many-flows: {failures} check(s) failed")
    return 1


def check_chaos_schema(doc: dict) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"chaos: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "chaos_sweep":
        errors.append(f"chaos: bench must be 'chaos_sweep', got {doc.get('bench')!r}")
    for section, keys in {
        "campaign": ["schedules", "violations", "task_errors"],
        "shrink_selftest": ["original_events", "shrunk_events", "shrunk_still_violates"],
        "parallel_chaos": ["identical_across_workers"],
        "monitor_overhead": ["overhead_frac"],
        "resume": ["identical_to_uninterrupted", "torn_tail_detected"],
    }.items():
        sub = doc.get(section)
        if not isinstance(sub, dict):
            errors.append(f"chaos: missing section '{section}'")
            continue
        for k in keys:
            if k not in sub:
                errors.append(f"chaos: missing {section}.{k}")
    return errors


def check_chaos(doc: dict, monitor_budget: float) -> int:
    """Gate the chaos harness JSON on its own invariants; returns exit code."""
    errors = check_chaos_schema(doc)
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0
    campaign = doc["campaign"]
    violations = int(campaign["violations"])
    task_errors = int(campaign["task_errors"])
    print(
        f"chaos campaign: {campaign['schedules']} schedules, "
        f"{violations} violations, {task_errors} task errors"
    )
    if violations != 0:
        fail(f"campaign.violations = {violations}: an invariant broke under a "
             "randomized fault schedule (repro JSON written by the bench)")
        failures += 1
    if task_errors != 0:
        fail(f"campaign.task_errors = {task_errors}: schedules failed outside the monitor")
        failures += 1

    st = doc["shrink_selftest"]
    still = bool(st["shrunk_still_violates"])
    grew = int(st["shrunk_events"]) > int(st["original_events"])
    print(
        f"shrinker selftest: {st['original_events']} -> {st['shrunk_events']} events, "
        f"minimized repro {'replays' if still else 'DOES NOT replay'}"
    )
    if not still:
        fail("shrink_selftest.shrunk_still_violates is false: the minimized "
             "plan no longer reproduces its violation")
        failures += 1
    if grew:
        fail(f"shrinker grew the plan ({st['original_events']} -> {st['shrunk_events']} events)")
        failures += 1

    if not bool(doc["parallel_chaos"]["identical_across_workers"]):
        fail("parallel_chaos.identical_across_workers is false: fault injection "
             "broke the DomainRunner determinism contract")
        failures += 1
    else:
        print(f"parallel chaos: {doc['parallel_chaos'].get('schedules', '?')} "
              "schedules byte-identical across worker counts")

    resume = doc["resume"]
    if not bool(resume["identical_to_uninterrupted"]):
        fail("resume.identical_to_uninterrupted is false: a resumed sweep "
             "produced a different table")
        failures += 1
    if not bool(resume["torn_tail_detected"]):
        fail("resume.torn_tail_detected is false: the journal accepted a torn line")
        failures += 1
    if bool(resume["identical_to_uninterrupted"]) and bool(resume["torn_tail_detected"]):
        print(
            f"resume: reused {resume.get('reused', '?')}, re-ran "
            f"{resume.get('executed', '?')}, table byte-identical"
        )

    overhead = float(doc["monitor_overhead"]["overhead_frac"])
    noise = doc["monitor_overhead"].get("noise_floor_frac")
    noise_note = f", noise floor {100 * float(noise):.2f}%" if noise is not None else ""
    print(
        f"monitor overhead: {100 * overhead:.2f}% "
        f"(gate {100 * monitor_budget:.0f}%, recorded target 3%{noise_note})"
    )
    if overhead > monitor_budget:
        fail(
            f"monitor_overhead.overhead_frac = {overhead:.4f} > {monitor_budget}: "
            "the invariant monitor slows the pipeline too much"
        )
        failures += 1

    if failures == 0:
        print("bench_compare: chaos PASS")
        return 0
    print(f"bench_compare: chaos: {failures} check(s) failed")
    return 1


def chaos_selftest_doc() -> dict:
    return {
        "schema_version": 1,
        "bench": "chaos_sweep",
        "smoke": False,
        "campaign": {"schedules": 200, "seed": 1, "violations": 0, "task_errors": 0},
        "shrink_selftest": {
            "original_events": 6,
            "shrunk_events": 1,
            "probes": 13,
            "shrunk_still_violates": True,
        },
        "parallel_chaos": {"schedules": 8, "identical_across_workers": True},
        "monitor_overhead": {
            "overhead_frac": 0.02,
            "overhead_frac_raw": 0.02,
            "noise_floor_frac": 0.03,
        },
        "resume": {
            "reused": 5,
            "executed": 3,
            "torn_tail_detected": True,
            "identical_to_uninterrupted": True,
        },
    }


def manyflows_selftest_doc() -> dict:
    def side(flows: int, ns: float, allocs: float) -> dict:
        return {
            "flows": flows,
            "packets": 500000,
            "ns_per_packet": ns,
            "allocs_per_packet": allocs,
            "scheduler_heap_capacity_growth": 0,
            "scheduler_slot_capacity_growth": 0,
            "scheduler_wheel_capacity_growth": 0,
            "scheduler_run_capacity_growth": 0,
            "driver_bytes": flows * 198,
            "bytes_per_flow": 198.0,
        }

    return {
        "schema_version": 1,
        "bench": "many_flows",
        "smoke": False,
        "scheduler_tiers": [
            {"pending": 1000, "heap_ev_per_sec": 9.0e6,
             "wheel_ev_per_sec": 2.2e7, "speedup": 2.4},
            {"pending": 100000, "heap_ev_per_sec": 4.2e6,
             "wheel_ev_per_sec": 1.1e7, "speedup": 2.7},
            {"pending": 1000000, "heap_ev_per_sec": 2.1e6,
             "wheel_ev_per_sec": 6.9e6, "speedup": 3.3},
        ],
        "many_flows": {
            "small": side(1000, 520.0, 0.0002),
            "large": side(100000, 545.0, 0.0),
            "huge": side(1000000, 610.0, 0.0),
            "cost_ratio": 1.05,
            "huge_cost_ratio": 1.17,
            "bytes_per_flow_budget": 256,
        },
        "sharded": {
            "hardware_concurrency": 8,
            "byte_identical": True,
            "runs": [
                {"requested_threads": 1, "effective_threads": 1, "wall_ms": 100.0,
                 "speedup_vs_serial": 1.0, "per_worker_speedup": 1.0},
                {"requested_threads": 2, "effective_threads": 2, "wall_ms": 56.0,
                 "speedup_vs_serial": 1.79, "per_worker_speedup": 0.89},
                {"requested_threads": 5, "effective_threads": 5, "wall_ms": 32.0,
                 "speedup_vs_serial": 3.12, "per_worker_speedup": 0.62},
            ],
        },
    }


FAIRNESS_CELLS_FULL = [
    "mkc_vs_mkc", "mkc_vs_cubic", "mkc_vs_dcqcn", "mkc_vs_swift",
    "mkc_vs_scream", "cubic_vs_scream", "mkc_rtt_diverse", "cubic_rtt_diverse",
    "mkc_cubic_1_3", "mkc_cubic_3_1", "mkc_vs_tcp", "cubic_scream_vs_tcp",
]
FAIRNESS_CELLS_SMOKE = [
    "smoke_mkc_vs_cubic", "smoke_mkc_vs_dcqcn", "smoke_mkc_rtt_diverse",
]


def check_fairness_schema(doc: dict) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(
            f"fairness: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "fairness_matrix":
        errors.append(
            f"fairness: bench must be 'fairness_matrix', got {doc.get('bench')!r}")
    if not isinstance(doc.get("cells"), list) or not doc.get("cells"):
        errors.append("fairness: missing or empty 'cells' list")
    if not isinstance(doc.get("summary"), dict):
        errors.append("fairness: missing 'summary'")
    for i, cell in enumerate(doc.get("cells") or []):
        for k in ("label", "jain_video", "share_a", "share_b", "share_tcp",
                  "base_protection", "delay_p50_ms", "delay_p95_ms", "delay_p99_ms"):
            if k not in cell:
                errors.append(f"fairness: cells[{i}] missing '{k}'")
    return errors


def check_fairness(doc: dict, min_base_protection: float) -> int:
    """Gate the fairness-matrix JSON on its own invariants; returns exit code."""
    errors = check_fairness_schema(doc)
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0
    cells = doc["cells"]
    expected = FAIRNESS_CELLS_SMOKE if doc.get("smoke") else FAIRNESS_CELLS_FULL
    present = {c["label"] for c in cells}
    for label in expected:
        if label not in present:
            fail(f"fairness: expected cell '{label}' missing from the matrix")
            failures += 1

    min_jain = 1.0
    min_protection = 1.0
    for cell in cells:
        label = cell["label"]
        jain = float(cell["jain_video"])
        if not (0.0 <= jain <= 1.0):
            fail(f"fairness[{label}]: jain_video = {jain} outside [0, 1]")
            failures += 1
        share_sum = (float(cell["share_a"]) + float(cell["share_b"])
                     + float(cell["share_tcp"]))
        if abs(share_sum - 1.0) > 1e-6:
            fail(f"fairness[{label}]: class shares sum to {share_sum:.6f}, expected 1")
            failures += 1
        protection = float(cell["base_protection"])
        if protection < min_base_protection:
            fail(f"fairness[{label}]: base_protection = {protection:.3f} < "
                 f"{min_base_protection}: the AQM stopped protecting the base layer")
            failures += 1
        p50 = float(cell["delay_p50_ms"])
        p95 = float(cell["delay_p95_ms"])
        p99 = float(cell["delay_p99_ms"])
        if not (0.0 < p50 <= p95 <= p99):
            fail(f"fairness[{label}]: delay percentiles not positive/monotone "
                 f"(p50 {p50}, p95 {p95}, p99 {p99})")
            failures += 1
        min_jain = min(min_jain, jain)
        min_protection = min(min_protection, protection)

    summary = doc["summary"]
    for key, computed in (("min_jain", min_jain),
                          ("min_base_protection", min_protection)):
        claimed = summary.get(key)
        if claimed is None or abs(float(claimed) - computed) > 1e-6:
            fail(f"fairness: summary.{key} = {claimed!r} disagrees with the "
                 f"per-cell minimum {computed:.6f}")
            failures += 1

    if failures == 0:
        print(f"bench_compare: fairness PASS ({len(cells)} cells, min Jain "
              f"{min_jain:.3f}, min base protection {min_protection:.3f})")
        return 0
    print(f"bench_compare: fairness: {failures} check(s) failed")
    return 1


def fairness_selftest_doc() -> dict:
    def cell(label: str, jain: float, share_a: float, share_b: float,
             share_tcp: float) -> dict:
        return {
            "label": label,
            "jain_video": jain,
            "share_a": share_a,
            "share_b": share_b,
            "share_tcp": share_tcp,
            "base_protection": 0.998,
            "delay_p50_ms": 16.0,
            "delay_p95_ms": 17.1,
            "delay_p99_ms": 17.8,
            "ecn_marks": 1200,
            "video_goodputs_bps": [9.0e5, 9.1e5],
            "tcp_goodputs_bps": [],
        }

    cells = [cell("smoke_mkc_vs_cubic", 0.61, 0.10, 0.90, 0.0),
             cell("smoke_mkc_vs_dcqcn", 0.57, 0.07, 0.93, 0.0),
             cell("smoke_mkc_rtt_diverse", 1.0, 0.50, 0.50, 0.0)]
    return {
        "schema_version": 1,
        "bench": "fairness_matrix",
        "label": "selftest",
        "smoke": True,
        "cells": cells,
        "summary": {
            "cells": len(cells),
            "min_jain": 0.57,
            "min_base_protection": 0.998,
        },
    }


def selftest() -> int:
    """Prove the gate detects an injected regression (and passes a clean run)."""
    baseline = {
        "schema_version": 1,
        "bench": "micro_pipeline",
        "smoke": False,
        "hardware_threads": 8,
        "pipeline": {
            "median_wall_ms": 1000.0,
            "data_packets": 500000,
            "data_pkts_per_sec": 400000.0,
        },
        "telemetry": {
            "data_pkts_per_sec": 396000.0,
            "overhead_frac": 0.01,
            "overhead_frac_raw": 0.01,
            "noise_floor_frac": 0.02,
        },
        "alloc_probe": {"allocs_per_packet": 0.0, "steady_allocs": 0},
        "sweep_scaling": [
            {"threads": 1, "effective_threads": 1, "oversubscribed": False,
             "speedup": 1.0, "identical_to_serial": True},
            {"threads": 2, "effective_threads": 2, "oversubscribed": False,
             "speedup": 1.8, "identical_to_serial": True},
            {"threads": 8, "effective_threads": 8, "oversubscribed": False,
             "speedup": 5.5, "identical_to_serial": True},
            {"threads": 16, "effective_threads": 8, "oversubscribed": True,
             "speedup": 5.2, "identical_to_serial": True},
        ],
    }
    clean = copy.deepcopy(baseline)
    print("--- selftest: clean run must pass")
    if compare(baseline, clean, 0.25, 0.05) != 0:
        fail("selftest: clean run did not pass")
        return 1

    print("--- selftest: ~30% throughput regression must fail")
    slow = copy.deepcopy(baseline)
    slow["pipeline"]["data_pkts_per_sec"] = 0.7 * baseline["pipeline"]["data_pkts_per_sec"]
    if compare(baseline, slow, 0.25, 0.05) != 1:
        fail("selftest: throughput regression not detected")
        return 1

    print("--- selftest: allocating hot path must fail")
    leaky = copy.deepcopy(baseline)
    leaky["alloc_probe"]["allocs_per_packet"] = 0.5
    if compare(baseline, leaky, 0.25, 0.05) != 1:
        fail("selftest: alloc regression not detected")
        return 1

    print("--- selftest: non-deterministic sweep must fail")
    nondet = copy.deepcopy(baseline)
    nondet["sweep_scaling"][1]["identical_to_serial"] = False
    if compare(baseline, nondet, 0.25, 0.05) != 1:
        fail("selftest: determinism break not detected")
        return 1

    print("--- selftest: parallel sweep slower than serial must fail")
    unscaling = copy.deepcopy(baseline)
    # The pre-fix symptom verbatim: more threads, *less* throughput.
    unscaling["sweep_scaling"][1]["speedup"] = 0.72
    unscaling["sweep_scaling"][2]["speedup"] = 0.64
    if compare(baseline, unscaling, 0.25, 0.05) != 1:
        fail("selftest: scaling regression not detected")
        return 1

    print("--- selftest: oversubscribed entry below floor must NOT fail")
    clamped = copy.deepcopy(baseline)
    clamped["sweep_scaling"][3]["speedup"] = 0.5  # annotated oversubscribed
    if compare(baseline, clamped, 0.25, 0.05) != 0:
        fail("selftest: oversubscribed entry was gated despite annotation")
        return 1

    print("--- selftest: single-core box must skip the scaling gate cleanly")
    single = copy.deepcopy(baseline)
    single["hardware_threads"] = 1
    for entry in single["sweep_scaling"]:
        entry["effective_threads"] = 1
        entry["oversubscribed"] = entry["threads"] > 1
        entry["speedup"] = 0.9 if entry["threads"] > 1 else 1.0
    if compare(baseline, single, 0.25, 0.05) != 0:
        fail("selftest: hw=1 run did not skip the scaling gate")
        return 1

    print("--- selftest: telemetry overhead blowout must fail")
    heavy = copy.deepcopy(baseline)
    heavy["telemetry"]["overhead_frac"] = 0.2
    if compare(baseline, heavy, 0.25, 0.05) != 1:
        fail("selftest: telemetry overhead not detected")
        return 1

    print("--- selftest: clean many-flows run must pass")
    if check_manyflows(manyflows_selftest_doc(), 1.5, 3.0, 2e6) != 0:
        fail("selftest: clean many-flows run did not pass")
        return 1

    print("--- selftest: superlinear per-packet cost must fail")
    costly = manyflows_selftest_doc()
    costly["many_flows"]["cost_ratio"] = 2.1
    if check_manyflows(costly, 1.5, 3.0, 2e6) != 1:
        fail("selftest: cost-ratio regression not detected")
        return 1

    print("--- selftest: tier speedup collapse at max pending must fail")
    flat = manyflows_selftest_doc()
    flat["scheduler_tiers"][-1]["speedup"] = 1.4
    if check_manyflows(flat, 1.5, 3.0, 2e6) != 1:
        fail("selftest: tier-speedup regression not detected")
        return 1

    print("--- selftest: smoke run relaxes the speedup floor")
    noisy = manyflows_selftest_doc()
    noisy["smoke"] = True
    noisy["scheduler_tiers"][-1]["speedup"] = 2.2  # < 3.0 but >= 0.6 * 3.0
    if check_manyflows(noisy, 1.5, 3.0, 2e6) != 0:
        fail("selftest: smoke relaxation did not apply")
        return 1

    print("--- selftest: uniformly slow wheel must fail the absolute backstop")
    crawling = manyflows_selftest_doc()
    crawling["scheduler_tiers"][-1]["heap_ev_per_sec"] = 0.4e6
    crawling["scheduler_tiers"][-1]["wheel_ev_per_sec"] = 1.4e6  # 3.5x but slow
    crawling["scheduler_tiers"][-1]["speedup"] = 3.5
    if check_manyflows(crawling, 1.5, 3.0, 2e6) != 1:
        fail("selftest: absolute throughput backstop not detected")
        return 1

    print("--- selftest: allocating many-flows steady state must fail")
    dripping = manyflows_selftest_doc()
    dripping["many_flows"]["large"]["allocs_per_packet"] = 0.3
    if check_manyflows(dripping, 1.5, 3.0, 2e6) != 1:
        fail("selftest: many-flows alloc regression not detected")
        return 1

    print("--- selftest: pool growth at 100k flows must fail")
    swelling = manyflows_selftest_doc()
    swelling["many_flows"]["large"]["scheduler_wheel_capacity_growth"] = 98658
    if check_manyflows(swelling, 1.5, 3.0, 2e6) != 1:
        fail("selftest: pool-growth regression not detected")
        return 1

    print("--- selftest: under-scale many-flows run must fail")
    shrunken = manyflows_selftest_doc()
    shrunken["many_flows"]["large"]["flows"] = 10000
    if check_manyflows(shrunken, 1.5, 3.0, 2e6) != 1:
        fail("selftest: under-scale run not detected")
        return 1

    print("--- selftest: under-scale 10^6 run must fail")
    shy = manyflows_selftest_doc()
    shy["many_flows"]["huge"]["flows"] = 500000
    if check_manyflows(shy, 1.5, 3.0, 2e6) != 1:
        fail("selftest: under-scale 10^6 run not detected")
        return 1

    print("--- selftest: superlinear 10^6 per-packet cost must fail")
    ballooning = manyflows_selftest_doc()
    ballooning["many_flows"]["huge_cost_ratio"] = 2.4
    if check_manyflows(ballooning, 1.5, 3.0, 2e6) != 1:
        fail("selftest: 10^6 cost-ratio regression not detected")
        return 1

    print("--- selftest: pool growth at 10^6 flows must fail")
    bulging = manyflows_selftest_doc()
    bulging["many_flows"]["huge"]["scheduler_wheel_capacity_growth"] = 7543
    if check_manyflows(bulging, 1.5, 3.0, 2e6) != 1:
        fail("selftest: 10^6 pool-growth regression not detected")
        return 1

    print("--- selftest: bytes/flow over budget must fail")
    obese = manyflows_selftest_doc()
    obese["many_flows"]["huge"]["bytes_per_flow"] = 412.0
    if check_manyflows(obese, 1.5, 3.0, 2e6) != 1:
        fail("selftest: bytes/flow regression not detected")
        return 1

    print("--- selftest: shard fingerprint divergence must fail")
    forked = manyflows_selftest_doc()
    forked["sharded"]["byte_identical"] = False
    if check_manyflows(forked, 1.5, 3.0, 2e6) != 1:
        fail("selftest: shard divergence not detected")
        return 1

    print("--- selftest: sharded run slower than serial must fail")
    crawly = manyflows_selftest_doc()
    crawly["sharded"]["runs"][1]["speedup_vs_serial"] = 0.55
    if check_manyflows(crawly, 1.5, 3.0, 2e6) != 1:
        fail("selftest: shard scaling regression not detected")
        return 1

    print("--- selftest: hw-clamped sharded entry below floor must NOT fail")
    pinched = manyflows_selftest_doc()
    pinched["sharded"]["hardware_concurrency"] = 2
    pinched["sharded"]["runs"][2]["effective_threads"] = 2
    pinched["sharded"]["runs"][2]["speedup_vs_serial"] = 0.5
    if check_manyflows(pinched, 1.5, 3.0, 2e6) != 0:
        fail("selftest: hw-clamped shard entry was gated despite annotation")
        return 1

    print("--- selftest: single-core box must skip the shard scaling gate")
    solo = manyflows_selftest_doc()
    solo["sharded"]["hardware_concurrency"] = 1
    for entry in solo["sharded"]["runs"]:
        entry["effective_threads"] = 1
        entry["speedup_vs_serial"] = 0.93
        entry["per_worker_speedup"] = 0.93
    if check_manyflows(solo, 1.5, 3.0, 2e6) != 0:
        fail("selftest: hw=1 run did not skip the shard scaling gate")
        return 1

    print("--- selftest: clean chaos run must pass")
    if check_chaos(chaos_selftest_doc(), 0.06) != 0:
        fail("selftest: clean chaos run did not pass")
        return 1

    print("--- selftest: campaign violation must fail")
    violated = chaos_selftest_doc()
    violated["campaign"]["violations"] = 1
    if check_chaos(violated, 0.06) != 1:
        fail("selftest: campaign violation not detected")
        return 1

    print("--- selftest: non-replaying shrunk repro must fail")
    stale = chaos_selftest_doc()
    stale["shrink_selftest"]["shrunk_still_violates"] = False
    if check_chaos(stale, 0.06) != 1:
        fail("selftest: non-replaying repro not detected")
        return 1

    print("--- selftest: faulted parallel divergence must fail")
    split = chaos_selftest_doc()
    split["parallel_chaos"]["identical_across_workers"] = False
    if check_chaos(split, 0.06) != 1:
        fail("selftest: parallel chaos divergence not detected")
        return 1

    print("--- selftest: non-identical resumed table must fail")
    drifted = chaos_selftest_doc()
    drifted["resume"]["identical_to_uninterrupted"] = False
    if check_chaos(drifted, 0.06) != 1:
        fail("selftest: resume divergence not detected")
        return 1

    print("--- selftest: monitor overhead blowout must fail")
    dragging = chaos_selftest_doc()
    dragging["monitor_overhead"]["overhead_frac"] = 0.15
    if check_chaos(dragging, 0.06) != 1:
        fail("selftest: monitor overhead not detected")
        return 1

    print("--- selftest: clean fairness run must pass")
    if check_fairness(fairness_selftest_doc(), 0.9) != 0:
        fail("selftest: clean fairness run did not pass")
        return 1

    print("--- selftest: base-layer protection collapse must fail")
    unguarded = fairness_selftest_doc()
    unguarded["cells"][0]["base_protection"] = 0.5
    unguarded["summary"]["min_base_protection"] = 0.5
    if check_fairness(unguarded, 0.9) != 1:
        fail("selftest: base-protection regression not detected")
        return 1

    print("--- selftest: Jain index outside [0, 1] must fail")
    impossible = fairness_selftest_doc()
    impossible["cells"][1]["jain_video"] = 1.2
    impossible["summary"]["min_jain"] = 0.61
    if check_fairness(impossible, 0.9) != 1:
        fail("selftest: out-of-domain Jain index not detected")
        return 1

    print("--- selftest: class shares not summing to 1 must fail")
    leaky = fairness_selftest_doc()
    leaky["cells"][0]["share_b"] = 0.70
    if check_fairness(leaky, 0.9) != 1:
        fail("selftest: share-sum violation not detected")
        return 1

    print("--- selftest: non-monotone delay percentiles must fail")
    scrambled = fairness_selftest_doc()
    scrambled["cells"][2]["delay_p95_ms"] = 12.0
    if check_fairness(scrambled, 0.9) != 1:
        fail("selftest: non-monotone percentiles not detected")
        return 1

    print("--- selftest: missing matrix cell must fail")
    truncated = fairness_selftest_doc()
    dropped = truncated["cells"].pop()
    truncated["summary"]["cells"] = len(truncated["cells"])
    truncated["summary"]["min_jain"] = min(
        c["jain_video"] for c in truncated["cells"])
    del dropped
    if check_fairness(truncated, 0.9) != 1:
        fail("selftest: missing cell not detected")
        return 1

    print("--- selftest: summary disagreeing with cells must fail")
    cooked = fairness_selftest_doc()
    cooked["summary"]["min_jain"] = 0.99
    if check_fairness(cooked, 0.9) != 1:
        fail("selftest: inconsistent summary not detected")
        return 1

    print("bench_compare: selftest PASS (all injected regressions detected)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_pipeline.json")
    ap.add_argument("--current", help="freshly produced micro_pipeline JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop in data_pkts_per_sec (default 0.25)",
    )
    ap.add_argument(
        "--telemetry-budget",
        type=float,
        default=0.05,
        help="max telemetry.overhead_frac in the current run (default 0.05)",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=0.8,
        help="minimum sweep speedup at >= 2 effective workers on a multi-core "
        "box (default 0.8; the gate skips when hardware_threads < 2)",
    )
    ap.add_argument(
        "--chaos-current",
        help="freshly produced chaos_sweep JSON (BENCH_chaos.json); gated on "
        "its own invariants, no baseline needed",
    )
    ap.add_argument(
        "--manyflows-current",
        help="freshly produced many_flows JSON (BENCH_manyflows.json); gated "
        "on its own acceptance bars, no baseline needed",
    )
    ap.add_argument(
        "--cost-ratio-max",
        type=float,
        default=1.5,
        help="max many_flows per-packet cost ratio 100k/1k flows (default 1.5)",
    )
    ap.add_argument(
        "--min-tier-speedup",
        type=float,
        default=3.0,
        help="min wheel-vs-heap speedup at the largest pending population "
        "(default 3.0; smoke runs relax the floor by 0.6x)",
    )
    ap.add_argument(
        "--min-wheel-eps",
        type=float,
        default=2e6,
        help="min wheel events/s at every pending >= 100000 (default 2e6)",
    )
    ap.add_argument(
        "--huge-cost-ratio-max",
        type=float,
        default=2.0,
        help="max many_flows per-packet cost ratio 1M/1k flows (default 2.0)",
    )
    ap.add_argument(
        "--min-shard-speedup",
        type=float,
        default=0.8,
        help="minimum sharded-driver speedup over serial at >= 2 effective "
        "workers (default 0.8; skipped when hardware_concurrency < 2)",
    )
    ap.add_argument(
        "--fairness-current",
        help="freshly produced fairness_matrix JSON (BENCH_fairness.json); "
        "gated on its own invariants, no baseline needed",
    )
    ap.add_argument(
        "--min-base-protection",
        type=float,
        default=0.9,
        help="minimum per-cell base-layer protection in the fairness matrix "
        "(default 0.9)",
    )
    ap.add_argument(
        "--monitor-budget",
        type=float,
        default=0.06,
        help="max monitor_overhead.overhead_frac in the chaos run (default "
        "0.06; the recorded target is 0.03)",
    )
    ap.add_argument("--selftest", action="store_true", help="run the gate self-check")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if (not args.chaos_current and not args.manyflows_current
            and not args.fairness_current
            and (not args.baseline or not args.current)):
        ap.error("--baseline and --current are required (or --chaos-current, "
                 "--manyflows-current, --fairness-current, or --selftest)")
    rc = 0
    if args.baseline and args.current:
        rc = compare(load(args.baseline), load(args.current), args.tolerance,
                     args.telemetry_budget, args.min_speedup)
    if args.chaos_current:
        rc = max(rc, check_chaos(load(args.chaos_current), args.monitor_budget))
    if args.manyflows_current:
        rc = max(rc, check_manyflows(load(args.manyflows_current), args.cost_ratio_max,
                                     args.min_tier_speedup, args.min_wheel_eps,
                                     args.huge_cost_ratio_max, args.min_shard_speedup))
    if args.fairness_current:
        rc = max(rc, check_fairness(load(args.fairness_current),
                                    args.min_base_protection))
    return rc


if __name__ == "__main__":
    sys.exit(main())
