#!/usr/bin/env python3
"""Bench regression gate: compare a fresh micro_pipeline JSON against the
committed baseline (BENCH_pipeline.json, schema v1).

Checks, in order:
  1. schema: both files carry schema_version 1 and the micro_pipeline layout;
  2. throughput: current pipeline.data_pkts_per_sec must not fall more than
     --tolerance (default 25%) below the baseline — CI machines are noisy, so
     the band is wide; a real hot-path regression blows straight through it;
  3. current-run invariants, independent of the baseline:
       - alloc_probe.allocs_per_packet <= 0.01 (the steady state is
         allocation-free by design),
       - every sweep_scaling entry is identical_to_serial (determinism),
       - telemetry.overhead_frac <= --telemetry-budget (default 5%; the
         recorded target is 2%, the gate adds noise margin).

Determinism notes (data_packets vs baseline) are warnings only: simulated
delivery counts shift whenever scenario behaviour legitimately changes, and
the per-run telemetry-vs-plain equality is already enforced by the bench
binary itself.

Exit status: 0 = pass, 1 = regression/invariant failure, 2 = bad input.

Usage:
  tools/bench_compare.py --baseline BENCH_pipeline.json --current build/BENCH_pipeline.json
  tools/bench_compare.py --selftest        # prove the gate trips on a regression
"""

from __future__ import annotations

import argparse
import copy
import json
import sys


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}")
        sys.exit(2)


def check_schema(doc: dict, label: str) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"{label}: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "micro_pipeline":
        errors.append(f"{label}: bench must be 'micro_pipeline', got {doc.get('bench')!r}")
    for section, keys in {
        "pipeline": ["median_wall_ms", "data_packets", "data_pkts_per_sec"],
        "telemetry": ["data_pkts_per_sec", "overhead_frac"],
        "alloc_probe": ["allocs_per_packet", "steady_allocs"],
    }.items():
        sub = doc.get(section)
        if not isinstance(sub, dict):
            errors.append(f"{label}: missing section '{section}'")
            continue
        for k in keys:
            if k not in sub:
                errors.append(f"{label}: missing {section}.{k}")
    if not isinstance(doc.get("sweep_scaling"), list) or not doc["sweep_scaling"]:
        errors.append(f"{label}: sweep_scaling must be a non-empty list")
    return errors


def compare(baseline: dict, current: dict, tolerance: float, telemetry_budget: float) -> int:
    errors = check_schema(baseline, "baseline") + check_schema(current, "current")
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0

    base_pps = float(baseline["pipeline"]["data_pkts_per_sec"])
    cur_pps = float(current["pipeline"]["data_pkts_per_sec"])
    floor = (1.0 - tolerance) * base_pps
    ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
    print(
        f"throughput: baseline {base_pps:,.0f} pkts/s, current {cur_pps:,.0f} pkts/s "
        f"({100.0 * (ratio - 1.0):+.1f}%, floor {floor:,.0f})"
    )
    if cur_pps < floor:
        fail(
            f"pipeline.data_pkts_per_sec regressed beyond {100 * tolerance:.0f}% "
            f"tolerance ({cur_pps:,.0f} < {floor:,.0f})"
        )
        failures += 1

    app = float(current["alloc_probe"]["allocs_per_packet"])
    print(f"alloc probe: {app:.4f} allocs/packet (limit 0.01)")
    if app > 0.01:
        fail(f"alloc_probe.allocs_per_packet = {app} > 0.01: hot path allocates again")
        failures += 1

    non_identical = [
        s for s in current["sweep_scaling"] if not s.get("identical_to_serial", False)
    ]
    print(
        f"sweep determinism: {len(current['sweep_scaling'])} thread counts, "
        f"{len(non_identical)} non-identical"
    )
    if non_identical:
        threads = ", ".join(str(s.get("threads")) for s in non_identical)
        fail(f"sweep output not byte-identical to serial at threads: {threads}")
        failures += 1

    overhead = float(current["telemetry"]["overhead_frac"])
    print(
        f"telemetry overhead: {100 * overhead:.2f}% "
        f"(gate {100 * telemetry_budget:.0f}%, recorded target 2%)"
    )
    if overhead > telemetry_budget:
        fail(
            f"telemetry.overhead_frac = {overhead:.4f} > {telemetry_budget}: "
            "sampling slows the pipeline too much"
        )
        failures += 1

    base_pkts = baseline["pipeline"]["data_packets"]
    cur_pkts = current["pipeline"]["data_packets"]
    if base_pkts != cur_pkts and not current.get("smoke", False):
        print(
            f"bench_compare: note: simulated data_packets changed "
            f"({base_pkts} -> {cur_pkts}); expected only when scenario "
            "behaviour intentionally changed"
        )

    if failures == 0:
        print("bench_compare: PASS")
        return 0
    print(f"bench_compare: {failures} check(s) failed")
    return 1


def selftest() -> int:
    """Prove the gate detects an injected regression (and passes a clean run)."""
    baseline = {
        "schema_version": 1,
        "bench": "micro_pipeline",
        "smoke": False,
        "pipeline": {
            "median_wall_ms": 1000.0,
            "data_packets": 500000,
            "data_pkts_per_sec": 400000.0,
        },
        "telemetry": {"data_pkts_per_sec": 396000.0, "overhead_frac": 0.01},
        "alloc_probe": {"allocs_per_packet": 0.0, "steady_allocs": 0},
        "sweep_scaling": [
            {"threads": 1, "identical_to_serial": True},
            {"threads": 8, "identical_to_serial": True},
        ],
    }
    clean = copy.deepcopy(baseline)
    print("--- selftest: clean run must pass")
    if compare(baseline, clean, 0.25, 0.05) != 0:
        fail("selftest: clean run did not pass")
        return 1

    print("--- selftest: ~30% throughput regression must fail")
    slow = copy.deepcopy(baseline)
    slow["pipeline"]["data_pkts_per_sec"] = 0.7 * baseline["pipeline"]["data_pkts_per_sec"]
    if compare(baseline, slow, 0.25, 0.05) != 1:
        fail("selftest: throughput regression not detected")
        return 1

    print("--- selftest: allocating hot path must fail")
    leaky = copy.deepcopy(baseline)
    leaky["alloc_probe"]["allocs_per_packet"] = 0.5
    if compare(baseline, leaky, 0.25, 0.05) != 1:
        fail("selftest: alloc regression not detected")
        return 1

    print("--- selftest: non-deterministic sweep must fail")
    nondet = copy.deepcopy(baseline)
    nondet["sweep_scaling"][1]["identical_to_serial"] = False
    if compare(baseline, nondet, 0.25, 0.05) != 1:
        fail("selftest: determinism break not detected")
        return 1

    print("--- selftest: telemetry overhead blowout must fail")
    heavy = copy.deepcopy(baseline)
    heavy["telemetry"]["overhead_frac"] = 0.2
    if compare(baseline, heavy, 0.25, 0.05) != 1:
        fail("selftest: telemetry overhead not detected")
        return 1

    print("bench_compare: selftest PASS (all injected regressions detected)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_pipeline.json")
    ap.add_argument("--current", help="freshly produced micro_pipeline JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop in data_pkts_per_sec (default 0.25)",
    )
    ap.add_argument(
        "--telemetry-budget",
        type=float,
        default=0.05,
        help="max telemetry.overhead_frac in the current run (default 0.05)",
    )
    ap.add_argument("--selftest", action="store_true", help="run the gate self-check")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required (or use --selftest)")
    return compare(load(args.baseline), load(args.current), args.tolerance, args.telemetry_budget)


if __name__ == "__main__":
    sys.exit(main())
