#!/usr/bin/env python3
"""Bench regression gate: compare a fresh micro_pipeline JSON against the
committed baseline (BENCH_pipeline.json, schema v1).

Checks, in order:
  1. schema: both files carry schema_version 1 and the micro_pipeline layout;
  2. throughput: current pipeline.data_pkts_per_sec must not fall more than
     --tolerance (default 25%) below the baseline — CI machines are noisy, so
     the band is wide; a real hot-path regression blows straight through it;
  3. current-run invariants, independent of the baseline:
       - alloc_probe.allocs_per_packet <= 0.01 (the steady state is
         allocation-free by design),
       - every sweep_scaling entry is identical_to_serial (determinism),
       - telemetry.overhead_frac <= --telemetry-budget (default 5%; the
         recorded target is 2%, the gate adds noise margin);
  4. scaling: on a box with hardware_threads >= 2, every sweep_scaling entry
     actually running >= 2 effective (non-oversubscribed) workers must reach
     at least --min-speedup (default 0.8x) over serial — parallelism that
     makes the sweep *slower* is a dispatch-contention regression, the exact
     failure mode the single-mutex pool had. Oversubscribed entries
     (requested > hardware, annotated by the bench) are exempt: the clamp
     makes them duplicates of the at-hardware point. On a single-core box
     the whole check is skipped with a notice — there is nothing to scale.

Determinism notes (data_packets vs baseline) are warnings only: simulated
delivery counts shift whenever scenario behaviour legitimately changes, and
the per-run telemetry-vs-plain equality is already enforced by the bench
binary itself.

The chaos harness (--chaos-current, BENCH_chaos.json from bench/chaos_sweep)
is gated on current-run invariants only — there is no meaningful baseline for
"zero violations":
  - campaign.violations == 0 and campaign.task_errors == 0;
  - shrink_selftest.shrunk_still_violates (the minimized repro must replay)
    and shrunk_events <= original_events;
  - parallel_chaos.identical_across_workers (determinism survives faults);
  - resume.identical_to_uninterrupted and resume.torn_tail_detected;
  - monitor_overhead.overhead_frac <= --monitor-budget (default 6%; the
    recorded target is 3%, the gate adds noise margin).

Exit status: 0 = pass, 1 = regression/invariant failure, 2 = bad input.

Usage:
  tools/bench_compare.py --baseline BENCH_pipeline.json --current build/BENCH_pipeline.json
  tools/bench_compare.py --chaos-current build/BENCH_chaos.json
  tools/bench_compare.py --selftest        # prove the gate trips on a regression
"""

from __future__ import annotations

import argparse
import copy
import json
import sys


def fail(msg: str) -> None:
    print(f"bench_compare: FAIL: {msg}")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}")
        sys.exit(2)


def check_schema(doc: dict, label: str) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"{label}: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "micro_pipeline":
        errors.append(f"{label}: bench must be 'micro_pipeline', got {doc.get('bench')!r}")
    for section, keys in {
        "pipeline": ["median_wall_ms", "data_packets", "data_pkts_per_sec"],
        "telemetry": ["data_pkts_per_sec", "overhead_frac"],
        "alloc_probe": ["allocs_per_packet", "steady_allocs"],
    }.items():
        sub = doc.get(section)
        if not isinstance(sub, dict):
            errors.append(f"{label}: missing section '{section}'")
            continue
        for k in keys:
            if k not in sub:
                errors.append(f"{label}: missing {section}.{k}")
    if not isinstance(doc.get("sweep_scaling"), list) or not doc["sweep_scaling"]:
        errors.append(f"{label}: sweep_scaling must be a non-empty list")
    return errors


def check_scaling(current: dict, min_speedup: float) -> int:
    """Gate the sweep's parallel speedup; returns the number of failures.

    Skips cleanly (with a notice) when the box cannot scale: either
    hardware_threads < 2, or no entry ran >= 2 effective workers without
    oversubscription. Entries missing the per-entry thread fields (a JSON
    from an older binary) fall back to treating requested == effective.
    """
    hw = int(current.get("hardware_threads", 0))
    if hw < 2:
        print(
            f"scaling gate: SKIPPED (hardware_threads = {hw}; a single-core "
            "box has nothing to scale)"
        )
        return 0
    failures = 0
    gated = 0
    for entry in current["sweep_scaling"]:
        requested = int(entry.get("threads", 1))
        effective = int(entry.get("effective_threads", requested))
        oversub = bool(entry.get("oversubscribed", requested > hw))
        speedup = float(entry.get("speedup", 0.0))
        if effective < 2:
            continue
        if oversub:
            print(
                f"scaling gate: threads={requested} oversubscribed "
                f"(effective {effective} of {hw} hw) — annotated, not gated"
            )
            continue
        gated += 1
        verdict = "ok" if speedup >= min_speedup else "FAIL"
        print(
            f"scaling gate: threads={requested} (effective {effective}) "
            f"speedup {speedup:.2f}x (floor {min_speedup:.2f}x) {verdict}"
        )
        if speedup < min_speedup:
            fail(
                f"sweep_scaling threads={requested} speedup {speedup:.2f}x "
                f"< {min_speedup:.2f}x: parallel dispatch is eating its own gains"
            )
            failures += 1
    if gated == 0 and failures == 0:
        print(
            "scaling gate: SKIPPED (no entry with >= 2 effective, "
            "non-oversubscribed workers)"
        )
    return failures


def compare(baseline: dict, current: dict, tolerance: float, telemetry_budget: float,
            min_speedup: float = 0.8) -> int:
    errors = check_schema(baseline, "baseline") + check_schema(current, "current")
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0

    base_pps = float(baseline["pipeline"]["data_pkts_per_sec"])
    cur_pps = float(current["pipeline"]["data_pkts_per_sec"])
    floor = (1.0 - tolerance) * base_pps
    ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
    print(
        f"throughput: baseline {base_pps:,.0f} pkts/s, current {cur_pps:,.0f} pkts/s "
        f"({100.0 * (ratio - 1.0):+.1f}%, floor {floor:,.0f})"
    )
    if cur_pps < floor:
        fail(
            f"pipeline.data_pkts_per_sec regressed beyond {100 * tolerance:.0f}% "
            f"tolerance ({cur_pps:,.0f} < {floor:,.0f})"
        )
        failures += 1

    app = float(current["alloc_probe"]["allocs_per_packet"])
    print(f"alloc probe: {app:.4f} allocs/packet (limit 0.01)")
    if app > 0.01:
        fail(f"alloc_probe.allocs_per_packet = {app} > 0.01: hot path allocates again")
        failures += 1

    non_identical = [
        s for s in current["sweep_scaling"] if not s.get("identical_to_serial", False)
    ]
    print(
        f"sweep determinism: {len(current['sweep_scaling'])} thread counts, "
        f"{len(non_identical)} non-identical"
    )
    if non_identical:
        threads = ", ".join(str(s.get("threads")) for s in non_identical)
        fail(f"sweep output not byte-identical to serial at threads: {threads}")
        failures += 1

    failures += check_scaling(current, min_speedup)

    overhead = float(current["telemetry"]["overhead_frac"])
    noise = current["telemetry"].get("noise_floor_frac")
    noise_note = f", noise floor {100 * float(noise):.2f}%" if noise is not None else ""
    print(
        f"telemetry overhead: {100 * overhead:.2f}% "
        f"(gate {100 * telemetry_budget:.0f}%, recorded target 2%{noise_note})"
    )
    if overhead > telemetry_budget:
        fail(
            f"telemetry.overhead_frac = {overhead:.4f} > {telemetry_budget}: "
            "sampling slows the pipeline too much"
        )
        failures += 1

    base_pkts = baseline["pipeline"]["data_packets"]
    cur_pkts = current["pipeline"]["data_packets"]
    if base_pkts != cur_pkts and not current.get("smoke", False):
        print(
            f"bench_compare: note: simulated data_packets changed "
            f"({base_pkts} -> {cur_pkts}); expected only when scenario "
            "behaviour intentionally changed"
        )

    if failures == 0:
        print("bench_compare: PASS")
        return 0
    print(f"bench_compare: {failures} check(s) failed")
    return 1


def check_chaos_schema(doc: dict) -> list[str]:
    errors = []
    if doc.get("schema_version") != 1:
        errors.append(f"chaos: schema_version must be 1, got {doc.get('schema_version')!r}")
    if doc.get("bench") != "chaos_sweep":
        errors.append(f"chaos: bench must be 'chaos_sweep', got {doc.get('bench')!r}")
    for section, keys in {
        "campaign": ["schedules", "violations", "task_errors"],
        "shrink_selftest": ["original_events", "shrunk_events", "shrunk_still_violates"],
        "parallel_chaos": ["identical_across_workers"],
        "monitor_overhead": ["overhead_frac"],
        "resume": ["identical_to_uninterrupted", "torn_tail_detected"],
    }.items():
        sub = doc.get(section)
        if not isinstance(sub, dict):
            errors.append(f"chaos: missing section '{section}'")
            continue
        for k in keys:
            if k not in sub:
                errors.append(f"chaos: missing {section}.{k}")
    return errors


def check_chaos(doc: dict, monitor_budget: float) -> int:
    """Gate the chaos harness JSON on its own invariants; returns exit code."""
    errors = check_chaos_schema(doc)
    if errors:
        for e in errors:
            fail(e)
        return 2

    failures = 0
    campaign = doc["campaign"]
    violations = int(campaign["violations"])
    task_errors = int(campaign["task_errors"])
    print(
        f"chaos campaign: {campaign['schedules']} schedules, "
        f"{violations} violations, {task_errors} task errors"
    )
    if violations != 0:
        fail(f"campaign.violations = {violations}: an invariant broke under a "
             "randomized fault schedule (repro JSON written by the bench)")
        failures += 1
    if task_errors != 0:
        fail(f"campaign.task_errors = {task_errors}: schedules failed outside the monitor")
        failures += 1

    st = doc["shrink_selftest"]
    still = bool(st["shrunk_still_violates"])
    grew = int(st["shrunk_events"]) > int(st["original_events"])
    print(
        f"shrinker selftest: {st['original_events']} -> {st['shrunk_events']} events, "
        f"minimized repro {'replays' if still else 'DOES NOT replay'}"
    )
    if not still:
        fail("shrink_selftest.shrunk_still_violates is false: the minimized "
             "plan no longer reproduces its violation")
        failures += 1
    if grew:
        fail(f"shrinker grew the plan ({st['original_events']} -> {st['shrunk_events']} events)")
        failures += 1

    if not bool(doc["parallel_chaos"]["identical_across_workers"]):
        fail("parallel_chaos.identical_across_workers is false: fault injection "
             "broke the DomainRunner determinism contract")
        failures += 1
    else:
        print(f"parallel chaos: {doc['parallel_chaos'].get('schedules', '?')} "
              "schedules byte-identical across worker counts")

    resume = doc["resume"]
    if not bool(resume["identical_to_uninterrupted"]):
        fail("resume.identical_to_uninterrupted is false: a resumed sweep "
             "produced a different table")
        failures += 1
    if not bool(resume["torn_tail_detected"]):
        fail("resume.torn_tail_detected is false: the journal accepted a torn line")
        failures += 1
    if bool(resume["identical_to_uninterrupted"]) and bool(resume["torn_tail_detected"]):
        print(
            f"resume: reused {resume.get('reused', '?')}, re-ran "
            f"{resume.get('executed', '?')}, table byte-identical"
        )

    overhead = float(doc["monitor_overhead"]["overhead_frac"])
    noise = doc["monitor_overhead"].get("noise_floor_frac")
    noise_note = f", noise floor {100 * float(noise):.2f}%" if noise is not None else ""
    print(
        f"monitor overhead: {100 * overhead:.2f}% "
        f"(gate {100 * monitor_budget:.0f}%, recorded target 3%{noise_note})"
    )
    if overhead > monitor_budget:
        fail(
            f"monitor_overhead.overhead_frac = {overhead:.4f} > {monitor_budget}: "
            "the invariant monitor slows the pipeline too much"
        )
        failures += 1

    if failures == 0:
        print("bench_compare: chaos PASS")
        return 0
    print(f"bench_compare: chaos: {failures} check(s) failed")
    return 1


def chaos_selftest_doc() -> dict:
    return {
        "schema_version": 1,
        "bench": "chaos_sweep",
        "smoke": False,
        "campaign": {"schedules": 200, "seed": 1, "violations": 0, "task_errors": 0},
        "shrink_selftest": {
            "original_events": 6,
            "shrunk_events": 1,
            "probes": 13,
            "shrunk_still_violates": True,
        },
        "parallel_chaos": {"schedules": 8, "identical_across_workers": True},
        "monitor_overhead": {
            "overhead_frac": 0.02,
            "overhead_frac_raw": 0.02,
            "noise_floor_frac": 0.03,
        },
        "resume": {
            "reused": 5,
            "executed": 3,
            "torn_tail_detected": True,
            "identical_to_uninterrupted": True,
        },
    }


def selftest() -> int:
    """Prove the gate detects an injected regression (and passes a clean run)."""
    baseline = {
        "schema_version": 1,
        "bench": "micro_pipeline",
        "smoke": False,
        "hardware_threads": 8,
        "pipeline": {
            "median_wall_ms": 1000.0,
            "data_packets": 500000,
            "data_pkts_per_sec": 400000.0,
        },
        "telemetry": {
            "data_pkts_per_sec": 396000.0,
            "overhead_frac": 0.01,
            "overhead_frac_raw": 0.01,
            "noise_floor_frac": 0.02,
        },
        "alloc_probe": {"allocs_per_packet": 0.0, "steady_allocs": 0},
        "sweep_scaling": [
            {"threads": 1, "effective_threads": 1, "oversubscribed": False,
             "speedup": 1.0, "identical_to_serial": True},
            {"threads": 2, "effective_threads": 2, "oversubscribed": False,
             "speedup": 1.8, "identical_to_serial": True},
            {"threads": 8, "effective_threads": 8, "oversubscribed": False,
             "speedup": 5.5, "identical_to_serial": True},
            {"threads": 16, "effective_threads": 8, "oversubscribed": True,
             "speedup": 5.2, "identical_to_serial": True},
        ],
    }
    clean = copy.deepcopy(baseline)
    print("--- selftest: clean run must pass")
    if compare(baseline, clean, 0.25, 0.05) != 0:
        fail("selftest: clean run did not pass")
        return 1

    print("--- selftest: ~30% throughput regression must fail")
    slow = copy.deepcopy(baseline)
    slow["pipeline"]["data_pkts_per_sec"] = 0.7 * baseline["pipeline"]["data_pkts_per_sec"]
    if compare(baseline, slow, 0.25, 0.05) != 1:
        fail("selftest: throughput regression not detected")
        return 1

    print("--- selftest: allocating hot path must fail")
    leaky = copy.deepcopy(baseline)
    leaky["alloc_probe"]["allocs_per_packet"] = 0.5
    if compare(baseline, leaky, 0.25, 0.05) != 1:
        fail("selftest: alloc regression not detected")
        return 1

    print("--- selftest: non-deterministic sweep must fail")
    nondet = copy.deepcopy(baseline)
    nondet["sweep_scaling"][1]["identical_to_serial"] = False
    if compare(baseline, nondet, 0.25, 0.05) != 1:
        fail("selftest: determinism break not detected")
        return 1

    print("--- selftest: parallel sweep slower than serial must fail")
    unscaling = copy.deepcopy(baseline)
    # The pre-fix symptom verbatim: more threads, *less* throughput.
    unscaling["sweep_scaling"][1]["speedup"] = 0.72
    unscaling["sweep_scaling"][2]["speedup"] = 0.64
    if compare(baseline, unscaling, 0.25, 0.05) != 1:
        fail("selftest: scaling regression not detected")
        return 1

    print("--- selftest: oversubscribed entry below floor must NOT fail")
    clamped = copy.deepcopy(baseline)
    clamped["sweep_scaling"][3]["speedup"] = 0.5  # annotated oversubscribed
    if compare(baseline, clamped, 0.25, 0.05) != 0:
        fail("selftest: oversubscribed entry was gated despite annotation")
        return 1

    print("--- selftest: single-core box must skip the scaling gate cleanly")
    single = copy.deepcopy(baseline)
    single["hardware_threads"] = 1
    for entry in single["sweep_scaling"]:
        entry["effective_threads"] = 1
        entry["oversubscribed"] = entry["threads"] > 1
        entry["speedup"] = 0.9 if entry["threads"] > 1 else 1.0
    if compare(baseline, single, 0.25, 0.05) != 0:
        fail("selftest: hw=1 run did not skip the scaling gate")
        return 1

    print("--- selftest: telemetry overhead blowout must fail")
    heavy = copy.deepcopy(baseline)
    heavy["telemetry"]["overhead_frac"] = 0.2
    if compare(baseline, heavy, 0.25, 0.05) != 1:
        fail("selftest: telemetry overhead not detected")
        return 1

    print("--- selftest: clean chaos run must pass")
    if check_chaos(chaos_selftest_doc(), 0.06) != 0:
        fail("selftest: clean chaos run did not pass")
        return 1

    print("--- selftest: campaign violation must fail")
    violated = chaos_selftest_doc()
    violated["campaign"]["violations"] = 1
    if check_chaos(violated, 0.06) != 1:
        fail("selftest: campaign violation not detected")
        return 1

    print("--- selftest: non-replaying shrunk repro must fail")
    stale = chaos_selftest_doc()
    stale["shrink_selftest"]["shrunk_still_violates"] = False
    if check_chaos(stale, 0.06) != 1:
        fail("selftest: non-replaying repro not detected")
        return 1

    print("--- selftest: faulted parallel divergence must fail")
    split = chaos_selftest_doc()
    split["parallel_chaos"]["identical_across_workers"] = False
    if check_chaos(split, 0.06) != 1:
        fail("selftest: parallel chaos divergence not detected")
        return 1

    print("--- selftest: non-identical resumed table must fail")
    drifted = chaos_selftest_doc()
    drifted["resume"]["identical_to_uninterrupted"] = False
    if check_chaos(drifted, 0.06) != 1:
        fail("selftest: resume divergence not detected")
        return 1

    print("--- selftest: monitor overhead blowout must fail")
    dragging = chaos_selftest_doc()
    dragging["monitor_overhead"]["overhead_frac"] = 0.15
    if check_chaos(dragging, 0.06) != 1:
        fail("selftest: monitor overhead not detected")
        return 1

    print("bench_compare: selftest PASS (all injected regressions detected)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_pipeline.json")
    ap.add_argument("--current", help="freshly produced micro_pipeline JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop in data_pkts_per_sec (default 0.25)",
    )
    ap.add_argument(
        "--telemetry-budget",
        type=float,
        default=0.05,
        help="max telemetry.overhead_frac in the current run (default 0.05)",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=0.8,
        help="minimum sweep speedup at >= 2 effective workers on a multi-core "
        "box (default 0.8; the gate skips when hardware_threads < 2)",
    )
    ap.add_argument(
        "--chaos-current",
        help="freshly produced chaos_sweep JSON (BENCH_chaos.json); gated on "
        "its own invariants, no baseline needed",
    )
    ap.add_argument(
        "--monitor-budget",
        type=float,
        default=0.06,
        help="max monitor_overhead.overhead_frac in the chaos run (default "
        "0.06; the recorded target is 0.03)",
    )
    ap.add_argument("--selftest", action="store_true", help="run the gate self-check")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.chaos_current and (not args.baseline or not args.current):
        ap.error("--baseline and --current are required (or --chaos-current, or --selftest)")
    rc = 0
    if args.baseline and args.current:
        rc = compare(load(args.baseline), load(args.current), args.tolerance,
                     args.telemetry_budget, args.min_speedup)
    if args.chaos_current:
        rc = max(rc, check_chaos(load(args.chaos_current), args.monitor_budget))
    return rc


if __name__ == "__main__":
    sys.exit(main())
