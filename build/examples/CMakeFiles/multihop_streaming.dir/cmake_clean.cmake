file(REMOVE_RECURSE
  "CMakeFiles/multihop_streaming.dir/multihop_streaming.cpp.o"
  "CMakeFiles/multihop_streaming.dir/multihop_streaming.cpp.o.d"
  "multihop_streaming"
  "multihop_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
