# Empty compiler generated dependencies file for multihop_streaming.
# This may be replaced when dependencies are built.
