# Empty compiler generated dependencies file for ablation_rd_scaling.
# This may be replaced when dependencies are built.
