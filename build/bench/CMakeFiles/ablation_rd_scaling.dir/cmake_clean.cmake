file(REMOVE_RECURSE
  "CMakeFiles/ablation_rd_scaling.dir/ablation_rd_scaling.cpp.o"
  "CMakeFiles/ablation_rd_scaling.dir/ablation_rd_scaling.cpp.o.d"
  "ablation_rd_scaling"
  "ablation_rd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
