file(REMOVE_RECURSE
  "CMakeFiles/fig7_gamma_evolution.dir/fig7_gamma_evolution.cpp.o"
  "CMakeFiles/fig7_gamma_evolution.dir/fig7_gamma_evolution.cpp.o.d"
  "fig7_gamma_evolution"
  "fig7_gamma_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gamma_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
