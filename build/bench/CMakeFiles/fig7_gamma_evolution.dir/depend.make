# Empty dependencies file for fig7_gamma_evolution.
# This may be replaced when dependencies are built.
