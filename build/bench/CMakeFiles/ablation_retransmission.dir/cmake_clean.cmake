file(REMOVE_RECURSE
  "CMakeFiles/ablation_retransmission.dir/ablation_retransmission.cpp.o"
  "CMakeFiles/ablation_retransmission.dir/ablation_retransmission.cpp.o.d"
  "ablation_retransmission"
  "ablation_retransmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retransmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
