file(REMOVE_RECURSE
  "CMakeFiles/table1_useful_packets.dir/table1_useful_packets.cpp.o"
  "CMakeFiles/table1_useful_packets.dir/table1_useful_packets.cpp.o.d"
  "table1_useful_packets"
  "table1_useful_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_useful_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
