# Empty compiler generated dependencies file for table1_useful_packets.
# This may be replaced when dependencies are built.
