file(REMOVE_RECURSE
  "CMakeFiles/fig9_red_delay_mkc.dir/fig9_red_delay_mkc.cpp.o"
  "CMakeFiles/fig9_red_delay_mkc.dir/fig9_red_delay_mkc.cpp.o.d"
  "fig9_red_delay_mkc"
  "fig9_red_delay_mkc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_red_delay_mkc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
