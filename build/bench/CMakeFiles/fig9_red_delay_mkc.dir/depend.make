# Empty dependencies file for fig9_red_delay_mkc.
# This may be replaced when dependencies are built.
