# Empty dependencies file for fig5_gamma_stability.
# This may be replaced when dependencies are built.
