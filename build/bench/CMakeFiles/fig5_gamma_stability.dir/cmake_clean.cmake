file(REMOVE_RECURSE
  "CMakeFiles/fig5_gamma_stability.dir/fig5_gamma_stability.cpp.o"
  "CMakeFiles/fig5_gamma_stability.dir/fig5_gamma_stability.cpp.o.d"
  "fig5_gamma_stability"
  "fig5_gamma_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gamma_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
