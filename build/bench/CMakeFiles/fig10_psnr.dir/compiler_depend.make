# Empty compiler generated dependencies file for fig10_psnr.
# This may be replaced when dependencies are built.
