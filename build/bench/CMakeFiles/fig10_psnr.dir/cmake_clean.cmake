file(REMOVE_RECURSE
  "CMakeFiles/fig10_psnr.dir/fig10_psnr.cpp.o"
  "CMakeFiles/fig10_psnr.dir/fig10_psnr.cpp.o.d"
  "fig10_psnr"
  "fig10_psnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_psnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
