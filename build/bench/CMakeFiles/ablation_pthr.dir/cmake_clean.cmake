file(REMOVE_RECURSE
  "CMakeFiles/ablation_pthr.dir/ablation_pthr.cpp.o"
  "CMakeFiles/ablation_pthr.dir/ablation_pthr.cpp.o.d"
  "ablation_pthr"
  "ablation_pthr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pthr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
