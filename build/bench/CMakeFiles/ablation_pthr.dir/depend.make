# Empty dependencies file for ablation_pthr.
# This may be replaced when dependencies are built.
