# Empty dependencies file for ablation_kelly_vs_mkc.
# This may be replaced when dependencies are built.
