file(REMOVE_RECURSE
  "CMakeFiles/ablation_kelly_vs_mkc.dir/ablation_kelly_vs_mkc.cpp.o"
  "CMakeFiles/ablation_kelly_vs_mkc.dir/ablation_kelly_vs_mkc.cpp.o.d"
  "ablation_kelly_vs_mkc"
  "ablation_kelly_vs_mkc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kelly_vs_mkc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
