file(REMOVE_RECURSE
  "CMakeFiles/fig2_utility.dir/fig2_utility.cpp.o"
  "CMakeFiles/fig2_utility.dir/fig2_utility.cpp.o.d"
  "fig2_utility"
  "fig2_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
