# Empty dependencies file for ablation_feedback_interval.
# This may be replaced when dependencies are built.
