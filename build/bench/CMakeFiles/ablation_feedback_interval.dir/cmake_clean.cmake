file(REMOVE_RECURSE
  "CMakeFiles/ablation_feedback_interval.dir/ablation_feedback_interval.cpp.o"
  "CMakeFiles/ablation_feedback_interval.dir/ablation_feedback_interval.cpp.o.d"
  "ablation_feedback_interval"
  "ablation_feedback_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feedback_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
