# Empty compiler generated dependencies file for ablation_wireless.
# This may be replaced when dependencies are built.
