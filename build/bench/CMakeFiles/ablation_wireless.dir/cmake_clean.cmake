file(REMOVE_RECURSE
  "CMakeFiles/ablation_wireless.dir/ablation_wireless.cpp.o"
  "CMakeFiles/ablation_wireless.dir/ablation_wireless.cpp.o.d"
  "ablation_wireless"
  "ablation_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
