file(REMOVE_RECURSE
  "CMakeFiles/ablation_wrr.dir/ablation_wrr.cpp.o"
  "CMakeFiles/ablation_wrr.dir/ablation_wrr.cpp.o.d"
  "ablation_wrr"
  "ablation_wrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
