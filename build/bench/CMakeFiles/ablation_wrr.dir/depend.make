# Empty dependencies file for ablation_wrr.
# This may be replaced when dependencies are built.
