file(REMOVE_RECURSE
  "CMakeFiles/fig8_delays.dir/fig8_delays.cpp.o"
  "CMakeFiles/fig8_delays.dir/fig8_delays.cpp.o.d"
  "fig8_delays"
  "fig8_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
