# Empty dependencies file for fig8_delays.
# This may be replaced when dependencies are built.
