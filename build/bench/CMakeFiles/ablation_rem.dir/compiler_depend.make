# Empty compiler generated dependencies file for ablation_rem.
# This may be replaced when dependencies are built.
