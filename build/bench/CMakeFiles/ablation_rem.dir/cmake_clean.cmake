file(REMOVE_RECURSE
  "CMakeFiles/ablation_rem.dir/ablation_rem.cpp.o"
  "CMakeFiles/ablation_rem.dir/ablation_rem.cpp.o.d"
  "ablation_rem"
  "ablation_rem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
