# Empty compiler generated dependencies file for ablation_tcm.
# This may be replaced when dependencies are built.
