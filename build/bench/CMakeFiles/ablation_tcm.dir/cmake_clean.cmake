file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcm.dir/ablation_tcm.cpp.o"
  "CMakeFiles/ablation_tcm.dir/ablation_tcm.cpp.o.d"
  "ablation_tcm"
  "ablation_tcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
