file(REMOVE_RECURSE
  "CMakeFiles/ablation_multihop.dir/ablation_multihop.cpp.o"
  "CMakeFiles/ablation_multihop.dir/ablation_multihop.cpp.o.d"
  "ablation_multihop"
  "ablation_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
