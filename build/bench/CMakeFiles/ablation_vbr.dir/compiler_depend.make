# Empty compiler generated dependencies file for ablation_vbr.
# This may be replaced when dependencies are built.
