file(REMOVE_RECURSE
  "CMakeFiles/ablation_vbr.dir/ablation_vbr.cpp.o"
  "CMakeFiles/ablation_vbr.dir/ablation_vbr.cpp.o.d"
  "ablation_vbr"
  "ablation_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
