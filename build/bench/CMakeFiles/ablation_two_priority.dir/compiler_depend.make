# Empty compiler generated dependencies file for ablation_two_priority.
# This may be replaced when dependencies are built.
