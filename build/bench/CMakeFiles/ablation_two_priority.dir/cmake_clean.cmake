file(REMOVE_RECURSE
  "CMakeFiles/ablation_two_priority.dir/ablation_two_priority.cpp.o"
  "CMakeFiles/ablation_two_priority.dir/ablation_two_priority.cpp.o.d"
  "ablation_two_priority"
  "ablation_two_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_two_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
