# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/pels_queue_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/frame_size_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/multihop_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/rd_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/fec_arq_test[1]_include.cmake")
include("/root/repo/build/tests/rem_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
