file(REMOVE_RECURSE
  "CMakeFiles/multihop_test.dir/multihop_test.cpp.o"
  "CMakeFiles/multihop_test.dir/multihop_test.cpp.o.d"
  "multihop_test"
  "multihop_test.pdb"
  "multihop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
