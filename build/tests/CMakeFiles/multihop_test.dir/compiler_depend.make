# Empty compiler generated dependencies file for multihop_test.
# This may be replaced when dependencies are built.
