file(REMOVE_RECURSE
  "CMakeFiles/rem_test.dir/rem_test.cpp.o"
  "CMakeFiles/rem_test.dir/rem_test.cpp.o.d"
  "rem_test"
  "rem_test.pdb"
  "rem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
