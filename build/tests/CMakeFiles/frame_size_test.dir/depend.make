# Empty dependencies file for frame_size_test.
# This may be replaced when dependencies are built.
