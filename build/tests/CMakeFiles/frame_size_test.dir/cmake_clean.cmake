file(REMOVE_RECURSE
  "CMakeFiles/frame_size_test.dir/frame_size_test.cpp.o"
  "CMakeFiles/frame_size_test.dir/frame_size_test.cpp.o.d"
  "frame_size_test"
  "frame_size_test.pdb"
  "frame_size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
