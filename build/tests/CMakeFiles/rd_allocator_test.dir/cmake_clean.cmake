file(REMOVE_RECURSE
  "CMakeFiles/rd_allocator_test.dir/rd_allocator_test.cpp.o"
  "CMakeFiles/rd_allocator_test.dir/rd_allocator_test.cpp.o.d"
  "rd_allocator_test"
  "rd_allocator_test.pdb"
  "rd_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
