# Empty dependencies file for rd_allocator_test.
# This may be replaced when dependencies are built.
