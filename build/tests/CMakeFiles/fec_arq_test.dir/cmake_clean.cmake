file(REMOVE_RECURSE
  "CMakeFiles/fec_arq_test.dir/fec_arq_test.cpp.o"
  "CMakeFiles/fec_arq_test.dir/fec_arq_test.cpp.o.d"
  "fec_arq_test"
  "fec_arq_test.pdb"
  "fec_arq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_arq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
