# Empty dependencies file for fec_arq_test.
# This may be replaced when dependencies are built.
