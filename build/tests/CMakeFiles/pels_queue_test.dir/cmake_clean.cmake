file(REMOVE_RECURSE
  "CMakeFiles/pels_queue_test.dir/pels_queue_test.cpp.o"
  "CMakeFiles/pels_queue_test.dir/pels_queue_test.cpp.o.d"
  "pels_queue_test"
  "pels_queue_test.pdb"
  "pels_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
