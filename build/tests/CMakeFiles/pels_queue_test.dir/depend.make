# Empty dependencies file for pels_queue_test.
# This may be replaced when dependencies are built.
