
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queue/bernoulli.cpp" "src/queue/CMakeFiles/pels_queue.dir/bernoulli.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/bernoulli.cpp.o.d"
  "/root/repo/src/queue/best_effort.cpp" "src/queue/CMakeFiles/pels_queue.dir/best_effort.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/best_effort.cpp.o.d"
  "/root/repo/src/queue/drop_tail.cpp" "src/queue/CMakeFiles/pels_queue.dir/drop_tail.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/drop_tail.cpp.o.d"
  "/root/repo/src/queue/pels_queue.cpp" "src/queue/CMakeFiles/pels_queue.dir/pels_queue.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/pels_queue.cpp.o.d"
  "/root/repo/src/queue/priority.cpp" "src/queue/CMakeFiles/pels_queue.dir/priority.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/priority.cpp.o.d"
  "/root/repo/src/queue/red.cpp" "src/queue/CMakeFiles/pels_queue.dir/red.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/red.cpp.o.d"
  "/root/repo/src/queue/rem.cpp" "src/queue/CMakeFiles/pels_queue.dir/rem.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/rem.cpp.o.d"
  "/root/repo/src/queue/tracing_queue.cpp" "src/queue/CMakeFiles/pels_queue.dir/tracing_queue.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/tracing_queue.cpp.o.d"
  "/root/repo/src/queue/wrr.cpp" "src/queue/CMakeFiles/pels_queue.dir/wrr.cpp.o" "gcc" "src/queue/CMakeFiles/pels_queue.dir/wrr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pels_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pels_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pels_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
