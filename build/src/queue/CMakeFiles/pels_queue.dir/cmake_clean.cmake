file(REMOVE_RECURSE
  "CMakeFiles/pels_queue.dir/bernoulli.cpp.o"
  "CMakeFiles/pels_queue.dir/bernoulli.cpp.o.d"
  "CMakeFiles/pels_queue.dir/best_effort.cpp.o"
  "CMakeFiles/pels_queue.dir/best_effort.cpp.o.d"
  "CMakeFiles/pels_queue.dir/drop_tail.cpp.o"
  "CMakeFiles/pels_queue.dir/drop_tail.cpp.o.d"
  "CMakeFiles/pels_queue.dir/pels_queue.cpp.o"
  "CMakeFiles/pels_queue.dir/pels_queue.cpp.o.d"
  "CMakeFiles/pels_queue.dir/priority.cpp.o"
  "CMakeFiles/pels_queue.dir/priority.cpp.o.d"
  "CMakeFiles/pels_queue.dir/red.cpp.o"
  "CMakeFiles/pels_queue.dir/red.cpp.o.d"
  "CMakeFiles/pels_queue.dir/rem.cpp.o"
  "CMakeFiles/pels_queue.dir/rem.cpp.o.d"
  "CMakeFiles/pels_queue.dir/tracing_queue.cpp.o"
  "CMakeFiles/pels_queue.dir/tracing_queue.cpp.o.d"
  "CMakeFiles/pels_queue.dir/wrr.cpp.o"
  "CMakeFiles/pels_queue.dir/wrr.cpp.o.d"
  "libpels_queue.a"
  "libpels_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
