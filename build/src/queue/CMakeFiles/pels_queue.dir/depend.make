# Empty dependencies file for pels_queue.
# This may be replaced when dependencies are built.
