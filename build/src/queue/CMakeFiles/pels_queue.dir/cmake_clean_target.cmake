file(REMOVE_RECURSE
  "libpels_queue.a"
)
