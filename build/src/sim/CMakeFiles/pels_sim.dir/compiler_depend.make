# Empty compiler generated dependencies file for pels_sim.
# This may be replaced when dependencies are built.
