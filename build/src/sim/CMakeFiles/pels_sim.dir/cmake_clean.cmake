file(REMOVE_RECURSE
  "CMakeFiles/pels_sim.dir/scheduler.cpp.o"
  "CMakeFiles/pels_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/pels_sim.dir/timer.cpp.o"
  "CMakeFiles/pels_sim.dir/timer.cpp.o.d"
  "libpels_sim.a"
  "libpels_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
