file(REMOVE_RECURSE
  "libpels_sim.a"
)
