
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/decoder.cpp" "src/video/CMakeFiles/pels_video.dir/decoder.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/decoder.cpp.o.d"
  "/root/repo/src/video/fec.cpp" "src/video/CMakeFiles/pels_video.dir/fec.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/fec.cpp.o.d"
  "/root/repo/src/video/fgs.cpp" "src/video/CMakeFiles/pels_video.dir/fgs.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/fgs.cpp.o.d"
  "/root/repo/src/video/frame_size.cpp" "src/video/CMakeFiles/pels_video.dir/frame_size.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/frame_size.cpp.o.d"
  "/root/repo/src/video/gamma_controller.cpp" "src/video/CMakeFiles/pels_video.dir/gamma_controller.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/gamma_controller.cpp.o.d"
  "/root/repo/src/video/playout.cpp" "src/video/CMakeFiles/pels_video.dir/playout.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/playout.cpp.o.d"
  "/root/repo/src/video/rd_allocator.cpp" "src/video/CMakeFiles/pels_video.dir/rd_allocator.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/rd_allocator.cpp.o.d"
  "/root/repo/src/video/rd_model.cpp" "src/video/CMakeFiles/pels_video.dir/rd_model.cpp.o" "gcc" "src/video/CMakeFiles/pels_video.dir/rd_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pels_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pels_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pels_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
