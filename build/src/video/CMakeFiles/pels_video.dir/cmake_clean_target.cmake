file(REMOVE_RECURSE
  "libpels_video.a"
)
