file(REMOVE_RECURSE
  "CMakeFiles/pels_video.dir/decoder.cpp.o"
  "CMakeFiles/pels_video.dir/decoder.cpp.o.d"
  "CMakeFiles/pels_video.dir/fec.cpp.o"
  "CMakeFiles/pels_video.dir/fec.cpp.o.d"
  "CMakeFiles/pels_video.dir/fgs.cpp.o"
  "CMakeFiles/pels_video.dir/fgs.cpp.o.d"
  "CMakeFiles/pels_video.dir/frame_size.cpp.o"
  "CMakeFiles/pels_video.dir/frame_size.cpp.o.d"
  "CMakeFiles/pels_video.dir/gamma_controller.cpp.o"
  "CMakeFiles/pels_video.dir/gamma_controller.cpp.o.d"
  "CMakeFiles/pels_video.dir/playout.cpp.o"
  "CMakeFiles/pels_video.dir/playout.cpp.o.d"
  "CMakeFiles/pels_video.dir/rd_allocator.cpp.o"
  "CMakeFiles/pels_video.dir/rd_allocator.cpp.o.d"
  "CMakeFiles/pels_video.dir/rd_model.cpp.o"
  "CMakeFiles/pels_video.dir/rd_model.cpp.o.d"
  "libpels_video.a"
  "libpels_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
