# Empty compiler generated dependencies file for pels_video.
# This may be replaced when dependencies are built.
