file(REMOVE_RECURSE
  "libpels_analysis.a"
)
