
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/best_effort_model.cpp" "src/analysis/CMakeFiles/pels_analysis.dir/best_effort_model.cpp.o" "gcc" "src/analysis/CMakeFiles/pels_analysis.dir/best_effort_model.cpp.o.d"
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/pels_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/pels_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/convergence.cpp" "src/analysis/CMakeFiles/pels_analysis.dir/convergence.cpp.o" "gcc" "src/analysis/CMakeFiles/pels_analysis.dir/convergence.cpp.o.d"
  "/root/repo/src/analysis/stability.cpp" "src/analysis/CMakeFiles/pels_analysis.dir/stability.cpp.o" "gcc" "src/analysis/CMakeFiles/pels_analysis.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pels_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pels_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pels_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
