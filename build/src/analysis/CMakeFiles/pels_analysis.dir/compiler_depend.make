# Empty compiler generated dependencies file for pels_analysis.
# This may be replaced when dependencies are built.
