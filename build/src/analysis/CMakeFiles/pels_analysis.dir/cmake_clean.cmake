file(REMOVE_RECURSE
  "CMakeFiles/pels_analysis.dir/best_effort_model.cpp.o"
  "CMakeFiles/pels_analysis.dir/best_effort_model.cpp.o.d"
  "CMakeFiles/pels_analysis.dir/burstiness.cpp.o"
  "CMakeFiles/pels_analysis.dir/burstiness.cpp.o.d"
  "CMakeFiles/pels_analysis.dir/convergence.cpp.o"
  "CMakeFiles/pels_analysis.dir/convergence.cpp.o.d"
  "CMakeFiles/pels_analysis.dir/stability.cpp.o"
  "CMakeFiles/pels_analysis.dir/stability.cpp.o.d"
  "libpels_analysis.a"
  "libpels_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
