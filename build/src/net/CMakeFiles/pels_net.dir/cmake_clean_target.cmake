file(REMOVE_RECURSE
  "libpels_net.a"
)
