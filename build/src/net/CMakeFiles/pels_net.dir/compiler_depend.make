# Empty compiler generated dependencies file for pels_net.
# This may be replaced when dependencies are built.
