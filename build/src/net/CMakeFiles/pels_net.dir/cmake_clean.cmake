file(REMOVE_RECURSE
  "CMakeFiles/pels_net.dir/host.cpp.o"
  "CMakeFiles/pels_net.dir/host.cpp.o.d"
  "CMakeFiles/pels_net.dir/link.cpp.o"
  "CMakeFiles/pels_net.dir/link.cpp.o.d"
  "CMakeFiles/pels_net.dir/packet.cpp.o"
  "CMakeFiles/pels_net.dir/packet.cpp.o.d"
  "CMakeFiles/pels_net.dir/router.cpp.o"
  "CMakeFiles/pels_net.dir/router.cpp.o.d"
  "CMakeFiles/pels_net.dir/tcm.cpp.o"
  "CMakeFiles/pels_net.dir/tcm.cpp.o.d"
  "CMakeFiles/pels_net.dir/topology.cpp.o"
  "CMakeFiles/pels_net.dir/topology.cpp.o.d"
  "CMakeFiles/pels_net.dir/trace.cpp.o"
  "CMakeFiles/pels_net.dir/trace.cpp.o.d"
  "libpels_net.a"
  "libpels_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
