
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/pels_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/pels_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/link.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/pels_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/pels_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/router.cpp.o.d"
  "/root/repo/src/net/tcm.cpp" "src/net/CMakeFiles/pels_net.dir/tcm.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/tcm.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/pels_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/pels_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/pels_net.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pels_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pels_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
