# Empty compiler generated dependencies file for pels_cc.
# This may be replaced when dependencies are built.
