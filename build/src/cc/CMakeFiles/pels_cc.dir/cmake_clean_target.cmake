file(REMOVE_RECURSE
  "libpels_cc.a"
)
