file(REMOVE_RECURSE
  "CMakeFiles/pels_cc.dir/aimd.cpp.o"
  "CMakeFiles/pels_cc.dir/aimd.cpp.o.d"
  "CMakeFiles/pels_cc.dir/kelly_classic.cpp.o"
  "CMakeFiles/pels_cc.dir/kelly_classic.cpp.o.d"
  "CMakeFiles/pels_cc.dir/mkc.cpp.o"
  "CMakeFiles/pels_cc.dir/mkc.cpp.o.d"
  "CMakeFiles/pels_cc.dir/rem_controller.cpp.o"
  "CMakeFiles/pels_cc.dir/rem_controller.cpp.o.d"
  "CMakeFiles/pels_cc.dir/tcp_like.cpp.o"
  "CMakeFiles/pels_cc.dir/tcp_like.cpp.o.d"
  "CMakeFiles/pels_cc.dir/tfrc_lite.cpp.o"
  "CMakeFiles/pels_cc.dir/tfrc_lite.cpp.o.d"
  "libpels_cc.a"
  "libpels_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
