
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/aimd.cpp" "src/cc/CMakeFiles/pels_cc.dir/aimd.cpp.o" "gcc" "src/cc/CMakeFiles/pels_cc.dir/aimd.cpp.o.d"
  "/root/repo/src/cc/kelly_classic.cpp" "src/cc/CMakeFiles/pels_cc.dir/kelly_classic.cpp.o" "gcc" "src/cc/CMakeFiles/pels_cc.dir/kelly_classic.cpp.o.d"
  "/root/repo/src/cc/mkc.cpp" "src/cc/CMakeFiles/pels_cc.dir/mkc.cpp.o" "gcc" "src/cc/CMakeFiles/pels_cc.dir/mkc.cpp.o.d"
  "/root/repo/src/cc/rem_controller.cpp" "src/cc/CMakeFiles/pels_cc.dir/rem_controller.cpp.o" "gcc" "src/cc/CMakeFiles/pels_cc.dir/rem_controller.cpp.o.d"
  "/root/repo/src/cc/tcp_like.cpp" "src/cc/CMakeFiles/pels_cc.dir/tcp_like.cpp.o" "gcc" "src/cc/CMakeFiles/pels_cc.dir/tcp_like.cpp.o.d"
  "/root/repo/src/cc/tfrc_lite.cpp" "src/cc/CMakeFiles/pels_cc.dir/tfrc_lite.cpp.o" "gcc" "src/cc/CMakeFiles/pels_cc.dir/tfrc_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pels_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pels_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pels_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
