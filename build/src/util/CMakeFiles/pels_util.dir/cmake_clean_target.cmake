file(REMOVE_RECURSE
  "libpels_util.a"
)
