# Empty compiler generated dependencies file for pels_util.
# This may be replaced when dependencies are built.
