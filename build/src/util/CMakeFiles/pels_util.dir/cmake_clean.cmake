file(REMOVE_RECURSE
  "CMakeFiles/pels_util.dir/cli.cpp.o"
  "CMakeFiles/pels_util.dir/cli.cpp.o.d"
  "CMakeFiles/pels_util.dir/rng.cpp.o"
  "CMakeFiles/pels_util.dir/rng.cpp.o.d"
  "CMakeFiles/pels_util.dir/stats.cpp.o"
  "CMakeFiles/pels_util.dir/stats.cpp.o.d"
  "CMakeFiles/pels_util.dir/table.cpp.o"
  "CMakeFiles/pels_util.dir/table.cpp.o.d"
  "libpels_util.a"
  "libpels_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
