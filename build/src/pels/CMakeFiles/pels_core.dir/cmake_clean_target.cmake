file(REMOVE_RECURSE
  "libpels_core.a"
)
