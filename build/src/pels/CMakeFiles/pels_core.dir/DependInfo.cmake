
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pels/arq.cpp" "src/pels/CMakeFiles/pels_core.dir/arq.cpp.o" "gcc" "src/pels/CMakeFiles/pels_core.dir/arq.cpp.o.d"
  "/root/repo/src/pels/metrics.cpp" "src/pels/CMakeFiles/pels_core.dir/metrics.cpp.o" "gcc" "src/pels/CMakeFiles/pels_core.dir/metrics.cpp.o.d"
  "/root/repo/src/pels/multihop.cpp" "src/pels/CMakeFiles/pels_core.dir/multihop.cpp.o" "gcc" "src/pels/CMakeFiles/pels_core.dir/multihop.cpp.o.d"
  "/root/repo/src/pels/pels_sink.cpp" "src/pels/CMakeFiles/pels_core.dir/pels_sink.cpp.o" "gcc" "src/pels/CMakeFiles/pels_core.dir/pels_sink.cpp.o.d"
  "/root/repo/src/pels/pels_source.cpp" "src/pels/CMakeFiles/pels_core.dir/pels_source.cpp.o" "gcc" "src/pels/CMakeFiles/pels_core.dir/pels_source.cpp.o.d"
  "/root/repo/src/pels/scenario.cpp" "src/pels/CMakeFiles/pels_core.dir/scenario.cpp.o" "gcc" "src/pels/CMakeFiles/pels_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/pels_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pels_video.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/pels_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pels_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pels_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pels_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
