# Empty compiler generated dependencies file for pels_core.
# This may be replaced when dependencies are built.
