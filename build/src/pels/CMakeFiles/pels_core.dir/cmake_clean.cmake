file(REMOVE_RECURSE
  "CMakeFiles/pels_core.dir/arq.cpp.o"
  "CMakeFiles/pels_core.dir/arq.cpp.o.d"
  "CMakeFiles/pels_core.dir/metrics.cpp.o"
  "CMakeFiles/pels_core.dir/metrics.cpp.o.d"
  "CMakeFiles/pels_core.dir/multihop.cpp.o"
  "CMakeFiles/pels_core.dir/multihop.cpp.o.d"
  "CMakeFiles/pels_core.dir/pels_sink.cpp.o"
  "CMakeFiles/pels_core.dir/pels_sink.cpp.o.d"
  "CMakeFiles/pels_core.dir/pels_source.cpp.o"
  "CMakeFiles/pels_core.dir/pels_source.cpp.o.d"
  "CMakeFiles/pels_core.dir/scenario.cpp.o"
  "CMakeFiles/pels_core.dir/scenario.cpp.o.d"
  "libpels_core.a"
  "libpels_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pels_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
