// Scheduler-driven time-series sampler over a MetricsRegistry.
//
// Every `period` of simulated time the sampler snapshots all registered
// instruments into pre-sized flat buffers (sample-major layout) and records
// the timestamp. After reserve_runtime() a snapshot performs zero heap
// allocations: the buffers are reserved up front, the instrument set is
// frozen, and reads are plain loads / small callbacks. Once the reserved
// capacity is exhausted, further snapshots are counted in samples_dropped()
// but not stored, so a run that outlives its sizing degrades gracefully
// instead of allocating mid-run.
//
// Determinism contract (see DESIGN.md "Telemetry"): snapshots happen at
// scheduler-driven instants; equal-time ordering follows event insertion
// order. Create the sampler AFTER the agents whose state it reads (as
// DumbbellScenario does), and every snapshot observes post-update state for
// ticks that share a timestamp with control updates. Exports format values
// with fixed printf conversions, so two runs with identical event streams —
// e.g. the same scenario executed on different SweepRunner thread counts —
// produce byte-identical CSV/JSON.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "util/stats.h"
#include "util/time.h"

namespace pels {

/// Declarative telemetry switch for scenario configs: benches and examples
/// flip `enabled` and every instrumented layer is registered and sampled.
struct TelemetryConfig {
  bool enabled = false;
  SimTime period = from_millis(100);
  /// Snapshot capacity reserved up front; size as duration/period plus slack.
  std::size_t max_samples = 4096;

  /// Throws std::invalid_argument on a non-positive period or zero capacity
  /// (only checked when enabled).
  void validate() const;
};

class TimeSeriesSampler {
 public:
  /// Borrows `registry`; it must outlive the sampler and its instrument set
  /// must not change after reserve_runtime().
  TimeSeriesSampler(Scheduler& sched, const MetricsRegistry& registry, SimTime period);
  ~TimeSeriesSampler();

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Pre-sizes storage for `max_samples` snapshots of the current instrument
  /// set and freezes that set. Call once, after all registration.
  void reserve_runtime(std::size_t max_samples);

  /// Starts periodic sampling; the first snapshot fires one period from now.
  void start();
  void stop();

  /// Takes one snapshot immediately (also what the periodic tick does).
  void sample_now();

  std::size_t probe_count() const { return probe_count_; }
  std::size_t sample_count() const { return times_.size(); }
  /// Snapshots discarded after capacity ran out.
  std::uint64_t samples_dropped() const { return dropped_; }
  SimTime period() const { return period_; }

  SimTime time_at(std::size_t sample) const { return times_.at(sample); }
  double value_at(std::size_t probe, std::size_t sample) const;

  /// Copies one instrument's column out as a (time, value) series.
  TimeSeries series(std::size_t probe) const;
  /// Same, by instrument name; throws std::invalid_argument if unknown.
  TimeSeries series(const std::string& name) const;

  /// Wide CSV: header `t_seconds,<name>,...`, one row per snapshot.
  void write_csv(std::ostream& os) const;
  /// JSON object: period, sample count, drop count, and one array per
  /// instrument (times in seconds under "t_seconds").
  void write_json(std::ostream& os) const;

 private:
  Scheduler& sched_;
  const MetricsRegistry& registry_;
  SimTime period_;
  std::size_t probe_count_ = 0;  // frozen by reserve_runtime
  std::size_t capacity_ = 0;
  bool reserved_ = false;
  EventId pending_ = 0;
  std::vector<SimTime> times_;
  std::vector<double> values_;  // sample-major: [sample * probe_count_ + probe]
  std::uint64_t dropped_ = 0;

  void arm_next();
};

}  // namespace pels
