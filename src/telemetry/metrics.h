// Metrics registry: named counters/gauges/probes registered once at setup.
//
// Three kinds of instrument, all exported by the TimeSeriesSampler
// (src/telemetry/sampler.h) in registration order:
//
//   * Counter — a monotonically increasing std::uint64_t slot owned by the
//     registry. Hot paths hold a Counter* and call inc(): one add on a plain
//     integer, no branching, no indirection beyond the pointer the component
//     already checked once at setup (a null pointer means telemetry is off).
//   * Gauge — a double slot, same ownership and cost model, for values that
//     move both ways (current loss estimate, rate, occupancy).
//   * Probe — a pull callback read only at sample time. The right choice for
//     state the component already keeps (queue occupancy, link utilization,
//     cumulative ColorCounters): zero hot-path cost, no double bookkeeping.
//
// Lifecycle contract: register everything during scenario setup, then freeze
// the set by calling TimeSeriesSampler::reserve_runtime. Slots live in deques
// so registration never invalidates previously handed-out pointers, and
// nothing on the read path allocates (probe callbacks must not allocate
// either; every probe in this repo reads plain members).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace pels {

/// Monotonic event counter slot. Plain uint64_t add; never reset mid-run.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous-value slot (rates, loss estimates, occupancies).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Pull callback; must be allocation-free and side-effect-free (it runs on
  /// every sampler tick and inside export verification).
  using ProbeFn = std::function<double()>;

  /// Registers a counter slot. The returned reference is stable for the
  /// registry's lifetime. Throws std::invalid_argument on a duplicate name.
  Counter& counter(const std::string& name);

  /// Registers a gauge slot (same stability/duplicate contract as counter).
  Gauge& gauge(const std::string& name);

  /// Registers a pull probe reading component state at sample time.
  void add_probe(const std::string& name, ProbeFn read);

  /// Number of registered instruments (counters + gauges + probes).
  std::size_t size() const { return entries_.size(); }
  const std::string& name(std::size_t i) const { return entries_.at(i).name; }

  /// Current value of instrument `i` (counters are widened to double).
  /// Allocation-free: the sampler calls this once per instrument per tick.
  double read(std::size_t i) const;

  /// Index of the instrument named `name`, or -1 if absent.
  std::ptrdiff_t index_of(const std::string& name) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kProbe };

  struct Entry {
    std::string name;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    ProbeFn probe;
  };

  void check_new_name(const std::string& name) const;

  // Deques: slot addresses survive later registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::vector<Entry> entries_;
};

}  // namespace pels
