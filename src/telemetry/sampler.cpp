#include "telemetry/sampler.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace pels {

namespace {

// Fixed conversions keep exports byte-stable across runs with identical
// event streams (the sweep determinism contract covers telemetry too).
void format_value(char (&buf)[32], double v) { std::snprintf(buf, sizeof(buf), "%.10g", v); }
void format_time(char (&buf)[32], SimTime t) {
  std::snprintf(buf, sizeof(buf), "%.6f", to_seconds(t));
}

}  // namespace

void TelemetryConfig::validate() const {
  if (!enabled) return;
  if (period <= 0) throw std::invalid_argument("TelemetryConfig: period must be > 0");
  if (max_samples == 0) throw std::invalid_argument("TelemetryConfig: max_samples must be > 0");
}

TimeSeriesSampler::TimeSeriesSampler(Scheduler& sched, const MetricsRegistry& registry,
                                     SimTime period)
    : sched_(sched), registry_(registry), period_(period) {
  if (period <= 0) throw std::invalid_argument("TimeSeriesSampler: period must be > 0");
}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::reserve_runtime(std::size_t max_samples) {
  if (max_samples == 0)
    throw std::invalid_argument("TimeSeriesSampler: max_samples must be > 0");
  probe_count_ = registry_.size();
  capacity_ = max_samples;
  times_.reserve(capacity_);
  values_.reserve(capacity_ * probe_count_);
  reserved_ = true;
}

void TimeSeriesSampler::start() {
  if (pending_ != 0) return;
  if (!reserved_) reserve_runtime(capacity_ ? capacity_ : 4096);
  arm_next();
}

void TimeSeriesSampler::stop() {
  if (pending_ == 0) return;
  sched_.cancel(pending_);
  pending_ = 0;
}

void TimeSeriesSampler::arm_next() {
  pending_ = sched_.schedule_in(period_, [this] {
    pending_ = 0;
    sample_now();
    arm_next();
  });
}

void TimeSeriesSampler::sample_now() {
  if (!reserved_) reserve_runtime(capacity_ ? capacity_ : 4096);
  if (times_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  times_.push_back(sched_.now());
  for (std::size_t i = 0; i < probe_count_; ++i) values_.push_back(registry_.read(i));
}

double TimeSeriesSampler::value_at(std::size_t probe, std::size_t sample) const {
  if (probe >= probe_count_) throw std::out_of_range("TimeSeriesSampler: bad probe index");
  return values_.at(sample * probe_count_ + probe);
}

TimeSeries TimeSeriesSampler::series(std::size_t probe) const {
  TimeSeries out;
  for (std::size_t s = 0; s < times_.size(); ++s) out.add(times_[s], value_at(probe, s));
  return out;
}

TimeSeries TimeSeriesSampler::series(const std::string& name) const {
  const std::ptrdiff_t i = registry_.index_of(name);
  if (i < 0) throw std::invalid_argument("TimeSeriesSampler: unknown instrument: " + name);
  return series(static_cast<std::size_t>(i));
}

void TimeSeriesSampler::write_csv(std::ostream& os) const {
  os << "t_seconds";
  for (std::size_t i = 0; i < probe_count_; ++i) os << ',' << registry_.name(i);
  os << '\n';
  char buf[32];
  for (std::size_t s = 0; s < times_.size(); ++s) {
    format_time(buf, times_[s]);
    os << buf;
    for (std::size_t i = 0; i < probe_count_; ++i) {
      format_value(buf, value_at(i, s));
      os << ',' << buf;
    }
    os << '\n';
  }
}

void TimeSeriesSampler::write_json(std::ostream& os) const {
  char buf[32];
  os << "{\n  \"period_seconds\": ";
  format_value(buf, to_seconds(period_));
  os << buf << ",\n  \"samples\": " << times_.size()
     << ",\n  \"samples_dropped\": " << dropped_ << ",\n  \"t_seconds\": [";
  for (std::size_t s = 0; s < times_.size(); ++s) {
    format_time(buf, times_[s]);
    os << (s ? "," : "") << buf;
  }
  os << "],\n  \"series\": {";
  for (std::size_t i = 0; i < probe_count_; ++i) {
    os << (i ? ",\n    \"" : "\n    \"") << registry_.name(i) << "\": [";
    for (std::size_t s = 0; s < times_.size(); ++s) {
      format_value(buf, value_at(i, s));
      os << (s ? "," : "") << buf;
    }
    os << ']';
  }
  os << "\n  }\n}\n";
}

}  // namespace pels
