#include "telemetry/metrics.h"

#include <stdexcept>

namespace pels {

void MetricsRegistry::check_new_name(const std::string& name) const {
  if (name.empty()) throw std::invalid_argument("MetricsRegistry: empty instrument name");
  if (index_of(name) >= 0)
    throw std::invalid_argument("MetricsRegistry: duplicate instrument name: " + name);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  check_new_name(name);
  counters_.emplace_back();
  Entry e;
  e.name = name;
  e.kind = Kind::kCounter;
  e.counter = &counters_.back();
  entries_.push_back(std::move(e));
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  check_new_name(name);
  gauges_.emplace_back();
  Entry e;
  e.name = name;
  e.kind = Kind::kGauge;
  e.gauge = &gauges_.back();
  entries_.push_back(std::move(e));
  return gauges_.back();
}

void MetricsRegistry::add_probe(const std::string& name, ProbeFn read) {
  check_new_name(name);
  if (!read) throw std::invalid_argument("MetricsRegistry: null probe: " + name);
  Entry e;
  e.name = name;
  e.kind = Kind::kProbe;
  e.probe = std::move(read);
  entries_.push_back(std::move(e));
}

double MetricsRegistry::read(std::size_t i) const {
  const Entry& e = entries_.at(i);
  switch (e.kind) {
    case Kind::kCounter:
      return static_cast<double>(e.counter->value());
    case Kind::kGauge:
      return e.gauge->value();
    case Kind::kProbe:
      return e.probe();
  }
  return 0.0;
}

std::ptrdiff_t MetricsRegistry::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].name == name) return static_cast<std::ptrdiff_t>(i);
  return -1;
}

}  // namespace pels
