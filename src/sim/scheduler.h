// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, callback) pairs kept in a binary heap. Ties in time are
// broken by insertion order, so execution is fully deterministic. Events can
// be cancelled by id; cancellation is O(1) (lazy removal at pop time).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace pels {

/// Identifies a scheduled event for cancellation. 0 is never a valid id.
using EventId = std::uint64_t;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(SimTime t, Callback fn);

  /// Schedules `fn` to run `delay` (>= 0) after now.
  EventId schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  bool empty() const { return live_.empty(); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_.size(); }

  /// Runs the next event; returns false if none remain.
  bool step();

  /// Runs events until the queue drains or time would exceed `t_end`.
  /// Events scheduled exactly at `t_end` are executed. On return, now() is
  /// min(t_end, drain time).
  void run_until(SimTime t_end);

  /// Runs until the event queue is empty.
  void run();

  /// Total number of events executed so far (for diagnostics/microbenches).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of events still pending in the heap. An id absent from this set is
  // either executed or cancelled; heap entries whose id is missing are
  // skipped lazily at pop time.
  std::unordered_set<EventId> live_;
};

}  // namespace pels
