// Discrete-event scheduler: the heart of the simulator.
//
// Events live in a two-tier queue. A hierarchical timing wheel (calendar
// tier) absorbs the dense near-future load produced by per-source pacing and
// periodic control timers; a 4-ary min-heap holds sparse/far events beyond
// the wheel's horizon. Ties in time break by insertion order across both
// tiers, so execution is fully deterministic and byte-identical to a
// heap-only scheduler (see DESIGN.md "Event model").
//
// Hot-path design (this is the inner loop under every figure/ablation
// binary, so the layout matters):
//   * Queue entries are small PODs {time, seq, slot, generation}; the
//     callbacks live in a pooled slot vector so neither heap sifts nor wheel
//     cascades ever move a callback.
//   * The wheel has 3 levels x 256 buckets at 2^17 ns (131 us) level-0
//     granularity: spans of ~33.6 ms / 8.6 s / 36.7 min. Scheduling into the
//     wheel is O(1) (level by XOR of level-0 bucket indices against the
//     drain frontier); events beyond the span, or inside the bucket
//     currently being drained, fall back to the heap. A level-0 bucket is
//     drained by sorting it once into a run buffer; higher-level buckets
//     cascade downward as the frontier reaches them. Per-level occupancy
//     bitmaps make "find the earliest non-empty bucket" four ctz scans.
//   * Callbacks are fixed-capacity InplaceFunctions, not std::functions:
//     packet-carrying captures (112-byte Packet moves) stay inside the slot
//     instead of costing a heap allocation per event.
//   * Cancellation is generation-tagged: an EventId packs (slot, generation)
//     and cancel() just bumps the slot's generation — O(1) in both tiers
//     (wheel residents additionally flip the slot's residency flag and drop
//     the global wheel live count; the dead entry rides any cascades and is
//     purged when its level-0 bucket is drained). A stale entry (generation
//     mismatch) is skipped when it reaches the front. Executed slots also
//     bump the generation, so an old id can never cancel a later event that
//     happens to reuse its slot.
//   * Slots, heap storage, wheel buckets, and the run buffer are recycled
//     via free lists / reserve() / clear-not-shrink, so the steady state
//     allocates nothing per event.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/inplace_function.h"
#include "util/time.h"

namespace pels {

/// Identifies a scheduled event for cancellation: packs (slot index <<32 |
/// slot generation). Generations start at 1, so 0 is never a valid id.
using EventId = std::uint64_t;

/// Inline capture budget for scheduler callbacks. Sized so a lambda moving a
/// whole Packet (112 bytes, see net/packet.h) plus a couple of pointers fits
/// without touching the heap; net/link.cpp pins the relationship with a
/// static_assert so a Packet growth that would silently re-introduce
/// per-event allocations fails the build instead.
inline constexpr std::size_t kSchedulerCallbackCapacity = 144;

class Scheduler {
 public:
  /// Fixed-capacity move-only callable: scheduling is allocation-free for
  /// any capture that fits the inline budget, and a larger capture is a
  /// compile error (see util/inplace_function.h).
  using Callback = InplaceFunction<void(), kSchedulerCallbackCapacity>;

  /// Counters for diagnostics and microbenches. `executed`/`cancelled`/
  /// `stale_skipped`/`bucket_loads`/`cascades` are lifetime totals; the rest
  /// describe current state.
  struct Stats {
    std::uint64_t scheduled = 0;      // schedule_at/in calls
    std::uint64_t executed = 0;       // callbacks run
    std::uint64_t cancelled = 0;      // successful cancel() calls
    std::uint64_t stale_skipped = 0;  // cancelled entries dropped at drain
    std::uint64_t bucket_loads = 0;   // level-0 buckets sorted into the run
    std::uint64_t cascades = 0;       // higher-level buckets re-placed down
    std::size_t pending = 0;          // live events awaiting execution
    std::size_t heap_size = 0;        // heap entries incl. stale ones
    std::size_t wheel_entries = 0;    // live events in wheel buckets or the run
    std::size_t run_entries = 0;      // events staged in the sorted run
    std::size_t slots = 0;            // pooled callback slots allocated
    std::size_t heap_capacity = 0;    // heap vector capacity (growth probe)
    std::size_t slot_capacity = 0;    // slot pool capacity (growth probe)
    std::size_t wheel_capacity = 0;   // sum of bucket capacities (growth probe)
    std::size_t run_capacity = 0;     // run buffer capacity (growth probe)
    // Breakdown of wheel_capacity for diagnosing which tier grew: per-level
    // bucket sums plus the pooled scratch/spare storage that circulates
    // between buckets (wheel_capacity = sum of levels + pool).
    std::array<std::size_t, 3> wheel_level_capacity{};
    std::size_t wheel_pool_capacity = 0;
  };

  /// Current simulation time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns an id
  /// usable with cancel(). Defined inline: this is the hottest call in the
  /// simulator and every caller benefits from seeing the free-list ops.
  EventId schedule_at(SimTime t, Callback fn) {
    assert(t >= now_ && "cannot schedule in the past");
    assert(fn && "callback must be callable");
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    const Entry e{t, next_seq_++, slot, s.gen};
    if (wheel_enabled_ && place_in_wheel(e, frontier_idx0())) {
      s.where = kInWheel;
      ++wheel_live_;
    } else {
      s.where = kNotInWheel;
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    }
    ++pending_;
    return pack(slot, s.gen);
  }

  /// Schedules `fn` to run `delay` (>= 0) after now.
  EventId schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    // A generation mismatch means the event already executed, was already
    // cancelled, or the slot has been reused by a newer event: all no-ops.
    if (s.gen != gen) return false;
    // Bumping the generation is the cancellation; the stale entry is skipped
    // (heap/run) or purged at bucket drain (wheel). Skip generation 0 so ids
    // are never 0. Wheel residents drop the global live count here so an
    // all-cancelled wheel never blocks the "wheel empty" fast path.
    if (s.where != kNotInWheel) {
      --wheel_live_;
      s.where = kNotInWheel;
    }
    if (++s.gen == 0) s.gen = 1;
    s.fn = nullptr;
    free_slots_.push_back(slot);
    --pending_;
    ++cancelled_;
    return true;
  }

  /// True if no runnable (non-cancelled) events remain.
  bool empty() const { return pending_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_; }

  /// Runs the next event; returns false if none remain.
  bool step();

  /// Runs events until the queue drains or time would exceed `t_end`.
  /// Events scheduled exactly at `t_end` are executed. On return, now() is
  /// min(t_end, drain time).
  void run_until(SimTime t_end);

  /// Timestamp of the earliest pending (non-cancelled) event, or kTimeNever
  /// when none remain. Prunes stale entries encountered at the front — the
  /// same lazy sweep run_until performs — so the answer reflects live events
  /// only. This is the lookahead-window hook: DomainRunner sizes the next
  /// synchronization window from the minimum across all domain schedulers,
  /// letting idle stretches be skipped in one hop instead of
  /// barrier-stepping through empty windows.
  SimTime peek_next_time();

  /// Runs until the event queue is empty.
  void run();

  /// Total number of events executed so far (for diagnostics/microbenches).
  std::uint64_t executed() const { return executed_; }

  /// Routes all future schedule_at calls to the heap when disabled (events
  /// already resident in the wheel drain normally). The wheel is on by
  /// default; the off switch exists so benches and determinism tests can
  /// measure a heap-only baseline against the exact same workload.
  void set_wheel_enabled(bool enabled) { wheel_enabled_ = enabled; }
  bool wheel_enabled() const { return wheel_enabled_; }

  /// Snapshot of scheduler counters.
  Stats stats() const {
    Stats s;
    s.scheduled = next_seq_;  // one seq per schedule_at call
    s.executed = executed_;
    s.cancelled = cancelled_;
    s.stale_skipped = stale_skipped_;
    s.bucket_loads = bucket_loads_;
    s.cascades = cascades_;
    s.pending = pending_;
    s.heap_size = heap_.size();
    s.wheel_entries = wheel_live_;
    s.run_entries = run_.size() - run_pos_;
    s.slots = slots_.size();
    s.heap_capacity = heap_.capacity();
    s.slot_capacity = slots_.capacity();
    for (int l = 0; l < kWheelLevels; ++l) {
      for (const Bucket& b : wheel_[l].buckets)
        s.wheel_level_capacity[l] += b.entries.capacity();
      s.wheel_capacity += s.wheel_level_capacity[l];
    }
    // Storage swaps between buckets, the cascade scratch, and the spare pool,
    // so all of it counts toward the pooled wheel capacity (otherwise a swap
    // reads as spurious growth/shrink on the probe).
    s.wheel_pool_capacity = cascade_buf_.capacity();
    for (const std::vector<Entry>& sp : spares_) s.wheel_pool_capacity += sp.capacity();
    s.wheel_capacity += s.wheel_pool_capacity;
    s.run_capacity = run_.capacity();
    return s;
  }

  /// Pre-sizes the heap, slot pool, run buffer, and wheel buckets for
  /// `events` concurrent events, so a warm simulation never grows a pool
  /// mid-run (the Stats *_capacity probes let benches assert that).
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
    // The run buffer holds one drained level-0 bucket: worst case every
    // pending event shares a bucket, so size it like the heap.
    run_.reserve(events);
    // Wheel buckets: assume the pending population spreads evenly across a
    // level's 256 buckets, with slack for skew. Buckets are cleared-not-
    // shrunk, so this is a one-time cost (~24 bytes per reserved entry per
    // level) that warmup would otherwise pay in on-demand doublings.
    const std::size_t per_bucket = events / kWheelBuckets + 4;
    bucket_reserve_ = per_bucket;
    for (WheelLevel& level : wheel_) {
      for (Bucket& b : level.buckets) b.entries.reserve(per_bucket);
    }
    cascade_buf_.reserve(per_bucket * 8);
    // Concentration spares: the even-spread assumption fails whenever the
    // pacing horizon crosses a level's bucket width — the single insertion
    // bucket at now + gap then collects ~the whole pending population, far
    // past per_bucket. Pre-park a worst-case buffer (all events in one
    // bucket) plus two mid-size ones so the takeover path in place_in_wheel
    // never has to grow a bucket at runtime, even with an L1 horizon bucket,
    // its waiting predecessor, and an L2 boundary spill alive at once.
    spares_[0].reserve(events + 16);
    spares_[1].reserve(events / 2 + 16);
    spares_[2].reserve(events / 4 + 16);
  }

 private:
  /// POD queue entry; the callback lives in slots_[slot]. 24 bytes, cheap to
  /// sift or cascade. `gen` must match the slot's generation or the entry is
  /// stale.
  struct Entry {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Heap order on (t, seq): "a is served later than b". The heap is 4-ary
  /// (children of i at 4i+1..4i+4): half the levels of a binary heap and
  /// sibling entries share cache lines, which measures ~20% faster on the
  /// schedule/run microbench than std::push_heap/pop_heap.
  static bool later(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  // Timing-wheel geometry. Level-0 buckets are 2^17 ns = 131.072 us wide —
  // finer than any pacing interval worth wheeling (a 100 Mbps source paces
  // ~80 us apart and such micro-gaps belong on the heap anyway), coarse
  // enough that one bucket rarely holds more than a handful of events at
  // paper scale. Spans: L0 33.6 ms, L1 8.6 s, L2 36.7 min; beyond that the
  // heap is the far tier.
  static constexpr int kWheelLevels = 3;
  static constexpr int kWheelBits = 8;
  static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;
  static constexpr int kWheelShift = 17;  // log2(level-0 bucket width in ns)
  static constexpr std::uint32_t kNotInWheel = 0xffffffffu;
  static constexpr std::uint32_t kInWheel = 0;
  /// Parked spare buffers circulating between concentrated buckets and the
  /// cascade scratch. Sized for the worst concurrent demand observed in
  /// practice (filling horizon bucket + waiting predecessor + period spill,
  /// per busy level) with headroom; the pool is tiny next to the buffers it
  /// holds, so generosity is cheap.
  static constexpr std::size_t kSpareBuffers = 8;

  struct Bucket {
    std::vector<Entry> entries;  // may hold stale entries; purged at drain
  };
  struct WheelLevel {
    std::array<Bucket, kWheelBuckets> buckets;
    // One bit per bucket that has entries (live or stale) awaiting drain.
    std::array<std::uint64_t, kWheelBuckets / 64> occupancy{};
  };

  /// Pooled callback storage. The generation advances on every execution or
  /// cancellation, invalidating outstanding ids/queue entries for the slot.
  /// `where` is a residency flag (kInWheel / kNotInWheel) so cancel() can
  /// keep the global wheel live count exact in O(1). Deliberately not a
  /// bucket backref: cascades move entries between buckets without touching
  /// the slot table, which keeps the re-place loop free of random-access
  /// slot traffic (the dominant cost at 10^5..10^6 pending timers). The flag
  /// stays set while an entry is staged in the run buffer and settles at
  /// execution or cancellation — the two places that dirty the line anyway —
  /// so the level-0 purge reads slots without writing them back.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
    std::uint32_t where = kNotInWheel;
  };

  static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  /// Level-0 bucket index of an absolute time.
  static std::uint64_t bucket_index0(SimTime t) {
    return static_cast<std::uint64_t>(t) >> kWheelShift;
  }

  /// The drain frontier: the first level-0 bucket index that has not been
  /// drained yet. Everything scheduled before it belongs on the heap (the
  /// run buffer for the drained bucket is already sorted and merged against
  /// the heap by (t, seq), so late arrivals into the drained window stay
  /// correctly ordered).
  std::uint64_t frontier_idx0() const {
    const std::uint64_t by_now = bucket_index0(now_);
    const auto by_drain = static_cast<std::uint64_t>(run_bucket_ + 1);
    return by_now > by_drain ? by_now : by_drain;
  }

  /// Places `e` into the wheel if it lands within the span; returns false
  /// when the event belongs on the heap (past the frontier's bucket, or
  /// beyond the wheel horizon). The level is picked by XOR of level-0 bucket
  /// indices against the frontier, which confines each level's placements to
  /// the frontier's aligned 256-block — so the physical index
  /// (t >> shift) & 255 can never collide with a later wrap of the same
  /// bucket, and a cascaded bucket always re-places strictly below its own
  /// level. Touches only the bucket, never slots_: the caller owns the
  /// slot-side bookkeeping (schedule_at marks residency; cascade() re-places
  /// entries whose slots are already marked, stale ones included). `f0` is
  /// the caller's frontier_idx0() — hoisted to a parameter so cascade(),
  /// whose frontier is fixed for the whole re-place loop, computes it once.
  bool place_in_wheel(const Entry& e, std::uint64_t f0) {
    const std::uint64_t idx0 = bucket_index0(e.t);
    if (idx0 < f0) return false;
    const std::uint64_t diff = idx0 ^ f0;
    int level;
    if (diff < (std::uint64_t{1} << kWheelBits)) {
      level = 0;
    } else if (diff < (std::uint64_t{1} << (2 * kWheelBits))) {
      level = 1;
    } else if (diff < (std::uint64_t{1} << (3 * kWheelBits))) {
      level = 2;
    } else {
      return false;
    }
    const auto pos = static_cast<std::size_t>(
        (idx0 >> (level * kWheelBits)) & (kWheelBuckets - 1));
    Bucket& b = wheel_[level].buckets[pos];
    // Buckets concentrate: every schedule issued within one pacing gap of a
    // higher-level period boundary lands in the same next-period bucket, and
    // when the pacing horizon exceeds a level's bucket width the *insertion*
    // bucket at now + gap collects the whole pending population as it slides
    // across the level. Instead of letting each such bucket grow its own
    // large vector (a capacity ratchet that walks around the level once per
    // period), a full bucket takes over parked storage from the spare pool:
    // a handful of hot buffers circulate and steady state stops allocating.
    // One parked buffer is not enough — a filling L1 horizon bucket, its
    // not-yet-cascaded predecessor, and an L2 boundary-spill bucket can all
    // demand big storage in the same stretch, which is exactly how small
    // configs kept growing the wheel mid-run. The capacity test is the same
    // size==capacity compare push_back is about to do anyway.
    if (b.entries.size() == b.entries.capacity()) take_over_spare(b);
    b.entries.push_back(e);
    wheel_[level].occupancy[pos >> 6] |= std::uint64_t{1} << (pos & 63);
    return true;
  }

  /// Moves a full bucket's entries into a parked spare buffer and swaps
  /// storage, leaving the bucket's old vector parked in the pool. The spare
  /// is chosen like vector growth would size it — the smallest one holding
  /// at least 2x the bucket's size — so a lightly skewed bucket borrows a
  /// small buffer and the big pre-parked buffers stay free for genuine
  /// concentration (a greedy largest-first pick hands the worst-case buffer
  /// to the first 20-entry bucket that fills, starving the population-sized
  /// demand that arrives later). Falls back to the largest spare when none
  /// is big enough, and to organic push_back growth when even that is no
  /// bigger than the bucket. The copy is allocation-free: the chosen spare's
  /// capacity strictly exceeds the bucket's, hence its size.
  void take_over_spare(Bucket& b) {
    const std::size_t need =
        b.entries.size() < 4 ? 8 : b.entries.size() * 2;
    std::vector<Entry>* chosen = nullptr;
    std::vector<Entry>* largest = &spares_[0];
    for (std::size_t i = 0; i < kSpareBuffers; ++i) {
      std::vector<Entry>& sp = spares_[i];
      if (sp.capacity() > largest->capacity()) largest = &sp;
      if (sp.capacity() >= need && (chosen == nullptr || sp.capacity() < chosen->capacity()))
        chosen = &sp;
    }
    if (chosen == nullptr) chosen = largest;
    if (chosen->capacity() <= b.entries.capacity()) return;
    chosen->clear();
    chosen->insert(chosen->end(), b.entries.begin(), b.entries.end());
    b.entries.swap(*chosen);
    chosen->clear();  // old bucket storage, now parked with capacity intact
  }

  /// Parks an empty vector's storage into the spare pool by displacing the
  /// smallest parked buffer (when `v` is the bigger of the two). This is how
  /// big buffers circulate back after their bucket drains or cascades —
  /// without it they strand in cleared-not-shrunk buckets and starve the
  /// pool.
  void park_into_pool(std::vector<Entry>& v) {
    std::vector<Entry>* smallest = &spares_[0];
    for (std::size_t i = 1; i < kSpareBuffers; ++i) {
      if (spares_[i].capacity() < smallest->capacity()) smallest = &spares_[i];
    }
    if (v.capacity() > smallest->capacity()) v.swap(*smallest);
  }

  /// A drained bucket keeps storage up to this cap; anything bigger came
  /// from a concentration takeover and is returned to the pool.
  std::size_t bucket_keep_capacity() const {
    const std::size_t floor = 64;
    return bucket_reserve_ * 2 > floor ? bucket_reserve_ * 2 : floor;
  }

  /// Ensures the globally next live event (if any) is at the run head or the
  /// heap top, draining/cascading wheel buckets as the frontier advances.
  /// Returns false when no live events remain anywhere.
  bool prepare_next();
  /// Earliest occupied bucket across levels (preferring the higher level on
  /// equal start times so containment cascades before loading). Caller
  /// guarantees some occupancy bit is set.
  void find_earliest_bucket(int* level, std::size_t* pos, std::uint64_t* abs_idx,
                            SimTime* start) const;
  /// Drains level-0 bucket `pos` (absolute index `abs_idx`) into the sorted
  /// run buffer, purging stale entries, and advances the frontier past it.
  void load_run(std::size_t pos, std::uint64_t abs_idx);
  /// Re-places a level>=1 bucket's entries; each lands strictly below
  /// `level` (or on the heap for the already-drained window).
  void cascade(int level, std::size_t pos);

  /// Pops the top heap entry (caller guarantees non-empty).
  Entry pop_top();
  /// Retires `e`'s slot (bumps generation, frees it) and returns the
  /// callback, ready to invoke.
  Callback take_callback(const Entry& e);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;  // doubles as the lifetime scheduled count
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t stale_skipped_ = 0;
  std::uint64_t bucket_loads_ = 0;
  std::uint64_t cascades_ = 0;
  std::size_t pending_ = 0;
  bool wheel_enabled_ = true;
  std::size_t bucket_reserve_ = 0;   // per-bucket reserve() size (keep cap)
  std::size_t wheel_live_ = 0;       // live entries in wheel buckets or
                                     // staged in the run buffer
  std::int64_t run_bucket_ = -1;     // last drained level-0 bucket index
  std::vector<Entry> heap_;
  std::vector<Entry> run_;           // drained bucket, sorted by (t, seq)
  std::size_t run_pos_ = 0;          // consumption cursor into run_
  std::array<WheelLevel, kWheelLevels> wheel_;
  std::vector<Entry> cascade_buf_;   // scratch for cascade() (reused)
  // Parked storage pool for concentrated buckets (see place_in_wheel and
  // reserve()). Several buffers because several buckets can need big storage
  // concurrently; extra slots beyond the pre-parked three let organically
  // grown buffers retire into the pool instead of shrinking.
  std::array<std::vector<Entry>, kSpareBuffers> spares_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace pels
