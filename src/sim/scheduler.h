// Discrete-event scheduler: the heart of the simulator.
//
// Events are (time, callback) pairs kept in a binary min-heap. Ties in time
// are broken by insertion order, so execution is fully deterministic.
//
// Hot-path design (this is the inner loop under every figure/ablation
// binary, so the layout matters):
//   * Heap entries are small PODs {time, seq, slot, generation} in a 4-ary
//     min-heap; the callbacks live in a pooled slot vector so sift
//     operations never move a callback.
//   * Callbacks are fixed-capacity InplaceFunctions, not std::functions:
//     packet-carrying captures (112-byte Packet moves) stay inside the slot
//     instead of costing a heap allocation per event.
//   * Cancellation is generation-tagged: an EventId packs (slot, generation)
//     and cancel() just bumps the slot's generation — O(1), no hash lookups.
//     A stale heap entry (generation mismatch) is skipped when it reaches
//     the top. Executed slots also bump the generation, so an old id can
//     never cancel a later event that happens to reuse its slot.
//   * Slots and heap storage are recycled via free lists / reserve(), so the
//     steady state allocates nothing per event.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/inplace_function.h"
#include "util/time.h"

namespace pels {

/// Identifies a scheduled event for cancellation: packs (slot index <<32 |
/// slot generation). Generations start at 1, so 0 is never a valid id.
using EventId = std::uint64_t;

/// Inline capture budget for scheduler callbacks. Sized so a lambda moving a
/// whole Packet (112 bytes, see net/packet.h) plus a couple of pointers fits
/// without touching the heap; net/link.cpp pins the relationship with a
/// static_assert so a Packet growth that would silently re-introduce
/// per-event allocations fails the build instead.
inline constexpr std::size_t kSchedulerCallbackCapacity = 144;

class Scheduler {
 public:
  /// Fixed-capacity move-only callable: scheduling is allocation-free for
  /// any capture that fits the inline budget, and a larger capture is a
  /// compile error (see util/inplace_function.h).
  using Callback = InplaceFunction<void(), kSchedulerCallbackCapacity>;

  /// Counters for diagnostics and microbenches. `executed`/`cancelled`/
  /// `stale_skipped` are lifetime totals; the rest describe current state.
  struct Stats {
    std::uint64_t scheduled = 0;      // schedule_at/in calls
    std::uint64_t executed = 0;       // callbacks run
    std::uint64_t cancelled = 0;      // successful cancel() calls
    std::uint64_t stale_skipped = 0;  // cancelled heap entries dropped at pop
    std::size_t pending = 0;          // live events awaiting execution
    std::size_t heap_size = 0;        // heap entries incl. stale ones
    std::size_t slots = 0;            // pooled callback slots allocated
    std::size_t heap_capacity = 0;    // heap vector capacity (growth probe)
    std::size_t slot_capacity = 0;    // slot pool capacity (growth probe)
  };

  /// Current simulation time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns an id
  /// usable with cancel(). Defined inline: this is the hottest call in the
  /// simulator and every caller benefits from seeing the free-list ops.
  EventId schedule_at(SimTime t, Callback fn) {
    assert(t >= now_ && "cannot schedule in the past");
    assert(fn && "callback must be callable");
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    heap_.push_back(Entry{t, next_seq_++, slot, s.gen});
    sift_up(heap_.size() - 1);
    ++pending_;
    return pack(slot, s.gen);
  }

  /// Schedules `fn` to run `delay` (>= 0) after now.
  EventId schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event was still pending.
  bool cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    // A generation mismatch means the event already executed, was already
    // cancelled, or the slot has been reused by a newer event: all no-ops.
    if (s.gen != gen) return false;
    // Bumping the generation is the cancellation; the stale heap entry is
    // skipped when it reaches the top. Skip generation 0 so ids are never 0.
    if (++s.gen == 0) s.gen = 1;
    s.fn = nullptr;
    free_slots_.push_back(slot);
    --pending_;
    ++cancelled_;
    return true;
  }

  /// True if no runnable (non-cancelled) events remain.
  bool empty() const { return pending_ == 0; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_; }

  /// Runs the next event; returns false if none remain.
  bool step();

  /// Runs events until the queue drains or time would exceed `t_end`.
  /// Events scheduled exactly at `t_end` are executed. On return, now() is
  /// min(t_end, drain time).
  void run_until(SimTime t_end);

  /// Timestamp of the earliest pending (non-cancelled) event, or kTimeNever
  /// when none remain. Prunes stale heap entries encountered at the top —
  /// the same lazy sweep run_until performs — so the answer reflects live
  /// events only. This is the lookahead-window hook: DomainRunner sizes the
  /// next synchronization window from the minimum across all domain
  /// schedulers, letting idle stretches be skipped in one hop instead of
  /// barrier-stepping through empty windows.
  SimTime peek_next_time();

  /// Runs until the event queue is empty.
  void run();

  /// Total number of events executed so far (for diagnostics/microbenches).
  std::uint64_t executed() const { return executed_; }

  /// Snapshot of scheduler counters.
  Stats stats() const {
    Stats s;
    s.scheduled = next_seq_;  // one seq per schedule_at call
    s.executed = executed_;
    s.cancelled = cancelled_;
    s.stale_skipped = stale_skipped_;
    s.pending = pending_;
    s.heap_size = heap_.size();
    s.slots = slots_.size();
    s.heap_capacity = heap_.capacity();
    s.slot_capacity = slots_.capacity();
    return s;
  }

  /// Pre-sizes the heap and slot pool for `events` concurrent events.
  void reserve(std::size_t events) {
    heap_.reserve(events);
    slots_.reserve(events);
    free_slots_.reserve(events);
  }

 private:
  /// POD heap entry; the callback lives in slots_[slot]. 24 bytes, cheap to
  /// sift. `gen` must match the slot's generation or the entry is stale.
  struct Entry {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Heap order on (t, seq): "a is served later than b". The heap is 4-ary
  /// (children of i at 4i+1..4i+4): half the levels of a binary heap and
  /// sibling entries share cache lines, which measures ~20% faster on the
  /// schedule/run microbench than std::push_heap/pop_heap.
  static bool later(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  /// Pooled callback storage. The generation advances on every execution or
  /// cancellation, invalidating outstanding ids/heap entries for the slot.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
  };

  static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  /// Pops the top heap entry (caller guarantees non-empty).
  Entry pop_top();
  /// Retires `e`'s slot (bumps generation, frees it) and returns the
  /// callback, ready to invoke.
  Callback take_callback(const Entry& e);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;  // doubles as the lifetime scheduled count
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t stale_skipped_ = 0;
  std::size_t pending_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace pels
