// Simulation context: owns the scheduler and the master random seed, and
// hands decorrelated Rng streams to components. One Simulation corresponds to
// one experiment run.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace pels {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : master_seed_(seed) {}

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  SimTime now() const { return scheduler_.now(); }

  /// Schedules a callback `delay` after now.
  EventId after(SimTime delay, Scheduler::Callback fn) {
    return scheduler_.schedule_in(delay, std::move(fn));
  }

  /// Schedules a callback at absolute time `t`.
  EventId at(SimTime t, Scheduler::Callback fn) {
    return scheduler_.schedule_at(t, std::move(fn));
  }

  /// Derives a deterministic Rng stream for a component. Call with distinct
  /// stream ids; the same (seed, stream) always produces the same sequence.
  Rng make_rng(std::uint64_t stream) const { return Rng(master_seed_, stream); }

  std::uint64_t master_seed() const { return master_seed_; }

  void run_until(SimTime t_end) { scheduler_.run_until(t_end); }
  void run() { scheduler_.run(); }

 private:
  std::uint64_t master_seed_;
  Scheduler scheduler_;
};

}  // namespace pels
