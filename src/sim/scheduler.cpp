#include "sim/scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace pels {

namespace {

/// First set bit at index >= `from` in a 256-bit bitmap, or kNone.
constexpr std::size_t kNoBucket = 256;

std::size_t find_occupied_from(const std::array<std::uint64_t, 4>& occ,
                               std::size_t from) {
  std::size_t w = from >> 6;
  std::uint64_t word = occ[w] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    if (++w >= occ.size()) return kNoBucket;
    word = occ[w];
  }
}

/// Prefetches a slot's full cache footprint (the inline callback storage
/// spans multiple lines). The level-0 purge walks entries that were scheduled
/// up to a whole pacing horizon ago, so at population scale every slot touch
/// there is a guaranteed miss; prefetching a few entries ahead overlaps those
/// misses with the purge bookkeeping.
inline void prefetch_slot(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  __builtin_prefetch(c, 1);
  __builtin_prefetch(c + 64, 1);
  __builtin_prefetch(c + 128, 1);
#else
  (void)p;
#endif
}

}  // namespace

void Scheduler::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c)
      if (later(heap_[best], heap_[c])) best = c;
    if (!later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

Scheduler::Entry Scheduler::pop_top() {
  const Entry e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return e;
}

Scheduler::Callback Scheduler::take_callback(const Entry& e) {
  Slot& s = slots_[e.slot];
  // No need to null s.fn: schedule_at overwrites it when the slot is reused.
  Callback fn = std::move(s.fn);
  if (++s.gen == 0) s.gen = 1;
  // A run-staged wheel entry keeps its residency flag until it executes (the
  // level-0 purge is read-only on slots); settle it here, where ++gen has
  // already dirtied the line.
  if (s.where != kNotInWheel) {
    s.where = kNotInWheel;
    --wheel_live_;
  }
  free_slots_.push_back(e.slot);
  --pending_;
  return fn;
}

void Scheduler::find_earliest_bucket(int* level, std::size_t* pos,
                                     std::uint64_t* abs_idx, SimTime* start) const {
  const std::uint64_t f0 = frontier_idx0();
  bool found = false;
  for (int l = 0; l < kWheelLevels; ++l) {
    const std::uint64_t fl = f0 >> (l * kWheelBits);
    const auto from = static_cast<std::size_t>(fl & (kWheelBuckets - 1));
    const std::size_t p = find_occupied_from(wheel_[l].occupancy, from);
    if (p == kNoBucket) continue;
    const std::uint64_t abs = (fl & ~static_cast<std::uint64_t>(kWheelBuckets - 1)) + p;
    const auto s = static_cast<SimTime>(abs << (kWheelShift + l * kWheelBits));
    // <= : on equal starts the higher level wins, so a bucket containing the
    // frontier cascades before the frontier's own level-0 bucket is loaded.
    if (!found || s <= *start) {
      found = true;
      *level = l;
      *pos = p;
      *abs_idx = abs;
      *start = s;
    }
  }
  assert(found && "occupancy bitmaps empty despite occupied wheel");
}

void Scheduler::load_run(std::size_t pos, std::uint64_t abs_idx) {
  assert(run_pos_ >= run_.size() && "run buffer must be exhausted before a load");
  run_.clear();
  run_pos_ = 0;
  Bucket& b = wheel_[0].buckets[pos];
  const std::size_t n = b.entries.size();
  constexpr std::size_t kAhead = 16;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) prefetch_slot(&slots_[b.entries[i + kAhead].slot]);
    const Entry& e = b.entries[i];
    // Read-only on the slot: live entries stay counted in wheel_live_ while
    // staged in the run (take_callback settles the flag and the count when
    // they execute, on a line ++gen dirties anyway), so the purge never
    // dirties these cold lines just to clear residency. Stale entries were
    // already settled by cancel().
    if (slots_[e.slot].gen != e.gen) {
      ++stale_skipped_;
      continue;
    }
    run_.push_back(e);
  }
  b.entries.clear();  // keeps capacity: buckets are pooled storage
  // ...up to a point: storage far past the per-bucket reserve came from a
  // concentration takeover (a pacing horizon sliding across this level fills
  // one insertion bucket with ~the whole population). Level-0 drains are the
  // end of that storage's life in a bucket, so return it to the spare pool
  // here; left in place it would strand — the sliding horizon visits every
  // bucket once per wrap, and 256 stranded population-sized buffers both
  // starve the pool and read as unbounded wheel growth.
  if (b.entries.capacity() > bucket_keep_capacity()) park_into_pool(b.entries);
  wheel_[0].occupancy[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
  std::sort(run_.begin(), run_.end(), [](const Entry& a, const Entry& c) {
    return a.t != c.t ? a.t < c.t : a.seq < c.seq;
  });
  // Schedules landing back inside the drained bucket's window go to the heap
  // and merge with the run by (t, seq).
  run_bucket_ = static_cast<std::int64_t>(abs_idx);
  ++bucket_loads_;
}

void Scheduler::cascade(int level, std::size_t pos) {
  Bucket& b = wheel_[level].buckets[pos];
  // Swap out before re-placing: entries land in other buckets (strictly
  // lower levels — the cascaded bucket contains the new frontier, so the
  // XOR level rule cannot pick `level` again) or on the heap for the
  // already-drained window.
  assert(cascade_buf_.empty());
  std::swap(b.entries, cascade_buf_);
  wheel_[level].occupancy[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
  const std::uint64_t f0 = frontier_idx0();
  for (const Entry& e : cascade_buf_) {
    // The common path is slot-free: entries re-place on (t, seq) alone, and
    // cancelled ones ride along until the level-0 purge. Only the rare heap
    // fallback (an entry behind the drain frontier) checks the generation,
    // because moving an entry out of the wheel must fix the slot-side
    // residency bookkeeping.
    if (!place_in_wheel(e, f0)) {
      Slot& s = slots_[e.slot];
      if (s.gen != e.gen) {  // cancelled while wheel-resident: purge
        ++stale_skipped_;
        continue;
      }
      s.where = kNotInWheel;
      --wheel_live_;
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    }
  }
  cascade_buf_.clear();
  // A concentrated bucket's big storage (taken over from the spare pool in
  // place_in_wheel) leaves through here when the bucket cascades: park the
  // scratch back into the pool so it circulates to the next concentrated
  // bucket instead of stranding in the cascade scratch.
  park_into_pool(cascade_buf_);
  ++cascades_;
}

bool Scheduler::prepare_next() {
  for (;;) {
    // Prune stale entries at both fronts so callers compare live ones only.
    while (run_pos_ < run_.size() &&
           slots_[run_[run_pos_].slot].gen != run_[run_pos_].gen) {
      ++run_pos_;
      ++stale_skipped_;
    }
    if (run_pos_ >= run_.size() && !run_.empty()) {
      run_.clear();  // keeps capacity
      run_pos_ = 0;
    }
    while (!heap_.empty() &&
           slots_[heap_.front().slot].gen != heap_.front().gen) {
      pop_top();
      ++stale_skipped_;
    }
    if (run_pos_ < run_.size()) {
      // Every live wheel bucket starts after the drained bucket the run was
      // loaded from, so the run head already bounds the wheel; the heap is
      // merged at take time.
      return true;
    }
    if (wheel_live_ == 0) return !heap_.empty();
    int level = 0;
    std::size_t pos = 0;
    std::uint64_t abs_idx = 0;
    SimTime start = 0;
    find_earliest_bucket(&level, &pos, &abs_idx, &start);
    // When the heap front strictly precedes the earliest bucket's window it
    // is globally next; a tie on the window start must drain the bucket so
    // the (t, seq) merge can decide.
    if (!heap_.empty() && heap_.front().t < start) return true;
    if (level == 0) {
      load_run(pos, abs_idx);
    } else {
      const auto frontier = static_cast<std::int64_t>(start >> kWheelShift) - 1;
      run_bucket_ = std::max(run_bucket_, frontier);
      cascade(level, pos);
    }
  }
}

bool Scheduler::step() {
  if (!prepare_next()) return false;
  const bool have_run = run_pos_ < run_.size();
  const bool from_run =
      have_run && (heap_.empty() || !later(run_[run_pos_], heap_.front()));
  const Entry e = from_run ? run_[run_pos_++] : pop_top();
  Callback fn = take_callback(e);
  now_ = e.t;
  ++executed_;
  fn();
  return true;
}

void Scheduler::run_until(SimTime t_end) {
  // Each entry's generation is checked exactly once (at the prune in
  // prepare_next or its bucket drain), and stale entries are dropped without
  // advancing time.
  while (prepare_next()) {
    const bool have_run = run_pos_ < run_.size();
    const bool from_run =
        have_run && (heap_.empty() || !later(run_[run_pos_], heap_.front()));
    const Entry& top = from_run ? run_[run_pos_] : heap_.front();
    if (top.t > t_end) break;
    const Entry e = from_run ? run_[run_pos_++] : pop_top();
    Callback fn = take_callback(e);
    now_ = e.t;
    ++executed_;
    fn();
  }
  if (now_ < t_end) now_ = t_end;
}

SimTime Scheduler::peek_next_time() {
  if (!prepare_next()) return kTimeNever;
  SimTime best = kTimeNever;
  if (run_pos_ < run_.size()) best = run_[run_pos_].t;
  if (!heap_.empty() && heap_.front().t < best) best = heap_.front().t;
  return best;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace pels
