#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>

namespace pels {

void Scheduler::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c)
      if (later(heap_[best], heap_[c])) best = c;
    if (!later(e, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

Scheduler::Entry Scheduler::pop_top() {
  const Entry e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return e;
}

Scheduler::Callback Scheduler::take_callback(const Entry& e) {
  Slot& s = slots_[e.slot];
  // No need to null s.fn: schedule_at overwrites it when the slot is reused.
  Callback fn = std::move(s.fn);
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(e.slot);
  --pending_;
  return fn;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const Entry e = pop_top();
    if (slots_[e.slot].gen != e.gen) {  // cancelled: skip stale entry
      ++stale_skipped_;
      continue;
    }
    Callback fn = take_callback(e);
    now_ = e.t;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime t_end) {
  // Fast path: each entry's generation is checked exactly once, and stale
  // entries are dropped without advancing time.
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].gen != top.gen) {
      pop_top();
      ++stale_skipped_;
      continue;
    }
    if (top.t > t_end) break;
    const Entry e = pop_top();
    Callback fn = take_callback(e);
    now_ = e.t;
    ++executed_;
    fn();
  }
  if (now_ < t_end) now_ = t_end;
}

SimTime Scheduler::peek_next_time() {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].gen != top.gen) {
      pop_top();
      ++stale_skipped_;
      continue;
    }
    return top.t;
  }
  return kTimeNever;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace pels
