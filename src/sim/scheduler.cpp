#include "sim/scheduler.h"

#include <cassert>

namespace pels {

EventId Scheduler::schedule_at(SimTime t, Callback fn) {
  assert(t >= now_ && "cannot schedule in the past");
  assert(fn && "callback must be callable");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Scheduler::cancel(EventId id) {
  // Erasing from live_ is the cancellation; the stale heap entry is skipped
  // when it reaches the top. Ids of executed events are no longer live, so
  // cancelling them is a harmless no-op.
  return live_.erase(id) != 0;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    // priority_queue::top() is const; move the entry out before popping so
    // the callback survives the pop.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (live_.erase(e.id) == 0) continue;  // cancelled: skip stale entry
    now_ = e.t;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime t_end) {
  while (!heap_.empty()) {
    // Drop cancelled entries from the top without advancing time.
    const Entry& top = heap_.top();
    if (live_.count(top.id) == 0) {
      heap_.pop();
      continue;
    }
    if (top.t > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace pels
