// Periodic timer built on the Scheduler.
//
// Used for router feedback epochs (every T units), source control intervals,
// and metric sampling. The timer reschedules itself until stopped; stopping
// from inside the callback is supported.
#pragma once

#include <functional>
#include <utility>

#include "sim/scheduler.h"
#include "util/time.h"

namespace pels {

class PeriodicTimer {
 public:
  using Callback = std::function<void()>;

  /// Creates a stopped timer bound to `sched`; `period` must be > 0.
  PeriodicTimer(Scheduler& sched, SimTime period, Callback fn);

  /// Non-copyable: the scheduler holds callbacks referencing `this`.
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  ~PeriodicTimer() { stop(); }

  /// Starts the timer; first fire is `period` from now (or `first_delay` if
  /// given). No-op if already running.
  void start();
  void start_after(SimTime first_delay);

  /// Cancels any pending fire. No-op if stopped.
  void stop();

  bool running() const { return pending_ != 0; }
  SimTime period() const { return period_; }

  /// Changes the period; takes effect at the next (re)scheduling.
  void set_period(SimTime period);

 private:
  void fire();

  Scheduler& sched_;
  SimTime period_;
  Callback fn_;
  EventId pending_ = 0;
};

}  // namespace pels
