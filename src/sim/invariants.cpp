#include "sim/invariants.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>

#include "util/json.h"

namespace pels {

InvariantViolationError::InvariantViolationError(InvariantViolation v)
    : std::runtime_error("invariant '" + v.invariant + "' violated at t=" +
                         std::to_string(v.at) + "ns (tick " + std::to_string(v.tick) +
                         "): " + v.detail +
                         (v.context.empty() ? std::string() : " [" + v.context + "]")),
      violation_(std::move(v)) {}

void InvariantConfig::validate() const {
  if (!enabled) return;
  if (period <= 0) {
    throw std::invalid_argument("InvariantConfig: period must be > 0");
  }
  if (max_records == 0) {
    throw std::invalid_argument("InvariantConfig: max_records must be >= 1");
  }
  if (wall_clock_budget_s < 0.0) {
    throw std::invalid_argument("InvariantConfig: wall_clock_budget_s must be >= 0");
  }
}

InvariantMonitor::InvariantMonitor(Scheduler& sched, InvariantConfig config)
    : cfg_(config),
      sched_(sched),
      timer_(sched, config.period > 0 ? config.period : from_millis(10),
             [this] { check_now(); }),
      wall_start_(std::chrono::steady_clock::now()) {
  InvariantConfig check = cfg_;
  check.enabled = true;  // constructing a monitor means running it
  check.validate();
}

void InvariantMonitor::add_check(std::string name, CheckFn check) {
  Check c;
  c.name = std::move(name);
  c.fn = std::move(check);
  checks_.push_back(std::move(c));
}

void InvariantMonitor::add_monotone_check(std::string name, ProbeFn probe) {
  Check c;
  c.name = std::move(name);
  c.probe = std::move(probe);
  c.is_monotone = true;
  checks_.push_back(std::move(c));
}

void InvariantMonitor::add_progress_check(std::string name, ProbeFn probe,
                                          std::uint64_t stall_ticks) {
  if (stall_ticks == 0) {
    throw std::invalid_argument("InvariantMonitor: stall_ticks must be >= 1");
  }
  Check c;
  c.name = std::move(name);
  c.probe = std::move(probe);
  c.is_progress = true;
  c.stall_ticks = stall_ticks;
  checks_.push_back(std::move(c));
}

void InvariantMonitor::set_context(ContextFn context) { context_ = std::move(context); }

void InvariantMonitor::start() { timer_.start(); }
void InvariantMonitor::stop() { timer_.stop(); }

void InvariantMonitor::report(const std::string& name, std::string detail) {
  InvariantViolation v;
  v.invariant = name;
  v.at = sched_.now();
  v.tick = ticks_;
  v.detail = std::move(detail);
  if (context_) v.context = context_();
  ++violation_count_;
  if (cfg_.abort_on_violation) throw InvariantViolationError(std::move(v));
  if (records_.size() < cfg_.max_records) records_.push_back(std::move(v));
}

void InvariantMonitor::run_check(Check& check) {
  if (check.is_monotone) {
    const double value = check.probe();
    if (check.has_last && value < check.last) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "value went backwards: %.17g -> %.17g",
                    check.last, value);
      report(check.name, buf);
    }
    check.last = check.has_last ? std::max(check.last, value) : value;
    check.has_last = true;
    return;
  }
  if (check.is_progress) {
    const double value = check.probe();
    if (!check.has_last || value > check.last) {
      check.last = value;
      check.has_last = true;
      check.stalled = 0;
      return;
    }
    if (++check.stalled >= check.stall_ticks) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "no progress for %llu ticks (value %.17g)",
                    static_cast<unsigned long long>(check.stalled), value);
      check.stalled = 0;  // re-arm: one report per stall, not per tick
      report(check.name, buf);
    }
    return;
  }
  std::string detail;
  if (!check.fn(detail)) report(check.name, std::move(detail));
}

void InvariantMonitor::check_now() {
  // Built-in: scheduler time must never move backwards between ticks. A
  // trivially cheap canary for the property every other check assumes.
  const SimTime now = sched_.now();
  if (now < last_tick_time_) {
    report("sim.monotone_time",
           "scheduler time went backwards: " + std::to_string(last_tick_time_) +
               " -> " + std::to_string(now));
  }
  last_tick_time_ = now;

  if (cfg_.wall_clock_budget_s > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
            .count();
    if (elapsed > cfg_.wall_clock_budget_s) {
      // A timeout is never record-and-continue: the point is to stop burning
      // wall clock. Bypass abort_on_violation and throw directly.
      InvariantViolation v;
      v.invariant = "monitor.wall_clock_budget";
      v.at = now;
      v.tick = ticks_;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "exceeded %.1fs wall-clock budget (%.1fs elapsed)",
                    cfg_.wall_clock_budget_s, elapsed);
      v.detail = buf;
      if (context_) v.context = context_();
      ++violation_count_;
      throw InvariantViolationError(std::move(v));
    }
  }

  for (Check& check : checks_) run_check(check);
  ++ticks_;
}

void InvariantMonitor::write_json(std::ostream& os) const {
  os << '[';
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const InvariantViolation& v = records_[i];
    if (i > 0) os << ',';
    os << "{\"invariant\":";
    write_json_string(os, v.invariant);
    os << ",\"at_ns\":" << v.at << ",\"tick\":" << v.tick << ",\"detail\":";
    write_json_string(os, v.detail);
    os << ",\"context\":";
    write_json_string(os, v.context);
    os << '}';
  }
  os << ']';
}

}  // namespace pels
