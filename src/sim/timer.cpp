#include "sim/timer.h"

#include <cassert>

namespace pels {

PeriodicTimer::PeriodicTimer(Scheduler& sched, SimTime period, Callback fn)
    : sched_(sched), period_(period), fn_(std::move(fn)) {
  assert(period_ > 0 && "timer period must be positive");
  assert(fn_ && "timer callback must be callable");
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(SimTime first_delay) {
  if (pending_ != 0) return;
  pending_ = sched_.schedule_in(first_delay, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (pending_ != 0) {
    sched_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::set_period(SimTime period) {
  assert(period > 0);
  period_ = period;
}

void PeriodicTimer::fire() {
  // Reschedule before invoking so the callback may call stop() to end the
  // timer, or observe running() == true consistently.
  pending_ = sched_.schedule_in(period_, [this] { fire(); });
  fn_();
}

}  // namespace pels
