// Runtime invariant monitor: turn "it didn't crash" into "every invariant
// held" — and when one doesn't, into a structured, replayable record.
//
// An InvariantMonitor rides the scheduler as a periodic control tick and
// evaluates a set of registered checks against live simulation state. Checks
// are cheap global properties that must hold at *every* quiescent instant
// (between events), not statistical expectations: packet conservation across
// links and queues, queue occupancies within configured bounds, controller
// state inside its mathematical domain (γ ∈ [0,1], non-negative rates),
// monotone time. The chaos harness (fault/chaos.h, bench/chaos_sweep)
// drives randomized fault schedules through scenarios with a monitor
// attached; a single failing tick is what the shrinker minimizes into a
// repro artifact.
//
// Layering: this module lives in pels_sim and therefore knows nothing about
// links, queues, or telemetry. Checks are plain std::functions installed by
// whoever owns the concrete objects (DumbbellScenario installs the
// conservation/band/γ checks; tests install synthetic ones). Three check
// flavours cover the catalog:
//
//   * add_check        — predicate over arbitrary state; fills a detail
//                        string on failure.
//   * add_monotone     — a probed value must never decrease across ticks
//                        (scheduler time, telemetry sample timestamps,
//                        cumulative counters).
//   * add_progress     — a probed value must strictly increase at least once
//                        every `stall_ticks` ticks: a liveness watchdog that
//                        turns a silent wedge into a diagnostic.
//
// Violations are recorded (sim time, tick index, detail, fault-plan context
// from the installed context callback) up to a cap, and counted beyond it.
// With abort_on_violation set the failing tick throws InvariantViolationError
// instead, which SweepRunner's per-task capture converts into a per-task
// error — one poisoned schedule cannot take down a campaign. A wall-clock
// budget provides a cooperative per-task timeout through the same path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/timer.h"
#include "util/time.h"

namespace pels {

/// One failed check at one monitor tick.
struct InvariantViolation {
  std::string invariant;  // registered check name
  SimTime at = 0;         // simulation time of the failing tick
  std::uint64_t tick = 0; // monitor tick index (0-based)
  std::string detail;     // check-provided diagnostic (values, indices)
  std::string context;    // monitor-level context (e.g. fault-plan position)
};

/// Thrown by the failing tick when abort_on_violation is set (and always for
/// wall-clock budget overruns). Carries the structured record so catchers
/// (chaos campaign, shrinker predicate) need not parse what().
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(InvariantViolation v);
  const InvariantViolation& violation() const { return violation_; }

 private:
  InvariantViolation violation_;
};

/// Declarative monitor switch for scenario configs (mirrors TelemetryConfig).
struct InvariantConfig {
  bool enabled = false;
  /// Tick period. Checks are cheap (a few loads per link/flow) but not free;
  /// 10 ms keeps monitor overhead within the bench gate's budget while still
  /// bracketing every fault window the chaos generator emits (>= 20 ms).
  SimTime period = from_millis(10);
  /// Throw InvariantViolationError at the failing tick instead of recording
  /// and continuing. Campaigns set this: the error carries the exact failing
  /// instant, and SweepRunner's capture keeps the batch alive.
  bool abort_on_violation = false;
  /// Violation records kept; further violations are counted, not stored.
  std::size_t max_records = 32;
  /// Ticks without strict progress tolerated by the scenario's built-in
  /// arrival-progress watchdog; 0 disables it. Scenario-specific (see
  /// DumbbellScenario): a fault-free config with sources starting late would
  /// trip a tight threshold.
  std::uint64_t progress_stall_ticks = 0;
  /// Cooperative per-task timeout: when > 0, a tick past this much wall
  /// clock since monitor construction throws (always — a timeout cannot be
  /// recorded and continued). Guards sweeps against a wedged or pathological
  /// schedule without any OS-level machinery.
  double wall_clock_budget_s = 0.0;

  /// Throws std::invalid_argument on nonsense (non-positive period, zero
  /// record cap, negative budget). Only checked when enabled.
  void validate() const;
};

class InvariantMonitor {
 public:
  /// Returns true when the invariant holds; on failure fills `detail` with a
  /// human-readable diagnostic (current values, offending index).
  using CheckFn = std::function<bool(std::string& detail)>;
  /// Reads one scalar from live state; must be cheap and side-effect-free.
  using ProbeFn = std::function<double()>;
  /// Produces the context string attached to every violation record.
  using ContextFn = std::function<std::string()>;

  InvariantMonitor(Scheduler& sched, InvariantConfig config);

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  void add_check(std::string name, CheckFn check);
  /// `probe` must be non-decreasing across ticks.
  void add_monotone_check(std::string name, ProbeFn probe);
  /// `probe` must strictly increase at least once every `stall_ticks` ticks
  /// (>= 1). The first observation arms the watchdog; a violation re-arms it
  /// so a recorded (non-aborting) stall is reported once per stall, not once
  /// per tick.
  void add_progress_check(std::string name, ProbeFn probe, std::uint64_t stall_ticks);
  /// Installs the violation-context callback (e.g. fault-plan position).
  void set_context(ContextFn context);

  /// Starts ticking every config().period (first tick one period from now).
  void start();
  void stop();

  /// Runs every check at the current simulation time. The periodic tick body;
  /// also callable directly (tests, end-of-run final sweep).
  void check_now();

  const InvariantConfig& config() const { return cfg_; }
  std::uint64_t ticks() const { return ticks_; }
  /// Total violations observed, including those beyond the record cap.
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<InvariantViolation>& violations() const { return records_; }
  std::size_t check_count() const { return checks_.size(); }

  /// Deterministic JSON array of the recorded violations (repro artifacts).
  void write_json(std::ostream& os) const;

 private:
  struct Check {
    std::string name;
    CheckFn fn;
    // Monotone/progress bookkeeping (unused for plain checks).
    ProbeFn probe;
    bool is_monotone = false;
    bool is_progress = false;
    bool has_last = false;
    double last = 0.0;
    std::uint64_t stall_ticks = 0;
    std::uint64_t stalled = 0;
  };

  void run_check(Check& check);
  void report(const std::string& name, std::string detail);

  InvariantConfig cfg_;
  Scheduler& sched_;
  PeriodicTimer timer_;
  std::vector<Check> checks_;
  ContextFn context_;
  SimTime last_tick_time_ = -1;
  std::uint64_t ticks_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<InvariantViolation> records_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace pels
