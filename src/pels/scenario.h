// Canned simulation scenario: the paper's bar-bell topology (Fig. 6).
//
//   src_0..N  --10mb/s-->  R1  --4mb/s (PELS AQM)-->  R2  --10mb/s--> dst_0..N
//   tcp_0..M  --10mb/s-->  R1                         R2  --10mb/s--> tsink_0..M
//
// N PELS video flows and M greedy TCP cross-traffic flows share the
// bottleneck; WRR gives the Internet queue its configured share (50% in
// §6.1). The scenario wires topology, agents, and periodic samplers for the
// per-colour loss rates at the bottleneck, and exposes everything the bench
// harnesses need.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cc/flow_table.h"
#include "cc/mkc.h"
#include "cc/rem_controller.h"
#include "cc/tcp_like.h"
#include "fault/fault_plan.h"
#include "net/topology.h"
#include "queue/best_effort.h"
#include "queue/pels_queue.h"
#include "queue/rem.h"
#include "pels/pels_sink.h"
#include "pels/pels_source.h"
#include "sim/invariants.h"
#include "sim/timer.h"
#include "telemetry/sampler.h"
#include "video/rd_model.h"

namespace pels {

enum class BottleneckKind {
  kPels,        // priority AQM (the paper's contribution)
  kBestEffort,  // colour-blind random-drop comparator (§6.5)
  kRem          // marking-based REM comparator (§2.2 ref [20])
};

struct ScenarioConfig {
  BottleneckKind bottleneck = BottleneckKind::kPels;
  int pels_flows = 2;
  /// Start time per flow; missing entries start at 0.
  std::vector<SimTime> start_times;
  int tcp_flows = 1;

  double bottleneck_bps = 4e6;  // §6.1
  double edge_bps = 10e6;
  SimTime edge_delay = from_millis(2);
  /// Per-flow edge propagation delay (RTT diversity, fairness-matrix cells):
  /// flow k — PELS flows first, then TCP flows — uses entry k % size() on
  /// both of its edges, so base RTTs differ while the shared bottleneck path
  /// stays common. Empty (default) = uniform edge_delay everywhere.
  std::vector<SimTime> edge_delays;
  SimTime bottleneck_delay = from_millis(10);
  std::size_t edge_queue_limit = 1000;  // packets; edges should not drop

  PelsQueueConfig pels_queue;            // link_bandwidth_bps is overwritten
  BestEffortQueueConfig best_effort_queue;  // ditto
  RemQueueConfig rem_queue;                 // ditto
  MkcConfig mkc;
  RemControllerConfig rem;  // used when bottleneck == kRem (unless overridden)
  PelsSourceConfig source;  // `partition` is forced by `bottleneck` kind
  RdModelConfig rd;
  /// Constant-quality R-D scaling (paper's [5] extension): sources allocate
  /// FGS budget across a lookahead window by max-min PSNR.
  bool rd_aware_scaling = false;

  /// Random drop probability on the reverse (ACK) bottleneck direction, for
  /// feedback-robustness experiments. 0 = clean reverse path.
  double ack_loss = 0.0;

  /// Wireless-style corruption probability on the forward bottleneck wire:
  /// non-congestive loss that happens *after* the AQM and signals nothing to
  /// it. Exercises the loss-vs-congestion confusion (bench/ablation_wireless).
  double wireless_loss = 0.0;

  /// Optional custom controller per flow (CC-independence ablation);
  /// default builds MkcController(mkc).
  std::function<std::unique_ptr<CongestionController>(int flow_index)> make_controller;

  /// Scripted fault schedule applied to the bottleneck: link flaps and
  /// brown-outs on the forward direction, ACK blackouts on the reverse,
  /// router restarts on the PELS queue, Gilbert–Elliott burst corruption on
  /// the forward wire. Deterministic given `seed`. Empty = fault-free run.
  FaultPlan faults;

  SimTime sample_interval = kSecond;  // per-colour loss sampling
  std::uint64_t seed = 1;

  /// Scheduler calendar tier (see DESIGN.md "Event model"): false pins the
  /// scenario's scheduler to the heap-only baseline. The two produce
  /// byte-identical runs (verified by tests/scheduler_wheel_test.cpp); the
  /// switch exists for that regression test and for A/B benching.
  bool scheduler_wheel = true;

  /// Structure-of-arrays flow state (see cc/flow_table.h): default-built
  /// flows (no make_controller, non-REM bottleneck) allocate a slot in a
  /// shared FlowTable and their MkcController/gamma/pacing scalars live in
  /// its columns. Storage-only change — dynamics are bit-for-bit identical
  /// to per-object controllers (tests/flow_table_test.cpp). Off = every
  /// flow keeps private controller state.
  bool use_flow_table = true;

  /// Declarative telemetry switch (see DESIGN.md "Telemetry"): when enabled,
  /// the scenario builds a MetricsRegistry, registers every instrumented
  /// layer (bottleneck AQM, bottleneck link, each source and sink), and runs
  /// a TimeSeriesSampler at `telemetry.period`. Off by default — the packet
  /// path then carries no telemetry work at all.
  TelemetryConfig telemetry;

  /// Runtime invariant monitor (see DESIGN.md §9): when enabled, the
  /// scenario attaches an InvariantMonitor checking packet conservation on
  /// every link, per-band occupancy bounds at the PELS bottleneck, γ ∈ [0,1]
  /// and non-negative finite MKC rates per flow, monotone telemetry sample
  /// timestamps, and (when progress_stall_ticks > 0) bottleneck arrival
  /// progress. Violations carry the fault-plan position as context. Off by
  /// default; the chaos campaign (bench/chaos_sweep) and robustness tests
  /// turn it on.
  InvariantConfig invariants;

  /// Rejects nonsensical parameters (probabilities outside [0,1), gains
  /// outside their stability regions, non-positive bandwidths/intervals,
  /// restarts without a PELS bottleneck) with std::invalid_argument. Called
  /// by the DumbbellScenario constructor — a bad config fails fast instead
  /// of producing a silently absurd simulation.
  void validate() const;
};

/// Convenience: start times 0, t, 2t, ... for a staircase join pattern
/// (two flows per step is Fig. 8/9's "two new flows every 50 seconds").
std::vector<SimTime> staircase_starts(int flows, int per_step, SimTime step);

class DumbbellScenario {
 public:
  explicit DumbbellScenario(ScenarioConfig config);

  /// Advances the simulation to absolute time `t`.
  void run_until(SimTime t);
  /// Finalizes all sinks' buffered frames (call once, after the last run).
  void finish();

  Simulation& sim() { return sim_; }
  /// The underlying graph — link 0 is the forward bottleneck, link 1 the
  /// reverse (ACK) direction. Exposed for invariant checks and fault tooling
  /// that need per-link counters.
  Topology& topology() { return topo_; }
  int pels_flow_count() const { return cfg_.pels_flows; }
  PelsSource& source(int i) { return *sources_.at(static_cast<std::size_t>(i)); }
  PelsSink& sink(int i) { return *sinks_.at(static_cast<std::size_t>(i)); }
  TcpLikeSource& tcp_source(int i) { return *tcp_sources_.at(static_cast<std::size_t>(i)); }

  /// Bottleneck queue views (exactly one is non-null, per `bottleneck`).
  PelsQueue* pels_queue() { return pels_queue_; }
  BestEffortQueue* best_effort_queue() { return best_effort_queue_; }
  RemQueue* rem_queue() { return rem_queue_; }
  QueueDisc& bottleneck_queue();

  /// Capacity share of the video/PELS class at the bottleneck, bits/s.
  double video_capacity_bps() const;

  /// Degrades/upgrades the forward bottleneck link mid-run (failure
  /// injection): adjusts both the wire rate and the AQM's capacity share.
  void set_bottleneck_bandwidth(double bandwidth_bps);

  /// Loss rate of `c`-coloured packets at the bottleneck per sample interval
  /// (drops/arrivals within the interval; 0 when no arrivals).
  const TimeSeries& loss_series(Color c) const {
    return loss_series_[static_cast<std::size_t>(c)];
  }

  /// Aggregate FGS (yellow+red) loss rate per sample interval.
  const TimeSeries& fgs_loss_series() const { return fgs_loss_series_; }

  const RdModel& rd_model() const { return rd_; }
  const ScenarioConfig& config() const { return cfg_; }

  /// Shared SoA flow state; null when config().use_flow_table is false or
  /// the flows use custom/REM controllers.
  FlowTable* flow_table() { return flow_table_.get(); }

  /// Telemetry views; null unless config().telemetry.enabled. The registry
  /// holds every instrument registered at construction (prefixes:
  /// "bottleneck", "bottleneck.link", "flowN", "sinkN"); the sampler snapshots
  /// them every telemetry.period of simulated time.
  MetricsRegistry* metrics() { return metrics_.get(); }
  TimeSeriesSampler* telemetry_sampler() { return telemetry_.get(); }
  const TimeSeriesSampler* telemetry_sampler() const { return telemetry_.get(); }

  /// Invariant monitor; null unless config().invariants.enabled. Violations
  /// (if any) accumulate in monitor->violations(); with abort_on_violation
  /// the failing tick throws InvariantViolationError out of run_until.
  InvariantMonitor* invariant_monitor() { return invariants_.get(); }
  const InvariantMonitor* invariant_monitor() const { return invariants_.get(); }

 private:
  void sample_losses();
  void setup_telemetry();
  void setup_invariants();

  ScenarioConfig cfg_;
  Simulation sim_;
  Topology topo_;
  RdModel rd_;
  std::unique_ptr<FlowTable> flow_table_;

  PelsQueue* pels_queue_ = nullptr;
  BestEffortQueue* best_effort_queue_ = nullptr;
  RemQueue* rem_queue_ = nullptr;
  QueueDisc* bottleneck_ = nullptr;
  Link* bottleneck_link_ = nullptr;
  Link* reverse_link_ = nullptr;

  std::vector<std::unique_ptr<PelsSource>> sources_;
  std::vector<std::unique_ptr<PelsSink>> sinks_;
  std::vector<std::unique_ptr<TcpLikeSource>> tcp_sources_;
  std::vector<std::unique_ptr<TcpSink>> tcp_sinks_;

  std::unique_ptr<PeriodicTimer> sampler_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TimeSeriesSampler> telemetry_;
  std::unique_ptr<InvariantMonitor> invariants_;
  ColorCounters last_counters_;
  TimeSeries loss_series_[kNumColors];
  TimeSeries fgs_loss_series_;
};

}  // namespace pels
