#include "pels/multihop.h"

#include <cassert>

#include "queue/drop_tail.h"

namespace pels {

ParkingLotScenario::ParkingLotScenario(ParkingLotConfig config)
    : cfg_(std::move(config)), sim_(cfg_.seed), topo_(sim_), rd_(cfg_.rd) {
  assert(cfg_.long_flows > 0);

  Router& r1 = topo_.add_router("R1");
  Router& r2 = topo_.add_router("R2");
  Router& r3 = topo_.add_router("R3");

  const QueueFactory edge_queue = [](double) {
    return std::make_unique<DropTailQueue>(2000);
  };
  auto bottleneck_factory = [this](std::int32_t router_id, PelsQueue** out) {
    return [this, router_id, out](double bw) -> std::unique_ptr<QueueDisc> {
      PelsQueueConfig qc = cfg_.queue;
      qc.router_id = router_id;
      qc.link_bandwidth_bps = bw;
      auto q = std::make_unique<PelsQueue>(sim_.scheduler(), qc);
      *out = q.get();
      return q;
    };
  };

  Link& fwd1 = topo_.add_link(r1, r2, cfg_.bottleneck1_bps, cfg_.bottleneck_delay,
                              bottleneck_factory(kRouter1, &queue1_));
  Link& rev1 =
      topo_.add_link(r2, r1, cfg_.bottleneck1_bps, cfg_.bottleneck_delay, edge_queue);
  Link& fwd2 = topo_.add_link(r2, r3, cfg_.bottleneck2_bps, cfg_.bottleneck_delay,
                              bottleneck_factory(kRouter2, &queue2_));
  Link& rev2 =
      topo_.add_link(r3, r2, cfg_.bottleneck2_bps, cfg_.bottleneck_delay, edge_queue);

  cfg_.faults_hop1.validate();
  cfg_.faults_hop2.validate();
  if (!cfg_.faults_hop1.empty() || !cfg_.faults_hop2.empty()) {
    FaultInjector injector(sim_);
    const auto hook = [](PelsQueue* q) {
      return [q](double bw) { q->set_link_bandwidth(bw); };
    };
    injector.apply(cfg_.faults_hop1, fwd1, rev1, queue1_, hook(queue1_));
    injector.apply(cfg_.faults_hop2, fwd2, rev2, queue2_, hook(queue2_));
  }

  FlowId next_flow = 0;
  auto add_flow = [&](Router& in, Router& out, std::vector<std::unique_ptr<PelsSource>>& srcs,
                      std::vector<std::unique_ptr<PelsSink>>& sinks, SimTime phase) {
    Host& src_host = topo_.add_host("s" + std::to_string(next_flow));
    Host& dst_host = topo_.add_host("d" + std::to_string(next_flow));
    topo_.connect(src_host, in, cfg_.edge_bps, cfg_.edge_delay, edge_queue);
    topo_.connect(out, dst_host, cfg_.edge_bps, cfg_.edge_delay, edge_queue);
    const FlowId flow = next_flow++;
    sinks.push_back(std::make_unique<PelsSink>(sim_, dst_host, flow, src_host.id(),
                                               cfg_.source.video, rd_,
                                               cfg_.source.ack_size_bytes));
    auto controller = std::make_unique<MkcController>(cfg_.mkc);
    srcs.push_back(std::make_unique<PelsSource>(sim_, src_host, flow, dst_host.id(),
                                                std::move(controller), cfg_.source));
    srcs.back()->start(phase);
  };

  const SimTime period = cfg_.source.video.frame_period();
  const int total =
      cfg_.long_flows + cfg_.cross_flows_hop1 + cfg_.cross_flows_hop2;
  int idx = 0;
  for (int i = 0; i < cfg_.long_flows; ++i)
    add_flow(r1, r3, long_sources_, long_sinks_, (idx++ * period) / total);
  for (int i = 0; i < cfg_.cross_flows_hop1; ++i)
    add_flow(r1, r2, x1_sources_, x1_sinks_, (idx++ * period) / total);
  for (int i = 0; i < cfg_.cross_flows_hop2; ++i)
    add_flow(r2, r3, x2_sources_, x2_sinks_, (idx++ * period) / total);

  topo_.compute_routes();
}

void ParkingLotScenario::run_until(SimTime t) { sim_.run_until(t); }

void ParkingLotScenario::finish() {
  for (auto& s : long_sinks_) s->finalize_all();
  for (auto& s : x1_sinks_) s->finalize_all();
  for (auto& s : x2_sinks_) s->finalize_all();
}

}  // namespace pels
