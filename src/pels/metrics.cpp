#include "pels/metrics.h"

#include <fstream>

namespace pels {

namespace {

void emit_series(std::ofstream& out, const TimeSeries& series, const char* metric,
                 int index) {
  for (const auto& point : series.points()) {
    out << to_seconds(point.t) << ',' << metric << ',' << index << ',' << point.value
        << '\n';
  }
}

void emit_delay_windows(std::ofstream& out, const TimeSeries& series, const char* metric,
                        int index, SimTime window) {
  if (series.empty()) return;
  const SimTime end = series[series.size() - 1].t;
  for (SimTime t0 = 0; t0 <= end; t0 += window) {
    const double mean = series.mean_in(t0, t0 + window - 1);
    if (mean > 0.0) {
      out << to_seconds(t0 + window) << ',' << metric << ',' << index << ','
          << mean * 1e3 << '\n';
    }
  }
}

}  // namespace

bool write_metrics_csv(DumbbellScenario& scenario, const std::string& path,
                       const MetricsExportOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_seconds,metric,index,value\n";

  for (int i = 0; i < scenario.pels_flow_count(); ++i) {
    emit_series(out, scenario.source(i).rate_series(), "rate_bps", i);
    emit_series(out, scenario.source(i).gamma_series(), "gamma", i);
    emit_series(out, scenario.source(i).loss_series(), "measured_fgs_loss", i);
  }
  emit_series(out, scenario.loss_series(Color::kGreen), "queue_loss_green", -1);
  emit_series(out, scenario.loss_series(Color::kYellow), "queue_loss_yellow", -1);
  emit_series(out, scenario.loss_series(Color::kRed), "queue_loss_red", -1);
  emit_series(out, scenario.fgs_loss_series(), "queue_fgs_loss", -1);

  if (options.include_delays) {
    for (int i = 0; i < scenario.pels_flow_count(); ++i) {
      emit_delay_windows(out, scenario.sink(i).delay_series(Color::kGreen),
                         "delay_green_ms", i, options.delay_window);
      emit_delay_windows(out, scenario.sink(i).delay_series(Color::kYellow),
                         "delay_yellow_ms", i, options.delay_window);
      emit_delay_windows(out, scenario.sink(i).delay_series(Color::kRed), "delay_red_ms",
                         i, options.delay_window);
    }
  }
  return static_cast<bool>(out);
}

}  // namespace pels
