#include "pels/pels_source.h"

#include <algorithm>
#include <cassert>

namespace pels {

PelsSource::PelsSource(Simulation& sim, Host& host, FlowId flow, NodeId dst,
                       std::unique_ptr<CongestionController> controller,
                       PelsSourceConfig config)
    : sim_(sim),
      host_(host),
      flow_(flow),
      dst_(dst),
      controller_(std::move(controller)),
      cfg_(std::move(config)),
      gamma_(cfg_.gamma),
      frame_timer_(sim.scheduler(), cfg_.video.frame_period(), [this] { on_frame_clock(); }),
      control_timer_(sim.scheduler(), cfg_.control_interval, [this] { on_control_clock(); }) {
  assert(controller_ != nullptr);
  host_.register_agent(flow_, this);
}

PelsSource::~PelsSource() {
  stop();
  host_.unregister_agent(flow_);
}

void PelsSource::start(SimTime at) {
  sim_.at(at, [this] {
    // Fire the first frame immediately, then every frame period.
    last_label_at_ = sim_.now();  // watchdog counts from the first send
    on_frame_clock();
    frame_timer_.start();
    control_timer_.start();
  });
}

void PelsSource::stop() {
  frame_timer_.stop();
  control_timer_.stop();
  if (pace_event_ != 0) {
    sim_.scheduler().cancel(pace_event_);
    pace_event_ = 0;
  }
  send_buffer_.clear();
}

void PelsSource::on_frame_clock() {
  if (next_frame_ >= cfg_.video.total_frames) {
    // The coded sequence loops, as the paper's long simulations require.
    next_frame_ = 0;
  }
  const std::int64_t cap =
      cfg_.frame_sizes ? cfg_.frame_sizes->fgs_frame_bytes(next_frame_) : -1;
  FramePlan plan;
  if (cfg_.rd_scaling != nullptr) {
    // Receding-horizon constant-quality scaling: allocate the window's FGS
    // budget by max-min PSNR and spend this frame's share.
    const RdAllocator allocator(*cfg_.rd_scaling);
    const int window = std::max(1, cfg_.rd_window_frames);
    const double frame_budget =
        controller_->rate_bps() / 8.0 * to_seconds(cfg_.video.frame_period());
    const auto total = static_cast<std::int64_t>(
        (frame_budget - static_cast<double>(cfg_.video.base_layer_bytes)) * window);
    const std::int64_t frame_cap = cap >= 0 ? cap : cfg_.video.max_fgs_bytes();
    const auto alloc = allocator.allocate(next_frame_, window, std::max<std::int64_t>(total, 0),
                                          frame_cap);
    plan = plan_frame_bytes(cfg_.video, next_frame_, alloc[0], gamma(),
                            cfg_.partition);
  } else {
    plan = plan_frame(cfg_.video, next_frame_, controller_->rate_bps(), gamma(),
                      cfg_.partition, cap);
  }
  ++next_frame_;
  std::vector<Packet> pkts = packetize(cfg_.video, plan);
  if (pkts.empty()) return;

  for (auto& pkt : pkts) {
    pkt.flow = flow_;
    pkt.seq = next_seq_++;
    pkt.src = host_.id();
    pkt.dst = dst_;
    pkt.uid = (static_cast<std::uint64_t>(flow_) << 40) | pkt.seq;
    send_buffer_.push_back(std::move(pkt));
  }
  if (pace_event_ == 0) pace_next();
}

void PelsSource::pace_next() {
  pace_event_ = 0;
  if (send_buffer_.empty()) return;
  Packet pkt = std::move(send_buffer_.front());
  send_buffer_.pop_front();
  // Space packets at a lightly smoothed controller rate: the raw rate
  // carries per-epoch measurement noise, and pacing that follows it beat-
  // for-beat makes the arrival process bursty at the bottleneck (extra
  // tail drops beyond the fluid overshoot). The EWMA time constant is a few
  // hundred packets — slow enough to filter epoch noise, fast enough to
  // track joins and back-offs.
  const double rate = std::max(controller_->rate_bps(), 1.0);
  double& paced = cfg_.flow_table != nullptr
                      ? cfg_.flow_table->paced_rate_ref(cfg_.flow_slot)
                      : paced_rate_;
  paced = paced <= 0.0 ? rate : 0.98 * paced + 0.02 * rate;
  const SimTime spacing = transmission_time(pkt.size_bytes, paced);
  transmit(std::move(pkt));
  pace_event_ = sim_.after(spacing, [this] { pace_next(); });
}

void PelsSource::transmit(Packet pkt) {
  pkt.created_at = sim_.now();
  if (cfg_.tcm_marking) {
    // Conformance-based recolouring (§2.1 comparator): the marker tracks a
    // CIR of ~3/4 of the current sending rate unless configured explicitly,
    // so roughly the PELS-equivalent share is green+yellow — just aimed at
    // the wrong bytes.
    const bool track_rate = cfg_.tcm.cir_bps <= 0.0;
    if (!tcm_marker_) {
      TcmConfig tc = cfg_.tcm;
      if (track_rate) tc.cir_bps = 0.75 * controller_->rate_bps();
      tcm_marker_ = std::make_unique<SrTcmMarker>(tc);
    } else if (track_rate) {
      tcm_marker_->set_cir(0.75 * controller_->rate_bps());
    }
    pkt.color = tcm_marker_->mark(pkt.size_bytes, sim_.now());
  }
  ++sent_[static_cast<std::size_t>(pkt.color)];
  if (pkt.color == Color::kYellow || pkt.color == Color::kRed) {
    sent_fgs_bytes_ += static_cast<std::uint64_t>(pkt.size_bytes);
    send_history_.emplace_back(sim_.now(), sent_fgs_bytes_);
    // Keep a few seconds of history: lookups go back at most one RTT.
    const SimTime horizon = sim_.now() - 5 * kSecond;
    while (send_history_.size() > 1 && send_history_[1].first <= horizon)
      send_history_.pop_front();
  }
  host_.send(std::move(pkt));
}

void PelsSource::on_packet(const Packet& pkt) {
  if (!pkt.ack) return;
  handle_ack(*pkt.ack);
}

void PelsSource::handle_ack(const AckInfo& ack) {
  // RTT from green/yellow ACKs only: red packets sit in the starved band for
  // hundreds of ms by design, which would poison the estimate used to align
  // loss measurements.
  if (ack.data_color == Color::kGreen || ack.data_color == Color::kYellow) {
    const SimTime sample = sim_.now() - ack.data_created_at;
    if (sample > 0) {
      srtt_ = srtt_ == 0 ? sample
                         : static_cast<SimTime>((1.0 - cfg_.srtt_gain) *
                                                    static_cast<double>(srtt_) +
                                                cfg_.srtt_gain * static_cast<double>(sample));
      controller_->set_rtt(srtt_);
    }
  }

  recv_fgs_bytes_ = std::max(recv_fgs_bytes_, ack.recv_fgs_bytes);
  recv_marked_ = std::max(recv_marked_, ack.recv_marked);
  recv_total_ =
      std::max(recv_total_, ack.recv_green + ack.recv_yellow + ack.recv_red);

  // Freshness rule (§5.2): consume a router's feedback at most once per
  // epoch; stale/reordered labels (red-queue delays) are ignored. A backward
  // epoch jump beyond kEpochRestartGap is a router restart, not staleness —
  // the filter re-anchors at the reborn router's epoch instead of staying
  // deaf until it counts past the pre-restart value.
  if (ack.echoed.valid) {
    auto& last = epoch_seen_[ack.echoed.router_id];
    if (epoch_is_fresh(last, ack.echoed.epoch)) {
      last = ack.echoed.epoch;
      controller_->on_router_feedback(ack.echoed.loss, sim_.now());
      latest_router_fgs_loss_ = ack.echoed.fgs_loss;
      last_feedback_router_ = ack.echoed.router_id;
      last_label_at_ = sim_.now();
      silent_ = false;
      ++consumed_[ack.echoed.router_id];
    }
  }
}

std::uint64_t PelsSource::feedback_consumed(std::int32_t router) const {
  auto it = consumed_.find(router);
  return it == consumed_.end() ? 0 : it->second;
}

std::int32_t PelsSource::governing_router() const {
  std::int32_t best = -1;
  std::uint64_t best_count = 0;
  for (const auto& [router, count] : consumed_) {
    if (count > best_count) {
      best = router;
      best_count = count;
    }
  }
  return best;
}

std::uint64_t PelsSource::sent_fgs_bytes_at(SimTime t) const {
  // Last history entry with timestamp <= t (entries are time-ordered).
  std::uint64_t bytes = 0;
  auto it = std::upper_bound(
      send_history_.begin(), send_history_.end(), t,
      [](SimTime value, const auto& entry) { return value < entry.first; });
  if (it != send_history_.begin()) bytes = std::prev(it)->second;
  return bytes;
}

void PelsSource::on_control_clock() {
  // Feedback-staleness watchdog: no fresh router label for feedback_timeout
  // means the loop is open (ACK blackout, dead or restarted bottleneck).
  // Signal the controller to decay and, on entry, forget the epoch filter so
  // a restarted router's labels are accepted whatever their epoch.
  if (cfg_.feedback_timeout > 0 &&
      sim_.now() - last_label_at_ >= cfg_.feedback_timeout) {
    if (!silent_) {
      silent_ = true;
      epoch_seen_.clear();
    }
    ++silent_intervals_;
    controller_->on_feedback_silence(sim_.now());
  }

  // Gamma is driven by the router-reported FGS-layer loss (§4.3: p_i(k) "is
  // coupled with congestion control and should be provided by its feedback
  // loop"). Receiver-side byte counting cannot serve here: surviving red
  // packets sit in the starved red band for seconds, so their arrivals lag
  // the sends they must be matched against and the estimate limit-cycles.
  // While feedback is silent gamma freezes: iterating eq. (4) on a stale
  // sample just walks gamma away from any real operating point.
  if (cfg_.partition && !silent_) {
    const double p = std::clamp(latest_router_fgs_loss_, 0.0, 1.0);
    if (cfg_.flow_table != nullptr) {
      cfg_.flow_table->apply_gamma(cfg_.flow_slot, p);
    } else {
      gamma_.update(p);
    }
  }

  // Receiver-measured FGS loss over the last control interval (sent counter
  // aligned one smoothed RTT back so in-flight packets are not counted as
  // lost). Feeds loss-driven controllers (TFRC) and the reporting series.
  // If srtt grew by more than a control interval since the last tick, the
  // aligned sent counter can step backwards; skip the sample rather than
  // underflow (the next tick realigns).
  const std::uint64_t sent_aligned =
      std::max(sent_fgs_bytes_at(sim_.now() - srtt_), meas_sent_anchor_);
  const std::uint64_t d_sent = sent_aligned - meas_sent_anchor_;
  const std::uint64_t d_recv = recv_fgs_bytes_ - meas_recv_anchor_;
  if (d_sent >= static_cast<std::uint64_t>(cfg_.min_measured_bytes)) {
    double p = 1.0 - static_cast<double>(d_recv) / static_cast<double>(d_sent);
    p = std::clamp(p, 0.0, 1.0);
    last_measured_loss_ = p;
    meas_sent_anchor_ = sent_aligned;
    meas_recv_anchor_ = recv_fgs_bytes_;
    controller_->on_loss_interval(p, sim_.now());
  }
  // ECN mark fraction over the interval (marking-driven controllers — REM).
  const std::uint64_t d_total = recv_total_ - total_anchor_;
  if (d_total > 0) {
    const std::uint64_t d_marked = recv_marked_ - mark_anchor_;
    controller_->on_mark_fraction(
        static_cast<double>(d_marked) / static_cast<double>(d_total), sim_.now());
    total_anchor_ = recv_total_;
    mark_anchor_ = recv_marked_;
  }

  // Clocked controllers (CUBIC, Swift, SCReAM-lite) run their periodic update
  // after the interval's event deliveries, so the tick sees this interval's
  // loss/mark reaction already applied.
  controller_->on_control_tick(sim_.now());

  rate_series_.add(sim_.now(), controller_->rate_bps());
  gamma_series_.add(sim_.now(), gamma());
  loss_series_.add(sim_.now(), last_measured_loss_);
}

void PelsSource::register_metrics(MetricsRegistry& registry, const std::string& prefix) {
  controller_->register_metrics(registry, prefix);
  if (cfg_.partition) {
    if (cfg_.flow_table != nullptr) {
      // Table-backed gamma: probe the columns, not the idle member object.
      registry.add_probe(prefix + ".gamma", [this] { return gamma(); });
      registry.add_probe(prefix + ".gamma_updates", [this] {
        return static_cast<double>(cfg_.flow_table->gamma_updates(cfg_.flow_slot));
      });
    } else {
      gamma_.register_metrics(registry, prefix);
    }
  }
  registry.add_probe(prefix + ".measured_loss", [this] { return last_measured_loss_; });
  registry.add_probe(prefix + ".router_fgs_loss", [this] { return latest_router_fgs_loss_; });
  registry.add_probe(prefix + ".feedback_silent", [this] { return silent_ ? 1.0 : 0.0; });
  registry.add_probe(prefix + ".silent_intervals",
                     [this] { return static_cast<double>(silent_intervals_); });
  registry.add_probe(prefix + ".fgs_bytes_sent",
                     [this] { return static_cast<double>(sent_fgs_bytes_); });
  registry.add_probe(prefix + ".frames_sent",
                     [this] { return static_cast<double>(next_frame_); });
  registry.add_probe(prefix + ".srtt_seconds", [this] { return to_seconds(srtt_); });
}

}  // namespace pels
