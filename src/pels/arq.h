// ARQ (retransmission-based) streaming comparator.
//
// Paper §1 argues against retransmission-based repair for video: "all video
// frames have strict decoding deadlines. During heavy congestion (especially
// along paths with large buffers), the RTT is often so high that even the
// retransmitted packets are dropped in the same congested queues. As a
// result, the receiver ... must ask for multiple retransmissions of each
// lost packet, which often causes the retransmitted packets to miss their
// decoding deadlines."
//
// These agents implement exactly that strawman so the claim can be measured:
// a fixed-rate video source with NACK-driven selective retransmission, and a
// sink that scores each frame by the consecutive prefix of packets that
// arrived *before the frame's decoding deadline*. Run them over a shared
// drop-tail bottleneck whose buffer size sets the bufferbloat level
// (bench/ablation_retransmission).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/host.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "util/stats.h"
#include "util/time.h"

namespace pels {

struct ArqConfig {
  double rate_bps = 1e6;           // fixed sending rate (no congestion control:
                                   // the experiment isolates the repair loop)
  double fps = 10.0;
  std::int32_t packet_size_bytes = 500;
  SimTime deadline = from_millis(400);  // decode deadline after frame send start
  int max_retransmissions = 5;          // per packet
  SimTime nack_delay = from_millis(20);  // gap-detection delay at the sink
  std::int32_t nack_size_bytes = 40;

  SimTime frame_period() const { return from_seconds(1.0 / fps); }
  int packets_per_frame() const {
    return static_cast<int>(rate_bps / 8.0 / fps /
                            static_cast<double>(packet_size_bytes));
  }
};

/// Fixed-rate video source with NACK-driven selective retransmission.
class ArqSource : public Agent {
 public:
  ArqSource(Simulation& sim, Host& host, FlowId flow, NodeId dst, ArqConfig config);
  ~ArqSource() override;

  void start(SimTime at);
  void stop();

  void on_packet(const Packet& pkt) override;  // NACKs arrive here

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  void on_frame_clock();
  void send_data(std::int64_t frame, std::int32_t index, SimTime frame_start);

  Simulation& sim_;
  Host& host_;
  FlowId flow_;
  NodeId dst_;
  ArqConfig cfg_;
  PeriodicTimer frame_timer_;
  std::int64_t next_frame_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  // Send time of each live frame (for deadline give-up) and per-packet
  // retransmission counts, keyed by (frame, packet index).
  std::map<std::int64_t, SimTime> frame_start_;
  std::map<std::pair<std::int64_t, std::int32_t>, int> retx_count_;
};

/// Deadline-scoring sink with gap-driven NACKs.
class ArqSink : public Agent {
 public:
  ArqSink(Simulation& sim, Host& host, FlowId flow, NodeId src_node, ArqConfig config);
  ~ArqSink() override;

  void on_packet(const Packet& pkt) override;

  /// Scores all frames whose deadline has passed (call at end of run).
  void finalize(SimTime now);

  /// Per-frame fraction of packets that arrived before the deadline, and the
  /// consecutive prefix fraction (what an FGS decoder could use).
  const std::vector<double>& on_time_fraction() const { return on_time_fraction_; }
  const std::vector<double>& prefix_fraction() const { return prefix_fraction_; }
  double mean_prefix_fraction() const;

  std::uint64_t nacks_sent() const { return nacks_; }
  std::uint64_t late_arrivals() const { return late_; }
  std::uint64_t duplicate_arrivals() const { return duplicates_; }

 private:
  struct FrameState {
    SimTime first_packet_sent = 0;  // created_at of the earliest packet seen
    std::set<std::int32_t> on_time;  // packet indices arrived before deadline
    std::set<std::int32_t> nacked;
  };

  void check_gaps(std::int64_t frame);
  void score_frame(const FrameState& st);
  void send_nack(std::int64_t frame, std::int32_t index);

  Simulation& sim_;
  Host& host_;
  FlowId flow_;
  NodeId src_node_;
  ArqConfig cfg_;
  std::map<std::int64_t, FrameState> frames_;
  std::vector<double> on_time_fraction_;
  std::vector<double> prefix_fraction_;
  std::uint64_t nacks_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace pels
