// PELS source agent: the sender half of the paper's contribution (§4, §5).
//
// Combines, per flow:
//  * a frame clock generating FGS video frames at the configured rate;
//  * a pluggable congestion controller (MKC by default) driven by
//    epoch-filtered router feedback from ACK labels (§5.2 freshness rule);
//  * the gamma controller (eq. (4)) partitioning each frame's FGS prefix into
//    yellow and red segments from receiver-measured FGS loss;
//  * packet pacing: each frame's packets are spread evenly over the frame
//    period, so the instantaneous rate matches the controller output.
//
// With `partition = false` the source becomes the paper's best-effort
// comparator: same congestion control, same video, but the whole FGS prefix
// is sent unpartitioned (yellow) and gamma stays out of the loop.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cc/controller.h"
#include "cc/flow_table.h"
#include "net/host.h"
#include "net/tcm.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "util/stats.h"
#include "video/fgs.h"
#include "video/frame_size.h"
#include "video/gamma_controller.h"
#include "video/rd_allocator.h"

namespace pels {

struct PelsSourceConfig {
  VideoConfig video;
  GammaConfig gamma;
  /// Structure-of-arrays backing for the flow's hot control scalars (gamma,
  /// pacing EWMA): when set, this source reads/writes table columns at
  /// `flow_slot` instead of its own members, so population-scale scenarios
  /// keep per-flow state contiguous (see cc/flow_table.h). The slot is
  /// borrowed — whoever allocated it owns its lifetime. The table's
  /// GammaConfig must match `gamma` (same control law for either backing).
  FlowTable* flow_table = nullptr;
  FlowSlot flow_slot = kInvalidFlowSlot;
  /// Control interval for loss measurement + gamma updates (interval k of
  /// eq. (4)); independent of the router's feedback interval T.
  SimTime control_interval = from_millis(200);
  bool partition = true;  // false = best-effort comparator colouring
  /// DiffServ-style srTCM marking (§2.1 comparator): when set, outgoing
  /// packets are re-coloured by rate conformance instead of semantics —
  /// the meter has no idea which bytes the decoder needs. CIR defaults to
  /// tracking ~3/4 of the sending rate when cir_bps <= 0.
  bool tcm_marking = false;
  TcmConfig tcm;
  /// Per-frame coded FGS size (VBR). Null = constant video.max_fgs_bytes().
  std::shared_ptr<const FrameSizeModel> frame_sizes;
  /// R-D-aware constant-quality scaling (the paper's [5] extension): when
  /// set, each frame's FGS budget comes from a receding-horizon max-min PSNR
  /// allocation over `rd_window_frames` upcoming frames instead of a flat
  /// rate/fps split. The model is borrowed and must outlive the source.
  const RdModel* rd_scaling = nullptr;
  int rd_window_frames = 8;
  double srtt_gain = 0.125;
  std::int32_t ack_size_bytes = 40;
  /// Minimum FGS bytes per measurement window for a loss sample to count.
  std::int64_t min_measured_bytes = 2000;
  /// Feedback-staleness watchdog: when no *fresh* router label arrives for
  /// this long (K·T in router epochs; ACK blackout, dead or restarted
  /// bottleneck), every control tick (a) forwards a silence signal to the
  /// controller (MKC decays its rate multiplicatively) and (b) freezes
  /// gamma — eq. (4) iterated on a stale loss sample walks gamma away from
  /// any real operating point. Entering silence also forgets the per-router
  /// epoch filter, so a restarted router's labels (epochs counting from 1
  /// again) are consumed no matter how large the backward jump. 0 disables
  /// the watchdog (the seed behaviour: rate frozen at its last value).
  SimTime feedback_timeout = from_millis(600);
};

class PelsSource : public Agent {
 public:
  PelsSource(Simulation& sim, Host& host, FlowId flow, NodeId dst,
             std::unique_ptr<CongestionController> controller, PelsSourceConfig config);
  ~PelsSource() override;

  /// Starts the frame and control clocks at sim time `at`.
  void start(SimTime at);
  void stop();

  void on_packet(const Packet& pkt) override;

  // --- observable state -------------------------------------------------
  double rate_bps() const { return controller_->rate_bps(); }
  double gamma() const {
    return cfg_.flow_table != nullptr ? cfg_.flow_table->gamma(cfg_.flow_slot)
                                      : gamma_.gamma();
  }
  double measured_loss() const { return last_measured_loss_; }
  /// Router id of the most recently consumed feedback label (-1 before any).
  /// Noisy on multi-bottleneck paths (per-epoch loss estimates jitter, so the
  /// quieter router's label occasionally wins the max-min override); prefer
  /// governing_router() for a stable identification.
  std::int32_t last_feedback_router() const { return last_feedback_router_; }

  /// Number of feedback labels consumed from `router` (fresh epochs only).
  std::uint64_t feedback_consumed(std::int32_t router) const;

  /// Router whose labels this flow consumed most often — the bottleneck that
  /// governs the flow in the max-min sense of §5.2. -1 before any feedback.
  std::int32_t governing_router() const;

  /// True while the feedback-staleness watchdog is firing (no fresh label
  /// for feedback_timeout; rate decaying, gamma frozen).
  bool feedback_silent() const { return silent_; }
  /// Control ticks spent in feedback silence so far.
  std::uint64_t silent_intervals() const { return silent_intervals_; }
  /// Time the last fresh router label was consumed (start time before any).
  SimTime last_feedback_at() const { return last_label_at_; }
  SimTime srtt() const { return srtt_; }
  FlowId flow() const { return flow_; }
  CongestionController& controller() { return *controller_; }

  std::uint64_t packets_sent(Color c) const { return sent_[static_cast<std::size_t>(c)]; }
  std::uint64_t fgs_bytes_sent() const { return sent_fgs_bytes_; }
  std::int64_t frames_sent() const { return next_frame_; }

  /// Trajectories sampled at every control interval.
  const TimeSeries& rate_series() const { return rate_series_; }
  const TimeSeries& gamma_series() const { return gamma_series_; }
  const TimeSeries& loss_series() const { return loss_series_; }

  const PelsSourceConfig& config() const { return cfg_; }

  /// Registers this flow's sender-side instruments under `prefix.` (see
  /// DESIGN.md "Telemetry"): the congestion controller's probes (rate,
  /// silence-watchdog state), the gamma controller's probes, and the source's
  /// own loss/feedback/transmission state. Probes only — the packet and
  /// control paths are untouched.
  void register_metrics(MetricsRegistry& registry, const std::string& prefix);

 private:
  void on_frame_clock();
  void on_control_clock();
  void pace_next();
  void transmit(Packet pkt);
  void handle_ack(const AckInfo& ack);
  /// Cumulative FGS bytes sent no later than `t` (from the send history).
  std::uint64_t sent_fgs_bytes_at(SimTime t) const;

  Simulation& sim_;
  Host& host_;
  FlowId flow_;
  NodeId dst_;
  std::unique_ptr<CongestionController> controller_;
  PelsSourceConfig cfg_;
  GammaController gamma_;

  PeriodicTimer frame_timer_;
  PeriodicTimer control_timer_;
  // Sender pacing: frames enqueue packets, the pacer drains them at the
  // controller rate. With constant scaling each frame exactly fills its
  // period; with R-D scaling large frames borrow time from small ones
  // instead of bursting past the rate within their own period.
  std::deque<Packet> send_buffer_;
  EventId pace_event_ = 0;
  double paced_rate_ = 0.0;  // EWMA of the controller rate used for spacing
  std::unique_ptr<SrTcmMarker> tcm_marker_;  // set iff cfg_.tcm_marking

  std::int64_t next_frame_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sent_[kNumColors] = {};
  std::uint64_t sent_fgs_bytes_ = 0;
  std::deque<std::pair<SimTime, std::uint64_t>> send_history_;  // (t, cum fgs bytes)

  std::unordered_map<std::int32_t, std::uint64_t> epoch_seen_;  // per router
  std::unordered_map<std::int32_t, std::uint64_t> consumed_;    // labels per router
  double latest_router_fgs_loss_ = 0.0;  // from the freshest consumed label
  std::int32_t last_feedback_router_ = -1;
  SimTime last_label_at_ = 0;   // watchdog anchor; reset at start()
  bool silent_ = false;
  std::uint64_t silent_intervals_ = 0;
  std::uint64_t recv_marked_ = 0;   // cumulative ECN marks from ACKs
  std::uint64_t recv_total_ = 0;    // cumulative data packets from ACKs
  std::uint64_t mark_anchor_ = 0;   // snapshots at the last control tick
  std::uint64_t total_anchor_ = 0;
  std::uint64_t recv_fgs_bytes_ = 0;  // latest cumulative from ACKs
  std::uint64_t meas_sent_anchor_ = 0;
  std::uint64_t meas_recv_anchor_ = 0;
  double last_measured_loss_ = 0.0;
  SimTime srtt_ = 0;

  TimeSeries rate_series_;
  TimeSeries gamma_series_;
  TimeSeries loss_series_;
};

}  // namespace pels
