#include "pels/arq.h"

#include <algorithm>
#include <cassert>

namespace pels {

ArqSource::ArqSource(Simulation& sim, Host& host, FlowId flow, NodeId dst, ArqConfig config)
    : sim_(sim),
      host_(host),
      flow_(flow),
      dst_(dst),
      cfg_(config),
      frame_timer_(sim.scheduler(), config.frame_period(), [this] { on_frame_clock(); }) {
  assert(cfg_.packets_per_frame() > 0);
  host_.register_agent(flow_, this);
}

ArqSource::~ArqSource() {
  stop();
  host_.unregister_agent(flow_);
}

void ArqSource::start(SimTime at) {
  sim_.at(at, [this] {
    on_frame_clock();
    frame_timer_.start();
  });
}

void ArqSource::stop() { frame_timer_.stop(); }

void ArqSource::on_frame_clock() {
  const std::int64_t frame = next_frame_++;
  const SimTime frame_start = sim_.now();
  frame_start_[frame] = frame_start;
  const int packets = cfg_.packets_per_frame();
  const SimTime spacing = cfg_.frame_period() / packets;
  for (int i = 0; i < packets; ++i) {
    sim_.after(i * spacing,
               [this, frame, i, frame_start] { send_data(frame, i, frame_start); });
  }
  // Garbage-collect frames whose repair window is long over.
  const SimTime horizon = sim_.now() - 2 * cfg_.deadline - 2 * cfg_.frame_period();
  while (!frame_start_.empty() && frame_start_.begin()->second < horizon) {
    const std::int64_t old = frame_start_.begin()->first;
    frame_start_.erase(frame_start_.begin());
    retx_count_.erase(retx_count_.lower_bound({old, 0}),
                      retx_count_.lower_bound({old + 1, 0}));
  }
}

void ArqSource::send_data(std::int64_t frame, std::int32_t index, SimTime /*frame_start*/) {
  Packet pkt;
  pkt.uid = (static_cast<std::uint64_t>(flow_) << 40) | next_seq_;
  pkt.flow = flow_;
  pkt.seq = next_seq_++;
  pkt.size_bytes = cfg_.packet_size_bytes;
  pkt.color = Color::kYellow;  // video data; the ARQ bottleneck is colour-blind
  pkt.src = host_.id();
  pkt.dst = dst_;
  pkt.created_at = sim_.now();
  pkt.frame_id = frame;
  pkt.frame_offset = index;
  ++sent_;
  host_.send(std::move(pkt));
}

void ArqSource::on_packet(const Packet& pkt) {
  if (!pkt.ack || pkt.frame_id < 0) return;  // only NACKs expected
  auto it = frame_start_.find(pkt.frame_id);
  if (it == frame_start_.end()) return;  // frame already garbage-collected
  // Repairing past the deadline is pointless; the paper's point exactly.
  if (sim_.now() > it->second + cfg_.deadline) return;
  int& count = retx_count_[{pkt.frame_id, pkt.frame_offset}];
  if (count >= cfg_.max_retransmissions) return;
  ++count;
  ++retransmissions_;
  send_data(pkt.frame_id, pkt.frame_offset, it->second);
}

ArqSink::ArqSink(Simulation& sim, Host& host, FlowId flow, NodeId src_node, ArqConfig config)
    : sim_(sim), host_(host), flow_(flow), src_node_(src_node), cfg_(config) {
  host_.register_agent(flow_, this);
}

ArqSink::~ArqSink() { host_.unregister_agent(flow_); }

void ArqSink::on_packet(const Packet& pkt) {
  if (pkt.ack || pkt.frame_id < 0) return;
  const bool is_new_frame = frames_.count(pkt.frame_id) == 0;
  FrameState& st = frames_[pkt.frame_id];
  if (is_new_frame) {
    st.first_packet_sent = pkt.created_at;
    // Schedule repair rounds until the deadline, then score the frame.
    const std::int64_t frame = pkt.frame_id;
    const SimTime deadline = st.first_packet_sent + cfg_.deadline;
    for (SimTime t = sim_.now() + cfg_.nack_delay; t < deadline; t += cfg_.nack_delay) {
      sim_.at(t, [this, frame] { check_gaps(frame); });
    }
    // With a long one-way delay the first packet can arrive after its own
    // deadline already passed; score the frame immediately in that case
    // instead of scheduling into the past.
    sim_.at(std::max(deadline + kMillisecond, sim_.now()), [this, frame] {
      auto it = frames_.find(frame);
      if (it == frames_.end()) return;
      score_frame(it->second);
      frames_.erase(it);
    });
  } else {
    st.first_packet_sent = std::min(st.first_packet_sent, pkt.created_at);
  }
  const SimTime deadline = st.first_packet_sent + cfg_.deadline;
  if (sim_.now() <= deadline) {
    if (!st.on_time.insert(pkt.frame_offset).second) ++duplicates_;
  } else {
    ++late_;
  }
}

void ArqSink::check_gaps(std::int64_t frame) {
  auto it = frames_.find(frame);
  if (it == frames_.end()) return;
  FrameState& st = frames_[frame];
  // Only NACK indices we should plausibly have seen: everything below the
  // highest on-time index, plus the whole frame once a full period elapsed.
  const SimTime elapsed = sim_.now() - st.first_packet_sent;
  const int packets = cfg_.packets_per_frame();
  int expect_up_to = st.on_time.empty() ? 0 : *st.on_time.rbegin();
  if (elapsed > cfg_.frame_period()) expect_up_to = packets - 1;
  for (std::int32_t i = 0; i <= expect_up_to; ++i) {
    if (st.on_time.count(i) != 0) continue;
    send_nack(frame, i);
  }
}

void ArqSink::send_nack(std::int64_t frame, std::int32_t index) {
  Packet nack;
  nack.uid = (0xA11ULL << 48) | (nacks_ & 0xFFFFFFFFFFFFULL);
  nack.flow = flow_;
  nack.size_bytes = cfg_.nack_size_bytes;
  nack.color = Color::kAck;
  nack.src = host_.id();
  nack.dst = src_node_;
  nack.created_at = sim_.now();
  nack.frame_id = frame;
  nack.frame_offset = index;
  nack.ack = AckInfo{};
  ++nacks_;
  host_.send(std::move(nack));
}

void ArqSink::score_frame(const FrameState& st) {
  const int packets = cfg_.packets_per_frame();
  on_time_fraction_.push_back(static_cast<double>(st.on_time.size()) /
                              static_cast<double>(packets));
  std::int32_t prefix = 0;
  while (prefix < packets && st.on_time.count(prefix) != 0) ++prefix;
  prefix_fraction_.push_back(static_cast<double>(prefix) / static_cast<double>(packets));
}

void ArqSink::finalize(SimTime /*now*/) {
  for (auto& [frame, st] : frames_) score_frame(st);
  frames_.clear();
}

double ArqSink::mean_prefix_fraction() const {
  RunningStats s;
  for (double v : prefix_fraction_) s.add(v);
  return s.mean();
}

}  // namespace pels
