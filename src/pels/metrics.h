// Metrics export: one long-format CSV per run with every trajectory the
// scenario recorded, for external plotting/analysis.
//
//   t_seconds,metric,index,value
//   1.0,rate_bps,0,1041234.5
//   1.0,gamma,0,0.148
//   1.0,queue_loss_red,-1,0.74
//   ...
//
// Per-packet delay samples are aggregated into per-window means so traces
// stay small; everything else is exported verbatim. Aggregation happens at
// write time from the series the scenario/sources/sinks already keep — no
// extra timers run during the simulation.
#pragma once

#include <string>

#include "pels/scenario.h"

namespace pels {

struct MetricsExportOptions {
  /// Window for aggregating per-packet delay samples into means.
  SimTime delay_window = kSecond;
  /// Export per-colour one-way delay series (can be large otherwise).
  bool include_delays = true;
};

/// Writes all recorded trajectories of `scenario` as long-format CSV.
/// Returns false on I/O failure. Metrics emitted:
///   rate_bps, gamma, measured_fgs_loss         (per flow; index = flow)
///   queue_loss_green/yellow/red, queue_fgs_loss (index = -1)
///   delay_green_ms/delay_yellow_ms/delay_red_ms (per flow, windowed means)
bool write_metrics_csv(DumbbellScenario& scenario, const std::string& path,
                       const MetricsExportOptions& options = {});

}  // namespace pels
