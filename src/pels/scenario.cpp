#include "pels/scenario.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "fault/chaos.h"
#include "queue/bernoulli.h"
#include "queue/drop_tail.h"

namespace pels {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("ScenarioConfig: ") + what);
}

}  // namespace

void ScenarioConfig::validate() const {
  require(pels_flows > 0, "pels_flows must be > 0");
  require(tcp_flows >= 0, "tcp_flows must be >= 0");
  require(bottleneck_bps > 0.0, "bottleneck_bps must be > 0");
  require(edge_bps > 0.0, "edge_bps must be > 0");
  require(edge_delay >= 0 && bottleneck_delay >= 0, "delays must be >= 0");
  for (const SimTime d : edge_delays)
    require(d >= 0, "edge_delays entries must be >= 0");
  require(edge_queue_limit > 0, "edge_queue_limit must be > 0");
  require(ack_loss >= 0.0 && ack_loss < 1.0, "ack_loss must be in [0, 1)");
  require(wireless_loss >= 0.0 && wireless_loss < 1.0,
          "wireless_loss must be in [0, 1)");
  require(mkc.alpha_bps > 0.0, "mkc.alpha_bps must be > 0");
  require(mkc.beta > 0.0 && mkc.beta < 2.0,
          "mkc.beta must be in (0, 2) — MKC stability region (Lemma 5)");
  require(mkc.min_rate_bps > 0.0 && mkc.min_rate_bps <= mkc.initial_rate_bps &&
              mkc.initial_rate_bps <= mkc.max_rate_bps,
          "mkc rates must satisfy 0 < min <= initial <= max");
  require(mkc.silence_decay > 0.0 && mkc.silence_decay <= 1.0,
          "mkc.silence_decay must be in (0, 1]");
  require(GammaController::is_stable_gain(source.gamma.sigma),
          "gamma.sigma must be in (0, 2) — eq. (4) stability region (Lemma 2)");
  require(source.gamma.p_thr > 0.0 && source.gamma.p_thr <= 1.0,
          "gamma.p_thr must be in (0, 1]");
  require(source.control_interval > 0, "source.control_interval must be > 0");
  require(source.feedback_timeout >= 0, "source.feedback_timeout must be >= 0");
  require(sample_interval > 0, "sample_interval must be > 0");
  telemetry.validate();
  invariants.validate();
  if (bottleneck == BottleneckKind::kPels) {
    // link_bandwidth_bps is overwritten with bottleneck_bps at construction;
    // validate the rest of the AQM config as it will actually run.
    PelsQueueConfig qc = pels_queue;
    qc.link_bandwidth_bps = bottleneck_bps;
    qc.validate();
  }
  faults.validate();
  require(faults.router_restarts.empty() || bottleneck == BottleneckKind::kPels,
          "router restarts need a PELS bottleneck (only the PELS AQM has a "
          "restartable feedback meter)");
}

std::vector<SimTime> staircase_starts(int flows, int per_step, SimTime step) {
  assert(flows > 0 && per_step > 0);
  std::vector<SimTime> starts;
  starts.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) starts.push_back((i / per_step) * step);
  return starts;
}

DumbbellScenario::DumbbellScenario(ScenarioConfig config)
    : cfg_(std::move(config)), sim_(cfg_.seed), topo_(sim_), rd_(cfg_.rd) {
  cfg_.validate();
  // Before any event is scheduled, so a heap-only baseline run really is
  // heap-only from the first timer onward.
  sim_.scheduler().set_wheel_enabled(cfg_.scheduler_wheel);

  Router& r1 = topo_.add_router("R1");
  Router& r2 = topo_.add_router("R2");

  const QueueFactory edge_queue = [this](double) {
    return std::make_unique<DropTailQueue>(cfg_.edge_queue_limit);
  };

  // Bottleneck R1 -> R2 carries the AQM under study; the reverse direction
  // (ACKs) is a plain generously-sized FIFO.
  const QueueFactory bottleneck_factory = [this](double bw) -> std::unique_ptr<QueueDisc> {
    switch (cfg_.bottleneck) {
      case BottleneckKind::kPels: {
        PelsQueueConfig qc = cfg_.pels_queue;
        qc.link_bandwidth_bps = bw;
        auto q = std::make_unique<PelsQueue>(sim_.scheduler(), qc);
        pels_queue_ = q.get();
        return q;
      }
      case BottleneckKind::kRem: {
        RemQueueConfig qc = cfg_.rem_queue;
        qc.link_bandwidth_bps = bw;
        auto q = std::make_unique<RemQueue>(sim_.scheduler(), sim_.make_rng(0x4E4), qc);
        rem_queue_ = q.get();
        return q;
      }
      case BottleneckKind::kBestEffort:
        break;
    }
    BestEffortQueueConfig qc = cfg_.best_effort_queue;
    qc.link_bandwidth_bps = bw;
    auto q = std::make_unique<BestEffortQueue>(sim_.scheduler(), sim_.make_rng(0xBE), qc);
    best_effort_queue_ = q.get();
    return q;
  };
  Link& forward =
      topo_.add_link(r1, r2, cfg_.bottleneck_bps, cfg_.bottleneck_delay, bottleneck_factory);
  // Reverse direction carries ACKs; optionally lossy for robustness tests.
  const QueueFactory reverse_queue = [this](double) -> std::unique_ptr<QueueDisc> {
    if (cfg_.ack_loss > 0.0) {
      return std::make_unique<BernoulliDropQueue>(sim_.make_rng(0xACC), cfg_.ack_loss,
                                                  cfg_.edge_queue_limit);
    }
    return std::make_unique<DropTailQueue>(cfg_.edge_queue_limit);
  };
  Link& reverse =
      topo_.add_link(r2, r1, cfg_.bottleneck_bps, cfg_.bottleneck_delay, reverse_queue);
  bottleneck_ = &forward.queue();
  bottleneck_link_ = &forward;
  reverse_link_ = &reverse;
  if (cfg_.wireless_loss > 0.0) {
    forward.set_corruption(cfg_.wireless_loss, sim_.make_rng(0xA17));
  }

  // Schedule the fault plan. Brown-outs resize the PELS queue's capacity
  // share along with the wire (a real router sees its interface renegotiate);
  // the comparator queues keep their construction-time capacity, matching
  // set_bottleneck_bandwidth.
  if (!cfg_.faults.empty()) {
    FaultInjector injector(sim_);
    FaultInjector::BandwidthHook hook;
    if (PelsQueue* q = pels_queue_) {
      hook = [q](double bw) { q->set_link_bandwidth(bw); };
    }
    injector.apply(cfg_.faults, forward, reverse, pels_queue_, std::move(hook));
  }

  // The comparator source sends the whole FGS prefix unpartitioned.
  PelsSourceConfig src_cfg = cfg_.source;
  src_cfg.partition = cfg_.bottleneck == BottleneckKind::kPels;
  if (cfg_.rd_aware_scaling) src_cfg.rd_scaling = &rd_;

  // Default MKC flows share a structure-of-arrays FlowTable: controller and
  // gamma/pacing scalars live in contiguous columns (storage-only — the
  // table applies the same kernels, so dynamics are bit-for-bit identical).
  // Custom (make_controller) and REM flows keep per-object state.
  const bool table_backed = cfg_.use_flow_table && !cfg_.make_controller &&
                            cfg_.bottleneck != BottleneckKind::kRem;
  if (table_backed) {
    flow_table_ = std::make_unique<FlowTable>(cfg_.mkc, src_cfg.gamma);
    flow_table_->reserve(static_cast<std::size_t>(cfg_.pels_flows));
  }

  // Per-flow base-RTT diversity: flow k (PELS flows first, then TCP) takes
  // edge_delays[k % size] on both of its private edges.
  const auto edge_delay_for = [this](int flow_index) {
    if (cfg_.edge_delays.empty()) return cfg_.edge_delay;
    return cfg_.edge_delays[static_cast<std::size_t>(flow_index) %
                            cfg_.edge_delays.size()];
  };

  for (int i = 0; i < cfg_.pels_flows; ++i) {
    Host& src_host = topo_.add_host("src" + std::to_string(i));
    Host& dst_host = topo_.add_host("dst" + std::to_string(i));
    const SimTime edge_delay = edge_delay_for(i);
    topo_.connect(src_host, r1, cfg_.edge_bps, edge_delay, edge_queue);
    topo_.connect(r2, dst_host, cfg_.edge_bps, edge_delay, edge_queue);

    std::unique_ptr<CongestionController> controller;
    if (cfg_.make_controller) {
      controller = cfg_.make_controller(i);
    } else if (cfg_.bottleneck == BottleneckKind::kRem) {
      // The REM bottleneck signals through marks, not feedback labels.
      controller = std::make_unique<RemController>(cfg_.rem);
    } else if (table_backed) {
      const FlowSlot slot = flow_table_->add_flow();
      src_cfg.flow_table = flow_table_.get();
      src_cfg.flow_slot = slot;
      controller = std::make_unique<MkcController>(*flow_table_, slot);
    } else {
      controller = std::make_unique<MkcController>(cfg_.mkc);
    }
    const auto flow = static_cast<FlowId>(i);
    sinks_.push_back(std::make_unique<PelsSink>(sim_, dst_host, flow, src_host.id(),
                                                src_cfg.video, rd_,
                                                src_cfg.ack_size_bytes));
    sources_.push_back(std::make_unique<PelsSource>(sim_, src_host, flow, dst_host.id(),
                                                    std::move(controller), src_cfg));
  }

  for (int i = 0; i < cfg_.tcp_flows; ++i) {
    Host& src_host = topo_.add_host("tcp" + std::to_string(i));
    Host& dst_host = topo_.add_host("tsink" + std::to_string(i));
    const SimTime edge_delay = edge_delay_for(cfg_.pels_flows + i);
    topo_.connect(src_host, r1, cfg_.edge_bps, edge_delay, edge_queue);
    topo_.connect(r2, dst_host, cfg_.edge_bps, edge_delay, edge_queue);
    const auto flow = static_cast<FlowId>(1000 + i);
    tcp_sinks_.push_back(std::make_unique<TcpSink>(dst_host, flow, src_host.id()));
    tcp_sources_.push_back(std::make_unique<TcpLikeSource>(sim_, src_host, flow, dst_host.id()));
  }

  topo_.compute_routes();
  topo_.reserve_runtime(static_cast<std::size_t>(cfg_.pels_flows + cfg_.tcp_flows));

  for (int i = 0; i < cfg_.pels_flows; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const SimTime at = idx < cfg_.start_times.size() ? cfg_.start_times[idx] : 0;
    // Offset each flow's frame clock by a sub-frame phase. Real flows are
    // never frame-synchronized; without this, every flow's red packets (the
    // frame suffix) land at the bottleneck in the same burst each period,
    // alternately overflowing and starving the shallow red band.
    const SimTime phase =
        (static_cast<SimTime>(i) * src_cfg.video.frame_period()) /
        std::max(1, cfg_.pels_flows);
    sources_[idx]->start(at + phase);
  }
  for (auto& tcp : tcp_sources_) tcp->start(0);

  sampler_ = std::make_unique<PeriodicTimer>(sim_.scheduler(), cfg_.sample_interval,
                                             [this] { sample_losses(); });
  sampler_->start();

  // Invariants before telemetry: the monitor's probes ("invariants.*") must
  // exist by the time the sampler freezes the registry.
  if (cfg_.invariants.enabled) setup_invariants();
  if (cfg_.telemetry.enabled) setup_telemetry();
}

void DumbbellScenario::setup_invariants() {
  invariants_ = std::make_unique<InvariantMonitor>(sim_.scheduler(), cfg_.invariants);

  // Violations are only actionable if they say *where in the fault schedule*
  // the run was when the property broke.
  invariants_->set_context(
      [this] { return describe_fault_position(cfg_.faults, sim_.now()); });

  // Packet conservation, per link: everything that ever arrived at the queue
  // is accounted for as dropped, still queued, on the wire, delivered, or
  // corrupted. Exact at every quiescent instant (see net/link.cpp — carrier
  // losses stay in the in-flight ring until resolved as corrupted).
  invariants_->add_check("net.packet_conservation", [this](std::string& detail) {
    for (std::size_t i = 0; i < topo_.link_count(); ++i) {
      const Link& link = topo_.link(i);
      const QueueDisc& q = link.queue();
      const std::uint64_t arrivals = q.counters().total_arrivals();
      const std::uint64_t accounted =
          q.counters().total_drops() + q.packet_count() + link.packets_in_flight() +
          link.packets_delivered() + link.packets_corrupted();
      if (arrivals != accounted) {
        std::ostringstream os;
        os << "link " << i << ": arrivals " << arrivals << " != drops "
           << q.counters().total_drops() << " + queued " << q.packet_count()
           << " + in_flight " << link.packets_in_flight() << " + delivered "
           << link.packets_delivered() << " + corrupted " << link.packets_corrupted()
           << " (= " << accounted << ")";
        detail = os.str();
        return false;
      }
    }
    return true;
  });

  // Per-band occupancy bounds at the PELS bottleneck. With merge_fgs_bands
  // the yellow band absorbs the red budget and the red band stays empty;
  // red_limit still bounds band 2 in both modes.
  if (pels_queue_ != nullptr) {
    invariants_->add_check("bottleneck.band_bounds", [this](std::string& detail) {
      const PelsQueueConfig& qc = pels_queue_->config();
      const std::size_t yellow_cap =
          qc.merge_fgs_bands ? qc.yellow_limit + qc.red_limit : qc.yellow_limit;
      const std::size_t bands[3] = {pels_queue_->band_packet_count(0),
                                    pels_queue_->band_packet_count(1),
                                    pels_queue_->band_packet_count(2)};
      const std::size_t caps[3] = {qc.green_limit, yellow_cap, qc.red_limit};
      for (std::size_t b = 0; b < 3; ++b) {
        if (bands[b] > caps[b]) {
          std::ostringstream os;
          os << "band " << b << " holds " << bands[b] << " packets, limit " << caps[b];
          detail = os.str();
          return false;
        }
      }
      const std::size_t total = pels_queue_->packet_count();
      const std::size_t cap =
          qc.green_limit + qc.yellow_limit + qc.red_limit + qc.internet_limit;
      if (total > cap) {
        std::ostringstream os;
        os << "total occupancy " << total << " packets exceeds configured capacity "
           << cap;
        detail = os.str();
        return false;
      }
      return true;
    });
  }

  // Controller state inside its mathematical domain: γ is a fraction of the
  // FGS layer (eq. (4) keeps it in [0, 1]); MKC rates are non-negative and
  // finite by Lemma 5's stability region.
  invariants_->add_check("cc.gamma_bounds", [this](std::string& detail) {
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      const double g = sources_[i]->gamma();
      const double r = sources_[i]->rate_bps();
      if (!(g >= 0.0 && g <= 1.0)) {
        std::ostringstream os;
        os << "flow " << i << ": gamma " << g << " outside [0, 1]";
        detail = os.str();
        return false;
      }
      if (!(std::isfinite(r) && r >= 0.0)) {
        std::ostringstream os;
        os << "flow " << i << ": rate " << r << " bps not finite and non-negative";
        detail = os.str();
        return false;
      }
    }
    return true;
  });

  // Liveness: the bottleneck must keep seeing arrivals. Opt-in because it is
  // scenario-specific — late start_times or an all-blackout plan legitimately
  // idle the bottleneck for many ticks.
  if (cfg_.invariants.progress_stall_ticks > 0) {
    invariants_->add_progress_check(
        "bottleneck.arrival_progress",
        [this] { return static_cast<double>(bottleneck_->counters().total_arrivals()); },
        cfg_.invariants.progress_stall_ticks);
  }

  invariants_->start();
}

void DumbbellScenario::setup_telemetry() {
  metrics_ = std::make_unique<MetricsRegistry>();
  if (pels_queue_ != nullptr) pels_queue_->register_metrics(*metrics_, "bottleneck");
  bottleneck_link_->register_metrics(*metrics_, "bottleneck.link");
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->register_metrics(*metrics_, "flow" + std::to_string(i));
  }
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    sinks_[i]->register_metrics(*metrics_, "sink" + std::to_string(i));
  }
  if (invariants_ != nullptr) {
    // Registered before the sampler exists — reserve_runtime freezes the
    // probe set. Sampled series make violation counts greppable in exports.
    InvariantMonitor* mon = invariants_.get();
    metrics_->add_probe("invariants.violations",
                        [mon] { return static_cast<double>(mon->violation_count()); });
    metrics_->add_probe("invariants.ticks",
                        [mon] { return static_cast<double>(mon->ticks()); });
  }
  // Created (and started) after every agent above: sampler ticks that share a
  // timestamp with control ticks then execute after them (scheduler insertion
  // order), so each snapshot observes post-update state — the determinism
  // contract in DESIGN.md "Telemetry".
  telemetry_ = std::make_unique<TimeSeriesSampler>(sim_.scheduler(), *metrics_,
                                                   cfg_.telemetry.period);
  telemetry_->reserve_runtime(cfg_.telemetry.max_samples);
  telemetry_->start();

  if (invariants_ != nullptr) {
    // Telemetry timestamps must be monotone (ISSUE: sampler rides the same
    // scheduler; a regression in tie-breaking would show up here first).
    TimeSeriesSampler* sampler = telemetry_.get();
    invariants_->add_monotone_check("telemetry.sample_times", [sampler] {
      const std::size_t n = sampler->sample_count();
      return n == 0 ? -1.0 : static_cast<double>(sampler->time_at(n - 1));
    });
  }
}

QueueDisc& DumbbellScenario::bottleneck_queue() { return *bottleneck_; }

double DumbbellScenario::video_capacity_bps() const {
  if (pels_queue_ != nullptr) return pels_queue_->pels_capacity_bps();
  if (rem_queue_ != nullptr) return rem_queue_->video_capacity_bps();
  return best_effort_queue_->video_capacity_bps();
}

void DumbbellScenario::set_bottleneck_bandwidth(double bandwidth_bps) {
  bottleneck_link_->set_bandwidth_bps(bandwidth_bps);
  if (pels_queue_ != nullptr) pels_queue_->set_link_bandwidth(bandwidth_bps);
  // The best-effort comparator keeps its construction-time capacity: it
  // exists only for fixed-loss PSNR comparisons.
}

void DumbbellScenario::run_until(SimTime t) { sim_.run_until(t); }

void DumbbellScenario::finish() {
  for (auto& sink : sinks_) sink->finalize_all();
}

void DumbbellScenario::sample_losses() {
  const ColorCounters& now = bottleneck_->counters();
  std::uint64_t fgs_arr = 0;
  std::uint64_t fgs_drop = 0;
  for (std::size_t c = 0; c < kNumColors; ++c) {
    const std::uint64_t arr = now.arrivals[c] - last_counters_.arrivals[c];
    const std::uint64_t drop = now.drops[c] - last_counters_.drops[c];
    const double rate =
        arr == 0 ? 0.0 : static_cast<double>(drop) / static_cast<double>(arr);
    loss_series_[c].add(sim_.now(), rate);
    const auto color = static_cast<Color>(c);
    if (color == Color::kYellow || color == Color::kRed) {
      fgs_arr += arr;
      fgs_drop += drop;
    }
  }
  fgs_loss_series_.add(sim_.now(), fgs_arr == 0 ? 0.0
                                                : static_cast<double>(fgs_drop) /
                                                      static_cast<double>(fgs_arr));
  last_counters_ = now;
}

}  // namespace pels
