#include "pels/scenario.h"

#include <cassert>

#include "queue/bernoulli.h"
#include "queue/drop_tail.h"

namespace pels {

std::vector<SimTime> staircase_starts(int flows, int per_step, SimTime step) {
  assert(flows > 0 && per_step > 0);
  std::vector<SimTime> starts;
  starts.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) starts.push_back((i / per_step) * step);
  return starts;
}

DumbbellScenario::DumbbellScenario(ScenarioConfig config)
    : cfg_(std::move(config)), sim_(cfg_.seed), topo_(sim_), rd_(cfg_.rd) {
  assert(cfg_.pels_flows > 0);
  assert(cfg_.tcp_flows >= 0);

  Router& r1 = topo_.add_router("R1");
  Router& r2 = topo_.add_router("R2");

  const QueueFactory edge_queue = [this](double) {
    return std::make_unique<DropTailQueue>(cfg_.edge_queue_limit);
  };

  // Bottleneck R1 -> R2 carries the AQM under study; the reverse direction
  // (ACKs) is a plain generously-sized FIFO.
  const QueueFactory bottleneck_factory = [this](double bw) -> std::unique_ptr<QueueDisc> {
    switch (cfg_.bottleneck) {
      case BottleneckKind::kPels: {
        PelsQueueConfig qc = cfg_.pels_queue;
        qc.link_bandwidth_bps = bw;
        auto q = std::make_unique<PelsQueue>(sim_.scheduler(), qc);
        pels_queue_ = q.get();
        return q;
      }
      case BottleneckKind::kRem: {
        RemQueueConfig qc = cfg_.rem_queue;
        qc.link_bandwidth_bps = bw;
        auto q = std::make_unique<RemQueue>(sim_.scheduler(), sim_.make_rng(0x4E4), qc);
        rem_queue_ = q.get();
        return q;
      }
      case BottleneckKind::kBestEffort:
        break;
    }
    BestEffortQueueConfig qc = cfg_.best_effort_queue;
    qc.link_bandwidth_bps = bw;
    auto q = std::make_unique<BestEffortQueue>(sim_.scheduler(), sim_.make_rng(0xBE), qc);
    best_effort_queue_ = q.get();
    return q;
  };
  Link& forward =
      topo_.add_link(r1, r2, cfg_.bottleneck_bps, cfg_.bottleneck_delay, bottleneck_factory);
  // Reverse direction carries ACKs; optionally lossy for robustness tests.
  const QueueFactory reverse_queue = [this](double) -> std::unique_ptr<QueueDisc> {
    if (cfg_.ack_loss > 0.0) {
      return std::make_unique<BernoulliDropQueue>(sim_.make_rng(0xACC), cfg_.ack_loss,
                                                  cfg_.edge_queue_limit);
    }
    return std::make_unique<DropTailQueue>(cfg_.edge_queue_limit);
  };
  topo_.add_link(r2, r1, cfg_.bottleneck_bps, cfg_.bottleneck_delay, reverse_queue);
  bottleneck_ = &forward.queue();
  bottleneck_link_ = &forward;
  if (cfg_.wireless_loss > 0.0) {
    forward.set_corruption(cfg_.wireless_loss, sim_.make_rng(0xA17));
  }

  // The comparator source sends the whole FGS prefix unpartitioned.
  PelsSourceConfig src_cfg = cfg_.source;
  src_cfg.partition = cfg_.bottleneck == BottleneckKind::kPels;
  if (cfg_.rd_aware_scaling) src_cfg.rd_scaling = &rd_;

  for (int i = 0; i < cfg_.pels_flows; ++i) {
    Host& src_host = topo_.add_host("src" + std::to_string(i));
    Host& dst_host = topo_.add_host("dst" + std::to_string(i));
    topo_.connect(src_host, r1, cfg_.edge_bps, cfg_.edge_delay, edge_queue);
    topo_.connect(r2, dst_host, cfg_.edge_bps, cfg_.edge_delay, edge_queue);

    std::unique_ptr<CongestionController> controller;
    if (cfg_.make_controller) {
      controller = cfg_.make_controller(i);
    } else if (cfg_.bottleneck == BottleneckKind::kRem) {
      // The REM bottleneck signals through marks, not feedback labels.
      controller = std::make_unique<RemController>(cfg_.rem);
    } else {
      controller = std::make_unique<MkcController>(cfg_.mkc);
    }
    const auto flow = static_cast<FlowId>(i);
    sinks_.push_back(std::make_unique<PelsSink>(sim_, dst_host, flow, src_host.id(),
                                                src_cfg.video, rd_,
                                                src_cfg.ack_size_bytes));
    sources_.push_back(std::make_unique<PelsSource>(sim_, src_host, flow, dst_host.id(),
                                                    std::move(controller), src_cfg));
  }

  for (int i = 0; i < cfg_.tcp_flows; ++i) {
    Host& src_host = topo_.add_host("tcp" + std::to_string(i));
    Host& dst_host = topo_.add_host("tsink" + std::to_string(i));
    topo_.connect(src_host, r1, cfg_.edge_bps, cfg_.edge_delay, edge_queue);
    topo_.connect(r2, dst_host, cfg_.edge_bps, cfg_.edge_delay, edge_queue);
    const auto flow = static_cast<FlowId>(1000 + i);
    tcp_sinks_.push_back(std::make_unique<TcpSink>(dst_host, flow, src_host.id()));
    tcp_sources_.push_back(std::make_unique<TcpLikeSource>(sim_, src_host, flow, dst_host.id()));
  }

  topo_.compute_routes();

  for (int i = 0; i < cfg_.pels_flows; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const SimTime at = idx < cfg_.start_times.size() ? cfg_.start_times[idx] : 0;
    // Offset each flow's frame clock by a sub-frame phase. Real flows are
    // never frame-synchronized; without this, every flow's red packets (the
    // frame suffix) land at the bottleneck in the same burst each period,
    // alternately overflowing and starving the shallow red band.
    const SimTime phase =
        (static_cast<SimTime>(i) * src_cfg.video.frame_period()) /
        std::max(1, cfg_.pels_flows);
    sources_[idx]->start(at + phase);
  }
  for (auto& tcp : tcp_sources_) tcp->start(0);

  sampler_ = std::make_unique<PeriodicTimer>(sim_.scheduler(), cfg_.sample_interval,
                                             [this] { sample_losses(); });
  sampler_->start();
}

QueueDisc& DumbbellScenario::bottleneck_queue() { return *bottleneck_; }

double DumbbellScenario::video_capacity_bps() const {
  if (pels_queue_ != nullptr) return pels_queue_->pels_capacity_bps();
  if (rem_queue_ != nullptr) return rem_queue_->video_capacity_bps();
  return best_effort_queue_->video_capacity_bps();
}

void DumbbellScenario::set_bottleneck_bandwidth(double bandwidth_bps) {
  bottleneck_link_->set_bandwidth_bps(bandwidth_bps);
  if (pels_queue_ != nullptr) pels_queue_->set_link_bandwidth(bandwidth_bps);
  // The best-effort comparator keeps its construction-time capacity: it
  // exists only for fixed-loss PSNR comparisons.
}

void DumbbellScenario::run_until(SimTime t) { sim_.run_until(t); }

void DumbbellScenario::finish() {
  for (auto& sink : sinks_) sink->finalize_all();
}

void DumbbellScenario::sample_losses() {
  const ColorCounters& now = bottleneck_->counters();
  std::uint64_t fgs_arr = 0;
  std::uint64_t fgs_drop = 0;
  for (std::size_t c = 0; c < kNumColors; ++c) {
    const std::uint64_t arr = now.arrivals[c] - last_counters_.arrivals[c];
    const std::uint64_t drop = now.drops[c] - last_counters_.drops[c];
    const double rate =
        arr == 0 ? 0.0 : static_cast<double>(drop) / static_cast<double>(arr);
    loss_series_[c].add(sim_.now(), rate);
    const auto color = static_cast<Color>(c);
    if (color == Color::kYellow || color == Color::kRed) {
      fgs_arr += arr;
      fgs_drop += drop;
    }
  }
  fgs_loss_series_.add(sim_.now(), fgs_arr == 0 ? 0.0
                                                : static_cast<double>(fgs_drop) /
                                                      static_cast<double>(fgs_arr));
  last_counters_ = now;
}

}  // namespace pels
