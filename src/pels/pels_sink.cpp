#include "pels/pels_sink.h"

#include <algorithm>
#include <cassert>

namespace pels {

namespace {
// Frames older than this many frame periods behind the newest are decoded
// and closed. Must exceed the worst red-band queueing delay (seconds, by
// design — red packets wait behind the starved band), or late red chunks
// would re-open already-scored frames. Doubles as the playback deadline:
// packets later than this are treated as lost, as a real decoder would.
constexpr std::int64_t kFinalizeLagFrames = 40;
}  // namespace

PelsSink::PelsSink(Simulation& sim, Host& host, FlowId flow, NodeId src_node,
                   VideoConfig video, const RdModel& rd, std::int32_t ack_size_bytes)
    : sim_(sim),
      host_(host),
      flow_(flow),
      src_node_(src_node),
      video_(video),
      decoder_(rd),
      ack_size_bytes_(ack_size_bytes) {
  host_.register_agent(flow_, this);
}

PelsSink::~PelsSink() { host_.unregister_agent(flow_); }

void PelsSink::on_packet(const Packet& pkt) {
  if (pkt.ack) return;  // sinks only expect data

  // The sequence loops at the source; map the raw frame id to the
  // unwrapped frame nearest the newest one seen, so frame 0 of the second
  // pass does not merge into frame 0 of the first.
  std::int64_t unwrapped = -1;
  if (pkt.frame_id >= 0) {
    unwrapped = pkt.frame_id;
    if (max_frame_seen_ >= 0) {
      const std::int64_t k = (max_frame_seen_ - pkt.frame_id +
                              video_.total_frames / 2) /
                             video_.total_frames;
      unwrapped += std::max<std::int64_t>(0, k) * video_.total_frames;
    }
    // Duplicate delivery (fault injection, misbehaving links): a uid the
    // open frame has already absorbed is acked — the cumulative ACK counters
    // are idempotent for the sender — but contributes nothing to counters,
    // delay samples, or the reception record.
    if (unwrapped > last_finalized_) {
      auto dup = open_frames_.find(unwrapped);
      if (dup != open_frames_.end() && dup->second.uids.count(pkt.uid) > 0) {
        ++duplicates_ignored_;
        send_ack(pkt);
        return;
      }
    }
  }

  const auto c = static_cast<std::size_t>(pkt.color);
  ++recv_[c];
  data_bytes_ += static_cast<std::uint64_t>(pkt.size_bytes);
  if (pkt.ecn_marked) ++recv_marked_;
  const double delay_s = to_seconds(sim_.now() - pkt.created_at);
  delays_[c].add(delay_s);
  delay_series_[c].add(sim_.now(), delay_s);

  if (pkt.frame_id >= 0) {
    if (unwrapped > last_finalized_) {  // else: past its deadline — lost
      if (pkt.color == Color::kYellow || pkt.color == Color::kRed) {
        recv_fgs_bytes_ += static_cast<std::uint64_t>(pkt.size_bytes);
      }
      OpenFrame& frame = open_frames_[unwrapped];
      frame.uids.insert(pkt.uid);
      FrameReception& rx = frame.rx;
      if (rx.frame_id < 0) {
        rx.frame_id = pkt.frame_id;
        rx.base_bytes_expected = video_.base_layer_bytes;
      }
      // Classify by frame position, not colour: markers (TCM) may recolour
      // packets, but a negative frame offset always means base-layer data.
      if (pkt.frame_offset < 0) {
        rx.base_bytes_received += pkt.size_bytes;
        rx.completed_at = std::max(rx.completed_at, sim_.now());
      } else {
        rx.fgs_chunks.emplace_back(pkt.frame_offset, pkt.size_bytes);
        if (pkt.color != Color::kRed)
          rx.completed_at = std::max(rx.completed_at, sim_.now());
      }
      max_frame_seen_ = std::max(max_frame_seen_, unwrapped);
      // Finalize frames that have passed their deadline.
      while (!open_frames_.empty() &&
             open_frames_.begin()->first <= max_frame_seen_ - kFinalizeLagFrames) {
        auto node = open_frames_.extract(open_frames_.begin());
        finalize_frame(node.key(), std::move(node.mapped().rx));
      }
    }
  }
  send_ack(pkt);
}

void PelsSink::finalize_frame(std::int64_t unwrapped_id, FrameReception rx) {
  last_finalized_ = std::max(last_finalized_, unwrapped_id);
  qualities_.push_back(decoder_.decode(rx));
  const FrameQuality& q = qualities_.back();
  useful_fgs_bytes_total_ += static_cast<std::uint64_t>(q.useful_fgs_bytes);
  if (q.base_ok) ++base_ok_frames_;
  psnr_sum_db_ += q.psnr_db;
}

void PelsSink::register_metrics(MetricsRegistry& registry, const std::string& prefix) {
  struct BandProbe {
    Color color;
    const char* pkts;
  };
  static constexpr BandProbe kBands[] = {
      {Color::kGreen, ".green_pkts"},
      {Color::kYellow, ".yellow_pkts"},
      {Color::kRed, ".red_pkts"},
  };
  for (const BandProbe& b : kBands) {
    registry.add_probe(prefix + b.pkts, [this, c = b.color] {
      return static_cast<double>(packets_received(c));
    });
  }
  registry.add_probe(prefix + ".fgs_bytes",
                     [this] { return static_cast<double>(recv_fgs_bytes_); });
  registry.add_probe(prefix + ".useful_fgs_bytes",
                     [this] { return static_cast<double>(useful_fgs_bytes_total_); });
  registry.add_probe(prefix + ".frames_finalized",
                     [this] { return static_cast<double>(qualities_.size()); });
  registry.add_probe(prefix + ".base_ok_frames",
                     [this] { return static_cast<double>(base_ok_frames_); });
  registry.add_probe(prefix + ".mean_psnr_db", [this] {
    return qualities_.empty() ? 0.0 : psnr_sum_db_ / static_cast<double>(qualities_.size());
  });
  registry.add_probe(prefix + ".duplicates",
                     [this] { return static_cast<double>(duplicates_ignored_); });
}

void PelsSink::finalize_all() {
  for (auto& [id, frame] : open_frames_) finalize_frame(id, std::move(frame.rx));
  open_frames_.clear();
}

void PelsSink::send_ack(const Packet& data) {
  Packet ack;
  ack.uid = data.uid | (1ULL << 63);
  ack.flow = flow_;
  ack.seq = data.seq;
  ack.size_bytes = ack_size_bytes_;
  ack.color = Color::kAck;
  ack.src = host_.id();
  ack.dst = src_node_;
  ack.created_at = sim_.now();
  AckInfo info;
  info.echoed = data.feedback;
  info.acked_seq = data.seq;
  info.data_color = data.color;
  info.data_created_at = data.created_at;
  info.recv_green = recv_[static_cast<std::size_t>(Color::kGreen)];
  info.recv_yellow = recv_[static_cast<std::size_t>(Color::kYellow)];
  info.recv_red = recv_[static_cast<std::size_t>(Color::kRed)];
  info.recv_fgs_bytes = recv_fgs_bytes_;
  info.recv_marked = recv_marked_;
  ack.ack = std::move(info);
  host_.send(std::move(ack));
}

std::vector<FrameQuality> PelsSink::quality_for_frames(std::int64_t first,
                                                       std::int64_t last) const {
  // Valid for runs no longer than one pass of the coded sequence (frame ids
  // unique); with looping sources the latest occurrence of an id wins.
  std::map<std::int64_t, const FrameQuality*> by_id;
  for (const auto& q : qualities_) by_id[q.frame_id] = &q;
  std::vector<FrameQuality> out;
  out.reserve(static_cast<std::size_t>(std::max<std::int64_t>(0, last - first)));
  for (std::int64_t f = first; f < last; ++f) {
    const std::int64_t want = f % video_.total_frames;
    if (auto it = by_id.find(want); it != by_id.end()) {
      out.push_back(*it->second);
    } else {
      // Nothing of this frame arrived: concealment-quality placeholder.
      FrameQuality q;
      q.frame_id = want;
      q.base_ok = false;
      q.psnr_db = decoder_.decode(FrameReception{want, 1, 0, {}}).psnr_db;
      out.push_back(q);
    }
  }
  return out;
}

std::vector<FrameArrival> PelsSink::frame_arrivals() const {
  std::vector<FrameArrival> out;
  out.reserve(qualities_.size());
  std::int64_t seq = 0;
  for (const auto& q : qualities_) {
    // Use the decode order as the playback frame index: frame ids wrap when
    // the source loops, but playback is strictly sequential.
    out.push_back(FrameArrival{seq++, q.completed_at, q.base_ok});
  }
  return out;
}

double PelsSink::mean_utility() const {
  RunningStats s;
  for (const auto& q : qualities_)
    if (q.received_fgs_bytes > 0) s.add(q.utility);
  return s.mean();
}

}  // namespace pels
