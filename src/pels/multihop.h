// Parking-lot scenario: two PELS bottlenecks in series.
//
//   long flows:   L  -> R1 ==B1==> R2 ==B2==> R3 -> sink
//   cross hop 1:  X1 -> R1 ==B1==> R2 -> sink
//   cross hop 2:  X2 -> R2 ==B2==> R3 -> sink
//
// Both bottlenecks run the PELS queue with distinct router ids. This is the
// multi-router case of paper §5.2: "When there are multiple routers along an
// end-to-end path, each router compares its p_l with that inside arriving
// packets and overrides the existing value only if its packet loss is larger
// than the current loss recorded in the header. End flows use the router ID
// field to keep track of feedback freshness and react to possible shifts of
// the bottlenecks." The long flows must therefore take the rate of the
// *most congested* hop (max-min allocation) and re-bind when the bottleneck
// moves.
#pragma once

#include <memory>
#include <vector>

#include "cc/mkc.h"
#include "fault/fault_plan.h"
#include "net/topology.h"
#include "queue/pels_queue.h"
#include "pels/pels_sink.h"
#include "pels/pels_source.h"
#include "video/rd_model.h"

namespace pels {

struct ParkingLotConfig {
  int long_flows = 1;
  int cross_flows_hop1 = 1;
  int cross_flows_hop2 = 3;
  double bottleneck1_bps = 4e6;  // link rate; PELS share = pels_weight fraction
  double bottleneck2_bps = 4e6;
  double edge_bps = 20e6;
  SimTime edge_delay = from_millis(2);
  SimTime bottleneck_delay = from_millis(10);
  PelsQueueConfig queue;  // router_id/link bandwidth overwritten per hop
  MkcConfig mkc;
  PelsSourceConfig source;
  RdModelConfig rd;
  /// Per-hop fault schedules: each plan's flaps/brown-outs/burst corruption
  /// hit that hop's forward wire, blackouts its reverse wire, restarts its
  /// PELS queue. Used for bottleneck-shift-under-failure experiments (a
  /// restart or brown-out on one hop must move the max-min binding).
  FaultPlan faults_hop1;
  FaultPlan faults_hop2;
  std::uint64_t seed = 1;
};

class ParkingLotScenario {
 public:
  explicit ParkingLotScenario(ParkingLotConfig config);

  void run_until(SimTime t);
  void finish();

  Simulation& sim() { return sim_; }
  PelsSource& long_flow(int i) { return *long_sources_.at(static_cast<std::size_t>(i)); }
  PelsSink& long_sink(int i) { return *long_sinks_.at(static_cast<std::size_t>(i)); }
  PelsSource& cross_flow_hop1(int i) { return *x1_sources_.at(static_cast<std::size_t>(i)); }
  PelsSource& cross_flow_hop2(int i) { return *x2_sources_.at(static_cast<std::size_t>(i)); }

  PelsQueue& bottleneck1() { return *queue1_; }
  PelsQueue& bottleneck2() { return *queue2_; }

  /// Router ids stamped by the two bottlenecks (1 and 2).
  static constexpr std::int32_t kRouter1 = 1;
  static constexpr std::int32_t kRouter2 = 2;

  const ParkingLotConfig& config() const { return cfg_; }

 private:
  ParkingLotConfig cfg_;
  Simulation sim_;
  Topology topo_;
  RdModel rd_;
  PelsQueue* queue1_ = nullptr;
  PelsQueue* queue2_ = nullptr;
  std::vector<std::unique_ptr<PelsSource>> long_sources_;
  std::vector<std::unique_ptr<PelsSink>> long_sinks_;
  std::vector<std::unique_ptr<PelsSource>> x1_sources_;
  std::vector<std::unique_ptr<PelsSink>> x1_sinks_;
  std::vector<std::unique_ptr<PelsSource>> x2_sources_;
  std::vector<std::unique_ptr<PelsSink>> x2_sinks_;
};

}  // namespace pels
