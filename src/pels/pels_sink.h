// PELS sink agent: receiver half of a PELS (or best-effort comparator) flow.
//
// For every arriving data packet the sink
//  * records per-colour counters and one-way delay samples (Fig. 8/9 data);
//  * accumulates the packet into its frame's reception record;
//  * returns an ACK echoing the packet's feedback label, its send timestamp
//    (RTT), and cumulative receive counters (the sender's loss measurement).
//
// Frames are finalized once a few newer frames have been seen (packets of a
// frame cannot be in flight anymore by then — red-queue delays are bounded by
// the red band size) and scored through the FGS decoder + R-D model.
#pragma once

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/host.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"
#include "util/stats.h"
#include "video/decoder.h"
#include "video/fgs.h"
#include "video/playout.h"

namespace pels {

class PelsSink : public Agent {
 public:
  /// `rd` is borrowed and must outlive the sink.
  PelsSink(Simulation& sim, Host& host, FlowId flow, NodeId src_node, VideoConfig video,
           const RdModel& rd, std::int32_t ack_size_bytes = 40);
  ~PelsSink() override;

  void on_packet(const Packet& pkt) override;

  /// Decodes and scores all frames still buffered (call at end of run).
  void finalize_all();

  // --- observable state -------------------------------------------------
  std::uint64_t packets_received(Color c) const { return recv_[static_cast<std::size_t>(c)]; }
  std::uint64_t fgs_bytes_received() const { return recv_fgs_bytes_; }
  /// Total non-duplicate data payload bytes delivered (all colours): the
  /// exact per-flow goodput numerator for fairness accounting.
  std::uint64_t data_bytes_received() const { return data_bytes_; }
  /// Data packets that arrived carrying an ECN congestion-experienced mark.
  std::uint64_t marked_received() const { return recv_marked_; }

  /// One-way delay samples per colour, seconds.
  const SampleSet& delay_samples(Color c) const { return delays_[static_cast<std::size_t>(c)]; }
  /// (time, delay-seconds) series per colour for trajectory plots.
  const TimeSeries& delay_series(Color c) const {
    return delay_series_[static_cast<std::size_t>(c)];
  }

  /// Qualities of finalized frames in decode order (frames whose packets
  /// were all lost do not appear; see quality_for_frames).
  const std::vector<FrameQuality>& frame_qualities() const { return qualities_; }

  /// Quality for every frame id in [first, last): missing frames (nothing
  /// arrived) score as base-layer-lost concealment.
  std::vector<FrameQuality> quality_for_frames(std::int64_t first, std::int64_t last) const;

  /// Mean utility over finalized frames that received any FGS data.
  double mean_utility() const;

  /// Duplicate data packets discarded (same uid seen again while its frame
  /// was still open). Duplicates are acked — the cumulative ACK counters are
  /// idempotent — but never double-counted into bytes or delay samples.
  std::uint64_t duplicates_ignored() const { return duplicates_ignored_; }

  /// Frame arrival records for playout-deadline evaluation (video/playout.h):
  /// one entry per finalized frame, in decode order.
  std::vector<FrameArrival> frame_arrivals() const;

  /// Registers receiver-side pull probes under `prefix.` (see DESIGN.md
  /// "Telemetry"): per-colour delivery counters, FGS bytes, duplicates, and
  /// the decoded-quality aggregates (frames finalized, useful-prefix bytes,
  /// mean PSNR). Probes only — the receive path is untouched.
  void register_metrics(MetricsRegistry& registry, const std::string& prefix);

 private:
  void send_ack(const Packet& data);
  void finalize_frame(std::int64_t frame_id, FrameReception rx);

  Simulation& sim_;
  Host& host_;
  FlowId flow_;
  NodeId src_node_;
  VideoConfig video_;
  FgsDecoder decoder_;
  std::int32_t ack_size_bytes_;

  std::uint64_t recv_[kNumColors] = {};
  std::uint64_t recv_fgs_bytes_ = 0;
  std::uint64_t data_bytes_ = 0;
  std::uint64_t recv_marked_ = 0;
  SampleSet delays_[kNumColors];
  TimeSeries delay_series_[kNumColors];

  /// A frame being assembled plus the uids already absorbed into it, so a
  /// duplicated packet (link retransmission, fault injection) cannot inflate
  /// the reception record. The set dies with the frame, bounding memory.
  struct OpenFrame {
    FrameReception rx;
    std::unordered_set<std::uint64_t> uids;
  };

  std::map<std::int64_t, OpenFrame> open_frames_;  // keyed by unwrapped id
  std::int64_t max_frame_seen_ = -1;
  std::int64_t last_finalized_ = -1;
  std::uint64_t duplicates_ignored_ = 0;
  std::vector<FrameQuality> qualities_;

  // Decode-quality aggregates, accumulated per finalized frame (not per
  // packet) so telemetry probes read them in O(1).
  std::uint64_t useful_fgs_bytes_total_ = 0;
  std::uint64_t base_ok_frames_ = 0;
  double psnr_sum_db_ = 0.0;
};

}  // namespace pels
