#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace pels {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool TablePrinter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  print_csv(out);
  return static_cast<bool>(out);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n' << title << '\n' << std::string(72, '=') << '\n';
}

}  // namespace pels
