// Fixed-capacity, move-only callable: std::function without the heap.
//
// The scheduler's hot path moves one callback per event through the pooled
// slot vector; with std::function, any capture beyond the ~16-byte SBO (a
// Packet is 112 bytes) costs a heap allocation and free *per event*. An
// InplaceFunction stores the callable in an inline buffer of fixed Capacity,
// so scheduling is allocation-free no matter what the lambda captures — and
// a capture that outgrows the buffer fails at compile time, loudly, instead
// of silently regressing the steady state to one malloc per packet.
//
// Design notes:
//   * One pointer to a static per-type vtable {invoke, relocate, destroy};
//     an empty function is vtable == nullptr. No virtual bases, no RTTI.
//   * Move-only. The scheduler never copies callbacks, and requiring
//     copyability would reject move-only captures (packets own a Box).
//   * Moves must be noexcept: slots live in std::vector, and a throwing
//     relocation would tear the event pool. Enforced per wrapped type.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace pels {

template <typename Signature, std::size_t Capacity,
          std::size_t Align = alignof(std::max_align_t)>
class InplaceFunction;  // primary template: only R(Args...) is specialized

template <typename R, typename... Args, std::size_t Capacity, std::size_t Align>
class InplaceFunction<R(Args...), Capacity, Align> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  /// Wraps any callable with a compatible signature. Rejects, at compile
  /// time, callables larger than Capacity or over-aligned for the buffer.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) : vtable_(&Ops<D>::vtable) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(D) <= Capacity,
                  "callable capture too large for this InplaceFunction — grow "
                  "the capacity constant or box the capture (see "
                  "sim/scheduler.h kSchedulerCallbackCapacity)");
    static_assert(alignof(D) <= Align,
                  "callable over-aligned for this InplaceFunction buffer");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callable must be nothrow-move-constructible: the scheduler "
                  "relocates callbacks inside noexcept pool operations");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this == &other) return *this;
    reset();
    if (other.vtable_ != nullptr) {
      vtable_ = other.vtable_;
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~InplaceFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    assert(vtable_ != nullptr && "calling an empty InplaceFunction");
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  struct VTable {
    R (*invoke)(void* self, Args&&... args);
    /// Move-constructs the callable at `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  struct Ops {
    static R invoke(void* self, Args&&... args) {
      return (*std::launder(reinterpret_cast<D*>(self)))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      D* from = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* self) noexcept {
      std::launder(reinterpret_cast<D*>(self))->~D();
    }
    static constexpr VTable vtable{&invoke, &relocate, &destroy};
  };

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(Align) unsigned char storage_[Capacity];
};

}  // namespace pels
