// Minimal command-line flag parsing for examples and bench harnesses.
//
// Supports --name=value and --name value forms plus boolean switches
// (--flag). Unknown flags are collected so callers can reject or ignore
// them. No external dependencies, no global state.
//
//   CliArgs args(argc, argv);
//   const int flows = args.get_int("flows", 4);
//   const double secs = args.get_double("seconds", 30.0);
//   const std::string csv = args.get_string("csv", "");
//   if (args.has("help")) { ... }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pels {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// Value accessors with defaults; malformed numbers fall back to the
  /// default (and are reported via parse_errors()).
  std::string get_string(const std::string& name, const std::string& def) const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were parsed (for unknown-flag checks by the caller).
  std::vector<std::string> flag_names() const;

  /// Human-readable descriptions of values that failed to parse.
  const std::vector<std::string>& parse_errors() const { return errors_; }

 private:
  std::map<std::string, std::string> flags_;  // name -> value ("" for switches)
  std::vector<std::string> positional_;
  mutable std::vector<std::string> errors_;
};

}  // namespace pels
