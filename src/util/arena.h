// Monotonic scratch arena: bump-pointer allocation with O(1) reset.
//
// Sweep tasks build and tear down an entire scenario per grid point; the
// allocator traffic of that churn is the last contended resource the
// parallel engines share (the global heap serializes workers behind malloc's
// locks). A ScratchArena gives each SweepRunner worker a private slab to
// carve per-task temporaries from: allocation is a pointer bump, reset() at
// task end rewinds the slab (retaining the largest block, so the steady
// state allocates nothing), and nothing is ever freed mid-task.
//
// Only trivially-destructible payloads belong here — reset() does not run
// destructors. The arena is single-threaded by construction: each worker
// owns one (see SweepRunner::worker_scratch()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace pels {

class ScratchArena {
 public:
  ScratchArena() = default;

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two). Never returns
  /// nullptr; grows by doubling blocks when the current one is exhausted.
  void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
    if (p + size > limit_) {
      grow(size + align);
      p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
    }
    cursor_ = p + size;
    used_ += size;
    return reinterpret_cast<void*>(p);
  }

  /// Typed array allocation. The elements are NOT constructed or destroyed
  /// by the arena, so the payload must be trivially destructible.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "ScratchArena::reset() never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the arena: every prior allocation is invalidated, the largest
  /// block is retained, and the rest are released. After warm-up a
  /// task/reset cycle with a stable footprint touches the heap zero times.
  void reset() {
    if (blocks_.size() > 1) {
      // Keep only the biggest block (always the last: growth doubles).
      Block largest = std::move(blocks_.back());
      blocks_.clear();
      blocks_.push_back(std::move(largest));
    }
    if (!blocks_.empty()) {
      cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.front().data.get());
      limit_ = cursor_ + blocks_.front().size;
    }
    used_ = 0;
  }

  /// Bytes handed out since the last reset (excludes alignment padding).
  std::size_t bytes_used() const { return used_; }

  /// Total bytes owned across all blocks.
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = blocks_.empty() ? kInitialBlock : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    cursor_ = reinterpret_cast<std::uintptr_t>(b.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(b));
  }

  static constexpr std::size_t kInitialBlock = 4096;

  std::vector<Block> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t used_ = 0;
};

}  // namespace pels
