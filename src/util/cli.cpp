#include "util/cli.h"

#include <cstdlib>

namespace pels {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag; else a switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string CliArgs::get_string(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

long long CliArgs::get_int(const std::string& name, long long def) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    errors_.push_back("--" + name + ": not an integer: " + it->second);
    return def;
  }
  return v;
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    errors_.push_back("--" + name + ": not a number: " + it->second);
    return def;
  }
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  errors_.push_back("--" + name + ": not a boolean: " + v);
  return def;
}

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

}  // namespace pels
