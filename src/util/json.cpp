#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pels {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::invalid_argument("JSON parse error at offset " + std::to_string(offset) +
                              ": " + what);
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail(pos, "unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(pos, std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos, "bad literal");
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail(pos, "truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail(pos, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos - 1, "bad \\u digit");
          }
          // Our writers only emit \u00XX for control bytes; decode the BMP
          // point as UTF-8 so round-trips are lossless for those.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail(pos - 1, "bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool integral = true;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == start) fail(pos, "expected a value");
    const std::string tok = text.substr(start, pos - start);
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number '" + tok + "'");
    return JsonValue(d);
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == ']') {
        ++pos;
        return JsonValue::array(std::move(items));
      }
      fail(pos, "expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<JsonValue::Member> members;
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == '}') {
        ++pos;
        return JsonValue::object(std::move(members));
      }
      fail(pos, "expected ',' or '}'");
    }
  }
};

[[noreturn]] void kind_error(const char* wanted) {
  throw std::invalid_argument(std::string("JsonValue: not a ") + wanted);
}

}  // namespace

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

JsonValue JsonValue::parse(const std::string& text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) fail(p.pos, "trailing garbage");
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

std::int64_t JsonValue::as_int64() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble && std::nearbyint(double_) == double_) {
    return static_cast<std::int64_t>(double_);
  }
  kind_error("integer");
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  kind_error("number");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("object");
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::invalid_argument("JsonValue: missing key '" + key + "'");
  return *v;
}

void JsonValue::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      return;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::kInt:
      os << int_;
      return;
    case Kind::kDouble: {
      // Fixed conversion, same policy as the telemetry exports: byte-stable
      // output across platforms beats minimal-digit round-tripping here.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      os << buf;
      return;
    }
    case Kind::kString:
      write_json_string(os, string_);
      return;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        items_[i].write(os);
      }
      os << ']';
      return;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        write_json_string(os, members_[i].first);
        os << ':';
        members_[i].second.write(os);
      }
      os << '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace pels
