// Heap-boxed optional value with deep-copy (value) semantics.
//
// Box<T> stores T out of line behind one pointer so a rarely-present payload
// does not widen its owning struct: Packet carries its ~100-byte AckInfo in
// a Box instead of an inline std::optional, which shrinks every *data*
// packet copied through the Link -> queue -> router hot path to the size of
// the headers alone. Copying a Box clones the T (like std::optional, unlike
// unique_ptr), so Packet stays freely copyable; moving steals the pointer,
// so the move-only enqueue/forward chain never touches the payload at all.
// The interface mirrors the subset of std::optional the packet paths use.
#pragma once

#include <memory>
#include <utility>

namespace pels {

template <typename T>
class Box {
 public:
  Box() = default;
  Box(const T& v) : ptr_(std::make_unique<T>(v)) {}          // NOLINT(runtime/explicit)
  Box(T&& v) : ptr_(std::make_unique<T>(std::move(v))) {}    // NOLINT(runtime/explicit)

  Box(const Box& other) : ptr_(other.ptr_ ? std::make_unique<T>(*other.ptr_) : nullptr) {}
  Box(Box&& other) noexcept = default;

  Box& operator=(const Box& other) {
    if (this == &other) return *this;
    if (!other.ptr_) {
      ptr_.reset();
    } else if (ptr_) {
      *ptr_ = *other.ptr_;  // reuse the existing allocation
    } else {
      ptr_ = std::make_unique<T>(*other.ptr_);
    }
    return *this;
  }
  Box& operator=(Box&& other) noexcept = default;

  Box& operator=(const T& v) {
    if (ptr_) *ptr_ = v;
    else ptr_ = std::make_unique<T>(v);
    return *this;
  }
  Box& operator=(T&& v) {
    if (ptr_) *ptr_ = std::move(v);
    else ptr_ = std::make_unique<T>(std::move(v));
    return *this;
  }

  explicit operator bool() const { return ptr_ != nullptr; }
  bool has_value() const { return ptr_ != nullptr; }

  T& operator*() { return *ptr_; }
  const T& operator*() const { return *ptr_; }
  T* operator->() { return ptr_.get(); }
  const T* operator->() const { return ptr_.get(); }

  template <typename... Args>
  T& emplace(Args&&... args) {
    ptr_ = std::make_unique<T>(std::forward<Args>(args)...);
    return *ptr_;
  }

  void reset() { ptr_.reset(); }

 private:
  std::unique_ptr<T> ptr_;
};

}  // namespace pels
