// Deterministic random-number generation.
//
// Every stochastic component of the simulator draws from an Rng constructed
// from the simulation's master seed plus a component-specific stream id, so
// results are reproducible bit-for-bit regardless of the order in which
// components are created or invoked.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as
// its authors recommend. It is small, fast, and passes BigCrush; we do not
// need cryptographic strength, only statistical quality and speed.
#pragma once

#include <array>
#include <cstdint>

namespace pels {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from `seed`; `stream` selects a decorrelated
  /// sub-stream so independent components can share one master seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal variate (Box-Muller, one value per call).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Geometric variate: number of failures before first success, p in (0,1].
  std::int64_t geometric(double p);

  /// Pareto variate with shape alpha > 0 and scale xm > 0.
  double pareto(double alpha, double xm);

  /// Derives a new Rng with an independent stream (for child components).
  Rng split(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;  // retained so split() can derive children
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace pels
