#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double TimeSeries::mean_in(SimTime from, SimTime to) const {
  RunningStats s;
  for (const auto& p : points_)
    if (p.t >= from && p.t <= to) s.add(p.value);
  return s.mean();
}

double TimeSeries::oscillation_in(SimTime from, SimTime to) const {
  const double mu = mean_in(from, to);
  double worst = 0.0;
  for (const auto& p : points_)
    if (p.t >= from && p.t <= to) worst = std::max(worst, std::abs(p.value - mu));
  return worst;
}

double TimeSeries::value_at(SimTime t, double fallback) const {
  double v = fallback;
  for (const auto& p : points_) {
    if (p.t > t) break;
    v = p.value;
  }
  return v;
}

double jain_fairness_index(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge case at hi_
    ++counts_[idx];
  }
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

}  // namespace pels
