// Plain-text and CSV table rendering for bench harnesses.
//
// Every bench binary prints the same rows/series the paper reports; TablePrinter
// produces aligned, human-readable tables on stdout and can mirror them to CSV
// for plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace pels {

/// Column-aligned text table with an optional CSV mirror.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with fixed precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);

  /// Renders the aligned table to `os`.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-style CSV (quotes cells containing separators).
  void print_csv(std::ostream& os) const;

  /// Writes CSV to a file path; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner (used between experiments in a bench binary).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace pels
