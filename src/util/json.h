// Minimal JSON reading/writing for machine artifacts.
//
// The repo writes several machine-readable artifacts (bench JSON, telemetry
// exports) with hand-formatted printf output, which is fine for write-only
// data. The chaos harness additionally needs to *read* JSON back: sweep
// journals are replayed on resume (exp/journal.h) and minimized fault-plan
// repros are re-loaded for replay (fault/chaos.h). JsonValue is the smallest
// parser that covers those producers: objects, arrays, strings with the
// standard escapes, bools, null, and numbers — with int64 preserved exactly
// (SimTime nanoseconds do not survive a round-trip through double).
//
// This is not a general-purpose JSON library: no streaming, no comments, no
// surrogate-pair decoding beyond pass-through, inputs are trusted repo
// artifacts. parse() throws std::invalid_argument with an offset on
// malformed input instead of guessing.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pels {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Object members keep source order (parse) / insertion order (build), so
  /// re-serialization is deterministic.
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  explicit JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<Member> members);

  /// Parses one JSON document (leading/trailing whitespace allowed). Throws
  /// std::invalid_argument naming the byte offset on malformed input.
  static JsonValue parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }

  /// Typed accessors throw std::invalid_argument on a kind mismatch (numbers
  /// interconvert: as_int64 accepts an integral double and vice versa).
  bool as_bool() const;
  std::int64_t as_int64() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;    // array
  const std::vector<Member>& members() const;     // object

  /// Object member by key; find() returns nullptr when absent, at() throws.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;

  /// Serializes compactly (no whitespace) with deterministic member order.
  void write(std::ostream& os) const;
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Writes `s` as a quoted JSON string with the mandatory escapes. Shared by
/// every hand-formatted JSON producer that embeds free-form text.
void write_json_string(std::ostream& os, const std::string& s);

}  // namespace pels
