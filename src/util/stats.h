// Statistics collection helpers used by tests, benches, and metric sinks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/time.h"

namespace pels {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles. Use for delay distributions
/// where tails matter and sample counts are modest.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Exact quantile via linear interpolation, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  std::span<const double> samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

/// A (time, value) series, e.g. a flow's rate trajectory or per-frame PSNR.
class TimeSeries {
 public:
  struct Point {
    SimTime t;
    double value;
  };

  void add(SimTime t, double value) { points_.push_back({t, value}); }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& operator[](std::size_t i) const { return points_[i]; }
  std::span<const Point> points() const { return points_; }

  /// Mean of values with t in [from, to].
  double mean_in(SimTime from, SimTime to) const;
  /// Max |value - mean| over [from, to]; measures steady-state oscillation.
  double oscillation_in(SimTime from, SimTime to) const;
  /// Last value at or before t (or `fallback` if none).
  double value_at(SimTime t, double fallback = 0.0) const;

  void clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

/// Jain's fairness index over a set of allocations: (sum x)^2 / (n sum x^2).
/// Returns 1.0 for an empty set (vacuously fair).
double jain_fairness_index(std::span<const double> allocations);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace pels
