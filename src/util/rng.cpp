#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace pels {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : seed_(seed) {
  // Mix seed and stream through SplitMix64 so that nearby (seed, stream)
  // pairs yield decorrelated state, per the xoshiro authors' guidance.
  std::uint64_t sm = seed ^ (stream * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL);
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 top bits -> uniform in [0, 1) with full double mantissa precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  // next_double() can return exactly 0; log(0) is -inf, so nudge.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

std::int64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::pareto(double alpha, double xm) {
  assert(alpha > 0.0 && xm > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::split(std::uint64_t stream) const {
  // Children derive from the original seed plus the new stream id; mixing in
  // one raw draw of our state would make split order-dependent.
  return Rng(seed_ ^ 0x5851f42d4c957f2dULL, stream);
}

}  // namespace pels
