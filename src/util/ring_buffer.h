// Growable power-of-two ring buffer (FIFO).
//
// std::deque is the obvious FIFO, but libstdc++ allocates/frees a block for
// roughly every 4-5 Packets that pass through, which keeps a per-packet
// allocation on the hot path even after the scheduler and callbacks are
// allocation-free. A ring over a flat vector reaches a steady state after
// warm-up and never touches the heap again; Link's in-flight pipeline and
// DropTailQueue both sit on this. Indexing is mask-based, so capacity is
// always a power of two.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace pels {

/// FIFO of move-assignable, default-constructible values. Elements are
/// default-constructed once per slot at growth time and re-assigned on push,
/// so T's assignment must release prior state (true for Packet's Box).
template <typename T>
class RingBuffer {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }

  T& front() {
    assert(count_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return slots_[head_];
  }
  T& back() {
    assert(count_ > 0);
    return slots_[(head_ + count_ - 1) & mask()];
  }

  /// i-th element from the front (0 = front). For diagnostics/tests.
  const T& at(std::size_t i) const {
    assert(i < count_);
    return slots_[(head_ + i) & mask()];
  }

  void push_back(T&& value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask()] = std::move(value);
    ++count_;
  }

  T pop_front() {
    assert(count_ > 0);
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask();
    --count_;
    return value;
  }

  /// Pre-sizes to at least `n` slots (rounded up to a power of two).
  void reserve(std::size_t n) {
    std::size_t cap = slots_.empty() ? kInitialCapacity : slots_.size();
    while (cap < n) cap *= 2;
    if (cap > slots_.size()) regrow(cap);
  }

  void clear() {
    // Reset slots so held resources (boxed acks) are released now, not at
    // the next overwrite.
    for (std::size_t i = 0; i < count_; ++i) slots_[(head_ + i) & mask()] = T{};
    head_ = 0;
    count_ = 0;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 8;

  std::size_t mask() const { return slots_.size() - 1; }

  void grow() { regrow(slots_.empty() ? kInitialCapacity : slots_.size() * 2); }

  void regrow(std::size_t new_cap) {
    // Unroll into a fresh vector so head_ returns to 0.
    std::vector<T> grown;
    grown.reserve(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      grown.push_back(std::move(slots_[(head_ + i) & mask()]));
    }
    grown.resize(new_cap);
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace pels
