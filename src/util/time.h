// Simulated-time representation.
//
// All simulation timestamps are integer nanoseconds (SimTime). Integer time
// makes event ordering deterministic and exactly reproducible across
// platforms, which double-based clocks cannot guarantee once arithmetic
// rounding enters the picture (e.g. accumulating per-packet serialization
// delays). Helpers convert to and from seconds/milliseconds for human-facing
// configuration and reporting.
#pragma once

#include <cstdint>

namespace pels {

/// Simulation timestamp or duration in integer nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Sentinel for "no deadline"/"never".
inline constexpr SimTime kTimeNever = INT64_MAX;

/// Converts seconds (double) to SimTime, rounding to the nearest nanosecond.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Converts milliseconds (double) to SimTime.
constexpr SimTime from_millis(double ms) { return from_seconds(ms / 1e3); }

/// Converts microseconds (double) to SimTime.
constexpr SimTime from_micros(double us) { return from_seconds(us / 1e6); }

/// Converts SimTime to floating-point seconds (for reporting).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts SimTime to floating-point milliseconds (for reporting).
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Duration needed to serialize `bytes` onto a link of `bits_per_second`.
constexpr SimTime transmission_time(std::int64_t bytes, double bits_per_second) {
  return from_seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace pels
