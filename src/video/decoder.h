// FGS decoder model: turns per-frame packet reception into decoded quality.
//
// The decoding rule is the one that drives every result in the paper: FGS
// enhancement bytes are useful only as a *consecutive prefix* from offset 0
// — bit planes are coded with strong dependencies, so the first gap renders
// the remainder of the frame's enhancement data junk (§3.1, Fig. 3). The
// base layer must arrive intact for the frame to decode at all.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"
#include "video/rd_model.h"

namespace pels {

/// What arrived for one frame.
struct FrameReception {
  std::int64_t frame_id = -1;
  std::int64_t base_bytes_expected = 0;
  std::int64_t base_bytes_received = 0;
  /// Received FGS byte ranges as (offset, length) pairs, any order.
  std::vector<std::pair<std::int32_t, std::int32_t>> fgs_chunks;
  /// Arrival time of the last decodable-class (green/yellow) byte; feeds
  /// playout-deadline evaluation (video/playout.h).
  SimTime completed_at = 0;
};

/// Decoded quality of one frame.
struct FrameQuality {
  std::int64_t frame_id = -1;
  bool base_ok = false;
  std::int64_t useful_fgs_bytes = 0;    // consecutive prefix decodable
  std::int64_t received_fgs_bytes = 0;  // all FGS bytes that arrived
  double utility = 1.0;                 // useful / received (paper eq. (3) numerator)
  double psnr_db = 0.0;
  SimTime completed_at = 0;             // copied from the reception record
};

class FgsDecoder {
 public:
  /// The RdModel is borrowed and must outlive the decoder.
  explicit FgsDecoder(const RdModel& rd) : rd_(&rd) {}

  FrameQuality decode(const FrameReception& rx) const;

  /// Length of the consecutive byte prefix from offset 0 covered by the
  /// given (offset, length) chunks. Chunks may arrive unordered; overlaps
  /// (retransmission-free PELS never produces them, but the decoder is
  /// defensive) are tolerated.
  static std::int64_t useful_prefix(
      std::vector<std::pair<std::int32_t, std::int32_t>> chunks);

 private:
  const RdModel* rd_;
};

}  // namespace pels
