#include "video/decoder.h"

#include <algorithm>

namespace pels {

std::int64_t FgsDecoder::useful_prefix(
    std::vector<std::pair<std::int32_t, std::int32_t>> chunks) {
  std::sort(chunks.begin(), chunks.end());
  std::int64_t covered = 0;
  for (const auto& [offset, length] : chunks) {
    if (offset > covered) break;  // gap: everything after is undecodable
    covered = std::max<std::int64_t>(covered, offset + length);
  }
  return covered;
}

FrameQuality FgsDecoder::decode(const FrameReception& rx) const {
  FrameQuality q;
  q.frame_id = rx.frame_id;
  q.completed_at = rx.completed_at;
  q.base_ok = rx.base_bytes_received >= rx.base_bytes_expected;
  for (const auto& [offset, length] : rx.fgs_chunks) {
    (void)offset;
    q.received_fgs_bytes += length;
  }
  q.useful_fgs_bytes = useful_prefix(rx.fgs_chunks);
  q.utility = q.received_fgs_bytes == 0
                  ? 1.0
                  : static_cast<double>(q.useful_fgs_bytes) /
                        static_cast<double>(q.received_fgs_bytes);
  q.psnr_db = q.base_ok ? rd_->psnr(rx.frame_id, q.useful_fgs_bytes) : rd_->concealment_psnr();
  return q;
}

}  // namespace pels
