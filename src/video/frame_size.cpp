#include "video/frame_size.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

ConstantFrameSize::ConstantFrameSize(std::int64_t bytes) : bytes_(bytes) {
  assert(bytes_ >= 0);
}

std::int64_t ConstantFrameSize::fgs_frame_bytes(std::int64_t /*frame_id*/) const {
  return bytes_;
}

LognormalFrameSize::LognormalFrameSize(std::int64_t mean_bytes, double sigma_log,
                                       std::int64_t min_bytes, std::int64_t max_bytes,
                                       std::uint64_t seed)
    : sigma_log_(sigma_log), min_bytes_(min_bytes), max_bytes_(max_bytes), seed_(seed) {
  assert(mean_bytes > 0 && sigma_log >= 0.0);
  assert(min_bytes >= 0 && max_bytes >= min_bytes);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2): solve for mu.
  mu_log_ = std::log(static_cast<double>(mean_bytes)) - sigma_log * sigma_log / 2.0;
}

std::int64_t LognormalFrameSize::fgs_frame_bytes(std::int64_t frame_id) const {
  Rng rng(seed_, static_cast<std::uint64_t>(frame_id));
  const double v = std::exp(rng.normal(mu_log_, sigma_log_));
  return std::clamp(static_cast<std::int64_t>(std::llround(v)), min_bytes_, max_bytes_);
}

GopFrameSize::GopFrameSize(std::int64_t i_bytes, std::int64_t p_bytes, int gop_length,
                           std::uint64_t seed, double jitter)
    : i_bytes_(i_bytes),
      p_bytes_(p_bytes),
      gop_length_(gop_length),
      seed_(seed),
      jitter_(jitter) {
  assert(i_bytes_ > 0 && p_bytes_ > 0);
  assert(gop_length_ >= 1);
  assert(jitter_ >= 0.0 && jitter_ < 1.0);
}

std::int64_t GopFrameSize::fgs_frame_bytes(std::int64_t frame_id) const {
  const bool is_i = frame_id % gop_length_ == 0;
  const auto base = static_cast<double>(is_i ? i_bytes_ : p_bytes_);
  Rng rng(seed_, static_cast<std::uint64_t>(frame_id));
  const double scaled = base * (1.0 + jitter_ * (2.0 * rng.next_double() - 1.0));
  return std::max<std::int64_t>(0, std::llround(scaled));
}

std::vector<double> frame_size_pmf_packets(const FrameSizeModel& model,
                                           std::int64_t frames,
                                           std::int32_t packet_size_bytes) {
  assert(frames > 0 && packet_size_bytes > 0);
  std::vector<double> pmf;
  for (std::int64_t f = 0; f < frames; ++f) {
    const std::int64_t bytes = model.fgs_frame_bytes(f);
    const auto packets = static_cast<std::size_t>(
        (bytes + packet_size_bytes - 1) / packet_size_bytes);
    if (packets == 0) continue;  // eq. (1) is over H >= 1
    if (pmf.size() < packets) pmf.resize(packets, 0.0);
    pmf[packets - 1] += 1.0;
  }
  for (double& w : pmf) w /= static_cast<double>(frames);
  return pmf;
}

}  // namespace pels
