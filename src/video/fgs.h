// MPEG-4 FGS stream model and packetizer.
//
// Models the structure the paper uses (§2.3, §6.1): video coded as a base
// layer plus one fine-granular-scalability enhancement layer per frame. The
// FGS layer is coded at a large fixed budget R_max and the server transmits
// an arbitrary prefix x_i of each FGS frame, split into a yellow lower
// segment of (1-gamma)*x_i bytes and a red upper segment of gamma*x_i bytes
// (Fig. 4 right). The base layer is always green.
//
// Default numbers follow §6.1's MPEG-4 coded CIF Foreman: 63,000 bytes per
// frame in 126 packets of 500 bytes. The base-layer rate defaults to
// 128 kb/s — the paper's "rate of the base layer" used as the initial MKC
// rate — which at 10 frames/s is 1,600 bytes per frame (the paper's "21
// green packets" describes the full-rate encoding's base share; see
// DESIGN.md substitution notes).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace pels {

struct VideoConfig {
  double fps = 10.0;
  std::int32_t packet_size_bytes = 500;
  std::int64_t max_frame_bytes = 63'000;   // base + full FGS (R_max per frame)
  std::int64_t base_layer_bytes = 1'600;   // per frame (128 kb/s at 10 fps)
  std::int64_t total_frames = 400;         // CIF Foreman length

  SimTime frame_period() const { return from_seconds(1.0 / fps); }
  std::int64_t max_fgs_bytes() const { return max_frame_bytes - base_layer_bytes; }
  double base_layer_rate_bps() const {
    return static_cast<double>(base_layer_bytes) * 8.0 * fps;
  }
};

/// One frame's transmission plan: how many FGS bytes to send and where the
/// yellow/red split falls.
struct FramePlan {
  std::int64_t frame_id = 0;
  std::int64_t base_bytes = 0;
  std::int64_t yellow_bytes = 0;  // lower FGS segment (1-gamma)*x
  std::int64_t red_bytes = 0;     // upper FGS segment gamma*x

  std::int64_t fgs_bytes() const { return yellow_bytes + red_bytes; }
  std::int64_t total_bytes() const { return base_bytes + fgs_bytes(); }
};

/// Computes a frame plan from the congestion-controlled rate.
///
/// `rate_bps` is the sending budget; the base layer is always fully included
/// (its loss means no meaningful streaming, §4.2), the remaining budget fills
/// the FGS prefix x_i, capped at the coded FGS size, and gamma splits x_i
/// into yellow and red. When `partition` is false the whole FGS prefix is
/// yellow (the best-effort comparator sends unpartitioned enhancement data).
/// `fgs_cap_bytes` overrides the coded FGS size of this frame (VBR sources:
/// the FrameSizeModel's R_max,i); pass -1 for the config's constant cap.
FramePlan plan_frame(const VideoConfig& cfg, std::int64_t frame_id, double rate_bps,
                     double gamma, bool partition = true,
                     std::int64_t fgs_cap_bytes = -1);

/// Builds a plan from an explicit FGS byte count (R-D-aware scaling chooses
/// x_i itself instead of deriving it from the rate); gamma splits as usual.
FramePlan plan_frame_bytes(const VideoConfig& cfg, std::int64_t frame_id,
                           std::int64_t fgs_bytes, double gamma, bool partition = true);

/// Splits a frame plan into packets.
///
/// Packets are at most `packet_size_bytes`; colour segments do not share
/// packets (a packet is entirely green, yellow, or red — routers drop whole
/// packets, so mixing colours would couple the segments' fates). FGS packets
/// carry `frame_offset` = byte offset of the packet within the FGS prefix;
/// base packets carry frame_offset = -1. Sequence numbers, source/destination
/// and timestamps are filled by the caller.
std::vector<Packet> packetize(const VideoConfig& cfg, const FramePlan& plan);

}  // namespace pels
