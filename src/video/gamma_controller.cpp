#include "video/gamma_controller.h"

#include <algorithm>
#include <cassert>

namespace pels {

GammaController::GammaController(GammaConfig config)
    : cfg_(config), gamma_(config.initial_gamma) {
  assert(cfg_.p_thr > 0.0 && cfg_.p_thr <= 1.0);
  assert(cfg_.gamma_low >= 0.0 && cfg_.gamma_low < cfg_.gamma_high && cfg_.gamma_high <= 1.0);
  assert(cfg_.initial_gamma >= cfg_.gamma_low && cfg_.initial_gamma <= cfg_.gamma_high);
  // Unlike beta/sigma stability asserts elsewhere, unstable gains are allowed
  // here on purpose: Figure 5 demonstrates divergence at sigma = 3.
}

double GammaController::update(double p) {
  return gamma_update_step(cfg_, p, gamma_, updates_);
}

void GammaController::register_metrics(MetricsRegistry& registry, const std::string& prefix) {
  registry.add_probe(prefix + ".gamma", [this] { return gamma_; });
  registry.add_probe(prefix + ".gamma_updates",
                     [this] { return static_cast<double>(updates_); });
}

double GammaController::stationary_gamma(double p) const {
  return std::clamp(p / cfg_.p_thr, cfg_.gamma_low, cfg_.gamma_high);
}

}  // namespace pels
