// Synthetic rate-distortion (R-D) model standing in for real CIF Foreman.
//
// The paper reconstructs actual MPEG-4 FGS Foreman video offline and reports
// PSNR; we do not have the sequence or a codec, so this model synthesizes
// per-frame R-D curves with the properties that drive the paper's Figure 10:
//
//  * PSNR of an FGS frame is a concave, monotone function of the number of
//    *consecutive-from-zero* enhancement bytes decoded (classic logarithmic
//    R-D behaviour of bit-plane coders);
//  * per-frame base quality and enhancement efficiency vary with scene
//    complexity (Foreman's slow head-and-shoulders start, camera pan to the
//    construction site near the end), so PSNR traces have structure;
//  * losing the base layer collapses quality to a concealment floor.
//
// Calibration targets published Foreman FGS numbers: base layer ~29 dB
// average, full enhancement ~ +12 dB. Because both streaming schemes are
// evaluated through the same model, relative comparisons (PELS vs
// best-effort improvement over base) are insensitive to the exact constants;
// see DESIGN.md substitutions.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace pels {

struct RdModelConfig {
  std::int64_t total_frames = 400;
  std::int64_t max_fgs_bytes = 61'400;  // full enhancement prefix per frame
  double base_psnr_mean_db = 29.0;
  double base_psnr_sway_db = 1.5;   // slow scene-complexity modulation
  double base_psnr_noise_db = 0.6;  // frame-to-frame coding noise
  double max_gain_db = 12.0;        // PSNR gain when the full FGS frame arrives
  double concealment_psnr_db = 14.0;  // quality when the base layer is lost
  std::uint64_t seed = 0x466f72656d616eULL;  // deterministic "Foreman"
};

class RdModel {
 public:
  explicit RdModel(RdModelConfig config = {});

  /// PSNR of frame `f` decoded from the base layer alone.
  double base_psnr(std::int64_t frame) const;

  /// PSNR of frame `f` when `useful_fgs_bytes` consecutive enhancement bytes
  /// (from offset 0) are decoded on top of an intact base layer.
  double psnr(std::int64_t frame, std::int64_t useful_fgs_bytes) const;

  /// PSNR when the base layer is lost (concealment floor).
  double concealment_psnr() const { return cfg_.concealment_psnr_db; }

  const RdModelConfig& config() const { return cfg_; }

 private:
  /// Scene complexity in [0, 1]; higher = harder to code (lower base PSNR,
  /// more headroom for enhancement).
  double complexity(std::int64_t frame) const;
  double noise(std::int64_t frame) const;

  RdModelConfig cfg_;
};

}  // namespace pels
