// Frame-size models: the coded FGS size R_max,i of each enhancement frame.
//
// The paper's analysis covers both constant frame sizes (eq. (2)) and
// arbitrary i.i.d. frame-size distributions {q_k} (eq. (1), Lemma 1): "the
// exact distribution of {H_j} depends on the frame rate, variation in scene
// complexity, and the bitrate of the sequence". These models supply that
// variation for the VBR experiments: a constant reference, a lognormal model
// (the classic fit for compressed-frame sizes), and a GOP-structured model
// (periodic large I-frames over smaller P/B frames).
//
// All models are deterministic functions of (seed, frame index): the same
// frame always has the same coded size, across runs and across the sender
// and any offline analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace pels {

class FrameSizeModel {
 public:
  virtual ~FrameSizeModel() = default;

  /// Coded FGS-layer size of frame `frame_id` in bytes (>= 0).
  virtual std::int64_t fgs_frame_bytes(std::int64_t frame_id) const = 0;

  /// Model name for traces and tables.
  virtual const char* name() const = 0;
};

/// Every frame coded at the same FGS budget (the paper's eq. (2) setting).
class ConstantFrameSize : public FrameSizeModel {
 public:
  explicit ConstantFrameSize(std::int64_t bytes);
  std::int64_t fgs_frame_bytes(std::int64_t frame_id) const override;
  const char* name() const override { return "constant"; }

 private:
  std::int64_t bytes_;
};

/// Lognormal i.i.d. frame sizes, clamped to [min, max]; mean is the target
/// mean *before* clamping.
class LognormalFrameSize : public FrameSizeModel {
 public:
  LognormalFrameSize(std::int64_t mean_bytes, double sigma_log, std::int64_t min_bytes,
                     std::int64_t max_bytes, std::uint64_t seed);
  std::int64_t fgs_frame_bytes(std::int64_t frame_id) const override;
  const char* name() const override { return "lognormal"; }

 private:
  double mu_log_;
  double sigma_log_;
  std::int64_t min_bytes_;
  std::int64_t max_bytes_;
  std::uint64_t seed_;
};

/// GOP-patterned sizes: frame 0 of each `gop_length` window is an I frame of
/// `i_bytes`; the rest are P frames of `p_bytes`, both with mild
/// deterministic per-frame jitter.
class GopFrameSize : public FrameSizeModel {
 public:
  GopFrameSize(std::int64_t i_bytes, std::int64_t p_bytes, int gop_length,
               std::uint64_t seed, double jitter = 0.1);
  std::int64_t fgs_frame_bytes(std::int64_t frame_id) const override;
  const char* name() const override { return "gop"; }

 private:
  std::int64_t i_bytes_;
  std::int64_t p_bytes_;
  int gop_length_;
  std::uint64_t seed_;
  double jitter_;
};

/// Empirical PMF of frame sizes *in packets* over frames [0, frames), for
/// feeding eq. (1) (expected_useful_packets_pmf): pmf[k-1] = P(H = k).
std::vector<double> frame_size_pmf_packets(const FrameSizeModel& model,
                                           std::int64_t frames,
                                           std::int32_t packet_size_bytes);

}  // namespace pels
