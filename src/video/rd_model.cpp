#include "video/rd_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

RdModel::RdModel(RdModelConfig config) : cfg_(config) {
  assert(cfg_.total_frames > 0);
  assert(cfg_.max_fgs_bytes > 0);
  assert(cfg_.max_gain_db > 0.0);
}

double RdModel::complexity(std::int64_t frame) const {
  // Foreman-like profile: quiet talking-head opening, gradually increasing
  // motion, and a high-motion camera pan over the last quarter.
  const double t = static_cast<double>(frame) / static_cast<double>(cfg_.total_frames);
  double c = 0.35 + 0.15 * std::sin(2.0 * M_PI * 3.0 * t);  // gesture cycles
  if (t > 0.72) c += 2.2 * (t - 0.72);                      // the pan
  return std::clamp(c, 0.0, 1.0);
}

double RdModel::noise(std::int64_t frame) const {
  // Deterministic per-frame jitter: same frame always gets the same value.
  Rng rng(cfg_.seed, static_cast<std::uint64_t>(frame));
  return rng.normal(0.0, cfg_.base_psnr_noise_db);
}

double RdModel::base_psnr(std::int64_t frame) const {
  const double c = complexity(frame);
  return cfg_.base_psnr_mean_db + cfg_.base_psnr_sway_db * (0.5 - c) * 2.0 + noise(frame);
}

double RdModel::psnr(std::int64_t frame, std::int64_t useful_fgs_bytes) const {
  useful_fgs_bytes = std::clamp<std::int64_t>(useful_fgs_bytes, 0, cfg_.max_fgs_bytes);
  const double fill =
      static_cast<double>(useful_fgs_bytes) / static_cast<double>(cfg_.max_fgs_bytes);
  // Logarithmic R-D curve normalized so gain(0) = 0 and gain(1) = max_gain.
  // The log base (here effectively 1 + 15*fill against log(16)) sets how
  // front-loaded the enhancement is: the first bit planes buy the most dB,
  // as in real FGS streams.
  const double gain = cfg_.max_gain_db * std::log1p(15.0 * fill) / std::log(16.0);
  // Complex frames have more enhancement headroom: scale gain mildly.
  const double c = complexity(frame);
  return base_psnr(frame) + gain * (0.85 + 0.3 * c);
}

}  // namespace pels
