// The gamma controller: FGS partitioning control (paper §4.3).
//
// Adjusts the red fraction gamma of each transmitted FGS frame so that the
// red-queue loss rate converges to the target p_thr:
//
//   gamma(k) = gamma(k-1) + sigma * (p(k-1)/p_thr - gamma(k-1))      (eq. 4)
//
// where p is the measured loss in the entire FGS layer. The fixed point is
// gamma* = p*/p_thr, at which red loss p/gamma = p_thr. Stable iff
// 0 < sigma < 2 (Lemma 2), under arbitrary feedback delay too (Lemma 3,
// eq. (5) — the delayed map is the same affine map applied along each
// delay-residue subsequence, hence the identical condition).
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace pels {

struct GammaConfig {
  double sigma = 0.5;        // controller gain; stable iff in (0, 2)
  double p_thr = 0.75;       // target red loss rate (70-90% per the paper)
  double initial_gamma = 0.5;
  double gamma_low = 0.05;   // probing floor (§6.2: flows keep probing)
  double gamma_high = 0.95;
};

class GammaController {
 public:
  explicit GammaController(GammaConfig config);

  /// Applies one control step with measured FGS-layer loss `p` in [0, 1].
  /// Returns the new gamma.
  double update(double p);

  double gamma() const { return gamma_; }
  std::uint64_t updates() const { return updates_; }
  const GammaConfig& config() const { return cfg_; }

  /// Fixed point for stationary loss p: gamma* = p / p_thr (clamped).
  double stationary_gamma(double p) const;

  /// Lemma 2/3 stability predicate for a candidate gain.
  static bool is_stable_gain(double sigma) { return sigma > 0.0 && sigma < 2.0; }

  /// Registers pull probes under `prefix.`: the current partition gamma and
  /// the cumulative update count (see DESIGN.md "Telemetry").
  void register_metrics(MetricsRegistry& registry, const std::string& prefix);

 private:
  GammaConfig cfg_;
  double gamma_;
  std::uint64_t updates_ = 0;
};

/// Pure iterate map of eq. (4) without clamping, for stability analysis and
/// Figure 5: gamma' = gamma + sigma * (p/p_thr - gamma).
constexpr double gamma_iterate(double gamma, double p, double sigma, double p_thr) {
  return gamma + sigma * (p / p_thr - gamma);
}

/// One full gamma control step (clamp p, iterate eq. (4), clamp gamma) on
/// caller-owned state. GammaController applies it to its members and
/// FlowTable to its contiguous columns, so batch updates are bit-for-bit
/// identical to per-object control. Returns the new gamma.
inline double gamma_update_step(const GammaConfig& cfg, double p, double& gamma,
                                std::uint64_t& updates) {
  p = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  gamma = gamma_iterate(gamma, p, cfg.sigma, cfg.p_thr);
  gamma = gamma < cfg.gamma_low ? cfg.gamma_low
                                : (gamma > cfg.gamma_high ? cfg.gamma_high : gamma);
  ++updates;
  return gamma;
}

}  // namespace pels
