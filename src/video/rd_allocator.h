// R-D-aware rate scaling (the paper's §6.5 pointer to Dai & Loguinov [5]:
// PELS quality fluctuation "can be further reduced using sophisticated R-D
// scaling methods ... (not used in this work)"). Implemented here as the
// optional extension the paper leaves open.
//
// Constant-byte scaling gives every frame the same FGS budget x_i, so PSNR
// tracks per-frame scene complexity and fluctuates. A constant-QUALITY
// scaler instead spends the same total budget unevenly: hard frames get more
// enhancement bytes, easy frames fewer, flattening the PSNR trace.
//
// RdAllocator solves, for a window of W frames and total budget B:
//
//   maximize min_f PSNR_f(x_f)   s.t.  sum x_f = B,  0 <= x_f <= cap_f
//
// via bisection on the common PSNR level (each PSNR_f is continuous and
// strictly increasing in x_f until its cap, so the max-min optimum equalizes
// PSNR across all frames that are not pinned at a bound).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "video/rd_model.h"

namespace pels {

class RdAllocator {
 public:
  /// `rd` is borrowed and must outlive the allocator.
  explicit RdAllocator(const RdModel& rd) : rd_(&rd) {}

  /// Splits `total_budget_bytes` of FGS budget across `frames` (consecutive
  /// ids starting at `first_frame`), each capped at `frame_cap_bytes`.
  /// Returns per-frame byte allocations summing to
  /// min(total_budget_bytes, frames * frame_cap_bytes).
  std::vector<std::int64_t> allocate(std::int64_t first_frame, int frames,
                                     std::int64_t total_budget_bytes,
                                     std::int64_t frame_cap_bytes) const;

  /// PSNR each frame achieves under an allocation (for tests/benches).
  std::vector<double> psnr_under(std::int64_t first_frame,
                                 std::span<const std::int64_t> allocation) const;

 private:
  /// Bytes frame `f` needs to reach PSNR `level` (clamped to [0, cap]).
  std::int64_t bytes_for_level(std::int64_t frame, double level,
                               std::int64_t cap) const;

  const RdModel* rd_;
};

}  // namespace pels
