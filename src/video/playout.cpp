#include "video/playout.h"

#include <algorithm>

namespace pels {

PlayoutReport evaluate_playout(const std::vector<FrameArrival>& arrivals,
                               SimTime frame_period, SimTime startup_delay) {
  PlayoutReport report;
  if (arrivals.empty()) return report;

  // Playback clock starts at the completion of the first decodable frame.
  SimTime t0 = kTimeNever;
  std::int64_t f0 = 0;
  for (const auto& a : arrivals) {
    if (a.decodable) {
      t0 = a.completed_at;
      f0 = a.frame_id;
      break;
    }
  }
  if (t0 == kTimeNever) {
    // Nothing decodable: everything is late.
    report.frames_total = static_cast<std::int64_t>(arrivals.size());
    report.frames_late = report.frames_total;
    return report;
  }

  for (const auto& a : arrivals) {
    ++report.frames_total;
    const SimTime deadline = t0 + startup_delay + (a.frame_id - f0) * frame_period;
    if (!a.decodable) {
      ++report.frames_late;
      continue;
    }
    if (a.completed_at <= deadline) {
      ++report.frames_on_time;
    } else {
      ++report.frames_late;
      report.max_lateness = std::max(report.max_lateness, a.completed_at - deadline);
    }
    // Startup needed to make THIS frame punctual with zero slack.
    const SimTime needed = a.completed_at - t0 - (a.frame_id - f0) * frame_period;
    report.required_startup = std::max(report.required_startup, std::max<SimTime>(needed, 0));
  }
  return report;
}

}  // namespace pels
