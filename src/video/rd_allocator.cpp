#include "video/rd_allocator.h"

#include <algorithm>
#include <cassert>

namespace pels {

std::int64_t RdAllocator::bytes_for_level(std::int64_t frame, double level,
                                          std::int64_t cap) const {
  // psnr(frame, x) is monotone in x: binary search the smallest x reaching
  // `level`. Byte granularity is plenty (the packetizer quantizes anyway).
  if (rd_->psnr(frame, 0) >= level) return 0;
  if (rd_->psnr(frame, cap) < level) return cap;
  std::int64_t lo = 0;
  std::int64_t hi = cap;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (rd_->psnr(frame, mid) >= level) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::vector<std::int64_t> RdAllocator::allocate(std::int64_t first_frame, int frames,
                                                std::int64_t total_budget_bytes,
                                                std::int64_t frame_cap_bytes) const {
  assert(frames > 0);
  assert(frame_cap_bytes >= 0);
  const std::int64_t budget =
      std::clamp<std::int64_t>(total_budget_bytes, 0,
                               static_cast<std::int64_t>(frames) * frame_cap_bytes);

  auto spend_at_level = [&](double level) {
    std::int64_t total = 0;
    for (int i = 0; i < frames; ++i)
      total += bytes_for_level(first_frame + i, level, frame_cap_bytes);
    return total;
  };

  // Bisection on the common PSNR level. Bracket: at the concealment floor no
  // frame needs bytes; at base + full gain every frame is capped.
  double lo = 0.0;
  double hi = 100.0;  // dB; far above any achievable PSNR
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (spend_at_level(mid) <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  std::vector<std::int64_t> alloc(static_cast<std::size_t>(frames));
  std::int64_t spent = 0;
  for (int i = 0; i < frames; ++i) {
    alloc[static_cast<std::size_t>(i)] =
        bytes_for_level(first_frame + i, lo, frame_cap_bytes);
    spent += alloc[static_cast<std::size_t>(i)];
  }
  // Distribute any residual (bisection granularity) to uncapped frames.
  std::int64_t residual = budget - spent;
  for (int i = 0; i < frames && residual > 0; ++i) {
    auto& x = alloc[static_cast<std::size_t>(i)];
    const std::int64_t room = frame_cap_bytes - x;
    const std::int64_t add = std::min(room, residual);
    x += add;
    residual -= add;
  }
  return alloc;
}

std::vector<double> RdAllocator::psnr_under(std::int64_t first_frame,
                                            std::span<const std::int64_t> allocation) const {
  std::vector<double> out;
  out.reserve(allocation.size());
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    out.push_back(rd_->psnr(first_frame + static_cast<std::int64_t>(i), allocation[i]));
  }
  return out;
}

}  // namespace pels
