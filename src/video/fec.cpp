#include "video/fec.h"

#include <cassert>
#include <cmath>

namespace pels {

namespace {
/// log C(n, i) via lgamma, stable for the modest n used here.
double log_choose(int n, int i) {
  return std::lgamma(n + 1.0) - std::lgamma(i + 1.0) - std::lgamma(n - i + 1.0);
}
}  // namespace

double fec_block_recovery_probability(const FecConfig& cfg, double p) {
  assert(cfg.data_packets > 0 && cfg.parity_packets >= 0);
  assert(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;
  const int n = cfg.block_packets();
  double prob = 0.0;
  for (int i = 0; i <= cfg.parity_packets; ++i) {
    prob += std::exp(log_choose(n, i) + i * std::log(p) + (n - i) * std::log1p(-p));
  }
  return prob;
}

double fec_expected_prefix_blocks(const FecConfig& cfg, double p, int blocks) {
  assert(blocks >= 1);
  const double q = fec_block_recovery_probability(cfg, p);
  if (q >= 1.0) return static_cast<double>(blocks);
  // E[prefix] = sum_{j=1..B} q^j = q (1 - q^B) / (1 - q).
  return q * (1.0 - std::pow(q, blocks)) / (1.0 - q);
}

double fec_expected_useful_bytes(const FecConfig& cfg, double p, int blocks) {
  return fec_expected_prefix_blocks(cfg, p, blocks) *
         static_cast<double>(cfg.data_packets) * cfg.packet_size_bytes;
}

double fec_goodput_efficiency(const FecConfig& cfg, double p, int blocks) {
  const double sent_bytes = static_cast<double>(blocks) * cfg.block_packets() *
                            cfg.packet_size_bytes;
  return fec_expected_useful_bytes(cfg, p, blocks) / sent_bytes;
}

double fec_simulate_prefix_blocks(const FecConfig& cfg, double p, int blocks,
                                  int trials, Rng& rng) {
  assert(trials > 0);
  std::int64_t total = 0;
  for (int t = 0; t < trials; ++t) {
    for (int b = 0; b < blocks; ++b) {
      int lost = 0;
      for (int i = 0; i < cfg.block_packets(); ++i) lost += rng.bernoulli(p);
      if (lost > cfg.parity_packets) break;  // first unrecovered block ends the prefix
      ++total;
    }
  }
  return static_cast<double>(total) / static_cast<double>(trials);
}

}  // namespace pels
