// Block-FEC comparator model (paper §1: PELS's goal is "to avoid all
// bandwidth overhead associated with error-correcting codes and occupy
// network channels only with the actual video data").
//
// Models a systematic (k+m, k) erasure code applied per block of FGS
// packets: a block of k data packets plus m parity packets is recoverable
// iff at least k of the k+m packets arrive. Under i.i.d. loss p,
//
//   P(block recovered) = sum_{i=0..m} C(k+m, i) p^i (1-p)^(k+m-i)
//
// and the decodable FGS prefix ends at the first unrecovered block, so the
// expected useful prefix is q(1-q^B)/(1-q) blocks for B blocks per frame.
// The model exposes both the closed forms and Monte-Carlo helpers, plus the
// *goodput efficiency* — useful bytes divided by transmitted bytes including
// parity — which is the quantity PELS wins on (efficiency 1 at overhead 0).
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace pels {

struct FecConfig {
  int data_packets = 10;   // k
  int parity_packets = 2;  // m
  std::int32_t packet_size_bytes = 500;

  int block_packets() const { return data_packets + parity_packets; }
  /// Fraction of transmitted bytes that is parity: m / (k+m).
  double overhead() const {
    return static_cast<double>(parity_packets) / static_cast<double>(block_packets());
  }
};

/// P(one block is recovered) under i.i.d. loss p.
double fec_block_recovery_probability(const FecConfig& cfg, double p);

/// Expected number of *consecutively recovered* blocks from the start of a
/// frame of `blocks` blocks (the FGS prefix rule lifted to block level).
double fec_expected_prefix_blocks(const FecConfig& cfg, double p, int blocks);

/// Expected decodable FGS bytes per frame of `blocks` blocks.
double fec_expected_useful_bytes(const FecConfig& cfg, double p, int blocks);

/// Goodput efficiency: expected useful bytes divided by all transmitted
/// bytes (data + parity) of the frame. PELS's preferential dropping achieves
/// ~(1 - p/p_thr) efficiency with zero parity; FEC pays the overhead always,
/// even when the network is clean.
double fec_goodput_efficiency(const FecConfig& cfg, double p, int blocks);

/// Monte-Carlo estimate of the expected prefix blocks (validates the closed
/// form; also usable with `trials = 1` for sampling).
double fec_simulate_prefix_blocks(const FecConfig& cfg, double p, int blocks,
                                  int trials, Rng& rng);

}  // namespace pels
