#include "video/fgs.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

FramePlan plan_frame(const VideoConfig& cfg, std::int64_t frame_id, double rate_bps,
                     double gamma, bool partition, std::int64_t fgs_cap_bytes) {
  assert(gamma >= 0.0 && gamma <= 1.0);
  FramePlan plan;
  plan.frame_id = frame_id;
  plan.base_bytes = cfg.base_layer_bytes;

  const std::int64_t cap = fgs_cap_bytes >= 0 ? fgs_cap_bytes : cfg.max_fgs_bytes();
  const auto budget =
      static_cast<std::int64_t>(rate_bps / 8.0 * to_seconds(cfg.frame_period()));
  const std::int64_t x = std::clamp<std::int64_t>(budget - plan.base_bytes, 0, cap);
  if (partition) {
    plan.red_bytes = static_cast<std::int64_t>(std::llround(gamma * static_cast<double>(x)));
    plan.yellow_bytes = x - plan.red_bytes;
  } else {
    plan.yellow_bytes = x;
    plan.red_bytes = 0;
  }
  return plan;
}

FramePlan plan_frame_bytes(const VideoConfig& cfg, std::int64_t frame_id,
                           std::int64_t fgs_bytes, double gamma, bool partition) {
  assert(gamma >= 0.0 && gamma <= 1.0);
  FramePlan plan;
  plan.frame_id = frame_id;
  plan.base_bytes = cfg.base_layer_bytes;
  const std::int64_t x = std::clamp<std::int64_t>(fgs_bytes, 0, cfg.max_fgs_bytes());
  if (partition) {
    plan.red_bytes = static_cast<std::int64_t>(std::llround(gamma * static_cast<double>(x)));
    plan.yellow_bytes = x - plan.red_bytes;
  } else {
    plan.yellow_bytes = x;
    plan.red_bytes = 0;
  }
  return plan;
}

namespace {
/// Appends packets covering `bytes` of payload in `color`; FGS segments get
/// running frame offsets starting at `fgs_offset`.
void emit_segment(const VideoConfig& cfg, const FramePlan& plan, Color color,
                  std::int64_t bytes, std::int64_t fgs_offset, std::vector<Packet>& out) {
  std::int64_t sent = 0;
  while (sent < bytes) {
    const std::int64_t chunk = std::min<std::int64_t>(cfg.packet_size_bytes, bytes - sent);
    Packet pkt;
    pkt.size_bytes = static_cast<std::int32_t>(chunk);
    pkt.color = color;
    pkt.frame_id = plan.frame_id;
    pkt.frame_offset =
        color == Color::kGreen ? -1 : static_cast<std::int32_t>(fgs_offset + sent);
    out.push_back(std::move(pkt));
    sent += chunk;
  }
}
}  // namespace

std::vector<Packet> packetize(const VideoConfig& cfg, const FramePlan& plan) {
  assert(cfg.packet_size_bytes > 0);
  std::vector<Packet> out;
  out.reserve(static_cast<std::size_t>(plan.total_bytes() / cfg.packet_size_bytes + 3));
  emit_segment(cfg, plan, Color::kGreen, plan.base_bytes, 0, out);
  emit_segment(cfg, plan, Color::kYellow, plan.yellow_bytes, 0, out);
  emit_segment(cfg, plan, Color::kRed, plan.red_bytes, plan.yellow_bytes, out);
  return out;
}

}  // namespace pels
