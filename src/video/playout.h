// Playout-deadline evaluation.
//
// The paper's interactive-application argument (§1) is about deadlines:
// "all video frames have strict decoding deadlines", which is why PELS
// refuses retransmissions and FEC. This evaluator turns per-frame arrival
// completion times into the metrics a player cares about: how many frames
// met their deadline for a given startup (buffering) delay, and the minimal
// startup delay that would have made the whole sequence play cleanly.
//
// Frame f's deadline is  t0 + startup_delay + f * frame_period,  where t0 is
// the arrival completion time of frame `base_frame` (the frame that starts
// playback).
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace pels {

/// Arrival completion of one frame: when its last *useful* byte arrived.
struct FrameArrival {
  std::int64_t frame_id = 0;
  SimTime completed_at = 0;
  bool decodable = true;  // base layer intact; undecodable frames are late by definition
};

struct PlayoutReport {
  std::int64_t frames_total = 0;
  std::int64_t frames_on_time = 0;
  std::int64_t frames_late = 0;
  SimTime max_lateness = 0;          // worst deadline miss
  /// Minimal startup delay that would have made every decodable frame punctual.
  SimTime required_startup = 0;
};

/// Evaluates a frame arrival sequence against a playout schedule.
///
/// `arrivals` must be ordered by frame_id (gaps allowed: missing frames are
/// simply not counted; mark base-layer-lost frames `decodable = false` to
/// count them as late). Playback time zero is the completion of the first
/// decodable frame.
PlayoutReport evaluate_playout(const std::vector<FrameArrival>& arrivals,
                               SimTime frame_period, SimTime startup_delay);

}  // namespace pels
