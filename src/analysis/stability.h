// Stability and equilibrium analysis of the paper's controllers (Lemmas 2-6).
//
// Provides pure iterate-map simulators for the gamma controller (eq. (4)/(5))
// and MKC (eq. (8)-(9)), with and without feedback delay, plus predicates and
// equilibrium formulas. Tests use these to check the lemmas numerically; the
// Figure 5 bench uses the trajectories directly.
#pragma once

#include <cstdint>
#include <vector>

namespace pels {

/// Trajectory of gamma(k) under eq. (4) with constant loss p, optionally with
/// a constant feedback delay D (eq. (5): the update uses state and loss from
/// k - D). `steps` iterations starting from gamma0; no clamping, so unstable
/// gains genuinely diverge as in Fig. 5.
std::vector<double> gamma_trajectory(double gamma0, double p, double sigma, double p_thr,
                                     int steps, int delay = 1);

/// True if the gamma trajectory remains bounded and converges to the fixed
/// point p/p_thr within `tolerance` by the end of `steps` iterations.
bool gamma_converges(double gamma0, double p, double sigma, double p_thr, int steps,
                     int delay = 1, double tolerance = 1e-3);

/// Lemma 2/3: the gamma controller is stable iff 0 < sigma < 2 (any delay).
bool gamma_stable_gain(double sigma);

/// Synchronous multi-flow MKC iterate (eq. (8) with router feedback (9)):
/// every flow sees the same loss p(k) = (sum r_j - C) / sum r_j each step.
/// Returns each flow's rate trajectory. `delay` >= 1 models D_i in steps
/// (homogeneous); rates are floored at `min_rate`.
struct MkcTrajectory {
  std::vector<std::vector<double>> rates;  // [flow][step]
  std::vector<double> loss;                // p(k) per step
};
MkcTrajectory mkc_trajectory(std::vector<double> initial_rates, double capacity,
                             double alpha, double beta, int steps, int delay = 1,
                             double min_rate = 1.0);

/// Lemma 5: MKC is stable under heterogeneous delays iff 0 < beta < 2.
bool mkc_stable_gain(double beta);

/// Lemma 6: stationary per-flow rate r* = C/N + alpha/beta.
double mkc_stationary_rate(double capacity, int flows, double alpha, double beta);

/// Stationary aggregate loss at the MKC equilibrium:
/// p* = (N alpha/beta) / (C + N alpha/beta). This is the steady packet loss
/// the gamma controller sees (used to pick flow counts for Fig. 7).
double mkc_stationary_loss(double capacity, int flows, double alpha, double beta);

/// Number of flows needed to push the stationary loss to at least `target`.
int mkc_flows_for_loss(double capacity, double alpha, double beta, double target);

}  // namespace pels
