#include "analysis/burstiness.h"

#include <algorithm>
#include <unordered_set>

namespace pels {

void BurstAnalyzer::add(bool lost) {
  ++packets_;
  if (lost) {
    ++lost_;
    ++open_burst_;
  } else if (open_burst_ > 0) {
    bursts_.push_back(open_burst_);
    open_burst_ = 0;
  }
}

void BurstAnalyzer::finish() {
  if (open_burst_ > 0) {
    bursts_.push_back(open_burst_);
    open_burst_ = 0;
  }
}

double BurstAnalyzer::loss_rate() const {
  return packets_ == 0 ? 0.0 : static_cast<double>(lost_) / static_cast<double>(packets_);
}

double BurstAnalyzer::mean_burst_length() const {
  if (bursts_.empty()) return 0.0;
  std::int64_t total = 0;
  for (auto b : bursts_) total += b;
  return static_cast<double>(total) / static_cast<double>(bursts_.size());
}

double BurstAnalyzer::max_burst_length() const {
  return bursts_.empty() ? 0.0
                         : static_cast<double>(*std::max_element(bursts_.begin(), bursts_.end()));
}

double BurstAnalyzer::ccdf(std::int64_t k) const {
  if (bursts_.empty()) return 0.0;
  std::int64_t above = 0;
  for (auto b : bursts_)
    if (b > k) ++above;
  return static_cast<double>(above) / static_cast<double>(bursts_.size());
}

std::vector<bool> loss_outcomes_from_trace(const PacketTracer& tracer, FlowId flow,
                                           Color color) {
  // A packet is lost iff its uid appears in a drop record. Build the drop
  // set first, then walk enqueues in order.
  std::unordered_set<std::uint64_t> dropped;
  for (const auto& rec : tracer.records()) {
    if (rec.event == TraceEvent::kDrop && rec.flow == flow && rec.color == color) {
      dropped.insert(rec.uid);
    }
  }
  std::vector<bool> outcomes;
  for (const auto& rec : tracer.records()) {
    if (rec.event == TraceEvent::kEnqueue && rec.flow == flow && rec.color == color) {
      outcomes.push_back(dropped.count(rec.uid) != 0);
    }
  }
  return outcomes;
}

}  // namespace pels
