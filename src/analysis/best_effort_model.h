// Closed-form models of best-effort and PELS streaming (paper §3, §4.3).
//
// Under i.i.d. Bernoulli packet loss p, for an FGS frame of H packets the
// number of *useful* packets (the consecutive received prefix) has
// expectation
//
//   E[Y] = (1-p)/p * (1 - (1-p)^H)                                (eq. (2))
//
// and, for a random frame-size distribution {q_k},
//
//   E[Y] = (1-p)/p * sum_k (1 - (1-p)^k) q_k                      (eq. (1))
//
// Utility — the fraction of *received* packets that are useful — is
//
//   U = E[Y] / (H(1-p)) = (1 - (1-p)^H) / (Hp)                    (eq. (3))
//
// while the optimal preferential scheme keeps U = 1 for any p, H (§3.2), and
// PELS with threshold p_thr is lower-bounded by
//
//   U >= (1 - p/p_thr) / (1 - p)                                  (eq. (6)).
#pragma once

#include <cstdint>
#include <span>

#include "util/rng.h"

namespace pels {

/// E[Y] for constant frame size H (eq. (2)). Requires 0 <= p <= 1, H >= 1;
/// the p -> 0 limit (E[Y] -> H) is handled explicitly.
double expected_useful_packets(double p, std::int64_t frame_packets);

/// E[Y] for a frame-size PMF over sizes 1..q.size() where q[k-1] = P(H = k)
/// (eq. (1)). The PMF need not be normalized; it is treated as weights.
double expected_useful_packets_pmf(double p, std::span<const double> pmf);

/// Best-effort utility (eq. (3)). 1.0 in the p -> 0 limit.
double best_effort_utility(double p, std::int64_t frame_packets);

/// Expected useful packets under the optimal preferential drop pattern:
/// all H(1-p) received packets are consecutive (§3.2).
double optimal_useful_packets(double p, std::int64_t frame_packets);

/// PELS utility lower bound (eq. (6)); requires p < p_thr <= 1 and p < 1.
double pels_utility_bound(double p, double p_thr);

/// Monte-Carlo estimate of E[Y]: simulates `trials` frames of `frame_packets`
/// packets through Bernoulli(p) loss and averages the useful prefix length.
/// Used to validate the closed forms (paper Table 1's "Simulations" column).
double simulate_useful_packets(Rng& rng, double p, std::int64_t frame_packets,
                               std::int64_t trials);

/// Saturation limit of E[Y] as H -> infinity: (1-p)/p.
double useful_packets_limit(double p);

}  // namespace pels
