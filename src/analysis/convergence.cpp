#include "analysis/convergence.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

std::size_t settling_index(std::span<const double> values, double target, double band) {
  std::size_t settled_from = values.size();
  for (std::size_t i = values.size(); i-- > 0;) {
    if (std::abs(values[i] - target) <= band) {
      settled_from = i;
    } else {
      break;
    }
  }
  return settled_from;
}

SimTime settling_time(const TimeSeries& series, double target, double band) {
  SimTime settled = kTimeNever;
  for (std::size_t i = series.size(); i-- > 0;) {
    if (std::abs(series[i].value - target) <= band) {
      settled = series[i].t;
    } else {
      break;
    }
  }
  return settled;
}

double tail_oscillation(std::span<const double> values, double target, double tail) {
  assert(tail > 0.0 && tail <= 1.0);
  if (values.empty()) return 0.0;
  const auto start = static_cast<std::size_t>(
      static_cast<double>(values.size()) * (1.0 - tail));
  double worst = 0.0;
  for (std::size_t i = start; i < values.size(); ++i)
    worst = std::max(worst, std::abs(values[i] - target));
  return worst;
}

}  // namespace pels
