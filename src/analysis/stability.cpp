#include "analysis/stability.h"

#include <cassert>
#include <cmath>

namespace pels {

std::vector<double> gamma_trajectory(double gamma0, double p, double sigma, double p_thr,
                                     int steps, int delay) {
  assert(steps > 0 && delay >= 1);
  assert(p_thr > 0.0);
  std::vector<double> g;
  g.reserve(static_cast<std::size_t>(steps) + 1);
  g.push_back(gamma0);
  for (int k = 1; k <= steps; ++k) {
    // eq. (5): gamma(k) = gamma(k-D) + sigma * (p/p_thr - gamma(k-D)).
    const int src = std::max(0, k - delay);
    const double prev = g[static_cast<std::size_t>(src)];
    g.push_back(prev + sigma * (p / p_thr - prev));
  }
  return g;
}

bool gamma_converges(double gamma0, double p, double sigma, double p_thr, int steps,
                     int delay, double tolerance) {
  const auto g = gamma_trajectory(gamma0, p, sigma, p_thr, steps, delay);
  const double fixed_point = p / p_thr;
  for (double v : g)
    if (!std::isfinite(v)) return false;
  return std::abs(g.back() - fixed_point) <= tolerance;
}

bool gamma_stable_gain(double sigma) { return sigma > 0.0 && sigma < 2.0; }

MkcTrajectory mkc_trajectory(std::vector<double> initial_rates, double capacity,
                             double alpha, double beta, int steps, int delay,
                             double min_rate) {
  assert(!initial_rates.empty());
  assert(capacity > 0.0 && steps > 0 && delay >= 1);
  const std::size_t n = initial_rates.size();
  MkcTrajectory out;
  out.rates.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) out.rates[i].push_back(initial_rates[i]);
  out.loss.reserve(static_cast<std::size_t>(steps));

  for (int k = 0; k < steps; ++k) {
    // Router feedback (eq. (9)) from the rates `delay` steps back.
    const int src = std::max(0, k - (delay - 1));
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += out.rates[i][static_cast<std::size_t>(src)];
    const double p = (total - capacity) / total;
    out.loss.push_back(p);
    for (std::size_t i = 0; i < n; ++i) {
      const double r_old = out.rates[i][static_cast<std::size_t>(src)];
      double r_new = r_old + alpha - beta * r_old * p;
      if (r_new < min_rate) r_new = min_rate;
      out.rates[i].push_back(r_new);
    }
  }
  return out;
}

bool mkc_stable_gain(double beta) { return beta > 0.0 && beta < 2.0; }

double mkc_stationary_rate(double capacity, int flows, double alpha, double beta) {
  assert(flows > 0 && beta > 0.0);
  return capacity / static_cast<double>(flows) + alpha / beta;
}

double mkc_stationary_loss(double capacity, int flows, double alpha, double beta) {
  assert(flows > 0 && beta > 0.0);
  const double overshoot = static_cast<double>(flows) * alpha / beta;
  return overshoot / (capacity + overshoot);
}

int mkc_flows_for_loss(double capacity, double alpha, double beta, double target) {
  assert(target > 0.0 && target < 1.0);
  // p* = N a/b / (C + N a/b) >= target  <=>  N >= target*C / ((1-target) a/b).
  const double per_flow = alpha / beta;
  return static_cast<int>(std::ceil(target * capacity / ((1.0 - target) * per_flow)));
}

}  // namespace pels
