// Loss burst-length analysis (paper §3 premise).
//
// The paper's best-effort model assumes i.i.d. Bernoulli loss, i.e. loss
// bursts with geometric lengths — "the probability of obtaining a burst of
// length k proportional to e^{-k} (the tail of burst sizes is exponential)"
// — arguing that RED/ECN-style AQM makes drops uniformly random rather than
// the heavy-tailed bursts of FIFO queues. These tools measure burst-length
// distributions from packet outcome streams so tests and benches can verify
// that (a) the best-effort comparator queue really produces geometric
// bursts, and (b) the PELS red band produces the long tail-drop bursts that
// make red survivors nearly useless beyond the prefix.
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"

namespace pels {

/// Accumulates consecutive-loss run lengths from an ordered outcome stream.
class BurstAnalyzer {
 public:
  /// Feeds the next packet outcome in arrival order (true = lost).
  void add(bool lost);
  /// Closes a trailing open burst; call once after the last outcome.
  void finish();

  const std::vector<std::int64_t>& burst_lengths() const { return bursts_; }
  std::size_t burst_count() const { return bursts_.size(); }
  std::int64_t packets_seen() const { return packets_; }
  std::int64_t packets_lost() const { return lost_; }
  double loss_rate() const;
  double mean_burst_length() const;
  double max_burst_length() const;

  /// Empirical P(L > k) over observed bursts.
  double ccdf(std::int64_t k) const;

  /// Mean burst length of i.i.d. Bernoulli(p) loss: 1/(1-p).
  static double geometric_mean_burst(double p) { return 1.0 / (1.0 - p); }

 private:
  std::vector<std::int64_t> bursts_;
  std::int64_t packets_ = 0;
  std::int64_t lost_ = 0;
  std::int64_t open_burst_ = 0;
};

/// Reconstructs the per-packet outcome stream (arrival order, true = lost)
/// of one flow+colour from a queue trace: an enqueue record is a loss iff it
/// is followed by a drop record with the same packet uid.
std::vector<bool> loss_outcomes_from_trace(const PacketTracer& tracer, FlowId flow,
                                           Color color);

}  // namespace pels
