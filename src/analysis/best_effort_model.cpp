#include "analysis/best_effort_model.h"

#include <cassert>
#include <cmath>

namespace pels {

double expected_useful_packets(double p, std::int64_t frame_packets) {
  assert(p >= 0.0 && p <= 1.0);
  assert(frame_packets >= 1);
  const auto h = static_cast<double>(frame_packets);
  if (p <= 0.0) return h;
  if (p >= 1.0) return 0.0;
  return (1.0 - p) / p * (1.0 - std::pow(1.0 - p, h));
}

double expected_useful_packets_pmf(double p, std::span<const double> pmf) {
  assert(p >= 0.0 && p <= 1.0);
  double total_weight = 0.0;
  for (double w : pmf) total_weight += w;
  if (total_weight <= 0.0) return 0.0;
  if (p <= 0.0) {
    // Limit: E[Y] = E[H].
    double mean = 0.0;
    for (std::size_t k = 0; k < pmf.size(); ++k)
      mean += static_cast<double>(k + 1) * pmf[k] / total_weight;
    return mean;
  }
  if (p >= 1.0) return 0.0;
  double sum = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    sum += (1.0 - std::pow(1.0 - p, static_cast<double>(k + 1))) * pmf[k] / total_weight;
  }
  return (1.0 - p) / p * sum;
}

double best_effort_utility(double p, std::int64_t frame_packets) {
  assert(p >= 0.0 && p < 1.0);
  assert(frame_packets >= 1);
  if (p <= 0.0) return 1.0;
  const auto h = static_cast<double>(frame_packets);
  return (1.0 - std::pow(1.0 - p, h)) / (h * p);
}

double optimal_useful_packets(double p, std::int64_t frame_packets) {
  assert(p >= 0.0 && p <= 1.0);
  return static_cast<double>(frame_packets) * (1.0 - p);
}

double pels_utility_bound(double p, double p_thr) {
  assert(p >= 0.0 && p < 1.0);
  assert(p_thr > 0.0 && p_thr <= 1.0);
  assert(p < p_thr && "bound holds only while red absorbs all loss");
  return (1.0 - p / p_thr) / (1.0 - p);
}

double simulate_useful_packets(Rng& rng, double p, std::int64_t frame_packets,
                               std::int64_t trials) {
  assert(trials > 0);
  std::int64_t useful_total = 0;
  for (std::int64_t t = 0; t < trials; ++t) {
    for (std::int64_t i = 0; i < frame_packets; ++i) {
      if (rng.bernoulli(p)) break;  // first loss ends the useful prefix
      ++useful_total;
    }
  }
  return static_cast<double>(useful_total) / static_cast<double>(trials);
}

double useful_packets_limit(double p) {
  assert(p > 0.0 && p <= 1.0);
  return (1.0 - p) / p;
}

}  // namespace pels
