// Convergence metrics for controller trajectories and simulation series.
#pragma once

#include <span>

#include "util/stats.h"
#include "util/time.h"

namespace pels {

/// First index after which every value stays within `band` (absolute) of
/// `target`; returns the sequence length if it never settles.
std::size_t settling_index(std::span<const double> values, double target, double band);

/// First time after which a series stays within `band` of `target`;
/// kTimeNever if it never settles.
SimTime settling_time(const TimeSeries& series, double target, double band);

/// Max |value - target| over the tail fraction of a sequence (steady-state
/// oscillation amplitude). `tail` in (0, 1].
double tail_oscillation(std::span<const double> values, double target, double tail = 0.25);

}  // namespace pels
