// TCP-Reno-like window-based source and sink, used as Internet cross traffic.
//
// Implements enough of Reno/NewReno to load a queue realistically: slow
// start, congestion avoidance, fast retransmit on three duplicate ACKs with
// window halving, NewReno partial-ACK hole retransmission, and a coarse
// retransmission timeout that resets to slow start.
// Packets carry Color::kInternet so PELS routers steer them into the
// Internet queue behind WRR (paper §6.1 allocates them 50% of the
// bottleneck). SACK, delayed ACKs, and Nagle are intentionally omitted — the
// paper's results do not depend on them, only on the queue being kept busy.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "net/host.h"
#include "sim/simulation.h"
#include "util/time.h"

namespace pels {

struct TcpConfig {
  std::int32_t packet_size_bytes = 1000;
  double initial_cwnd = 2.0;       // packets
  double initial_ssthresh = 64.0;  // packets
  SimTime rto = from_millis(1000);
  std::int32_t ack_size_bytes = 40;
};

/// Greedy (always-backlogged) TCP sender.
class TcpLikeSource : public Agent {
 public:
  TcpLikeSource(Simulation& sim, Host& host, FlowId flow, NodeId dst, TcpConfig config = {});
  ~TcpLikeSource() override;

  /// Begins transmission at sim time `at`.
  void start(SimTime at);

  void on_packet(const Packet& pkt) override;

  double cwnd() const { return cwnd_; }
  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t highest_acked() const { return highest_acked_; }
  /// ECN window reductions taken (RFC 3168 ECE reaction, at most one per
  /// window of data) — marks echoed by the sink cut cwnd without a drop.
  std::uint64_t ecn_backoffs() const { return ecn_backoffs_; }

  /// Goodput in bits/s between start and `now` (cumulatively acked data).
  double goodput_bps(SimTime now) const;

 private:
  void send_allowed();
  void transmit(std::uint64_t seq);
  void arm_rto();
  void on_rto();
  void on_ack(std::uint64_t ack_seq, std::uint64_t recv_marked);

  Simulation& sim_;
  Host& host_;
  FlowId flow_;
  NodeId dst_;
  TcpConfig cfg_;

  bool started_ = false;
  SimTime start_time_ = 0;
  std::uint64_t next_seq_ = 0;      // next new sequence to send
  std::uint64_t highest_acked_ = 0; // cumulative: all seq < this are acked
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  EventId rto_event_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t marked_seen_ = 0;        // highest echoed recv_marked counter
  std::uint64_t ecn_recovery_point_ = 0; // next ECE reaction allowed past here
  std::uint64_t ecn_backoffs_ = 0;
};

/// Cumulative-ACK receiver.
class TcpSink : public Agent {
 public:
  TcpSink(Host& host, FlowId flow, NodeId src_node, TcpConfig config = {});

  void on_packet(const Packet& pkt) override;

  std::uint64_t packets_received() const { return received_; }
  std::uint64_t cumulative_ack() const { return cum_ack_; }
  /// Cumulative ECN-marked data packets seen; echoed on every ACK.
  std::uint64_t marked_received() const { return recv_marked_; }

 private:
  Host& host_;
  FlowId flow_;
  NodeId src_node_;
  TcpConfig cfg_;
  std::uint64_t cum_ack_ = 0;  // next expected in-order sequence
  std::unordered_set<std::uint64_t> out_of_order_;
  std::uint64_t received_ = 0;
  std::uint64_t recv_marked_ = 0;
};

}  // namespace pels
