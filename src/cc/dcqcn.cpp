#include "cc/dcqcn.h"

#include <cassert>

#include "cc/flow_table.h"

namespace pels {

DcqcnController::DcqcnController(DcqcnConfig config)
    : cfg_(config),
      rate_(config.initial_rate_bps),
      target_(config.initial_rate_bps),
      alpha_(config.initial_alpha) {
  assert(cfg_.alpha_g > 0.0 && cfg_.alpha_g <= 1.0);
  assert(cfg_.initial_alpha >= 0.0 && cfg_.initial_alpha <= 1.0);
  assert(cfg_.rate_ai_bps > 0.0);
  assert(cfg_.fast_recovery_stages >= 0);
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps &&
         cfg_.initial_rate_bps <= cfg_.max_rate_bps);
}

DcqcnController::DcqcnController(FlowTable& table, FlowSlot slot)
    : cfg_(table.zoo_config().dcqcn),
      table_(&table),
      slot_(slot),
      rate_(cfg_.initial_rate_bps),
      target_(cfg_.initial_rate_bps),
      alpha_(cfg_.initial_alpha) {
  assert(table.is_live(slot) && "table-backed controller needs an allocated slot");
  assert(table.kind(slot) == CcKind::kDcqcn && "slot must be allocated as kDcqcn");
}

double DcqcnController::rate_bps() const {
  return table_ != nullptr ? table_->rate_bps(slot_) : rate_;
}

double DcqcnController::alpha() const {
  return table_ != nullptr ? table_->dcqcn_alpha(slot_) : alpha_;
}

double DcqcnController::target_rate_bps() const {
  return table_ != nullptr ? table_->dcqcn_target(slot_) : target_;
}

std::int32_t DcqcnController::recovery_stage() const {
  return table_ != nullptr ? table_->dcqcn_stage(slot_) : stage_;
}

void DcqcnController::on_loss_interval(double p, SimTime now) {
  // Loss == congestion on a lossy path: react like a marked interval. Clean
  // intervals do not recover here — recovery rides the mark path, so a tick
  // carrying both signals recovers at most once.
  if (p <= 0.0) return;
  if (table_ != nullptr) {
    table_->apply_loss_interval(slot_, p, now);
    return;
  }
  dcqcn_mark_step(cfg_, rate_, target_, alpha_, stage_);
}

void DcqcnController::on_mark_fraction(double f, SimTime now) {
  if (table_ != nullptr) {
    table_->apply_mark_fraction(slot_, f, now);
    return;
  }
  if (f > 0.0) {
    dcqcn_mark_step(cfg_, rate_, target_, alpha_, stage_);
  } else {
    dcqcn_increase_step(cfg_, rate_, target_, alpha_, stage_);
  }
}

void DcqcnController::register_metrics(MetricsRegistry& registry,
                                       const std::string& prefix) {
  CongestionController::register_metrics(registry, prefix);
  registry.add_probe(prefix + ".dcqcn_alpha", [this] { return alpha(); });
  registry.add_probe(prefix + ".dcqcn_target_bps", [this] { return target_rate_bps(); });
}

}  // namespace pels
