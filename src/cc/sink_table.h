// Structure-of-arrays receiver accounting for population-scale drivers
// (ROADMAP "Million-flow scale-out").
//
// At N=10^6 flows, one CountingSink object per flow (registered in each
// host's flow->agent map) is the receiver-side memory wall: ~50+ bytes of
// map node + agent object per flow, scattered across the heap. The
// SinkTable replaces both with two dense u64 columns indexed by the
// driver's flow id, and a single shared Agent adapter installed as every
// host's default agent — per-flow receive state costs 16 bytes, flat.
//
// Thread-safety contract (sharded drivers): record() writes only the cells
// of its packet's flow. Under DomainRunner each flow's packets are
// delivered by exactly one domain worker (the destination host's domain),
// so concurrent workers always write distinct vector elements — the
// single-writer-per-cell discipline needs no locks. Aggregates (per-class
// totals, delivered sums) are computed by scanning at barrier points
// (control output, end of run), never accumulated at delivery time, which
// would race.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/host.h"

namespace pels {

class SinkTable {
 public:
  /// Sizes the table for flow ids [0, flows). Existing counters persist;
  /// new cells start at zero.
  void resize(std::size_t flows) {
    packets_.resize(flows, 0);
    bytes_.resize(flows, 0);
  }

  std::size_t size() const { return packets_.size(); }

  /// Records one delivered packet for `flow`. Hot path: two increments on
  /// adjacent columns, no branches, no locks (see header contract).
  void record(std::size_t flow, std::int32_t packet_bytes) {
    ++packets_[flow];
    bytes_[flow] += static_cast<std::uint64_t>(packet_bytes);
  }

  std::uint64_t packets(std::size_t flow) const { return packets_[flow]; }
  std::uint64_t bytes(std::size_t flow) const { return bytes_[flow]; }

  struct Totals {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  /// Sums delivered packets/bytes over every flow. Linear scan; call at
  /// barrier points, not per delivery.
  Totals totals() const {
    Totals t;
    for (std::size_t i = 0; i < packets_.size(); ++i) {
      t.packets += packets_[i];
      t.bytes += bytes_[i];
    }
    return t;
  }

  /// Heap footprint of the columns (capacity, not size): the bytes/flow
  /// budget reported by bench/many_flows counts this.
  std::size_t memory_bytes() const {
    return packets_.capacity() * sizeof(std::uint64_t) +
           bytes_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
};

/// The one Agent shared by every receiving host: routes a delivered
/// packet's accounting into the SinkTable cell of pkt.flow. Install with
/// Host::set_default_agent — no per-flow registration, no per-host object.
class SinkTableAgent final : public Agent {
 public:
  explicit SinkTableAgent(SinkTable& table) : table_(&table) {}

  void on_packet(const Packet& pkt) override {
    table_->record(static_cast<std::size_t>(pkt.flow), pkt.size_bytes);
  }

 private:
  SinkTable* table_;
};

}  // namespace pels
