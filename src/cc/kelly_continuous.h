// Continuous-feedback Kelly controller (paper eq. (7); Dai & Loguinov 2003):
//
//   dr/dt = alpha - beta * p(t) * r(t)
//
// Provided as a forward-Euler integrator for analysis and tests: its unique
// equilibrium under constant loss p > 0 is r* = alpha / (beta * p), and the
// discrete MKC map reduces to this ODE as the step size shrinks. Not used on
// the packet path (real sources adjust at discrete feedback instants).
#pragma once

#include <cstdint>

namespace pels {

class KellyContinuousController {
 public:
  KellyContinuousController(double alpha, double beta, double initial_rate)
      : alpha_(alpha), beta_(beta), rate_(initial_rate) {}

  /// Advances the ODE by dt seconds under loss p(t) = p.
  void step(double p, double dt) { rate_ += (alpha_ - beta_ * p * rate_) * dt; }

  double rate() const { return rate_; }

  /// Equilibrium rate under constant loss p > 0.
  double equilibrium(double p) const { return alpha_ / (beta_ * p); }

 private:
  double alpha_;
  double beta_;
  double rate_;
};

}  // namespace pels
