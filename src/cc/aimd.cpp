#include "cc/aimd.h"

#include <algorithm>
#include <cassert>

namespace pels {

AimdController::AimdController(AimdConfig config) : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.increase_bps > 0.0);
  assert(cfg_.decrease_factor > 0.0 && cfg_.decrease_factor < 1.0);
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps);
}

void AimdController::on_router_feedback(double p, SimTime now) {
  if (p > 0.0) {
    if (last_decrease_ == kTimeNever || now - last_decrease_ >= cfg_.backoff_guard) {
      rate_ *= cfg_.decrease_factor;
      last_decrease_ = now;
      ++decreases_;
    }
  } else {
    rate_ += cfg_.increase_bps;
  }
  rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

void AimdController::on_mark_fraction(double f, SimTime now) {
  if (f <= 0.0) return;
  if (last_decrease_ == kTimeNever || now - last_decrease_ >= cfg_.backoff_guard) {
    rate_ = std::clamp(rate_ * cfg_.decrease_factor, cfg_.min_rate_bps,
                       cfg_.max_rate_bps);
    last_decrease_ = now;
    ++decreases_;
  }
}

}  // namespace pels
