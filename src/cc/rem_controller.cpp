#include "cc/rem_controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

RemController::RemController(RemControllerConfig config)
    : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.kappa > 0.0);
  assert(cfg_.willingness > 0.0);
  assert(cfg_.phi > 1.0);
}

void RemController::on_router_feedback(double /*p*/, SimTime /*now*/) {
  // Intentionally ignored: a pure REM source reacts to marks only. (The PELS
  // framework still delivers these labels; mixing both signals would
  // double-count congestion.)
}

void RemController::on_mark_fraction(double f, SimTime /*now*/) {
  f = std::clamp(f, 0.0, 0.999999);
  price_ = -std::log1p(-f) / std::log(cfg_.phi);
  rate_ = rate_ + cfg_.kappa * (cfg_.willingness - rate_ * price_);
  rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

}  // namespace pels
