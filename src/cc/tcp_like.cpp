#include "cc/tcp_like.h"

#include <algorithm>
#include <cassert>

namespace pels {

TcpLikeSource::TcpLikeSource(Simulation& sim, Host& host, FlowId flow, NodeId dst,
                             TcpConfig config)
    : sim_(sim),
      host_(host),
      flow_(flow),
      dst_(dst),
      cfg_(config),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {
  assert(cfg_.packet_size_bytes > 0);
  host_.register_agent(flow_, this);
}

TcpLikeSource::~TcpLikeSource() {
  if (rto_event_ != 0) sim_.scheduler().cancel(rto_event_);
  host_.unregister_agent(flow_);
}

void TcpLikeSource::start(SimTime at) {
  sim_.at(at, [this] {
    started_ = true;
    start_time_ = sim_.now();
    send_allowed();
    arm_rto();
  });
}

void TcpLikeSource::send_allowed() {
  // Window check against cumulatively-acked data; dup-acked packets are not
  // subtracted (no SACK), which slightly under-fills during recovery — an
  // acceptable Reno-ish approximation for cross traffic.
  const auto window = static_cast<std::uint64_t>(cwnd_);
  while (next_seq_ < highest_acked_ + window) transmit(next_seq_++);
}

void TcpLikeSource::transmit(std::uint64_t seq) {
  Packet pkt;
  pkt.uid = (static_cast<std::uint64_t>(flow_) << 40) | sent_;
  pkt.flow = flow_;
  pkt.seq = seq;
  pkt.size_bytes = cfg_.packet_size_bytes;
  pkt.color = Color::kInternet;
  pkt.src = host_.id();
  pkt.dst = dst_;
  pkt.created_at = sim_.now();
  ++sent_;
  host_.send(std::move(pkt));
}

void TcpLikeSource::arm_rto() {
  if (rto_event_ != 0) sim_.scheduler().cancel(rto_event_);
  rto_event_ = sim_.after(cfg_.rto, [this] { on_rto(); });
}

void TcpLikeSource::on_rto() {
  rto_event_ = 0;
  if (!started_) return;
  // Coarse timeout: collapse to slow start and resend the missing segment.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = cfg_.initial_cwnd;
  dup_acks_ = 0;
  in_recovery_ = false;
  next_seq_ = std::max(next_seq_, highest_acked_);
  transmit(highest_acked_);
  ++retransmits_;
  arm_rto();
}

void TcpLikeSource::on_packet(const Packet& pkt) {
  if (!pkt.ack) return;
  on_ack(pkt.ack->acked_seq, pkt.ack->recv_marked);
}

void TcpLikeSource::on_ack(std::uint64_t ack_seq, std::uint64_t recv_marked) {
  // ECN-echo (RFC 3168 §6.1.2): the sink's cumulative marked counter
  // advancing means congestion-experienced marks arrived since the last ACK.
  // React like a fast retransmit — halve once — but at most once per window
  // of data, and never while loss recovery already halved.
  bool ece_backoff = false;
  if (recv_marked > marked_seen_) {
    marked_seen_ = recv_marked;
    if (!in_recovery_ && ack_seq >= ecn_recovery_point_) {
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      ecn_recovery_point_ = next_seq_;
      ++ecn_backoffs_;
      ece_backoff = true;
    }
  }
  if (ack_seq > highest_acked_) {
    highest_acked_ = ack_seq;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (highest_acked_ >= recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: the next hole is at the new cumulative point;
        // retransmit it immediately instead of stalling until the RTO.
        transmit(highest_acked_);
        ++retransmits_;
      }
    }
    if (!in_recovery_ && !ece_backoff) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;  // slow start: one packet per ACK
      } else {
        cwnd_ += 1.0 / cwnd_;  // congestion avoidance
      }
    }
    arm_rto();
    send_allowed();
    return;
  }
  // Duplicate cumulative ACK.
  ++dup_acks_;
  if (dup_acks_ == 3 && !in_recovery_) {
    in_recovery_ = true;
    recovery_point_ = next_seq_;
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
    transmit(highest_acked_);  // fast retransmit
    ++retransmits_;
  }
}

double TcpLikeSource::goodput_bps(SimTime now) const {
  const SimTime elapsed = now - start_time_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(highest_acked_) * cfg_.packet_size_bytes * 8.0 /
         to_seconds(elapsed);
}

TcpSink::TcpSink(Host& host, FlowId flow, NodeId src_node, TcpConfig config)
    : host_(host), flow_(flow), src_node_(src_node), cfg_(config) {
  host_.register_agent(flow_, this);
}

void TcpSink::on_packet(const Packet& pkt) {
  if (pkt.ack) return;  // we only expect data here
  ++received_;
  if (pkt.ecn_marked) ++recv_marked_;
  if (pkt.seq == cum_ack_) {
    ++cum_ack_;
    // Absorb any buffered out-of-order segments that are now in order.
    while (out_of_order_.erase(cum_ack_) > 0) ++cum_ack_;
  } else if (pkt.seq > cum_ack_) {
    out_of_order_.insert(pkt.seq);
  }
  Packet ack;
  ack.uid = pkt.uid | (1ULL << 63);
  ack.flow = flow_;
  ack.seq = pkt.seq;
  ack.size_bytes = cfg_.ack_size_bytes;
  ack.color = Color::kInternet;
  ack.src = host_.id();
  ack.dst = src_node_;
  ack.created_at = pkt.created_at;  // preserved so the source could infer RTT
  ack.ack = AckInfo{};
  ack.ack->acked_seq = cum_ack_;
  ack.ack->recv_marked = recv_marked_;
  host_.send(std::move(ack));
}

}  // namespace pels
