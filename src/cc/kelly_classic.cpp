#include "cc/kelly_classic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace pels {

KellyClassicController::KellyClassicController(KellyClassicConfig config)
    : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.kappa > 0.0);
  assert(cfg_.willingness_bps > 0.0);
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps);
}

void KellyClassicController::on_router_feedback(double p, SimTime /*now*/) {
  // The router's p = (R-C)/R can be negative (spare capacity); the classical
  // law expects a nonnegative price, so clamp — spare capacity then grows
  // the rate at the full willingness-to-pay slope kappa*w.
  const double price = std::max(p, 0.0);
  rate_ = rate_ + cfg_.kappa * (cfg_.willingness_bps - rate_ * price);
  rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

std::vector<double> kelly_classic_trajectory(double r0, double capacity, double kappa,
                                             double willingness, int steps, int delay,
                                             double price_steepness) {
  assert(steps > 0 && delay >= 1);
  std::vector<double> r;
  r.reserve(static_cast<std::size_t>(steps) + 1);
  r.push_back(r0);
  for (int k = 0; k < steps; ++k) {
    const int src = std::max(0, k - (delay - 1));
    const double r_delayed = r[static_cast<std::size_t>(src)];
    const double price = std::pow(std::max(r_delayed, 0.0) / capacity, price_steepness);
    // Note: the *current* rate integrates the delayed price signal — the
    // structure whose phase lag destabilizes the loop as D grows.
    double next = r.back() + kappa * (willingness - r_delayed * price);
    if (next < 1.0) next = 1.0;
    r.push_back(next);
  }
  return r;
}

}  // namespace pels
