#include "cc/cubic.h"

#include <cassert>

#include "cc/flow_table.h"

namespace pels {

CubicController::CubicController(CubicConfig config)
    : cfg_(config),
      rate_(cubic_rate_from_cwnd(config, config.initial_cwnd_pkts, 0)),
      cwnd_(config.initial_cwnd_pkts) {
  assert(cfg_.c > 0.0);
  assert(cfg_.beta > 0.0 && cfg_.beta < 1.0);
  assert(cfg_.ecn_beta > 0.0 && cfg_.ecn_beta < 1.0);
  assert(cfg_.mss_bytes > 0.0);
  assert(cfg_.min_cwnd_pkts > 0.0 && cfg_.min_cwnd_pkts <= cfg_.initial_cwnd_pkts);
  assert(cfg_.initial_rtt > 0);
}

CubicController::CubicController(FlowTable& table, FlowSlot slot)
    : cfg_(table.zoo_config().cubic),
      table_(&table),
      slot_(slot),
      rate_(cubic_rate_from_cwnd(cfg_, cfg_.initial_cwnd_pkts, 0)),
      cwnd_(cfg_.initial_cwnd_pkts) {
  assert(table.is_live(slot) && "table-backed controller needs an allocated slot");
  assert(table.kind(slot) == CcKind::kCubic && "slot must be allocated as kCubic");
}

double CubicController::rate_bps() const {
  return table_ != nullptr ? table_->rate_bps(slot_) : rate_;
}

double CubicController::cwnd_pkts() const {
  return table_ != nullptr ? table_->cubic_cwnd(slot_) : cwnd_;
}

double CubicController::w_max() const {
  return table_ != nullptr ? table_->cubic_wmax(slot_) : w_max_;
}

SimTime CubicController::srtt() const {
  return table_ != nullptr ? table_->srtt(slot_) : srtt_;
}

void CubicController::on_loss_interval(double p, SimTime now) {
  if (p <= 0.0) return;
  if (table_ != nullptr) {
    table_->apply_loss_interval(slot_, p, now);
    return;
  }
  cubic_event_step(cfg_, cfg_.beta, now, srtt_, cwnd_, w_max_, k_, epoch_start_, rate_);
}

void CubicController::on_mark_fraction(double f, SimTime now) {
  if (f <= 0.0) return;
  if (table_ != nullptr) {
    table_->apply_mark_fraction(slot_, f, now);
    return;
  }
  cubic_event_step(cfg_, cfg_.ecn_beta, now, srtt_, cwnd_, w_max_, k_, epoch_start_,
                   rate_);
}

void CubicController::on_control_tick(SimTime now) {
  if (table_ != nullptr) {
    table_->apply_control_tick(slot_, now);
    return;
  }
  cubic_tick_step(cfg_, now, srtt_, cwnd_, w_max_, k_, epoch_start_, rate_);
}

void CubicController::set_rtt(SimTime rtt) {
  if (rtt <= 0) return;
  if (table_ != nullptr) {
    table_->apply_rtt(slot_, rtt);
    return;
  }
  srtt_ = rtt;
}

void CubicController::register_metrics(MetricsRegistry& registry,
                                       const std::string& prefix) {
  CongestionController::register_metrics(registry, prefix);
  registry.add_probe(prefix + ".cubic_cwnd_pkts", [this] { return cwnd_pkts(); });
  registry.add_probe(prefix + ".cubic_wmax_pkts", [this] { return w_max(); });
}

}  // namespace pels
