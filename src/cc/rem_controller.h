// REM-responsive source controller (Lapsley & Low, the paper's §2.2 ref
// [20]): utility-maximizing rate control driven by ECN mark fractions
// instead of loss.
//
// The REM router marks with probability 1 - phi^(-price); prices sum along
// the path, so from an observed mark fraction f the source recovers the path
// price  p = -log_phi(1 - f)  and ascends its net utility
// w log r - r p via
//
//   r(k+1) = r(k) + kappa * (w - r(k) * p(k))
//
// whose fixed point is r* = w/p*: weighted proportional fairness with zero
// packet loss (congestion is signalled, never enforced).
#pragma once

#include "cc/controller.h"

namespace pels {

struct RemControllerConfig {
  double kappa = 0.15;           // gain
  double willingness = 100e3;    // w: bandwidth-price budget (bits/s * price)
  double phi = 2.0;              // must match the routers' marking base
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
};

class RemController : public CongestionController {
 public:
  explicit RemController(RemControllerConfig config);

  double rate_bps() const override { return rate_; }
  /// Router loss feedback is ignored: REM signals through marks.
  void on_router_feedback(double p, SimTime now) override;
  void on_mark_fraction(double f, SimTime now) override;
  const char* name() const override { return "REM"; }

  /// Path price recovered from the last mark fraction.
  double estimated_price() const { return price_; }

  const RemControllerConfig& config() const { return cfg_; }

 private:
  RemControllerConfig cfg_;
  double rate_;
  double price_ = 0.0;
};

}  // namespace pels
