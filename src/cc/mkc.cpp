#include "cc/mkc.h"

#include <algorithm>
#include <cassert>

namespace pels {

MkcController::MkcController(MkcConfig config) : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.alpha_bps > 0.0);
  assert(cfg_.beta > 0.0 && cfg_.beta < 2.0 && "MKC is stable only for beta in (0, 2)");
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps);
  assert(cfg_.initial_rate_bps <= cfg_.max_rate_bps);
}

void MkcController::on_router_feedback(double p, SimTime /*now*/) {
  // Eq. (8). p < 0 (underutilization) makes the multiplicative term positive,
  // producing the exponential ramp toward capacity; p > 0 produces the
  // proportional back-off.
  double growth_cap = cfg_.max_growth_factor;
  if (silent_) {
    silent_ = false;
    recovery_left_ = cfg_.recovery_updates;
  }
  if (recovery_left_ > 0) {
    growth_cap = std::min(growth_cap, cfg_.recovery_growth_factor);
    --recovery_left_;
  }
  double next = rate_ + cfg_.alpha_bps - cfg_.beta * rate_ * p;
  next = std::min(next, rate_ * growth_cap);
  rate_ = std::clamp(next, cfg_.min_rate_bps, cfg_.max_rate_bps);
  ++updates_;
}

void MkcController::register_metrics(MetricsRegistry& registry, const std::string& prefix) {
  CongestionController::register_metrics(registry, prefix);
  registry.add_probe(prefix + ".mkc_updates", [this] { return static_cast<double>(updates_); });
  registry.add_probe(prefix + ".silence_ticks",
                     [this] { return static_cast<double>(silence_ticks_); });
  registry.add_probe(prefix + ".in_silence", [this] { return silent_ ? 1.0 : 0.0; });
}

void MkcController::on_feedback_silence(SimTime /*now*/) {
  silent_ = true;
  ++silence_ticks_;
  const double floor = std::max(cfg_.min_rate_bps, cfg_.silence_floor_bps);
  rate_ = std::max(std::min(rate_, floor), rate_ * cfg_.silence_decay);
}

}  // namespace pels
