#include "cc/mkc.h"

#include <algorithm>
#include <cassert>

namespace pels {

MkcController::MkcController(MkcConfig config) : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.alpha_bps > 0.0);
  assert(cfg_.beta > 0.0 && cfg_.beta < 2.0 && "MKC is stable only for beta in (0, 2)");
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps);
  assert(cfg_.initial_rate_bps <= cfg_.max_rate_bps);
}

void MkcController::on_router_feedback(double p, SimTime /*now*/) {
  // Eq. (8). p < 0 (underutilization) makes the multiplicative term positive,
  // producing the exponential ramp toward capacity; p > 0 produces the
  // proportional back-off.
  double next = rate_ + cfg_.alpha_bps - cfg_.beta * rate_ * p;
  next = std::min(next, rate_ * cfg_.max_growth_factor);
  rate_ = std::clamp(next, cfg_.min_rate_bps, cfg_.max_rate_bps);
  ++updates_;
}

}  // namespace pels
