#include "cc/mkc.h"

#include <cassert>

#include "cc/flow_table.h"

namespace pels {

MkcController::MkcController(MkcConfig config) : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.alpha_bps > 0.0);
  assert(cfg_.beta > 0.0 && cfg_.beta < 2.0 && "MKC is stable only for beta in (0, 2)");
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps);
  assert(cfg_.initial_rate_bps <= cfg_.max_rate_bps);
}

MkcController::MkcController(FlowTable& table, FlowSlot slot)
    : cfg_(table.mkc_config()), table_(&table), slot_(slot), rate_(cfg_.initial_rate_bps) {
  assert(table.is_live(slot) && "table-backed controller needs an allocated slot");
}

double MkcController::rate_bps() const {
  return table_ != nullptr ? table_->rate_bps(slot_) : rate_;
}

std::uint64_t MkcController::updates() const {
  return table_ != nullptr ? table_->mkc_updates(slot_) : updates_;
}

std::uint64_t MkcController::silence_ticks() const {
  return table_ != nullptr ? table_->silence_ticks(slot_) : silence_ticks_;
}

bool MkcController::in_silence() const {
  return table_ != nullptr ? table_->in_silence(slot_) : silent_;
}

void MkcController::on_router_feedback(double p, SimTime /*now*/) {
  if (table_ != nullptr) {
    table_->apply_feedback(slot_, p);
    return;
  }
  mkc_feedback_step(cfg_, p, rate_, silent_, recovery_left_, updates_);
}

void MkcController::on_feedback_silence(SimTime /*now*/) {
  if (table_ != nullptr) {
    table_->apply_silence(slot_);
    return;
  }
  mkc_silence_step(cfg_, rate_, silent_, silence_ticks_);
}

void MkcController::register_metrics(MetricsRegistry& registry, const std::string& prefix) {
  CongestionController::register_metrics(registry, prefix);
  registry.add_probe(prefix + ".mkc_updates", [this] { return static_cast<double>(updates()); });
  registry.add_probe(prefix + ".silence_ticks",
                     [this] { return static_cast<double>(silence_ticks()); });
  registry.add_probe(prefix + ".in_silence", [this] { return in_silence() ? 1.0 : 0.0; });
}

}  // namespace pels
