// SCReAM-lite media-rate controller (Johansson, RFC 8298 / EricssonResearch
// scream), interval port.
//
// A self-clocked media controller shapes a *reference rate* the layered
// source encodes against. The congestion signal is the sender-measured
// queuing delay qdelay = sRTT - minRTT against a target: below target the
// reference rate ramps (scaled by the remaining headroom so the approach is
// asymptotic, like ScreamV2Tx's ramp-up speed limit); above target it shrinks
// in proportion to the overshoot. Losses and ECN marks apply additional
// multiplicative back-offs, scaled by the observed fraction so a single
// marked packet does not crater a clean interval. The congestion window this
// rate implies (bytes in flight at the current sRTT) is exposed for
// inspection; the PELS pacing layer enforces the rate itself.
//
// Kernel contract (see cc/mkc.h): free inline kernels on caller-owned
// scalars; ScreamLiteController applies them to members, FlowTable to its
// columns — bit-for-bit identical (tests/cc_zoo_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>

#include "cc/controller.h"

namespace pels {

class FlowTable;
using FlowSlot = std::uint32_t;

struct ScreamLiteConfig {
  SimTime qdelay_target = from_millis(60);
  double increase_bps = 60e3;   // ramp per tick at full headroom
  double decrease_gain = 0.5;   // proportional shrink per unit overshoot
  double loss_beta = 0.7;       // floor of the per-tick loss back-off factor
  double mark_beta = 0.9;       // floor of the per-tick ECN back-off factor
  double max_tick_growth = 1.5; // ramp cap (mirrors MKC's growth cap)
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
};

/// RTT sample: maintain the propagation-delay baseline.
inline void scream_rtt_step(SimTime rtt, SimTime& min_rtt) {
  if (rtt > 0 && (min_rtt <= 0 || rtt < min_rtt)) min_rtt = rtt;
}

/// Loss back-off, scaled by the observed loss fraction and floored at
/// loss_beta: rate *= max(loss_beta, 1 - p).
inline void scream_loss_step(const ScreamLiteConfig& cfg, double p, double& rate) {
  if (p <= 0.0) return;
  rate = std::max(rate * std::max(cfg.loss_beta, 1.0 - p), cfg.min_rate_bps);
}

/// ECN back-off, gentler than loss: rate *= max(mark_beta, 1 - f).
inline void scream_mark_step(const ScreamLiteConfig& cfg, double f, double& rate) {
  if (f <= 0.0) return;
  rate = std::max(rate * std::max(cfg.mark_beta, 1.0 - f), cfg.min_rate_bps);
}

/// One control tick of reference-rate shaping against the qdelay target.
inline void scream_tick_step(const ScreamLiteConfig& cfg, SimTime srtt, SimTime min_rtt,
                             double& rate) {
  if (srtt <= 0 || min_rtt <= 0) return;  // no delay estimate yet
  const double qdelay = to_seconds(srtt - min_rtt);
  const double target = to_seconds(cfg.qdelay_target);
  if (qdelay < target) {
    const double headroom = 1.0 - qdelay / target;  // in (0, 1]
    const double next = rate + cfg.increase_bps * headroom;
    rate = std::clamp(std::min(next, rate * cfg.max_tick_growth), cfg.min_rate_bps,
                      cfg.max_rate_bps);
  } else {
    const double over = std::min(qdelay / target - 1.0, 1.0);
    rate = std::clamp(rate * (1.0 - cfg.decrease_gain * over), cfg.min_rate_bps,
                      cfg.max_rate_bps);
  }
}

class ScreamLiteController : public CongestionController {
 public:
  explicit ScreamLiteController(ScreamLiteConfig config);
  /// Table-backed controller (see cc/flow_table.h): hot state lives in the
  /// table's columns at `slot`, which must be a kScream slot.
  ScreamLiteController(FlowTable& table, FlowSlot slot);

  double rate_bps() const override;
  /// Router labels are MKC's signal; SCReAM steers by delay/loss/marks.
  void on_router_feedback(double /*p*/, SimTime /*now*/) override {}
  void on_loss_interval(double p, SimTime now) override;
  void on_mark_fraction(double f, SimTime now) override;
  void on_control_tick(SimTime now) override;
  void set_rtt(SimTime rtt) override;
  const char* name() const override { return "SCReAM-lite"; }
  void register_metrics(MetricsRegistry& registry, const std::string& prefix) override;

  SimTime srtt() const;
  SimTime min_rtt() const;
  /// Congestion window the reference rate implies at the current sRTT
  /// (bytes in flight); 0 until the first RTT sample.
  double cwnd_bytes() const;

  const ScreamLiteConfig& config() const { return cfg_; }

 private:
  ScreamLiteConfig cfg_;
  FlowTable* table_ = nullptr;  // non-null: state lives in the table columns
  FlowSlot slot_ = 0;
  double rate_;
  SimTime srtt_ = 0;
  SimTime min_rtt_ = 0;
};

}  // namespace pels
