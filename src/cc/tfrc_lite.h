// TFRC-lite: simplified equation-based rate control (Floyd & Padhye 2000).
//
// Tracks a smoothed loss-event rate from receiver-measured interval losses
// and sets the sending rate to the simplified TCP-friendly response function
//
//   r = s * sqrt(3/2) / (RTT * sqrt(p))
//
// capped by a slow-start-style doubling when no loss has been observed.
// Included as the second non-MKC controller for the CC-independence ablation
// (paper §5 states PELS works with "any congestion control including TFRC").
#pragma once

#include "cc/controller.h"

namespace pels {

struct TfrcLiteConfig {
  double packet_size_bytes = 500.0;  // s in the response function
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
  double loss_ewma = 0.25;  // smoothing gain for the loss-event rate
  SimTime initial_rtt = from_millis(100);
};

class TfrcLiteController : public CongestionController {
 public:
  explicit TfrcLiteController(TfrcLiteConfig config);

  double rate_bps() const override { return rate_; }
  /// Router feedback only gates slow-start doubling (p <= 0 means idle
  /// capacity); the rate itself follows the response function.
  void on_router_feedback(double p, SimTime now) override;
  void on_loss_interval(double p, SimTime now) override;
  /// ECN marks are congestion events for the response function (RFC 8087
  /// §4.1): a marked interval folds into the same smoothed loss-event rate
  /// as a lossy one, so marked-not-dropped packets still reduce the rate.
  void on_mark_fraction(double f, SimTime now) override;
  void set_rtt(SimTime rtt) override;
  const char* name() const override { return "TFRC-lite"; }

  double smoothed_loss() const { return smoothed_loss_; }

 private:
  void recompute();

  TfrcLiteConfig cfg_;
  double rate_;
  double smoothed_loss_ = 0.0;
  bool seen_loss_ = false;
  SimTime rtt_;
};

}  // namespace pels
