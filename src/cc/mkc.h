// Max-min Kelly Control (paper eq. (8); Zhang/Kang/Loguinov 2003).
//
//   r_i(k) = r_i(k - D_i) + alpha - beta * r_i(k - D_i) * p_l(k - D_i<-)
//
// Feedback p_l comes from the most-congested router on the path (max-min
// semantics enforced by the label override rule). The discrete map has a
// single stationary point r* = C/N + alpha/beta, converges exponentially, is
// stable for 0 < beta < 2 under arbitrary heterogeneous delays (Lemma 5), and
// does not penalize long-RTT flows (Lemma 6).
//
// The update maps live as free inline kernels (mkc_feedback_step /
// mkc_silence_step) operating on caller-owned scalars: MkcController applies
// them to its own members, FlowTable applies the same code to its contiguous
// columns, so the batch path is bit-for-bit identical to per-object control.
#pragma once

#include <algorithm>
#include <cstdint>

#include "cc/controller.h"

namespace pels {

class FlowTable;
using FlowSlot = std::uint32_t;

struct MkcConfig {
  double alpha_bps = 20e3;    // additive gain per feedback epoch (20 kb/s)
  double beta = 0.5;          // multiplicative gain; stable iff 0 < beta < 2
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;  // floor keeps the control loop alive
  double max_rate_bps = 1e9;
  /// Cap on the per-update growth factor. On a near-idle link p saturates at
  /// the feedback floor and the raw map multiplies the rate by 1 + beta*|p|
  /// per epoch; because the router's rate estimate lags by a couple of
  /// intervals, an uncapped ramp overshoots far past capacity before the
  /// feedback catches up. Doubling per epoch still claims an idle link
  /// exponentially (128 kb/s -> 2 mb/s in four epochs, the paper's "~0.1 s").
  double max_growth_factor = 2.0;

  // --- feedback-silence degradation (on_feedback_silence) ---------------
  /// Multiplicative rate cut per silent control tick while the source's
  /// feedback watchdog fires. Eq. (8) is an open loop without p: holding the
  /// last rate congests a path whose capacity may have collapsed unseen.
  double silence_decay = 0.85;
  /// The decay stops at this floor (not min_rate_bps): enough to keep the
  /// base layer and the feedback path itself alive, so recovery is observed
  /// the moment labels flow again.
  double silence_floor_bps = 64e3;
  /// Re-probe after silence ends: for the first recovery_updates feedback
  /// updates the growth cap tightens to this factor. The first labels after
  /// an outage describe a path whose state (capacity, competing flows) the
  /// controller no longer knows; jumping back at full ramp overshoots it.
  double recovery_growth_factor = 1.5;
  int recovery_updates = 8;
};

/// One MKC feedback update (eq. (8)) on caller-owned state. p < 0
/// (underutilization) makes the multiplicative term positive, producing the
/// exponential ramp toward capacity; p > 0 produces the proportional
/// back-off. Fresh feedback ends a silence episode and arms the tightened
/// recovery growth cap.
inline void mkc_feedback_step(const MkcConfig& cfg, double p, double& rate,
                              bool& silent, std::int32_t& recovery_left,
                              std::uint64_t& updates) {
  double growth_cap = cfg.max_growth_factor;
  if (silent) {
    silent = false;
    recovery_left = cfg.recovery_updates;
  }
  if (recovery_left > 0) {
    growth_cap = std::min(growth_cap, cfg.recovery_growth_factor);
    --recovery_left;
  }
  double next = rate + cfg.alpha_bps - cfg.beta * rate * p;
  next = std::min(next, rate * growth_cap);
  rate = std::clamp(next, cfg.min_rate_bps, cfg.max_rate_bps);
  ++updates;
}

/// One silence tick: multiplicative decay toward the silence floor while the
/// source's feedback watchdog fires.
inline void mkc_silence_step(const MkcConfig& cfg, double& rate, bool& silent,
                             std::uint64_t& silence_ticks) {
  silent = true;
  ++silence_ticks;
  const double floor = std::max(cfg.min_rate_bps, cfg.silence_floor_bps);
  rate = std::max(std::min(rate, floor), rate * cfg.silence_decay);
}

class MkcController : public CongestionController {
 public:
  explicit MkcController(MkcConfig config);
  /// Table-backed controller: all hot state (rate, silence, recovery) lives
  /// in `table`'s contiguous columns at `slot`; this object is a thin view
  /// satisfying the CongestionController interface. The table must outlive
  /// the controller and the slot must stay allocated.
  MkcController(FlowTable& table, FlowSlot slot);

  double rate_bps() const override;
  void on_router_feedback(double p, SimTime now) override;
  void on_feedback_silence(SimTime now) override;
  const char* name() const override { return "MKC"; }
  void register_metrics(MetricsRegistry& registry, const std::string& prefix) override;

  /// Number of feedback updates applied (one per fresh epoch).
  std::uint64_t updates() const;
  /// Number of silence ticks absorbed (rate decays applied).
  std::uint64_t silence_ticks() const;
  /// True between a silence tick and the next fresh feedback.
  bool in_silence() const;

  const MkcConfig& config() const { return cfg_; }

  /// Stationary rate of eq. (10): C/N + alpha/beta.
  static double stationary_rate(double capacity_bps, int flows, const MkcConfig& cfg) {
    return capacity_bps / flows + cfg.alpha_bps / cfg.beta;
  }

 private:
  MkcConfig cfg_;
  FlowTable* table_ = nullptr;  // non-null: state lives in the table columns
  FlowSlot slot_ = 0;
  double rate_;
  std::uint64_t updates_ = 0;
  std::uint64_t silence_ticks_ = 0;
  bool silent_ = false;
  std::int32_t recovery_left_ = 0;
};

}  // namespace pels
