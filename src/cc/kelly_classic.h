// Classical discrete Kelly control (Johari & Tan 2001 form), included as the
// motivating *negative* baseline for MKC.
//
//   r(k+1) = r(k) + kappa * (w - r(k - D) * p(k - D))
//
// where w is the flow's willingness-to-pay and p the path price (loss).
// The paper (§5.1) selects MKC over this classical form precisely because
// "the classical discrete Kelly control ... shows stability problems when
// the feedback delay becomes large": its stability condition tightens with
// the feedback delay D (kappa < ~pi/(2D) in the linearized single-link
// case), whereas MKC's 0 < beta < 2 is delay-independent (Lemma 5).
// bench/ablation_kelly_vs_mkc reproduces exactly that contrast.
#pragma once

#include <vector>

#include "cc/controller.h"

namespace pels {

struct KellyClassicConfig {
  double kappa = 0.5;              // gain
  double willingness_bps = 40e3;   // w: target spend rate (r* = w/p*)
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
};

class KellyClassicController : public CongestionController {
 public:
  explicit KellyClassicController(KellyClassicConfig config);

  double rate_bps() const override { return rate_; }
  void on_router_feedback(double p, SimTime now) override;
  const char* name() const override { return "Kelly-classic"; }

  const KellyClassicConfig& config() const { return cfg_; }

 private:
  KellyClassicConfig cfg_;
  double rate_;
};

/// Pure iterate of the classical Kelly map for one flow against a
/// single-link price p(k) = (r(k)/C)^b (a standard congestion-price law with
/// steepness b), with feedback delay D steps. Returns the rate trajectory.
/// Used by tests/benches to exhibit the delay-induced instability.
std::vector<double> kelly_classic_trajectory(double r0, double capacity, double kappa,
                                             double willingness, int steps, int delay,
                                             double price_steepness = 4.0);

}  // namespace pels
