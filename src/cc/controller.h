// Congestion-controller interface used by PELS sources.
//
// PELS is deliberately independent of the congestion controller (paper §5):
// the source feeds whichever controller it owns with (a) epoch-filtered
// router feedback p from ACK labels and (b) receiver-measured loss per
// control interval, and reads back a sending rate. MKC uses (a); AIMD and
// TFRC-lite use either; all can drive the same PELS source.
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "util/time.h"

namespace pels {

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  /// Current sending rate in bits per second.
  virtual double rate_bps() const = 0;

  /// Fresh router feedback p (eq. (11)): negative when the bottleneck is
  /// underutilized, in (0, 1) under congestion. The caller guarantees each
  /// router epoch is delivered at most once (§5.2 freshness rule).
  virtual void on_router_feedback(double p, SimTime now) = 0;

  /// Feedback-staleness watchdog tick: the source has seen no fresh router
  /// label for its configured timeout (ACK-path blackout, dead bottleneck,
  /// restarted router). Called once per control interval while the silence
  /// lasts. Controllers that steer by router feedback should decay their
  /// rate (an open control loop must not hold, let alone grow, its claim on
  /// a path it cannot observe — SCReAM's loss-of-feedback rule). Default:
  /// ignored, for controllers driven by receiver measurements instead.
  virtual void on_feedback_silence(SimTime now) { (void)now; }

  /// Receiver-measured loss fraction over the last control interval, in
  /// [0, 1]. Default: ignored (router-driven controllers).
  virtual void on_loss_interval(double p, SimTime now) {
    (void)p;
    (void)now;
  }

  /// Receiver-measured ECN mark fraction over the last control interval, in
  /// [0, 1]. Default: ignored (only marking-driven controllers — REM — use
  /// it).
  virtual void on_mark_fraction(double f, SimTime now) {
    (void)f;
    (void)now;
  }

  /// Smoothed round-trip estimate, for controllers that need one (TFRC).
  virtual void set_rtt(SimTime rtt) { (void)rtt; }

  /// End of a source control interval, called once per tick after the
  /// interval's feedback/loss/mark deliveries. Clocked controllers (CUBIC's
  /// window growth, Swift's gradient, SCReAM's reference-rate shaping) run
  /// their periodic update here; event-driven controllers (MKC, AIMD, TFRC,
  /// REM, DCQCN) ignore it — the default keeps their dynamics untouched.
  virtual void on_control_tick(SimTime now) { (void)now; }

  /// Controller name for traces and tables.
  virtual const char* name() const = 0;

  /// Registers pull probes under `prefix.` (see DESIGN.md "Telemetry"). The
  /// base registers the one signal every controller has — the sending rate;
  /// overrides add their internal state on top by chaining to this. Probes
  /// read live state at sample time, so the control path stays untouched.
  virtual void register_metrics(MetricsRegistry& registry, const std::string& prefix) {
    registry.add_probe(prefix + ".rate_bps", [this] { return rate_bps(); });
  }
};

}  // namespace pels
