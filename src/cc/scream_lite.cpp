#include "cc/scream_lite.h"

#include <cassert>

#include "cc/flow_table.h"

namespace pels {

ScreamLiteController::ScreamLiteController(ScreamLiteConfig config)
    : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.qdelay_target > 0);
  assert(cfg_.increase_bps > 0.0);
  assert(cfg_.decrease_gain > 0.0 && cfg_.decrease_gain <= 1.0);
  assert(cfg_.loss_beta > 0.0 && cfg_.loss_beta < 1.0);
  assert(cfg_.mark_beta > 0.0 && cfg_.mark_beta < 1.0);
  assert(cfg_.max_tick_growth > 1.0);
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps &&
         cfg_.initial_rate_bps <= cfg_.max_rate_bps);
}

ScreamLiteController::ScreamLiteController(FlowTable& table, FlowSlot slot)
    : cfg_(table.zoo_config().scream), table_(&table), slot_(slot),
      rate_(cfg_.initial_rate_bps) {
  assert(table.is_live(slot) && "table-backed controller needs an allocated slot");
  assert(table.kind(slot) == CcKind::kScream && "slot must be allocated as kScream");
}

double ScreamLiteController::rate_bps() const {
  return table_ != nullptr ? table_->rate_bps(slot_) : rate_;
}

SimTime ScreamLiteController::srtt() const {
  return table_ != nullptr ? table_->srtt(slot_) : srtt_;
}

SimTime ScreamLiteController::min_rtt() const {
  return table_ != nullptr ? table_->min_rtt(slot_) : min_rtt_;
}

double ScreamLiteController::cwnd_bytes() const {
  const SimTime rtt = srtt();
  return rtt > 0 ? rate_bps() / 8.0 * to_seconds(rtt) : 0.0;
}

void ScreamLiteController::on_loss_interval(double p, SimTime now) {
  if (p <= 0.0) return;
  if (table_ != nullptr) {
    table_->apply_loss_interval(slot_, p, now);
    return;
  }
  scream_loss_step(cfg_, p, rate_);
}

void ScreamLiteController::on_mark_fraction(double f, SimTime now) {
  if (f <= 0.0) return;
  if (table_ != nullptr) {
    table_->apply_mark_fraction(slot_, f, now);
    return;
  }
  scream_mark_step(cfg_, f, rate_);
}

void ScreamLiteController::on_control_tick(SimTime now) {
  if (table_ != nullptr) {
    table_->apply_control_tick(slot_, now);
    return;
  }
  scream_tick_step(cfg_, srtt_, min_rtt_, rate_);
}

void ScreamLiteController::set_rtt(SimTime rtt) {
  if (rtt <= 0) return;
  if (table_ != nullptr) {
    table_->apply_rtt(slot_, rtt);
    return;
  }
  srtt_ = rtt;
  scream_rtt_step(rtt, min_rtt_);
}

void ScreamLiteController::register_metrics(MetricsRegistry& registry,
                                            const std::string& prefix) {
  CongestionController::register_metrics(registry, prefix);
  registry.add_probe(prefix + ".scream_qdelay_ms", [this] {
    const SimTime base = min_rtt();
    return base > 0 ? to_millis(srtt() - base) : 0.0;
  });
  registry.add_probe(prefix + ".scream_cwnd_bytes", [this] { return cwnd_bytes(); });
}

}  // namespace pels
