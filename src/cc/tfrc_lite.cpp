#include "cc/tfrc_lite.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pels {

TfrcLiteController::TfrcLiteController(TfrcLiteConfig config)
    : cfg_(config), rate_(config.initial_rate_bps), rtt_(config.initial_rtt) {
  assert(cfg_.packet_size_bytes > 0.0);
  assert(cfg_.loss_ewma > 0.0 && cfg_.loss_ewma <= 1.0);
  assert(cfg_.initial_rtt > 0);
}

void TfrcLiteController::on_router_feedback(double p, SimTime /*now*/) {
  if (!seen_loss_ && p <= 0.0) {
    // No loss event yet and the bottleneck reports spare capacity: probe
    // upward multiplicatively, as TFRC does before its first loss event.
    rate_ = std::min(rate_ * 1.5, cfg_.max_rate_bps);
  }
}

void TfrcLiteController::on_loss_interval(double p, SimTime /*now*/) {
  p = std::clamp(p, 0.0, 1.0);
  if (p > 0.0) seen_loss_ = true;
  smoothed_loss_ = (1.0 - cfg_.loss_ewma) * smoothed_loss_ + cfg_.loss_ewma * p;
  if (seen_loss_) recompute();
}

void TfrcLiteController::on_mark_fraction(double f, SimTime now) {
  // Marks enter the loss-event EWMA only when present: mark-free intervals
  // must not dilute the estimate a second time (on_loss_interval already
  // decays it every control tick).
  if (f > 0.0) on_loss_interval(f, now);
}

void TfrcLiteController::set_rtt(SimTime rtt) {
  if (rtt > 0) rtt_ = rtt;
  if (seen_loss_) recompute();
}

void TfrcLiteController::recompute() {
  // Simplified response function; guard the p -> 0 divergence with the
  // configured rate ceiling.
  const double p = std::max(smoothed_loss_, 1e-6);
  const double rtt_sec = to_seconds(rtt_);
  const double r = cfg_.packet_size_bytes * 8.0 * std::sqrt(1.5) / (rtt_sec * std::sqrt(p));
  rate_ = std::clamp(r, cfg_.min_rate_bps, cfg_.max_rate_bps);
}

}  // namespace pels
