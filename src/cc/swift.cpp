#include "cc/swift.h"

#include <cassert>

#include "cc/flow_table.h"

namespace pels {

SwiftController::SwiftController(SwiftConfig config)
    : cfg_(config), rate_(config.initial_rate_bps) {
  assert(cfg_.q_low >= 0 && cfg_.q_low < cfg_.q_high);
  assert(cfg_.gradient_scale > 0);
  assert(cfg_.ai_bps > 0.0);
  assert(cfg_.md_gain > 0.0 && cfg_.md_gain <= 1.0);
  assert(cfg_.min_rate_bps > 0.0 && cfg_.min_rate_bps <= cfg_.initial_rate_bps &&
         cfg_.initial_rate_bps <= cfg_.max_rate_bps);
}

SwiftController::SwiftController(FlowTable& table, FlowSlot slot)
    : cfg_(table.zoo_config().swift), table_(&table), slot_(slot),
      rate_(cfg_.initial_rate_bps) {
  assert(table.is_live(slot) && "table-backed controller needs an allocated slot");
  assert(table.kind(slot) == CcKind::kSwift && "slot must be allocated as kSwift");
}

double SwiftController::rate_bps() const {
  return table_ != nullptr ? table_->rate_bps(slot_) : rate_;
}

SimTime SwiftController::srtt() const {
  return table_ != nullptr ? table_->srtt(slot_) : srtt_;
}

SimTime SwiftController::min_rtt() const {
  return table_ != nullptr ? table_->min_rtt(slot_) : min_rtt_;
}

void SwiftController::on_control_tick(SimTime now) {
  if (table_ != nullptr) {
    table_->apply_control_tick(slot_, now);
    return;
  }
  swift_tick_step(cfg_, srtt_, prev_rtt_, min_rtt_, rate_);
}

void SwiftController::set_rtt(SimTime rtt) {
  if (rtt <= 0) return;
  if (table_ != nullptr) {
    table_->apply_rtt(slot_, rtt);
    return;
  }
  srtt_ = rtt;
}

void SwiftController::register_metrics(MetricsRegistry& registry,
                                       const std::string& prefix) {
  CongestionController::register_metrics(registry, prefix);
  registry.add_probe(prefix + ".swift_qdelay_ms", [this] {
    const SimTime base = min_rtt();
    return base > 0 ? to_millis(srtt() - base) : 0.0;
  });
}

}  // namespace pels
