// DCQCN-style ECN rate controller (Zhu et al., SIGCOMM 2015), interval port.
//
// The NIC-style rate machine keeps a current rate RC, a target rate RT, and a
// congestion estimate alpha. A marked interval (the receiver echoed at least
// one CE mark) cuts RC by alpha/2, remembers the pre-cut rate as RT, and
// grows alpha; an unmarked interval decays alpha and recovers: for the first
// `fast_recovery_stages` intervals RC halves its gap to RT (fast recovery),
// afterwards RT itself rises additively by `rate_ai_bps` (active increase).
//
// The original reacts per CNP on a microsecond timer; this port reacts per
// PELS control interval using the receiver's echoed mark fraction, which
// preserves the state machine (the alpha/2 cut, the (RT+RC)/2 recovery, the
// EWMA alpha) at the cadence the rest of the zoo runs at. Losses are treated
// like marked intervals: the reproduction's paths are lossy, and a DCQCN that
// ignored loss would be blind outside its native lossless fabric.
//
// Kernel contract (see cc/mkc.h): free inline kernels on caller-owned
// scalars; DcqcnController applies them to members, FlowTable to columns —
// bit-for-bit identical, pinned by tests/cc_zoo_test.cpp.
#pragma once

#include <algorithm>
#include <cstdint>

#include "cc/controller.h"

namespace pels {

class FlowTable;
using FlowSlot = std::uint32_t;

struct DcqcnConfig {
  double alpha_g = 1.0 / 16.0;  // alpha EWMA gain (the paper's g)
  double initial_alpha = 1.0;   // start conservative: first cut halves RC
  double rate_ai_bps = 40e3;    // additive target increase per stage
  int fast_recovery_stages = 5; // stages before active increase begins
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
};

/// Marked interval: RT <- RC, RC <- RC (1 - alpha/2), alpha grows toward 1.
inline void dcqcn_mark_step(const DcqcnConfig& cfg, double& rate, double& target,
                            double& alpha, std::int32_t& stage) {
  target = rate;
  rate = std::max(rate * (1.0 - alpha / 2.0), cfg.min_rate_bps);
  alpha = (1.0 - cfg.alpha_g) * alpha + cfg.alpha_g;
  stage = 0;
}

/// Unmarked interval: alpha decays by (1 - g); fast recovery halves the gap
/// to RT, then active increase raises RT additively.
inline void dcqcn_increase_step(const DcqcnConfig& cfg, double& rate, double& target,
                                double& alpha, std::int32_t& stage) {
  alpha = (1.0 - cfg.alpha_g) * alpha;
  ++stage;
  if (stage > cfg.fast_recovery_stages)
    target = std::min(target + cfg.rate_ai_bps, cfg.max_rate_bps);
  rate = std::min(0.5 * (target + rate), cfg.max_rate_bps);
}

class DcqcnController : public CongestionController {
 public:
  explicit DcqcnController(DcqcnConfig config);
  /// Table-backed controller (see cc/flow_table.h): hot state lives in the
  /// table's columns at `slot`, which must be a kDcqcn slot.
  DcqcnController(FlowTable& table, FlowSlot slot);

  double rate_bps() const override;
  /// Router labels are MKC's signal; DCQCN steers by the ECN echo stream.
  void on_router_feedback(double /*p*/, SimTime /*now*/) override {}
  void on_loss_interval(double p, SimTime now) override;
  void on_mark_fraction(double f, SimTime now) override;
  const char* name() const override { return "DCQCN"; }
  void register_metrics(MetricsRegistry& registry, const std::string& prefix) override;

  double alpha() const;
  double target_rate_bps() const;
  std::int32_t recovery_stage() const;

  const DcqcnConfig& config() const { return cfg_; }

 private:
  DcqcnConfig cfg_;
  FlowTable* table_ = nullptr;  // non-null: state lives in the table columns
  FlowSlot slot_ = 0;
  double rate_;
  double target_;
  double alpha_;
  std::int32_t stage_ = 0;
};

}  // namespace pels
