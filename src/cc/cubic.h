// CUBIC congestion control (RFC 9438), rate-based port.
//
// Loss-driven window control: on a congestion event the window is cut to
// beta * W and a new cubic epoch starts; afterwards the window follows
//
//   W(t) = C (t - K)^3 + W_max,   K = cbrt(W_max (1 - beta) / C)
//
// concave up to the pre-event plateau W_max and convex beyond it (the probing
// phase). A Reno-equivalent AIMD estimate (the TCP-friendly region) lower-
// bounds the window in the regime where plain AIMD would grow faster. The
// window converts to a pacing rate at the PELS pacing layer: r = W * MSS * 8
// / sRTT, so the source machinery stays rate-based throughout.
//
// ECN marks are congestion events with a gentler backoff (ABE, RFC 8511).
//
// Kernel contract (see cc/mkc.h): the update maps are free inline kernels on
// caller-owned scalars. CubicController applies them to members, FlowTable to
// its contiguous columns — bit-for-bit identical, pinned by tests/cc_zoo_test.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "cc/controller.h"

namespace pels {

class FlowTable;
using FlowSlot = std::uint32_t;

struct CubicConfig {
  double c = 0.4;          // cubic scaling constant (RFC 9438 §4.1)
  double beta = 0.7;       // window retention on a loss event
  double ecn_beta = 0.85;  // gentler retention on an ECN-mark event (RFC 8511)
  double mss_bytes = 1000.0;
  double initial_cwnd_pkts = 10.0;
  double min_cwnd_pkts = 2.0;
  double max_cwnd_pkts = 1e6;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
  /// Pre-first-event ramp per control tick (slow-start stand-in: the control
  /// clock, not the ACK clock, drives this port).
  double slow_start_growth = 2.0;
  /// Growth cap per control tick after the first event; bounds the convex
  /// probing phase the same way MKC caps its ramp.
  double max_tick_growth = 1.5;
  SimTime initial_rtt = from_millis(100);
};

/// Window -> pacing rate conversion; falls back to the configured RTT until
/// the first sample arrives.
inline double cubic_rate_from_cwnd(const CubicConfig& cfg, double cwnd, SimTime srtt) {
  const double rtt_sec = to_seconds(srtt > 0 ? srtt : cfg.initial_rtt);
  return std::clamp(cwnd * cfg.mss_bytes * 8.0 / rtt_sec, cfg.min_rate_bps,
                    cfg.max_rate_bps);
}

/// Congestion event (loss, or ECN mark with beta = ecn_beta): remember the
/// plateau, cut the window, start a new cubic epoch.
inline void cubic_event_step(const CubicConfig& cfg, double beta, SimTime now,
                             SimTime srtt, double& cwnd, double& w_max, double& k,
                             SimTime& epoch_start, double& rate) {
  w_max = cwnd;
  cwnd = std::max(cwnd * beta, cfg.min_cwnd_pkts);
  k = std::cbrt(w_max * (1.0 - beta) / cfg.c);
  epoch_start = now;
  rate = cubic_rate_from_cwnd(cfg, cwnd, srtt);
}

/// One control tick of window growth. Before the first event (w_max == 0)
/// the window ramps multiplicatively; afterwards it tracks the cubic curve,
/// lower-bounded by the Reno-equivalent estimate (TCP-friendly region,
/// RFC 9438 §4.3) and upper-bounded by the per-tick growth cap.
inline void cubic_tick_step(const CubicConfig& cfg, SimTime now, SimTime srtt,
                            double& cwnd, double w_max, double k, SimTime epoch_start,
                            double& rate) {
  if (w_max <= 0.0) {
    cwnd = std::min(cwnd * cfg.slow_start_growth, cfg.max_cwnd_pkts);
  } else {
    const double t = to_seconds(now - epoch_start);
    const double offs = t - k;
    const double target = w_max + cfg.c * offs * offs * offs;
    const double rtt_sec = to_seconds(srtt > 0 ? srtt : cfg.initial_rtt);
    const double w_est =
        w_max * cfg.beta + 3.0 * (1.0 - cfg.beta) / (1.0 + cfg.beta) * (t / rtt_sec);
    double next = std::max({target, w_est, cwnd});
    next = std::min(next, cwnd * cfg.max_tick_growth);
    cwnd = std::clamp(next, cfg.min_cwnd_pkts, cfg.max_cwnd_pkts);
  }
  rate = cubic_rate_from_cwnd(cfg, cwnd, srtt);
}

class CubicController : public CongestionController {
 public:
  explicit CubicController(CubicConfig config);
  /// Table-backed controller (see cc/flow_table.h): hot state lives in the
  /// table's columns at `slot`, which must be a kCubic slot.
  CubicController(FlowTable& table, FlowSlot slot);

  double rate_bps() const override;
  /// Router feedback labels are MKC's signal; CUBIC steers by loss/marks.
  void on_router_feedback(double /*p*/, SimTime /*now*/) override {}
  void on_loss_interval(double p, SimTime now) override;
  void on_mark_fraction(double f, SimTime now) override;
  void on_control_tick(SimTime now) override;
  void set_rtt(SimTime rtt) override;
  const char* name() const override { return "CUBIC"; }
  void register_metrics(MetricsRegistry& registry, const std::string& prefix) override;

  double cwnd_pkts() const;
  double w_max() const;
  SimTime srtt() const;

  const CubicConfig& config() const { return cfg_; }

 private:
  CubicConfig cfg_;
  FlowTable* table_ = nullptr;  // non-null: state lives in the table columns
  FlowSlot slot_ = 0;
  double rate_;
  double cwnd_;
  double w_max_ = 0.0;
  double k_ = 0.0;
  SimTime epoch_start_ = 0;
  SimTime srtt_ = 0;
};

}  // namespace pels
