// Rate-based AIMD controller (baseline).
//
// Additive increase of `increase_bps` per feedback epoch while the bottleneck
// reports spare capacity; one multiplicative decrease by `decrease_factor`
// per congestion episode (back-offs are spaced at least one RTT apart so a
// burst of positive-loss epochs counts as a single congestion event, as in
// TCP). The paper cites AIMD's large rate oscillation as the reason MKC is
// preferred for video (§5); the ablation bench quantifies that oscillation.
#pragma once

#include "cc/controller.h"

namespace pels {

struct AimdConfig {
  double increase_bps = 20e3;    // additive step per feedback epoch
  double decrease_factor = 0.5;  // rate *= factor on congestion
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
  SimTime backoff_guard = from_millis(100);  // min spacing of decreases (~RTT)
};

class AimdController : public CongestionController {
 public:
  explicit AimdController(AimdConfig config);

  double rate_bps() const override { return rate_; }
  void on_router_feedback(double p, SimTime now) override;
  /// ECN marks back off like congestion feedback (marked-not-dropped packets
  /// must reduce the rate), under the same one-per-guard-interval spacing so
  /// a marked interval that also carries positive feedback halves once.
  void on_mark_fraction(double f, SimTime now) override;
  void set_rtt(SimTime rtt) override { cfg_.backoff_guard = rtt; }
  const char* name() const override { return "AIMD"; }

  std::uint64_t decreases() const { return decreases_; }

 private:
  AimdConfig cfg_;
  double rate_;
  SimTime last_decrease_ = kTimeNever;  // sentinel: no decrease yet
  std::uint64_t decreases_ = 0;
};

}  // namespace pels
