// Structure-of-arrays flow state for population-scale control (ROADMAP
// "Million-flow scale-out").
//
// At N=100k concurrent PELS sources, per-flow controller objects scatter the
// MKC/gamma/pacing scalars across the heap and every control tick pays N
// virtual dispatches plus N cache misses. The FlowTable keeps those hot
// scalars in contiguous parallel columns keyed by a dense FlowSlot, so one
// control tick batch-updates every staged flow with linear scans.
//
// Determinism contract: the single-flow operations (apply_feedback /
// apply_silence / apply_gamma / apply_loss_interval / apply_mark_fraction /
// apply_control_tick / apply_rtt) and the batch path both call the exact
// inline kernels the per-object controllers use (mkc_feedback_step,
// cubic_tick_step, dcqcn_mark_step, swift_tick_step, scream_tick_step, ...),
// so table-backed control is bit-for-bit identical to per-object control —
// verified by tests/flow_table_test.cpp and tests/cc_zoo_test.cpp.
//
// Controller zoo: each slot carries a CcKind; the apply/batch paths dispatch
// per kind. The zoo columns (CUBIC window state, DCQCN rate machine, RTT
// memories, staged mark/loss/rtt inputs) are allocated lazily on the first
// non-MKC flow, so homogeneous MKC populations — the million-flow bench —
// pay not a byte for them. Each zoo scalar column is shared across kinds
// (one flow has exactly one kind): zoo_a is CUBIC's W_max or DCQCN's target
// rate, zoo_b CUBIC's K or DCQCN's alpha, zoo_t CUBIC's epoch start or
// Swift's previous-tick RTT, zoo_t2 Swift's/SCReAM's min RTT.
//
// Slot lifecycle: add_flow() reuses freed slots LIFO (like the scheduler's
// callback pool); remove_flow() returns the slot. Columns never shrink, so a
// steady-state add/remove churn allocates nothing. Whoever allocates the
// slot owns its lifetime — PelsSource and the controllers only borrow.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cc/cubic.h"
#include "cc/dcqcn.h"
#include "cc/mkc.h"
#include "cc/scream_lite.h"
#include "cc/swift.h"
#include "video/gamma_controller.h"

namespace pels {

inline constexpr FlowSlot kInvalidFlowSlot = 0xffffffffu;

/// Controller kind of a table slot. kMkc is the default and the only kind
/// that exists before the zoo columns are enabled.
enum class CcKind : std::uint8_t {
  kMkc = 0,
  kCubic = 1,
  kDcqcn = 2,
  kSwift = 3,
  kScream = 4,
};

const char* cc_kind_name(CcKind kind);

/// Shared per-kind configs for a table's zoo flows (heterogeneous configs
/// within one kind use several tables or per-object controllers, like MKC).
struct CcZooConfig {
  CubicConfig cubic;
  DcqcnConfig dcqcn;
  SwiftConfig swift;
  ScreamLiteConfig scream;
};

class FlowTable {
 public:
  /// All flows in one table share the MKC and gamma configs (heterogeneous
  /// populations use several tables or fall back to per-object controllers).
  FlowTable(MkcConfig mkc, GammaConfig gamma, CcZooConfig zoo = {});

  /// Pre-sizes every column (and the free list) for `flows` concurrent
  /// flows, so steady-state add/remove churn allocates nothing.
  void reserve(std::size_t flows);

  /// Allocates a slot initialized from the configs (rate =
  /// mkc.initial_rate_bps, gamma = gamma.initial_gamma).
  FlowSlot add_flow();
  /// Allocates a slot with explicit initial rate/gamma (mixed-traffic
  /// generators start classes at different operating points).
  FlowSlot add_flow(double initial_rate_bps, double initial_gamma);
  /// Allocates a slot of the given controller kind, initialized from that
  /// kind's config. The first non-MKC flow enables the zoo columns.
  FlowSlot add_flow(CcKind kind);
  /// Frees a slot for reuse. Outstanding references to it are invalid.
  void remove_flow(FlowSlot slot);

  /// Live (allocated) flows.
  std::size_t size() const { return live_count_; }
  /// Allocated column length (high-water mark of concurrent flows).
  std::size_t capacity() const { return rate_.size(); }
  bool is_live(FlowSlot slot) const {
    return slot < flags_.size() && (flags_[slot] & kLive) != 0;
  }

  /// Allocates the zoo columns up front (at current capacity, grown with the
  /// table afterwards). Implicit on the first add_flow with a non-MKC kind.
  void enable_zoo();
  bool zoo_enabled() const { return zoo_enabled_; }

  // --- per-flow hot scalars ---------------------------------------------
  CcKind kind(FlowSlot slot) const {
    return zoo_enabled_ ? static_cast<CcKind>(kind_[slot]) : CcKind::kMkc;
  }
  double rate_bps(FlowSlot slot) const { return rate_[slot]; }
  double gamma(FlowSlot slot) const { return gamma_col_[slot]; }
  double paced_rate(FlowSlot slot) const { return paced_rate_[slot]; }
  void set_paced_rate(FlowSlot slot, double v) { paced_rate_[slot] = v; }
  /// Mutable pacing-EWMA cell (PelsSource updates it per packet). Invalidated
  /// by add_flow growth like any vector reference — re-fetch per use.
  double& paced_rate_ref(FlowSlot slot) { return paced_rate_[slot]; }
  bool in_silence(FlowSlot slot) const { return (flags_[slot] & kSilent) != 0; }
  std::uint64_t mkc_updates(FlowSlot slot) const { return mkc_updates_[slot]; }
  std::uint64_t silence_ticks(FlowSlot slot) const { return silence_ticks_[slot]; }
  std::uint64_t gamma_updates(FlowSlot slot) const { return gamma_updates_[slot]; }

  // Zoo state views (valid once the zoo columns exist; see the column-sharing
  // map in the header comment).
  SimTime srtt(FlowSlot slot) const { return srtt_[slot]; }
  SimTime min_rtt(FlowSlot slot) const { return zoo_t2_[slot]; }
  double cubic_cwnd(FlowSlot slot) const { return zoo_win_[slot]; }
  double cubic_wmax(FlowSlot slot) const { return zoo_a_[slot]; }
  double dcqcn_target(FlowSlot slot) const { return zoo_a_[slot]; }
  double dcqcn_alpha(FlowSlot slot) const { return zoo_b_[slot]; }
  std::int32_t dcqcn_stage(FlowSlot slot) const { return zoo_stage_[slot]; }
  SimTime swift_prev_rtt(FlowSlot slot) const { return zoo_t_[slot]; }

  // --- single-flow control (table-backed controllers) --------------------
  void apply_feedback(FlowSlot slot, double p);
  void apply_silence(FlowSlot slot);
  double apply_gamma(FlowSlot slot, double p);
  /// Zoo signal entry points; dispatch on the slot's kind (MKC ignores them,
  /// matching the per-object controllers' default overrides). `now` anchors
  /// event timestamps (CUBIC's epoch start).
  void apply_rtt(FlowSlot slot, SimTime rtt);
  void apply_loss_interval(FlowSlot slot, double p, SimTime now);
  void apply_mark_fraction(FlowSlot slot, double f, SimTime now);
  void apply_control_tick(FlowSlot slot, SimTime now);

  // --- staged batch control (population-scale drivers) -------------------
  // A control tick stages per-flow inputs (latest wins within a tick), then
  // batch_control_tick() applies them in slot order with linear scans.
  // Semantics per flow and tick, mirroring PelsSource::on_control_clock:
  // rtt first, then feedback (which supersedes staged silence — a fresh
  // label ends the silence episode), then gamma, then the interval loss and
  // mark deliveries, then the control tick.
  void stage_feedback(FlowSlot slot, double p) {
    staged_loss_[slot] = p;
    staged_[slot] = static_cast<std::uint8_t>((staged_[slot] & ~kStageSilence) | kStageFeedback);
  }
  void stage_silence(FlowSlot slot) {
    if ((staged_[slot] & kStageFeedback) == 0) staged_[slot] |= kStageSilence;
  }
  void stage_gamma(FlowSlot slot, double p_fgs) {
    staged_fgs_loss_[slot] = p_fgs;
    staged_[slot] |= kStageGamma;
  }
  void stage_rtt(FlowSlot slot, SimTime rtt) {
    assert(zoo_enabled_ && "zoo staging needs enable_zoo()/a non-MKC flow");
    staged_rtt_[slot] = rtt;
    staged_[slot] |= kStageRtt;
  }
  void stage_loss_interval(FlowSlot slot, double p) {
    assert(zoo_enabled_ && "zoo staging needs enable_zoo()/a non-MKC flow");
    staged_iloss_[slot] = p;
    staged_[slot] |= kStageLoss;
  }
  void stage_mark_fraction(FlowSlot slot, double f) {
    assert(zoo_enabled_ && "zoo staging needs enable_zoo()/a non-MKC flow");
    staged_mark_[slot] = f;
    staged_[slot] |= kStageMark;
  }
  void stage_control_tick(FlowSlot slot) {
    assert(zoo_enabled_ && "zoo staging needs enable_zoo()/a non-MKC flow");
    staged_[slot] |= kStageTick;
  }

  struct BatchStats {
    std::size_t feedback_applied = 0;
    std::size_t silences = 0;
    std::size_t gamma_updates = 0;
    std::size_t rtt_applied = 0;
    std::size_t losses_applied = 0;
    std::size_t marks_applied = 0;
    std::size_t ticks_applied = 0;
  };
  /// Applies every staged input and clears the staging columns. `now` feeds
  /// the clocked zoo kernels (CUBIC's elapsed-epoch time); pure-MKC tables
  /// never read it, so existing drivers can keep calling it argument-free.
  BatchStats batch_control_tick(SimTime now = 0);

  const MkcConfig& mkc_config() const { return mkc_; }
  const GammaConfig& gamma_config() const { return gamma_cfg_; }
  const CcZooConfig& zoo_config() const { return zoo_cfg_; }

  /// Heap footprint of every column plus the free list (capacities, not
  /// sizes): the bytes/flow budget reported by bench/many_flows counts this.
  /// Zoo columns count only once enabled.
  std::size_t memory_bytes() const {
    return rate_.capacity() * sizeof(double) + gamma_col_.capacity() * sizeof(double) +
           paced_rate_.capacity() * sizeof(double) +
           recovery_left_.capacity() * sizeof(std::int32_t) +
           flags_.capacity() * sizeof(std::uint8_t) +
           mkc_updates_.capacity() * sizeof(std::uint64_t) +
           silence_ticks_.capacity() * sizeof(std::uint64_t) +
           gamma_updates_.capacity() * sizeof(std::uint64_t) +
           staged_loss_.capacity() * sizeof(double) +
           staged_fgs_loss_.capacity() * sizeof(double) +
           staged_.capacity() * sizeof(std::uint8_t) +
           kind_.capacity() * sizeof(std::uint8_t) +
           srtt_.capacity() * sizeof(SimTime) + zoo_win_.capacity() * sizeof(double) +
           zoo_a_.capacity() * sizeof(double) + zoo_b_.capacity() * sizeof(double) +
           zoo_t_.capacity() * sizeof(SimTime) + zoo_t2_.capacity() * sizeof(SimTime) +
           zoo_stage_.capacity() * sizeof(std::int32_t) +
           staged_rtt_.capacity() * sizeof(SimTime) +
           staged_iloss_.capacity() * sizeof(double) +
           staged_mark_.capacity() * sizeof(double) +
           free_slots_.capacity() * sizeof(FlowSlot);
  }

 private:
  static constexpr std::uint8_t kLive = 1u << 0;
  static constexpr std::uint8_t kSilent = 1u << 1;
  static constexpr std::uint8_t kStageFeedback = 1u << 0;
  static constexpr std::uint8_t kStageSilence = 1u << 1;
  static constexpr std::uint8_t kStageGamma = 1u << 2;
  static constexpr std::uint8_t kStageRtt = 1u << 3;
  static constexpr std::uint8_t kStageLoss = 1u << 4;
  static constexpr std::uint8_t kStageMark = 1u << 5;
  static constexpr std::uint8_t kStageTick = 1u << 6;

  void init_zoo_slot(FlowSlot slot, CcKind kind);
  static double initial_rate_for(const MkcConfig& mkc, const CcZooConfig& zoo,
                                 CcKind kind);

  MkcConfig mkc_;
  GammaConfig gamma_cfg_;
  CcZooConfig zoo_cfg_;

  // Parallel columns indexed by FlowSlot. Hot control scalars first.
  std::vector<double> rate_;            // controller rate (bps), any kind
  std::vector<double> gamma_col_;       // FGS red fraction
  std::vector<double> paced_rate_;      // pacing EWMA (PelsSource)
  std::vector<std::int32_t> recovery_left_;
  std::vector<std::uint8_t> flags_;     // kLive | kSilent
  std::vector<std::uint64_t> mkc_updates_;
  std::vector<std::uint64_t> silence_ticks_;
  std::vector<std::uint64_t> gamma_updates_;
  // Staging columns consumed by batch_control_tick().
  std::vector<double> staged_loss_;
  std::vector<double> staged_fgs_loss_;
  std::vector<std::uint8_t> staged_;
  // Zoo columns (empty until enable_zoo(); see header comment for sharing).
  bool zoo_enabled_ = false;
  std::vector<std::uint8_t> kind_;
  std::vector<SimTime> srtt_;
  std::vector<double> zoo_win_;        // CUBIC cwnd (packets)
  std::vector<double> zoo_a_;          // CUBIC W_max | DCQCN target rate
  std::vector<double> zoo_b_;          // CUBIC K | DCQCN alpha
  std::vector<SimTime> zoo_t_;         // CUBIC epoch start | Swift prev RTT
  std::vector<SimTime> zoo_t2_;        // Swift/SCReAM min RTT
  std::vector<std::int32_t> zoo_stage_;  // DCQCN recovery stage
  std::vector<SimTime> staged_rtt_;
  std::vector<double> staged_iloss_;
  std::vector<double> staged_mark_;

  std::vector<FlowSlot> free_slots_;
  std::size_t live_count_ = 0;
};

}  // namespace pels
