// Structure-of-arrays flow state for population-scale control (ROADMAP
// "Million-flow scale-out").
//
// At N=100k concurrent PELS sources, per-flow controller objects scatter the
// MKC/gamma/pacing scalars across the heap and every control tick pays N
// virtual dispatches plus N cache misses. The FlowTable keeps those hot
// scalars in contiguous parallel columns keyed by a dense FlowSlot, so one
// control tick batch-updates every staged flow with linear scans.
//
// Determinism contract: the single-flow operations (apply_feedback /
// apply_silence / apply_gamma) and the batch path both call the exact inline
// kernels MkcController and GammaController use (mkc_feedback_step,
// mkc_silence_step, gamma_update_step), so table-backed control is
// bit-for-bit identical to per-object control — verified by
// tests/flow_table_test.cpp.
//
// Slot lifecycle: add_flow() reuses freed slots LIFO (like the scheduler's
// callback pool); remove_flow() returns the slot. Columns never shrink, so a
// steady-state add/remove churn allocates nothing. Whoever allocates the
// slot owns its lifetime — PelsSource and MkcController only borrow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cc/mkc.h"
#include "video/gamma_controller.h"

namespace pels {

inline constexpr FlowSlot kInvalidFlowSlot = 0xffffffffu;

class FlowTable {
 public:
  /// All flows in one table share the MKC and gamma configs (heterogeneous
  /// populations use several tables or fall back to per-object controllers).
  FlowTable(MkcConfig mkc, GammaConfig gamma);

  /// Pre-sizes every column (and the free list) for `flows` concurrent
  /// flows, so steady-state add/remove churn allocates nothing.
  void reserve(std::size_t flows);

  /// Allocates a slot initialized from the configs (rate =
  /// mkc.initial_rate_bps, gamma = gamma.initial_gamma).
  FlowSlot add_flow();
  /// Allocates a slot with explicit initial rate/gamma (mixed-traffic
  /// generators start classes at different operating points).
  FlowSlot add_flow(double initial_rate_bps, double initial_gamma);
  /// Frees a slot for reuse. Outstanding references to it are invalid.
  void remove_flow(FlowSlot slot);

  /// Live (allocated) flows.
  std::size_t size() const { return live_count_; }
  /// Allocated column length (high-water mark of concurrent flows).
  std::size_t capacity() const { return rate_.size(); }
  bool is_live(FlowSlot slot) const {
    return slot < flags_.size() && (flags_[slot] & kLive) != 0;
  }

  // --- per-flow hot scalars ---------------------------------------------
  double rate_bps(FlowSlot slot) const { return rate_[slot]; }
  double gamma(FlowSlot slot) const { return gamma_col_[slot]; }
  double paced_rate(FlowSlot slot) const { return paced_rate_[slot]; }
  void set_paced_rate(FlowSlot slot, double v) { paced_rate_[slot] = v; }
  /// Mutable pacing-EWMA cell (PelsSource updates it per packet). Invalidated
  /// by add_flow growth like any vector reference — re-fetch per use.
  double& paced_rate_ref(FlowSlot slot) { return paced_rate_[slot]; }
  bool in_silence(FlowSlot slot) const { return (flags_[slot] & kSilent) != 0; }
  std::uint64_t mkc_updates(FlowSlot slot) const { return mkc_updates_[slot]; }
  std::uint64_t silence_ticks(FlowSlot slot) const { return silence_ticks_[slot]; }
  std::uint64_t gamma_updates(FlowSlot slot) const { return gamma_updates_[slot]; }

  // --- single-flow control (table-backed controllers) --------------------
  void apply_feedback(FlowSlot slot, double p);
  void apply_silence(FlowSlot slot);
  double apply_gamma(FlowSlot slot, double p);

  // --- staged batch control (population-scale drivers) -------------------
  // A control tick stages per-flow inputs (latest wins within a tick), then
  // batch_control_tick() applies them in slot order with linear scans.
  // Semantics per flow and tick: staged feedback supersedes staged silence
  // (a fresh label ends the silence episode, matching the source watchdog);
  // gamma applies after the rate update, like PelsSource::on_control_clock.
  void stage_feedback(FlowSlot slot, double p) {
    staged_loss_[slot] = p;
    staged_[slot] = static_cast<std::uint8_t>((staged_[slot] & ~kStageSilence) | kStageFeedback);
  }
  void stage_silence(FlowSlot slot) {
    if ((staged_[slot] & kStageFeedback) == 0) staged_[slot] |= kStageSilence;
  }
  void stage_gamma(FlowSlot slot, double p_fgs) {
    staged_fgs_loss_[slot] = p_fgs;
    staged_[slot] |= kStageGamma;
  }

  struct BatchStats {
    std::size_t feedback_applied = 0;
    std::size_t silences = 0;
    std::size_t gamma_updates = 0;
  };
  /// Applies every staged input and clears the staging columns.
  BatchStats batch_control_tick();

  const MkcConfig& mkc_config() const { return mkc_; }
  const GammaConfig& gamma_config() const { return gamma_cfg_; }

  /// Heap footprint of every column plus the free list (capacities, not
  /// sizes): the bytes/flow budget reported by bench/many_flows counts this.
  std::size_t memory_bytes() const {
    return rate_.capacity() * sizeof(double) + gamma_col_.capacity() * sizeof(double) +
           paced_rate_.capacity() * sizeof(double) +
           recovery_left_.capacity() * sizeof(std::int32_t) +
           flags_.capacity() * sizeof(std::uint8_t) +
           mkc_updates_.capacity() * sizeof(std::uint64_t) +
           silence_ticks_.capacity() * sizeof(std::uint64_t) +
           gamma_updates_.capacity() * sizeof(std::uint64_t) +
           staged_loss_.capacity() * sizeof(double) +
           staged_fgs_loss_.capacity() * sizeof(double) +
           staged_.capacity() * sizeof(std::uint8_t) +
           free_slots_.capacity() * sizeof(FlowSlot);
  }

 private:
  static constexpr std::uint8_t kLive = 1u << 0;
  static constexpr std::uint8_t kSilent = 1u << 1;
  static constexpr std::uint8_t kStageFeedback = 1u << 0;
  static constexpr std::uint8_t kStageSilence = 1u << 1;
  static constexpr std::uint8_t kStageGamma = 1u << 2;

  MkcConfig mkc_;
  GammaConfig gamma_cfg_;

  // Parallel columns indexed by FlowSlot. Hot control scalars first.
  std::vector<double> rate_;            // MKC rate (bps)
  std::vector<double> gamma_col_;       // FGS red fraction
  std::vector<double> paced_rate_;      // pacing EWMA (PelsSource)
  std::vector<std::int32_t> recovery_left_;
  std::vector<std::uint8_t> flags_;     // kLive | kSilent
  std::vector<std::uint64_t> mkc_updates_;
  std::vector<std::uint64_t> silence_ticks_;
  std::vector<std::uint64_t> gamma_updates_;
  // Staging columns consumed by batch_control_tick().
  std::vector<double> staged_loss_;
  std::vector<double> staged_fgs_loss_;
  std::vector<std::uint8_t> staged_;

  std::vector<FlowSlot> free_slots_;
  std::size_t live_count_ = 0;
};

}  // namespace pels
