// Swift/TIMELY delay-based controller (Kumar et al. SIGCOMM 2020; Mittal et
// al. SIGCOMM 2015), interval port.
//
// Steers by the queuing-delay component of the smoothed RTT the PELS source
// already measures: qdelay = sRTT - minRTT. Below `q_low` the path is
// considered empty and the rate increases additively regardless of trend;
// above `q_high` the rate is cut multiplicatively in proportion to the
// overshoot (Swift's target-delay MD). In between, the RTT *gradient*
// decides (TIMELY): a falling or flat RTT earns additive increase, a rising
// RTT a decrease proportional to the normalized gradient.
//
// Kernel contract (see cc/mkc.h): one free inline kernel on caller-owned
// scalars, applied per control tick; SwiftController applies it to members,
// FlowTable to its columns — bit-for-bit identical (tests/cc_zoo_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>

#include "cc/controller.h"

namespace pels {

class FlowTable;
using FlowSlot = std::uint32_t;

struct SwiftConfig {
  SimTime q_low = from_millis(5);     // qdelay floor: below, always increase
  SimTime q_high = from_millis(50);   // qdelay ceiling: above, always decrease
  /// Normalization scale for the RTT gradient (TIMELY divides the raw RTT
  /// difference by a delay constant to get a dimensionless gradient).
  SimTime gradient_scale = from_millis(50);
  double ai_bps = 50e3;   // additive increase per tick
  double md_gain = 0.8;   // multiplicative-decrease gain on overshoot/gradient
  double initial_rate_bps = 128e3;
  double min_rate_bps = 1e3;
  double max_rate_bps = 1e9;
};

/// One control tick. Needs two RTT memories: the previous tick's sample (for
/// the gradient) and the running minimum (the propagation-delay baseline).
/// The first sample only primes them.
inline void swift_tick_step(const SwiftConfig& cfg, SimTime srtt, SimTime& prev_rtt,
                            SimTime& min_rtt, double& rate) {
  if (srtt <= 0) return;  // no RTT sample yet: nothing to steer by
  if (min_rtt <= 0 || srtt < min_rtt) min_rtt = srtt;
  if (prev_rtt <= 0) {
    prev_rtt = srtt;
    return;
  }
  const double grad =
      to_seconds(srtt - prev_rtt) / to_seconds(cfg.gradient_scale);
  prev_rtt = srtt;
  const SimTime qdelay = srtt - min_rtt;
  if (qdelay < cfg.q_low) {
    rate = std::min(rate + cfg.ai_bps, cfg.max_rate_bps);
    return;
  }
  if (qdelay > cfg.q_high) {
    const double over = 1.0 - to_seconds(cfg.q_high) / to_seconds(qdelay);
    rate = std::max(rate * (1.0 - cfg.md_gain * over), cfg.min_rate_bps);
    return;
  }
  if (grad <= 0.0) {
    rate = std::min(rate + cfg.ai_bps, cfg.max_rate_bps);
  } else {
    rate = std::max(rate * (1.0 - cfg.md_gain * std::min(grad, 1.0)), cfg.min_rate_bps);
  }
}

class SwiftController : public CongestionController {
 public:
  explicit SwiftController(SwiftConfig config);
  /// Table-backed controller (see cc/flow_table.h): hot state lives in the
  /// table's columns at `slot`, which must be a kSwift slot.
  SwiftController(FlowTable& table, FlowSlot slot);

  double rate_bps() const override;
  /// Router labels are MKC's signal; Swift steers purely by delay.
  void on_router_feedback(double /*p*/, SimTime /*now*/) override {}
  void on_control_tick(SimTime now) override;
  void set_rtt(SimTime rtt) override;
  const char* name() const override { return "Swift"; }
  void register_metrics(MetricsRegistry& registry, const std::string& prefix) override;

  SimTime srtt() const;
  SimTime min_rtt() const;

  const SwiftConfig& config() const { return cfg_; }

 private:
  SwiftConfig cfg_;
  FlowTable* table_ = nullptr;  // non-null: state lives in the table columns
  FlowSlot slot_ = 0;
  double rate_;
  SimTime srtt_ = 0;
  SimTime prev_rtt_ = 0;
  SimTime min_rtt_ = 0;
};

}  // namespace pels
