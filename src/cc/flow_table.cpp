#include "cc/flow_table.h"

#include <cassert>

namespace pels {

const char* cc_kind_name(CcKind kind) {
  switch (kind) {
    case CcKind::kMkc: return "MKC";
    case CcKind::kCubic: return "CUBIC";
    case CcKind::kDcqcn: return "DCQCN";
    case CcKind::kSwift: return "Swift";
    case CcKind::kScream: return "SCReAM-lite";
  }
  return "?";
}

FlowTable::FlowTable(MkcConfig mkc, GammaConfig gamma, CcZooConfig zoo)
    : mkc_(mkc), gamma_cfg_(gamma), zoo_cfg_(zoo) {
  // Same domain checks as the controllers' constructors; unstable gamma
  // gains stay allowed on purpose (Figure 5 demonstrates divergence).
  assert(mkc_.alpha_bps > 0.0);
  assert(mkc_.beta > 0.0 && mkc_.beta < 2.0 && "MKC is stable only for beta in (0, 2)");
  assert(mkc_.min_rate_bps > 0.0 && mkc_.min_rate_bps <= mkc_.initial_rate_bps);
  assert(mkc_.initial_rate_bps <= mkc_.max_rate_bps);
  assert(gamma_cfg_.p_thr > 0.0 && gamma_cfg_.p_thr <= 1.0);
  assert(gamma_cfg_.gamma_low >= 0.0 && gamma_cfg_.gamma_low < gamma_cfg_.gamma_high &&
         gamma_cfg_.gamma_high <= 1.0);
  assert(gamma_cfg_.initial_gamma >= gamma_cfg_.gamma_low &&
         gamma_cfg_.initial_gamma <= gamma_cfg_.gamma_high);
}

void FlowTable::reserve(std::size_t flows) {
  rate_.reserve(flows);
  gamma_col_.reserve(flows);
  paced_rate_.reserve(flows);
  recovery_left_.reserve(flows);
  flags_.reserve(flows);
  mkc_updates_.reserve(flows);
  silence_ticks_.reserve(flows);
  gamma_updates_.reserve(flows);
  staged_loss_.reserve(flows);
  staged_fgs_loss_.reserve(flows);
  staged_.reserve(flows);
  free_slots_.reserve(flows);
  if (zoo_enabled_) {
    kind_.reserve(flows);
    srtt_.reserve(flows);
    zoo_win_.reserve(flows);
    zoo_a_.reserve(flows);
    zoo_b_.reserve(flows);
    zoo_t_.reserve(flows);
    zoo_t2_.reserve(flows);
    zoo_stage_.reserve(flows);
    staged_rtt_.reserve(flows);
    staged_iloss_.reserve(flows);
    staged_mark_.reserve(flows);
  }
}

void FlowTable::enable_zoo() {
  if (zoo_enabled_) return;
  zoo_enabled_ = true;
  const std::size_t n = rate_.size();
  // Back-fill for already-allocated slots: all pre-zoo flows are MKC.
  kind_.assign(n, static_cast<std::uint8_t>(CcKind::kMkc));
  srtt_.assign(n, 0);
  zoo_win_.assign(n, 0.0);
  zoo_a_.assign(n, 0.0);
  zoo_b_.assign(n, 0.0);
  zoo_t_.assign(n, 0);
  zoo_t2_.assign(n, 0);
  zoo_stage_.assign(n, 0);
  staged_rtt_.assign(n, 0);
  staged_iloss_.assign(n, 0.0);
  staged_mark_.assign(n, 0.0);
}

double FlowTable::initial_rate_for(const MkcConfig& mkc, const CcZooConfig& zoo,
                                   CcKind kind) {
  switch (kind) {
    case CcKind::kMkc: return mkc.initial_rate_bps;
    case CcKind::kCubic:
      return cubic_rate_from_cwnd(zoo.cubic, zoo.cubic.initial_cwnd_pkts, 0);
    case CcKind::kDcqcn: return zoo.dcqcn.initial_rate_bps;
    case CcKind::kSwift: return zoo.swift.initial_rate_bps;
    case CcKind::kScream: return zoo.scream.initial_rate_bps;
  }
  return mkc.initial_rate_bps;
}

FlowSlot FlowTable::add_flow() {
  return add_flow(mkc_.initial_rate_bps, gamma_cfg_.initial_gamma);
}

FlowSlot FlowTable::add_flow(CcKind kind) {
  if (kind != CcKind::kMkc) enable_zoo();
  const FlowSlot slot =
      add_flow(initial_rate_for(mkc_, zoo_cfg_, kind), gamma_cfg_.initial_gamma);
  if (zoo_enabled_) init_zoo_slot(slot, kind);
  return slot;
}

FlowSlot FlowTable::add_flow(double initial_rate_bps, double initial_gamma) {
  FlowSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<FlowSlot>(rate_.size());
    rate_.emplace_back();
    gamma_col_.emplace_back();
    paced_rate_.emplace_back();
    recovery_left_.emplace_back();
    flags_.emplace_back();
    mkc_updates_.emplace_back();
    silence_ticks_.emplace_back();
    gamma_updates_.emplace_back();
    staged_loss_.emplace_back();
    staged_fgs_loss_.emplace_back();
    staged_.emplace_back();
    if (zoo_enabled_) {
      kind_.emplace_back();
      srtt_.emplace_back();
      zoo_win_.emplace_back();
      zoo_a_.emplace_back();
      zoo_b_.emplace_back();
      zoo_t_.emplace_back();
      zoo_t2_.emplace_back();
      zoo_stage_.emplace_back();
      staged_rtt_.emplace_back();
      staged_iloss_.emplace_back();
      staged_mark_.emplace_back();
    }
  }
  rate_[slot] = initial_rate_bps;
  gamma_col_[slot] = initial_gamma;
  paced_rate_[slot] = 0.0;
  recovery_left_[slot] = 0;
  flags_[slot] = kLive;
  mkc_updates_[slot] = 0;
  silence_ticks_[slot] = 0;
  gamma_updates_[slot] = 0;
  staged_loss_[slot] = 0.0;
  staged_fgs_loss_[slot] = 0.0;
  staged_[slot] = 0;
  if (zoo_enabled_) init_zoo_slot(slot, CcKind::kMkc);
  ++live_count_;
  return slot;
}

void FlowTable::init_zoo_slot(FlowSlot slot, CcKind kind) {
  kind_[slot] = static_cast<std::uint8_t>(kind);
  srtt_[slot] = 0;
  zoo_win_[slot] = kind == CcKind::kCubic ? zoo_cfg_.cubic.initial_cwnd_pkts : 0.0;
  zoo_a_[slot] = kind == CcKind::kDcqcn ? zoo_cfg_.dcqcn.initial_rate_bps : 0.0;
  zoo_b_[slot] = kind == CcKind::kDcqcn ? zoo_cfg_.dcqcn.initial_alpha : 0.0;
  zoo_t_[slot] = 0;
  zoo_t2_[slot] = 0;
  zoo_stage_[slot] = 0;
  staged_rtt_[slot] = 0;
  staged_iloss_[slot] = 0.0;
  staged_mark_[slot] = 0.0;
}

void FlowTable::remove_flow(FlowSlot slot) {
  assert(is_live(slot) && "remove_flow on a dead or out-of-range slot");
  flags_[slot] = 0;
  staged_[slot] = 0;
  free_slots_.push_back(slot);
  --live_count_;
}

void FlowTable::apply_feedback(FlowSlot slot, double p) {
  assert(is_live(slot));
  bool silent = (flags_[slot] & kSilent) != 0;
  mkc_feedback_step(mkc_, p, rate_[slot], silent, recovery_left_[slot],
                    mkc_updates_[slot]);
  flags_[slot] = static_cast<std::uint8_t>(silent ? flags_[slot] | kSilent
                                                  : flags_[slot] & ~kSilent);
}

void FlowTable::apply_silence(FlowSlot slot) {
  assert(is_live(slot));
  bool silent = (flags_[slot] & kSilent) != 0;
  mkc_silence_step(mkc_, rate_[slot], silent, silence_ticks_[slot]);
  flags_[slot] = static_cast<std::uint8_t>(silent ? flags_[slot] | kSilent
                                                  : flags_[slot] & ~kSilent);
}

double FlowTable::apply_gamma(FlowSlot slot, double p) {
  assert(is_live(slot));
  return gamma_update_step(gamma_cfg_, p, gamma_col_[slot], gamma_updates_[slot]);
}

void FlowTable::apply_rtt(FlowSlot slot, SimTime rtt) {
  assert(is_live(slot));
  if (!zoo_enabled_ || rtt <= 0) return;
  srtt_[slot] = rtt;
  // SCReAM additionally tracks the propagation-delay baseline on each
  // sample; Swift refreshes its minimum inside the tick kernel instead.
  if (kind(slot) == CcKind::kScream) scream_rtt_step(rtt, zoo_t2_[slot]);
}

void FlowTable::apply_loss_interval(FlowSlot slot, double p, SimTime now) {
  assert(is_live(slot));
  if (!zoo_enabled_ || p <= 0.0) return;
  switch (kind(slot)) {
    case CcKind::kCubic:
      cubic_event_step(zoo_cfg_.cubic, zoo_cfg_.cubic.beta, now, srtt_[slot],
                       zoo_win_[slot], zoo_a_[slot], zoo_b_[slot], zoo_t_[slot],
                       rate_[slot]);
      break;
    case CcKind::kDcqcn:
      dcqcn_mark_step(zoo_cfg_.dcqcn, rate_[slot], zoo_a_[slot], zoo_b_[slot],
                      zoo_stage_[slot]);
      break;
    case CcKind::kScream:
      scream_loss_step(zoo_cfg_.scream, p, rate_[slot]);
      break;
    case CcKind::kMkc:
    case CcKind::kSwift:
      break;  // MKC steers by labels, Swift by delay
  }
}

void FlowTable::apply_mark_fraction(FlowSlot slot, double f, SimTime now) {
  assert(is_live(slot));
  if (!zoo_enabled_) return;
  switch (kind(slot)) {
    case CcKind::kCubic:
      if (f > 0.0) {
        cubic_event_step(zoo_cfg_.cubic, zoo_cfg_.cubic.ecn_beta, now, srtt_[slot],
                         zoo_win_[slot], zoo_a_[slot], zoo_b_[slot], zoo_t_[slot],
                         rate_[slot]);
      }
      break;
    case CcKind::kDcqcn:
      if (f > 0.0) {
        dcqcn_mark_step(zoo_cfg_.dcqcn, rate_[slot], zoo_a_[slot], zoo_b_[slot],
                        zoo_stage_[slot]);
      } else {
        dcqcn_increase_step(zoo_cfg_.dcqcn, rate_[slot], zoo_a_[slot], zoo_b_[slot],
                            zoo_stage_[slot]);
      }
      break;
    case CcKind::kScream:
      if (f > 0.0) scream_mark_step(zoo_cfg_.scream, f, rate_[slot]);
      break;
    case CcKind::kMkc:
    case CcKind::kSwift:
      break;
  }
}

void FlowTable::apply_control_tick(FlowSlot slot, SimTime now) {
  assert(is_live(slot));
  if (!zoo_enabled_) return;
  switch (kind(slot)) {
    case CcKind::kCubic:
      cubic_tick_step(zoo_cfg_.cubic, now, srtt_[slot], zoo_win_[slot], zoo_a_[slot],
                      zoo_b_[slot], zoo_t_[slot], rate_[slot]);
      break;
    case CcKind::kSwift:
      swift_tick_step(zoo_cfg_.swift, srtt_[slot], zoo_t_[slot], zoo_t2_[slot],
                      rate_[slot]);
      break;
    case CcKind::kScream:
      scream_tick_step(zoo_cfg_.scream, srtt_[slot], zoo_t2_[slot], rate_[slot]);
      break;
    case CcKind::kMkc:
    case CcKind::kDcqcn:
      break;  // event-driven: no periodic update
  }
}

FlowTable::BatchStats FlowTable::batch_control_tick(SimTime now) {
  BatchStats out;
  const std::size_t n = rate_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t st = staged_[i];
    if (st == 0 || (flags_[i] & kLive) == 0) continue;
    const auto slot = static_cast<FlowSlot>(i);
    // Same per-flow order as PelsSource::on_control_clock: RTT samples land
    // before the tick's deliveries; feedback supersedes silence; gamma
    // applies after the rate update; interval loss, then marks, then the
    // clocked update.
    if ((st & kStageRtt) != 0) {
      apply_rtt(slot, staged_rtt_[i]);
      ++out.rtt_applied;
    }
    if ((st & kStageFeedback) != 0) {
      apply_feedback(slot, staged_loss_[i]);
      ++out.feedback_applied;
    } else if ((st & kStageSilence) != 0) {
      apply_silence(slot);
      ++out.silences;
    }
    if ((st & kStageGamma) != 0) {
      apply_gamma(slot, staged_fgs_loss_[i]);
      ++out.gamma_updates;
    }
    if ((st & kStageLoss) != 0) {
      apply_loss_interval(slot, staged_iloss_[i], now);
      ++out.losses_applied;
    }
    if ((st & kStageMark) != 0) {
      apply_mark_fraction(slot, staged_mark_[i], now);
      ++out.marks_applied;
    }
    if ((st & kStageTick) != 0) {
      apply_control_tick(slot, now);
      ++out.ticks_applied;
    }
    staged_[i] = 0;
  }
  return out;
}

}  // namespace pels
