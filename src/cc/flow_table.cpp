#include "cc/flow_table.h"

#include <cassert>

namespace pels {

FlowTable::FlowTable(MkcConfig mkc, GammaConfig gamma)
    : mkc_(mkc), gamma_cfg_(gamma) {
  // Same domain checks as the controllers' constructors; unstable gamma
  // gains stay allowed on purpose (Figure 5 demonstrates divergence).
  assert(mkc_.alpha_bps > 0.0);
  assert(mkc_.beta > 0.0 && mkc_.beta < 2.0 && "MKC is stable only for beta in (0, 2)");
  assert(mkc_.min_rate_bps > 0.0 && mkc_.min_rate_bps <= mkc_.initial_rate_bps);
  assert(mkc_.initial_rate_bps <= mkc_.max_rate_bps);
  assert(gamma_cfg_.p_thr > 0.0 && gamma_cfg_.p_thr <= 1.0);
  assert(gamma_cfg_.gamma_low >= 0.0 && gamma_cfg_.gamma_low < gamma_cfg_.gamma_high &&
         gamma_cfg_.gamma_high <= 1.0);
  assert(gamma_cfg_.initial_gamma >= gamma_cfg_.gamma_low &&
         gamma_cfg_.initial_gamma <= gamma_cfg_.gamma_high);
}

void FlowTable::reserve(std::size_t flows) {
  rate_.reserve(flows);
  gamma_col_.reserve(flows);
  paced_rate_.reserve(flows);
  recovery_left_.reserve(flows);
  flags_.reserve(flows);
  mkc_updates_.reserve(flows);
  silence_ticks_.reserve(flows);
  gamma_updates_.reserve(flows);
  staged_loss_.reserve(flows);
  staged_fgs_loss_.reserve(flows);
  staged_.reserve(flows);
  free_slots_.reserve(flows);
}

FlowSlot FlowTable::add_flow() {
  return add_flow(mkc_.initial_rate_bps, gamma_cfg_.initial_gamma);
}

FlowSlot FlowTable::add_flow(double initial_rate_bps, double initial_gamma) {
  FlowSlot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<FlowSlot>(rate_.size());
    rate_.emplace_back();
    gamma_col_.emplace_back();
    paced_rate_.emplace_back();
    recovery_left_.emplace_back();
    flags_.emplace_back();
    mkc_updates_.emplace_back();
    silence_ticks_.emplace_back();
    gamma_updates_.emplace_back();
    staged_loss_.emplace_back();
    staged_fgs_loss_.emplace_back();
    staged_.emplace_back();
  }
  rate_[slot] = initial_rate_bps;
  gamma_col_[slot] = initial_gamma;
  paced_rate_[slot] = 0.0;
  recovery_left_[slot] = 0;
  flags_[slot] = kLive;
  mkc_updates_[slot] = 0;
  silence_ticks_[slot] = 0;
  gamma_updates_[slot] = 0;
  staged_loss_[slot] = 0.0;
  staged_fgs_loss_[slot] = 0.0;
  staged_[slot] = 0;
  ++live_count_;
  return slot;
}

void FlowTable::remove_flow(FlowSlot slot) {
  assert(is_live(slot) && "remove_flow on a dead or out-of-range slot");
  flags_[slot] = 0;
  staged_[slot] = 0;
  free_slots_.push_back(slot);
  --live_count_;
}

void FlowTable::apply_feedback(FlowSlot slot, double p) {
  assert(is_live(slot));
  bool silent = (flags_[slot] & kSilent) != 0;
  mkc_feedback_step(mkc_, p, rate_[slot], silent, recovery_left_[slot],
                    mkc_updates_[slot]);
  flags_[slot] = static_cast<std::uint8_t>(silent ? flags_[slot] | kSilent
                                                  : flags_[slot] & ~kSilent);
}

void FlowTable::apply_silence(FlowSlot slot) {
  assert(is_live(slot));
  bool silent = (flags_[slot] & kSilent) != 0;
  mkc_silence_step(mkc_, rate_[slot], silent, silence_ticks_[slot]);
  flags_[slot] = static_cast<std::uint8_t>(silent ? flags_[slot] | kSilent
                                                  : flags_[slot] & ~kSilent);
}

double FlowTable::apply_gamma(FlowSlot slot, double p) {
  assert(is_live(slot));
  return gamma_update_step(gamma_cfg_, p, gamma_col_[slot], gamma_updates_[slot]);
}

FlowTable::BatchStats FlowTable::batch_control_tick() {
  BatchStats out;
  const std::size_t n = rate_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t st = staged_[i];
    if (st == 0 || (flags_[i] & kLive) == 0) continue;
    const auto slot = static_cast<FlowSlot>(i);
    if ((st & kStageFeedback) != 0) {
      apply_feedback(slot, staged_loss_[i]);
      ++out.feedback_applied;
    } else if ((st & kStageSilence) != 0) {
      apply_silence(slot);
      ++out.silences;
    }
    if ((st & kStageGamma) != 0) {
      apply_gamma(slot, staged_fgs_loss_[i]);
      ++out.gamma_updates;
    }
    staged_[i] = 0;
  }
  return out;
}

}  // namespace pels
