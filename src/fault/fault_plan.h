// Deterministic, schedulable fault injection.
//
// A FaultPlan is pure data: a schedule of link flaps, bandwidth brown-outs,
// router restarts, ACK-path blackout windows, and an optional Gilbert–Elliott
// burst-corruption model. Scenarios embed a plan in their config and apply it
// through a FaultInjector at construction, so the full failure schedule is
// part of the experiment description — two runs with the same seed and the
// same plan replay bit-for-bit (tested in robustness_test).
//
// The injector drives *any* Link: flaps use Link::set_up, brown-outs scale
// Link bandwidth for the window (an optional hook lets capacity-derived AQMs
// resize their share, e.g. PelsQueue::set_link_bandwidth), restarts call
// PelsQueue::restart() (FeedbackMeter epoch/counter reset — the failure mode
// the epoch-restart tolerance in FeedbackLabel/PelsSource exists for), and
// blackouts/burst corruption install loss processes on the wire.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fault/loss_process.h"
#include "sim/simulation.h"
#include "util/time.h"

namespace pels {

class Link;
class PelsQueue;

struct FaultPlan {
  /// Link hard-down window: no serialization in [down_at, up_at); the packet
  /// on the wire when the link drops is lost. The attached queue keeps
  /// accepting (and eventually tail-dropping) packets, as a real interface
  /// buffer would during carrier loss.
  struct LinkFlap {
    SimTime down_at = 0;
    SimTime up_at = 0;
  };

  /// Bandwidth brown-out: link rate is scaled by `factor` in [at, until),
  /// then restored to its pre-window value.
  struct Brownout {
    SimTime at = 0;
    SimTime until = 0;
    double factor = 0.5;  // in (0, 1]
  };

  /// Router restart: the PELS queue's feedback meter loses its epoch,
  /// counters, and smoothed rate estimates, and restarts stamping from
  /// epoch 1 — the backward epoch jump consumers must tolerate.
  struct RouterRestart {
    SimTime at = 0;
  };

  /// Generic outage window (used for ACK-path blackouts).
  struct Window {
    SimTime at = 0;
    SimTime until = 0;
  };

  std::vector<LinkFlap> link_flaps;          // forward bottleneck wire
  std::vector<Brownout> brownouts;           // forward bottleneck rate
  std::vector<RouterRestart> router_restarts;  // bottleneck PELS queue
  std::vector<Window> ack_blackouts;         // reverse (ACK) path wire
  /// Burst corruption on the forward wire, alongside (not replacing) any
  /// configured Bernoulli wireless loss.
  std::optional<GilbertElliottConfig> burst_corruption;

  bool empty() const {
    return link_flaps.empty() && brownouts.empty() && router_restarts.empty() &&
           ack_blackouts.empty() && !burst_corruption.has_value();
  }

  /// Throws std::invalid_argument on nonsense (windows with until <= at,
  /// negative times, overlapping same-kind windows on the shared resource —
  /// two flaps or two brown-outs may touch but not overlap — brown-out
  /// factors outside (0, 1], invalid GE probabilities). Scenarios call this
  /// from their own validation.
  void validate() const;
};

/// Applies FaultPlan entries to concrete simulation objects. The injector
/// only *schedules*: all captured state lives in the scheduler's callbacks,
/// so the injector itself may be destroyed after wiring.
class FaultInjector {
 public:
  /// Called with the new link rate after a brown-out edge, so capacity-aware
  /// AQMs can re-derive their share.
  using BandwidthHook = std::function<void(double bandwidth_bps)>;

  explicit FaultInjector(Simulation& sim) : sim_(sim) {}

  void inject_flap(Link& link, FaultPlan::LinkFlap flap);
  void inject_brownout(Link& link, FaultPlan::Brownout brownout,
                       BandwidthHook on_change = {});
  void inject_restart(PelsQueue& queue, FaultPlan::RouterRestart restart);
  /// Installs a blackout loss process on `reverse` covering all `windows`.
  void inject_blackouts(Link& reverse, const std::vector<FaultPlan::Window>& windows);
  /// Installs seeded Gilbert–Elliott burst corruption on `link`.
  void inject_burst_corruption(Link& link, GilbertElliottConfig config, Rng rng);

  /// Convenience: applies every entry of `plan` with `forward` as the data
  /// wire, `reverse` as the ACK wire, and `queue` as the restartable AQM
  /// (may be null when the plan holds no restarts).
  void apply(const FaultPlan& plan, Link& forward, Link& reverse,
             PelsQueue* queue, BandwidthHook on_bandwidth_change = {});

 private:
  Simulation& sim_;
};

}  // namespace pels
