// Wire-loss processes for fault injection.
//
// A loss process decides, per transmitted packet, whether the wire corrupts
// it. `Link` consumes these as plain callables (`bool(SimTime)`), so this
// module owns the models and the network layer stays ignorant of them:
//
//   * BernoulliLoss — i.i.d. corruption at a fixed probability (the model
//     `ScenarioConfig::wireless_loss` always had);
//   * GilbertElliottLoss — the classic two-state burst model: a good and a
//     bad state with per-packet transition probabilities and a per-state
//     corruption probability. Real wireless channels fade for many packets
//     at a time; Bernoulli loss cannot produce those bursts.
//   * BlackoutLoss — deterministic outage windows during which every packet
//     on the wire is lost (ACK-path blackouts, scheduled maintenance).
//
// All stochastic processes draw from an Rng handed in by the caller (derived
// from the simulation's master seed), so every run replays bit-for-bit.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace pels {

/// Per-packet corruption decision; matches Link's corruption hook.
using LossProcessFn = std::function<bool(SimTime now)>;

/// i.i.d. corruption with probability `prob` per packet.
class BernoulliLoss {
 public:
  BernoulliLoss(double prob, Rng rng) : prob_(prob), rng_(rng) {}

  bool lost(SimTime /*now*/) { return rng_.bernoulli(prob_); }
  bool operator()(SimTime now) { return lost(now); }

 private:
  double prob_;
  Rng rng_;
};

/// Two-state Gilbert–Elliott burst-corruption parameters.
///
/// Per packet: the corruption draw uses the *current* state's loss
/// probability, then the state transitions with p_good_to_bad /
/// p_bad_to_good. Stationary bad-state occupancy is
/// p_gb / (p_gb + p_bg); mean bad-burst length is 1 / p_bg packets.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.005;  // per-packet transition into the bad state
  double p_bad_to_good = 0.20;   // per-packet recovery (mean burst = 5 pkts)
  double loss_good = 0.0;        // corruption probability in the good state
  double loss_bad = 0.5;         // corruption probability in the bad state

  /// Long-run corruption probability across both states.
  double stationary_loss() const {
    const double pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
    return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
  }

  /// Throws std::invalid_argument unless all probabilities are valid
  /// (transitions in (0, 1], per-state losses in [0, 1]).
  void validate() const;
};

/// Gilbert–Elliott two-state burst corruption; starts in the good state.
class GilbertElliottLoss {
 public:
  GilbertElliottLoss(GilbertElliottConfig config, Rng rng)
      : cfg_(config), rng_(rng) {}

  bool lost(SimTime now);
  bool operator()(SimTime now) { return lost(now); }
  bool in_bad_state() const { return bad_; }

 private:
  GilbertElliottConfig cfg_;
  Rng rng_;
  bool bad_ = false;
};

/// Deterministic outage: every packet in any [at, until) window is lost.
class BlackoutLoss {
 public:
  struct Window {
    SimTime at = 0;
    SimTime until = 0;
  };

  explicit BlackoutLoss(std::vector<Window> windows)
      : windows_(std::move(windows)) {}

  bool lost(SimTime now) const;
  bool operator()(SimTime now) const { return lost(now); }

 private:
  std::vector<Window> windows_;
};

}  // namespace pels
