#include "fault/loss_process.h"

#include <stdexcept>

namespace pels {

void GilbertElliottConfig::validate() const {
  if (!(p_good_to_bad > 0.0 && p_good_to_bad <= 1.0) ||
      !(p_bad_to_good > 0.0 && p_bad_to_good <= 1.0)) {
    throw std::invalid_argument(
        "GilbertElliottConfig: transition probabilities must be in (0, 1]");
  }
  if (loss_good < 0.0 || loss_good > 1.0 || loss_bad < 0.0 || loss_bad > 1.0) {
    throw std::invalid_argument(
        "GilbertElliottConfig: per-state loss probabilities must be in [0, 1]");
  }
}

bool GilbertElliottLoss::lost(SimTime /*now*/) {
  const bool corrupted =
      rng_.bernoulli(bad_ ? cfg_.loss_bad : cfg_.loss_good);
  if (bad_) {
    if (rng_.bernoulli(cfg_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.bernoulli(cfg_.p_good_to_bad)) bad_ = true;
  }
  return corrupted;
}

bool BlackoutLoss::lost(SimTime now) const {
  for (const Window& w : windows_) {
    if (now >= w.at && now < w.until) return true;
  }
  return false;
}

}  // namespace pels
