#include "fault/chaos.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pels {

void ChaosLimits::validate() const {
  if (min_start < 0 || horizon <= min_start) {
    throw std::invalid_argument("ChaosLimits: need 0 <= min_start < horizon");
  }
  if (min_window < 1 || max_window < min_window) {
    throw std::invalid_argument("ChaosLimits: need 1 <= min_window <= max_window");
  }
  if (horizon - min_start <= min_window) {
    throw std::invalid_argument("ChaosLimits: horizon too small for one min_window");
  }
  if (max_flaps < 0 || max_brownouts < 0 || max_restarts < 0 || max_blackouts < 0) {
    throw std::invalid_argument("ChaosLimits: fault budgets must be >= 0");
  }
  if (max_flaps == 0 && max_brownouts == 0 && max_restarts == 0 && max_blackouts == 0 &&
      ge_probability == 0.0) {
    throw std::invalid_argument("ChaosLimits: empty fault budget (no fault type enabled)");
  }
  if (!(min_brownout_factor > 0.0 && min_brownout_factor < 1.0)) {
    throw std::invalid_argument("ChaosLimits: min_brownout_factor must be in (0, 1)");
  }
  if (ge_probability < 0.0 || ge_probability > 1.0) {
    throw std::invalid_argument("ChaosLimits: ge_probability must be in [0, 1]");
  }
  if (!(max_ge_loss_bad > 0.0 && max_ge_loss_bad <= 1.0) ||
      !(max_ge_p_good_to_bad > 0.0 && max_ge_p_good_to_bad <= 1.0)) {
    throw std::invalid_argument("ChaosLimits: GE ceilings must be in (0, 1]");
  }
}

ChaosPlanGenerator::ChaosPlanGenerator(ChaosLimits limits, Rng rng)
    : limits_(limits), rng_(rng) {
  limits_.validate();
}

std::vector<FaultPlan::Window> ChaosPlanGenerator::sample_windows(int max_count) {
  std::vector<FaultPlan::Window> out;
  if (max_count <= 0) return out;
  const SimTime span = limits_.horizon - limits_.min_start;
  SimTime k = rng_.uniform_int(0, max_count);
  // Same-kind windows must be disjoint (FaultPlan::validate enforces it), so
  // sample one window per equal slot of the activity span: disjoint by
  // construction, no rejection loop, fixed draw count per window. Cap k so
  // every slot still fits a min_window plus one slack nanosecond.
  k = std::min(k, span / (limits_.min_window + 1));
  for (SimTime i = 0; i < k; ++i) {
    const SimTime slot_begin = limits_.min_start + span * i / k;
    const SimTime slot_end = limits_.min_start + span * (i + 1) / k;
    const SimTime len_hi = std::min(limits_.max_window, slot_end - slot_begin - 1);
    const SimTime len = rng_.uniform_int(limits_.min_window, len_hi);
    const SimTime at = rng_.uniform_int(slot_begin, slot_end - len);
    out.push_back(FaultPlan::Window{at, at + len});
  }
  return out;
}

FaultPlan ChaosPlanGenerator::next() {
  FaultPlan plan;
  // Fixed draw order — flaps, brown-outs, restarts, blackouts, GE — so plan
  // k of a (limits, seed) pair is a pure function of k.
  for (const FaultPlan::Window& w : sample_windows(limits_.max_flaps)) {
    plan.link_flaps.push_back(FaultPlan::LinkFlap{w.at, w.until});
  }
  for (const FaultPlan::Window& w : sample_windows(limits_.max_brownouts)) {
    FaultPlan::Brownout b;
    b.at = w.at;
    b.until = w.until;
    b.factor = rng_.uniform(limits_.min_brownout_factor, 1.0);
    plan.brownouts.push_back(b);
  }
  const SimTime restarts = rng_.uniform_int(0, limits_.max_restarts);
  for (SimTime i = 0; i < restarts; ++i) {
    plan.router_restarts.push_back(
        FaultPlan::RouterRestart{rng_.uniform_int(limits_.min_start, limits_.horizon - 1)});
  }
  std::sort(plan.router_restarts.begin(), plan.router_restarts.end(),
            [](const FaultPlan::RouterRestart& a, const FaultPlan::RouterRestart& b) {
              return a.at < b.at;
            });
  plan.ack_blackouts = sample_windows(limits_.max_blackouts);
  if (rng_.bernoulli(limits_.ge_probability)) {
    GilbertElliottConfig ge;
    ge.p_good_to_bad = rng_.uniform(0.001, limits_.max_ge_p_good_to_bad);
    ge.p_bad_to_good = rng_.uniform(0.05, 0.5);
    ge.loss_good = 0.0;
    ge.loss_bad = rng_.uniform(0.1, limits_.max_ge_loss_bad);
    plan.burst_corruption = ge;
  }
  plan.validate();
  ++generated_;
  return plan;
}

std::size_t fault_plan_event_count(const FaultPlan& plan) {
  return plan.link_flaps.size() + plan.brownouts.size() + plan.router_restarts.size() +
         plan.ack_blackouts.size() + (plan.burst_corruption ? 1 : 0);
}

namespace {

/// Applies one mutation candidate: keep it iff it is still a valid plan and
/// the violation still reproduces.
bool keep_mutation(const FaultPlan& candidate, const ShrinkPredicate& still_violates,
                   ShrinkStats& st, std::size_t max_probes) {
  if (st.probes >= max_probes) return false;
  ++st.probes;
  try {
    candidate.validate();
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (!still_violates(candidate)) return false;
  ++st.accepted;
  return true;
}

/// Tries erasing plan.<field>[i] for every i; compacts the vector greedily.
template <typename T>
bool shrink_erase(FaultPlan& plan, std::vector<T> FaultPlan::*field,
                  const ShrinkPredicate& pred, ShrinkStats& st, std::size_t max_probes) {
  bool changed = false;
  std::size_t i = 0;
  while (i < (plan.*field).size() && st.probes < max_probes) {
    FaultPlan candidate = plan;
    (candidate.*field).erase((candidate.*field).begin() + static_cast<std::ptrdiff_t>(i));
    if (keep_mutation(candidate, pred, st, max_probes)) {
      plan = std::move(candidate);
      changed = true;
    } else {
      ++i;
    }
  }
  return changed;
}

}  // namespace

FaultPlan shrink_fault_plan(FaultPlan plan, const ShrinkPredicate& still_violates,
                            ShrinkStats* stats, std::size_t max_probes) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st = ShrinkStats{};

  bool changed = true;
  while (changed && st.probes < max_probes) {
    changed = false;
    ++st.rounds;

    // Pass 1 — drop whole events. Smallest repros come from fewer events
    // first, so removal runs before any window/severity tuning.
    changed |= shrink_erase(plan, &FaultPlan::link_flaps, still_violates, st, max_probes);
    changed |= shrink_erase(plan, &FaultPlan::brownouts, still_violates, st, max_probes);
    changed |=
        shrink_erase(plan, &FaultPlan::router_restarts, still_violates, st, max_probes);
    changed |=
        shrink_erase(plan, &FaultPlan::ack_blackouts, still_violates, st, max_probes);
    if (plan.burst_corruption && st.probes < max_probes) {
      FaultPlan candidate = plan;
      candidate.burst_corruption.reset();
      if (keep_mutation(candidate, still_violates, st, max_probes)) {
        plan = std::move(candidate);
        changed = true;
      }
    }

    // Pass 2 — halve window durations (geometric, so each window costs at
    // most ~2log(len) probes over the whole shrink).
    for (std::size_t i = 0; i < plan.link_flaps.size() && st.probes < max_probes; ++i) {
      const SimTime dur = plan.link_flaps[i].up_at - plan.link_flaps[i].down_at;
      if (dur < 2) continue;
      FaultPlan candidate = plan;
      candidate.link_flaps[i].up_at = candidate.link_flaps[i].down_at + dur / 2;
      if (keep_mutation(candidate, still_violates, st, max_probes)) {
        plan = std::move(candidate);
        changed = true;
      }
    }
    for (std::size_t i = 0; i < plan.brownouts.size() && st.probes < max_probes; ++i) {
      const SimTime dur = plan.brownouts[i].until - plan.brownouts[i].at;
      if (dur < 2) continue;
      FaultPlan candidate = plan;
      candidate.brownouts[i].until = candidate.brownouts[i].at + dur / 2;
      if (keep_mutation(candidate, still_violates, st, max_probes)) {
        plan = std::move(candidate);
        changed = true;
      }
    }
    for (std::size_t i = 0; i < plan.ack_blackouts.size() && st.probes < max_probes; ++i) {
      const SimTime dur = plan.ack_blackouts[i].until - plan.ack_blackouts[i].at;
      if (dur < 2) continue;
      FaultPlan candidate = plan;
      candidate.ack_blackouts[i].until = candidate.ack_blackouts[i].at + dur / 2;
      if (keep_mutation(candidate, still_violates, st, max_probes)) {
        plan = std::move(candidate);
        changed = true;
      }
    }

    // Pass 3 — soften severities: brown-out factor halfway toward 1 (no
    // degradation), GE corruption and burst-entry probabilities halved.
    // Minimum meaningful steps bound the passes (the probe cap is the
    // backstop, not the terminator).
    for (std::size_t i = 0; i < plan.brownouts.size() && st.probes < max_probes; ++i) {
      const double f = plan.brownouts[i].factor;
      if (1.0 - f < 0.05) continue;
      FaultPlan candidate = plan;
      candidate.brownouts[i].factor = f + (1.0 - f) / 2.0;
      if (keep_mutation(candidate, still_violates, st, max_probes)) {
        plan = std::move(candidate);
        changed = true;
      }
    }
    if (plan.burst_corruption && st.probes < max_probes) {
      if (plan.burst_corruption->loss_bad >= 0.02) {
        FaultPlan candidate = plan;
        candidate.burst_corruption->loss_bad /= 2.0;
        if (keep_mutation(candidate, still_violates, st, max_probes)) {
          plan = std::move(candidate);
          changed = true;
        }
      }
      if (plan.burst_corruption && plan.burst_corruption->p_good_to_bad >= 0.0005 &&
          st.probes < max_probes) {
        FaultPlan candidate = plan;
        candidate.burst_corruption->p_good_to_bad /= 2.0;
        if (keep_mutation(candidate, still_violates, st, max_probes)) {
          plan = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  return plan;
}

namespace {

struct WindowTally {
  int past = 0;
  int active = 0;
  int ahead = 0;
};

WindowTally tally(SimTime at, SimTime until, SimTime now, WindowTally t) {
  if (until <= now) {
    ++t.past;
  } else if (at <= now) {
    ++t.active;
  } else {
    ++t.ahead;
  }
  return t;
}

void append_tally(std::ostringstream& os, const char* name, const WindowTally& t) {
  os << name << "[past=" << t.past << ",active=" << t.active << ",ahead=" << t.ahead
     << "] ";
}

}  // namespace

std::string describe_fault_position(const FaultPlan& plan, SimTime now) {
  WindowTally flaps, brownouts, blackouts, restarts;
  for (const FaultPlan::LinkFlap& f : plan.link_flaps) {
    flaps = tally(f.down_at, f.up_at, now, flaps);
  }
  for (const FaultPlan::Brownout& b : plan.brownouts) {
    brownouts = tally(b.at, b.until, now, brownouts);
  }
  for (const FaultPlan::Window& w : plan.ack_blackouts) {
    blackouts = tally(w.at, w.until, now, blackouts);
  }
  for (const FaultPlan::RouterRestart& r : plan.router_restarts) {
    restarts = tally(r.at, r.at + 1, now, restarts);
  }
  std::ostringstream os;
  append_tally(os, "flap", flaps);
  append_tally(os, "brownout", brownouts);
  append_tally(os, "restart", restarts);
  append_tally(os, "blackout", blackouts);
  os << "ge=" << (plan.burst_corruption ? "on" : "off");
  return os.str();
}

namespace {

JsonValue plan_to_value(const FaultPlan& plan) {
  std::vector<JsonValue> flaps;
  for (const FaultPlan::LinkFlap& f : plan.link_flaps) {
    flaps.push_back(JsonValue::object({{"down_at", JsonValue(f.down_at)},
                                       {"up_at", JsonValue(f.up_at)}}));
  }
  std::vector<JsonValue> brownouts;
  for (const FaultPlan::Brownout& b : plan.brownouts) {
    brownouts.push_back(JsonValue::object({{"at", JsonValue(b.at)},
                                           {"until", JsonValue(b.until)},
                                           {"factor", JsonValue(b.factor)}}));
  }
  std::vector<JsonValue> restarts;
  for (const FaultPlan::RouterRestart& r : plan.router_restarts) {
    restarts.push_back(JsonValue::object({{"at", JsonValue(r.at)}}));
  }
  std::vector<JsonValue> blackouts;
  for (const FaultPlan::Window& w : plan.ack_blackouts) {
    blackouts.push_back(
        JsonValue::object({{"at", JsonValue(w.at)}, {"until", JsonValue(w.until)}}));
  }
  JsonValue ge;  // null when absent
  if (plan.burst_corruption) {
    const GilbertElliottConfig& g = *plan.burst_corruption;
    ge = JsonValue::object({{"p_good_to_bad", JsonValue(g.p_good_to_bad)},
                            {"p_bad_to_good", JsonValue(g.p_bad_to_good)},
                            {"loss_good", JsonValue(g.loss_good)},
                            {"loss_bad", JsonValue(g.loss_bad)}});
  }
  return JsonValue::object({{"link_flaps", JsonValue::array(std::move(flaps))},
                            {"brownouts", JsonValue::array(std::move(brownouts))},
                            {"router_restarts", JsonValue::array(std::move(restarts))},
                            {"ack_blackouts", JsonValue::array(std::move(blackouts))},
                            {"burst_corruption", std::move(ge)}});
}

}  // namespace

void write_fault_plan_json(std::ostream& os, const FaultPlan& plan) {
  plan_to_value(plan).write(os);
}

std::string fault_plan_to_json(const FaultPlan& plan) {
  return plan_to_value(plan).dump();
}

FaultPlan fault_plan_from_json(const JsonValue& doc) {
  FaultPlan plan;
  for (const JsonValue& v : doc.at("link_flaps").items()) {
    plan.link_flaps.push_back(
        FaultPlan::LinkFlap{v.at("down_at").as_int64(), v.at("up_at").as_int64()});
  }
  for (const JsonValue& v : doc.at("brownouts").items()) {
    FaultPlan::Brownout b;
    b.at = v.at("at").as_int64();
    b.until = v.at("until").as_int64();
    b.factor = v.at("factor").as_double();
    plan.brownouts.push_back(b);
  }
  for (const JsonValue& v : doc.at("router_restarts").items()) {
    plan.router_restarts.push_back(FaultPlan::RouterRestart{v.at("at").as_int64()});
  }
  for (const JsonValue& v : doc.at("ack_blackouts").items()) {
    plan.ack_blackouts.push_back(
        FaultPlan::Window{v.at("at").as_int64(), v.at("until").as_int64()});
  }
  const JsonValue& ge = doc.at("burst_corruption");
  if (!ge.is_null()) {
    GilbertElliottConfig g;
    g.p_good_to_bad = ge.at("p_good_to_bad").as_double();
    g.p_bad_to_good = ge.at("p_bad_to_good").as_double();
    g.loss_good = ge.at("loss_good").as_double();
    g.loss_bad = ge.at("loss_bad").as_double();
    plan.burst_corruption = g;
  }
  plan.validate();
  return plan;
}

FaultPlan fault_plan_from_json(const std::string& text) {
  return fault_plan_from_json(JsonValue::parse(text));
}

void write_chaos_repro_json(std::ostream& os, std::uint64_t seed,
                            const InvariantViolation& violation, const FaultPlan& plan,
                            const ShrinkStats& shrink, std::size_t original_events) {
  os << "{\"schema_version\":1,\"kind\":\"chaos-repro\",\"seed\":" << seed
     << ",\"invariant\":";
  write_json_string(os, violation.invariant);
  os << ",\"at_ns\":" << violation.at << ",\"tick\":" << violation.tick << ",\"detail\":";
  write_json_string(os, violation.detail);
  os << ",\"context\":";
  write_json_string(os, violation.context);
  os << ",\"shrink\":{\"probes\":" << shrink.probes << ",\"accepted\":" << shrink.accepted
     << ",\"rounds\":" << shrink.rounds << ",\"original_events\":" << original_events
     << ",\"shrunk_events\":" << fault_plan_event_count(plan) << "},\"fault_plan\":";
  write_fault_plan_json(os, plan);
  os << "}\n";
}

}  // namespace pels
