// Chaos harness: randomized fault-schedule fuzzing with automatic shrinking.
//
// Hand-written fault scenarios cover the failure modes someone thought of;
// the chaos harness covers the rest. A ChaosPlanGenerator samples
// bounded-severity FaultPlans — link-flap / brown-out / ACK-blackout /
// router-restart / Gilbert–Elliott mixes — from a seeded Rng, so a campaign
// of N schedules is fully described by (limits, seed) and any schedule
// replays bit-for-bit. Plans are valid by construction: windows of the same
// kind never overlap (FaultPlan::validate now rejects overlapping flaps and
// brown-outs — the first flap's up-edge would fire inside the second's down
// window) and every knob respects the severity bounds in ChaosLimits.
//
// When a schedule trips an invariant (sim/invariants.h), shrink_fault_plan
// delta-debugs it: greedily drop single events, shorten windows, and halve
// severities, keeping each mutation only if the violation still reproduces,
// until a full round makes no progress. The result plus the violation record
// is serialized as a replayable JSON repro artifact (read back with
// fault_plan_from_json for a one-command replay; CI uploads these).
#pragma once

#include <iosfwd>
#include <string>

#include "fault/fault_plan.h"
#include "sim/invariants.h"
#include "util/json.h"
#include "util/rng.h"

namespace pels {

/// Severity envelope for generated plans. Every sampled schedule fits the
/// scenario horizon and keeps each fault type within plausible bounds — the
/// campaign looks for invariant violations, not for "everything is down
/// forever" trivialities.
struct ChaosLimits {
  /// All fault activity happens in [min_start, horizon).
  SimTime horizon = from_seconds(30);
  SimTime min_start = from_millis(500);

  int max_flaps = 2;       // forward-link hard-down windows
  int max_brownouts = 2;   // forward-link rate degradations
  int max_restarts = 1;    // PELS queue control-plane restarts
  int max_blackouts = 2;   // reverse (ACK) path outage windows

  /// Window length bounds for flaps/brown-outs/blackouts.
  SimTime min_window = from_millis(20);
  SimTime max_window = from_seconds(2);

  double min_brownout_factor = 0.25;  // worst sampled rate degradation
  double ge_probability = 0.25;       // chance a plan carries GE corruption
  double max_ge_loss_bad = 0.6;       // bad-state corruption ceiling
  double max_ge_p_good_to_bad = 0.02; // burst-entry rate ceiling

  /// Throws std::invalid_argument on nonsense (horizon too small for a
  /// window, probabilities outside [0,1], empty fault budget).
  void validate() const;
};

/// Seeded FaultPlan sampler. Draws consume the Rng sequentially in a fixed
/// order, so plan k of a given (limits, rng) pair is always the same plan:
/// the campaign driver records only (seed, index) per schedule and can
/// regenerate any of them on demand.
class ChaosPlanGenerator {
 public:
  ChaosPlanGenerator(ChaosLimits limits, Rng rng);

  /// Samples the next plan. Always returns a validated plan (same-kind
  /// windows disjoint by construction).
  FaultPlan next();

  std::uint64_t generated() const { return generated_; }
  const ChaosLimits& limits() const { return limits_; }

 private:
  std::vector<FaultPlan::Window> sample_windows(int max_count);

  ChaosLimits limits_;
  Rng rng_;
  std::uint64_t generated_ = 0;
};

/// Returns true when the (possibly mutated) plan still triggers the failure
/// being minimized. Must be deterministic: same plan, same verdict.
using ShrinkPredicate = std::function<bool(const FaultPlan&)>;

struct ShrinkStats {
  std::size_t probes = 0;    // predicate evaluations
  std::size_t accepted = 0;  // mutations that kept the violation
  std::size_t rounds = 0;    // full passes over the mutation set
};

/// Total number of schedulable entries in the plan (GE counts as one).
std::size_t fault_plan_event_count(const FaultPlan& plan);

/// Delta-debugging shrinker. Starting from a violating `plan`, repeatedly
/// tries, in a fixed order: removing one event, halving one window's
/// duration, softening one severity (brown-out factor toward 1, GE loss and
/// burst-entry probability halved). A mutation is kept iff `still_violates`
/// returns true on the mutant; rounds repeat until none is kept (fixpoint)
/// or `max_probes` predicate calls were spent. Returns the minimized plan —
/// guaranteed to still satisfy the predicate and FaultPlan::validate().
FaultPlan shrink_fault_plan(FaultPlan plan, const ShrinkPredicate& still_violates,
                            ShrinkStats* stats = nullptr, std::size_t max_probes = 2000);

/// Compact one-line description of where `now` sits relative to the plan:
/// per fault type, how many windows are past / active / ahead. Installed as
/// the InvariantMonitor context so every violation records its fault-plan
/// position.
std::string describe_fault_position(const FaultPlan& plan, SimTime now);

/// FaultPlan <-> JSON. Times are raw integer nanoseconds (exact round-trip);
/// the encoding is stable and covered by chaos_test.
void write_fault_plan_json(std::ostream& os, const FaultPlan& plan);
std::string fault_plan_to_json(const FaultPlan& plan);
FaultPlan fault_plan_from_json(const JsonValue& doc);
FaultPlan fault_plan_from_json(const std::string& text);

/// Replayable repro artifact for one minimized violation: schema header,
/// campaign coordinates (seed), the violation record, shrink statistics, and
/// the minimized plan. Deterministic output (byte-identical across runs of
/// the same failure).
void write_chaos_repro_json(std::ostream& os, std::uint64_t seed,
                            const InvariantViolation& violation, const FaultPlan& plan,
                            const ShrinkStats& shrink, std::size_t original_events);

}  // namespace pels
