#include "fault/fault_plan.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/link.h"
#include "queue/pels_queue.h"

namespace pels {

namespace {

void check_window(SimTime at, SimTime until, const char* what) {
  if (at < 0 || until <= at) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " window needs 0 <= at < until");
  }
}

/// Same-kind windows acting on one resource must be disjoint (touching is
/// fine). Overlapping flaps are semantically broken — the first flap's
/// up-edge fires inside the second's down window and silently revives the
/// link; overlapping brown-outs restore the degraded (not the original)
/// rate. The chaos generator produces disjoint windows by construction;
/// hand-written plans get the same guarantee checked here.
void check_disjoint(std::vector<std::pair<SimTime, SimTime>> spans, const char* what) {
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first < spans[i - 1].second) {
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " windows overlap (same link/resource)");
    }
  }
}

}  // namespace

void FaultPlan::validate() const {
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (const LinkFlap& f : link_flaps) {
    check_window(f.down_at, f.up_at, "link-flap");
    spans.emplace_back(f.down_at, f.up_at);
  }
  check_disjoint(std::move(spans), "link-flap");
  spans.clear();
  for (const Brownout& b : brownouts) {
    check_window(b.at, b.until, "brown-out");
    if (!(b.factor > 0.0 && b.factor <= 1.0)) {
      throw std::invalid_argument("FaultPlan: brown-out factor must be in (0, 1]");
    }
    spans.emplace_back(b.at, b.until);
  }
  check_disjoint(std::move(spans), "brown-out");
  for (const RouterRestart& r : router_restarts) {
    if (r.at < 0) throw std::invalid_argument("FaultPlan: restart time must be >= 0");
  }
  for (const Window& w : ack_blackouts) check_window(w.at, w.until, "ACK-blackout");
  if (burst_corruption) burst_corruption->validate();
}

void FaultInjector::inject_flap(Link& link, FaultPlan::LinkFlap flap) {
  Link* l = &link;
  sim_.at(flap.down_at, [l] { l->set_up(false); });
  sim_.at(flap.up_at, [l] { l->set_up(true); });
}

void FaultInjector::inject_brownout(Link& link, FaultPlan::Brownout brownout,
                                    BandwidthHook on_change) {
  Link* l = &link;
  Simulation* sim = &sim_;
  sim_.at(brownout.at, [l, sim, brownout, on_change = std::move(on_change)] {
    // Capture the rate at the window edge (not at plan time): an earlier
    // capacity change or overlapping fault must be restored, not overwritten.
    const double prior = l->bandwidth_bps();
    const double degraded = prior * brownout.factor;
    l->set_bandwidth_bps(degraded);
    if (on_change) on_change(degraded);
    sim->at(brownout.until, [l, prior, on_change] {
      l->set_bandwidth_bps(prior);
      if (on_change) on_change(prior);
    });
  });
}

void FaultInjector::inject_restart(PelsQueue& queue, FaultPlan::RouterRestart restart) {
  PelsQueue* q = &queue;
  sim_.at(restart.at, [q] { q->restart(); });
}

void FaultInjector::inject_blackouts(Link& reverse,
                                     const std::vector<FaultPlan::Window>& windows) {
  if (windows.empty()) return;
  std::vector<BlackoutLoss::Window> spans;
  spans.reserve(windows.size());
  for (const FaultPlan::Window& w : windows) spans.push_back({w.at, w.until});
  reverse.add_corruption(BlackoutLoss(std::move(spans)));
}

void FaultInjector::inject_burst_corruption(Link& link, GilbertElliottConfig config,
                                            Rng rng) {
  link.add_corruption(GilbertElliottLoss(config, rng));
}

void FaultInjector::apply(const FaultPlan& plan, Link& forward, Link& reverse,
                          PelsQueue* queue, BandwidthHook on_bandwidth_change) {
  assert(queue != nullptr || plan.router_restarts.empty());
  for (const FaultPlan::LinkFlap& f : plan.link_flaps) inject_flap(forward, f);
  for (const FaultPlan::Brownout& b : plan.brownouts)
    inject_brownout(forward, b, on_bandwidth_change);
  for (const FaultPlan::RouterRestart& r : plan.router_restarts)
    inject_restart(*queue, r);
  inject_blackouts(reverse, plan.ack_blackouts);
  if (plan.burst_corruption) {
    // Stream id fixed so the corruption pattern depends only on the master
    // seed and the plan, never on wiring order.
    inject_burst_corruption(forward, *plan.burst_corruption, sim_.make_rng(0x6E11));
  }
}

}  // namespace pels
