#include "exp/domain_runner.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "net/node.h"

namespace pels {

// The barrier injection captures a moved Packet plus a node reference into a
// scheduler callback; pin the budget the same way net/link.cpp does.
static_assert(Scheduler::Callback::capacity() >= sizeof(Packet) + 2 * sizeof(void*),
              "kSchedulerCallbackCapacity (sim/scheduler.h) must fit a moved "
              "Packet capture plus housekeeping pointers");

namespace {

unsigned pool_threads(const Topology& topo, unsigned requested) {
  const auto domains = static_cast<unsigned>(topo.domain_count());
  // One worker per domain is the natural maximum; SweepRunner then applies
  // the hardware clamp on top.
  return requested == 0 ? domains : std::min(requested, domains);
}

}  // namespace

DomainRunner::DomainRunner(Topology& topo, unsigned threads)
    : topo_(topo),
      pool_(pool_threads(topo, threads)),
      lookahead_(topo.min_boundary_delay()) {
  const auto& boundary = topo_.boundary_links();
  mail_.resize(boundary.size());
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    boundary[i].link->set_remote_delivery([this, i](Packet&& pkt, SimTime deliver_at) {
      mail_[i].push_back(Handoff{std::move(pkt), deliver_at});
    });
  }
}

DomainRunner::~DomainRunner() {
  // Detach the mailboxes before they are destroyed; the links may outlive
  // this runner and fall back to ordinary local delivery.
  for (const Topology::BoundaryLink& b : topo_.boundary_links()) {
    b.link->set_remote_delivery(nullptr);
  }
}

DomainRunner::Stats DomainRunner::stats() const {
  Stats s;
  s.requested_threads = pool_.requested_threads();
  s.effective_threads = pool_.thread_count();
  s.lookahead = lookahead_;
  s.windows = windows_;
  s.handoffs = handoffs_;
  return s;
}

void DomainRunner::run_until(SimTime t_end) {
  const std::size_t domains = topo_.domain_count();
  if (domains <= 1) {
    // Single domain: no boundaries, no barriers — plain sequential DES.
    try {
      topo_.sim().run_until(t_end);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("DomainRunner: domain 0 failed: ") + e.what());
    }
    ++windows_;
    return;
  }
  SimTime now = topo_.domain_sim(0).now();
  errors_.assign(domains, std::string());

  // Stall watchdog budget. Each completed window ends past the previous
  // earliest pending event, which itself is past the previous window's end —
  // so every window advances by MORE than the lookahead, bounding a healthy
  // run at (t_end - now) / lookahead + 2 windows. 4x slack plus a constant
  // keeps the budget unreachable for any correct run while still finite for
  // a wedged one.
  std::uint64_t budget = max_windows_override_;
  if (budget == 0 && lookahead_ > 0 && lookahead_ != kTimeNever && now < t_end) {
    const std::uint64_t bound =
        static_cast<std::uint64_t>((t_end - now) / lookahead_) + 2;
    budget = bound * 4 + 16;
  }
  std::uint64_t windows_this_run = 0;

  while (now < t_end) {
    if (budget != 0 && windows_this_run >= budget) {
      std::ostringstream msg;
      msg << "DomainRunner: stall watchdog tripped after " << windows_this_run
          << " windows (budget " << budget << ", lookahead " << lookahead_
          << "ns, target " << t_end << "ns); domain state:";
      for (std::size_t d = 0; d < domains; ++d) {
        Scheduler& sched = topo_.domain_sim(static_cast<int>(d)).scheduler();
        msg << " [domain " << d << ": now=" << sched.now()
            << " next=" << sched.peek_next_time() << " pending=" << sched.pending()
            << "]";
      }
      throw std::runtime_error(msg.str());
    }
    ++windows_this_run;
    // Window sizing: every event executed this window has time >= the
    // earliest pending event across all domains, so every handoff it can
    // produce arrives >= earliest + lookahead. Capping the window there
    // keeps arrivals out of every domain's past — and when the earliest
    // event is far away (or absent), the whole idle stretch is skipped in
    // a single window instead of being barrier-stepped through.
    SimTime earliest = kTimeNever;
    for (std::size_t d = 0; d < domains; ++d) {
      earliest = std::min(earliest,
                          topo_.domain_sim(static_cast<int>(d)).scheduler().peek_next_time());
    }
    SimTime end = t_end;
    if (earliest != kTimeNever && lookahead_ != kTimeNever) {
      const SimTime horizon =
          earliest > kTimeNever - lookahead_ ? kTimeNever : earliest + lookahead_;
      end = std::min(t_end, horizon);
    }
    pool_.run_indexed(domains, [this, end](std::size_t d) {
      // The pool's jobs-must-not-throw contract: capture here, rethrow with
      // domain context after the join. An escaped exception would
      // std::terminate the worker.
      try {
        topo_.domain_sim(static_cast<int>(d)).run_until(end);
      } catch (const std::exception& e) {
        errors_[d] = e.what();
      } catch (...) {
        errors_[d] = "non-standard exception";
      }
    });
    ++windows_;
    for (std::size_t d = 0; d < domains; ++d) {
      if (errors_[d].empty()) continue;
      std::ostringstream msg;
      msg << "DomainRunner: domain " << d << " failed in window " << windows_this_run
          << " (t=" << now << ".." << end << "ns): " << errors_[d];
      for (std::size_t o = d + 1; o < domains; ++o) {
        if (!errors_[o].empty()) {
          msg << "; domain " << o << ": " << errors_[o];
        }
      }
      throw std::runtime_error(msg.str());
    }

    // Barrier: inject cross-domain arrivals, iterating boundary links in
    // creation order and each mailbox FIFO. This order — not completion or
    // thread order — decides scheduler tie-break sequence numbers in the
    // destination, which is what makes the run byte-identical at any
    // thread count.
    const auto& boundary = topo_.boundary_links();
    for (std::size_t i = 0; i < boundary.size(); ++i) {
      std::vector<Handoff>& box = mail_[i];
      if (box.empty()) continue;
      Simulation& dst_sim = topo_.domain_sim(boundary[i].to_domain);
      Node& dst = topo_.node(boundary[i].dst);
      for (Handoff& h : box) {
        assert(h.deliver_at >= end && "handoff arrived inside the lookahead window");
        dst_sim.at(h.deliver_at, [&dst, pkt = std::move(h.pkt)]() mutable {
          dst.receive(std::move(pkt));
        });
      }
      handoffs_ += box.size();
      box.clear();
    }
    now = end;
  }
}

}  // namespace pels
