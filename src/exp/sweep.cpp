#include "exp/sweep.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/table.h"

namespace pels {

unsigned SweepRunner::default_threads() {
  if (const char* env = std::getenv("PELS_SWEEP_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(unsigned threads) {
  unsigned n = threads == 0 ? default_threads() : threads;
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SweepRunner::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (batch_ != nullptr && next_job_ < batch_->size());
    });
    if (stop_) return;
    std::function<void()>& job = (*batch_)[next_job_++];
    lock.unlock();
    job();  // noexcept by contract (run() wraps task exceptions)
    lock.lock();
    if (++jobs_done_ == batch_->size()) done_cv_.notify_all();
  }
}

void SweepRunner::run_jobs(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  // One batch at a time; a second submitter waits for the pool to go idle.
  done_cv_.wait(lock, [this] { return batch_ == nullptr; });
  batch_ = &jobs;
  next_job_ = 0;
  jobs_done_ = 0;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this, &jobs] { return jobs_done_ == jobs.size(); });
  batch_ = nullptr;
  done_cv_.notify_all();  // wake any submitter waiting for the pool
}

std::string run_to_table(SweepRunner& runner,
                         std::vector<std::function<SweepOutput()>> tasks,
                         TablePrinter& table) {
  auto outcomes = runner.run(std::move(tasks));
  std::ostringstream errors;
  std::string text;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      errors << "  task " << i << ": " << outcomes[i].error << '\n';
      continue;
    }
    for (auto& row : outcomes[i].value->rows) table.add_row(std::move(row));
    text += outcomes[i].value->text;
  }
  const std::string failed = errors.str();
  if (!failed.empty()) throw std::runtime_error("sweep task(s) failed:\n" + failed);
  return text;
}

}  // namespace pels
