#include "exp/sweep.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exp/journal.h"
#include "util/table.h"

namespace pels {

namespace {

/// Epoch tag occupies the high 32 bits of ticket_/done_; the low 32 bits
/// hold the next-unclaimed index / completed-job count. A worker can only
/// CAS against counters carrying the epoch it was dispatched for, so a
/// straggler waking after its batch retired can neither steal tickets from
/// nor report completions into a newer batch. (The tag is the low 32 bits
/// of the 64-bit epoch; confusing two batches would take a worker sleeping
/// through exactly 2^32 of them.)
std::uint64_t epoch_tag(std::uint64_t epoch) { return (epoch & 0xffffffffULL) << 32; }

}  // namespace

unsigned SweepRunner::default_threads() {
  if (const char* env = std::getenv("PELS_SWEEP_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) return static_cast<unsigned>(n);
  }
  return hardware_threads();
}

unsigned SweepRunner::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ScratchArena& SweepRunner::worker_scratch() {
  static thread_local ScratchArena arena;
  return arena;
}

SweepRunner::SweepRunner(unsigned threads) {
  requested_ = threads == 0 ? default_threads() : threads;
  // Oversubscription clamp: more workers than hardware threads buys only
  // context-switch thrash and then reads as a scaling regression in benches
  // (the exact failure BENCH_pipeline.json once recorded from a 1-core CI
  // box). The requested/effective pair stays visible through stats().
  const unsigned n = std::max(1u, std::min(requested_, hardware_threads()));
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

SweepRunner::Stats SweepRunner::stats() const {
  Stats s;
  s.requested_threads = requested_;
  s.effective_threads = static_cast<unsigned>(workers_.size());
  s.batches = batches_;
  s.jobs = jobs_run_;
  return s;
}

void SweepRunner::worker_loop() {
  ScratchArena& arena = worker_scratch();
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const std::function<void(std::size_t)>* job = job_;
    const std::size_t n = batch_size_;
    const std::size_t chunk = chunk_;
    lock.unlock();

    // Claim [begin, end) ticket ranges lock-free until the batch is drained.
    const std::uint64_t tag = epoch_tag(seen);
    std::size_t completed = 0;
    std::uint64_t cur = ticket_.load(std::memory_order_relaxed);
    while ((cur & ~0xffffffffULL) == tag) {
      const std::size_t begin = static_cast<std::uint32_t>(cur);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      if (!ticket_.compare_exchange_weak(cur, tag | end, std::memory_order_relaxed)) {
        continue;  // lost the race (or another epoch took over); cur reloaded
      }
      for (std::size_t i = begin; i < end; ++i) {
        (*job)(i);  // noexcept by contract (run() wraps task exceptions)
        arena.reset();
      }
      completed += end - begin;
      cur = ticket_.load(std::memory_order_relaxed);
    }

    if (completed > 0) {
      // Publish results (release) and wake the submitter if this made the
      // batch complete. Locking mu_ around the notify pins the submitter
      // inside its predicate-checked wait.
      std::uint64_t done = done_.load(std::memory_order_relaxed);
      std::uint64_t fresh = 0;
      do {
        assert((done & ~0xffffffffULL) == tag && "batch retired with work unreported");
        fresh = tag | (static_cast<std::uint32_t>(done) + completed);
      } while (!done_.compare_exchange_weak(done, fresh, std::memory_order_acq_rel));
      if (static_cast<std::uint32_t>(fresh) == n) {
        std::lock_guard<std::mutex> g(mu_);
        done_cv_.notify_all();
      }
    }
    lock.lock();
  }
}

void SweepRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  assert(n < (1ULL << 32) && "batch size must fit the 32-bit ticket space");
  std::unique_lock<std::mutex> lock(mu_);
  // One batch at a time; a second submitter waits for the pool to go idle.
  done_cv_.wait(lock, [this] { return job_ == nullptr; });
  job_ = &job;
  batch_size_ = n;
  // Chunked claiming: large batches of cheap jobs amortize the ticket RMW,
  // small batches keep chunk=1 so every worker gets work. The cap bounds
  // tail imbalance when job costs vary.
  chunk_ = std::clamp<std::size_t>(n / (workers_.size() * 8), 1, 64);
  ++epoch_;
  const std::uint64_t tag = epoch_tag(epoch_);
  ticket_.store(tag, std::memory_order_relaxed);
  done_.store(tag, std::memory_order_relaxed);
  ++batches_;
  jobs_run_ += n;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this, n, tag] {
    return done_.load(std::memory_order_acquire) == (tag | n);
  });
  job_ = nullptr;
  done_cv_.notify_all();  // wake any submitter waiting for the pool
}

void SweepRunner::run_jobs(std::vector<std::function<void()>> jobs) {
  run_indexed(jobs.size(), [&jobs](std::size_t i) { jobs[i](); });
}

std::string run_to_table(SweepRunner& runner,
                         std::vector<std::function<SweepOutput()>> tasks,
                         TablePrinter& table) {
  return run_sweep_to_table(runner, std::move(tasks), table, SweepOptions{}).text;
}

SweepReport run_sweep_to_table(SweepRunner& runner,
                               std::vector<std::function<SweepOutput()>> tasks,
                               TablePrinter& table, const SweepOptions& options) {
  const std::size_t n = tasks.size();
  if (!options.labels.empty() && options.labels.size() != n) {
    throw std::invalid_argument("run_sweep_to_table: labels must be empty or one per task");
  }
  const auto label_of = [&options](std::size_t i) {
    return options.labels.empty() ? std::string() : options.labels[i];
  };

  SweepReport report;

  // Resume: satisfy journaled indices without re-running them. A label
  // mismatch means the journal belongs to a different sweep — refusing beats
  // silently committing rows from two experiments into one table.
  std::vector<const SweepOutput*> journaled(n, nullptr);
  if (options.journal != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!options.journal->has(i)) continue;
      if (!options.labels.empty()) {
        const std::string* recorded = options.journal->label(i);
        if (recorded == nullptr || *recorded != options.labels[i]) {
          throw std::runtime_error(
              "run_sweep_to_table: journal '" + options.journal->path() +
              "' disagrees at task " + std::to_string(i) + ": journaled label '" +
              (recorded != nullptr ? *recorded : std::string("<none>")) +
              "' vs requested '" + options.labels[i] + "'");
        }
      }
      journaled[i] = options.journal->get(i);
      ++report.reused;
    }
  }

  std::vector<std::size_t> missing;
  missing.reserve(n - report.reused);
  for (std::size_t i = 0; i < n; ++i) {
    if (journaled[i] == nullptr) missing.push_back(i);
  }

  // Fresh executions journal themselves from the worker at completion, so a
  // crash mid-batch loses at most the tasks still in flight.
  std::vector<std::function<SweepOutput()>> to_run;
  to_run.reserve(missing.size());
  for (const std::size_t index : missing) {
    to_run.push_back([&tasks, &options, label_of, index] {
      SweepOutput out = tasks[index]();
      if (options.journal != nullptr) options.journal->record(index, label_of(index), out);
      return out;
    });
  }
  auto outcomes = runner.run(std::move(to_run));
  report.executed = missing.size();

  // Map pool outcomes back to task indices; optionally retry failures on the
  // calling thread before declaring them failed.
  std::vector<std::optional<SweepOutput>> fresh(n);
  for (std::size_t k = 0; k < missing.size(); ++k) {
    const std::size_t index = missing[k];
    if (outcomes[k].ok()) {
      fresh[index] = std::move(*outcomes[k].value);
      continue;
    }
    std::string error = std::move(outcomes[k].error);
    if (options.retry_failed_serially) {
      try {
        SweepOutput out = tasks[index]();
        if (options.journal != nullptr) {
          options.journal->record(index, label_of(index), out);
        }
        fresh[index] = std::move(out);
        continue;
      } catch (const std::exception& e) {
        error += "; serial retry: ";
        error += e.what();
      } catch (...) {
        error += "; serial retry: non-standard exception";
      }
    }
    SweepTaskError failure;
    failure.index = index;
    failure.label = label_of(index);
    failure.message = std::move(error);
    report.errors.push_back(std::move(failure));
  }

  if (!report.errors.empty() && !options.report_and_continue) {
    // Staged commit: the table is untouched on this path. Name every failed
    // point (index + scenario label + error) — a bench aborting mid-campaign
    // must say exactly which rows died and why.
    std::ostringstream msg;
    msg << "sweep task(s) failed:\n";
    for (const SweepTaskError& e : report.errors) {
      msg << "  task " << e.index;
      if (!e.label.empty()) msg << " (" << e.label << ")";
      msg << ": " << e.message << '\n';
    }
    throw std::runtime_error(msg.str());
  }

  // Commit in submission order, journal hits and fresh results interleaved —
  // the property that makes resumed tables byte-identical to uninterrupted
  // ones. With report_and_continue, failed tasks simply contribute no rows.
  for (std::size_t i = 0; i < n; ++i) {
    const SweepOutput* out =
        journaled[i] != nullptr ? journaled[i]
                                : (fresh[i].has_value() ? &*fresh[i] : nullptr);
    if (out == nullptr) continue;
    report.text += out->text;
    for (const std::vector<std::string>& row : out->rows) table.add_row(row);
  }
  return report;
}

}  // namespace pels
