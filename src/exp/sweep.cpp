#include "exp/sweep.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/table.h"

namespace pels {

namespace {

/// Epoch tag occupies the high 32 bits of ticket_/done_; the low 32 bits
/// hold the next-unclaimed index / completed-job count. A worker can only
/// CAS against counters carrying the epoch it was dispatched for, so a
/// straggler waking after its batch retired can neither steal tickets from
/// nor report completions into a newer batch. (The tag is the low 32 bits
/// of the 64-bit epoch; confusing two batches would take a worker sleeping
/// through exactly 2^32 of them.)
std::uint64_t epoch_tag(std::uint64_t epoch) { return (epoch & 0xffffffffULL) << 32; }

}  // namespace

unsigned SweepRunner::default_threads() {
  if (const char* env = std::getenv("PELS_SWEEP_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n > 0) return static_cast<unsigned>(n);
  }
  return hardware_threads();
}

unsigned SweepRunner::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ScratchArena& SweepRunner::worker_scratch() {
  static thread_local ScratchArena arena;
  return arena;
}

SweepRunner::SweepRunner(unsigned threads) {
  requested_ = threads == 0 ? default_threads() : threads;
  // Oversubscription clamp: more workers than hardware threads buys only
  // context-switch thrash and then reads as a scaling regression in benches
  // (the exact failure BENCH_pipeline.json once recorded from a 1-core CI
  // box). The requested/effective pair stays visible through stats().
  const unsigned n = std::max(1u, std::min(requested_, hardware_threads()));
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

SweepRunner::Stats SweepRunner::stats() const {
  Stats s;
  s.requested_threads = requested_;
  s.effective_threads = static_cast<unsigned>(workers_.size());
  s.batches = batches_;
  s.jobs = jobs_run_;
  return s;
}

void SweepRunner::worker_loop() {
  ScratchArena& arena = worker_scratch();
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this, seen] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const std::function<void(std::size_t)>* job = job_;
    const std::size_t n = batch_size_;
    const std::size_t chunk = chunk_;
    lock.unlock();

    // Claim [begin, end) ticket ranges lock-free until the batch is drained.
    const std::uint64_t tag = epoch_tag(seen);
    std::size_t completed = 0;
    std::uint64_t cur = ticket_.load(std::memory_order_relaxed);
    while ((cur & ~0xffffffffULL) == tag) {
      const std::size_t begin = static_cast<std::uint32_t>(cur);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      if (!ticket_.compare_exchange_weak(cur, tag | end, std::memory_order_relaxed)) {
        continue;  // lost the race (or another epoch took over); cur reloaded
      }
      for (std::size_t i = begin; i < end; ++i) {
        (*job)(i);  // noexcept by contract (run() wraps task exceptions)
        arena.reset();
      }
      completed += end - begin;
      cur = ticket_.load(std::memory_order_relaxed);
    }

    if (completed > 0) {
      // Publish results (release) and wake the submitter if this made the
      // batch complete. Locking mu_ around the notify pins the submitter
      // inside its predicate-checked wait.
      std::uint64_t done = done_.load(std::memory_order_relaxed);
      std::uint64_t fresh = 0;
      do {
        assert((done & ~0xffffffffULL) == tag && "batch retired with work unreported");
        fresh = tag | (static_cast<std::uint32_t>(done) + completed);
      } while (!done_.compare_exchange_weak(done, fresh, std::memory_order_acq_rel));
      if (static_cast<std::uint32_t>(fresh) == n) {
        std::lock_guard<std::mutex> g(mu_);
        done_cv_.notify_all();
      }
    }
    lock.lock();
  }
}

void SweepRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& job) {
  if (n == 0) return;
  assert(n < (1ULL << 32) && "batch size must fit the 32-bit ticket space");
  std::unique_lock<std::mutex> lock(mu_);
  // One batch at a time; a second submitter waits for the pool to go idle.
  done_cv_.wait(lock, [this] { return job_ == nullptr; });
  job_ = &job;
  batch_size_ = n;
  // Chunked claiming: large batches of cheap jobs amortize the ticket RMW,
  // small batches keep chunk=1 so every worker gets work. The cap bounds
  // tail imbalance when job costs vary.
  chunk_ = std::clamp<std::size_t>(n / (workers_.size() * 8), 1, 64);
  ++epoch_;
  const std::uint64_t tag = epoch_tag(epoch_);
  ticket_.store(tag, std::memory_order_relaxed);
  done_.store(tag, std::memory_order_relaxed);
  ++batches_;
  jobs_run_ += n;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this, n, tag] {
    return done_.load(std::memory_order_acquire) == (tag | n);
  });
  job_ = nullptr;
  done_cv_.notify_all();  // wake any submitter waiting for the pool
}

void SweepRunner::run_jobs(std::vector<std::function<void()>> jobs) {
  run_indexed(jobs.size(), [&jobs](std::size_t i) { jobs[i](); });
}

std::string run_to_table(SweepRunner& runner,
                         std::vector<std::function<SweepOutput()>> tasks,
                         TablePrinter& table) {
  auto outcomes = runner.run(std::move(tasks));
  // Stage everything first: a throwing task must not leave a half-filled
  // table (or partial text) behind for the error path to print around.
  std::ostringstream errors;
  std::string text;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      errors << "  task " << i << ": " << outcomes[i].error << '\n';
      continue;
    }
    text += outcomes[i].value->text;
  }
  const std::string failed = errors.str();
  if (!failed.empty()) throw std::runtime_error("sweep task(s) failed:\n" + failed);
  for (auto& outcome : outcomes) {
    for (auto& row : outcome.value->rows) table.add_row(std::move(row));
  }
  return text;
}

}  // namespace pels
