// Conservative intra-scenario parallel DES: run one scenario on all cores.
//
// SweepRunner parallelizes *across* independent scenarios; DomainRunner
// parallelizes *within* one. The topology is partitioned into domains —
// node sets whose events execute on their own Simulation/Scheduler — and
// the only coupling between domains is packets crossing boundary links,
// which by construction take at least the link's propagation delay to
// arrive. That minimum delay is the classic conservative lookahead: every
// domain may run `lookahead` ahead of the others without ever receiving a
// message from its past.
//
// Execution is windowed (barrier flavour of the null-message idea):
//   1. pick the next window end = min(t_end, earliest pending event across
//      all domains + lookahead) — idle stretches are skipped in one hop;
//   2. run every domain's scheduler to the window end, one domain per
//      SweepRunner worker;
//   3. barrier: drain the boundary-link mailboxes in deterministic order
//      (link creation order, FIFO within a link) and schedule each packet's
//      arrival into the destination domain at its precomputed deliver_at,
//      which the lookahead guarantees is never in the destination's past.
//
// Determinism contract (same as SweepRunner's, DESIGN.md "Parallel
// experiments"): a run at threads=N is byte-identical to threads=1. Window
// boundaries are computed from simulation state only, each domain is
// single-threaded within a window, and barrier injections happen on the
// coordinating thread in a fixed order — so scheduler tie-break sequence
// numbers, RNG draws, and every metric are independent of thread count and
// thread placement.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/sweep.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/time.h"

namespace pels {

class DomainRunner {
 public:
  struct Stats {
    unsigned requested_threads = 0;
    unsigned effective_threads = 0;
    SimTime lookahead = kTimeNever;
    std::uint64_t windows = 0;   // barrier-separated execution windows
    std::uint64_t handoffs = 0;  // packets exchanged across domains
  };

  /// Binds to `topo` and installs remote-delivery handlers on its boundary
  /// links (uninstalled again on destruction). `threads` = 0 means one
  /// worker per domain; the effective count is additionally clamped to
  /// min(threads, domains, hardware). Construct before traffic flows and
  /// drive the run exclusively through run_until() from one thread.
  explicit DomainRunner(Topology& topo, unsigned threads = 0);
  ~DomainRunner();

  DomainRunner(const DomainRunner&) = delete;
  DomainRunner& operator=(const DomainRunner&) = delete;

  /// Advances every domain to `t_end` in lookahead windows. Callable
  /// repeatedly with increasing targets (scenario warm-up, then measurement
  /// phases). With one domain this degenerates to a plain run_until.
  ///
  /// Error contract: an exception thrown by a domain's event stream is
  /// captured on the worker and rethrown here as std::runtime_error naming
  /// the failing domain index, the window, and the original what() — never a
  /// bare worker error with no context (and never std::terminate, which is
  /// what an uncaught throw inside the pool's noexcept job contract would
  /// mean). When several domains fail in one window every failure is listed.
  ///
  /// Stall watchdog: conservative windows provably advance by more than the
  /// lookahead each round, so one run_until(t_end) call can take at most
  /// (t_end - start) / lookahead + 2 windows. A run exceeding that bound
  /// (with generous slack) has stopped making progress — a lookahead or
  /// barrier bug — and throws a diagnostic listing every domain's clock and
  /// earliest pending event instead of spinning forever.
  void run_until(SimTime t_end);

  SimTime lookahead() const { return lookahead_; }
  Stats stats() const;

  /// Overrides the stall watchdog's window budget for one run_until call
  /// (0 restores the computed bound). Tests use a tiny budget to exercise
  /// the diagnostic without building a genuinely wedged topology.
  void set_max_windows_for_test(std::uint64_t max_windows) {
    max_windows_override_ = max_windows;
  }

 private:
  struct Handoff {
    Packet pkt;
    SimTime deliver_at;
  };

  Topology& topo_;
  SweepRunner pool_;
  SimTime lookahead_;
  // One mailbox per boundary link, written only by the owning domain's
  // worker during a window, drained only by the coordinator at the barrier
  // (the pool join orders the two). No locks needed.
  std::vector<std::vector<Handoff>> mail_;
  // Per-domain error capture: written only by the owning domain's worker
  // during a window (same single-writer discipline as the mailboxes),
  // inspected by the coordinator after the join.
  std::vector<std::string> errors_;
  std::uint64_t windows_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t max_windows_override_ = 0;
};

}  // namespace pels
