// Conservative intra-scenario parallel DES: run one scenario on all cores.
//
// SweepRunner parallelizes *across* independent scenarios; DomainRunner
// parallelizes *within* one. The topology is partitioned into domains —
// node sets whose events execute on their own Simulation/Scheduler — and
// the only coupling between domains is packets crossing boundary links,
// which by construction take at least the link's propagation delay to
// arrive. That minimum delay is the classic conservative lookahead: every
// domain may run `lookahead` ahead of the others without ever receiving a
// message from its past.
//
// Execution is windowed (barrier flavour of the null-message idea):
//   1. pick the next window end = min(t_end, earliest pending event across
//      all domains + lookahead) — idle stretches are skipped in one hop;
//   2. run every domain's scheduler to the window end, one domain per
//      SweepRunner worker;
//   3. barrier: drain the boundary-link mailboxes in deterministic order
//      (link creation order, FIFO within a link) and schedule each packet's
//      arrival into the destination domain at its precomputed deliver_at,
//      which the lookahead guarantees is never in the destination's past.
//
// Determinism contract (same as SweepRunner's, DESIGN.md "Parallel
// experiments"): a run at threads=N is byte-identical to threads=1. Window
// boundaries are computed from simulation state only, each domain is
// single-threaded within a window, and barrier injections happen on the
// coordinating thread in a fixed order — so scheduler tie-break sequence
// numbers, RNG draws, and every metric are independent of thread count and
// thread placement.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/sweep.h"
#include "net/packet.h"
#include "net/topology.h"
#include "util/time.h"

namespace pels {

class DomainRunner {
 public:
  struct Stats {
    unsigned requested_threads = 0;
    unsigned effective_threads = 0;
    SimTime lookahead = kTimeNever;
    std::uint64_t windows = 0;   // barrier-separated execution windows
    std::uint64_t handoffs = 0;  // packets exchanged across domains
  };

  /// Binds to `topo` and installs remote-delivery handlers on its boundary
  /// links (uninstalled again on destruction). `threads` = 0 means one
  /// worker per domain; the effective count is additionally clamped to
  /// min(threads, domains, hardware). Construct before traffic flows and
  /// drive the run exclusively through run_until() from one thread.
  explicit DomainRunner(Topology& topo, unsigned threads = 0);
  ~DomainRunner();

  DomainRunner(const DomainRunner&) = delete;
  DomainRunner& operator=(const DomainRunner&) = delete;

  /// Advances every domain to `t_end` in lookahead windows. Callable
  /// repeatedly with increasing targets (scenario warm-up, then measurement
  /// phases). With one domain this degenerates to a plain run_until.
  void run_until(SimTime t_end);

  SimTime lookahead() const { return lookahead_; }
  Stats stats() const;

 private:
  struct Handoff {
    Packet pkt;
    SimTime deliver_at;
  };

  Topology& topo_;
  SweepRunner pool_;
  SimTime lookahead_;
  // One mailbox per boundary link, written only by the owning domain's
  // worker during a window, drained only by the coordinator at the barrier
  // (the pool join orders the two). No locks needed.
  std::vector<std::vector<Handoff>> mail_;
  std::uint64_t windows_ = 0;
  std::uint64_t handoffs_ = 0;
};

}  // namespace pels
