#include "exp/journal.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.h"

namespace pels {

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  load();
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("SweepJournal: cannot open '" + path_ + "' for append");
  }
}

void SweepJournal::load() {
  std::ifstream in(path_);
  if (!in) return;  // no journal yet: fresh sweep
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const JsonValue doc = JsonValue::parse(line);
      Entry e;
      e.label = doc.at("label").as_string();
      for (const JsonValue& row : doc.at("rows").items()) {
        std::vector<std::string> cells;
        cells.reserve(row.items().size());
        for (const JsonValue& cell : row.items()) cells.push_back(cell.as_string());
        e.output.rows.push_back(std::move(cells));
      }
      e.output.text = doc.at("text").as_string();
      const auto index = static_cast<std::size_t>(doc.at("index").as_int64());
      entries_[index] = std::move(e);
      ++loaded_;
    } catch (const std::invalid_argument&) {
      // Torn write: the crash happened mid-line. Append-only means nothing
      // after it can be trusted either — stop here; the lost tasks re-run.
      torn_ = true;
      break;
    }
  }
}

const SweepOutput* SweepJournal::get(std::size_t index) const {
  const auto it = entries_.find(index);
  return it == entries_.end() ? nullptr : &it->second.output;
}

const std::string* SweepJournal::label(std::size_t index) const {
  const auto it = entries_.find(index);
  return it == entries_.end() ? nullptr : &it->second.label;
}

void SweepJournal::record(std::size_t index, const std::string& label,
                          const SweepOutput& out) {
  // Serialize outside the lock; only the append and the map update are
  // critical. One line per entry, flushed: the crash window is the line
  // being written, never a finished one.
  std::ostringstream line;
  line << "{\"index\":" << index << ",\"label\":";
  write_json_string(line, label);
  line << ",\"rows\":[";
  for (std::size_t r = 0; r < out.rows.size(); ++r) {
    if (r > 0) line << ',';
    line << '[';
    for (std::size_t c = 0; c < out.rows[r].size(); ++c) {
      if (c > 0) line << ',';
      write_json_string(line, out.rows[r][c]);
    }
    line << ']';
  }
  line << "],\"text\":";
  write_json_string(line, out.text);
  line << "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  out_ << line.str();
  out_.flush();
  entries_[index] = Entry{label, out};
}

}  // namespace pels
