// Crash-safe sweep journal: append-only record of completed sweep tasks.
//
// A long sweep (hundreds of seeded scenarios) that dies at task 180 of 200 —
// OOM-killed, ^C'd, machine rebooted — should not cost the 180 finished
// results. SweepJournal persists each task's buffered output (table rows +
// text) as one JSON line, appended and flushed the moment the task
// completes on its worker. A re-run of the same sweep against the same
// journal path skips every journaled index and re-executes only the missing
// ones; run_sweep_to_table then commits rows in submission order regardless
// of where each row came from, so the resumed table is byte-identical to an
// uninterrupted run (tested in journal_test).
//
// Durability model: one line per task, flushed on write. A crash can tear at
// most the line being written; load() parses complete lines and stops at the
// first malformed one (everything after a torn write is suspect in an
// append-only file), so a torn tail costs exactly the in-flight task.
// Entries carry the task's label; resuming a sweep whose labels disagree
// with the journal throws instead of silently stitching two different
// experiments together.
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "exp/sweep.h"

namespace pels {

class SweepJournal {
 public:
  /// Opens (creating if needed) the journal at `path` and loads every
  /// complete entry. Throws std::runtime_error when the file exists but
  /// cannot be opened for append.
  explicit SweepJournal(std::string path);

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  const std::string& path() const { return path_; }

  /// Entries successfully loaded from a pre-existing file.
  std::size_t loaded() const { return loaded_; }
  /// True when loading stopped at a malformed (torn) line.
  bool tail_torn() const { return torn_; }

  std::size_t size() const { return entries_.size(); }
  bool has(std::size_t index) const { return entries_.count(index) != 0; }
  /// Journaled outcome of task `index`, or nullptr when absent.
  const SweepOutput* get(std::size_t index) const;
  /// Journaled label of task `index`, or nullptr when absent.
  const std::string* label(std::size_t index) const;

  /// Appends one completed task and flushes. Thread-safe: workers record
  /// from inside the pool, so a crash between tasks loses nothing already
  /// finished. Re-recording an index overwrites the in-memory entry and
  /// appends a fresh line (last line wins on reload).
  void record(std::size_t index, const std::string& label, const SweepOutput& out);

 private:
  struct Entry {
    std::string label;
    SweepOutput output;
  };

  void load();

  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
  std::map<std::size_t, Entry> entries_;
  std::size_t loaded_ = 0;
  bool torn_ = false;
};

}  // namespace pels
