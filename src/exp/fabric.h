// Multi-bottleneck fabric generator + mixed-traffic driver (ROADMAP
// "Million-flow scale-out").
//
// The dumbbell scenario in src/pels/scenario.h is the paper's topology; this
// file builds the larger fabrics needed to exercise population-scale control:
//
//   * parking-lot chains — N bottleneck routers in a row, a host hanging off
//     each end and each junction, so long flows cross every bottleneck while
//     short flows congest only one hop (the classic multi-bottleneck fairness
//     topology of §5.2's max-min feedback rule);
//   * fat-tree-ish pod/rack fabrics — hosts under per-rack ToR routers,
//     racks under a per-pod aggregation router, pods joined by one core
//     router. Optionally each pod maps onto its own DomainRunner domain
//     (cross-domain links are the pod uplinks, whose propagation delay is
//     the conservative lookahead).
//
// Every contended (core/uplink) link carries a PelsQueue, so the fabric has
// one feedback meter per bottleneck; edge links are plain FIFOs.
//
// On top of a fabric, gen_mixed_traffic() produces a deterministic flow mix
// (long-lived video, short mice, bulk elephants — in the spirit of htsim's
// gen_mixed_traffic/main_mixed drivers), and ManyFlowDriver runs such a mix
// at populations the per-flow PelsSource machinery was never sized for. The
// driver is sharded by domain: each shard owns the flows sourced in its
// domain (a FlowTable of control state, per-flow pacing events, and a
// batched control tick reading that domain's bottleneck meters), so a
// domain_per_pod fat tree runs one shard per pod under DomainRunner,
// byte-identical at any thread count. Receiver state is a dense SinkTable
// fed through host default agents — 16 bytes per flow instead of a map
// entry plus sink object (no per-flow ACK path — the driver measures
// simulator cost per packet, not end-to-end protocol dynamics;
// bench/many_flows.cpp is the consumer).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/flow_table.h"
#include "cc/sink_table.h"
#include "net/host.h"
#include "net/topology.h"
#include "queue/pels_queue.h"
#include "sim/simulation.h"
#include "util/time.h"

namespace pels {

struct FabricConfig {
  enum class Kind {
    kParkingLot,  // chain of `hops` bottleneck routers
    kFatTree,     // pods x racks_per_pod x hosts_per_rack under one core
  };
  Kind kind = Kind::kParkingLot;

  /// Parking lot: number of bottleneck links in the chain (>= 1). Hosts
  /// H0..H_hops hang off routers R0..R_hops; a flow H0 -> H_hops crosses
  /// every bottleneck, Hi -> Hi+1 exactly one.
  int hops = 3;

  /// Fat tree: geometry. One ToR router per rack, one aggregation router per
  /// pod, one core router overall. Contended tiers (PELS AQM) are the
  /// rack -> aggregation and aggregation -> core uplinks.
  int pods = 2;
  int racks_per_pod = 2;
  int hosts_per_rack = 2;
  /// Map each pod (plus the core) onto its own Simulation domain so
  /// DomainRunner can execute pods in parallel. The pod uplink delay is the
  /// lookahead, so it must stay > 0. Single-domain when false.
  bool domain_per_pod = false;

  double edge_bandwidth_bps = 100e6;  // host <-> ToR, uncontended
  double core_bandwidth_bps = 20e6;   // the bottleneck tier
  SimTime edge_delay = from_micros(20);
  SimTime core_delay = from_millis(2);

  /// Template for every bottleneck queue; router_id and link_bandwidth_bps
  /// are filled in per link (router ids count up in link creation order).
  PelsQueueConfig core_queue;
  std::size_t edge_queue_limit = 256;

  std::uint64_t seed = 1;
};

/// A built fabric: owns its Simulations (one per domain) and Topology, and
/// exposes the pieces traffic generators need — the host list, and the
/// bottleneck links with their PelsQueues.
class Fabric {
 public:
  explicit Fabric(FabricConfig cfg);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const FabricConfig& config() const { return cfg_; }

  Topology& topology() { return *topo_; }
  int domain_count() const { return static_cast<int>(sims_.size()); }
  Simulation& sim(int domain = 0) { return *sims_[static_cast<std::size_t>(domain)]; }

  /// End hosts in creation order; FlowSpec src/dst index into this.
  const std::vector<Host*>& hosts() const { return hosts_; }
  int host_domain(std::size_t host_index) const {
    return topo_->node_domain(hosts_[host_index]->id());
  }

  /// Bottleneck links (each carrying a PelsQueue), in creation order.
  const std::vector<Link*>& core_links() const { return core_links_; }
  PelsQueue& core_queue(std::size_t i) { return *core_queues_[i]; }
  std::size_t core_queue_count() const { return core_queues_.size(); }
  /// Domain whose scheduler runs core queue `i`'s events (= the source
  /// node's domain) — the locality rule sharded drivers partition meters by.
  int core_queue_domain(std::size_t i) const { return core_queue_domains_[i]; }

  /// Pre-sizes every domain's runtime pools for `expected_flows` concurrent
  /// flows (see Topology::reserve_runtime). Fabric drivers deliver through a
  /// shared default agent (cc/sink_table.h), so the per-host agent maps stay
  /// empty by default — pass `agents_per_host` only for setups that register
  /// per-flow agents on fabric hosts.
  void reserve_runtime(std::size_t expected_flows, std::size_t agents_per_host = 0) {
    topo_->reserve_runtime(expected_flows, agents_per_host);
  }

 private:
  void build_parking_lot();
  void build_fat_tree();
  Link& add_core_link(Node& from, Node& to, SimTime delay);
  Link& add_edge_link(Node& from, Node& to);

  FabricConfig cfg_;
  std::vector<std::unique_ptr<Simulation>> sims_;
  std::unique_ptr<Topology> topo_;
  std::vector<Host*> hosts_;
  std::vector<Link*> core_links_;
  std::vector<PelsQueue*> core_queues_;
  std::vector<int> core_queue_domains_;
  std::int32_t next_router_id_ = 0;
};

// --- mixed traffic --------------------------------------------------------

enum class TrafficClass {
  kVideo,     // long-lived, MKC-controlled, PELS-colored
  kMice,      // short request/response bursts, Internet-colored
  kElephant,  // long bulk transfers, Internet-colored
};

struct FlowSpec {
  TrafficClass cls = TrafficClass::kVideo;
  int src_host = 0;  // index into Fabric::hosts()
  int dst_host = 0;
  SimTime start = 0;
  double rate_bps = 0;           // initial (video) or fixed (mice/elephant) rate
  std::int32_t packet_bytes = 1000;
  std::int64_t total_bytes = 0;  // 0 = unbounded (video/elephants run forever)
};

struct MixedTrafficConfig {
  std::size_t video_flows = 16;
  std::size_t mice_flows = 16;
  std::size_t elephant_flows = 2;
  /// Flow starts are spread uniformly over [0, start_window) so the fabric
  /// does not see a synchronized thundering herd at t = 0.
  SimTime start_window = from_seconds(1.0);
  double video_rate_bps = 128e3;   // matches MkcConfig::initial_rate_bps
  double mice_rate_bps = 400e3;
  double elephant_rate_bps = 2e6;
  /// Mice sizes draw from a Pareto (shape 1.5) with this mean — the classic
  /// heavy-tailed short-transfer model.
  std::int64_t mice_mean_bytes = 20'000;
  std::int32_t packet_bytes = 1000;
  std::uint64_t seed = 42;
};

/// Deterministic flow mix over the fabric's hosts: same (fabric geometry,
/// config, seed) always yields the same specs, in a fixed order (videos,
/// then mice, then elephants; src != dst per flow). Specs are sorted by
/// start time with the generation order breaking ties, so drivers can
/// activate them with a single cursor.
std::vector<FlowSpec> gen_mixed_traffic(const Fabric& fabric, const MixedTrafficConfig& cfg);

// --- population-scale driver ----------------------------------------------

struct ManyFlowDriverConfig {
  MkcConfig mkc;
  GammaConfig gamma;
  /// Shared control tick period: one batched FlowTable update for the whole
  /// population (vs. one timer per flow in PelsSource).
  SimTime control_interval = from_millis(200);
  /// Fraction of each video flow's packets sent green (the base layer's
  /// bandwidth share); the FGS remainder splits red/yellow by the flow's
  /// gamma. Chosen per packet by a deterministic hash of (flow, seq).
  double green_fraction = 0.25;
  /// Per-flow rate cap as a multiple of the initial rate. Population-scale
  /// runs share one bottleneck thousands of ways; without a cap the early
  /// starters ramp to the whole link and the aggregate event rate explodes
  /// before feedback reins them in.
  double max_rate_factor = 3.0;
};

/// Runs a flow mix over a fabric with population-scale machinery, sharded by
/// domain: every flow belongs to the shard of its *source host's* domain,
/// and each shard owns a FlowTable, an activation cursor, per-flow pacing
/// events, and a control tick — all scheduled on the shard's own domain
/// Simulation, so DomainRunner executes shards in parallel and the result is
/// byte-identical at any thread count (tests/fabric_test.cpp pins it).
///
/// The conservative-lookahead contract holds because a shard's control tick
/// reads only the queue meters local to its domain: cross-pod congestion
/// feedback travels with the packets through the boundary-link handoff, the
/// same way it reaches a real sender. A single-domain fabric degenerates to
/// one shard reading every meter — the original shared-control-tick
/// semantics.
///
/// Per-flow receiver state is a SinkTable (dense SoA columns indexed by flow
/// id) fed through each host's default agent — no per-flow map entries, no
/// per-host sink objects; see cc/sink_table.h for the single-writer-per-cell
/// argument that makes cross-domain delivery race-free.
class ManyFlowDriver {
 public:
  ManyFlowDriver(Fabric& fabric, std::vector<FlowSpec> flows, ManyFlowDriverConfig cfg);
  ~ManyFlowDriver();

  ManyFlowDriver(const ManyFlowDriver&) = delete;
  ManyFlowDriver& operator=(const ManyFlowDriver&) = delete;

  /// Starts every shard's flow-activation cursor and control tick.
  void start();
  /// Runs a single-domain fabric in place. Multi-domain fabrics must run
  /// under a DomainRunner over fabric.topology() (which also covers the
  /// serial case at threads = 1); this throws to catch the misuse.
  void run_until(SimTime t_end);

  std::size_t flow_count() const { return flows_.size(); }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t live_flows() const;
  std::uint64_t packets_sent() const;
  std::uint64_t packets_received() const { return sink_table_.totals().packets; }
  std::uint64_t bytes_received() const { return sink_table_.totals().bytes; }
  std::uint64_t control_ticks() const;
  /// Shard-local flow table (shards are indexed by domain).
  FlowTable& flow_table(std::size_t shard = 0) { return shards_[shard].table; }
  const SinkTable& sink_table() const { return sink_table_; }
  double flow_rate_bps(std::size_t i) const {
    return shards_[flows_[i].shard].table.rate_bps(flows_[i].slot);
  }
  bool flow_done(std::size_t i) const { return flows_[i].done; }

  /// Per-class roll-up for mixed-traffic benches (video/mice/elephant
  /// splits). Linear scan over the population; call at barrier points.
  struct ClassCounts {
    std::uint64_t flows = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t bytes_delivered = 0;
  };
  ClassCounts class_counts(TrafficClass cls) const;

  /// Order-independent digest of the end state every domain interleaving
  /// must reproduce: per-flow send counts, rate/gamma bit patterns, and
  /// delivered packet/byte counts. Byte-identity tests and the bench compare
  /// this across thread counts.
  std::uint64_t fingerprint() const;

  /// Heap footprint of the driver's per-flow state: the flow list, every
  /// shard's FlowTable columns and member lists, and the SinkTable. The
  /// bytes/flow budget gated by bench/many_flows is driver_memory_bytes() /
  /// flow_count().
  std::size_t driver_memory_bytes() const;

 private:
  struct FlowRt {
    FlowSpec spec;
    FlowSlot slot = kInvalidFlowSlot;
    std::uint32_t shard = 0;      // owning shard == source host's domain
    Host* src = nullptr;
    NodeId dst = -1;
    std::uint64_t next_seq = 0;
    std::int64_t bytes_left = 0;  // < 0 = unbounded
    EventId pace_event = 0;       // the flow's single self-rescheduling send
    bool started = false;
    bool done = false;
  };

  /// Per-domain driver state. Everything a shard touches while running —
  /// its table, cursor, counters, events — is written only by its domain's
  /// worker; cross-shard aggregation happens in the const accessors, after
  /// (or between) runs.
  struct Shard {
    explicit Shard(const ManyFlowDriverConfig& cfg) : table(cfg.mkc, cfg.gamma) {}
    FlowTable table;
    std::vector<std::uint32_t> members;  // owned flow ids, activation order
    std::size_t next_to_start = 0;       // activation cursor into members
    std::vector<PelsQueue*> meters;      // core-queue meters in this domain
    std::uint64_t packets_sent = 0;
    std::uint64_t control_ticks = 0;
    EventId activation_event = 0;
    EventId control_event = 0;
  };

  void activate_due_flows(std::uint32_t shard);
  void send_next(std::uint32_t index);
  void on_control_tick(std::uint32_t shard);
  double pacing_rate(const FlowRt& f) const;

  Fabric& fabric_;
  ManyFlowDriverConfig cfg_;
  std::vector<FlowRt> flows_;   // sorted by spec.start (gen_mixed_traffic order)
  std::vector<Shard> shards_;   // indexed by domain
  SinkTable sink_table_;        // indexed by flow id; written at delivery
  SinkTableAgent sink_agent_;   // shared default agent on every fabric host
  bool started_ = false;
};

}  // namespace pels
