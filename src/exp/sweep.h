// Parallel experiment execution: a fixed thread pool running independent
// simulation tasks.
//
// Every bench/figure harness and scenario-level test sweeps a parameter grid
// (config points x seeds) where each point builds its own Simulation,
// Scheduler, and Rng streams and shares nothing with the others. SweepRunner
// exploits that: tasks are pulled FIFO from a work queue by a fixed pool of
// worker threads, and each task writes its result into a slot indexed by
// submission order. Results (and any buffered table rows / trace text) are
// therefore reduced strictly in submission order after the join, which makes
// the engine *provably deterministic*: a sweep at threads=N produces
// bit-identical tables and metrics CSVs to threads=1, because no task can
// observe another and no output is emitted from inside a worker.
//
// The simulator core itself stays single-threaded — parallelism lives only
// at the experiment granularity (see DESIGN.md "Parallel experiments").
#pragma once

#include <cstddef>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace pels {

class TablePrinter;

/// Result slot of one sweep task: the returned value, or the error message
/// of the exception it threw. A throwing task (e.g. a config whose
/// validate() raises std::invalid_argument) is reported here per task and
/// never takes down the process or the rest of the batch.
template <typename R>
struct TaskOutcome {
  std::optional<R> value;
  std::string error;  // non-empty iff the task threw

  bool ok() const { return value.has_value(); }
};

/// Buffered output of one bench task: table rows plus free-form text.
/// Workers never print; run_to_table() appends rows and emits text in
/// submission order after the join, so going parallel can neither interleave
/// nor reorder a bench's stdout.
struct SweepOutput {
  std::vector<std::vector<std::string>> rows;
  std::string text;
};

class SweepRunner {
 public:
  /// Starts `threads` workers; 0 means default_threads(). Workers live for
  /// the runner's lifetime (fixed pool, no per-batch spawning).
  explicit SweepRunner(unsigned threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Thread count used when none is given: PELS_SWEEP_THREADS when set to a
  /// positive integer, else std::thread::hardware_concurrency(), floored
  /// at 1.
  static unsigned default_threads();

  /// Runs every task on the pool and returns their outcomes in submission
  /// order. Exceptions are captured per task (std::exception::what, or a
  /// placeholder for non-standard throws). Tasks must be independent and
  /// must not submit work to this runner (the batch would deadlock on
  /// itself).
  template <typename R>
  std::vector<TaskOutcome<R>> run(std::vector<std::function<R()>> tasks) {
    std::vector<TaskOutcome<R>> outcomes(tasks.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      jobs.push_back([&tasks, &outcomes, i] {
        try {
          outcomes[i].value.emplace(tasks[i]());
        } catch (const std::exception& e) {
          outcomes[i].error = e.what();
        } catch (...) {
          outcomes[i].error = "non-standard exception";
        }
      });
    }
    run_jobs(std::move(jobs));
    return outcomes;
  }

  /// Type-erased batch execution: runs each job exactly once, returns after
  /// all have completed. Jobs must not throw (run() wraps tasks so they
  /// cannot). Batches are serialized: concurrent callers take turns.
  void run_jobs(std::vector<std::function<void()>> jobs);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a job or stop is available
  std::condition_variable done_cv_;  // submitters: batch finished / pool free
  std::vector<std::function<void()>>* batch_ = nullptr;  // current batch
  std::size_t next_job_ = 0;
  std::size_t jobs_done_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs one buffered-output task per parameter point and merges the results
/// in submission order: every task's rows are appended to `table`, and the
/// concatenation of the non-empty `text` fields (also in order) is returned
/// for the caller to print after the table. If any task threw, throws
/// std::runtime_error naming each failed point and its error — bench
/// harnesses prefer one loud failure to a silently partial table.
std::string run_to_table(SweepRunner& runner,
                         std::vector<std::function<SweepOutput()>> tasks,
                         TablePrinter& table);

}  // namespace pels
