// Parallel experiment execution: a fixed thread pool running independent
// simulation tasks.
//
// Every bench/figure harness and scenario-level test sweeps a parameter grid
// (config points x seeds) where each point builds its own Simulation,
// Scheduler, and Rng streams and shares nothing with the others. SweepRunner
// exploits that: tasks are claimed from an atomic ticket counter (in chunks,
// so a batch of thousands of cheap tasks costs a handful of RMWs, not one
// per task) by a fixed pool of worker threads, and each task writes its
// result into a cache-line-padded slot indexed by submission order. Results
// (and any buffered table rows / trace text) are reduced strictly in
// submission order after the join, which makes the engine *provably
// deterministic*: a sweep at threads=N produces bit-identical tables and
// metrics CSVs to threads=1, because no task can observe another and no
// output is emitted from inside a worker.
//
// Scaling hygiene (see DESIGN.md "Parallel experiments"):
//   * The effective worker count is clamped to min(requested,
//     hardware_concurrency): oversubscribing a small box turns parallelism
//     into context-switch thrash and then shows up in benches as a phantom
//     "scaling regression". stats() reports the requested/effective pair so
//     harnesses can annotate oversubscribed measurements.
//   * Result slots are padded to kCacheLineSize: adjacent outcomes written
//     by different workers must not share a line (false sharing serializes
//     the writes in the coherence fabric even though the code shares
//     nothing).
//   * Each worker owns a ScratchArena (worker_scratch()), reset between
//     tasks, so per-task temporaries need not meet behind malloc's locks.
//
// The simulator core stays single-threaded per domain; intra-scenario
// parallelism lives in DomainRunner (exp/domain_runner.h), which runs
// link-delay-separated topology domains on this same pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/arena.h"

namespace pels {

class TablePrinter;

/// Destructive-interference granularity for result-slot padding. A fixed 64
/// is used instead of std::hardware_destructive_interference_size: the
/// constant must not vary with -mtune (it would change struct layouts across
/// TUs), and 64 covers every target this project builds on.
inline constexpr std::size_t kCacheLineSize = 64;

/// Result slot of one sweep task: the returned value, or the error message
/// of the exception it threw. A throwing task (e.g. a config whose
/// validate() raises std::invalid_argument) is reported here per task and
/// never takes down the process or the rest of the batch.
template <typename R>
struct TaskOutcome {
  std::optional<R> value;
  std::string error;  // non-empty iff the task threw

  bool ok() const { return value.has_value(); }
};

/// Buffered output of one bench task: table rows plus free-form text.
/// Workers never print; run_to_table() appends rows and emits text in
/// submission order after the join, so going parallel can neither interleave
/// nor reorder a bench's stdout.
struct SweepOutput {
  std::vector<std::vector<std::string>> rows;
  std::string text;
};

class SweepRunner {
 public:
  /// Pool/dispatch counters for scaling diagnostics.
  struct Stats {
    unsigned requested_threads = 0;  // what the caller asked for
    unsigned effective_threads = 0;  // after the hardware clamp
    std::uint64_t batches = 0;       // run_jobs/run_indexed calls served
    std::uint64_t jobs = 0;          // individual tasks executed
  };

  /// Starts workers for `threads` requested threads; 0 means
  /// default_threads(). The pool actually spawns min(requested,
  /// hardware_threads()) workers — see stats() for the pair. Workers live
  /// for the runner's lifetime (fixed pool, no per-batch spawning).
  explicit SweepRunner(unsigned threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Effective worker count (post-clamp).
  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// What the constructor was asked for, before the hardware clamp.
  unsigned requested_threads() const { return requested_; }

  /// Thread count used when none is given: PELS_SWEEP_THREADS when set to a
  /// positive integer, else std::thread::hardware_concurrency(), floored
  /// at 1.
  static unsigned default_threads();

  /// std::thread::hardware_concurrency() floored at 1 (it may report 0).
  static unsigned hardware_threads();

  /// The calling thread's scratch arena. Inside a pool worker this is the
  /// worker's private arena, reset automatically between tasks; any other
  /// thread gets its own thread-local arena that it must reset itself.
  /// Contents are only valid within one task.
  static ScratchArena& worker_scratch();

  /// Snapshot of pool counters. Values are updated by the submitting thread
  /// between batches; call from the submitter (not from inside a task).
  Stats stats() const;

  /// Runs every task on the pool and returns their outcomes in submission
  /// order. Exceptions are captured per task (std::exception::what, or a
  /// placeholder for non-standard throws). Tasks must be independent and
  /// must not submit work to this runner (the batch would deadlock on
  /// itself). Outcome slots are cache-line padded while workers write them.
  template <typename R>
  std::vector<TaskOutcome<R>> run(std::vector<std::function<R()>> tasks) {
    struct alignas(kCacheLineSize) PaddedOutcome {
      TaskOutcome<R> out;
    };
    std::vector<PaddedOutcome> padded(tasks.size());
    run_indexed(tasks.size(), [&tasks, &padded](std::size_t i) {
      try {
        padded[i].out.value.emplace(tasks[i]());
      } catch (const std::exception& e) {
        padded[i].out.error = e.what();
      } catch (...) {
        padded[i].out.error = "non-standard exception";
      }
    });
    std::vector<TaskOutcome<R>> outcomes;
    outcomes.reserve(padded.size());
    for (PaddedOutcome& p : padded) outcomes.push_back(std::move(p.out));
    return outcomes;
  }

  /// Type-erased batch execution: runs each job exactly once, returns after
  /// all have completed. Jobs must not throw (run() wraps tasks so they
  /// cannot). Batches are serialized: concurrent submitters take turns.
  void run_jobs(std::vector<std::function<void()>> jobs);

  /// Runs job(0) .. job(n-1) on the pool, returning after all have
  /// completed. The workhorse primitive behind run()/run_jobs(), exposed
  /// for callers with a natural index space (DomainRunner runs one domain
  /// per index each lookahead window) — no per-batch std::function vector
  /// needs to be materialized. Same contract: jobs must not throw, batches
  /// are serialized.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& job);

 private:
  void worker_loop();

  // Batch handoff (cold): protected by mu_. Workers park on work_cv_
  // between batches; submitters park on done_cv_ both while another batch
  // runs and while waiting for their own batch to finish.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;  // current batch
  std::size_t batch_size_ = 0;
  std::size_t chunk_ = 1;     // tickets claimed per RMW this batch
  std::uint64_t epoch_ = 0;   // bumped per batch; workers key off it
  bool stop_ = false;
  unsigned requested_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t jobs_run_ = 0;

  // Job dispatch (hot): workers claim [idx, idx+chunk) ranges from
  // ticket_ via CAS and report completion through done_. The counters are
  // epoch-tagged (high 32 bits) so a worker that oversleeps a whole batch
  // can never claim tickets — or misreport completions — against a newer
  // batch's counters: its CAS fails on the epoch bits and it goes back to
  // wait. Padded so the two RMW targets and the cold state above never
  // share a cache line.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> ticket_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> done_{0};

  std::vector<std::thread> workers_;
};

class SweepJournal;

/// One failed sweep task with its submission index and (when the sweep was
/// labeled) the scenario parameters that identify the failing row.
struct SweepTaskError {
  std::size_t index = 0;
  std::string label;  // empty when the sweep ran unlabeled
  std::string message;
};

/// Knobs for run_sweep_to_table. Default-constructed options reproduce the
/// classic run_to_table contract: no journal, no labels, throw on failure.
struct SweepOptions {
  /// Per-task labels (scenario parameters, "seed=17"); size 0 or
  /// tasks.size(). Labels appear in error messages and journal entries.
  std::vector<std::string> labels;
  /// Crash-safe resume: journaled indices are not re-executed, fresh
  /// completions are appended+flushed from the worker the moment they
  /// finish. Labels (when present) must match the journal's, or the sweep
  /// throws rather than stitch two different experiments together.
  SweepJournal* journal = nullptr;
  /// On task failure: commit the successful rows and return the errors in
  /// the report instead of throwing — degraded batch beats lost batch.
  bool report_and_continue = false;
  /// Re-run each failed task once on the calling thread before declaring it
  /// failed: isolates "parallel infrastructure broke it" from "the task is
  /// broken", and rescues tasks that only fail under pool contention.
  bool retry_failed_serially = false;
};

/// What a sweep did: merged text output, per-task failures (empty unless
/// report_and_continue), and reuse/execution counts for resume diagnostics.
struct SweepReport {
  std::string text;
  std::vector<SweepTaskError> errors;
  std::size_t reused = 0;    // satisfied from the journal, not re-run
  std::size_t executed = 0;  // actually dispatched to the pool
  bool ok() const { return errors.empty(); }
};

/// Runs one buffered-output task per parameter point and merges the results
/// in submission order: every task's rows are appended to `table`, and the
/// concatenation of the non-empty `text` fields (also in order) is returned
/// for the caller to print after the table. Rows are staged and committed
/// only after every task succeeded: if any task threw, `table` is left
/// untouched and std::runtime_error names each failed point and its error —
/// bench harnesses prefer one loud failure to a silently partial table.
std::string run_to_table(SweepRunner& runner,
                         std::vector<std::function<SweepOutput()>> tasks,
                         TablePrinter& table);

/// The full-featured staged-commit sweep: resume from a journal, label every
/// task, survive failures. Rows commit to `table` in submission order
/// regardless of whether they came from the journal or a fresh execution, so
/// an interrupted-and-resumed sweep produces a byte-identical table to an
/// uninterrupted one. Unless report_and_continue is set, any task failure
/// (after the optional serial retry) throws std::runtime_error naming every
/// failed task's index, label, and error, with `table` left untouched.
SweepReport run_sweep_to_table(SweepRunner& runner,
                               std::vector<std::function<SweepOutput()>> tasks,
                               TablePrinter& table, const SweepOptions& options = {});

}  // namespace pels
