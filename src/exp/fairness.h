// Fairness-matrix experiment: mixed congestion-control ecosystems sharing
// one PELS bottleneck.
//
// One *cell* runs a dumbbell with two classes of PELS video flows (each
// class driven by one controller from the zoo: MKC, CUBIC, DCQCN, Swift,
// SCReAM-lite), optional greedy TCP cross traffic, optional per-flow base-RTT
// diversity, and ECN threshold marking at the PELS AQM. The cell reports the
// coexistence metrics the fairness gate checks (tools/bench_compare.py
// --fairness-current):
//   * Jain's fairness index over per-video-flow goodput,
//   * per-class throughput shares (class A / class B / TCP),
//   * base-layer protection: the worst per-flow fraction of frames whose
//     base layer decoded — the paper's core promise, which must hold no
//     matter which controllers share the link,
//   * green-band one-way delay percentiles (p50/p95/p99).
// default_fairness_matrix() enumerates the committed BENCH_fairness.json
// scenario set; bench/fairness_matrix.cpp runs it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/controller.h"
#include "cc/flow_table.h"
#include "util/time.h"

namespace pels {

struct FairnessCellConfig {
  std::string label;
  CcKind class_a = CcKind::kMkc;
  CcKind class_b = CcKind::kMkc;
  int flows_a = 2;
  int flows_b = 2;
  int tcp_flows = 0;
  double bottleneck_bps = 4e6;
  SimTime bottleneck_delay = from_millis(10);
  /// Per-flow edge delays (see ScenarioConfig::edge_delays); empty = uniform.
  std::vector<SimTime> edge_delays;
  SimTime duration = 60 * kSecond;
  /// Goodput/share accounting starts here (start-up transients excluded);
  /// must be < duration.
  SimTime warmup = 20 * kSecond;
  /// PELS AQM ECN step-marking threshold (packets); 0 disables marking.
  /// Mark-driven zoo members (DCQCN, SCReAM's mark back-off) need this on.
  std::size_t ecn_mark_threshold_pkts = 8;
  std::uint64_t seed = 1;
  CcZooConfig zoo;
};

struct FairnessCellResult {
  std::string label;
  double jain_video = 0.0;       // Jain index over video-flow goodputs
  double share_a = 0.0;          // class A goodput / total goodput
  double share_b = 0.0;
  double share_tcp = 0.0;
  double base_protection = 1.0;  // min over video flows of base-ok fraction
  double delay_p50_ms = 0.0;     // green-band one-way delay percentiles
  double delay_p95_ms = 0.0;
  double delay_p99_ms = 0.0;
  std::uint64_t ecn_marks = 0;   // marks applied at the bottleneck
  std::vector<double> video_goodputs_bps;  // class A flows first, then B
  std::vector<double> tcp_goodputs_bps;
};

/// Builds a per-object zoo controller (fairness cells bypass the FlowTable:
/// every flow carries its own kind, so there is no homogeneous batch to
/// vectorize).
std::unique_ptr<CongestionController> make_zoo_controller(CcKind kind,
                                                          const CcZooConfig& zoo);

/// Runs one cell to completion. Throws std::invalid_argument on nonsense
/// (non-positive flow counts, warmup >= duration).
FairnessCellResult run_fairness_cell(const FairnessCellConfig& cfg);

/// The committed scenario set: per-pair coexistence against MKC, RTT
/// diversity (base RTTs ~10-200 ms), asymmetric class ratios, and TCP cross
/// traffic. `smoke` swaps in a 3-cell short-duration subset for CI.
std::vector<FairnessCellConfig> default_fairness_matrix(bool smoke);

}  // namespace pels
