#include "exp/fairness.h"

#include <algorithm>
#include <stdexcept>

#include "cc/cubic.h"
#include "cc/dcqcn.h"
#include "cc/mkc.h"
#include "cc/scream_lite.h"
#include "cc/swift.h"
#include "pels/scenario.h"
#include "util/stats.h"

namespace pels {

std::unique_ptr<CongestionController> make_zoo_controller(CcKind kind,
                                                          const CcZooConfig& zoo) {
  switch (kind) {
    case CcKind::kMkc:
      return std::make_unique<MkcController>(MkcConfig{});
    case CcKind::kCubic:
      return std::make_unique<CubicController>(zoo.cubic);
    case CcKind::kDcqcn:
      return std::make_unique<DcqcnController>(zoo.dcqcn);
    case CcKind::kSwift:
      return std::make_unique<SwiftController>(zoo.swift);
    case CcKind::kScream:
      return std::make_unique<ScreamLiteController>(zoo.scream);
  }
  throw std::invalid_argument("make_zoo_controller: unknown CcKind");
}

FairnessCellResult run_fairness_cell(const FairnessCellConfig& cfg) {
  if (cfg.flows_a <= 0 || cfg.flows_b < 0)
    throw std::invalid_argument("fairness cell: flows_a must be > 0, flows_b >= 0");
  if (cfg.tcp_flows < 0)
    throw std::invalid_argument("fairness cell: tcp_flows must be >= 0");
  if (cfg.warmup < 0 || cfg.warmup >= cfg.duration)
    throw std::invalid_argument("fairness cell: need 0 <= warmup < duration");

  ScenarioConfig scen;
  scen.pels_flows = cfg.flows_a + cfg.flows_b;
  scen.tcp_flows = cfg.tcp_flows;
  scen.bottleneck_bps = cfg.bottleneck_bps;
  scen.bottleneck_delay = cfg.bottleneck_delay;
  scen.edge_delays = cfg.edge_delays;
  scen.seed = cfg.seed;
  scen.pels_queue.ecn_mark_threshold_pkts = cfg.ecn_mark_threshold_pkts;
  const int flows_a = cfg.flows_a;
  const CcZooConfig zoo = cfg.zoo;
  const CcKind class_a = cfg.class_a;
  const CcKind class_b = cfg.class_b;
  scen.make_controller = [flows_a, zoo, class_a, class_b](int flow_index) {
    return make_zoo_controller(flow_index < flows_a ? class_a : class_b, zoo);
  };
  DumbbellScenario s(scen);

  // Warmup boundary snapshot: goodput is measured over [warmup, duration] so
  // slow-start/ramp transients do not dilute the steady-state shares.
  s.run_until(cfg.warmup);
  std::vector<std::uint64_t> video_bytes_at_warmup;
  std::vector<std::uint64_t> tcp_acked_at_warmup;
  for (int i = 0; i < scen.pels_flows; ++i)
    video_bytes_at_warmup.push_back(s.sink(i).data_bytes_received());
  for (int i = 0; i < cfg.tcp_flows; ++i)
    tcp_acked_at_warmup.push_back(s.tcp_source(i).highest_acked());
  s.run_until(cfg.duration);
  s.finish();

  const double window_sec = to_seconds(cfg.duration - cfg.warmup);
  FairnessCellResult out;
  out.label = cfg.label;

  double total = 0.0;
  double total_a = 0.0;
  double total_b = 0.0;
  double total_tcp = 0.0;
  for (int i = 0; i < scen.pels_flows; ++i) {
    const auto delta =
        s.sink(i).data_bytes_received() - video_bytes_at_warmup[static_cast<std::size_t>(i)];
    const double bps = static_cast<double>(delta) * 8.0 / window_sec;
    out.video_goodputs_bps.push_back(bps);
    total += bps;
    (i < cfg.flows_a ? total_a : total_b) += bps;
  }
  const std::int32_t tcp_pkt_bytes = TcpConfig{}.packet_size_bytes;
  for (int i = 0; i < cfg.tcp_flows; ++i) {
    const auto delta =
        s.tcp_source(i).highest_acked() - tcp_acked_at_warmup[static_cast<std::size_t>(i)];
    const double bps = static_cast<double>(delta) * tcp_pkt_bytes * 8.0 / window_sec;
    out.tcp_goodputs_bps.push_back(bps);
    total += bps;
    total_tcp += bps;
  }
  out.jain_video = jain_fairness_index(out.video_goodputs_bps);
  if (total > 0.0) {
    out.share_a = total_a / total;
    out.share_b = total_b / total;
    out.share_tcp = total_tcp / total;
  }

  // Base-layer protection: worst flow's fraction of finalized frames whose
  // base layer decoded. A flow with no finalized frames scores 0 — a cell
  // too short to produce frames must fail the gate, not silently pass it.
  double protection = 1.0;
  for (int i = 0; i < scen.pels_flows; ++i) {
    const auto& qualities = s.sink(i).frame_qualities();
    if (qualities.empty()) {
      protection = 0.0;
      break;
    }
    std::size_t base_ok = 0;
    for (const auto& q : qualities) base_ok += q.base_ok ? 1 : 0;
    protection = std::min(
        protection, static_cast<double>(base_ok) / static_cast<double>(qualities.size()));
  }
  out.base_protection = protection;

  // Green-band one-way delay distribution, pooled across video flows.
  SampleSet green;
  for (int i = 0; i < scen.pels_flows; ++i) {
    for (const double d : s.sink(i).delay_samples(Color::kGreen).samples())
      green.add(d);
  }
  if (green.count() > 0) {
    out.delay_p50_ms = green.quantile(0.50) * 1e3;
    out.delay_p95_ms = green.quantile(0.95) * 1e3;
    out.delay_p99_ms = green.quantile(0.99) * 1e3;
  }
  if (s.pels_queue() != nullptr) out.ecn_marks = s.pels_queue()->ecn_marks();
  return out;
}

std::vector<FairnessCellConfig> default_fairness_matrix(bool smoke) {
  // Base RTTs: 4 * edge_delay + 2 * bottleneck_delay. With a 2 ms bottleneck
  // the ladder below spans ~10 ms to ~200 ms.
  const std::vector<SimTime> rtt_ladder = {from_millis(1.5), from_millis(12),
                                           from_millis(25), from_millis(45.5)};

  const auto pair_cell = [](std::string label, CcKind a, CcKind b) {
    FairnessCellConfig c;
    c.label = std::move(label);
    c.class_a = a;
    c.class_b = b;
    return c;
  };

  if (smoke) {
    std::vector<FairnessCellConfig> cells;
    cells.push_back(pair_cell("smoke_mkc_vs_cubic", CcKind::kMkc, CcKind::kCubic));
    cells.push_back(pair_cell("smoke_mkc_vs_dcqcn", CcKind::kMkc, CcKind::kDcqcn));
    FairnessCellConfig rtt = pair_cell("smoke_mkc_rtt_diverse", CcKind::kMkc, CcKind::kMkc);
    rtt.bottleneck_delay = from_millis(2);
    rtt.edge_delays = rtt_ladder;
    cells.push_back(rtt);
    for (auto& c : cells) {
      c.duration = 16 * kSecond;
      c.warmup = 6 * kSecond;
    }
    return cells;
  }

  std::vector<FairnessCellConfig> cells;
  // Per-pair coexistence against MKC, plus the homogeneous baseline and one
  // all-newcomer pairing.
  cells.push_back(pair_cell("mkc_vs_mkc", CcKind::kMkc, CcKind::kMkc));
  cells.push_back(pair_cell("mkc_vs_cubic", CcKind::kMkc, CcKind::kCubic));
  cells.push_back(pair_cell("mkc_vs_dcqcn", CcKind::kMkc, CcKind::kDcqcn));
  cells.push_back(pair_cell("mkc_vs_swift", CcKind::kMkc, CcKind::kSwift));
  cells.push_back(pair_cell("mkc_vs_scream", CcKind::kMkc, CcKind::kScream));
  cells.push_back(pair_cell("cubic_vs_scream", CcKind::kCubic, CcKind::kScream));
  // RTT diversity: the same controller at base RTTs ~10-200 ms.
  for (const auto& [label, kind] :
       {std::pair<const char*, CcKind>{"mkc_rtt_diverse", CcKind::kMkc},
        std::pair<const char*, CcKind>{"cubic_rtt_diverse", CcKind::kCubic}}) {
    FairnessCellConfig c = pair_cell(label, kind, kind);
    c.bottleneck_delay = from_millis(2);
    c.edge_delays = rtt_ladder;
    cells.push_back(c);
  }
  // Asymmetric class ratios (1:3 and 3:1 cross-traffic mixes).
  {
    FairnessCellConfig c = pair_cell("mkc_cubic_1_3", CcKind::kMkc, CcKind::kCubic);
    c.flows_a = 1;
    c.flows_b = 3;
    cells.push_back(c);
    c.label = "mkc_cubic_3_1";
    c.flows_a = 3;
    c.flows_b = 1;
    cells.push_back(c);
  }
  // Greedy TCP cross traffic behind the WRR Internet share.
  {
    FairnessCellConfig c = pair_cell("mkc_vs_tcp", CcKind::kMkc, CcKind::kMkc);
    c.tcp_flows = 4;
    cells.push_back(c);
    c = pair_cell("cubic_scream_vs_tcp", CcKind::kCubic, CcKind::kScream);
    c.tcp_flows = 2;
    cells.push_back(c);
  }
  return cells;
}

}  // namespace pels
