#include "exp/fabric.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "queue/drop_tail.h"
#include "util/rng.h"

namespace pels {

Fabric::Fabric(FabricConfig cfg) : cfg_(cfg) {
  const bool multi_domain = cfg_.kind == FabricConfig::Kind::kFatTree && cfg_.domain_per_pod;
  // Domain 0 hosts the core (and everything, when single-domain); with
  // domain_per_pod each pod gets its own Simulation. All domains must exist
  // before any node is added (Topology::add_domain contract).
  const int domains = multi_domain ? 1 + cfg_.pods : 1;
  sims_.reserve(static_cast<std::size_t>(domains));
  for (int d = 0; d < domains; ++d) {
    sims_.push_back(std::make_unique<Simulation>(cfg_.seed + static_cast<std::uint64_t>(d)));
  }
  topo_ = std::make_unique<Topology>(*sims_[0]);
  for (int d = 1; d < domains; ++d) topo_->add_domain(*sims_[d]);

  switch (cfg_.kind) {
    case FabricConfig::Kind::kParkingLot:
      build_parking_lot();
      break;
    case FabricConfig::Kind::kFatTree:
      build_fat_tree();
      break;
  }
  topo_->compute_routes();
}

Link& Fabric::add_core_link(Node& from, Node& to, SimTime delay) {
  // The link's events run in the source node's domain, so the queue's
  // feedback timer must live on that domain's scheduler.
  Scheduler& sched = sims_[static_cast<std::size_t>(topo_->node_domain(from.id()))]->scheduler();
  PelsQueue* queue = nullptr;
  const QueueFactory factory = [this, &sched, &queue](double bw) {
    PelsQueueConfig qc = cfg_.core_queue;
    qc.router_id = next_router_id_++;
    qc.link_bandwidth_bps = bw;
    auto q = std::make_unique<PelsQueue>(sched, qc);
    queue = q.get();
    return q;
  };
  Link& link = topo_->add_link(from, to, cfg_.core_bandwidth_bps, delay, factory);
  core_links_.push_back(&link);
  core_queues_.push_back(queue);
  return link;
}

Link& Fabric::add_edge_link(Node& from, Node& to) {
  const QueueFactory factory = [this](double) {
    return std::make_unique<DropTailQueue>(cfg_.edge_queue_limit);
  };
  return topo_->add_link(from, to, cfg_.edge_bandwidth_bps, cfg_.edge_delay, factory);
}

void Fabric::build_parking_lot() {
  if (cfg_.hops < 1) throw std::invalid_argument("parking lot needs hops >= 1");
  // Routers R0..R_hops in a chain; host Hi off every router. The forward
  // direction of each chain link is the bottleneck; the reverse direction
  // (ACK-sized traffic in real workloads) is a plain FIFO.
  std::vector<Router*> routers;
  routers.reserve(static_cast<std::size_t>(cfg_.hops) + 1);
  for (int i = 0; i <= cfg_.hops; ++i) {
    const std::string n = std::to_string(i);
    Router& r = topo_->add_router("R" + n);
    routers.push_back(&r);
    Host& h = topo_->add_host("H" + n);
    hosts_.push_back(&h);
    add_edge_link(h, r);
    add_edge_link(r, h);
  }
  for (int i = 0; i < cfg_.hops; ++i) {
    add_core_link(*routers[static_cast<std::size_t>(i)],
                  *routers[static_cast<std::size_t>(i) + 1], cfg_.core_delay);
    add_edge_link(*routers[static_cast<std::size_t>(i) + 1],
                  *routers[static_cast<std::size_t>(i)]);
  }
}

void Fabric::build_fat_tree() {
  if (cfg_.pods < 1 || cfg_.racks_per_pod < 1 || cfg_.hosts_per_rack < 1) {
    throw std::invalid_argument("fat tree needs pods/racks/hosts >= 1");
  }
  const bool multi_domain = cfg_.domain_per_pod;
  Router& core = topo_->add_router("core", 0);
  for (int p = 0; p < cfg_.pods; ++p) {
    const int domain = multi_domain ? 1 + p : 0;
    const std::string pod_idx = std::to_string(p);
    const std::string pod = "p" + pod_idx;
    Router& agg = topo_->add_router(pod + ".agg", domain);
    // Pod uplink/downlink: the aggregation <-> core tier. The uplink is a
    // bottleneck; the downlink shares the wire's rate and delay but stays a
    // plain FIFO (no AQM under study on the return path). Both directions'
    // core_delay is the cross-domain lookahead when domain_per_pod is set.
    add_core_link(agg, core, cfg_.core_delay);
    const QueueFactory downlink = [this](double) {
      return std::make_unique<DropTailQueue>(cfg_.edge_queue_limit);
    };
    topo_->add_link(core, agg, cfg_.core_bandwidth_bps, cfg_.core_delay, downlink);
    for (int r = 0; r < cfg_.racks_per_pod; ++r) {
      const std::string rack = pod + ".r" + std::to_string(r);
      Router& tor = topo_->add_router(rack + ".tor", domain);
      // Rack uplink (bottleneck) and downlink within the pod's domain.
      add_core_link(tor, agg, cfg_.core_delay);
      add_edge_link(agg, tor);
      for (int h = 0; h < cfg_.hosts_per_rack; ++h) {
        Host& host = topo_->add_host(rack + ".h" + std::to_string(h), domain);
        hosts_.push_back(&host);
        add_edge_link(host, tor);
        add_edge_link(tor, host);
      }
    }
  }
}

// --- mixed traffic --------------------------------------------------------

std::vector<FlowSpec> gen_mixed_traffic(const Fabric& fabric, const MixedTrafficConfig& cfg) {
  const auto n_hosts = static_cast<std::int64_t>(fabric.hosts().size());
  if (n_hosts < 2) throw std::invalid_argument("gen_mixed_traffic needs >= 2 hosts");
  Rng rng(cfg.seed, /*stream=*/0x3A10);

  std::vector<FlowSpec> specs;
  specs.reserve(cfg.video_flows + cfg.mice_flows + cfg.elephant_flows);

  const auto draw_pair = [&](FlowSpec& s) {
    s.src_host = static_cast<int>(rng.uniform_int(0, n_hosts - 1));
    s.dst_host = static_cast<int>(rng.uniform_int(0, n_hosts - 2));
    if (s.dst_host >= s.src_host) ++s.dst_host;  // uniform over hosts != src
  };
  const auto draw_start = [&]() -> SimTime {
    if (cfg.start_window <= 0) return 0;
    return static_cast<SimTime>(rng.uniform(0.0, static_cast<double>(cfg.start_window)));
  };

  for (std::size_t i = 0; i < cfg.video_flows; ++i) {
    FlowSpec s;
    s.cls = TrafficClass::kVideo;
    draw_pair(s);
    s.start = draw_start();
    s.rate_bps = cfg.video_rate_bps;
    s.packet_bytes = cfg.packet_bytes;
    specs.push_back(s);
  }
  for (std::size_t i = 0; i < cfg.mice_flows; ++i) {
    FlowSpec s;
    s.cls = TrafficClass::kMice;
    draw_pair(s);
    s.start = draw_start();
    s.rate_bps = cfg.mice_rate_bps;
    s.packet_bytes = cfg.packet_bytes;
    // Pareto(alpha = 1.5) has mean alpha * xm / (alpha - 1) = 3 * xm.
    const double xm = static_cast<double>(cfg.mice_mean_bytes) / 3.0;
    const double bytes = rng.pareto(1.5, xm);
    s.total_bytes = std::max<std::int64_t>(cfg.packet_bytes, static_cast<std::int64_t>(bytes));
    specs.push_back(s);
  }
  for (std::size_t i = 0; i < cfg.elephant_flows; ++i) {
    FlowSpec s;
    s.cls = TrafficClass::kElephant;
    draw_pair(s);
    s.start = draw_start();
    s.rate_bps = cfg.elephant_rate_bps;
    s.packet_bytes = cfg.packet_bytes;
    specs.push_back(s);
  }
  // Activation order for the driver's cursor; stable keeps the
  // video/mice/elephant generation order among equal starts.
  std::stable_sort(specs.begin(), specs.end(),
                   [](const FlowSpec& a, const FlowSpec& b) { return a.start < b.start; });
  return specs;
}

// --- population-scale driver ----------------------------------------------

namespace {

/// Deterministic per-packet hash in [0, 1): colors are a pure function of
/// (flow, seq), independent of event interleavings and RNG draw order.
double packet_hash01(FlowId flow, std::uint64_t seq) {
  std::uint64_t state = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(flow)) << 40) ^ seq;
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ManyFlowDriver::ManyFlowDriver(Fabric& fabric, std::vector<FlowSpec> flows,
                               ManyFlowDriverConfig cfg)
    : fabric_(fabric), cfg_(cfg), table_(cfg.mkc, cfg.gamma) {
  if (fabric.domain_count() != 1) {
    throw std::invalid_argument(
        "ManyFlowDriver reads every bottleneck meter from one control tick, "
        "which only respects causality on a single-domain fabric");
  }
  table_.reserve(flows.size());
  flows_.reserve(flows.size());
  sinks_.reserve(fabric.hosts().size());
  for (std::size_t h = 0; h < fabric.hosts().size(); ++h) {
    sinks_.push_back(std::make_unique<CountingSink>());
  }
  // Specs must arrive in activation order (gen_mixed_traffic sorts); sort
  // defensively so hand-built mixes work too.
  std::stable_sort(flows.begin(), flows.end(),
                   [](const FlowSpec& a, const FlowSpec& b) { return a.start < b.start; });
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowSpec& spec = flows[i];
    FlowRt f;
    f.spec = spec;
    f.src = fabric.hosts()[static_cast<std::size_t>(spec.src_host)];
    f.dst = fabric.hosts()[static_cast<std::size_t>(spec.dst_host)]->id();
    f.bytes_left = spec.total_bytes > 0 ? spec.total_bytes : -1;
    // Flow id = index; the destination host multiplexes every flow addressed
    // to it onto one counting sink.
    fabric.hosts()[static_cast<std::size_t>(spec.dst_host)]->register_agent(
        static_cast<FlowId>(i), sinks_[static_cast<std::size_t>(spec.dst_host)].get());
    flows_.push_back(std::move(f));
  }
}

ManyFlowDriver::~ManyFlowDriver() {
  Scheduler& sched = fabric_.sim().scheduler();
  if (activation_event_ != 0) sched.cancel(activation_event_);
  if (control_event_ != 0) sched.cancel(control_event_);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].pace_event != 0) sched.cancel(flows_[i].pace_event);
    fabric_.hosts()[static_cast<std::size_t>(flows_[i].spec.dst_host)]->unregister_agent(
        static_cast<FlowId>(i));
  }
}

void ManyFlowDriver::start() {
  assert(!started_ && "start() is one-shot");
  started_ = true;
  Simulation& sim = fabric_.sim();
  if (!flows_.empty()) {
    const SimTime first = std::max(flows_[0].spec.start, sim.now());
    activation_event_ = sim.at(first, [this] { activate_due_flows(); });
  }
  control_event_ = sim.after(cfg_.control_interval, [this] { on_control_tick(); });
}

void ManyFlowDriver::activate_due_flows() {
  activation_event_ = 0;
  Simulation& sim = fabric_.sim();
  const SimTime now = sim.now();
  while (next_to_start_ < flows_.size() && flows_[next_to_start_].spec.start <= now) {
    const auto i = static_cast<std::uint32_t>(next_to_start_++);
    FlowRt& f = flows_[i];
    f.slot = table_.add_flow(f.spec.rate_bps, cfg_.gamma.initial_gamma);
    f.started = true;
    send_next(i);
  }
  if (next_to_start_ < flows_.size()) {
    activation_event_ = sim.at(flows_[next_to_start_].spec.start,
                               [this] { activate_due_flows(); });
  }
}

double ManyFlowDriver::pacing_rate(const FlowRt& f) const {
  if (f.spec.cls != TrafficClass::kVideo) return f.spec.rate_bps;
  return std::min(table_.rate_bps(f.slot), cfg_.max_rate_factor * f.spec.rate_bps);
}

void ManyFlowDriver::send_next(std::uint32_t index) {
  FlowRt& f = flows_[index];
  f.pace_event = 0;

  Packet pkt;
  pkt.flow = static_cast<FlowId>(index);
  pkt.seq = f.next_seq++;
  pkt.uid = (static_cast<std::uint64_t>(pkt.flow) << 40) | pkt.seq;
  pkt.size_bytes = f.bytes_left > 0
                       ? static_cast<std::int32_t>(std::min<std::int64_t>(f.spec.packet_bytes,
                                                                          f.bytes_left))
                       : f.spec.packet_bytes;
  pkt.src = f.src->id();
  pkt.dst = f.dst;
  pkt.created_at = fabric_.sim().now();
  if (f.spec.cls == TrafficClass::kVideo) {
    // Base layer green, FGS remainder split red/yellow by the flow's
    // current gamma — decided per packet by a deterministic hash so the
    // color stream is reproducible whatever the event interleaving.
    const double u = packet_hash01(pkt.flow, pkt.seq);
    if (u < cfg_.green_fraction) {
      pkt.color = Color::kGreen;
    } else {
      const double frac = (u - cfg_.green_fraction) / (1.0 - cfg_.green_fraction);
      pkt.color = frac < table_.gamma(f.slot) ? Color::kRed : Color::kYellow;
    }
  } else {
    pkt.color = Color::kInternet;
  }

  const std::int32_t size = pkt.size_bytes;
  f.src->send(std::move(pkt));  // drops count as sent: the cost was paid
  ++packets_sent_;

  if (f.bytes_left > 0) {
    f.bytes_left -= size;
    if (f.bytes_left <= 0) {
      f.done = true;
      table_.remove_flow(f.slot);
      f.slot = kInvalidFlowSlot;
      return;
    }
  }
  const double rate = pacing_rate(f);
  const auto gap = static_cast<SimTime>(static_cast<double>(size) * 8.0 / rate * kSecond);
  f.pace_event = fabric_.sim().after(std::max<SimTime>(gap, 1),
                                     [this, index] { send_next(index); });
}

void ManyFlowDriver::on_control_tick() {
  ++control_ticks_;
  // The governing bottleneck in the max-min sense of §5.2 is the most
  // congested one; one scan over the (few) meters serves the whole
  // population. Meters publish nothing before their first epoch closes.
  double p = 0.0;
  double p_fgs = 0.0;
  bool valid = false;
  for (std::size_t q = 0; q < fabric_.core_queue_count(); ++q) {
    const PelsQueue& queue = fabric_.core_queue(q);
    if (queue.epoch() < 1) continue;
    if (!valid || queue.current_loss() > p) p = queue.current_loss();
    if (!valid || queue.current_fgs_loss() > p_fgs) p_fgs = queue.current_fgs_loss();
    valid = true;
  }
  if (valid) {
    for (const FlowRt& f : flows_) {
      if (!f.started || f.done || f.spec.cls != TrafficClass::kVideo) continue;
      table_.stage_feedback(f.slot, p);
      table_.stage_gamma(f.slot, p_fgs);
    }
  }
  table_.batch_control_tick();
  control_event_ = fabric_.sim().after(cfg_.control_interval, [this] { on_control_tick(); });
}

std::uint64_t ManyFlowDriver::packets_received() const {
  std::uint64_t total = 0;
  for (const auto& sink : sinks_) total += sink->packets();
  return total;
}

}  // namespace pels
